package fenceplace_test

// Tests for the persistent certification-baseline store: a warm cache
// directory must eliminate the SC exploration across analyzer sessions
// (the stand-in for separate processes — each session rebuilds the
// program from scratch and shares no memory with the last), and corrupt
// store entries must degrade to clean misses, never to wrong verdicts.
// The assertions ride on the model checker's process-wide exploration
// counters, which is safe because root-package tests do not run in
// parallel.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fenceplace"

	"fenceplace/internal/mc"
	"fenceplace/internal/progs"
	"fenceplace/internal/store"
)

// freshControlResult builds dekker from scratch in a brand-new analyzer
// session, simulating a separate process working on the same corpus.
func freshControlResult() *fenceplace.Result {
	m := progs.ByName("dekker")
	pp := m.Defaults
	pp.Threads = 2
	pp.Size = 1
	return fenceplace.NewAnalyzer(m.Build(pp)).Analyze(fenceplace.Control)
}

func TestCertifyWarmStartsFromDiskCache(t *testing.T) {
	t.Setenv("FENCEPLACE_CACHE_DIR", "") // isolate from the operator's cache
	dir := t.TempDir()
	opt := fenceplace.CertOptions{CacheDir: dir}

	// Cold: the first session explores the SC side and populates the store.
	res := freshControlResult()
	scBefore := mc.SCExploreRuns()
	repCold, err := fenceplace.CertifyOpt(res, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !repCold.Equivalent {
		t.Fatalf("cold certification not SC-equivalent: %s", repCold)
	}
	if d := mc.SCExploreRuns() - scBefore; d != 1 {
		t.Fatalf("cold run performed %d SC explorations, want 1", d)
	}

	// Warm: a fresh session over a freshly built program must load the
	// baseline from disk — zero SC explorations, one TSO exploration —
	// and reach the identical verdict and SC state count.
	res2 := freshControlResult()
	scBefore = mc.SCExploreRuns()
	allBefore := mc.ExploreRuns()
	repWarm, err := fenceplace.CertifyOpt(res2, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if d := mc.SCExploreRuns() - scBefore; d != 0 {
		t.Errorf("warm run performed %d SC explorations, want 0", d)
	}
	if d := mc.ExploreRuns() - allBefore; d != 1 {
		t.Errorf("warm run performed %d explorations, want 1 (TSO only)", d)
	}
	if !repWarm.Equivalent {
		t.Fatalf("warm certification not SC-equivalent: %s", repWarm)
	}
	if repWarm.SCOutcomes != repCold.SCOutcomes || repWarm.VisitedSC != repCold.VisitedSC {
		t.Errorf("warm report (SC %d outcomes / %d visited) disagrees with cold (%d / %d)",
			repWarm.SCOutcomes, repWarm.VisitedSC, repCold.SCOutcomes, repCold.VisitedSC)
	}

	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s := st.Stats(); s.Hits < 1 || s.Puts < 1 {
		t.Errorf("store stats %+v: expected at least one hit and one put", s)
	}
}

// TestCorruptCacheEntryDegradesToMiss damages the stored baseline between
// two sessions: the next certification must quarantine it, re-explore,
// and still produce the correct verdict — a corrupt cache can cost time,
// never soundness.
func TestCorruptCacheEntryDegradesToMiss(t *testing.T) {
	t.Setenv("FENCEPLACE_CACHE_DIR", "")
	dir := t.TempDir()
	opt := fenceplace.CertOptions{CacheDir: dir}

	if _, err := fenceplace.CertifyOpt(freshControlResult(), nil, opt); err != nil {
		t.Fatal(err)
	}

	// Bit-flip every stored entry.
	var flipped int
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".art") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		data[len(data)-1] ^= 0x01
		flipped++
		return os.WriteFile(path, data, 0o644)
	})
	if err != nil || flipped == 0 {
		t.Fatalf("corrupting store entries: flipped=%d err=%v", flipped, err)
	}

	st, _ := store.Open(dir)
	qBefore := st.Stats().Quarantined
	scBefore := mc.SCExploreRuns()
	rep, err := fenceplace.CertifyOpt(freshControlResult(), nil, opt)
	if err != nil {
		t.Fatalf("certification over a corrupt cache failed: %v", err)
	}
	if !rep.Equivalent {
		t.Fatalf("certification over a corrupt cache changed the verdict: %s", rep)
	}
	if d := mc.SCExploreRuns() - scBefore; d != 1 {
		t.Errorf("corrupt entry did not force a re-exploration: %d SC explorations, want 1", d)
	}
	if d := st.Stats().Quarantined - qBefore; d != 1 {
		t.Errorf("%d entries quarantined, want 1", d)
	}

	// The re-exploration wrote a good entry back: the next session is warm.
	scBefore = mc.SCExploreRuns()
	if _, err := fenceplace.CertifyOpt(freshControlResult(), nil, opt); err != nil {
		t.Fatal(err)
	}
	if d := mc.SCExploreRuns() - scBefore; d != 0 {
		t.Errorf("store not repopulated after quarantine: %d SC explorations, want 0", d)
	}
}
