package fenceplace_test

// Resolution semantics of the unified option set: environment-derived
// defaults are pinned when the options are resolved, not re-read when they
// are applied.

import (
	"context"
	"testing"

	"fenceplace"

	"fenceplace/internal/progs"
	"fenceplace/internal/store"
)

// TestResolvedPinsCacheDirOnce is the regression test for the cache-dir
// split: $FENCEPLACE_CACHE_DIR is read exactly once, when an option list
// is resolved, so an environment change mid-run cannot divert later
// certifications of the same run into a second store.
func TestResolvedPinsCacheDirOnce(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	t.Setenv("FENCEPLACE_CACHE_DIR", dir1)
	opts := fenceplace.Resolved() // resolves (and pins) the env default now

	// The environment changes under the run's feet...
	t.Setenv("FENCEPLACE_CACHE_DIR", dir2)

	m := progs.ByName("dekker")
	pp := m.Defaults
	pp.Threads = 2
	pp.Size = 1
	res := fenceplace.Analyze(m.Build(pp), fenceplace.Control)
	rep, err := fenceplace.CertifyCtx(context.Background(), res, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equivalent {
		t.Fatalf("not SC-equivalent: %s", rep)
	}

	// ...but the pinned options still write to the first store.
	st1, _ := store.Open(dir1)
	st2, _ := store.Open(dir2)
	e1, _ := st1.List()
	e2, _ := st2.List()
	if len(e1) != 1 || len(e2) != 0 {
		t.Errorf("baseline landed in the wrong store: dir1 has %d entries, dir2 has %d (want 1, 0)", len(e1), len(e2))
	}
}

// TestWithCacheDirEmptyDisablesPersistence distinguishes the explicit
// empty directory (persistence off) from an absent option (environment
// default).
func TestWithCacheDirEmptyDisablesPersistence(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("FENCEPLACE_CACHE_DIR", dir)

	m := progs.ByName("peterson")
	pp := m.Defaults
	pp.Threads = 2
	pp.Size = 1
	res := fenceplace.Analyze(m.Build(pp), fenceplace.Control)
	rep, err := fenceplace.CertifyCtx(context.Background(), res, nil, fenceplace.WithCacheDir(""))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equivalent {
		t.Fatalf("not SC-equivalent: %s", rep)
	}
	st, _ := store.Open(dir)
	if entries, _ := st.List(); len(entries) != 0 {
		t.Errorf("WithCacheDir(\"\") still wrote %d entries to the env-named store", len(entries))
	}
}

// TestCertifyCtxInheritsAnalyzerOptions pins the one-option-list
// contract: an option-less CertifyCtx on a Result from a configured
// Analyzer runs under the analyzer's options, while any explicit option
// replaces the configuration wholesale.
func TestCertifyCtxInheritsAnalyzerOptions(t *testing.T) {
	t.Setenv("FENCEPLACE_CACHE_DIR", "")
	dir := t.TempDir()
	m := progs.ByName("dekker")
	pp := m.Defaults
	pp.Threads = 2
	pp.Size = 1
	az := fenceplace.NewAnalyzer(m.Build(pp),
		fenceplace.WithCacheDir(dir), fenceplace.WithMaxStates(1<<20))
	res := az.Analyze(fenceplace.Control)

	// No options: the analyzer's cache directory applies.
	rep, err := fenceplace.CertifyCtx(context.Background(), res, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equivalent {
		t.Fatalf("not SC-equivalent: %s", rep)
	}
	st, _ := store.Open(dir)
	if entries, _ := st.List(); len(entries) != 1 {
		t.Errorf("inherited options wrote %d baseline entries, want 1", len(entries))
	}

	// Explicit options replace the configuration: a tiny budget must
	// truncate even though the analyzer's budget is ample.
	if _, err := fenceplace.CertifyCtx(context.Background(), res, nil, fenceplace.WithMaxStates(16)); err == nil {
		t.Error("explicit WithMaxStates(16) did not override the analyzer's budget")
	}
}

// TestCertOptionsAdapter pins the deprecated struct's equivalence to the
// option path: the same exploration configuration and the same cache
// directory resolution.
func TestCertOptionsAdapter(t *testing.T) {
	t.Setenv("FENCEPLACE_CACHE_DIR", "")
	m := progs.ByName("dekker")
	pp := m.Defaults
	pp.Threads = 2
	pp.Size = 1
	az := fenceplace.NewAnalyzer(m.Build(pp))
	res := az.Analyze(fenceplace.Control)

	old, err := fenceplace.CertifyOpt(res, nil, fenceplace.CertOptions{MaxStates: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	neu, err := fenceplace.CertifyCtx(context.Background(), res, nil, fenceplace.WithMaxStates(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if old.Equivalent != neu.Equivalent || old.VisitedTSO != neu.VisitedTSO || old.VisitedSC != neu.VisitedSC {
		t.Errorf("CertOptions adapter and option path disagree: %+v vs %+v", old, neu)
	}
}
