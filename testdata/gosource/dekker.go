// Dekker's mutual-exclusion algorithm, written in the frontend's Go
// subset. Differential twin of internal/progs "dekker" (Threads=2,
// Size=2): same globals in the same order, same per-iteration
// shared-memory access sequence, same final assertion.
package dekker

import "sync"

var (
	flag [2]int64
	turn int64
	ctr  int64
)

var wg sync.WaitGroup

const size = 2

func worker(me int64) {
	defer wg.Done()
	other := 1 - me
	for i := int64(0); i < size; i++ {
		flag[me] = 1
		for flag[other] == 1 {
			if turn != me {
				flag[me] = 0
				for turn != me {
				}
				flag[me] = 1
			}
		}
		ctr = ctr + 1
		turn = other
		flag[me] = 0
	}
}

func main() {
	wg.Add(2)
	go worker(0)
	go worker(1)
	wg.Wait()
	if ctr != 2*size {
		panic("dekker: no lost increments in the critical section")
	}
}
