// A two-thread Treiber stack exercise, written in the frontend's Go
// subset. Differential twin of internal/progs "treiber" (Threads=2,
// Size=1): each worker pushes its id (me+1, so 0 stays the empty-stack
// sentinel) and then pops once; main checks the popped ids form a
// permutation of the pushed ones.
package treiber

import (
	"sync"
	"sync/atomic"
)

var (
	top    int64
	next   [3]int64
	popped [2]int64
)

var wg sync.WaitGroup

func worker(me int64) {
	defer wg.Done()
	id := me + 1
	for {
		old := atomic.LoadInt64(&top)
		next[id] = old
		if atomic.CompareAndSwapInt64(&top, old, id) {
			break
		}
	}
	for {
		old := atomic.LoadInt64(&top)
		if old == 0 {
			popped[me] = -1
			break
		}
		nxt := next[old]
		if atomic.CompareAndSwapInt64(&top, old, nxt) {
			popped[me] = old
			break
		}
	}
}

func main() {
	wg.Add(2)
	go worker(0)
	go worker(1)
	wg.Wait()
	if popped[0]+popped[1] != 3 {
		panic("treiber: popped ids are a permutation of the pushed ids")
	}
}
