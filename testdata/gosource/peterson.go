// Peterson's mutual-exclusion algorithm, written in the frontend's Go
// subset. Differential twin of internal/progs "peterson" (Threads=2,
// Size=2). The spin condition uses Go's short-circuit && where the
// hand-built original evaluates both operands eagerly; both operands are
// loads, so the outcome sets are identical.
package peterson

import "sync"

var (
	flag [2]int64
	turn int64
	ctr  int64
)

var wg sync.WaitGroup

const size = 2

func worker(me int64) {
	defer wg.Done()
	other := 1 - me
	for i := int64(0); i < size; i++ {
		flag[me] = 1
		turn = other
		for flag[other] == 1 && turn == other {
		}
		ctr = ctr + 1
		flag[me] = 0
	}
}

func main() {
	wg.Add(2)
	go worker(0)
	go worker(1)
	wg.Wait()
	if ctr != 2*size {
		panic("peterson: no lost increments in the critical section")
	}
}
