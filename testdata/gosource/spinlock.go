// A test-and-set spinlock protecting a counter, written in the
// frontend's Go subset. Differential twin of internal/progs "spinlock"
// (Threads=2, Size=2).
package spinlock

import (
	"sync"
	"sync/atomic"
)

var (
	lock int64
	ctr  int64
)

var wg sync.WaitGroup

const size = 2

func worker(me int64) {
	defer wg.Done()
	for i := int64(0); i < size; i++ {
		for !atomic.CompareAndSwapInt64(&lock, 0, 1) {
		}
		ctr = ctr + 1
		atomic.StoreInt64(&lock, 0)
	}
}

func main() {
	wg.Add(2)
	go worker(0)
	go worker(1)
	wg.Wait()
	if ctr != 2*size {
		panic("spinlock: no lost increments in the critical section")
	}
}
