package fenceplace_test

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// The figure benches measure the cost of regenerating the result (static
// pipeline and/or simulation); the printed experiment values themselves
// come from cmd/paperbench and are recorded in EXPERIMENTS.md.

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"

	"fenceplace"

	"fenceplace/internal/acquire"
	"fenceplace/internal/alias"
	"fenceplace/internal/delayset"
	"fenceplace/internal/escape"
	"fenceplace/internal/exp"
	"fenceplace/internal/fence"
	"fenceplace/internal/ir"
	"fenceplace/internal/mc"
	"fenceplace/internal/orders"
	"fenceplace/internal/progs"
	"fenceplace/internal/telemetry"
	"fenceplace/internal/tso"
)

// BenchmarkTable2 classifies the nine synchronization kernels by acquire
// signature (the paper's Table II study).
func BenchmarkTable2(b *testing.B) {
	kernels := progs.ByKind(progs.SyncKernel)
	built := make([]*fenceplace.Program, len(kernels))
	for i, m := range kernels {
		built[i] = m.Default()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range built {
			al := alias.Analyze(p)
			esc := escape.Analyze(p, al)
			sig := acquire.Classify(p, al, esc)
			if sig.HasPureAddress() {
				b.Fatal("pure-address acquire appeared")
			}
		}
	}
}

// BenchmarkFigure2 regenerates the worked example: exact Shasha-Snir cycle
// enumeration, pruning, and fence minimization (5 fences -> 2 fences).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, isAcq := delayset.Fig2()
		delays := delayset.Delays(p)
		if n := len(delayset.MinimizeFences(delays)); n != 5 {
			b.Fatalf("full placement: %d fences, want 5", n)
		}
		pruned := delayset.Prune(delays, isAcq)
		if n := len(delayset.MinimizeFences(pruned)); n != 2 {
			b.Fatalf("pruned placement: %d fences, want 2", n)
		}
	}
}

// evalPrograms builds the Figure 7-10 corpus once.
func evalPrograms(b *testing.B) []*fenceplace.Program {
	b.Helper()
	set := progs.EvalSet()
	out := make([]*fenceplace.Program, len(set))
	for i, m := range set {
		out[i] = m.Default()
	}
	return out
}

// BenchmarkFigure7 runs escape analysis + both acquire detectors over the
// whole evaluation corpus (the static study behind Figure 7).
func BenchmarkFigure7(b *testing.B) {
	ps := evalPrograms(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range ps {
			al := alias.Analyze(p)
			esc := escape.Analyze(p, al)
			ctl := acquire.Detect(p, al, esc, acquire.Control)
			ac := acquire.Detect(p, al, esc, acquire.AddressControl)
			if ctl.Count() > ac.Count() {
				b.Fatal("monotonicity violated")
			}
		}
	}
}

// BenchmarkFigure8 measures Pensieve ordering generation plus DRF pruning
// under both variants (Figure 8's data).
func BenchmarkFigure8(b *testing.B) {
	ps := evalPrograms(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range ps {
			al := alias.Analyze(p)
			esc := escape.Analyze(p, al)
			set := orders.Generate(p, esc)
			ctl := set.Prune(acquire.Detect(p, al, esc, acquire.Control))
			ac := set.Prune(acquire.Detect(p, al, esc, acquire.AddressControl))
			if ctl.Total() > ac.Total() || ac.Total() > set.Total() {
				b.Fatal("pruning monotonicity violated")
			}
		}
	}
}

// BenchmarkFigure9 measures the full static pipeline through locally
// optimized fence minimization for all three strategies (Figure 9's data).
func BenchmarkFigure9(b *testing.B) {
	ps := evalPrograms(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range ps {
			pen := fenceplace.Analyze(p, fenceplace.PensieveOnly)
			ac := fenceplace.Analyze(p, fenceplace.AddressControl)
			ctl := fenceplace.Analyze(p, fenceplace.Control)
			if ctl.FullFences > ac.FullFences || ac.FullFences > pen.FullFences {
				b.Fatal("fence monotonicity violated")
			}
		}
	}
}

// BenchmarkFigure10 runs the instrumented corpus on the TSO simulator under
// every strategy — the dynamic experiment behind Figure 10.
func BenchmarkFigure10(b *testing.B) {
	rows := exp.AnalyzeAll(progs.Params{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range rows {
			for _, v := range exp.Variants {
				d := r.RunDynamic(v, 1)
				if d.Failed {
					b.Fatalf("%s/%s: %s", r.Meta.Name, v, d.Detail)
				}
			}
		}
	}
}

// BenchmarkAnalyzeAll measures corpus-scale static analysis — every
// evaluation program under all three strategies — in two architectures:
//
//	sequential    three independent seed-style Analyze calls per program,
//	              walking the corpus one program at a time (the pre-session
//	              pipeline shape);
//	session/j=N   one shared Analyzer session per program (alias, escape
//	              and ordering generation run once for all strategies),
//	              with the corpus fanned out over N workers.
//
// Both report programs/s. On ≥4 cores the shared-session run must beat the
// sequential sweep by ≥2x (pass sharing alone saves ~2/3 of the pass work;
// the fan-out stacks on top).
func BenchmarkAnalyzeAll(b *testing.B) {
	set := progs.EvalSet()
	strategies := []fenceplace.Strategy{
		fenceplace.PensieveOnly, fenceplace.AddressControl, fenceplace.Control,
	}
	var sink int
	b.Run("sequential", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			for _, m := range set {
				p := m.Default()
				for _, s := range strategies {
					sink += fenceplace.Analyze(p, s).FullFences
				}
				pm := m.Defaults
				pm.Manual = true
				sink += m.Build(pm).NumInstrs()
				n++
			}
		}
		b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "programs/s")
	})
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	for _, w := range workerCounts {
		if seen[w] {
			continue
		}
		seen[w] = true
		b.Run(fmt.Sprintf("session/j=%d", w), func(b *testing.B) {
			n := 0
			for i := 0; i < b.N; i++ {
				rows := exp.AnalyzeAllN(progs.Params{}, w)
				if len(rows) != len(set) {
					b.Fatalf("analyzed %d programs, want %d", len(rows), len(set))
				}
				for _, r := range rows {
					sink += r.Fences(exp.Control)
				}
				n += len(rows)
			}
			b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "programs/s")
		})
	}
	if sink < 0 {
		b.Fatal("impossible")
	}
}

// BenchmarkManualTable exercises the §5.3 expert builds under TSO.
func BenchmarkManualTable(b *testing.B) {
	var built []*fenceplace.Program
	for _, m := range progs.EvalSet() {
		pp := m.Defaults
		pp.Manual = true
		built = append(built, m.Build(pp))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range built {
			out := tso.Run(p, tso.Config{Mode: tso.TSO, Sched: tso.MinTime, Policy: tso.DrainRandom, Seed: 1})
			if out.Failed() {
				b.Fatalf("%s: %v", p.Name, out.Failures)
			}
		}
	}
}

// BenchmarkCertify measures the certification subsystem: exhaustive
// SC-equivalence checking of the Control placement on corpus kernels at a
// reduced instantiation, across worker-pool sizes. The reported states/s
// metric is total states visited (SC + TSO exploration) per second; on
// multi-core machines the GOMAXPROCS configuration must beat 1 worker on
// the medium program.
func BenchmarkCertify(b *testing.B) {
	cases := []struct {
		name    string
		prog    string
		threads int
		size    int64
	}{
		{"small-dekker", "dekker", 2, 1},
		{"medium-szymanski", "szymanski", 2, 2},
	}
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	uniq := workerCounts[:0]
	for _, w := range workerCounts {
		if !seen[w] {
			seen[w] = true
			uniq = append(uniq, w)
		}
	}
	workerCounts = uniq
	for _, tc := range cases {
		m := progs.ByName(tc.prog)
		pp := m.Defaults
		pp.Threads = tc.threads
		pp.Size = tc.size
		res := fenceplace.Analyze(m.Build(pp), fenceplace.Control)
		for _, w := range workerCounts {
			b.Run(fmt.Sprintf("%s/workers=%d", tc.name, w), func(b *testing.B) {
				b.ReportAllocs()
				var states int64
				for i := 0; i < b.N; i++ {
					rep, err := fenceplace.CertifyOpt(res, nil, fenceplace.CertOptions{Workers: w})
					if err != nil {
						b.Fatal(err)
					}
					if !rep.Equivalent {
						b.Fatalf("%s: not SC-equivalent: %s", tc.prog, rep)
					}
					states += rep.VisitedSC + rep.VisitedTSO
				}
				b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/s")
			})
		}
	}
}

// BenchmarkCertifySpill measures capped-memory certification: the medium
// kernel at an instantiation whose seen set does not fit the memory budget,
// so the two-level seen set must seal hot tables into sorted runs and
// spill them to disk to finish. The budget comes from
// FENCEPLACE_BENCH_MEMCAP (MemoryCap in arena words; the default 1<<19
// words anchors a 4 MiB seen budget against a ~50 MiB resident set).
//
// The benchmark fails if spilling never engaged (the program fit in RAM —
// the bench measured nothing) or the exploration truncated, and on ≥4-core
// machines if throughput drops below 1M states/s. Reported metrics: total
// states/s, spilled MB per run, the hot-tier share of seen-set hits, and a
// peak-heap proxy showing the exploration stayed near its budget.
func BenchmarkCertifySpill(b *testing.B) {
	b.Setenv("FENCEPLACE_CACHE_DIR", "")
	memCap := 1 << 19
	if env := os.Getenv("FENCEPLACE_BENCH_MEMCAP"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil {
			b.Fatalf("FENCEPLACE_BENCH_MEMCAP=%q: %v", env, err)
		}
		memCap = n
	}
	m := progs.ByName("szymanski")
	pp := m.Defaults
	pp.Threads = 2
	pp.Size = 3 // ~1.9M states: far past the capped seen budget
	res := fenceplace.Analyze(m.Build(pp), fenceplace.Control)
	opt := fenceplace.CertOptions{
		Workers:   runtime.GOMAXPROCS(0),
		MaxStates: 16 << 20,
		MemoryCap: memCap,
		SpillDir:  b.TempDir(),
	}
	before := telemetry.Default().Snapshot().Counters
	b.ReportAllocs()
	b.ResetTimer()
	var states int64
	for i := 0; i < b.N; i++ {
		rep, err := fenceplace.CertifyOpt(res, nil, opt)
		if err != nil {
			// Includes ErrTruncated: the bench must certify to completion.
			b.Fatal(err)
		}
		if !rep.Equivalent {
			b.Fatalf("szymanski: not SC-equivalent: %s", rep)
		}
		states += rep.VisitedSC + rep.VisitedTSO
	}
	b.StopTimer()
	after := telemetry.Default().Snapshot().Counters
	delta := func(name string) int64 { return after[name] - before[name] }

	if seals, runs := delta("mc.seen_seals"), delta("mc.spill_runs"); seals == 0 || runs == 0 {
		b.Fatalf("spilling never engaged (seals=%d, spilled runs=%d): the state space fit the budget and the bench measured nothing — lower FENCEPLACE_BENCH_MEMCAP", seals, runs)
	}
	rate := float64(states) / b.Elapsed().Seconds()
	b.ReportMetric(rate, "states/s")
	b.ReportMetric(float64(delta("mc.spill_bytes"))/float64(b.N)/(1<<20), "spill-MB/op")
	if hits := delta("mc.seen_hot_hits") + delta("mc.seen_cold_hits"); hits > 0 {
		b.ReportMetric(float64(delta("mc.seen_hot_hits"))/float64(hits), "hot-hit-ratio")
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.HeapSys)/(1<<20), "peak-heap-MB")
	if runtime.GOMAXPROCS(0) >= 4 && rate < 1e6 {
		b.Fatalf("capped-memory throughput %.2fM states/s on %d cores, want >=1M", rate/1e6, runtime.GOMAXPROCS(0))
	}
}

// BenchmarkCertifyCorpus measures corpus-style certification the way
// paperbench -cert runs it: per program, the full static analysis, one SC
// baseline, and a TSO exploration per variant (Manual plus the three
// analyzed placements) against that shared baseline. Analysis is repeated
// per iteration so the reported wall time covers the whole pipeline, not a
// warm session. states/s counts the SC exploration once.
//
// The cold variant explores every SC baseline; the warm variant serves
// them from a pre-populated persistent store (the cross-process cache
// behind -cache-dir), so the delta between the two is what the disk-backed
// baselines buy a repeated run.
func BenchmarkCertifyCorpus(b *testing.B) {
	// The operator's cache must not leak in: it would warm the cold leg
	// and erase the delta this benchmark exists to show.
	b.Setenv("FENCEPLACE_CACHE_DIR", "")
	kernels := []string{"dekker", "peterson"}
	run := func(b *testing.B, opt fenceplace.CertOptions) {
		b.ReportAllocs()
		b.ResetTimer()
		var states int64
		for i := 0; i < b.N; i++ {
			for _, name := range kernels {
				m := progs.ByName(name)
				pp := m.Defaults
				pp.Threads = 2
				pp.Size = 1
				row := exp.Analyze(m, pp)
				for vi, v := range exp.Variants {
					cell := row.Certify(v, opt)
					if cell.Status != exp.CertOK {
						b.Fatalf("%s/%s: %s", name, v, cell)
					}
					if vi == 0 {
						states += cell.Report.VisitedSC // explored once per row
					}
					states += cell.Report.VisitedTSO
				}
			}
		}
		b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/s")
	}
	b.Run("cold", func(b *testing.B) { run(b, fenceplace.CertOptions{}) })
	b.Run("warm", func(b *testing.B) {
		opt := fenceplace.CertOptions{CacheDir: b.TempDir()}
		// Populate the store outside the timer: one certification per
		// kernel writes its baseline.
		for _, name := range kernels {
			m := progs.ByName(name)
			pp := m.Defaults
			pp.Threads = 2
			pp.Size = 1
			if cell := exp.Analyze(m, pp).Certify(exp.Manual, opt); cell.Status != exp.CertOK {
				b.Fatalf("prepopulate %s: %s", name, cell)
			}
		}
		run(b, opt)
	})
}

// BenchmarkCertifyVsNaive quantifies the partial-order reduction: the same
// certification with POR disabled visits strictly more states.
func BenchmarkCertifyVsNaive(b *testing.B) {
	m := progs.ByName("dekker")
	pp := m.Defaults
	pp.Threads = 2
	pp.Size = 1
	res := fenceplace.Analyze(m.Build(pp), fenceplace.Control)
	for _, mode := range []struct {
		name  string
		nopor bool
	}{{"por", false}, {"naive", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var states int64
			for i := 0; i < b.N; i++ {
				rep, err := mc.Certify(res.Prog, res.Instrumented, nil, mc.Config{NoPOR: mode.nopor})
				if err != nil {
					b.Fatal(err)
				}
				states += rep.VisitedSC + rep.VisitedTSO
			}
			b.ReportMetric(float64(states)/float64(b.N), "states/op")
		})
	}
}

// --- Ablations ---------------------------------------------------------------

// BenchmarkAblationEntryFencePolicy isolates the paper's §4.4 modification:
// placing a function-entry fence only when the function contains sync
// reads, versus Pensieve's every-function-with-escaping-reads policy. The
// benchmark reports the static fence delta as it validates it.
func BenchmarkAblationEntryFencePolicy(b *testing.B) {
	ps := evalPrograms(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		saved := 0
		for _, p := range ps {
			al := alias.Analyze(p)
			esc := escape.Analyze(p, al)
			acq := acquire.Detect(p, al, esc, acquire.Control)
			pruned := orders.Generate(p, esc).Prune(acq)
			modified := fence.Minimize(pruned, fence.Options{EntryFence: acq.FnHasSync})
			naive := fence.Minimize(pruned, fence.Options{
				EntryFence: func(fn *ir.Fn) bool { return len(esc.EscapingReads(fn)) > 0 },
			})
			saved += naive.FullFences() - modified.FullFences()
		}
		if saved <= 0 {
			b.Fatal("the §4.4 entry-fence rule saved nothing")
		}
	}
}

// BenchmarkAblationDrainPolicy compares the simulator's drain policies on a
// fenced corpus program: the policy changes dynamic behavior (forwarding
// hit rates) but never correctness.
func BenchmarkAblationDrainPolicy(b *testing.B) {
	m := progs.ByName("peterson")
	pp := m.Defaults
	pp.Manual = true
	p := m.Build(pp)
	for _, pol := range []struct {
		name string
		p    tso.Policy
	}{{"lazy", tso.DrainLazy}, {"random", tso.DrainRandom}, {"eager", tso.DrainEager}} {
		b.Run(pol.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := tso.Run(p, tso.Config{Mode: tso.TSO, Sched: tso.Random, Policy: pol.p, Seed: 7})
				if out.Failed() {
					b.Fatalf("%v", out.Failures)
				}
			}
		})
	}
}

// BenchmarkAblationSchedulers compares the deterministic parallel-time
// scheduler against random scheduling on the simulator.
func BenchmarkAblationSchedulers(b *testing.B) {
	p := progs.ByName("radix").Default()
	for _, sc := range []struct {
		name string
		s    tso.Sched
	}{{"mintime", tso.MinTime}, {"random", tso.Random}} {
		b.Run(sc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := tso.Run(p, tso.Config{Mode: tso.TSO, Sched: sc.s, Policy: tso.DrainRandom, Seed: 3})
				if out.Failed() {
					b.Fatalf("%v", out.Failures)
				}
			}
		})
	}
}

// BenchmarkAblationExhaustiveExplore measures the exhaustive litmus
// explorer (SB under TSO: every interleaving and drain schedule).
func BenchmarkAblationExhaustiveExplore(b *testing.B) {
	pb := ir.NewProgram("sb")
	x := pb.Global("x", 1)
	y := pb.Global("y", 1)
	o0 := pb.Global("o0", 1)
	o1 := pb.Global("o1", 1)
	t0 := pb.Func("t0", 0)
	t0.Store(x, t0.Const(1))
	t0.Store(o0, t0.Load(y))
	t0.RetVoid()
	t1 := pb.Func("t1", 0)
	t1.Store(y, t1.Const(1))
	t1.Store(o1, t1.Load(x))
	t1.RetVoid()
	prog := pb.MustBuild()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tso.Explore(prog, []string{"t0", "t1"}, tso.ExploreConfig{Mode: tso.TSO})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Outcomes) == 0 {
			b.Fatal("no outcomes")
		}
	}
}
