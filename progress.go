package fenceplace

import (
	"context"
	"time"

	"fenceplace/internal/mc"
)

// ProgressKind discriminates the streams multiplexed onto one progress
// sink.
type ProgressKind int

const (
	// ProgressExplore is an exploration heartbeat: a running (or just
	// finished, when Final is set) model-checker exploration sampled at the
	// configured interval.
	ProgressExplore ProgressKind = iota
	// ProgressRow is a corpus-row completion event from corpus.Runner.
	ProgressRow
)

// ProgressEvent is one update on a streaming certification or corpus run.
// Exploration heartbeats carry the model checker's live counters; row
// events carry corpus completion counts. Elapsed is always set: time since
// the exploration (respectively the corpus run) started.
type ProgressEvent struct {
	Kind    ProgressKind
	Program string        // program the event concerns
	Elapsed time.Duration // since the exploration / run started

	// Exploration heartbeats (Kind == ProgressExplore):
	Mode         string  // "SC" or "TSO"
	States       int64   // states expanded so far
	StatesPerSec float64 // throughput over the heartbeat window
	Frontier     int64   // states enqueued and not yet expanded
	SeenStates   int64   // distinct states in the seen set (est. table load)
	Final        bool    // closing event of this exploration, totals exact

	// Corpus rows (Kind == ProgressRow):
	Index     int // the row's corpus index
	RowsDone  int // rows completed so far, this one included
	RowsTotal int // rows in the (sharded) run
}

// WithProgress streams ProgressEvents to fn: exploration heartbeats from
// every model-checker run the configuration drives (CertifyCtx,
// BaselineCtx, CertifyProgramCtx), and row completions when the options
// configure a corpus.Runner. fn must be safe for concurrent calls —
// parallel explorations and corpus workers report concurrently. The
// default sampling interval is 250ms; tune it with WithProgressInterval.
func WithProgress(fn func(ProgressEvent)) Option {
	return func(c *config) { c.progress = fn }
}

// WithProgressInterval sets the exploration heartbeat sampling interval
// (default 250ms; d <= 0 restores the default). It has no effect without
// WithProgress.
func WithProgressInterval(d time.Duration) Option {
	return func(c *config) { c.progressEvery = d }
}

// ProgressSink resolves an option list to its progress callback (nil when
// the options carry none). Drivers that emit their own events — the
// corpus runner's per-row completions — use it to feed the sink the user
// configured with WithProgress.
func ProgressSink(opts ...Option) func(ProgressEvent) {
	return resolve(opts).progress
}

// defaultProgressEvery is the heartbeat interval WithProgress uses unless
// WithProgressInterval overrides it.
const defaultProgressEvery = 250 * time.Millisecond

// exploreCtx decorates ctx with the configuration's progress sink, bridged
// to the model checker's Progress stream. Without a sink it returns ctx
// unchanged, so the default path adds no context allocation.
func (c config) exploreCtx(ctx context.Context) context.Context {
	if c.progress == nil {
		return ctx
	}
	fn := c.progress
	every := c.progressEvery
	if every <= 0 {
		every = defaultProgressEvery
	}
	return mc.WithProgress(ctx, every, func(p mc.Progress) {
		fn(ProgressEvent{
			Kind:         ProgressExplore,
			Program:      p.Program,
			Elapsed:      p.Elapsed,
			Mode:         p.Mode.String(),
			States:       p.Visited,
			StatesPerSec: p.StatesPerSec,
			Frontier:     p.Frontier,
			SeenStates:   p.Seen,
			Final:        p.Final,
		})
	})
}
