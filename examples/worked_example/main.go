// Worked example: the paper's Figure 2 (§2.4), reproduced with exact
// Shasha–Snir delay-set analysis. The busy-wait read b3 is the only
// acquire; pruning the delay set with the DRF rules shrinks the fence count
// from five (F1..F5) to two (F2 between a2/a3, F4 between b3/b4).
package main

import (
	"fmt"

	"fenceplace/internal/delayset"
)

func main() {
	prog, isAcquire := delayset.Fig2()

	fmt.Println("program (Figure 2):")
	for t := 0; t < prog.Threads(); t++ {
		fmt.Printf("  P%d:", t+1)
		for _, a := range prog.Accesses(t) {
			fmt.Printf(" %s", a.ID)
		}
		fmt.Println()
	}

	cycles := delayset.CriticalCycles(prog)
	fmt.Printf("\ncritical cycles found: %d (the paper lists the 4 minimal ones)\n", len(cycles))
	for _, c := range cycles {
		if len(c.Entries) > 1 { // skip the degenerate 2-access write/write cycles
			fmt.Printf("  %s\n", c)
		}
	}

	delays := delayset.Delays(prog)
	fmt.Printf("\ndelay set (%d edges): %v\n", len(delays), delays)
	full := delayset.MinimizeFences(delays)
	fmt.Printf("fences for the full delay set: %d at %v   (paper: 5 — F1..F5)\n", len(full), full)

	pruned := delayset.Prune(delays, isAcquire)
	fmt.Printf("\npruned delay set (%d edges): %v\n", len(pruned), pruned)
	fences := delayset.MinimizeFences(pruned)
	fmt.Printf("fences after pruning: %d at %v   (paper: 2 — F2 and F4)\n", len(fences), fences)
}
