// Worked example: the paper's Figure 2 (§2.4), reproduced twice — first
// with exact Shasha–Snir delay-set analysis (the busy-wait read b3 is the
// only acquire; pruning the delay set with the DRF rules shrinks the fence
// count from five, F1..F5, to two: F2 between a2/a3, F4 between b3/b4),
// then end-to-end through the public ctx/options facade: the same
// two-thread shape built in the IR, analyzed, fenced and certified
// SC-equivalent by the model checker.
package main

import (
	"context"
	"fmt"

	"fenceplace"
	"fenceplace/internal/delayset"
	"fenceplace/internal/ir"
)

func main() {
	prog, isAcquire := delayset.Fig2()

	fmt.Println("program (Figure 2):")
	for t := 0; t < prog.Threads(); t++ {
		fmt.Printf("  P%d:", t+1)
		for _, a := range prog.Accesses(t) {
			fmt.Printf(" %s", a.ID)
		}
		fmt.Println()
	}

	cycles := delayset.CriticalCycles(prog)
	fmt.Printf("\ncritical cycles found: %d (the paper lists the 4 minimal ones)\n", len(cycles))
	for _, c := range cycles {
		if len(c.Entries) > 1 { // skip the degenerate 2-access write/write cycles
			fmt.Printf("  %s\n", c)
		}
	}

	delays := delayset.Delays(prog)
	fmt.Printf("\ndelay set (%d edges): %v\n", len(delays), delays)
	full := delayset.MinimizeFences(delays)
	fmt.Printf("fences for the full delay set: %d at %v   (paper: 5 — F1..F5)\n", len(full), full)

	pruned := delayset.Prune(delays, isAcquire)
	fmt.Printf("\npruned delay set (%d edges): %v\n", len(pruned), pruned)
	fences := delayset.MinimizeFences(pruned)
	fmt.Printf("fences after pruning: %d at %v   (paper: 2 — F2 and F4)\n", len(fences), fences)

	// The same shape end-to-end through the public API: the new facade
	// entry points take a context (cancellable certification) and one
	// unified option set for analysis and certification alike.
	fmt.Println("\n--- the same handshake through the ctx/options facade ---")
	ctx := context.Background()
	az := fenceplace.NewAnalyzer(fig2IR(), fenceplace.WithMaxStates(1<<20))
	res, err := az.AnalyzeCtx(ctx, fenceplace.Control)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Summary())
	rep, err := fenceplace.CertifyCtx(ctx, res, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(rep)
}

// fig2IR builds Figure 2's two-thread handshake as an executable IR
// program: P1 publishes x then raises flag; P2 spins on flag (the acquire
// read b3) and then touches y and x.
func fig2IR() *fenceplace.Program {
	pb := ir.NewProgram("fig2")
	x := pb.Global("x", 1)
	y := pb.Global("y", 1)
	flag := pb.Global("flag", 1)
	sink := pb.Global("sink", 1)

	p1 := pb.Func("p1", 0)
	p1.Store(x, p1.Const(1)) // a1
	r := p1.Load(y)          // a2
	_ = r
	p1.Store(flag, p1.Const(1)) // a3
	p1.RetVoid()

	p2 := pb.Func("p2", 0)
	p2.SpinWhileNe(flag, ir.NoReg, p2.Const(1)) // b3: the acquire
	p2.Store(y, p2.Const(2))                    // b4
	v := p2.Load(x)                             // b5
	p2.Store(sink, v)
	p2.Assert(p2.Eq(v, p2.Const(1)), "P1's write to x visible after the handshake")
	p2.RetVoid()

	main := pb.Func("main", 0)
	t1 := main.Spawn("p1")
	t2 := main.Spawn("p2")
	main.Join(t1)
	main.Join(t2)
	main.RetVoid()
	pb.SetMain("main")
	return pb.MustBuild()
}
