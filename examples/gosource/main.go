// Real-Go entry: analyze and certify a program written in the frontend's
// restricted Go subset instead of hand-assembled IR. The embedded snippet
// is a test-and-set spinlock; AnalyzeSourceCtx lowers it (go/parser +
// go/types, no build environment), runs fence placement, and the same
// certification machinery the IR path uses proves the instrumented build
// SC-equivalent. The error path shows the frontend's other contract: a
// file outside the subset returns every violation at its exact position,
// never a partial lowering.
package main

import (
	"context"
	"fmt"

	"fenceplace"
)

const src = `package spinlock

import (
	"sync"
	"sync/atomic"
)

var (
	lock int64
	ctr  int64
)

var wg sync.WaitGroup

const rounds = 2

func worker(me int64) {
	defer wg.Done()
	for i := int64(0); i < rounds; i++ {
		for !atomic.CompareAndSwapInt64(&lock, 0, 1) {
		}
		ctr = ctr + 1
		atomic.StoreInt64(&lock, 0)
	}
}

func main() {
	wg.Add(2)
	go worker(0)
	go worker(1)
	wg.Wait()
	if ctr != 2*rounds {
		panic("spinlock: lost increment")
	}
}
`

// outsideSubset exercises the diagnostics path: three rejected
// constructs, three positioned diagnostics, one error.
const outsideSubset = `package bad

var ch chan int64
var m map[int64]int64

func main() {
	ch <- 1
	m[0] = 1
	f := func() {}
	f()
}
`

func main() {
	ctx := context.Background()

	prog, err := fenceplace.ParseGo("spinlock.go", []byte(src))
	if err != nil {
		panic(err)
	}
	fmt.Println("lowered IR:")
	fmt.Println(fenceplace.Format(prog))

	for _, s := range []fenceplace.Strategy{
		fenceplace.PensieveOnly, fenceplace.AddressControl, fenceplace.Control,
	} {
		res, err := fenceplace.AnalyzeSourceCtx(ctx, "spinlock.go", []byte(src), s)
		if err != nil {
			panic(err)
		}
		fmt.Println(res.Summary())
		rep, err := fenceplace.CertifyCtx(ctx, res, nil)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  certification: %v\n", rep)
	}

	fmt.Println("\na file outside the subset reports every violation at once:")
	if _, err := fenceplace.ParseGo("bad.go", []byte(outsideSubset)); err != nil {
		fmt.Println(err)
	}
}
