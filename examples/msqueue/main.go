// MS-queue: the full pipeline on a realistic lock-free workload — the
// Michael–Scott queue from the benchmark corpus (producers and consumers
// exchanging values through CAS-linked heap nodes). Shows the paper's
// headline effect end to end: acquire detection prunes most orderings, the
// fence count drops, and the instrumented program still passes its
// self-checks under TSO while running measurably faster than the Pensieve
// instrumentation.
package main

import (
	"fmt"

	"fenceplace"
	"fenceplace/internal/progs"
)

func main() {
	m := progs.ByName("msqueue")
	prog := m.Default()
	fmt.Printf("program: %s — %s\n\n", m.Name, m.Desc)

	variants := []fenceplace.Strategy{
		fenceplace.PensieveOnly, fenceplace.AddressControl, fenceplace.Control,
	}
	results := make(map[fenceplace.Strategy]*fenceplace.Result, len(variants))
	for _, s := range variants {
		res := fenceplace.Analyze(prog, s)
		if err := res.Verify(); err != nil {
			panic(err)
		}
		results[s] = res
		fmt.Println(res.Summary())
	}

	fmt.Println("\nTSO executions (3 seeds each):")
	for _, s := range variants {
		var cycles, fences int64
		for seed := int64(0); seed < 3; seed++ {
			out := fenceplace.RunTSO(results[s].Instrumented, seed)
			if out.Failed() {
				panic(fmt.Sprintf("%s seed %d: %v %v", s, seed, out.Failures, out.Err))
			}
			cycles += out.MaxCycles
			fences += out.FullFences
		}
		fmt.Printf("  %-16s avg %6d cycles, avg %4d dynamic full fences\n",
			s, cycles/3, fences/3)
	}
}
