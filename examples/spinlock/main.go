// Spinlock: a user-level test-and-set lock protecting a shared counter —
// the archetypal "legacy DRF" code the paper targets. The CAS result feeds
// the retry branch, so the acquire is found by the control signature, and
// the pruned placement protects the critical section with a fraction of
// Pensieve's fences.
package main

import (
	"fmt"

	"fenceplace"
	"fenceplace/internal/ir"
)

const workers = 4
const itersPerWorker = 50

func buildLockProgram() *fenceplace.Program {
	pb := ir.NewProgram("spinlock")
	lock := pb.Global("lock", 1)
	counter := pb.Global("counter", 1)
	histo := pb.Global("histo", 8)

	w := pb.Func("worker", 1)
	one := w.Const(1)
	zero := w.Const(0)
	pl := w.AddrOf(lock)
	w.ForConst(0, itersPerWorker, func(i ir.Reg) {
		// acquire: spin on CAS until we own the lock
		w.While(func() ir.Reg {
			got := w.CAS(pl, zero, one)
			return w.Eq(got, zero)
		}, func() {})
		// critical section: racy-looking increment, protected by the lock
		v := w.Load(counter)
		w.Store(counter, w.Add(v, one))
		bucket := w.Mod(v, w.Const(8))
		w.StoreIdx(histo, bucket, w.AddImm(w.LoadIdx(histo, bucket), 1))
		// release
		w.Store(lock, zero)
	})
	w.RetVoid()

	main := pb.Func("main", 0)
	tids := make([]ir.Reg, workers)
	for i := range tids {
		tids[i] = main.Spawn("worker", main.Const(int64(i)))
	}
	for _, tid := range tids {
		main.Join(tid)
	}
	v := main.Load(counter)
	main.Assert(main.Eq(v, main.Const(workers*itersPerWorker)), "no lost increments")
	main.RetVoid()
	pb.SetMain("main")
	return pb.MustBuild()
}

func main() {
	prog := buildLockProgram()
	pen := fenceplace.Analyze(prog, fenceplace.PensieveOnly)
	ctl := fenceplace.Analyze(prog, fenceplace.Control)
	fmt.Println(pen.Summary())
	fmt.Println(ctl.Summary())
	fmt.Printf("\nfence reduction: %d -> %d full fences (%.0f%% fewer)\n",
		pen.FullFences, ctl.FullFences,
		100*(1-float64(ctl.FullFences)/float64(pen.FullFences)))

	for name, res := range map[string]*fenceplace.Result{"Pensieve": pen, "Control": ctl} {
		out := fenceplace.RunTSO(res.Instrumented, 42)
		if out.Failed() {
			panic(fmt.Sprintf("%s: %v", name, out.Failures))
		}
		fmt.Printf("%-9s TSO run: counter correct, %6d cycles, %4d fences executed\n",
			name, out.MaxCycles, out.FullFences)
	}
}
