// Quickstart: build the paper's producer/consumer (Figure 1a) in the IR,
// detect its synchronization read, place fences under each strategy,
// execute the instrumented program on the TSO simulator, and certify the
// placement SC-equivalent — all through the context-aware facade: one
// Analyzer session, one unified option set, cancellable certification.
package main

import (
	"context"
	"fmt"
	"time"

	"fenceplace"
	"fenceplace/internal/ir"
)

func main() {
	// The classic message-passing handshake: producer writes data then
	// raises a flag; consumer spins on the flag then reads the data.
	pb := ir.NewProgram("quickstart")
	data := pb.Global("data", 4)
	flag := pb.Global("flag", 1)
	sink := pb.Global("sink", 1)

	prod := pb.Func("producer", 0)
	prod.ForConst(0, 4, func(i ir.Reg) {
		prod.StoreIdx(data, i, prod.MulImm(i, 10))
	})
	prod.Store(flag, prod.Const(1))
	prod.RetVoid()

	cons := pb.Func("consumer", 0)
	cons.SpinWhileNe(flag, ir.NoReg, cons.Const(1)) // the acquire read
	sum := cons.Move(cons.Const(0))
	cons.ForConst(0, 4, func(i ir.Reg) {
		cons.MoveTo(sum, cons.Add(sum, cons.LoadIdx(data, i)))
	})
	cons.Store(sink, sum)
	cons.Assert(cons.Eq(sum, cons.Const(60)), "all produced data visible")
	cons.RetVoid()

	main := pb.Func("main", 0)
	t1 := main.Spawn("producer")
	t2 := main.Spawn("consumer")
	main.Join(t1)
	main.Join(t2)
	main.RetVoid()
	pb.SetMain("main")
	prog := pb.MustBuild()

	// One analyzer session serves every strategy (the shared passes run
	// once) and the certification below (one shared SC baseline). The same
	// option set configures both sides of the pipeline.
	ctx := context.Background()
	az := fenceplace.NewAnalyzer(prog, fenceplace.WithMaxStates(1<<20))

	fmt.Println("=== static analysis ===")
	results, err := az.AnalyzeAllCtx(ctx,
		fenceplace.PensieveOnly, fenceplace.AddressControl, fenceplace.Control)
	if err != nil {
		panic(err)
	}
	for _, res := range results {
		fmt.Println(res.Summary())
		if err := res.Verify(); err != nil {
			panic(err)
		}
	}

	fmt.Println("\n=== dynamic check (TSO) ===")
	res := results[2] // Control
	for seed := int64(0); seed < 3; seed++ {
		out := fenceplace.RunTSO(res.Instrumented, seed)
		fmt.Printf("seed %d: failed=%v cycles=%d fences executed=%d\n",
			seed, out.Failed(), out.MaxCycles, out.FullFences)
	}

	// Certification is cancellable: a deadline (or Ctrl-C wired through
	// signal.NotifyContext) abandons the exploration promptly instead of
	// running a 2M-state search to completion.
	fmt.Println("\n=== certification (model checker) ===")
	cctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	rep, err := fenceplace.CertifyCtx(cctx, res, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(rep)

	fmt.Println("\n=== instrumented IR (Control) ===")
	fmt.Println(fenceplace.Format(res.Instrumented))
}
