package fenceplace_test

// Tests for the cross-variant certification cache: all strategies of one
// program certify against a single SC exploration memoized in the
// analyzer's pass session.

import (
	"testing"

	"fenceplace"

	"fenceplace/internal/mc"
	"fenceplace/internal/progs"
)

// TestCertifyVariantsShareOneSCExploration is the acceptance check for
// baseline reuse: certifying all three placement strategies of one
// program through an Analyzer must run exactly one SC exploration plus
// one TSO exploration per variant — 4 explorations, not 6. The assertion
// rides on the model checker's process-wide exploration counter, which is
// safe here because root-package tests do not run in parallel.
func TestCertifyVariantsShareOneSCExploration(t *testing.T) {
	t.Setenv("FENCEPLACE_CACHE_DIR", "") // exploration counts assume no disk cache
	m := progs.ByName("dekker")
	pp := m.Defaults
	pp.Threads = 2
	pp.Size = 1
	az := fenceplace.NewAnalyzer(m.Build(pp))
	results := az.AnalyzeAll()

	before := mc.ExploreRuns()
	for _, res := range results {
		rep, err := fenceplace.CertifyOpt(res, nil, fenceplace.CertOptions{})
		if err != nil {
			t.Fatalf("%s: %v", res.Strategy, err)
		}
		if !rep.Equivalent {
			t.Fatalf("%s: not SC-equivalent: %s", res.Strategy, rep)
		}
	}
	delta := mc.ExploreRuns() - before
	want := int64(1 + len(results)) // one shared SC baseline + one TSO per variant
	if delta != want {
		t.Errorf("certifying %d variants ran %d explorations, want %d (shared baseline)",
			len(results), delta, want)
	}

	// Further certifications of the same session hit the memoized baseline:
	// exactly one more exploration (the TSO side) per call.
	before = mc.ExploreRuns()
	if _, err := fenceplace.CertifyOpt(results[0], nil, fenceplace.CertOptions{}); err != nil {
		t.Fatal(err)
	}
	if d := mc.ExploreRuns() - before; d != 1 {
		t.Errorf("re-certification ran %d explorations, want 1", d)
	}
}

// TestAnalyzerBaselineMemoized pins the identity semantics: the analyzer
// serves one Baseline per entry configuration, and its SC state set is
// what CertifyAgainst compares variants to.
func TestAnalyzerBaselineMemoized(t *testing.T) {
	t.Setenv("FENCEPLACE_CACHE_DIR", "") // identity assertions assume no disk cache
	m := progs.ByName("peterson")
	pp := m.Defaults
	pp.Threads = 2
	pp.Size = 1
	az := fenceplace.NewAnalyzer(m.Build(pp))

	b1, err := az.Baseline(nil, fenceplace.CertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := az.Baseline(nil, fenceplace.CertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Error("Baseline recomputed for an identical configuration")
	}
	if b1.SC == nil || len(b1.SC.Outcomes) == 0 {
		t.Fatal("baseline carries no SC outcomes")
	}

	res := az.Analyze(fenceplace.Control)
	rep, err := mc.CertifyAgainst(b1, res.Instrumented, mc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equivalent {
		t.Fatalf("Control placement not SC-equivalent: %s", rep)
	}
	if rep.VisitedSC != b1.SC.Visited {
		t.Errorf("report's SC visit count %d is not the baseline's %d", rep.VisitedSC, b1.SC.Visited)
	}
}
