package fenceplace_test

// Cancellation semantics of the ctx-aware API: a cancelled certification
// must abandon its exploration promptly, return the context's error, and
// leave no entry behind in the persistent baseline store.

import (
	"context"
	"errors"
	"testing"
	"time"

	"fenceplace"

	"fenceplace/internal/progs"
	"fenceplace/internal/store"
)

// TestCertifyCtxCancelPromptly is the acceptance check for cancellation:
// certifying a large kernel (szymanski at the benchmark's medium
// instantiation explores on the order of a million states) and cancelling
// mid-exploration must return context.Canceled within 100ms and must not
// write a baseline entry to the store.
func TestCertifyCtxCancelPromptly(t *testing.T) {
	t.Setenv("FENCEPLACE_CACHE_DIR", "")
	dir := t.TempDir()

	m := progs.ByName("szymanski")
	pp := m.Defaults
	pp.Threads = 2
	pp.Size = 2
	res := fenceplace.Analyze(m.Build(pp), fenceplace.Control)

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := fenceplace.CertifyCtx(ctx, res, nil,
			fenceplace.WithCacheDir(dir), fenceplace.WithMaxStates(1<<26))
		errCh <- err
	}()

	// Let the SC exploration get going, then pull the plug.
	time.Sleep(20 * time.Millisecond)
	cancel()
	cancelled := time.Now()

	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled certification returned %v, want context.Canceled", err)
		}
		if d := time.Since(cancelled); d > 100*time.Millisecond {
			t.Errorf("certification took %v to honor the cancellation, want <= 100ms", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled certification never returned")
	}

	// No partial entry may survive in the baseline store: the write-back is
	// skipped outright once the context is done.
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("cancelled certification left %d store entries, want 0", len(entries))
	}

	// The session must not have memoized the cancellation: a retry with a
	// live context explores afresh and succeeds.
	rep, err := fenceplace.CertifyCtx(context.Background(), res, nil, fenceplace.WithCacheDir(dir))
	if err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
	if !rep.Equivalent {
		t.Fatalf("retry after cancellation: not SC-equivalent: %s", rep)
	}
	if entries, err := st.List(); err != nil || len(entries) != 1 {
		t.Errorf("successful retry wrote %d store entries (err %v), want 1", len(entries), err)
	}
}

// TestAnalyzeCtxCancelled pins the analysis side: a dead context stops the
// pipeline before it triggers pass work.
func TestAnalyzeCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := progs.ByName("dekker")
	if _, err := fenceplace.AnalyzeCtx(ctx, m.Default(), fenceplace.Control); !errors.Is(err, context.Canceled) {
		t.Fatalf("AnalyzeCtx with a dead context returned %v, want context.Canceled", err)
	}
	az := fenceplace.NewAnalyzer(m.Default())
	if _, err := az.AnalyzeAllCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("AnalyzeAllCtx with a dead context returned %v, want context.Canceled", err)
	}
}
