package fenceplace

import (
	"errors"
	"strings"
	"testing"

	"fenceplace/internal/fence"
	"fenceplace/internal/litmus"
	"fenceplace/internal/progs"
)

const mpSrc = `
program mp
global data 1
global data2 1
global flag 1
global sink 1
main main

func producer params=0 regs=1 {
entry:
  r0 = const 1
  store data, r0
  store data2, r0
  store flag, r0
  ret
}

func consumer params=0 regs=6 {
entry:
  r0 = const 1
  jmp spin
spin:
  r1 = load flag
  r2 = ne r1, r0
  br r2, spin, done
done:
  r3 = load data
  r4 = load data2
  r5 = add r3, r4
  store sink, r5
  assert r3, "data visible"
  ret
}

func main params=0 regs=2 {
entry:
  r0 = spawn producer()
  r1 = spawn consumer()
  join r0
  join r1
  ret
}
`

func TestAnalyzeMP(t *testing.T) {
	p := MustParse(mpSrc)
	ctl := Analyze(p, Control)
	if len(ctl.Acquires) != 1 {
		t.Fatalf("Control found %d acquires, want 1 (the flag spin)", len(ctl.Acquires))
	}
	if ctl.OrderingsKept >= ctl.OrderingsGenerated {
		t.Fatal("pruning removed nothing on MP")
	}
	if err := ctl.Verify(); err != nil {
		t.Fatal(err)
	}
	pen := Analyze(p, PensieveOnly)
	if pen.OrderingsKept != pen.OrderingsGenerated {
		t.Fatal("Pensieve must keep everything")
	}
	if len(pen.Acquires) != 0 {
		t.Fatal("Pensieve detects no acquires")
	}
	if ctl.FullFences > pen.FullFences {
		t.Fatalf("Control placed more fences (%d) than Pensieve (%d)", ctl.FullFences, pen.FullFences)
	}
	ac := Analyze(p, AddressControl)
	if ac.OrderingsKept < ctl.OrderingsKept {
		t.Fatal("A+C kept fewer orderings than Control")
	}
	if !strings.Contains(ctl.Summary(), "acquires detected") {
		t.Errorf("summary unhelpful: %s", ctl.Summary())
	}
}

func TestAnalyzeDoesNotMutateInput(t *testing.T) {
	p := MustParse(mpSrc)
	before := p.NumInstrs()
	res := Analyze(p, Control)
	if p.NumInstrs() != before {
		t.Fatal("Analyze mutated the input program")
	}
	if res.Instrumented == p {
		t.Fatal("Instrumented aliases the input")
	}
	if res.Instrumented.NumInstrs() <= before {
		t.Fatal("no fences inserted")
	}
}

func TestRoundTripThroughFormat(t *testing.T) {
	p := MustParse(mpSrc)
	res := Analyze(p, Control)
	text := Format(res.Instrumented)
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("instrumented program does not reparse: %v", err)
	}
	if back.NumInstrs() != res.Instrumented.NumInstrs() {
		t.Fatal("reparse changed instruction count")
	}
}

func TestRunSCAndTSO(t *testing.T) {
	p := MustParse(mpSrc)
	res := Analyze(p, Control)
	for seed := int64(0); seed < 4; seed++ {
		if out := RunSC(p, seed); out.Failed() {
			t.Fatalf("SC run failed: %v", out.Failures)
		}
		if out := RunTSO(res.Instrumented, seed); out.Failed() {
			t.Fatalf("instrumented TSO run failed: %v", out.Failures)
		}
	}
}

func TestFacadeAgainstCorpus(t *testing.T) {
	// The public API must agree with the experiment pipeline on a few
	// representative corpus programs.
	for _, name := range []string{"msqueue", "peterson", "radix", "matrix"} {
		m := progs.ByName(name)
		if m == nil {
			t.Fatalf("missing corpus program %s", name)
		}
		p := m.Default()
		pen := Analyze(p, PensieveOnly)
		ctl := Analyze(p, Control)
		ac := Analyze(p, AddressControl)
		if !(ctl.FullFences <= ac.FullFences && ac.FullFences <= pen.FullFences) {
			t.Errorf("%s: fence monotonicity broken: %d/%d/%d",
				name, ctl.FullFences, ac.FullFences, pen.FullFences)
		}
		for _, r := range []*Result{pen, ctl, ac} {
			if err := r.Verify(); err != nil {
				t.Errorf("%s/%s: %v", name, r.Strategy, err)
			}
			out := RunTSO(r.Instrumented, 1)
			if out.Failed() {
				t.Errorf("%s/%s failed under TSO: %v", name, r.Strategy, out.Failures)
			}
		}
	}
}

// TestCertifyLitmusSuite is the certification acceptance test over the
// litmus tests: Pensieve's placement (no DRF assumption) must certify on
// every test, and the pruned variants on every DRF test. Unfenced SB is
// deliberately racy — the one program where the DRF-conditional guarantee
// does not apply — so Control must detect the non-SC outcome and produce a
// schedule, which is the certification layer doing its job.
func TestCertifyLitmusSuite(t *testing.T) {
	for _, lt := range litmus.All() {
		pen := Analyze(lt.Prog, PensieveOnly)
		rep, err := CertifyThreads(pen, lt.Threads)
		if err != nil {
			t.Fatalf("%s/Pensieve: %v", lt.Name, err)
		}
		if !rep.Equivalent {
			t.Errorf("%s/Pensieve: not certified: %s", lt.Name, rep)
		}

		ctl := Analyze(lt.Prog, Control)
		rep, err = CertifyThreads(ctl, lt.Threads)
		if err != nil {
			t.Fatalf("%s/Control: %v", lt.Name, err)
		}
		racy := lt.AllowedTSO && !lt.AllowedSC // unfenced SB only
		if racy {
			if rep.Equivalent {
				t.Errorf("%s/Control: racy program wrongly certified", lt.Name)
			} else if len(rep.Violations) == 0 || rep.Violations[0].Schedule == nil {
				t.Errorf("%s/Control: violation without counterexample schedule", lt.Name)
			}
		} else if !rep.Equivalent {
			t.Errorf("%s/Control: DRF litmus test not certified: %s", lt.Name, rep)
		}
	}
}

// TestCertifyCorpusKernels certifies whole corpus programs — spawn, join
// and spin loops included — which the legacy explorer could not execute at
// all. The Dekker-family kernels need their w→r fences, so certifying the
// unfenced legacy build must fail.
func TestCertifyCorpusKernels(t *testing.T) {
	for _, name := range []string{"dekker", "peterson"} {
		m := progs.ByName(name)
		pp := m.Defaults
		pp.Threads = 2
		pp.Size = 1
		res := Analyze(m.Build(pp), Control)
		rep, err := Certify(res)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !rep.Equivalent {
			t.Errorf("%s/Control: not certified: %s", name, rep)
		}

		// Negative control: the unfenced build must not certify.
		bare := *res
		bare.Instrumented = res.Prog
		rep, err = Certify(&bare)
		if err != nil {
			t.Fatalf("%s unfenced: %v", name, err)
		}
		if rep.Equivalent {
			t.Errorf("%s: unfenced build wrongly certified SC-equivalent", name)
		}
	}
}

func TestCertifyMPFromSource(t *testing.T) {
	p := MustParse(mpSrc)
	res := Analyze(p, Control)
	rep, err := Certify(res)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equivalent {
		t.Fatalf("instrumented MP not certified: %s", rep)
	}
}

// TestAnalyzerDifferential is the shared-session equivalence obligation:
// for every corpus program, AnalyzeAll on one Analyzer must produce output
// identical — acquires, orderings kept, fences placed, and the full
// instrumented program text — to three independent seed-style Analyze
// calls, each computing its passes from scratch. CI runs this under -race,
// which also exercises the parallel per-function and per-strategy fan-out.
func TestAnalyzerDifferential(t *testing.T) {
	strategies := []Strategy{PensieveOnly, AddressControl, Control}
	for _, m := range progs.EvalSet() {
		p := m.Default()
		all := NewAnalyzer(p).AnalyzeAll(strategies...)
		for i, res := range all {
			if res.Strategy != strategies[i] {
				t.Fatalf("%s: result %d is %s, want %s", m.Name, i, res.Strategy, strategies[i])
			}
			indep := Analyze(p, res.Strategy)
			name := m.Name + "/" + res.Strategy.String()
			if res.EscapingReads != indep.EscapingReads {
				t.Errorf("%s: %d escaping reads, independent %d", name, res.EscapingReads, indep.EscapingReads)
			}
			if len(res.Acquires) != len(indep.Acquires) {
				t.Errorf("%s: %d acquires, independent %d", name, len(res.Acquires), len(indep.Acquires))
			} else {
				for j := range res.Acquires {
					if res.Acquires[j] != indep.Acquires[j] {
						t.Errorf("%s: acquire %d differs: [%s] vs [%s]", name, j, res.Acquires[j], indep.Acquires[j])
					}
				}
			}
			if res.OrderingsGenerated != indep.OrderingsGenerated || res.OrderingsKept != indep.OrderingsKept {
				t.Errorf("%s: orderings %d/%d, independent %d/%d", name,
					res.OrderingsGenerated, res.OrderingsKept,
					indep.OrderingsGenerated, indep.OrderingsKept)
			}
			if res.FullFences != indep.FullFences || res.CompilerBarriers != indep.CompilerBarriers {
				t.Errorf("%s: fences %d+%d, independent %d+%d", name,
					res.FullFences, res.CompilerBarriers,
					indep.FullFences, indep.CompilerBarriers)
			}
			if got, want := Format(res.Instrumented), Format(indep.Instrumented); got != want {
				t.Errorf("%s: instrumented programs differ", name)
			}
		}
	}
}

// TestAnalyzerTimingSummary: WithTiming surfaces per-pass wall times in
// Summary; without the option the summary stays a single line.
func TestAnalyzerTimingSummary(t *testing.T) {
	p := MustParse(mpSrc)
	az := NewAnalyzer(p, WithTiming())
	res := az.Analyze(Control)
	if len(res.Timings) == 0 {
		t.Fatal("WithTiming produced no pass timings")
	}
	s := res.Summary()
	for _, pass := range []string{"alias", "escape", "orders", "acquire/Control"} {
		if !strings.Contains(s, pass) {
			t.Errorf("timed summary missing pass %q:\n%s", pass, s)
		}
	}
	// Timings are filtered per strategy: Control's summary must not carry
	// other strategies' passes, and Pensieve's must not mention slicing.
	if strings.Contains(s, "Pensieve") || strings.Contains(s, "Address+Control") {
		t.Errorf("Control summary leaks other strategies' passes:\n%s", s)
	}
	pen := az.Analyze(PensieveOnly).Summary()
	if strings.Contains(pen, "acquire/") || strings.Contains(pen, "slice-index") {
		t.Errorf("Pensieve summary leaks acquire passes:\n%s", pen)
	}
	plain := NewAnalyzer(MustParse(mpSrc)).Analyze(Control)
	if len(plain.Timings) != 0 || strings.Contains(plain.Summary(), "passes:") {
		t.Error("untimed analyzer leaked timings into the summary")
	}
}

// TestVerifyCoverageError: a result whose fences are stripped must fail
// verification with a structured CoverageError naming the gap.
func TestVerifyCoverageError(t *testing.T) {
	p := MustParse(mpSrc)
	res := Analyze(p, Control)
	if err := res.Verify(); err != nil {
		t.Fatalf("covering plan rejected: %v", err)
	}
	// Rebuild a result with an empty plan over the same kept set: every
	// w->r ordering is now uncovered.
	broken := *res
	broken.plan = &fence.Plan{Prog: res.Prog}
	err := broken.Verify()
	if err == nil {
		t.Fatal("empty plan verified")
	}
	var ce *CoverageError
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T, want *CoverageError: %v", err, err)
	}
	if ce.Fn == nil || ce.From == nil || ce.To == nil {
		t.Errorf("coverage error missing context: %+v", ce)
	}
	if !strings.Contains(ce.Error(), "uncovered") || !strings.Contains(ce.Error(), ce.Fn.Name) {
		t.Errorf("unhelpful coverage error: %v", ce)
	}
}

func TestStrategyNames(t *testing.T) {
	if PensieveOnly.String() != "Pensieve" || Control.String() != "Control" ||
		AddressControl.String() != "Address+Control" {
		t.Error("strategy names drifted; CLI output depends on them")
	}
}
