// Package orders implements Pensieve-style ordering generation and the
// paper's DRF pruning. Ordering generation (paper §4.3) records an ordering
// u→v for every pair of potentially-escaping accesses in a function with a
// control-flow path from u to v (including loop back edges and u==v inside
// a loop). Pruning (§2.3) then deletes the orderings that Table I does not
// require for a data-race-free program:
//
//	r1→r2 survives only as racq→r  (r1 must be a detected acquire)
//	w→r   survives only as w→racq  (r must be a detected acquire)
//	r→w and w→w always survive     (every escaping write is a release)
package orders

import (
	"fmt"

	"fenceplace/internal/acquire"
	"fenceplace/internal/cfg"
	"fenceplace/internal/escape"
	"fenceplace/internal/ir"
)

// Type classifies an ordering by the memory effects of its endpoints.
// Read-modify-writes count as writes at the source (their store is what a
// successor must wait for) and as reads at the destination.
type Type uint8

const (
	RR Type = iota // read  → read
	RW             // read  → write
	WR             // write → read
	WW             // write → write
	numTypes
)

func (t Type) String() string {
	switch t {
	case RR:
		return "r->r"
	case RW:
		return "r->w"
	case WR:
		return "w->r"
	case WW:
		return "w->w"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Types lists all ordering types in display order.
var Types = [...]Type{RR, RW, WR, WW}

// Ordering is a required program-order edge between two accesses of one
// function.
type Ordering struct {
	From, To *ir.Instr
	Type     Type
}

func classify(u, v *ir.Instr) Type {
	srcWrite := u.WritesMem()
	dstRead := v.ReadsMem()
	switch {
	case srcWrite && dstRead:
		return WR
	case srcWrite:
		return WW
	case dstRead:
		return RR
	default:
		return RW
	}
}

// isRMW reports whether the instruction is an atomic read-modify-write. On
// x86 these execute with an implicit full barrier (LOCK prefix), so
// orderings that start or end at one never need an extra MFENCE.
func isRMW(in *ir.Instr) bool { return in.Kind == ir.CAS || in.Kind == ir.FetchAdd }

// NeedsFullFenceTSO reports whether the ordering requires a full hardware
// fence on x86-TSO: only w→r is hardware-reorderable, and implicitly-locked
// RMW endpoints already enforce it (paper §4.4: "only orderings of the form
// w→r ... as the other orderings are enforced automatically by hardware").
func NeedsFullFenceTSO(o Ordering) bool {
	return o.Type == WR && !isRMW(o.From) && !isRMW(o.To)
}

// Set is the per-function collection of orderings for one program.
type Set struct {
	Prog  *ir.Program
	ByFn  map[*ir.Fn][]Ordering
	count [numTypes]int
}

// NewSet returns an empty ordering set for the program, to be filled with
// Add. Generate is the sequential convenience; a pass manager generates
// per-function lists in parallel with GenerateFn and assembles them here.
func NewSet(p *ir.Program) *Set {
	return &Set{Prog: p, ByFn: make(map[*ir.Fn][]Ordering, len(p.Funcs))}
}

// Add records a function's ordering list (as produced by GenerateFn) and
// updates the type counts. Empty lists are ignored.
func (s *Set) Add(f *ir.Fn, list []Ordering) {
	if len(list) == 0 {
		return
	}
	s.ByFn[f] = list
	for _, o := range list {
		s.count[o.Type]++
	}
}

// GenerateFn performs Pensieve ordering generation for a single function:
// all ordered pairs of escaping accesses connected by a path in g, which
// must be the CFG of f. It touches no shared state, so any number of
// functions may be generated concurrently.
func GenerateFn(f *ir.Fn, g *cfg.Graph, esc *escape.Result) []Ordering {
	accs := esc.EscapingAccesses(f)
	if len(accs) == 0 {
		return nil
	}
	var list []Ordering
	for _, u := range accs {
		for _, v := range accs {
			if !g.CanFollow(u, v) {
				continue
			}
			list = append(list, Ordering{From: u, To: v, Type: classify(u, v)})
		}
	}
	return list
}

// Generate performs Pensieve ordering generation over every function: all
// ordered pairs of escaping accesses connected by a CFG path.
func Generate(p *ir.Program, esc *escape.Result) *Set {
	s := NewSet(p)
	for _, f := range p.Funcs {
		s.Add(f, GenerateFn(f, cfg.New(f), esc))
	}
	return s
}

// Prune applies the paper's DRF pruning rules using a set of detected
// acquires, returning a new Set (the receiver is unchanged). An ordering
// survives iff Table I requires it:
//
//   - its source is a detected acquire read (racq → anything), or
//   - its destination writes (anything → wrel), or
//   - its source writes and its destination is a detected acquire (wrel → racq).
//
// Everything else — data-read-sourced r→r and w→(non-acquire r) — is pruned.
func (s *Set) Prune(acq *acquire.Result) *Set {
	out := &Set{Prog: s.Prog, ByFn: make(map[*ir.Fn][]Ordering, len(s.ByFn))}
	for f, list := range s.ByFn {
		var kept []Ordering
		for _, o := range list {
			if keep(o, acq) {
				kept = append(kept, o)
				out.count[o.Type]++
			}
		}
		if len(kept) > 0 {
			out.ByFn[f] = kept
		}
	}
	return out
}

func keep(o Ordering, acq *acquire.Result) bool {
	if o.From.ReadsMem() && acq.IsSync(o.From) {
		return true // racq → r/w (Table I, rule 2)
	}
	if o.To.WritesMem() {
		return true // r/w → wrel (Table I, rule 1; all writes are releases)
	}
	// Destination is a pure read.
	if o.From.WritesMem() {
		return acq.IsSync(o.To) // wrel → racq (Table I, rule 3)
	}
	return false // data read → data read
}

// Count returns the number of orderings of the given type.
func (s *Set) Count(t Type) int { return s.count[t] }

// Total returns the number of orderings across all types.
func (s *Set) Total() int {
	n := 0
	for _, c := range s.count {
		n += c
	}
	return n
}

// CountFull returns how many orderings need a full fence on x86-TSO.
func (s *Set) CountFull() int {
	n := 0
	for _, list := range s.ByFn {
		for _, o := range list {
			if NeedsFullFenceTSO(o) {
				n++
			}
		}
	}
	return n
}
