package orders

import (
	"testing"

	"fenceplace/internal/acquire"
	"fenceplace/internal/alias"
	"fenceplace/internal/escape"
	"fenceplace/internal/ir"
)

func prep(t *testing.T, p *ir.Program) (*escape.Result, *alias.Analysis) {
	t.Helper()
	al := alias.Analyze(p)
	return escape.Analyze(p, al), al
}

func TestStraightLineAllPairs(t *testing.T) {
	// w(x) r(y) w(z): escaping accesses in one block generate all 3 forward
	// pairs: w->r, w->w, r->w.
	pb := ir.NewProgram("p")
	x := pb.Global("x", 1)
	y := pb.Global("y", 1)
	z := pb.Global("z", 1)
	b := pb.Func("f", 0)
	b.Store(x, b.Const(1))
	v := b.Load(y)
	b.Store(z, v)
	b.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	esc, _ := prep(t, p)
	s := Generate(p, esc)
	if s.Total() != 3 {
		t.Fatalf("total orderings = %d, want 3", s.Total())
	}
	if s.Count(WR) != 1 || s.Count(WW) != 1 || s.Count(RW) != 1 || s.Count(RR) != 0 {
		t.Fatalf("counts rr=%d rw=%d wr=%d ww=%d, want 0/1/1/1",
			s.Count(RR), s.Count(RW), s.Count(WR), s.Count(WW))
	}
}

func TestLoopSelfOrdering(t *testing.T) {
	// A single escaping access inside a loop orders with itself via the
	// back edge.
	pb := ir.NewProgram("p")
	x := pb.Global("x", 1)
	b := pb.Func("f", 0)
	b.ForConst(0, 4, func(i ir.Reg) {
		b.Store(x, i)
	})
	b.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	esc, _ := prep(t, p)
	s := Generate(p, esc)
	f := p.Fn("f")
	foundSelf := false
	for _, o := range s.ByFn[f] {
		if o.From == o.To {
			foundSelf = true
			if o.Type != WW {
				t.Errorf("self ordering type = %s, want w->w", o.Type)
			}
		}
	}
	if !foundSelf {
		t.Error("loop store must order with itself")
	}
}

func TestNonEscapingAccessesIgnored(t *testing.T) {
	pb := ir.NewProgram("p")
	b := pb.Func("f", 0)
	buf := b.Alloca(2)
	b.StorePtr(buf, b.Const(1))
	v := b.LoadPtr(buf)
	_ = v
	b.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	esc, _ := prep(t, p)
	s := Generate(p, esc)
	if s.Total() != 0 {
		t.Fatalf("local-only function generated %d orderings", s.Total())
	}
}

func TestClassifyRMW(t *testing.T) {
	// CAS acts as write at the source and read at the destination.
	pb := ir.NewProgram("p")
	l := pb.Global("l", 1)
	x := pb.Global("x", 1)
	b := pb.Func("f", 0)
	pl := b.AddrOf(l)
	ok := b.CAS(pl, b.Const(0), b.Const(1)) // RMW access
	_ = ok
	v := b.Load(x) // read after RMW
	_ = v
	b.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	esc, _ := prep(t, p)
	s := Generate(p, esc)
	f := p.Fn("f")
	var casToLoad *Ordering
	for i, o := range s.ByFn[f] {
		if o.From.Kind == ir.CAS && o.To.Kind == ir.Load {
			casToLoad = &s.ByFn[f][i]
		}
	}
	if casToLoad == nil {
		t.Fatal("cas->load ordering missing")
	}
	if casToLoad.Type != WR {
		t.Fatalf("cas->load type = %s, want w->r", casToLoad.Type)
	}
	if NeedsFullFenceTSO(*casToLoad) {
		t.Error("locked RMW source must not need an extra full fence on TSO")
	}
}

func TestNeedsFullFenceTSO(t *testing.T) {
	mk := func(fk, tk ir.Kind) Ordering {
		f := &ir.Instr{Kind: fk}
		to := &ir.Instr{Kind: tk}
		return Ordering{From: f, To: to, Type: classify(f, to)}
	}
	if !NeedsFullFenceTSO(mk(ir.Store, ir.Load)) {
		t.Error("plain w->r needs a full fence")
	}
	for _, o := range []Ordering{
		mk(ir.Load, ir.Load), mk(ir.Load, ir.Store), mk(ir.Store, ir.Store),
		mk(ir.CAS, ir.Load), mk(ir.Store, ir.FetchAdd),
	} {
		if NeedsFullFenceTSO(o) {
			t.Errorf("%s (%s->%s) must not need a full fence on TSO", o.Type, o.From.Kind, o.To.Kind)
		}
	}
}

// mpProgram builds MP with an acquire spin so pruning has something real to
// chew on; returns the program plus its flag/data loads.
func mpProgram(t *testing.T) *ir.Program {
	pb := ir.NewProgram("mp")
	data := pb.Global("data", 1)
	flag := pb.Global("flag", 1)
	sink := pb.Global("sink", 1)
	prod := pb.Func("producer", 0)
	one := prod.Const(1)
	prod.Store(data, one)
	prod.Store(flag, one)
	prod.RetVoid()
	cons := pb.Func("consumer", 0)
	one2 := cons.Const(1)
	cons.SpinWhileNe(flag, ir.NoReg, one2)
	v := cons.Load(data)
	cons.Store(sink, v)
	cons.RetVoid()
	main := pb.Func("main", 0)
	t1 := main.Spawn("producer")
	t2 := main.Spawn("consumer")
	main.Join(t1)
	main.Join(t2)
	main.RetVoid()
	pb.SetMain("main")
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPruneRules(t *testing.T) {
	p := mpProgram(t)
	al := alias.Analyze(p)
	esc := escape.Analyze(p, al)
	full := Generate(p, esc)
	acq := acquire.Detect(p, al, esc, acquire.Control)
	pruned := full.Prune(acq)

	if pruned.Total() > full.Total() {
		t.Fatal("pruning increased ordering count")
	}
	// Producer has w(data)->w(flag): kept (to-write).
	prod := p.Fn("producer")
	if got := len(pruned.ByFn[prod]); got != len(full.ByFn[prod]) {
		t.Errorf("producer w->w orderings must all survive: %d vs %d", got, len(full.ByFn[prod]))
	}
	// Consumer: flag load is the acquire. Orderings from the acquire
	// survive; data-read -> data-read (load data -> nothing here) and
	// racq->r survive; but r(data)->r would be pruned if present.
	cons := p.Fn("consumer")
	for _, o := range pruned.ByFn[cons] {
		if o.Type == RR && !acq.IsSync(o.From) {
			t.Errorf("surviving r->r with non-acquire source: %s -> %s", o.From, o.To)
		}
		if o.Type == WR && !acq.IsSync(o.To) && !acq.IsSync(o.From) {
			t.Errorf("surviving w->r with non-acquire destination: %s -> %s", o.From, o.To)
		}
	}
	// The acquire->data-read ordering must survive.
	foundAcqData := false
	for _, o := range pruned.ByFn[cons] {
		if acq.IsSync(o.From) && o.To.Kind == ir.Load && o.To.G.Name == "data" {
			foundAcqData = true
		}
	}
	if !foundAcqData {
		t.Error("racq -> r(data) ordering pruned but required")
	}
}

func TestPruneWithNoAcquiresKeepsOnlyWriteSinks(t *testing.T) {
	// With an empty acquire set, every surviving ordering must end in a
	// write (release rule): all →r edges are pruned.
	p := mpProgram(t)
	al := alias.Analyze(p)
	esc := escape.Analyze(p, al)
	full := Generate(p, esc)
	// An acquire result computed over a program with no functions flags
	// nothing, i.e. it is the empty acquire set.
	emptyProg := ir.NewProgram("empty").MustBuild()
	empty := acquire.Detect(emptyProg, alias.Analyze(emptyProg), escape.Analyze(emptyProg, alias.Analyze(emptyProg)), acquire.Control)
	pruned := full.Prune(empty)
	if pruned.Count(RR) != 0 || pruned.Count(WR) != 0 {
		t.Fatalf("empty acquire set left rr=%d wr=%d orderings", pruned.Count(RR), pruned.Count(WR))
	}
	if pruned.Count(RW) != full.Count(RW) || pruned.Count(WW) != full.Count(WW) {
		t.Fatal("pruning must not touch →w orderings")
	}
	for _, f := range p.Funcs {
		for _, o := range pruned.ByFn[f] {
			if !o.To.WritesMem() {
				t.Errorf("survivor does not end in a write: %s [%s -> %s]", o.Type, o.From, o.To)
			}
		}
	}
}

func TestTypeStrings(t *testing.T) {
	want := map[Type]string{RR: "r->r", RW: "r->w", WR: "w->r", WW: "w->w"}
	for ty, s := range want {
		if ty.String() != s {
			t.Errorf("Type(%d).String() = %q, want %q", ty, ty.String(), s)
		}
	}
	if len(Types) != int(numTypes) {
		t.Error("Types list out of sync")
	}
}
