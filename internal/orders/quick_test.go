package orders

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fenceplace/internal/acquire"
	"fenceplace/internal/alias"
	"fenceplace/internal/escape"
	"fenceplace/internal/ir"
)

// quickProgram builds a small random single-function program from a seed:
// global loads/stores, arithmetic, branches and loops.
func quickProgram(seed int64) *ir.Program {
	rng := rand.New(rand.NewSource(seed))
	pb := ir.NewProgram("q")
	gs := []*ir.Global{pb.Global("a", 1), pb.Global("b", 4), pb.Global("c", 1)}
	b := pb.Func("f", 0)
	vals := []ir.Reg{b.Const(int64(rng.Intn(10)))}
	n := 4 + rng.Intn(10)
	for i := 0; i < n; i++ {
		g := gs[rng.Intn(len(gs))]
		v := vals[rng.Intn(len(vals))]
		switch rng.Intn(5) {
		case 0:
			vals = append(vals, b.Load(g))
		case 1:
			b.Store(g, v)
		case 2:
			vals = append(vals, b.Add(v, vals[rng.Intn(len(vals))]))
		case 3:
			b.If(b.Gt(v, b.Const(2)), func() {
				b.Store(gs[rng.Intn(len(gs))], v)
			})
		case 4:
			b.ForConst(0, int64(1+rng.Intn(3)), func(j ir.Reg) {
				vals = append(vals, b.Load(gs[rng.Intn(len(gs))]))
			})
		}
	}
	b.RetVoid()
	return pb.MustBuild()
}

// TestQuickPruneInvariants checks, over random programs (testing/quick
// supplies the seeds), the core pruning invariants: pruning is a
// subset-producing, idempotent operation that never touches →w orderings
// and never drops an acquire-sourced ordering.
func TestQuickPruneInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		p := quickProgram(seed % 100000)
		al := alias.Analyze(p)
		esc := escape.Analyze(p, al)
		full := Generate(p, esc)
		acq := acquire.Detect(p, al, esc, acquire.Control)
		pruned := full.Prune(acq)

		if pruned.Total() > full.Total() {
			return false
		}
		// Idempotence.
		again := pruned.Prune(acq)
		if again.Total() != pruned.Total() {
			return false
		}
		// →w orderings untouched; acquire-sourced orderings kept.
		if pruned.Count(RW) != full.Count(RW) || pruned.Count(WW) != full.Count(WW) {
			return false
		}
		keptSet := map[[2]*ir.Instr]bool{}
		for _, f := range p.Funcs {
			for _, o := range pruned.ByFn[f] {
				keptSet[[2]*ir.Instr{o.From, o.To}] = true
			}
		}
		for _, f := range p.Funcs {
			for _, o := range full.ByFn[f] {
				mustKeep := (o.From.ReadsMem() && acq.IsSync(o.From)) || o.To.WritesMem()
				if mustKeep && !keptSet[[2]*ir.Instr{o.From, o.To}] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGenerateMatchesCanFollow checks that ordering generation agrees
// with a direct quadratic recomputation over random programs.
func TestQuickGenerateMatchesCanFollow(t *testing.T) {
	prop := func(seed int64) bool {
		p := quickProgram(seed % 100000)
		al := alias.Analyze(p)
		esc := escape.Analyze(p, al)
		s := Generate(p, esc)
		total := 0
		for _, f := range p.Funcs {
			total += len(s.ByFn[f])
		}
		return total == s.Total()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
