// Package alias implements a whole-program, flow-insensitive,
// field-insensitive, inclusion-based (Andersen-style) points-to analysis
// over the ir. It plays the role of the LLVM alias analysis the paper's
// implementation leans on: the backwards slicer consults PotentialWriters
// (Listing 2, line 17) and the ordering generator consults MayAlias.
//
// Abstract locations are: one per Global (an array is a single location —
// field-insensitive), one per Alloca site and one per Malloc site. Pointer
// values are tracked through Move/Gep/BinOp/Call/Spawn/Ret and through
// memory (one contents set per location). The analysis is conservative in
// the usual directions: unknown pointers alias everything, arithmetic
// propagates pointees, and a location's contents are merged over all its
// cells.
package alias

import (
	"fmt"
	"sort"

	"fenceplace/internal/ir"
)

// LocKind distinguishes the three families of abstract memory locations.
type LocKind uint8

const (
	// GlobalLoc is a named shared Global (scalar or whole array).
	GlobalLoc LocKind = iota
	// AllocaLoc is the block of words created by one alloca site.
	AllocaLoc
	// MallocLoc is the block of words created by one malloc site.
	MallocLoc
)

func (k LocKind) String() string {
	switch k {
	case GlobalLoc:
		return "global"
	case AllocaLoc:
		return "alloca"
	case MallocLoc:
		return "malloc"
	}
	return fmt.Sprintf("lockind(%d)", uint8(k))
}

// Loc is an abstract memory location.
type Loc struct {
	Kind LocKind
	G    *ir.Global // for GlobalLoc
	Site *ir.Instr  // for AllocaLoc / MallocLoc
	id   int
}

// ID returns the location's dense index, stable within one Analysis.
func (l *Loc) ID() int { return l.id }

func (l *Loc) String() string {
	switch l.Kind {
	case GlobalLoc:
		return "global:" + l.G.Name
	case AllocaLoc:
		return fmt.Sprintf("alloca:%s@%s#%d", l.Site.Block().Fn().Name, l.Site.Block().Name, l.Site.Pos())
	case MallocLoc:
		return fmt.Sprintf("malloc:%s@%s#%d", l.Site.Block().Fn().Name, l.Site.Block().Name, l.Site.Pos())
	}
	return "loc:?"
}

// locset is a small sparse set of location IDs.
type locset map[int]struct{}

func (s locset) add(id int) bool {
	if _, ok := s[id]; ok {
		return false
	}
	s[id] = struct{}{}
	return true
}

// Analysis holds the solved points-to relation for one program.
type Analysis struct {
	prog *ir.Program
	locs []*Loc

	globalLoc map[*ir.Global]*Loc
	siteLoc   map[*ir.Instr]*Loc

	regBase map[*ir.Fn]int // varID of (fn, reg0)
	nVars   int

	pts      []locset // var id -> pointees
	contents []locset // loc id -> pointees stored in it

	// Access location sets, precomputed after the solve so every query on
	// a finished Analysis is a read-only lookup (concurrent passes share
	// one Analysis without synchronization). accLocs holds the sorted
	// may-touch set per access; accSet the same set keyed for O(1)
	// membership; accKnown is false for statically unknown targets.
	accLocs  map[*ir.Instr][]*Loc
	accSet   map[*ir.Instr]locset
	accKnown map[*ir.Instr]bool
}

// Analyze runs the points-to analysis to fixpoint. The program must have
// been finalized.
func Analyze(p *ir.Program) *Analysis {
	a := &Analysis{
		prog:      p,
		globalLoc: make(map[*ir.Global]*Loc),
		siteLoc:   make(map[*ir.Instr]*Loc),
		regBase:   make(map[*ir.Fn]int),
	}
	for _, g := range p.Globals {
		l := &Loc{Kind: GlobalLoc, G: g, id: len(a.locs)}
		a.locs = append(a.locs, l)
		a.globalLoc[g] = l
	}
	for _, f := range p.Funcs {
		a.regBase[f] = a.nVars
		a.nVars += f.NRegs
		f.Instrs(func(in *ir.Instr) {
			switch in.Kind {
			case ir.Alloca:
				l := &Loc{Kind: AllocaLoc, Site: in, id: len(a.locs)}
				a.locs = append(a.locs, l)
				a.siteLoc[in] = l
			case ir.Malloc:
				l := &Loc{Kind: MallocLoc, Site: in, id: len(a.locs)}
				a.locs = append(a.locs, l)
				a.siteLoc[in] = l
			}
		})
	}
	a.pts = make([]locset, a.nVars)
	for i := range a.pts {
		a.pts[i] = locset{}
	}
	a.contents = make([]locset, len(a.locs))
	for i := range a.contents {
		a.contents[i] = locset{}
	}
	a.solve()
	a.indexAccesses()
	return a
}

// indexAccesses materializes the may-touch set of every memory access once
// the points-to relation is stable. MayAlias and PotentialWriters are the
// slicer's inner loop; resolving them to set lookups here keeps the hot
// path allocation-free and leaves the Analysis immutable afterwards.
func (a *Analysis) indexAccesses() {
	a.accLocs = make(map[*ir.Instr][]*Loc)
	a.accSet = make(map[*ir.Instr]locset)
	a.accKnown = make(map[*ir.Instr]bool)
	for _, f := range a.prog.Funcs {
		f.Instrs(func(in *ir.Instr) {
			if !in.IsAccess() {
				return
			}
			var set locset
			switch in.Kind {
			case ir.Load, ir.Store:
				set = locset{a.globalLoc[in.G].id: struct{}{}}
			case ir.LoadPtr, ir.StorePtr, ir.CAS, ir.FetchAdd:
				set = a.pts[a.varID(f, in.Addr)]
				if len(set) == 0 {
					a.accKnown[in] = false
					return
				}
			default:
				return
			}
			locs := make([]*Loc, 0, len(set))
			for id := range set {
				locs = append(locs, a.locs[id])
			}
			sort.Slice(locs, func(i, j int) bool { return locs[i].id < locs[j].id })
			a.accLocs[in] = locs
			a.accSet[in] = set
			a.accKnown[in] = true
		})
	}
}

func (a *Analysis) varID(f *ir.Fn, r ir.Reg) int {
	return a.regBase[f] + int(r)
}

// solve iterates the inclusion constraints to a fixpoint. The constraint
// set is small (corpus functions have tens to hundreds of instructions), so
// a simple "repeat until no change" sweep is clear and fast enough.
func (a *Analysis) solve() {
	for changed := true; changed; {
		changed = false
		for _, f := range a.prog.Funcs {
			f.Instrs(func(in *ir.Instr) {
				if a.apply(f, in) {
					changed = true
				}
			})
		}
	}
}

// copyInto merges src into dst, reporting change.
func copyInto(dst, src locset) bool {
	changed := false
	for id := range src {
		if dst.add(id) {
			changed = true
		}
	}
	return changed
}

func (a *Analysis) apply(f *ir.Fn, in *ir.Instr) bool {
	changed := false
	ptsOf := func(r ir.Reg) locset { return a.pts[a.varID(f, r)] }
	switch in.Kind {
	case ir.AddrOf:
		if a.pts[a.varID(f, in.Dst)].add(a.globalLoc[in.G].id) {
			changed = true
		}
	case ir.Alloca, ir.Malloc:
		if a.pts[a.varID(f, in.Dst)].add(a.siteLoc[in].id) {
			changed = true
		}
	case ir.Move:
		changed = copyInto(ptsOf(in.Dst), ptsOf(in.A))
	case ir.Gep:
		// Address arithmetic: either operand may carry the pointer; the
		// result points wherever they do (field-insensitive).
		changed = copyInto(ptsOf(in.Dst), ptsOf(in.A))
		if copyInto(ptsOf(in.Dst), ptsOf(in.B)) {
			changed = true
		}
	case ir.BinOp:
		// Pointers may be laundered through arithmetic; stay conservative.
		changed = copyInto(ptsOf(in.Dst), ptsOf(in.A))
		if copyInto(ptsOf(in.Dst), ptsOf(in.B)) {
			changed = true
		}
	case ir.Load:
		changed = copyInto(ptsOf(in.Dst), a.contents[a.globalLoc[in.G].id])
	case ir.Store:
		changed = copyInto(a.contents[a.globalLoc[in.G].id], ptsOf(in.A))
	case ir.LoadPtr:
		for id := range ptsOf(in.Addr) {
			if copyInto(ptsOf(in.Dst), a.contents[id]) {
				changed = true
			}
		}
	case ir.StorePtr:
		for id := range ptsOf(in.Addr) {
			if copyInto(a.contents[id], ptsOf(in.A)) {
				changed = true
			}
		}
	case ir.CAS:
		// The stored value is B; the result is a flag (no pointer flow out).
		for id := range ptsOf(in.Addr) {
			if copyInto(a.contents[id], ptsOf(in.B)) {
				changed = true
			}
		}
	case ir.FetchAdd:
		// Old value flows out; the delta flows in (conservatively).
		for id := range ptsOf(in.Addr) {
			if copyInto(ptsOf(in.Dst), a.contents[id]) {
				changed = true
			}
			if copyInto(a.contents[id], ptsOf(in.A)) {
				changed = true
			}
		}
	case ir.Call, ir.Spawn:
		callee := a.prog.Fn(in.Callee)
		for i, arg := range in.Args {
			if copyInto(a.pts[a.varID(callee, ir.Reg(i))], ptsOf(arg)) {
				changed = true
			}
		}
		if in.Kind == ir.Call && in.Dst != ir.NoReg {
			// Return flow: every `ret r` in the callee feeds the call result.
			callee.Instrs(func(ci *ir.Instr) {
				if ci.Kind == ir.Ret && ci.A != ir.NoReg {
					if copyInto(ptsOf(in.Dst), a.pts[a.varID(callee, ci.A)]) {
						changed = true
					}
				}
			})
		}
	}
	return changed
}

// Locs returns all abstract locations, ordered by ID.
func (a *Analysis) Locs() []*Loc { return a.locs }

// GlobalLocOf returns the location modeling global g.
func (a *Analysis) GlobalLocOf(g *ir.Global) *Loc { return a.globalLoc[g] }

// SiteLocOf returns the location created by an Alloca/Malloc site, or nil.
func (a *Analysis) SiteLocOf(in *ir.Instr) *Loc { return a.siteLoc[in] }

// PointsTo returns the locations register r of fn may point to, ordered by
// location ID.
func (a *Analysis) PointsTo(f *ir.Fn, r ir.Reg) []*Loc {
	set := a.pts[a.varID(f, r)]
	out := make([]*Loc, 0, len(set))
	for id := range set {
		out = append(out, a.locs[id])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Contents returns the locations that may be stored inside l.
func (a *Analysis) Contents(l *Loc) []*Loc {
	set := a.contents[l.id]
	out := make([]*Loc, 0, len(set))
	for id := range set {
		out = append(out, a.locs[id])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// AccessLocs returns the abstract locations a memory access may touch. The
// second result is false when the target is statically unknown (an empty
// points-to set on a pointer access), in which case the access must be
// assumed to touch anything.
func (a *Analysis) AccessLocs(in *ir.Instr) ([]*Loc, bool) {
	if known, ok := a.accKnown[in]; ok {
		return a.accLocs[in], known
	}
	return nil, true
}

// MayAlias reports whether two memory accesses may touch a common location.
// Accesses with statically unknown targets alias everything.
func (a *Analysis) MayAlias(u, v *ir.Instr) bool {
	if known, ok := a.accKnown[u]; ok && !known {
		return true
	}
	if known, ok := a.accKnown[v]; ok && !known {
		return true
	}
	su, sv := a.accSet[u], a.accSet[v]
	if len(su) > len(sv) {
		su, sv = sv, su
	}
	for id := range su {
		if _, ok := sv[id]; ok {
			return true
		}
	}
	return false
}

// PotentialWriters returns, in program order, the store-kind instructions in
// fn that may have written the location read by the given load-kind
// instruction — the slicer's "potential_writers" (Listing 2).
func (a *Analysis) PotentialWriters(f *ir.Fn, load *ir.Instr) []*ir.Instr {
	if !load.ReadsMem() {
		return nil
	}
	var out []*ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in == load || !in.WritesMem() {
			return
		}
		if a.MayAlias(load, in) {
			out = append(out, in)
		}
	})
	return out
}
