package alias

import (
	"testing"

	"fenceplace/internal/ir"
)

func find(f *ir.Fn, k ir.Kind, n int) *ir.Instr {
	var found *ir.Instr
	count := 0
	f.Instrs(func(in *ir.Instr) {
		if in.Kind == k {
			if count == n {
				found = in
			}
			count++
		}
	})
	return found
}

func TestAddrOfAndLoadPtr(t *testing.T) {
	pb := ir.NewProgram("p")
	x := pb.Global("x", 1)
	y := pb.Global("y", 1)
	b := pb.Func("f", 0)
	px := b.AddrOf(x)  // px -> {x}
	v := b.LoadPtr(px) // reads x
	py := b.AddrOf(y)  // py -> {y}
	b.StorePtr(py, v)  // writes y
	b.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(p)
	f := p.Fn("f")

	pts := a.PointsTo(f, px)
	if len(pts) != 1 || pts[0].G != x {
		t.Fatalf("pts(px) = %v, want {x}", pts)
	}
	lp := find(f, ir.LoadPtr, 0)
	locs, ok := a.AccessLocs(lp)
	if !ok || len(locs) != 1 || locs[0].G != x {
		t.Fatalf("AccessLocs(loadptr) = %v,%v", locs, ok)
	}
	sp := find(f, ir.StorePtr, 0)
	if a.MayAlias(lp, sp) {
		t.Error("load of x and store of y must not alias")
	}
	_ = py
}

func TestPointerThroughMemory(t *testing.T) {
	// q = &x stored into global slot; later loaded and dereferenced: the
	// dereference must alias x.
	pb := ir.NewProgram("p")
	x := pb.Global("x", 1)
	slot := pb.Global("slot", 1)
	b := pb.Func("f", 0)
	px := b.AddrOf(x)
	b.Store(slot, px)
	q := b.Load(slot)
	w := b.LoadPtr(q)
	_ = w
	b.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(p)
	f := p.Fn("f")
	lp := find(f, ir.LoadPtr, 0)
	locs, ok := a.AccessLocs(lp)
	if !ok {
		t.Fatal("deref of loaded pointer should be known")
	}
	if len(locs) != 1 || locs[0].G != x {
		t.Fatalf("deref locs = %v, want {x}", locs)
	}
}

func TestGepPropagates(t *testing.T) {
	pb := ir.NewProgram("p")
	arr := pb.Global("arr", 16)
	b := pb.Func("f", 1)
	base := b.AddrOf(arr)
	ptr := b.Gep(base, b.Param(0))
	v := b.LoadPtr(ptr)
	_ = v
	b.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(p)
	f := p.Fn("f")
	lp := find(f, ir.LoadPtr, 0)
	locs, ok := a.AccessLocs(lp)
	if !ok || len(locs) != 1 || locs[0].G != arr {
		t.Fatalf("gep deref locs = %v,%v want {arr}", locs, ok)
	}
}

func TestInterproceduralFlow(t *testing.T) {
	// main passes &x to helper, which dereferences it. The helper's access
	// must resolve to x. The helper also returns the pointer; the caller's
	// deref of the returned value must also resolve to x.
	pb := ir.NewProgram("p")
	x := pb.Global("x", 1)

	h := pb.Func("helper", 1)
	hv := h.LoadPtr(h.Param(0))
	_ = hv
	h.Ret(h.Param(0))

	m := pb.Func("main", 0)
	px := m.AddrOf(x)
	r := m.Call("helper", px)
	v2 := m.LoadPtr(r)
	_ = v2
	m.RetVoid()
	pb.SetMain("main")
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(p)

	hl := find(p.Fn("helper"), ir.LoadPtr, 0)
	locs, ok := a.AccessLocs(hl)
	if !ok || len(locs) != 1 || locs[0].G != x {
		t.Fatalf("helper deref = %v,%v, want {x}", locs, ok)
	}
	ml := find(p.Fn("main"), ir.LoadPtr, 0)
	locs, ok = a.AccessLocs(ml)
	if !ok || len(locs) != 1 || locs[0].G != x {
		t.Fatalf("main deref of returned ptr = %v,%v, want {x}", locs, ok)
	}
}

func TestSpawnBindsParams(t *testing.T) {
	pb := ir.NewProgram("p")
	x := pb.Global("x", 1)
	w := pb.Func("worker", 1)
	w.StorePtr(w.Param(0), w.Const(1))
	w.RetVoid()
	m := pb.Func("main", 0)
	tid := m.Spawn("worker", m.AddrOf(x))
	m.Join(tid)
	m.RetVoid()
	pb.SetMain("main")
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(p)
	sp := find(p.Fn("worker"), ir.StorePtr, 0)
	locs, ok := a.AccessLocs(sp)
	if !ok || len(locs) != 1 || locs[0].G != x {
		t.Fatalf("worker store = %v,%v, want {x}", locs, ok)
	}
}

func TestMallocSitesDistinct(t *testing.T) {
	pb := ir.NewProgram("p")
	b := pb.Func("f", 0)
	m1 := b.Malloc(4)
	m2 := b.Malloc(4)
	b.StorePtr(m1, b.Const(1))
	b.StorePtr(m2, b.Const(2))
	v := b.LoadPtr(m1)
	_ = v
	b.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(p)
	f := p.Fn("f")
	s1 := find(f, ir.StorePtr, 0)
	s2 := find(f, ir.StorePtr, 1)
	ld := find(f, ir.LoadPtr, 0)
	if a.MayAlias(s1, s2) {
		t.Error("two malloc sites must not alias")
	}
	if !a.MayAlias(ld, s1) {
		t.Error("load of m1 must alias store to m1")
	}
	if a.MayAlias(ld, s2) {
		t.Error("load of m1 must not alias store to m2")
	}
}

func TestUnknownPointerAliasesEverything(t *testing.T) {
	// A pointer from thin air (constant arithmetic) has an empty points-to
	// set; dereferencing it must be treated as touching anything.
	pb := ir.NewProgram("p")
	x := pb.Global("x", 1)
	b := pb.Func("f", 0)
	mystery := b.Const(1234)
	v := b.LoadPtr(mystery)
	_ = v
	b.Store(x, b.Const(1))
	b.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(p)
	f := p.Fn("f")
	lp := find(f, ir.LoadPtr, 0)
	st := find(f, ir.Store, 0)
	if _, ok := a.AccessLocs(lp); ok {
		t.Fatal("mystery pointer should be unknown")
	}
	if !a.MayAlias(lp, st) {
		t.Error("unknown access must alias everything")
	}
}

func TestPotentialWriters(t *testing.T) {
	pb := ir.NewProgram("p")
	x := pb.Global("x", 1)
	y := pb.Global("y", 1)
	b := pb.Func("f", 0)
	b.Store(x, b.Const(1)) // writer of x
	b.Store(y, b.Const(2)) // not a writer of x
	v := b.Load(x)
	px := b.AddrOf(x)
	b.StorePtr(px, b.Const(3)) // may-writer of x through pointer
	_ = v
	b.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(p)
	f := p.Fn("f")
	ld := find(f, ir.Load, 0)
	ws := a.PotentialWriters(f, ld)
	if len(ws) != 2 {
		t.Fatalf("got %d potential writers, want 2 (direct store + ptr store)", len(ws))
	}
	for _, w := range ws {
		if w.Kind == ir.Store && w.G == y {
			t.Error("store to y wrongly counted as writer of x")
		}
	}
	// Non-read instructions yield nothing.
	if got := a.PotentialWriters(f, find(f, ir.Store, 0)); got != nil {
		t.Fatalf("PotentialWriters(store) = %v, want nil", got)
	}
}

func TestCASStoresPointer(t *testing.T) {
	// CAS installing &x into a slot: a later deref of the slot's content
	// must see x.
	pb := ir.NewProgram("p")
	x := pb.Global("x", 1)
	slot := pb.Global("slot", 1)
	b := pb.Func("f", 0)
	px := b.AddrOf(x)
	pslot := b.AddrOf(slot)
	zero := b.Const(0)
	ok := b.CAS(pslot, zero, px)
	_ = ok
	q := b.Load(slot)
	v := b.LoadPtr(q)
	_ = v
	b.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(p)
	f := p.Fn("f")
	lp := find(f, ir.LoadPtr, 0)
	locs, okAcc := a.AccessLocs(lp)
	if !okAcc || len(locs) != 1 || locs[0].G != x {
		t.Fatalf("deref after CAS install = %v, want {x}", locs)
	}
}

func TestLocStrings(t *testing.T) {
	pb := ir.NewProgram("p")
	x := pb.Global("x", 1)
	b := pb.Func("f", 0)
	al := b.Alloca(2)
	ml := b.Malloc(2)
	_, _ = al, ml
	b.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(p)
	if got := a.GlobalLocOf(x).String(); got != "global:x" {
		t.Errorf("global loc string = %q", got)
	}
	for _, l := range a.Locs() {
		if l.String() == "loc:?" {
			t.Errorf("loc %d has no string", l.ID())
		}
	}
	if len(a.Locs()) != 3 {
		t.Fatalf("got %d locs, want 3", len(a.Locs()))
	}
}
