// Package buildinfo derives the build's identity — VCS commit, commit
// time, dirty flag, module version and toolchain — from the metadata the
// Go linker stamps into every binary (debug.ReadBuildInfo). There is
// nothing to wire in the build system: `go build` embeds the data, and
// every CLI's -version flag and fenced's /statusz read it from here, so
// all seven commands report identical provenance for one build.
package buildinfo

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// Info is the build's identity, with every field best-effort: binaries
// built outside a VCS checkout (or with -buildvcs=off) carry empty commit
// fields, never an error.
type Info struct {
	Module     string // main module path ("fenceplace")
	Version    string // module version ("(devel)" for workspace builds)
	Commit     string // full VCS revision, "" when not stamped
	CommitTime string // RFC 3339 commit timestamp, "" when not stamped
	Dirty      bool   // the working tree had local modifications
	Go         string // toolchain ("go1.24.x")
}

var (
	once   sync.Once
	cached Info
)

// Read returns the running binary's build identity (computed once).
func Read() Info {
	once.Do(func() {
		cached = Info{Go: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		cached.Module = bi.Main.Path
		cached.Version = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				cached.Commit = s.Value
			case "vcs.time":
				cached.CommitTime = s.Value
			case "vcs.modified":
				cached.Dirty = s.Value == "true"
			}
		}
	})
	return cached
}

// short truncates a revision to the conventional 12 hex digits.
func short(rev string) string {
	if len(rev) > 12 {
		return rev[:12]
	}
	return rev
}

// String renders the identity on one line, the form the CLIs print for
// -version:
//
//	fenceplace (devel) commit 0123456789ab (2026-08-08T10:00:00Z) go1.24.0
func (i Info) String() string {
	s := i.Module
	if s == "" {
		s = "fenceplace"
	}
	if i.Version != "" {
		s += " " + i.Version
	}
	if i.Commit != "" {
		s += " commit " + short(i.Commit)
		if i.Dirty {
			s += "+dirty"
		}
		if i.CommitTime != "" {
			s += " (" + i.CommitTime + ")"
		}
	}
	return s + " " + i.Go
}

// String is Read().String() — the one-line form of the running binary.
func String() string { return Read().String() }
