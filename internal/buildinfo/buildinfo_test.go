package buildinfo

import (
	"strings"
	"testing"
)

func TestRead(t *testing.T) {
	info := Read()
	if info.Go == "" {
		t.Error("Read() lost the Go version")
	}
	if info.Version == "" {
		t.Error("Read() lost the module version")
	}
	// Read is memoized; two calls must agree.
	if again := Read(); again != info {
		t.Errorf("Read() unstable: %+v then %+v", info, again)
	}
}

func TestString(t *testing.T) {
	s := String()
	if !strings.Contains(s, "fenceplace") {
		t.Errorf("String() = %q, want the binary identity to name the module", s)
	}
	if !strings.Contains(s, Read().Go) {
		t.Errorf("String() = %q, want it to carry the Go version", s)
	}
}
