package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// traceEvent mirrors the Chrome trace-event fields the writer emits.
type traceEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat"`
	Ph   string           `json:"ph"`
	Pid  int              `json:"pid"`
	Tid  int              `json:"tid"`
	Ts   float64          `json:"ts"`
	Dur  float64          `json:"dur"`
	Args map[string]int64 `json:"args"`
}

// TestTraceWriterValidJSON emits spans from many goroutines and checks the
// closed file is one valid JSON array of complete-duration events.
func TestTraceWriterValidJSON(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	base := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(track int32) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tw.emit(Span{
					Name:  "work",
					Cat:   "test",
					Track: track,
					Start: base.Add(time.Duration(i) * time.Microsecond),
					Dur:   3*time.Microsecond + 141*time.Nanosecond,
					Args:  []Arg{{"i", int64(i)}},
				})
			}
		}(int32(g + 1))
	}
	wg.Wait()
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var events []traceEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace output is not a valid JSON array: %v\n%s", err, buf.Bytes())
	}
	if len(events) != 8*50 {
		t.Fatalf("decoded %d events, want %d", len(events), 8*50)
	}
	for _, ev := range events {
		if ev.Ph != "X" || ev.Name != "work" || ev.Cat != "test" || ev.Tid < 1 || ev.Tid > 8 {
			t.Fatalf("malformed event: %+v", ev)
		}
		if ev.Dur < 3.141-1e-9 || ev.Dur > 3.141+1e-9 {
			t.Fatalf("dur = %v µs, want 3.141", ev.Dur)
		}
	}
}

// TestTraceWriterEmpty checks an immediately-closed trace is still valid
// JSON (an empty array).
func TestTraceWriterEmpty(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var events []traceEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if len(events) != 0 {
		t.Fatalf("empty trace decoded %d events", len(events))
	}
}

// TestSetTraceRouting checks Emit routes to the installed sink and stops
// when it is removed.
func TestSetTraceRouting(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	prev := SetTrace(tw)
	defer SetTrace(prev)
	if !TraceEnabled() {
		t.Fatal("TraceEnabled is false with a sink installed")
	}
	Emit(Span{Name: "routed", Cat: "test", Start: time.Now()})
	SetTrace(prev)
	Emit(Span{Name: "dropped", Cat: "test", Start: time.Now()})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "routed") || strings.Contains(out, "dropped") {
		t.Fatalf("routing wrong:\n%s", out)
	}
}

// TestNextTrackMonotonic checks tracks are unique and increasing.
func TestNextTrackMonotonic(t *testing.T) {
	a, b := NextTrack(), NextTrack()
	if b <= a || a < 1 {
		t.Fatalf("NextTrack: %d then %d", a, b)
	}
}

// TestServeExportsRegistry binds the diagnostics server to an ephemeral
// port and checks /debug/vars carries the published registry snapshot.
func TestServeExportsRegistry(t *testing.T) {
	NewCounter("serve.test").Inc(0)
	addr, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		Fenceplace Snapshot `json:"fenceplace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if vars.Fenceplace.Counters["serve.test"] < 1 {
		t.Fatalf("/debug/vars missing the registry snapshot: %+v", vars.Fenceplace)
	}
}
