package telemetry

import (
	"bufio"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Arg is one span annotation. Values are integers only, so building an
// argument list allocates nothing beyond the slice itself — span emission
// must stay cheap enough to leave enabled in production paths.
type Arg struct {
	Key string
	Val int64
}

// Span is one completed duration event: a named interval on a track, with
// integer annotations. Tracks map to Chrome trace "tid" lanes — every
// session, exploration and corpus row takes its own track (NextTrack), so
// concurrent work renders as parallel lanes in Perfetto.
type Span struct {
	Name  string
	Cat   string // event category: "pass", "mc", "corpus"
	Track int32
	Start time.Time
	Dur   time.Duration
	Args  []Arg
}

// TraceWriter serializes spans as Chrome trace-event JSON (the "JSON
// array" flavor): one complete-duration ("ph":"X") event per span,
// timestamps in microseconds relative to the writer's creation. The output
// loads directly in Perfetto or chrome://tracing. Emission is serialized
// by a mutex — tracing is for understanding runs, not for the per-state
// hot path, and spans are per-pass/per-exploration, orders of magnitude
// rarer than state events.
type TraceWriter struct {
	mu      sync.Mutex
	w       *bufio.Writer
	c       io.Closer
	epoch   time.Time
	scratch []byte
	n       int
	closed  bool
	err     error
}

// NewTraceWriter wraps w in a trace sink. When w is an io.Closer, Close
// closes it after finalizing the JSON array.
func NewTraceWriter(w io.Writer) *TraceWriter {
	t := &TraceWriter{
		w:       bufio.NewWriterSize(w, 1<<16),
		epoch:   time.Now(),
		scratch: make([]byte, 0, 256),
	}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// appendMicros renders a duration as decimal microseconds with nanosecond
// precision (the trace format's "ts"/"dur" unit), clamping negatives to 0.
func appendMicros(buf []byte, d time.Duration) []byte {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	buf = strconv.AppendInt(buf, ns/1000, 10)
	if frac := ns % 1000; frac != 0 {
		buf = append(buf, '.')
		buf = append(buf, byte('0'+frac/100), byte('0'+(frac/10)%10), byte('0'+frac%10))
	}
	return buf
}

// emit writes one span. Errors are sticky and surface from Close; a trace
// that stops short still finalizes to valid JSON with the events written
// so far.
func (t *TraceWriter) emit(s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.err != nil {
		return
	}
	buf := t.scratch[:0]
	if t.n == 0 {
		buf = append(buf, "[\n"...)
	} else {
		buf = append(buf, ",\n"...)
	}
	t.n++
	buf = append(buf, `{"name":`...)
	buf = strconv.AppendQuote(buf, s.Name)
	buf = append(buf, `,"cat":`...)
	buf = strconv.AppendQuote(buf, s.Cat)
	buf = append(buf, `,"ph":"X","pid":1,"tid":`...)
	buf = strconv.AppendInt(buf, int64(s.Track), 10)
	buf = append(buf, `,"ts":`...)
	buf = appendMicros(buf, s.Start.Sub(t.epoch))
	buf = append(buf, `,"dur":`...)
	buf = appendMicros(buf, s.Dur)
	if len(s.Args) > 0 {
		buf = append(buf, `,"args":{`...)
		for i, a := range s.Args {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = strconv.AppendQuote(buf, a.Key)
			buf = append(buf, ':')
			buf = strconv.AppendInt(buf, a.Val, 10)
		}
		buf = append(buf, '}')
	}
	buf = append(buf, '}')
	t.scratch = buf[:0] // keep grown capacity for the next span
	_, t.err = t.w.Write(buf)
}

// Close finalizes the JSON array, flushes, and closes the underlying
// writer when it is closable. An empty trace closes to a valid empty
// array.
func (t *TraceWriter) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return t.err
	}
	t.closed = true
	if t.err == nil {
		if t.n == 0 {
			_, t.err = t.w.WriteString("[")
		}
		if t.err == nil {
			_, t.err = t.w.WriteString("\n]\n")
		}
	}
	if ferr := t.w.Flush(); t.err == nil {
		t.err = ferr
	}
	if t.c != nil {
		if cerr := t.c.Close(); t.err == nil {
			t.err = cerr
		}
	}
	return t.err
}

// activeTrace is the process-wide span sink; nil means tracing is off and
// Emit is a single atomic load.
var activeTrace atomic.Pointer[TraceWriter]

// SetTrace installs (or, with nil, removes) the process-wide trace sink.
// The previous sink, if any, is returned un-closed — the caller that
// installed it owns its lifecycle.
func SetTrace(t *TraceWriter) *TraceWriter {
	return activeTrace.Swap(t)
}

// TraceEnabled reports whether a trace sink is installed. Instrumented
// code guards span construction with it so disabled tracing costs one
// atomic load and no allocation.
func TraceEnabled() bool { return activeTrace.Load() != nil }

// Emit writes s to the installed trace sink; without one it is a no-op.
func Emit(s Span) {
	if t := activeTrace.Load(); t != nil {
		t.emit(s)
	}
}

// trackSeq allocates trace tracks; 0 stays reserved for untracked events.
var trackSeq atomic.Int32

// NextTrack returns a fresh track id. Tracks are never reused within a
// process, so lanes from overlapping explorations stay distinct.
func NextTrack() int32 { return trackSeq.Add(1) }
