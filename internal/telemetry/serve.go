package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"sync"
)

// publishOnce guards the expvar registration: Publish panics on duplicate
// names, and Mount/Serve may both run in one process.
var publishOnce sync.Once

// Publish exports the default registry's snapshot as the expvar variable
// "fenceplace", visible at /debug/vars on any server using the default
// mux. Safe to call repeatedly.
func Publish() {
	publishOnce.Do(func() {
		expvar.Publish("fenceplace", expvar.Func(func() any {
			return Default().Snapshot()
		}))
	})
}

// Serve publishes the registry and starts an HTTP server on addr serving
// the default mux — net/http/pprof's /debug/pprof handlers and expvar's
// /debug/vars. It returns the bound address (useful with a ":0" addr) and
// never blocks; the server runs until the process exits. Diagnostics
// serving is best-effort by design, so serve errors after a successful
// bind are dropped.
func Serve(addr string) (string, error) {
	Publish()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	go func() { _ = http.Serve(ln, nil) }()
	return ln.Addr().String(), nil
}

// MountConfig selects the observability surfaces a command wires up from
// its flags. Zero values disable each surface.
type MountConfig struct {
	TracePath string    // write Chrome trace events here ("" = no tracing)
	PprofAddr string    // serve pprof+expvar here ("" = no server)
	Metrics   io.Writer // dump the final snapshot here on cleanup (nil = none)
}

// Mount wires the command-line observability surfaces: it opens and
// installs the trace sink, starts the pprof/expvar server, and returns a
// cleanup that uninstalls the sink, finalizes the trace file and writes
// the metrics snapshot. Commands must run cleanup before os.Exit — exit
// bypasses defers, and an unterminated trace file is not valid JSON.
func Mount(cfg MountConfig) (cleanup func() error, err error) {
	var tw *TraceWriter
	if cfg.TracePath != "" {
		f, err := os.Create(cfg.TracePath)
		if err != nil {
			return nil, fmt.Errorf("telemetry: trace: %w", err)
		}
		tw = NewTraceWriter(f)
		SetTrace(tw)
	}
	if cfg.PprofAddr != "" {
		addr, err := Serve(cfg.PprofAddr)
		if err != nil {
			if tw != nil {
				SetTrace(nil)
				tw.Close()
			}
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "pprof: serving http://%s/debug/pprof (metrics at /debug/vars)\n", addr)
	}
	return func() error {
		var firstErr error
		if tw != nil {
			SetTrace(nil)
			if err := tw.Close(); err != nil {
				firstErr = err
			}
		}
		if cfg.Metrics != nil {
			enc, err := json.MarshalIndent(Default().Snapshot(), "", "  ")
			if err == nil {
				enc = append(enc, '\n')
				_, err = cfg.Metrics.Write(enc)
			}
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}
