// Package telemetry is the observability layer of the module: a
// process-wide metrics registry, a Chrome-trace span sink, and the
// pprof/expvar serving surfaces the commands mount.
//
// The registry holds counters, gauges and histograms registered once by
// name. Every metric fans its writes out over NumShards cache-line-padded
// atomic cells, so the model checker's hot loop can record per-worker
// statistics with zero allocations and no cross-core contention: a worker
// writes its own shard, and only Snapshot sums across shards. Metric
// handles are package-level vars in the instrumented packages — lookup
// cost is paid at init, never per event.
//
// Snapshot aggregates the registry into plain, JSON-marshalable data; the
// expvar export (Publish/Serve) and the commands' -metrics dumps are both
// views of it.
package telemetry

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// NumShards is the number of padded cells each metric spreads over. It
// matches the model checker's seen-set shard count and comfortably exceeds
// mc.MaxThreads, so per-worker shard indexes never collide modulo it.
const NumShards = 64

// cell is one shard of a metric: an atomic word padded to a full 64-byte
// cache line so adjacent shards never false-share.
type cell struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonic sharded counter. Writers pick a shard — their
// worker index, or 0 for serialized paths — and Add/Inc touch only that
// shard's cache line; Value sums all shards.
type Counter struct {
	name  string
	cells [NumShards]cell
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Add adds d to the counter on the given shard. Shards out of range wrap,
// so any non-negative worker index is a valid shard.
func (c *Counter) Add(shard int, d int64) {
	c.cells[uint(shard)%NumShards].v.Add(d)
}

// Inc is Add(shard, 1).
func (c *Counter) Inc(shard int) { c.Add(shard, 1) }

// Value sums the counter across shards.
func (c *Counter) Value() int64 {
	var v int64
	for i := range c.cells {
		v += c.cells[i].v.Load()
	}
	return v
}

// Gauge is a sharded last-value metric. Each shard holds the value its
// writer last Set; Value sums the shards, so per-worker gauges (frontier
// sizes, arena words) aggregate to the process-wide figure. Single-writer
// gauges use shard 0 and the sum degenerates to the last set value.
type Gauge struct {
	name  string
	cells [NumShards]cell
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Set stores v into the given shard.
func (g *Gauge) Set(shard int, v int64) {
	g.cells[uint(shard)%NumShards].v.Store(v)
}

// Add adjusts the given shard by d.
func (g *Gauge) Add(shard int, d int64) {
	g.cells[uint(shard)%NumShards].v.Add(d)
}

// Value sums the gauge across shards.
func (g *Gauge) Value() int64 {
	var v int64
	for i := range g.cells {
		v += g.cells[i].v.Load()
	}
	return v
}

// histBuckets is the histogram resolution: power-of-two buckets, bucket i
// counting values in [2^(i-1), 2^i) (bucket 0 counts zero and negatives),
// with the last bucket absorbing everything ≥ 2^(histBuckets-2).
const histBuckets = 32

// Histogram is a sharded power-of-two histogram. Each shard owns a full
// bucket row (a multiple of the cache-line size), so concurrent observers
// on distinct shards never share a line; Snapshot sums rows across shards.
type Histogram struct {
	name string
	rows [NumShards][histBuckets]atomic.Int64
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// bucketOf maps a value to its power-of-two bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records v into the given shard's row.
func (h *Histogram) Observe(shard int, v int64) {
	h.rows[uint(shard)%NumShards][bucketOf(v)].Add(1)
}

// Snapshot sums the histogram across shards.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	top := 0
	var buckets [histBuckets]int64
	for r := range h.rows {
		for b := range h.rows[r] {
			if n := h.rows[r][b].Load(); n != 0 {
				buckets[b] += n
				s.Count += n
				if b > top {
					top = b
				}
			}
		}
	}
	if s.Count == 0 {
		return s
	}
	s.Buckets = append([]int64(nil), buckets[:top+1]...)
	return s
}

// HistogramSnapshot is the plain-data view of a histogram: Buckets[i]
// counts observations in [2^(i-1), 2^i) (Buckets[0]: values ≤ 0), trimmed
// after the last non-empty bucket.
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time aggregation of a registry: every metric
// summed across its shards, keyed by registered name. It is plain data —
// JSON-marshalable as-is (map keys marshal sorted), comparable across
// processes.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Registry holds metrics registered once by name. Registration is
// idempotent — asking for an existing name returns the existing metric —
// but re-registering a name as a different kind panics: two call sites
// disagreeing on what a name means is a bug, not a runtime condition.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry. Most callers want Default; a
// private registry isolates per-instance metrics (the store's per-directory
// counters) from the process-wide namespace.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// checkName panics when name is already registered under a different kind.
func (r *Registry) checkName(name, want string) {
	kinds := [...]struct {
		kind string
		used bool
	}{
		{"counter", r.counters[name] != nil},
		{"gauge", r.gauges[name] != nil},
		{"histogram", r.histograms[name] != nil},
	}
	for _, k := range kinds {
		if k.used && k.kind != want {
			panic(fmt.Sprintf("telemetry: %q already registered as a %s, requested as a %s", name, k.kind, want))
		}
	}
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c
	}
	r.checkName(name, "counter")
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[name]; g != nil {
		return g
	}
	r.checkName(name, "gauge")
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.histograms[name]; h != nil {
		return h
	}
	r.checkName(name, "histogram")
	h := &Histogram{name: name}
	r.histograms[name] = h
	return h
}

// Names returns the registered metric names, sorted, for catalogues and
// tests.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot aggregates every registered metric. Writers may race the
// aggregation; each cell read is atomic, so the snapshot is a consistent
// set of per-shard values even if not a single instant.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.histograms))
	for _, h := range r.histograms {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	s := Snapshot{Counters: make(map[string]int64, len(counters))}
	for _, c := range counters {
		s.Counters[c.name] = c.Value()
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]int64, len(gauges))
		for _, g := range gauges {
			s.Gauges[g.name] = g.Value()
		}
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for _, h := range hists {
			s.Histograms[h.name] = h.Snapshot()
		}
	}
	return s
}

// defaultRegistry is the process-wide registry every instrumented package
// registers into; Default exposes it and the serving surfaces publish it.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// NewCounter registers (or fetches) a counter in the default registry.
func NewCounter(name string) *Counter { return defaultRegistry.Counter(name) }

// NewGauge registers (or fetches) a gauge in the default registry.
func NewGauge(name string) *Gauge { return defaultRegistry.Gauge(name) }

// NewHistogram registers (or fetches) a histogram in the default registry.
func NewHistogram(name string) *Histogram { return defaultRegistry.Histogram(name) }
