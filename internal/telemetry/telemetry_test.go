package telemetry

import (
	"encoding/json"
	"sync"
	"testing"
)

// TestCounterShardedSum checks that writes land per shard (including
// out-of-range shards, which wrap) and Value sums them all.
func TestCounterShardedSum(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.counter")
	c.Add(0, 5)
	c.Inc(1)
	c.Add(NumShards, 3) // wraps onto shard 0
	c.Add(-1, 2)        // negative shards wrap too
	if got := c.Value(); got != 11 {
		t.Fatalf("Value = %d, want 11", got)
	}
}

// TestGaugePerShardLastValue checks the gauge contract: per-shard last
// value, summed across shards.
func TestGaugePerShardLastValue(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test.gauge")
	g.Set(0, 10)
	g.Set(0, 7) // overwrites
	g.Set(3, 5)
	g.Add(3, 1)
	if got := g.Value(); got != 13 {
		t.Fatalf("Value = %d, want 13", got)
	}
}

// TestHistogramBuckets pins the power-of-two bucketing: zero and negatives
// in bucket 0, v in bucket bits.Len64(v), overflow absorbed by the last
// bucket.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.hist")
	for _, v := range []int64{-3, 0, 1, 2, 3, 4, 1 << 40, 1 << 62} {
		h.Observe(0, v)
	}
	s := h.Snapshot()
	if s.Count != 8 {
		t.Fatalf("Count = %d, want 8", s.Count)
	}
	want := map[int]int64{0: 2, 1: 1, 2: 2, 3: 1, 31: 2} // 1<<40 and 1<<62 share the cap bucket
	for b, n := range want {
		if b >= len(s.Buckets) || s.Buckets[b] != n {
			t.Errorf("bucket %d = %v, want %d (buckets %v)", b, at(s.Buckets, b), n, s.Buckets)
		}
	}
}

func at(b []int64, i int) int64 {
	if i < len(b) {
		return b[i]
	}
	return 0
}

// TestRegisterOnce checks idempotent registration and the kind-clash
// panic.
func TestRegisterOnce(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("dup")
	c2 := r.Counter("dup")
	if c1 != c2 {
		t.Fatal("re-registering a counter returned a distinct instance")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering an existing counter name as a gauge did not panic")
		}
	}()
	r.Gauge("dup")
}

// TestRegistryConcurrent hammers one registry from many goroutines —
// registration and writes interleaved — and checks the final sums. Run
// under -race this is the registry's data-race certification.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			c := r.Counter("conc.counter")
			gg := r.Gauge("conc.gauge")
			h := r.Histogram("conc.hist")
			for i := 0; i < perG; i++ {
				c.Inc(shard)
				gg.Set(shard, int64(i))
				h.Observe(shard, int64(i))
				if i%100 == 0 {
					_ = r.Snapshot() // aggregation races the writers by design
				}
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counters["conc.counter"]; got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := s.Gauges["conc.gauge"]; got != goroutines*(perG-1) {
		t.Errorf("gauge = %d, want %d", got, goroutines*(perG-1))
	}
	if got := s.Histograms["conc.hist"].Count; got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

// TestHotPathAllocationFree asserts the zero-allocation contract of the
// write paths — the whole point of the sharded design.
func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc.counter")
	g := r.Gauge("alloc.gauge")
	h := r.Histogram("alloc.hist")
	if n := testing.AllocsPerRun(100, func() {
		c.Inc(3)
		c.Add(3, 5)
		g.Set(3, 42)
		h.Observe(3, 42)
	}); n != 0 {
		t.Errorf("metric writes allocated %.1f times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		Emit(Span{Name: "noop"})
	}); n != 0 {
		t.Errorf("disabled Emit allocated %.1f times per run, want 0", n)
	}
}

// TestSnapshotJSON round-trips a snapshot through encoding/json — the
// plain-data contract the -metrics dumps and expvar export rely on.
func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(0, 7)
	r.Gauge("b.gauge").Set(0, -2)
	r.Histogram("c.hist").Observe(0, 9)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a.count"] != 7 || back.Gauges["b.gauge"] != -2 || back.Histograms["c.hist"].Count != 1 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}

// TestNames checks the catalogue listing is sorted and complete.
func TestNames(t *testing.T) {
	r := NewRegistry()
	r.Histogram("z.h")
	r.Counter("m.c")
	r.Gauge("a.g")
	got := r.Names()
	want := []string{"a.g", "m.c", "z.h"}
	if len(got) != len(want) {
		t.Fatalf("Names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v, want %v", got, want)
		}
	}
}
