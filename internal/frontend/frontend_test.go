package frontend

import (
	"path/filepath"
	"strings"
	"testing"

	"fenceplace/internal/ir"
)

// TestLowerCorpus lowers every Go twin in testdata/gosource and checks
// the result is a valid program that survives a Format→Parse→Format
// round trip. The outcome-level differential against the hand-built
// originals lives in the root package's gosource_test.go.
func TestLowerCorpus(t *testing.T) {
	paths, err := filepath.Glob("../../testdata/gosource/*.go")
	if err != nil || len(paths) == 0 {
		t.Fatalf("testdata/gosource corpus missing: %v (%d files)", err, len(paths))
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			prog, err := LowerFile(path)
			if err != nil {
				t.Fatalf("LowerFile(%s): %v", path, err)
			}
			if err := prog.Validate(); err != nil {
				t.Fatalf("lowered program invalid: %v", err)
			}
			if prog.Main != "main" {
				t.Fatalf("Main = %q, want main", prog.Main)
			}
			text := ir.Format(prog)
			back, err := ir.Parse(text)
			if err != nil {
				t.Fatalf("formatted program does not parse back: %v\n%s", err, text)
			}
			if again := ir.Format(back); again != text {
				t.Fatalf("format not stable for %s", path)
			}
		})
	}
}

// TestLowerNoMain checks a litmus-style file without func main lowers to
// a program with an empty entry point.
func TestLowerNoMain(t *testing.T) {
	src := `package p

var x int64

func t0() { x = 1 }
`
	prog, err := Lower("p.go", []byte(src))
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	if prog.Main != "" {
		t.Fatalf("Main = %q, want empty", prog.Main)
	}
}

// diagCase is one rejected construct and the documented code plus exact
// position the frontend must report for it.
type diagCase struct {
	name string
	src  string
	code Code
	line int
	col  int
}

func TestDiagnostics(t *testing.T) {
	cases := []diagCase{
		{
			name: "channel send",
			src: "package p\n\nvar ch chan int64\n\nfunc main() {\n\tch <- 1\n}\n",
			code: CodeChan, line: 6, col: 2,
		},
		{
			name: "map access",
			src: "package p\n\nvar m map[int64]int64\n\nfunc main() {\n\tm[0] = 1\n}\n",
			code: CodeMap, line: 6, col: 2,
		},
		{
			name: "closure capture",
			src: "package p\n\nvar x int64\n\nfunc main() {\n\tf := func() { x = 1 }\n\tf()\n}\n",
			code: CodeClosure, line: 6, col: 7,
		},
		{
			name: "interface call",
			src: "package p\n\nvar e interface{ M() }\n\nfunc main() {\n\te.M()\n}\n",
			code: CodeInterface, line: 6, col: 2,
		},
		{
			name: "slice global",
			src: "package p\n\nvar s []int64\n\nfunc main() {}\n",
			code: CodeSlice, line: 3, col: 5,
		},
		{
			name: "defer",
			src: "package p\n\nfunc g() {}\n\nfunc main() {\n\tdefer g()\n}\n",
			code: CodeDefer, line: 6, col: 2,
		},
		{
			name: "select",
			src: "package p\n\nfunc main() {\n\tselect {}\n}\n",
			code: CodeChan, line: 4, col: 2,
		},
		{
			name: "range loop",
			src: "package p\n\nvar a [4]int64\n\nfunc main() {\n\tfor range a {\n\t}\n}\n",
			code: CodeStmt, line: 6, col: 2,
		},
		{
			name: "go closure",
			src: "package p\n\nfunc main() {\n\tgo func() {}()\n}\n",
			code: CodeClosure, line: 4, col: 5,
		},
		{
			name: "bad atomic address",
			src: "package p\n\nimport \"sync/atomic\"\n\nfunc main() {\n\tvar x int64\n\tatomic.StoreInt64(&x, 1)\n}\n",
			code: CodeAtomic, line: 7, col: 20,
		},
		{
			name: "disallowed import",
			src: "package p\n\nimport \"fmt\"\n\nfunc main() {\n\tfmt.Println(1)\n}\n",
			code: CodeImport, line: 3, col: 8,
		},
		{
			name: "parse error",
			src: "package p\n\nfunc main() {\n",
			code: CodeParse, line: 3, col: 15,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Lower("t.go", []byte(tc.src))
			if err == nil {
				t.Fatalf("Lower accepted a file with a %s construct", tc.name)
			}
			diags, ok := err.(DiagList)
			if !ok {
				t.Fatalf("error is %T, want DiagList: %v", err, err)
			}
			for _, d := range diags {
				if d.Code == tc.code && d.Pos.Line == tc.line && d.Pos.Column == tc.col {
					return
				}
			}
			t.Fatalf("no [%s] diagnostic at %d:%d; got:\n%v", tc.code, tc.line, tc.col, err)
		})
	}
}

// TestDiagnosticsCollected checks one pass reports every problem in the
// file, not just the first.
func TestDiagnosticsCollected(t *testing.T) {
	src := `package p

var ch chan int64
var m map[int64]int64

func main() {
	ch <- 1
	m[0] = 1
	f := func() {}
	f()
}
`
	_, err := Lower("multi.go", []byte(src))
	if err == nil {
		t.Fatal("Lower accepted a file full of rejected constructs")
	}
	for _, code := range []Code{CodeChan, CodeMap, CodeClosure} {
		if !strings.Contains(err.Error(), "["+string(code)+"]") {
			t.Errorf("diagnostics missing code [%s]:\n%v", code, err)
		}
	}
}
