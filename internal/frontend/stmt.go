package frontend

import (
	"go/ast"
	"go/token"
	"go/types"

	"fenceplace/internal/ir"
)

// fnLower lowers one function body. Statement lowering is total: a
// construct outside the subset records a diagnostic and keeps walking, so
// one pass reports every problem; the partial IR it leaves behind is
// discarded with the program.
type fnLower struct {
	l  *lowerer
	b  *ir.FB
	fi *fnInfo

	vars    map[types.Object]ir.Reg // locals and parameters
	labels  map[string]*ir.Block    // goto targets, created on first mention
	spawned []ir.Reg                // outstanding spawn tids, in spawn order
	loops   []loopFrame             // innermost loop last
}

// loopFrame is the break/continue targets of one enclosing for loop.
type loopFrame struct {
	brk, cont *ir.Block
}

func newFnLower(l *lowerer, fi *fnInfo) *fnLower {
	return &fnLower{
		l: l, b: fi.b, fi: fi,
		vars:   make(map[types.Object]ir.Reg),
		labels: make(map[string]*ir.Block),
	}
}

// lowerBody binds the parameters and lowers the statement list. A
// fallthrough end gets the implicit return (for value-returning functions
// Go guarantees the end is unreachable — the operand is arbitrary).
func (f *fnLower) lowerBody() {
	i := 0
	for _, field := range f.fi.decl.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if obj := f.l.info.Defs[name]; obj != nil {
				f.vars[obj] = f.b.Param(i)
			}
			i++
		}
	}
	f.stmts(f.fi.decl.Body.List)
	if f.b.InBlock() {
		if f.fi.hasResult {
			f.b.Ret(f.b.Const(0))
		} else {
			f.b.RetVoid()
		}
	}
}

// stmts lowers a statement list. Statements after a terminator (return,
// goto) are lowered into a fresh unreachable block so their diagnostics
// still surface — "report everything" beats "stop at the first".
func (f *fnLower) stmts(list []ast.Stmt) {
	for _, s := range list {
		if !f.b.InBlock() {
			f.b.StartBlock(f.b.NewBlock("dead"))
		}
		f.stmt(s)
	}
}

func (f *fnLower) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		f.stmts(s.List)
	case *ast.EmptyStmt:
	case *ast.DeclStmt:
		f.declStmt(s)
	case *ast.AssignStmt:
		f.assign(s)
	case *ast.IncDecStmt:
		f.incDec(s)
	case *ast.ExprStmt:
		f.exprStmt(s)
	case *ast.IfStmt:
		f.ifStmt(s)
	case *ast.ForStmt:
		f.forStmt(s)
	case *ast.ReturnStmt:
		f.returnStmt(s)
	case *ast.BranchStmt:
		f.branch(s)
	case *ast.LabeledStmt:
		f.labeled(s)
	case *ast.GoStmt:
		f.goStmt(s)
	case *ast.DeferStmt:
		f.deferStmt(s)
	case *ast.SendStmt:
		f.l.addf(s.Pos(), CodeChan, "channel send is outside the certifiable subset")
	case *ast.SelectStmt:
		f.l.addf(s.Pos(), CodeChan, "select is outside the certifiable subset")
	case *ast.RangeStmt:
		f.l.addf(s.Pos(), CodeStmt, "range loops are outside the certifiable subset (use a counted for)")
	case *ast.SwitchStmt:
		f.l.addf(s.Pos(), CodeStmt, "switch is outside the certifiable subset (use if/else)")
	case *ast.TypeSwitchStmt:
		f.l.addf(s.Pos(), CodeInterface, "type switch is outside the certifiable subset")
	default:
		f.l.addf(s.Pos(), CodeStmt, "statement form %T is outside the certifiable subset", s)
	}
}

// declStmt lowers a local var declaration; local consts fold away.
func (f *fnLower) declStmt(s *ast.DeclStmt) {
	d, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		f.l.addf(s.Pos(), CodeDecl, "declaration form is outside the certifiable subset")
		return
	}
	switch d.Tok {
	case token.CONST:
		return
	case token.TYPE:
		f.l.addf(s.Pos(), CodeDecl, "local type declarations are outside the certifiable subset")
		return
	}
	for _, spec := range d.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			var init ast.Expr
			if i < len(vs.Values) {
				init = vs.Values[i]
			}
			var val ir.Reg
			if init != nil {
				val = f.expr(init)
			} else {
				val = f.b.Const(0)
			}
			if name.Name == "_" {
				continue
			}
			if obj := f.l.info.Defs[name]; obj != nil {
				f.defineObj(name, obj, val)
			}
		}
	}
}

// defineObj binds a new local to a fresh register initialized from val.
// Every local gets its own register (updated in place by assignments), so
// loops re-executing the definition just overwrite it — Go semantics for
// word-typed values.
func (f *fnLower) defineObj(id *ast.Ident, obj types.Object, val ir.Reg) {
	t := obj.Type()
	if !isWord(t) && !isBool(t) {
		code, why := classifyType(t, CodeVarType)
		f.l.addf(id.Pos(), code, "local %s of type %s: %s", id.Name, t, why)
		return
	}
	f.vars[obj] = f.b.Move(val)
}

// assignOps maps the op-assign tokens onto IR operators.
var assignOps = map[token.Token]ir.Op{
	token.ADD_ASSIGN: ir.OpAdd, token.SUB_ASSIGN: ir.OpSub,
	token.MUL_ASSIGN: ir.OpMul, token.QUO_ASSIGN: ir.OpDiv,
	token.REM_ASSIGN: ir.OpMod, token.AND_ASSIGN: ir.OpAnd,
	token.OR_ASSIGN: ir.OpOr, token.XOR_ASSIGN: ir.OpXor,
	token.SHL_ASSIGN: ir.OpShl, token.SHR_ASSIGN: ir.OpShr,
}

func (f *fnLower) assign(s *ast.AssignStmt) {
	switch s.Tok {
	case token.DEFINE:
		if len(s.Rhs) != len(s.Lhs) {
			f.l.addf(s.Pos(), CodeAssign, "multi-value assignment (%d targets, %d values) is outside the certifiable subset", len(s.Lhs), len(s.Rhs))
			return
		}
		vals := make([]ir.Reg, len(s.Rhs))
		for i, r := range s.Rhs {
			vals[i] = f.expr(r)
		}
		for i, lhs := range s.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				f.l.addf(lhs.Pos(), CodeAssign, "unsupported := target")
				continue
			}
			if id.Name == "_" {
				continue
			}
			if obj := f.l.info.Defs[id]; obj != nil {
				f.defineObj(id, obj, vals[i])
				continue
			}
			// Redeclaration in a mixed :=; plain assignment.
			f.assignTo(id, vals[i])
		}
	case token.ASSIGN:
		if len(s.Rhs) != len(s.Lhs) {
			f.l.addf(s.Pos(), CodeAssign, "multi-value assignment (%d targets, %d values) is outside the certifiable subset", len(s.Lhs), len(s.Rhs))
			return
		}
		// Go's two-phase assignment: left-hand index operands first, then
		// the right-hand values, then the stores.
		lvs := make([]*lval, len(s.Lhs))
		for i, lhs := range s.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			if lv, ok := f.lvalue(lhs); ok {
				lvs[i] = &lv
			}
		}
		vals := make([]ir.Reg, len(s.Rhs))
		for i, r := range s.Rhs {
			vals[i] = f.expr(r)
		}
		for i, lv := range lvs {
			if lv != nil {
				f.storeLV(*lv, vals[i])
			}
		}
	default: // op-assign: x += v and friends
		op, ok := assignOps[s.Tok]
		if !ok {
			f.l.addf(s.Pos(), CodeAssign, "assignment operator %s is outside the certifiable subset", s.Tok)
			return
		}
		lv, lok := f.lvalue(s.Lhs[0])
		var cur ir.Reg
		if lok {
			cur = f.loadLV(lv)
		}
		val := f.expr(s.Rhs[0])
		if lok {
			f.storeLV(lv, f.b.Bin(op, cur, val))
		}
	}
}

func (f *fnLower) incDec(s *ast.IncDecStmt) {
	lv, ok := f.lvalue(s.X)
	if !ok {
		return
	}
	cur := f.loadLV(lv)
	one := f.b.Const(1)
	if s.Tok == token.INC {
		f.storeLV(lv, f.b.Add(cur, one))
	} else {
		f.storeLV(lv, f.b.Sub(cur, one))
	}
}

func (f *fnLower) exprStmt(s *ast.ExprStmt) {
	switch e := ast.Unparen(s.X).(type) {
	case *ast.CallExpr:
		f.call(e, false)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			f.l.addf(e.Pos(), CodeChan, "channel receive is outside the certifiable subset")
			return
		}
		f.l.addf(s.Pos(), CodeStmt, "expression statement is outside the certifiable subset")
	default:
		f.l.addf(s.Pos(), CodeStmt, "expression statement is outside the certifiable subset")
	}
}

func (f *fnLower) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		f.stmt(s.Init)
	}
	cond := f.expr(s.Cond)
	if s.Else == nil {
		f.b.If(cond, func() { f.stmts(s.Body.List) })
		return
	}
	f.b.IfElse(cond,
		func() { f.stmts(s.Body.List) },
		func() { f.stmt(s.Else) }) // a block or an else-if chain
}

// forStmt lowers every non-range for form with explicit head/body/post/
// exit blocks; break and continue target the exit and post blocks of the
// innermost frame. (FB.While has no break plumbing, hence the manual CFG.)
func (f *fnLower) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		f.stmt(s.Init)
	}
	head := f.b.NewBlock("for.head")
	body := f.b.NewBlock("for.body")
	post := f.b.NewBlock("for.post")
	exit := f.b.NewBlock("for.exit")
	f.b.Jmp(head)
	f.b.StartBlock(head)
	if s.Cond != nil {
		f.b.Br(f.expr(s.Cond), body, exit)
	} else {
		f.b.Jmp(body)
	}
	f.b.StartBlock(body)
	f.loops = append(f.loops, loopFrame{brk: exit, cont: post})
	f.stmts(s.Body.List)
	f.loops = f.loops[:len(f.loops)-1]
	if f.b.InBlock() {
		f.b.Jmp(post)
	}
	f.b.StartBlock(post)
	if s.Post != nil {
		f.stmt(s.Post)
	}
	f.b.Jmp(head)
	f.b.StartBlock(exit)
}

func (f *fnLower) returnStmt(s *ast.ReturnStmt) {
	switch len(s.Results) {
	case 0:
		f.b.RetVoid()
	case 1:
		f.b.Ret(f.expr(s.Results[0]))
	default:
		f.l.addf(s.Pos(), CodeStmt, "multi-value return is outside the certifiable subset")
		f.b.RetVoid()
	}
}

func (f *fnLower) branch(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			f.l.addf(s.Pos(), CodeStmt, "labeled break is outside the certifiable subset")
			return
		}
		if len(f.loops) == 0 {
			f.l.addf(s.Pos(), CodeStmt, "break outside a for loop")
			return
		}
		f.b.Jmp(f.loops[len(f.loops)-1].brk)
	case token.CONTINUE:
		if s.Label != nil {
			f.l.addf(s.Pos(), CodeStmt, "labeled continue is outside the certifiable subset")
			return
		}
		if len(f.loops) == 0 {
			f.l.addf(s.Pos(), CodeStmt, "continue outside a for loop")
			return
		}
		f.b.Jmp(f.loops[len(f.loops)-1].cont)
	case token.GOTO:
		f.b.Jmp(f.label(s.Label.Name))
	default: // fallthrough
		f.l.addf(s.Pos(), CodeStmt, "fallthrough is outside the certifiable subset")
	}
}

// label returns the block for a label, creating it on first mention (a
// goto may precede its label; go/types guarantees every label resolves).
func (f *fnLower) label(name string) *ir.Block {
	if blk, ok := f.labels[name]; ok {
		return blk
	}
	blk := f.b.NewBlock("label." + name)
	f.labels[name] = blk
	return blk
}

func (f *fnLower) labeled(s *ast.LabeledStmt) {
	blk := f.label(s.Label.Name)
	if f.b.InBlock() {
		f.b.Jmp(blk)
	}
	f.b.StartBlock(blk)
	f.stmt(s.Stmt)
}

// goStmt lowers `go f(args)` to Spawn, recording the tid for the
// wg.Wait() join.
func (f *fnLower) goStmt(s *ast.GoStmt) {
	fun := ast.Unparen(s.Call.Fun)
	if fl, ok := fun.(*ast.FuncLit); ok {
		f.l.addf(fl.Pos(), CodeClosure, "closure capture in a go statement is outside the certifiable subset (spawn a named top-level function)")
		return
	}
	id, ok := fun.(*ast.Ident)
	var fi *fnInfo
	if ok {
		fi = f.l.funcs[id.Name]
	}
	if fi == nil {
		f.l.addf(s.Call.Pos(), CodeSpawn, "go requires a named top-level function of this file")
		return
	}
	args := make([]ir.Reg, len(s.Call.Args))
	for i, a := range s.Call.Args {
		args[i] = f.expr(a)
	}
	f.spawned = append(f.spawned, f.b.Spawn(id.Name, args...))
}

// deferStmt: the one allowed defer is `defer wg.Done()`, erased because
// Spawn/Join already carry the join synchronization.
func (f *fnLower) deferStmt(s *ast.DeferStmt) {
	if sel, ok := ast.Unparen(s.Call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && f.isWG(sel.X) {
		return
	}
	f.l.addf(s.Pos(), CodeDefer, "defer is outside the certifiable subset (except `defer wg.Done()`)")
}

// isWG reports whether e names a package-level sync.WaitGroup.
func (f *fnLower) isWG(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	return f.l.wgs[f.l.info.Uses[id]]
}
