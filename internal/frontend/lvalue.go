package frontend

import (
	"go/ast"
	"go/types"

	"fenceplace/internal/ir"
)

// lval is a resolved assignment target: a local register, a scalar
// global, or a global-array element (with the index already evaluated —
// Go's two-phase assignment rule).
type lval struct {
	kind lvKind
	obj  types.Object // lvLocal
	g    *ir.Global   // lvGlobal, lvGlobalIdx
	idx  ir.Reg       // lvGlobalIdx
}

type lvKind int

const (
	lvLocal lvKind = iota
	lvGlobal
	lvGlobalIdx
)

// lvalue resolves an assignable expression; ok is false after a
// diagnostic.
func (f *fnLower) lvalue(e ast.Expr) (lval, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := f.objOf(e)
		if _, isLocal := f.vars[obj]; isLocal {
			return lval{kind: lvLocal, obj: obj}, true
		}
		if g, ok := f.l.globals[obj]; ok {
			if g.Size != 1 {
				f.l.addf(e.Pos(), CodeAssign, "array global %s must be assigned element-wise", e.Name)
				return lval{}, false
			}
			return lval{kind: lvGlobal, g: g}, true
		}
		f.l.addf(e.Pos(), CodeAssign, "%s is not an assignable local or global", e.Name)
		return lval{}, false
	case *ast.IndexExpr:
		if t := f.typeOf(e.X); t != nil {
			switch t.Underlying().(type) {
			case *types.Map:
				f.l.addf(e.Pos(), CodeMap, "map access is outside the certifiable subset")
				return lval{}, false
			case *types.Slice:
				f.l.addf(e.Pos(), CodeSlice, "slice access is outside the certifiable subset")
				return lval{}, false
			}
		}
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if g, ok := f.l.globals[f.objOf(id)]; ok {
				return lval{kind: lvGlobalIdx, g: g, idx: f.expr(e.Index)}, true
			}
		}
		f.l.addf(e.Pos(), CodeAssign, "only package-level arrays can be index-assigned")
		return lval{}, false
	case *ast.StarExpr:
		f.l.addf(e.Pos(), CodeExpr, "assignment through a pointer is outside the certifiable subset")
		return lval{}, false
	case *ast.SelectorExpr:
		f.l.addf(e.Pos(), CodeAssign, "field assignment is outside the certifiable subset")
		return lval{}, false
	}
	f.l.addf(e.Pos(), CodeAssign, "assignment target form %T is outside the certifiable subset", e)
	return lval{}, false
}

func (f *fnLower) loadLV(lv lval) ir.Reg {
	switch lv.kind {
	case lvLocal:
		return f.vars[lv.obj]
	case lvGlobal:
		return f.b.Load(lv.g)
	default:
		return f.b.LoadIdx(lv.g, lv.idx)
	}
}

func (f *fnLower) storeLV(lv lval, val ir.Reg) {
	switch lv.kind {
	case lvLocal:
		f.b.MoveTo(f.vars[lv.obj], val)
	case lvGlobal:
		f.b.Store(lv.g, val)
	default:
		f.b.StoreIdx(lv.g, lv.idx, val)
	}
}

// assignTo stores val into the target named by id (used for the
// redeclared names of a mixed := statement).
func (f *fnLower) assignTo(id *ast.Ident, val ir.Reg) {
	if lv, ok := f.lvalue(id); ok {
		f.storeLV(lv, val)
	}
}
