package frontend

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"fenceplace/internal/ir"
)

// lowerer is the per-file lowering state: the builder, the symbol maps
// from type-checker objects to IR entities, and the accumulated
// diagnostics. A diagnostic never aborts the walk — lowering continues so
// every problem in the file is reported in one pass — but any diagnostic
// discards the partially-built program.
type lowerer struct {
	fset  *token.FileSet
	info  *types.Info
	pb    *ir.ProgBuilder
	diags DiagList

	globals map[types.Object]*ir.Global // package-level int64 vars/arrays
	wgs     map[types.Object]bool       // package-level sync.WaitGroup vars
	funcs   map[string]*fnInfo          // top-level functions by name
}

// fnInfo is one registered top-level function: its AST, its function
// builder (created up front so calls and spawns resolve regardless of
// declaration order) and its signature shape.
type fnInfo struct {
	decl      *ast.FuncDecl
	b         *ir.FB
	nparams   int
	hasResult bool
}

// program lowers one file: globals and function signatures first (so
// bodies can reference everything regardless of order), then the bodies.
func (l *lowerer) program(file *ast.File) {
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.GenDecl:
			l.genDecl(d)
		case *ast.FuncDecl:
			l.registerFunc(d)
		}
	}
	for _, decl := range file.Decls {
		d, ok := decl.(*ast.FuncDecl)
		if !ok || d.Name == nil {
			continue
		}
		fi := l.funcs[d.Name.Name]
		if fi == nil || fi.decl != d {
			continue
		}
		newFnLower(l, fi).lowerBody()
	}
	if l.funcs["main"] != nil {
		l.pb.SetMain("main")
	}
}

// genDecl lowers a package-level declaration group. Constants need no
// lowering (go/types folds every use), imports were validated by the type
// check, and type declarations are outside the subset.
func (l *lowerer) genDecl(d *ast.GenDecl) {
	switch d.Tok {
	case token.IMPORT, token.CONST:
		return
	case token.TYPE:
		for _, spec := range d.Specs {
			ts := spec.(*ast.TypeSpec)
			l.addf(ts.Pos(), CodeDecl, "type declaration %s is outside the certifiable subset", ts.Name.Name)
		}
	case token.VAR:
		for _, spec := range d.Specs {
			l.globalVar(spec.(*ast.ValueSpec))
		}
	}
}

// globalVar lowers one package-level var spec onto shared Globals, in
// declaration order — the order fixes the layout of certification outcome
// vectors, so it is part of the program's observable identity.
func (l *lowerer) globalVar(spec *ast.ValueSpec) {
	for i, name := range spec.Names {
		obj := l.info.Defs[name]
		if obj == nil || name.Name == "_" {
			l.addf(name.Pos(), CodeGlobal, "blank or unresolved global is outside the certifiable subset")
			continue
		}
		var init ast.Expr
		if i < len(spec.Values) {
			init = spec.Values[i]
		}
		t := obj.Type()
		switch {
		case isWaitGroup(t):
			if init != nil {
				l.addf(init.Pos(), CodeGlobal, "sync.WaitGroup globals take no initializer")
			}
			l.wgs[obj] = true
		case isWord(t):
			var vals []int64
			if init != nil {
				v, ok := l.constInt(init)
				if !ok {
					l.addf(init.Pos(), CodeGlobal, "global initializer must be a constant expression")
					continue
				}
				vals = []int64{v}
			}
			l.globals[obj] = l.pb.Global(name.Name, 1, vals...)
		default:
			if arr, ok := t.Underlying().(*types.Array); ok && isWord(arr.Elem()) {
				size := int(arr.Len())
				if size < 1 {
					l.addf(name.Pos(), CodeGlobal, "global array %s must have at least one element", name.Name)
					continue
				}
				vals, ok := l.arrayInit(init, size)
				if !ok {
					continue
				}
				l.globals[obj] = l.pb.Global(name.Name, size, vals...)
				continue
			}
			code, why := classifyType(t, CodeGlobal)
			l.addf(name.Pos(), code, "global %s of type %s is outside the certifiable subset: %s", name.Name, t, why)
		}
	}
}

// arrayInit extracts the constant initializer of an array global, or nil
// for zero initialization.
func (l *lowerer) arrayInit(init ast.Expr, size int) ([]int64, bool) {
	if init == nil {
		return nil, true
	}
	lit, ok := init.(*ast.CompositeLit)
	if !ok {
		l.addf(init.Pos(), CodeGlobal, "array global initializer must be a composite literal of constants")
		return nil, false
	}
	if len(lit.Elts) > size {
		l.addf(init.Pos(), CodeGlobal, "array literal has %d elements for size %d", len(lit.Elts), size)
		return nil, false
	}
	var vals []int64
	for _, elt := range lit.Elts {
		if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
			l.addf(kv.Pos(), CodeGlobal, "keyed array elements are outside the certifiable subset")
			return nil, false
		}
		v, ok := l.constInt(elt)
		if !ok {
			l.addf(elt.Pos(), CodeGlobal, "array element initializer must be a constant expression")
			return nil, false
		}
		vals = append(vals, v)
	}
	return vals, true
}

// registerFunc validates a function's shape and creates its IR builder so
// later bodies can call and spawn it by name.
func (l *lowerer) registerFunc(d *ast.FuncDecl) {
	if d.Recv != nil {
		l.addf(d.Pos(), CodeDecl, "method declarations are outside the certifiable subset")
		return
	}
	name := d.Name.Name
	if name == "init" {
		l.addf(d.Pos(), CodeDecl, "init functions are outside the certifiable subset")
		return
	}
	if d.Body == nil {
		l.addf(d.Pos(), CodeDecl, "function %s has no body (external linkage is outside the subset)", name)
		return
	}
	obj := l.info.Defs[d.Name]
	if obj == nil {
		return // a type error elsewhere already covers this
	}
	sig := obj.Type().(*types.Signature)
	ok := true
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if !isWord(p.Type()) {
			code, why := classifyType(p.Type(), CodeDecl)
			l.addf(p.Pos(), code, "parameter %s of %s has type %s: %s", p.Name(), name, p.Type(), why)
			ok = false
		}
	}
	switch {
	case sig.Results().Len() > 1:
		l.addf(d.Pos(), CodeDecl, "function %s returns %d values; the subset allows at most one", name, sig.Results().Len())
		ok = false
	case sig.Results().Len() == 1 && !isWord(sig.Results().At(0).Type()):
		code, why := classifyType(sig.Results().At(0).Type(), CodeDecl)
		l.addf(d.Pos(), code, "result of %s has type %s: %s", name, sig.Results().At(0).Type(), why)
		ok = false
	case sig.Results().Len() == 1 && sig.Results().At(0).Name() != "":
		// A named result makes the bare `return` legal with a meaning the
		// lowering would get wrong; reject rather than lower silently wrong.
		l.addf(d.Pos(), CodeDecl, "named results are outside the certifiable subset")
		ok = false
	}
	if name == "main" && (sig.Params().Len() > 0 || sig.Results().Len() > 0) {
		l.addf(d.Pos(), CodeDecl, "main must take no parameters and return nothing")
		ok = false
	}
	if !ok {
		return
	}
	l.funcs[name] = &fnInfo{
		decl:      d,
		b:         l.pb.Func(name, sig.Params().Len()),
		nparams:   sig.Params().Len(),
		hasResult: sig.Results().Len() == 1,
	}
}

// constInt evaluates a constant expression to its word value using the
// type checker's folding; ok is false for non-constant expressions.
func (l *lowerer) constInt(e ast.Expr) (int64, bool) {
	tv, ok := l.info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	switch tv.Value.Kind() {
	case constant.Int:
		v, exact := constant.Int64Val(tv.Value)
		return v, exact
	case constant.Bool:
		if constant.BoolVal(tv.Value) {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// isWord reports whether t occupies exactly one IR word: int64 and int
// (the subset treats both as the 64-bit machine word).
func isWord(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int, types.Int64, types.UntypedInt:
		return true
	}
	return false
}

// isBool reports whether t is boolean; bools lower to 0/1 words.
func isBool(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsBoolean != 0
}

// classifyType maps an unsupported type onto its rejection code and a
// one-line reason; fallback is the caller's context code (global vs local
// declarations).
func classifyType(t types.Type, fallback Code) (Code, string) {
	switch t.Underlying().(type) {
	case *types.Chan:
		return CodeChan, "channels are not lowered (the IR synchronizes via atomics and spawn/join)"
	case *types.Map:
		return CodeMap, "maps are not lowered (shared state must be int64 globals and arrays)"
	case *types.Slice:
		return CodeSlice, "slices are not lowered; use a fixed-size array global"
	case *types.Signature:
		return CodeClosure, "function values are not lowered"
	case *types.Interface:
		return CodeInterface, "interfaces are not lowered"
	case *types.Pointer:
		return CodeExpr, "pointers appear only as &global arguments to sync/atomic calls"
	case *types.Struct:
		return fallback, "structs are not lowered (sync.WaitGroup is the one exception)"
	}
	return fallback, "only int64, int and bool lower to IR words"
}
