package frontend

import (
	"go/ast"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"strings"
)

// check parses and type-checks one file hermetically (stub importer, no
// build environment). Parse errors abort before type checking — a broken
// AST only produces noise — but type errors are collected in full via the
// types.Config.Error hook, so a file with three bad constructs reports
// all three.
func check(filename string, src []byte) (*ast.File, *token.FileSet, *types.Info, DiagList) {
	fset := token.NewFileSet()
	var diags DiagList

	file, err := parser.ParseFile(fset, filename, src, parser.SkipObjectResolution)
	if err != nil {
		if list, ok := err.(scanner.ErrorList); ok {
			for _, e := range list {
				diags = append(diags, Diag{Pos: e.Pos, Code: CodeParse, Msg: e.Msg})
			}
		} else {
			diags = append(diags, Diag{Pos: token.Position{Filename: filename}, Code: CodeParse, Msg: err.Error()})
		}
		return nil, fset, nil, diags
	}

	conf := types.Config{
		Importer: newStubImporter(),
		Error: func(err error) {
			te, ok := err.(types.Error)
			if !ok {
				diags = append(diags, Diag{Pos: token.Position{Filename: filename}, Code: CodeType, Msg: err.Error()})
				return
			}
			code := CodeType
			if strings.Contains(te.Msg, "could not import") {
				code = CodeImport
			}
			diags = append(diags, Diag{Pos: te.Fset.Position(te.Pos), Code: code, Msg: te.Msg})
		},
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	// The returned error repeats what the Error hook already collected.
	conf.Check(file.Name.Name, fset, []*ast.File{file}, info) //nolint:errcheck
	return file, fset, info, diags
}
