package frontend

import (
	"fmt"
	"go/token"
	"go/types"
)

// The type checker needs package objects for the two imports the subset
// allows, but the frontend must not depend on a Go build environment (no
// GOROOT, no export data) — submitted source is checked hermetically. So
// the importer below synthesizes exactly the slivers of sync and
// sync/atomic the subset models:
//
//	sync/atomic: LoadInt64, StoreInt64, AddInt64, CompareAndSwapInt64
//	sync:        type WaitGroup with Add(int), Done(), Wait()
//
// Referencing anything else from these packages ("undefined:
// atomic.LoadInt32") is a type error with a position, which is the
// diagnostic we want anyway: those functions have no IR lowering.

// stubImporter resolves the allowed imports to the synthesized packages
// and rejects everything else.
type stubImporter struct {
	pkgs map[string]*types.Package
}

func (im stubImporter) Import(path string) (*types.Package, error) {
	if p := im.pkgs[path]; p != nil {
		return p, nil
	}
	return nil, fmt.Errorf("import %q is outside the certifiable subset (only \"sync\" and \"sync/atomic\" are allowed)", path)
}

// newStubImporter builds the synthetic packages once per Lower call (they
// are cheap and keeping them call-local keeps Lower safe for concurrent
// use without shared state).
func newStubImporter() stubImporter {
	int64T := types.Typ[types.Int64]
	intT := types.Typ[types.Int]
	boolT := types.Typ[types.Bool]
	ptrInt64 := types.NewPointer(int64T)

	atomicPkg := types.NewPackage("sync/atomic", "atomic")
	v := func(pkg *types.Package, name string, t types.Type) *types.Var {
		return types.NewVar(token.NoPos, pkg, name, t)
	}
	fn := func(pkg *types.Package, name string, params, results []*types.Var) {
		sig := types.NewSignatureType(nil, nil, nil,
			types.NewTuple(params...), types.NewTuple(results...), false)
		pkg.Scope().Insert(types.NewFunc(token.NoPos, pkg, name, sig))
	}
	fn(atomicPkg, "LoadInt64",
		[]*types.Var{v(atomicPkg, "addr", ptrInt64)},
		[]*types.Var{v(atomicPkg, "", int64T)})
	fn(atomicPkg, "StoreInt64",
		[]*types.Var{v(atomicPkg, "addr", ptrInt64), v(atomicPkg, "val", int64T)},
		nil)
	fn(atomicPkg, "AddInt64",
		[]*types.Var{v(atomicPkg, "addr", ptrInt64), v(atomicPkg, "delta", int64T)},
		[]*types.Var{v(atomicPkg, "new", int64T)})
	fn(atomicPkg, "CompareAndSwapInt64",
		[]*types.Var{v(atomicPkg, "addr", ptrInt64), v(atomicPkg, "old", int64T), v(atomicPkg, "new", int64T)},
		[]*types.Var{v(atomicPkg, "swapped", boolT)})
	atomicPkg.MarkComplete()

	syncPkg := types.NewPackage("sync", "sync")
	wgName := types.NewTypeName(token.NoPos, syncPkg, "WaitGroup", nil)
	wg := types.NewNamed(wgName, types.NewStruct(nil, nil), nil)
	meth := func(name string, params ...*types.Var) {
		recv := types.NewVar(token.NoPos, syncPkg, "wg", types.NewPointer(wg))
		sig := types.NewSignatureType(recv, nil, nil, types.NewTuple(params...), nil, false)
		wg.AddMethod(types.NewFunc(token.NoPos, syncPkg, name, sig))
	}
	meth("Add", v(syncPkg, "delta", intT))
	meth("Done")
	meth("Wait")
	syncPkg.Scope().Insert(wgName)
	syncPkg.MarkComplete()

	return stubImporter{pkgs: map[string]*types.Package{
		"sync/atomic": atomicPkg,
		"sync":        syncPkg,
	}}
}

// isWaitGroup reports whether t is (a pointer to) the synthesized
// sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
