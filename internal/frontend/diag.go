package frontend

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Code classifies a frontend diagnostic. Every construct the subset
// rejects has a stable code so tools (and the table-driven tests) can
// match on the class of rejection rather than the message text. The codes
// are part of the package's public contract — see the README's
// "Analyzing real Go code" table.
type Code string

const (
	// CodeParse is a Go syntax error from go/parser.
	CodeParse Code = "parse"
	// CodeType is a type-check error from go/types (including references
	// to atomic functions the subset does not model).
	CodeType Code = "typecheck"
	// CodeImport rejects any import other than sync and sync/atomic.
	CodeImport Code = "import"
	// CodeGlobal rejects a package-level declaration outside the subset:
	// non-int64 globals, non-constant initializers.
	CodeGlobal Code = "global"
	// CodeDecl rejects an unsupported declaration form: methods, type
	// declarations, functions with unsupported signatures.
	CodeDecl Code = "decl"
	// CodeVarType rejects a local variable of a type the IR has no words
	// for (anything but int, int64 and bool).
	CodeVarType Code = "vartype"
	// CodeChan rejects channel types, sends, receives and select.
	CodeChan Code = "chan"
	// CodeMap rejects map types, literals and accesses.
	CodeMap Code = "map"
	// CodeSlice rejects slice types, slicing, append and make.
	CodeSlice Code = "slice"
	// CodeClosure rejects function literals (the IR has no environment to
	// capture into).
	CodeClosure Code = "closure"
	// CodeInterface rejects interface types, method calls through an
	// interface, and type assertions.
	CodeInterface Code = "iface"
	// CodeDefer rejects defer statements other than `defer wg.Done()`.
	CodeDefer Code = "defer"
	// CodeStmt rejects a statement form outside the subset (switch,
	// select, range, labeled break/continue, fallthrough).
	CodeStmt Code = "stmt"
	// CodeExpr rejects an expression form outside the subset (pointer
	// dereference, address-of outside an atomic call, composite literals
	// in code, string operations).
	CodeExpr Code = "expr"
	// CodeCall rejects a call to an unknown function or unsupported
	// builtin.
	CodeCall Code = "call"
	// CodeAtomic rejects a sync/atomic call whose address argument is not
	// `&global` or `&global[index]` — the only shapes the word-addressed
	// IR can name.
	CodeAtomic Code = "atomic"
	// CodeSpawn rejects a go statement whose callee is not a named
	// top-level function of the file.
	CodeSpawn Code = "spawn"
	// CodeAssign rejects an assignment form outside the subset
	// (multi-value returns, assignment to unsupported lvalues).
	CodeAssign Code = "assign"
)

// Diag is one positioned diagnostic: a construct outside the certifiable
// subset (or a parse/type error), with the exact file:line:col it was
// found at.
type Diag struct {
	Pos  token.Position
	Code Code
	Msg  string
}

func (d Diag) Error() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Msg, d.Code)
}

// DiagList is every diagnostic found in one Lower call, reported together
// rather than one at a time. It implements error so callers can return it
// directly; match individual entries with errors.As on *DiagList or a
// type assertion.
type DiagList []Diag

func (dl DiagList) Error() string {
	if len(dl) == 0 {
		return "frontend: no diagnostics"
	}
	lines := make([]string, len(dl))
	for i, d := range dl {
		lines[i] = d.Error()
	}
	return strings.Join(lines, "\n")
}

// sorted returns the list ordered by source position (file, then line,
// then column), which is the order a human reads them in.
func (dl DiagList) sorted() DiagList {
	sort.SliceStable(dl, func(i, j int) bool {
		a, b := dl[i].Pos, dl[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return dl
}

// addf records a diagnostic at a position.
func (l *lowerer) addf(pos token.Pos, code Code, format string, args ...any) {
	l.diags = append(l.diags, Diag{
		Pos:  l.fset.Position(pos),
		Code: code,
		Msg:  fmt.Sprintf(format, args...),
	})
}
