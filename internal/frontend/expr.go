package frontend

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"fenceplace/internal/ir"
)

// expr lowers an expression to the register holding its value. On a
// diagnostic it returns a zero constant so lowering can continue and
// collect further problems; the partial program is discarded anyway.
func (f *fnLower) expr(e ast.Expr) ir.Reg {
	// Constant folding first: go/types has already evaluated every
	// constant expression (literals, named constants, len of arrays,
	// arithmetic over them), so they all lower to a single Const.
	if tv, ok := f.l.info.Types[e]; ok && tv.Value != nil {
		switch tv.Value.Kind() {
		case constant.Int:
			v, exact := constant.Int64Val(tv.Value)
			if !exact {
				f.l.addf(e.Pos(), CodeExpr, "constant does not fit in an int64 word")
				return f.b.Const(0)
			}
			return f.b.Const(v)
		case constant.Bool:
			if constant.BoolVal(tv.Value) {
				return f.b.Const(1)
			}
			return f.b.Const(0)
		}
		f.l.addf(e.Pos(), CodeExpr, "constant of type %s is outside the certifiable subset (only integer and bool constants lower)", tv.Type)
		return f.b.Const(0)
	}

	switch e := e.(type) {
	case *ast.ParenExpr:
		return f.expr(e.X)
	case *ast.Ident:
		return f.identValue(e)
	case *ast.IndexExpr:
		return f.indexValue(e)
	case *ast.BinaryExpr:
		return f.binary(e)
	case *ast.UnaryExpr:
		return f.unary(e)
	case *ast.CallExpr:
		return f.call(e, true)
	case *ast.SelectorExpr:
		f.l.addf(e.Pos(), CodeExpr, "field selection is outside the certifiable subset")
		return f.b.Const(0)
	case *ast.FuncLit:
		f.l.addf(e.Pos(), CodeClosure, "closure capture is outside the certifiable subset")
		return f.b.Const(0)
	case *ast.TypeAssertExpr:
		f.l.addf(e.Pos(), CodeInterface, "type assertion is outside the certifiable subset")
		return f.b.Const(0)
	case *ast.StarExpr:
		f.l.addf(e.Pos(), CodeExpr, "pointer dereference is outside the certifiable subset")
		return f.b.Const(0)
	case *ast.SliceExpr:
		f.l.addf(e.Pos(), CodeSlice, "slicing is outside the certifiable subset")
		return f.b.Const(0)
	case *ast.CompositeLit:
		code := CodeExpr
		if t := f.typeOf(e); t != nil {
			switch t.Underlying().(type) {
			case *types.Map:
				code = CodeMap
			case *types.Slice:
				code = CodeSlice
			}
		}
		f.l.addf(e.Pos(), code, "composite literals are outside the certifiable subset (globals take constant initializers)")
		return f.b.Const(0)
	}
	f.l.addf(e.Pos(), CodeExpr, "expression form %T is outside the certifiable subset", e)
	return f.b.Const(0)
}

func (f *fnLower) typeOf(e ast.Expr) types.Type {
	if tv, ok := f.l.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// objOf resolves an identifier to its object (use or definition).
func (f *fnLower) objOf(id *ast.Ident) types.Object {
	if obj := f.l.info.Uses[id]; obj != nil {
		return obj
	}
	return f.l.info.Defs[id]
}

// identValue reads an identifier: a local's register, or a load of the
// scalar global it names.
func (f *fnLower) identValue(e *ast.Ident) ir.Reg {
	obj := f.objOf(e)
	if r, ok := f.vars[obj]; ok {
		return r
	}
	if g, ok := f.l.globals[obj]; ok {
		if g.Size != 1 {
			f.l.addf(e.Pos(), CodeExpr, "array global %s must be indexed", e.Name)
			return f.b.Const(0)
		}
		return f.b.Load(g)
	}
	f.l.addf(e.Pos(), CodeExpr, "%s does not lower to a register or global", e.Name)
	return f.b.Const(0)
}

// indexValue reads base[idx]; the only indexable base is a global array.
func (f *fnLower) indexValue(e *ast.IndexExpr) ir.Reg {
	if t := f.typeOf(e.X); t != nil {
		switch t.Underlying().(type) {
		case *types.Map:
			f.l.addf(e.Pos(), CodeMap, "map access is outside the certifiable subset")
			return f.b.Const(0)
		case *types.Slice:
			f.l.addf(e.Pos(), CodeSlice, "slice access is outside the certifiable subset")
			return f.b.Const(0)
		}
	}
	if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
		if g, ok := f.l.globals[f.objOf(id)]; ok {
			return f.b.LoadIdx(g, f.expr(e.Index))
		}
	}
	f.l.addf(e.Pos(), CodeExpr, "only package-level arrays can be indexed")
	return f.b.Const(0)
}

// binOps maps Go's binary operators onto the IR's algebra. Two deliberate
// divergences, documented on the package: / and % by zero yield 0, and
// shift counts are masked to 0..63.
var binOps = map[token.Token]ir.Op{
	token.ADD: ir.OpAdd, token.SUB: ir.OpSub, token.MUL: ir.OpMul,
	token.QUO: ir.OpDiv, token.REM: ir.OpMod,
	token.AND: ir.OpAnd, token.OR: ir.OpOr, token.XOR: ir.OpXor,
	token.SHL: ir.OpShl, token.SHR: ir.OpShr,
	token.EQL: ir.OpEq, token.NEQ: ir.OpNe,
	token.LSS: ir.OpLt, token.LEQ: ir.OpLe,
	token.GTR: ir.OpGt, token.GEQ: ir.OpGe,
}

func (f *fnLower) binary(e *ast.BinaryExpr) ir.Reg {
	if e.Op == token.LAND || e.Op == token.LOR {
		return f.shortCircuit(e)
	}
	op, ok := binOps[e.Op]
	if !ok {
		f.l.addf(e.Pos(), CodeExpr, "operator %s is outside the certifiable subset", e.Op)
		return f.b.Const(0)
	}
	if t := f.typeOf(e.X); t != nil && !isWord(t) && !isBool(t) {
		code, why := classifyType(t, CodeExpr)
		f.l.addf(e.Pos(), code, "operands of type %s: %s", t, why)
		return f.b.Const(0)
	}
	x := f.expr(e.X)
	y := f.expr(e.Y)
	return f.b.Bin(op, x, y)
}

// shortCircuit lowers && and || with Go's evaluation order: the right
// operand (and any memory it reads) is only evaluated when the left one
// does not decide the result.
func (f *fnLower) shortCircuit(e *ast.BinaryExpr) ir.Reg {
	r := f.b.Move(f.expr(e.X))
	if e.Op == token.LAND {
		f.b.If(r, func() { f.b.MoveTo(r, f.expr(e.Y)) })
	} else {
		f.b.IfElse(r, func() {}, func() { f.b.MoveTo(r, f.expr(e.Y)) })
	}
	return r
}

func (f *fnLower) unary(e *ast.UnaryExpr) ir.Reg {
	switch e.Op {
	case token.NOT:
		return f.b.Eq(f.expr(e.X), f.b.Const(0))
	case token.SUB:
		x := f.expr(e.X)
		return f.b.Sub(f.b.Const(0), x)
	case token.ADD:
		return f.expr(e.X)
	case token.XOR: // bitwise complement
		x := f.expr(e.X)
		return f.b.Xor(x, f.b.Const(-1))
	case token.AND:
		f.l.addf(e.Pos(), CodeExpr, "address-of is only supported as a sync/atomic argument (&global, &global[i])")
		return f.b.Const(0)
	case token.ARROW:
		f.l.addf(e.Pos(), CodeChan, "channel receive is outside the certifiable subset")
		return f.b.Const(0)
	}
	f.l.addf(e.Pos(), CodeExpr, "unary operator %s is outside the certifiable subset", e.Op)
	return f.b.Const(0)
}

// call lowers a call expression. wantValue distinguishes value context
// from statement context; in statement context the result register may be
// ir.NoReg. The callee decides the lowering: a type conversion is a
// no-op, sync/atomic maps to the IR's atomic instructions, WaitGroup
// methods erase to joins, panic becomes Assert, and a named top-level
// function becomes Call.
func (f *fnLower) call(call *ast.CallExpr, wantValue bool) ir.Reg {
	// Conversions: int(x) and int64(x) are no-ops on the word.
	if tv, ok := f.l.info.Types[call.Fun]; ok && tv.IsType() {
		t := tv.Type
		if !isWord(t) && !isBool(t) {
			code, why := classifyType(t, CodeExpr)
			f.l.addf(call.Pos(), code, "conversion to %s: %s", t, why)
			return f.b.Const(0)
		}
		if len(call.Args) == 1 {
			return f.expr(call.Args[0])
		}
		return f.b.Const(0)
	}

	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj := f.objOf(fun); obj != nil {
			if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
				return f.builtin(call, fun.Name)
			}
		}
		fi := f.l.funcs[fun.Name]
		if fi == nil {
			f.l.addf(call.Pos(), CodeCall, "call to %s: not a lowered top-level function of this file", fun.Name)
			return f.b.Const(0)
		}
		args := make([]ir.Reg, len(call.Args))
		for i, a := range call.Args {
			args[i] = f.expr(a)
		}
		if wantValue {
			return f.b.Call(fun.Name, args...)
		}
		f.b.CallVoid(fun.Name, args...)
		return ir.NoReg
	case *ast.SelectorExpr:
		return f.selectorCall(call, fun, wantValue)
	case *ast.FuncLit:
		f.l.addf(fun.Pos(), CodeClosure, "closure capture is outside the certifiable subset")
		return f.b.Const(0)
	}
	f.l.addf(call.Pos(), CodeCall, "call form is outside the certifiable subset")
	return f.b.Const(0)
}

func (f *fnLower) builtin(call *ast.CallExpr, name string) ir.Reg {
	switch name {
	case "panic":
		// `panic("msg")` is the corpus's self-check idiom: an Assert that
		// always fails on this path, tagging the outcome.
		msg := "panic"
		if len(call.Args) == 1 {
			if tv, ok := f.l.info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				msg = constant.StringVal(tv.Value)
			} else {
				f.l.addf(call.Args[0].Pos(), CodeCall, "panic argument must be a constant string")
			}
		}
		f.b.Assert(f.b.Const(0), msg)
		return ir.NoReg
	case "len":
		// Array lengths are constants and fold before reaching here; this
		// diag covers len of anything else.
		f.l.addf(call.Pos(), CodeCall, "len is only supported on fixed-size arrays")
		return f.b.Const(0)
	case "print", "println":
		for _, a := range call.Args {
			f.b.Print(f.expr(a))
		}
		return ir.NoReg
	}
	f.l.addf(call.Pos(), CodeCall, "builtin %s is outside the certifiable subset", name)
	return f.b.Const(0)
}

// selectorCall lowers pkg.Func and method calls. The interface check runs
// first — it must fire even when the receiver expression is itself
// outside the subset.
func (f *fnLower) selectorCall(call *ast.CallExpr, sel *ast.SelectorExpr, wantValue bool) ir.Reg {
	if s, ok := f.l.info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		recv := s.Recv()
		if types.IsInterface(recv) {
			f.l.addf(call.Pos(), CodeInterface, "method call through an interface is outside the certifiable subset")
			return f.b.Const(0)
		}
		if isWaitGroup(recv) {
			return f.wgCall(call, sel)
		}
		f.l.addf(call.Pos(), CodeCall, "method call %s.%s is outside the certifiable subset", types.TypeString(recv, nil), sel.Sel.Name)
		return f.b.Const(0)
	}
	if obj := f.l.info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
		return f.atomicCall(call, sel.Sel.Name, wantValue)
	}
	f.l.addf(call.Pos(), CodeCall, "call to %s is outside the certifiable subset", sel.Sel.Name)
	return f.b.Const(0)
}

// wgCall erases WaitGroup bookkeeping: Add and Done vanish (Spawn/Join
// already carry the synchronization), Wait joins every outstanding spawn
// of this function in spawn order — the frontend's join detection.
func (f *fnLower) wgCall(call *ast.CallExpr, sel *ast.SelectorExpr) ir.Reg {
	if !f.isWG(sel.X) {
		f.l.addf(sel.Pos(), CodeCall, "WaitGroup calls must target a package-level var")
		return f.b.Const(0)
	}
	switch sel.Sel.Name {
	case "Add", "Done":
	case "Wait":
		for _, tid := range f.spawned {
			f.b.Join(tid)
		}
		f.spawned = f.spawned[:0]
	default:
		f.l.addf(call.Pos(), CodeCall, "WaitGroup method %s is outside the certifiable subset", sel.Sel.Name)
	}
	return ir.NoReg
}

// atomicCall maps the four modeled sync/atomic functions onto the IR's
// atomic instructions. Note the AddInt64 result fix-up: Go's AddInt64
// returns the new value, the IR's FetchAdd the old one.
func (f *fnLower) atomicCall(call *ast.CallExpr, name string, wantValue bool) ir.Reg {
	switch name {
	case "LoadInt64":
		g, idx, ok := f.atomicAddr(call.Args[0])
		if !ok {
			return f.b.Const(0)
		}
		if idx == ir.NoReg {
			return f.b.Load(g)
		}
		return f.b.LoadIdx(g, idx)
	case "StoreInt64":
		g, idx, ok := f.atomicAddr(call.Args[0])
		v := f.expr(call.Args[1])
		if !ok {
			return ir.NoReg
		}
		if idx == ir.NoReg {
			f.b.Store(g, v)
		} else {
			f.b.StoreIdx(g, idx, v)
		}
		return ir.NoReg
	case "CompareAndSwapInt64":
		g, idx, ok := f.atomicAddr(call.Args[0])
		oldv := f.expr(call.Args[1])
		newv := f.expr(call.Args[2])
		if !ok {
			return f.b.Const(0)
		}
		return f.b.CAS(f.addrReg(g, idx), oldv, newv)
	case "AddInt64":
		g, idx, ok := f.atomicAddr(call.Args[0])
		delta := f.expr(call.Args[1])
		if !ok {
			return f.b.Const(0)
		}
		old := f.b.FetchAdd(f.addrReg(g, idx), delta)
		if !wantValue {
			return ir.NoReg
		}
		return f.b.Add(old, delta)
	}
	f.l.addf(call.Pos(), CodeAtomic, "atomic.%s has no IR lowering", name)
	return f.b.Const(0)
}

func (f *fnLower) addrReg(g *ir.Global, idx ir.Reg) ir.Reg {
	if idx == ir.NoReg {
		return f.b.AddrOf(g)
	}
	return f.b.AddrOfIdx(g, idx)
}

// atomicAddr resolves an atomic call's address argument, which must be
// `&global` or `&global[idx]` — the only addresses the word-addressed IR
// can name without general pointer support.
func (f *fnLower) atomicAddr(arg ast.Expr) (*ir.Global, ir.Reg, bool) {
	u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if ok && u.Op == token.AND {
		switch x := ast.Unparen(u.X).(type) {
		case *ast.Ident:
			if g, ok := f.l.globals[f.objOf(x)]; ok && g.Size == 1 {
				return g, ir.NoReg, true
			}
		case *ast.IndexExpr:
			if id, isID := ast.Unparen(x.X).(*ast.Ident); isID {
				if g, ok := f.l.globals[f.objOf(id)]; ok {
					return g, f.expr(x.Index), true
				}
			}
		}
	}
	f.l.addf(arg.Pos(), CodeAtomic, "atomic address must be &global or &global[i] over a package-level int64")
	return nil, ir.NoReg, false
}
