// Package frontend lowers a restricted subset of real Go source onto the
// module's compiler IR, opening the certification pipeline to
// user-submitted code instead of hand-assembled programs.
//
// The subset is the shape of the lock-free and mutual-exclusion code the
// paper certifies:
//
//   - package-level `var` of int64/int scalars and fixed-size arrays
//     (constant initializers) — these become the IR's shared Globals, in
//     declaration order, plus package-level sync.WaitGroup variables;
//   - top-level functions over int64/int parameters with at most one
//     int64/int result; locals of int64/int/bool;
//   - assignments, the IR's full binary-operator algebra (+ - * / % & | ^
//     << >> and the six comparisons, with short-circuit && and ||),
//     if/else, all non-range for forms with break and continue, goto and
//     labels, return, and function calls;
//   - `go f(args)` as thread spawn, joined by `wg.Wait()` on a
//     package-level sync.WaitGroup (wg.Add and `defer wg.Done()` are
//     recognized and erased — the IR's Spawn/Join already carry the
//     synchronization);
//   - sync/atomic's LoadInt64, StoreInt64, AddInt64 and
//     CompareAndSwapInt64 on `&global` / `&global[i]` addresses, lowered
//     to the IR's Load, Store, FetchAdd and CAS;
//   - `if cond { panic("...") }` as the self-checking Assert idiom the
//     corpus programs use.
//
// Everything outside the subset — channels, maps, slices, closures,
// interfaces, general pointers, floats, strings, switch, select, range —
// is rejected with a precise file:line:col diagnostic carrying a stable
// Code; all diagnostics in a file are collected and reported together
// (see DiagList), never one at a time, and an unsupported construct can
// never lower silently wrong: any diagnostic aborts lowering before a
// Program is produced.
//
// Two deliberate semantic divergences from Go, both total where Go traps:
// division/modulo by zero yields 0 (the IR's interpreter never traps) and
// shift counts are masked to 0..63. Programs relying on either are
// outside the subset in spirit; nothing in the target corpus does.
package frontend

import (
	"fmt"
	"go/types"
	"os"

	"fenceplace/internal/ir"
)

// Lower parses, type-checks and lowers one Go source file onto the IR.
// filename is used for diagnostics only. On failure the returned error is
// a DiagList with every problem found, each at its exact source position.
// The resulting program is named after the Go package clause, its shared
// globals appear in declaration order, and a `func main` (if present)
// becomes the program's entry function.
func Lower(filename string, src []byte) (*ir.Program, error) {
	file, fset, info, diags := check(filename, src)
	if len(diags) > 0 {
		return nil, diags.sorted()
	}
	l := &lowerer{
		fset:    fset,
		info:    info,
		pb:      ir.NewProgram(file.Name.Name),
		globals: make(map[types.Object]*ir.Global),
		wgs:     make(map[types.Object]bool),
		funcs:   make(map[string]*fnInfo),
	}
	l.program(file)
	if len(l.diags) > 0 {
		return nil, l.diags.sorted()
	}
	prog, err := l.pb.Build()
	if err != nil {
		// A Validate failure on a diagnostics-clean lowering is a frontend
		// bug; surface it as an error (never a panic, never a bad program).
		return nil, fmt.Errorf("frontend: internal error: lowered program fails validation: %w", err)
	}
	return prog, nil
}

// LowerFile is Lower over a file on disk.
func LowerFile(path string) (*ir.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Lower(path, src)
}
