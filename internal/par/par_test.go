package par

import (
	"sync/atomic"
	"testing"
)

// TestForEachCapturesWorkerPanic pins the panic contract: a panic in a
// pool goroutine is re-raised on the caller's goroutine as a *PanicError
// carrying the original value and stack, instead of killing the process.
func TestForEachCapturesWorkerPanic(t *testing.T) {
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T (%v), want *PanicError", r, r)
		}
		if pe.Value != "boom" {
			t.Fatalf("PanicError.Value = %v, want boom", pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatal("PanicError.Stack is empty")
		}
	}()
	ForEach(64, 4, func(i int) {
		if i == 17 {
			panic("boom")
		}
	})
	t.Fatal("ForEach returned instead of panicking")
}

// TestForEachInlinePanicPropagates pins the serial path: with one worker
// the caller's frame is live, so the panic value propagates unwrapped.
func TestForEachInlinePanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "inline" {
			t.Fatalf("recovered %v, want the raw panic value", r)
		}
	}()
	ForEach(3, 1, func(i int) {
		if i == 1 {
			panic("inline")
		}
	})
	t.Fatal("ForEach returned instead of panicking")
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		for _, n := range []int{0, 1, 7, 64} {
			hits := make([]atomic.Int32, n)
			ForEach(n, workers, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Errorf("workers=%d n=%d: index %d hit %d times", workers, n, i, got)
				}
			}
		}
	}
}
