package par

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		for _, n := range []int{0, 1, 7, 64} {
			hits := make([]atomic.Int32, n)
			ForEach(n, workers, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Errorf("workers=%d n=%d: index %d hit %d times", workers, n, i, got)
				}
			}
		}
	}
}
