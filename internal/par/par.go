// Package par holds the one worker-pool shape the analysis layers share:
// an index fan-out with a bounded number of goroutines pulling from an
// atomic counter. The pass session fans functions out with it and the
// experiment harness fans corpus programs; keeping the pool in one place
// keeps their semantics (capping, serial fallback) identical.
package par

import (
	"sync"
	"sync/atomic"
)

// ForEach runs work(i) for every i in [0, n), fanned out over at most
// workers goroutines (capped at n; workers <= 1 runs inline). work must
// be safe to call concurrently for distinct indexes.
func ForEach(n, workers int, work func(i int)) {
	w := workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			work(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				work(i)
			}
		}()
	}
	wg.Wait()
}
