// Package par holds the one worker-pool shape the analysis layers share:
// an index fan-out with a bounded number of goroutines pulling from an
// atomic counter. The pass session fans functions out with it and the
// experiment harness fans corpus programs; keeping the pool in one place
// keeps their semantics (capping, serial fallback, panic capture)
// identical.
package par

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is the first panic captured from a pool goroutine, re-raised
// on the caller's goroutine by ForEach. Without the capture a panic in a
// pool goroutine would kill the process outright (no caller frame to
// recover in); with it, the caller's own recover sees the original value
// and stack and can turn the panic into a structured job error.
type PanicError struct {
	Value any    // the original panic value
	Stack []byte // the panicking goroutine's stack
}

func (e *PanicError) Error() string { return fmt.Sprintf("par: worker panic: %v", e.Value) }

// ForEach runs work(i) for every i in [0, n), fanned out over at most
// workers goroutines (capped at n; workers <= 1 runs inline). work must
// be safe to call concurrently for distinct indexes.
//
// A panic in work stops the fan-out: remaining indexes are abandoned,
// every goroutine is joined, and the first captured panic is re-raised on
// the caller's goroutine as a *PanicError. The inline path panics
// directly — the caller's frame is live, so no capture is needed.
func ForEach(n, workers int, work func(i int)) {
	w := workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			work(i)
		}
		return
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		once    sync.Once
		first   *PanicError
		aborted atomic.Bool
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					once.Do(func() {
						first = &PanicError{Value: r, Stack: debug.Stack()}
						aborted.Store(true)
					})
				}
			}()
			for !aborted.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				work(i)
			}
		}()
	}
	wg.Wait()
	if first != nil {
		panic(first)
	}
}
