// Package stats provides the small numeric and formatting helpers the
// experiment harness uses: geometric means (the paper's §5 note: "Geometric
// mean is used for all normalized results") and plain-text tables.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Geomean returns the geometric mean of xs, ignoring non-positive entries
// (a normalized ratio of zero would otherwise annihilate the mean).
// It returns 0 for an empty or all-non-positive input.
func Geomean(xs []float64) float64 {
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Ratio returns num/den as a float, 0 when den is 0.
func Ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Pct formats a ratio as a percentage with one decimal.
func Pct(r float64) string { return fmt.Sprintf("%.1f%%", 100*r) }

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Add appends a row; cells beyond the header width are dropped, missing
// cells are blank.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddSep appends a separator row (rendered as dashes).
func (t *Table) AddSep() {
	t.rows = append(t.rows, nil)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, r := range t.rows {
		if r == nil {
			for i, w := range widths {
				if i > 0 {
					sb.WriteString("  ")
				}
				sb.WriteString(strings.Repeat("-", w))
			}
			sb.WriteByte('\n')
			continue
		}
		writeRow(r)
	}
	return sb.String()
}
