package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomeanBasics(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{2, 8}, 4},
		{[]float64{1, 1, 1}, 1},
		{[]float64{3}, 3},
		{[]float64{}, 0},
		{[]float64{0, 0}, 0},
		{[]float64{4, 0}, 4}, // non-positive entries are ignored
	}
	for _, c := range cases {
		if got := Geomean(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Geomean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestGeomeanProperties(t *testing.T) {
	// Property (testing/quick): the geomean of positive values lies between
	// their min and max, and is scale-equivariant.
	prop := func(a, b, c uint16) bool {
		xs := []float64{float64(a%999) + 1, float64(b%999) + 1, float64(c%999) + 1}
		g := Geomean(xs)
		mn, mx := xs[0], xs[0]
		for _, x := range xs {
			mn = math.Min(mn, x)
			mx = math.Max(mx, x)
		}
		if g < mn-1e-9 || g > mx+1e-9 {
			return false
		}
		scaled := Geomean([]float64{xs[0] * 7, xs[1] * 7, xs[2] * 7})
		return math.Abs(scaled-7*g) < 1e-6*scaled
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatioAndPct(t *testing.T) {
	if Ratio(1, 2) != 0.5 || Ratio(3, 0) != 0 {
		t.Error("Ratio wrong")
	}
	if Pct(0.125) != "12.5%" {
		t.Errorf("Pct(0.125) = %q", Pct(0.125))
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "v")
	tb.Add("a", "1")
	tb.Add("longer", "22")
	tb.AddSep()
	tb.Add("z")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6:\n%s", len(lines), s)
	}
	w := len(lines[0])
	for i, l := range lines {
		if len(l) > 0 && len(strings.TrimRight(l, " ")) > w {
			t.Errorf("line %d wider than header: %q", i, l)
		}
	}
	if !strings.Contains(lines[1], "----") || !strings.Contains(lines[4], "----") {
		t.Error("separators missing")
	}
}
