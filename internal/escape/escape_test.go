package escape

import (
	"testing"

	"fenceplace/internal/alias"
	"fenceplace/internal/ir"
)

func analyze(t *testing.T, p *ir.Program) (*alias.Analysis, *Result) {
	t.Helper()
	al := alias.Analyze(p)
	return al, Analyze(p, al)
}

func TestGlobalsEscape(t *testing.T) {
	pb := ir.NewProgram("p")
	x := pb.Global("x", 1)
	b := pb.Func("f", 0)
	v := b.Load(x)
	b.Store(x, v)
	b.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	al, r := analyze(t, p)
	if !r.LocEscapes(al.GlobalLocOf(x)) {
		t.Error("global must escape")
	}
	f := p.Fn("f")
	if got := len(r.EscapingAccesses(f)); got != 2 {
		t.Fatalf("got %d escaping accesses, want 2", got)
	}
	if got := len(r.EscapingReads(f)); got != 1 {
		t.Fatalf("got %d escaping reads, want 1", got)
	}
	if r.CountReads() != 1 {
		t.Fatalf("CountReads = %d, want 1", r.CountReads())
	}
}

func TestLocalAllocaDoesNotEscape(t *testing.T) {
	pb := ir.NewProgram("p")
	b := pb.Func("f", 0)
	buf := b.Alloca(8)
	b.StorePtr(buf, b.Const(1))
	v := b.LoadPtr(buf)
	_ = v
	b.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, r := analyze(t, p)
	f := p.Fn("f")
	if got := len(r.EscapingAccesses(f)); got != 0 {
		t.Fatalf("purely local alloca produced %d escaping accesses", got)
	}
}

func TestAllocaEscapesViaGlobal(t *testing.T) {
	// Publishing the alloca's address through a global makes its accesses
	// escaping.
	pb := ir.NewProgram("p")
	slot := pb.Global("slot", 1)
	b := pb.Func("f", 0)
	buf := b.Alloca(8)
	b.Store(slot, buf)
	b.StorePtr(buf, b.Const(1)) // now escaping
	b.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, r := analyze(t, p)
	f := p.Fn("f")
	var sp *ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in.Kind == ir.StorePtr {
			sp = in
		}
	})
	if !r.AccessEscapes(sp) {
		t.Error("store through published alloca must escape")
	}
}

func TestMallocEscapesViaSpawn(t *testing.T) {
	pb := ir.NewProgram("p")
	w := pb.Func("worker", 1)
	v := w.LoadPtr(w.Param(0))
	_ = v
	w.RetVoid()
	m := pb.Func("main", 0)
	buf := m.Malloc(4)
	b2 := m.Malloc(4) // never shared
	m.StorePtr(buf, m.Const(7))
	m.StorePtr(b2, m.Const(8))
	tid := m.Spawn("worker", buf)
	m.Join(tid)
	m.RetVoid()
	pb.SetMain("main")
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, r := analyze(t, p)
	main := p.Fn("main")
	var stores []*ir.Instr
	main.Instrs(func(in *ir.Instr) {
		if in.Kind == ir.StorePtr {
			stores = append(stores, in)
		}
	})
	if len(stores) != 2 {
		t.Fatalf("want 2 stores, got %d", len(stores))
	}
	if !r.AccessEscapes(stores[0]) {
		t.Error("store to spawned-to buffer must escape")
	}
	if r.AccessEscapes(stores[1]) {
		t.Error("store to private buffer must not escape")
	}
	// The worker's own access also escapes.
	worker := p.Fn("worker")
	if got := len(r.EscapingReads(worker)); got != 1 {
		t.Fatalf("worker escaping reads = %d, want 1", got)
	}
}

func TestTransitiveEscapeThroughHeap(t *testing.T) {
	// head (global) -> node1 -> node2: accesses to node2 escape because the
	// whole chain is reachable from a global.
	pb := ir.NewProgram("p")
	head := pb.Global("head", 1)
	b := pb.Func("f", 0)
	n1 := b.Malloc(2)
	n2 := b.Malloc(2)
	b.StorePtr(n1, n2) // n1.next = n2
	b.Store(head, n1)  // publish chain
	b.StorePtr(n2, b.Const(42))
	b.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, r := analyze(t, p)
	f := p.Fn("f")
	var last *ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in.Kind == ir.StorePtr {
			last = in
		}
	})
	if !r.AccessEscapes(last) {
		t.Error("store to transitively-published node must escape")
	}
}

func TestUnknownAccessEscapes(t *testing.T) {
	pb := ir.NewProgram("p")
	b := pb.Func("f", 0)
	mystery := b.Const(99)
	v := b.LoadPtr(mystery)
	_ = v
	b.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, r := analyze(t, p)
	f := p.Fn("f")
	if got := len(r.EscapingReads(f)); got != 1 {
		t.Fatalf("unknown-target read must escape; got %d escaping reads", got)
	}
}

func TestEscapeViaCallChain(t *testing.T) {
	// f allocates, passes to g, g publishes into a global: the alloca
	// escapes even though f itself never touches a global.
	pb := ir.NewProgram("p")
	slot := pb.Global("slot", 1)
	g := pb.Func("g", 1)
	g.Store(slot, g.Param(0))
	g.RetVoid()
	f := pb.Func("f", 0)
	buf := f.Alloca(4)
	f.CallVoid("g", buf)
	f.StorePtr(buf, f.Const(5))
	f.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, r := analyze(t, p)
	fn := p.Fn("f")
	var sp *ir.Instr
	fn.Instrs(func(in *ir.Instr) {
		if in.Kind == ir.StorePtr {
			sp = in
		}
	})
	if !r.AccessEscapes(sp) {
		t.Error("alloca published by callee must escape")
	}
}
