// Package escape implements the conservative thread-escape analysis that
// Pensieve-style fence placement starts from (paper §2.1): every access that
// cannot be proven local to the creating thread is "potentially escaping"
// and participates in ordering generation.
//
// A location escapes when another thread could reach it:
//   - every Global escapes by definition;
//   - anything (transitively) stored inside an escaping location escapes;
//   - anything passed to Spawn escapes (it is shared with the new thread),
//     again transitively through its contents.
//
// An access escapes when its may-touch set (from the alias analysis)
// contains an escaping location, or is statically unknown.
package escape

import (
	"fenceplace/internal/alias"
	"fenceplace/internal/ir"
)

// Result holds the escape classification for one program.
type Result struct {
	prog    *ir.Program
	aliases *alias.Analysis
	escLoc  map[*alias.Loc]bool
	escAcc  map[*ir.Instr]bool

	// Per-function access lists, materialized once at Analyze time. The
	// ordering and acquire passes query them per strategy and (in a
	// session) from several goroutines; precomputing keeps every query a
	// read-only slice lookup.
	fnAccs  map[*ir.Fn][]*ir.Instr
	fnReads map[*ir.Fn][]*ir.Instr
	nReads  int
}

// Analyze computes escaping locations and accesses using a previously
// solved alias analysis for the same program.
func Analyze(p *ir.Program, al *alias.Analysis) *Result {
	r := &Result{
		prog:    p,
		aliases: al,
		escLoc:  make(map[*alias.Loc]bool),
		escAcc:  make(map[*ir.Instr]bool),
	}
	r.solveLocs()
	r.classifyAccesses()
	r.indexFns()
	return r
}

func (r *Result) indexFns() {
	r.fnAccs = make(map[*ir.Fn][]*ir.Instr, len(r.prog.Funcs))
	r.fnReads = make(map[*ir.Fn][]*ir.Instr, len(r.prog.Funcs))
	for _, f := range r.prog.Funcs {
		f.Instrs(func(in *ir.Instr) {
			if !r.escAcc[in] {
				return
			}
			r.fnAccs[f] = append(r.fnAccs[f], in)
			if in.ReadsMem() {
				r.fnReads[f] = append(r.fnReads[f], in)
				r.nReads++
			}
		})
	}
}

func (r *Result) solveLocs() {
	var work []*alias.Loc
	mark := func(l *alias.Loc) {
		if l != nil && !r.escLoc[l] {
			r.escLoc[l] = true
			work = append(work, l)
		}
	}
	// Roots: all globals, and everything a spawned thread receives.
	for _, l := range r.aliases.Locs() {
		if l.Kind == alias.GlobalLoc {
			mark(l)
		}
	}
	for _, f := range r.prog.Funcs {
		f.Instrs(func(in *ir.Instr) {
			if in.Kind != ir.Spawn {
				return
			}
			for _, arg := range in.Args {
				for _, l := range r.aliases.PointsTo(f, arg) {
					mark(l)
				}
			}
		})
	}
	// Closure: contents of escaping locations escape.
	for len(work) > 0 {
		l := work[len(work)-1]
		work = work[:len(work)-1]
		for _, c := range r.aliases.Contents(l) {
			mark(c)
		}
	}
}

func (r *Result) classifyAccesses() {
	for _, f := range r.prog.Funcs {
		f.Instrs(func(in *ir.Instr) {
			if !in.IsAccess() {
				return
			}
			locs, known := r.aliases.AccessLocs(in)
			if !known {
				r.escAcc[in] = true // unknown target: assume shared
				return
			}
			for _, l := range locs {
				if r.escLoc[l] {
					r.escAcc[in] = true
					return
				}
			}
		})
	}
}

// LocEscapes reports whether the abstract location may be reached by more
// than one thread.
func (r *Result) LocEscapes(l *alias.Loc) bool { return r.escLoc[l] }

// AccessEscapes reports whether the memory access may touch escaping state.
func (r *Result) AccessEscapes(in *ir.Instr) bool { return r.escAcc[in] }

// EscapingAccesses returns fn's escaping accesses in program order. The
// returned slice is shared; callers must not mutate it.
func (r *Result) EscapingAccesses(f *ir.Fn) []*ir.Instr { return r.fnAccs[f] }

// EscapingReads returns fn's escaping read-kind accesses in program order.
// These are the candidate acquires the paper's detection algorithms filter.
// The returned slice is shared; callers must not mutate it.
func (r *Result) EscapingReads(f *ir.Fn) []*ir.Instr { return r.fnReads[f] }

// CountReads returns the total number of escaping reads in the program —
// the denominator of the paper's Figure 7.
func (r *Result) CountReads() int { return r.nReads }
