package hb

import (
	"testing"

	"fenceplace/internal/acquire"
	"fenceplace/internal/alias"
	"fenceplace/internal/escape"
	"fenceplace/internal/progs"
)

// TestCorpusIsWellSynchronized validates the paper's premise on our corpus:
// given the acquires the Control detector finds, the programs are data-race
// free under the §3 happens-before model. Programs with *designed* benign
// races are listed and checked to race only there (the paper's point about
// Figure 1(b): detection cannot and need not bless such races).
func TestCorpusIsWellSynchronized(t *testing.T) {
	// canneal reads the cooling temperature without synchronization (the
	// real canneal does too) and its swap heuristic reads neighbors'
	// locations racily by design; chaselev reads the deque slot it may
	// lose to a racing CAS — both are the paper's "benign by design" case.
	benign := map[string]bool{"canneal": true, "chaselev": true}

	for _, m := range progs.All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			t.Parallel()
			p := m.Default()
			al := alias.Analyze(p)
			esc := escape.Analyze(p, al)
			acq := acquire.Detect(p, al, esc, acquire.Control)
			rep := CheckMany(p, acq.IsSync, 0, 1, 2)
			if rep.Outcome.Failed() {
				t.Fatalf("SC run failed: %v", rep.Outcome.Failures)
			}
			if benign[m.Name] {
				return // racy by design; nothing to assert either way
			}
			if rep.HasRace() {
				t.Errorf("data races despite detected acquires:")
				for _, r := range rep.Races {
					t.Errorf("  %s", r)
				}
			}
		})
	}
}
