// Package hb implements a dynamic happens-before data-race checker over SC
// executions of ir programs, following the paper's Section 3 model:
// happens-before is program order plus reads-from edges into
// synchronization (acquire) reads, synchronization reads and writes are
// exempt from race reporting, and a program is well-synchronized (legacy
// DRF) when no data read or write races.
//
// The checker is the module's validation oracle for the paper's premise:
// fed the acquires the detection algorithms found, the benchmark corpus
// must be race free (so pruning is sound for it), while the intentionally
// racy relaxation-solver example of Figure 1(b) must be flagged.
//
// Implementation: vector clocks. Every thread carries a clock; every write
// publishes the writer's clock at the written address; an acquire read
// joins the published clock into its thread; spawn and join edges transfer
// clocks between parent and child. Data reads are checked against the last
// write, and writes are checked against preceding data reads.
package hb

import (
	"fmt"
	"sort"

	"fenceplace/internal/ir"
	"fenceplace/internal/tso"
)

// Race is one detected data race: a write and a conflicting data access
// (read or write side listed second) not ordered by happens-before.
type Race struct {
	Addr   int64
	Prev   *ir.Instr // the earlier access (always a write or data read)
	Curr   *ir.Instr // the racing access observed second
	PrevT  int
	CurrT  int
	IsRead bool // true when Curr is a data read racing a write
}

func (r Race) String() string {
	kind := "write/write-after-read"
	if r.IsRead {
		kind = "read/write"
	}
	return fmt.Sprintf("%s race at addr %d: thread %d [%s] vs thread %d [%s]",
		kind, r.Addr, r.PrevT, r.Prev, r.CurrT, r.Curr)
}

// Report is the outcome of one checked execution.
type Report struct {
	Races   []Race
	Outcome *tso.Outcome
}

// HasRace reports whether any data race was observed.
func (r *Report) HasRace() bool { return len(r.Races) > 0 }

// vclock is a grow-on-demand vector clock.
type vclock []int64

func (v vclock) get(i int) int64 {
	if i < len(v) {
		return v[i]
	}
	return 0
}

func (v *vclock) set(i int, x int64) {
	for len(*v) <= i {
		*v = append(*v, 0)
	}
	(*v)[i] = x
}

func (v *vclock) join(o vclock) {
	for i, x := range o {
		if x > v.get(i) {
			v.set(i, x)
		}
	}
}

func (v vclock) clone() vclock { return append(vclock(nil), v...) }

type wordState struct {
	writeVC  vclock    // writer's clock at the last write
	writer   int       // last writer thread
	writeIn  *ir.Instr // last writing instruction
	hasWrite bool
	reads    map[int]read // data reads since the last write, per thread
}

type read struct {
	clock int64
	in    *ir.Instr
}

type checker struct {
	isAcquire func(*ir.Instr) bool
	clocks    []vclock
	words     map[int64]*wordState
	races     []Race
	seenPairs map[[2]*ir.Instr]bool
	maxRaces  int
}

// Access implements tso.Tracer.
func (c *checker) Access(tid int, in *ir.Instr, addr int64, write bool) {
	vc := c.clock(tid)
	w := c.word(addr)
	if write {
		// Check against data reads since the last write (write-after-read).
		for rt, rd := range w.reads {
			if rt != tid && vc.get(rt) < rd.clock {
				c.race(Race{Addr: addr, Prev: rd.in, Curr: in, PrevT: rt, CurrT: tid, IsRead: false})
			}
		}
		// Publish: every write is (conservatively) a release.
		w.writeVC = vc.clone()
		w.writer = tid
		w.writeIn = in
		w.hasWrite = true
		w.reads = nil
		// Release increments the releasing thread's own component.
		vc.set(tid, vc.get(tid)+1)
		return
	}
	rmw := in.Kind == ir.CAS || in.Kind == ir.FetchAdd
	if rmw || c.isAcquire(in) {
		// Synchronization read: join the publisher's clock, report nothing.
		if w.hasWrite {
			vc.join(w.writeVC)
		}
		return
	}
	// Data read: must be ordered after the last write.
	if w.hasWrite && w.writer != tid && vc.get(w.writer) < w.writeVC.get(w.writer) {
		c.race(Race{Addr: addr, Prev: w.writeIn, Curr: in, PrevT: w.writer, CurrT: tid, IsRead: true})
	}
	if w.reads == nil {
		w.reads = make(map[int]read)
	}
	w.reads[tid] = read{clock: vc.get(tid), in: in}
}

// Spawn implements tso.Tracer: the child inherits the parent's clock.
func (c *checker) Spawn(parent, child int) {
	pv := c.clock(parent)
	cv := c.clock(child)
	cv.join(*pv)
	cv.set(child, cv.get(child)+1)
	pv.set(parent, pv.get(parent)+1)
}

// Join implements tso.Tracer: the parent inherits the child's clock.
func (c *checker) Join(parent, child int) {
	pv := c.clock(parent)
	pv.join(*c.clock(child))
	pv.set(parent, pv.get(parent)+1)
}

func (c *checker) clock(tid int) *vclock {
	for len(c.clocks) <= tid {
		v := vclock{}
		v.set(len(c.clocks), 1)
		c.clocks = append(c.clocks, v)
	}
	return &c.clocks[tid]
}

func (c *checker) word(addr int64) *wordState {
	w, ok := c.words[addr]
	if !ok {
		w = &wordState{}
		c.words[addr] = w
	}
	return w
}

func (c *checker) race(r Race) {
	if len(c.races) >= c.maxRaces {
		return
	}
	key := [2]*ir.Instr{r.Prev, r.Curr}
	if c.seenPairs[key] {
		return
	}
	c.seenPairs[key] = true
	c.races = append(c.races, r)
}

// Check runs the program once under SC with the given scheduler seed and
// reports the data races observed on that execution, treating the given
// reads (plus all RMWs) as synchronization reads. A nil isAcquire treats
// every read as a data read — the "no annotations, no detection" view.
func Check(p *ir.Program, isAcquire func(*ir.Instr) bool, seed int64) *Report {
	if isAcquire == nil {
		isAcquire = func(*ir.Instr) bool { return false }
	}
	c := &checker{
		isAcquire: isAcquire,
		words:     make(map[int64]*wordState),
		seenPairs: make(map[[2]*ir.Instr]bool),
		maxRaces:  100,
	}
	out := tso.Run(p, tso.Config{
		Mode:   tso.SC,
		Sched:  tso.Random,
		Seed:   seed,
		Tracer: c,
	})
	sort.Slice(c.races, func(i, j int) bool { return c.races[i].Addr < c.races[j].Addr })
	return &Report{Races: c.races, Outcome: out}
}

// CheckMany runs Check across several seeds and merges the race reports
// (deduplicated by instruction pair). More schedules expose more races.
func CheckMany(p *ir.Program, isAcquire func(*ir.Instr) bool, seeds ...int64) *Report {
	merged := &Report{}
	seen := map[[2]*ir.Instr]bool{}
	for _, s := range seeds {
		rep := Check(p, isAcquire, s)
		if merged.Outcome == nil {
			merged.Outcome = rep.Outcome
		}
		for _, r := range rep.Races {
			key := [2]*ir.Instr{r.Prev, r.Curr}
			if !seen[key] {
				seen[key] = true
				merged.Races = append(merged.Races, r)
			}
		}
	}
	return merged
}
