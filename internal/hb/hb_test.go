package hb

import (
	"testing"

	"fenceplace/internal/acquire"
	"fenceplace/internal/alias"
	"fenceplace/internal/escape"
	"fenceplace/internal/ir"
)

// detect runs the paper's Control detection and returns its classifier.
func detect(t *testing.T, p *ir.Program) func(*ir.Instr) bool {
	t.Helper()
	al := alias.Analyze(p)
	esc := escape.Analyze(p, al)
	res := acquire.Detect(p, al, esc, acquire.Control)
	return res.IsSync
}

// mp is the well-synchronized Figure 1(a) producer-consumer.
func mp(t *testing.T) *ir.Program {
	t.Helper()
	pb := ir.NewProgram("mp")
	data := pb.Global("data", 1)
	flag := pb.Global("flag", 1)
	sink := pb.Global("sink", 1)
	prod := pb.Func("producer", 0)
	one := prod.Const(1)
	prod.Store(data, prod.Const(42))
	prod.Store(flag, one)
	prod.RetVoid()
	cons := pb.Func("consumer", 0)
	cons.SpinWhileNe(flag, ir.NoReg, cons.Const(1))
	v := cons.Load(data)
	cons.Store(sink, v)
	cons.RetVoid()
	main := pb.Func("main", 0)
	t1 := main.Spawn("producer")
	t2 := main.Spawn("consumer")
	main.Join(t1)
	main.Join(t2)
	main.RetVoid()
	pb.SetMain("main")
	return pb.MustBuild()
}

// solver is the Figure 1(b) relaxation-solver: intentionally racy reads of
// the other thread's output (benign by design, but races nonetheless).
func solver(t *testing.T) *ir.Program {
	t.Helper()
	pb := ir.NewProgram("solver")
	x := pb.Global("x", 1)
	y := pb.Global("y", 1)
	o1 := pb.Global("o1", 1)
	o2 := pb.Global("o2", 1)
	p1 := pb.Func("p1", 0)
	p1.Store(x, p1.Const(1)) // a1: x = C1
	p1.Store(y, p1.Const(2)) // a2: y = C2
	p1.RetVoid()
	p2 := pb.Func("p2", 0)
	l2 := p2.Load(y) // b1: local2 = y
	l1 := p2.Load(x) // b2: local1 = x
	p2.Store(o1, l1)
	p2.Store(o2, l2)
	p2.RetVoid()
	main := pb.Func("main", 0)
	t1 := main.Spawn("p1")
	t2 := main.Spawn("p2")
	main.Join(t1)
	main.Join(t2)
	main.RetVoid()
	pb.SetMain("main")
	return pb.MustBuild()
}

func TestMPIsRaceFreeGivenDetectedAcquires(t *testing.T) {
	p := mp(t)
	isAcq := detect(t, p)
	rep := CheckMany(p, isAcq, 0, 1, 2, 3, 4, 5, 6, 7)
	if rep.HasRace() {
		t.Fatalf("well-synchronized MP reported races: %v", rep.Races)
	}
}

func TestMPRacesWithoutAcquireKnowledge(t *testing.T) {
	// With no acquire annotation the flag read cannot establish the edge,
	// so the data read of `data` races with the producer's write.
	p := mp(t)
	rep := CheckMany(p, nil, 0, 1, 2, 3, 4, 5, 6, 7)
	if !rep.HasRace() {
		t.Fatal("unannotated MP must report the data race on `data`")
	}
}

func TestSolverIsRacyEvenWithDetection(t *testing.T) {
	// Figure 1(b): x and y are written and read with no synchronization at
	// all; detection finds no acquires (no branches on the loads), so the
	// races remain — matching the paper's point that the program is not
	// well-synchronized (the races are benign by design, but they exist).
	p := solver(t)
	isAcq := detect(t, p)
	rep := CheckMany(p, isAcq, 0, 1, 2, 3, 4, 5, 6, 7)
	if !rep.HasRace() {
		t.Fatal("the Figure 1(b) solver must report races")
	}
	for _, r := range rep.Races {
		if !r.IsRead {
			continue
		}
	}
}

func TestSpawnJoinEdgesPreventFalseRaces(t *testing.T) {
	// main writes before spawn; child reads; main reads after join: all
	// ordered, no races.
	pb := ir.NewProgram("sj")
	g := pb.Global("g", 1)
	w := pb.Func("worker", 0)
	v := w.Load(g)
	w.Store(g, w.Add(v, w.Const(1)))
	w.RetVoid()
	main := pb.Func("main", 0)
	main.Store(g, main.Const(5))
	tid := main.Spawn("worker")
	main.Join(tid)
	v2 := main.Load(g)
	main.Assert(main.Eq(v2, main.Const(6)), "sequential through spawn/join")
	main.RetVoid()
	pb.SetMain("main")
	p := pb.MustBuild()
	rep := CheckMany(p, nil, 0, 1, 2, 3)
	if rep.HasRace() {
		t.Fatalf("spawn/join ordered program reported races: %v", rep.Races)
	}
	if rep.Outcome.Failed() {
		t.Fatalf("program failed: %v", rep.Outcome.Failures)
	}
}

func TestRMWSynchronizesWithoutAnnotation(t *testing.T) {
	// A spinlock via CAS: the critical sections are ordered through the
	// lock acquire (CAS, always sync) and release write, so the counter
	// updates do not race... except the release-write edge matters: the
	// unlocking store publishes, the next CAS joins.
	pb := ir.NewProgram("lock")
	lock := pb.Global("lock", 1)
	ctr := pb.Global("ctr", 1)
	w := pb.Func("worker", 0)
	pl := w.AddrOf(lock)
	zero := w.Const(0)
	one := w.Const(1)
	w.ForConst(0, 20, func(i ir.Reg) {
		w.While(func() ir.Reg {
			got := w.CAS(pl, zero, one)
			return w.Eq(got, zero)
		}, func() {})
		v := w.Load(ctr)
		w.Store(ctr, w.Add(v, one))
		w.Store(lock, zero) // release
	})
	w.RetVoid()
	main := pb.Func("main", 0)
	t1 := main.Spawn("worker")
	t2 := main.Spawn("worker")
	main.Join(t1)
	main.Join(t2)
	v := main.Load(ctr)
	main.Assert(main.Eq(v, main.Const(40)), "all increments kept")
	main.RetVoid()
	pb.SetMain("main")
	p := pb.MustBuild()
	rep := CheckMany(p, nil, 0, 1, 2, 3)
	if rep.Outcome.Failed() {
		t.Fatalf("lock program failed under SC: %v", rep.Outcome.Failures)
	}
	if rep.HasRace() {
		t.Fatalf("CAS-locked counter reported races: %v", rep.Races)
	}
}

func TestWriteAfterReadRaceDetected(t *testing.T) {
	// t1 reads g (data read), t2 writes g concurrently: write-after-read.
	pb := ir.NewProgram("war")
	g := pb.Global("g", 1)
	sink := pb.Global("sink", 1)
	r := pb.Func("reader", 0)
	v := r.Load(g)
	r.Store(sink, v)
	r.RetVoid()
	wfn := pb.Func("writer", 0)
	wfn.Store(g, wfn.Const(9))
	wfn.RetVoid()
	main := pb.Func("main", 0)
	t1 := main.Spawn("reader")
	t2 := main.Spawn("writer")
	main.Join(t1)
	main.Join(t2)
	main.RetVoid()
	pb.SetMain("main")
	p := pb.MustBuild()
	rep := CheckMany(p, nil, 0, 1, 2, 3, 4, 5, 6, 7)
	if !rep.HasRace() {
		t.Fatal("reader/writer race not detected")
	}
}

func TestRaceStringsAreInformative(t *testing.T) {
	p := solver(t)
	rep := CheckMany(p, nil, 0, 1, 2, 3)
	if !rep.HasRace() {
		t.Fatal("no races to format")
	}
	s := rep.Races[0].String()
	if len(s) < 10 {
		t.Fatalf("race string too short: %q", s)
	}
}
