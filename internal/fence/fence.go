// Package fence implements the locally-optimized fence minimization of Fang
// et al. [2003] as the paper's Section 4.4 uses it, plus the x86-TSO
// lowering policy (full MFENCE only for w→r orderings; zero-cost compiler
// barriers for everything else) and the paper's modification of placing a
// function-entry fence only when the function contains synchronization
// reads.
//
// The core reduction: an ordering u→v is enforced by any fence that lies on
// every control-flow path from u to v. Anchoring each ordering in its
// source block — a fence anywhere between u and the end of u's block is on
// every such path — turns the problem into one minimum-point interval
// stabbing per basic block, which the classic greedy (sort by right
// endpoint, stab at the right end of the first uncovered interval) solves
// optimally per block. This is precisely the "locally optimized" scheme:
// optimal within a block, conservative across blocks.
package fence

import (
	"fmt"
	"sort"
	"strings"

	"fenceplace/internal/ir"
	"fenceplace/internal/orders"
)

// Placement is one fence to be inserted at a gap of a block: gap g lies
// immediately before instruction index g.
type Placement struct {
	Block *ir.Block
	Gap   int
	Kind  ir.FenceKind
}

// Options configures minimization.
type Options struct {
	// NeedFull decides whether an ordering requires a full hardware fence
	// (as opposed to a compiler barrier). For x86-TSO use
	// orders.NeedsFullFenceTSO.
	NeedFull func(orders.Ordering) bool
	// EntryFence decides whether fn gets a full fence at its entry, the
	// mechanism Pensieve uses for interprocedural orderings. The paper's
	// variants pass "fn contains a sync read"; the Pensieve baseline passes
	// "fn contains an escaping read".
	EntryFence func(fn *ir.Fn) bool
}

// Plan is the result of minimization: the placements per function plus
// which functions receive entry fences.
type Plan struct {
	Prog       *ir.Program
	Placements []Placement
	EntryFns   []*ir.Fn
}

// FullFences counts planned full fences, including entry fences.
func (p *Plan) FullFences() int {
	n := len(p.EntryFns)
	for _, pl := range p.Placements {
		if pl.Kind == ir.FenceFull {
			n++
		}
	}
	return n
}

// CompilerBarriers counts planned compiler-only barriers.
func (p *Plan) CompilerBarriers() int {
	n := 0
	for _, pl := range p.Placements {
		if pl.Kind == ir.FenceCompiler {
			n++
		}
	}
	return n
}

// interval is a stabbing interval over the gaps of one block: some gap in
// [lo, hi] must hold a fence.
type interval struct {
	lo, hi int
}

// anchor reduces an ordering to its source-block interval. For a same-block
// forward pair the fence must sit strictly after u and at-or-before v; for
// everything else (cross-block paths and loop-carried pairs) a fence
// between u and its block's terminator is on every path from u onward.
func anchor(o orders.Ordering) (blk *ir.Block, iv interval) {
	u, v := o.From, o.To
	ub := u.Block()
	if v.Block() == ub && u.Pos() < v.Pos() {
		return ub, interval{u.Pos() + 1, v.Pos()}
	}
	return ub, interval{u.Pos() + 1, len(ub.Instrs) - 1}
}

// Minimize computes a minimal (per the locally-optimized scheme) set of
// fence placements enforcing every ordering in the set.
func Minimize(set *orders.Set, opts Options) *Plan {
	if opts.NeedFull == nil {
		opts.NeedFull = orders.NeedsFullFenceTSO
	}
	plan := &Plan{Prog: set.Prog}

	// Deterministic function order: iterate program order, not map order.
	for _, f := range set.Prog.Funcs {
		list, ok := set.ByFn[f]
		if !ok {
			continue
		}
		fullIVs := make(map[*ir.Block][]interval)
		softIVs := make(map[*ir.Block][]interval)
		for _, o := range list {
			blk, iv := anchor(o)
			if opts.NeedFull(o) {
				fullIVs[blk] = append(fullIVs[blk], iv)
			} else {
				softIVs[blk] = append(softIVs[blk], iv)
			}
		}
		// Blocks in function order for determinism.
		for _, blk := range f.Blocks {
			fullGaps := stab(fullIVs[blk], nil)
			for _, g := range fullGaps {
				plan.Placements = append(plan.Placements, Placement{blk, g, ir.FenceFull})
			}
			// A full fence also serves as a compiler barrier: intervals
			// already stabbed by a full gap need nothing further.
			softGaps := stab(softIVs[blk], fullGaps)
			for _, g := range softGaps {
				plan.Placements = append(plan.Placements, Placement{blk, g, ir.FenceCompiler})
			}
		}
	}
	if opts.EntryFence != nil {
		for _, f := range set.Prog.Funcs {
			if opts.EntryFence(f) {
				plan.EntryFns = append(plan.EntryFns, f)
			}
		}
	}
	return plan
}

// stab solves minimum point cover for the intervals, treating the gaps in
// pre as already-placed points. Returns the chosen gaps in ascending order.
func stab(ivs []interval, pre []int) []int {
	if len(ivs) == 0 {
		return nil
	}
	preSet := make(map[int]bool, len(pre))
	for _, g := range pre {
		preSet[g] = true
	}
	remaining := ivs[:0:0]
	for _, iv := range ivs {
		covered := false
		for g := range preSet {
			if iv.lo <= g && g <= iv.hi {
				covered = true
				break
			}
		}
		if !covered {
			remaining = append(remaining, iv)
		}
	}
	sort.Slice(remaining, func(i, j int) bool {
		if remaining[i].hi != remaining[j].hi {
			return remaining[i].hi < remaining[j].hi
		}
		return remaining[i].lo < remaining[j].lo
	})
	var points []int
	last := -1
	for _, iv := range remaining {
		if last >= iv.lo && last <= iv.hi {
			continue
		}
		last = iv.hi
		points = append(points, last)
	}
	return points
}

// Apply inserts the planned fences into a clone of the program, leaving the
// analyzed program untouched. It returns the instrumented clone and the
// instruction correspondence map (original → clone), which callers use to
// re-locate analysis results (e.g. for verification) in the clone.
func (p *Plan) Apply() (*ir.Program, map[*ir.Instr]*ir.Instr) {
	clone, imap, bmap := p.Prog.Clone()
	// Group placements per clone block, insert from the highest gap down so
	// earlier indices stay valid.
	byBlock := make(map[*ir.Block][]Placement)
	for _, pl := range p.Placements {
		nb := bmap[pl.Block]
		byBlock[nb] = append(byBlock[nb], Placement{nb, pl.Gap, pl.Kind})
	}
	for nb, pls := range byBlock {
		sort.Slice(pls, func(i, j int) bool { return pls[i].Gap > pls[j].Gap })
		for _, pl := range pls {
			nb.Insert(pl.Gap, &ir.Instr{Kind: ir.Fence, Imm: int64(pl.Kind), Synthetic: true})
		}
	}
	for _, f := range p.EntryFns {
		entry := bmap[f.Entry()]
		entry.Insert(0, &ir.Instr{Kind: ir.Fence, Imm: int64(ir.FenceFull), Synthetic: true})
	}
	clone.Finalize()
	return clone, imap
}

// CoverageError reports the first ordering Verify found un-enforced, with
// enough context for a caller to locate the gap in the instrumented
// program: the analyzed ordering, its endpoints mapped through the
// instruction correspondence map, and the fences present in the offending
// function.
type CoverageError struct {
	Fn       *ir.Fn          // analyzed function containing the ordering
	Ord      orders.Ordering // the uncovered ordering (analyzed instructions)
	From, To *ir.Instr       // the endpoints in the instrumented program
	NeedFull bool            // whether a full fence was required on the path
	Fences   []*ir.Instr     // the fences present in the instrumented function
}

func (e *CoverageError) Error() string {
	strength := "compiler barrier"
	if e.NeedFull {
		strength = "full fence"
	}
	return fmt.Sprintf(
		"fence: uncovered %s ordering in %s: [%s] -> [%s] (instrumented %s/%s#%d -> %s/%s#%d, %s required, %d fences in function)",
		e.Ord.Type, e.Fn.Name, e.Ord.From, e.Ord.To,
		e.Fn.Name, e.From.Block().Name, e.From.Pos(),
		e.Fn.Name, e.To.Block().Name, e.To.Pos(),
		strength, len(e.Fences))
}

// Verify checks, on an instrumented program, that every ordering is
// enforced: no control-flow path from the (cloned) source to the (cloned)
// destination avoids a fence of sufficient strength. It returns a
// *CoverageError describing the first uncovered ordering found, or nil.
//
// imap maps analyzed instructions to their clones (as returned by Apply).
func Verify(set *orders.Set, opts Options, instr *ir.Program, imap map[*ir.Instr]*ir.Instr) error {
	if opts.NeedFull == nil {
		opts.NeedFull = orders.NeedsFullFenceTSO
	}
	for _, f := range set.Prog.Funcs {
		for _, o := range set.ByFn[f] {
			u, v := imap[o.From], imap[o.To]
			if u == nil || v == nil {
				return fmt.Errorf("fence: ordering endpoints not mapped into instrumented program")
			}
			needFull := opts.NeedFull(o)
			if unfencedPathExists(u, v, needFull) {
				nf := instr.Fn(f.Name)
				var fences []*ir.Instr
				if nf != nil {
					nf.Instrs(func(in *ir.Instr) {
						if in.Kind == ir.Fence {
							fences = append(fences, in)
						}
					})
				}
				return &CoverageError{
					Fn: f, Ord: o, From: u, To: v,
					NeedFull: needFull, Fences: fences,
				}
			}
		}
	}
	return nil
}

// unfencedPathExists searches for a path from just-after u to just-before v
// that crosses no fence of sufficient strength. needFull=true requires a
// full fence to block the path; otherwise any fence (full or compiler)
// blocks it.
func unfencedPathExists(u, v *ir.Instr, needFull bool) bool {
	type state struct {
		b   *ir.Block
		idx int
	}
	blocks := func(in *ir.Instr) bool {
		if in.Kind != ir.Fence {
			return false
		}
		if needFull {
			return ir.FenceKind(in.Imm) == ir.FenceFull
		}
		return true
	}
	start := state{u.Block(), u.Pos() + 1}
	goal := state{v.Block(), v.Pos()}
	seen := map[state]bool{}
	stack := []state{start}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[s] {
			continue
		}
		seen[s] = true
		if s == goal {
			return true
		}
		if s.idx >= len(s.b.Instrs) {
			continue // fell off an unterminated block (cannot happen on valid IR)
		}
		in := s.b.Instrs[s.idx]
		if blocks(in) {
			continue // path blocked by a fence
		}
		if in.IsTerminator() {
			for _, succ := range s.b.Succs() {
				stack = append(stack, state{succ, 0})
			}
			continue
		}
		stack = append(stack, state{s.b, s.idx + 1})
	}
	return false
}

// Describe renders the plan for human inspection (CLI and tests).
func (p *Plan) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan for %s: %d full fences, %d compiler barriers, %d entry fences\n",
		p.Prog.Name, p.FullFences()-len(p.EntryFns), p.CompilerBarriers(), len(p.EntryFns))
	for _, pl := range p.Placements {
		fmt.Fprintf(&sb, "  %s/%s gap %d: %s\n", pl.Block.Fn().Name, pl.Block.Name, pl.Gap, pl.Kind)
	}
	for _, f := range p.EntryFns {
		fmt.Fprintf(&sb, "  %s/entry: full (entry fence)\n", f.Name)
	}
	return sb.String()
}
