package fence

import (
	"math/rand"
	"testing"

	"fenceplace/internal/acquire"
	"fenceplace/internal/alias"
	"fenceplace/internal/escape"
	"fenceplace/internal/ir"
	"fenceplace/internal/orders"
)

// randProgram generates a random but valid program mixing escaping and
// local accesses, branches, loops, pointers and RMWs. It is the workload
// for the property tests: whatever shape comes out, minimization must cover
// every ordering and pruning must stay monotone.
func randProgram(rng *rand.Rand) *ir.Program {
	pb := ir.NewProgram("rand")
	nGlobals := 2 + rng.Intn(4)
	globals := make([]*ir.Global, nGlobals)
	for i := range globals {
		size := 1
		if rng.Intn(2) == 0 {
			size = 1 + rng.Intn(8)
		}
		globals[i] = pb.Global(string(rune('a'+i)), size)
	}
	nFuncs := 1 + rng.Intn(3)
	for fi := 0; fi < nFuncs; fi++ {
		name := "f" + string(rune('0'+fi))
		b := pb.Func(name, 0)
		vals := []ir.Reg{b.Const(int64(rng.Intn(100)))}
		local := b.Alloca(4)
		var emit func(depth int)
		emit = func(depth int) {
			n := 1 + rng.Intn(6)
			for i := 0; i < n; i++ {
				g := globals[rng.Intn(len(globals))]
				v := vals[rng.Intn(len(vals))]
				switch rng.Intn(10) {
				case 0, 1: // global load
					vals = append(vals, b.Load(g))
				case 2, 3: // global store
					b.Store(g, v)
				case 4: // local traffic (non-escaping)
					b.StorePtr(local, v)
					vals = append(vals, b.LoadPtr(local))
				case 5: // arithmetic
					w := vals[rng.Intn(len(vals))]
					vals = append(vals, b.Add(v, w))
				case 6: // branch on a value (possibly creating control acquires)
					if depth < 2 {
						b.IfElse(b.Gt(v, b.Const(int64(rng.Intn(50)))), func() {
							emit(depth + 1)
						}, func() {
							emit(depth + 1)
						})
					}
				case 7: // small loop
					if depth < 2 {
						b.ForConst(0, int64(1+rng.Intn(3)), func(i ir.Reg) {
							if rng.Intn(2) == 0 {
								b.StoreIdx(globals[rng.Intn(len(globals))], b.Mod(i, b.Const(1)), i)
							} else {
								vals = append(vals, b.Load(globals[rng.Intn(len(globals))]))
							}
						})
					}
				case 8: // pointer access through addrof
					ptr := b.AddrOf(g)
					if rng.Intn(2) == 0 {
						b.StorePtr(ptr, v)
					} else {
						vals = append(vals, b.LoadPtr(ptr))
					}
				case 9: // RMW
					ptr := b.AddrOf(g)
					if rng.Intn(2) == 0 {
						vals = append(vals, b.CAS(ptr, v, b.Const(1)))
					} else {
						vals = append(vals, b.FetchAdd(ptr, b.Const(1)))
					}
				}
			}
		}
		emit(0)
		b.RetVoid()
	}
	return pb.MustBuild()
}

func TestPropertyMinimizeCoversAllOrderings(t *testing.T) {
	rng := rand.New(rand.NewSource(20150207)) // PPoPP'15 :-)
	iters := 60
	if testing.Short() {
		iters = 15
	}
	for trial := 0; trial < iters; trial++ {
		p := randProgram(rng)
		al := alias.Analyze(p)
		esc := escape.Analyze(p, al)
		set := orders.Generate(p, esc)
		plan := Minimize(set, Options{})
		inst, imap := plan.Apply()
		if err := Verify(set, Options{}, inst, imap); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, ir.Format(p))
		}
	}
}

func TestPropertyPrunedPlansVerifyAndAreMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	iters := 60
	if testing.Short() {
		iters = 15
	}
	for trial := 0; trial < iters; trial++ {
		p := randProgram(rng)
		al := alias.Analyze(p)
		esc := escape.Analyze(p, al)
		set := orders.Generate(p, esc)
		ctl := acquire.Detect(p, al, esc, acquire.Control)
		ac := acquire.Detect(p, al, esc, acquire.AddressControl)

		prunedCtl := set.Prune(ctl)
		prunedAC := set.Prune(ac)

		// Monotonicity: Control acquires ⊆ A+C acquires implies
		// orderings(Control) ⊆ orderings(A+C) ⊆ orderings(Pensieve).
		if prunedCtl.Total() > prunedAC.Total() {
			t.Fatalf("trial %d: Control kept %d > A+C kept %d", trial, prunedCtl.Total(), prunedAC.Total())
		}
		if prunedAC.Total() > set.Total() {
			t.Fatalf("trial %d: pruning grew the set", trial)
		}

		for _, pr := range []*orders.Set{prunedCtl, prunedAC} {
			plan := Minimize(pr, Options{})
			inst, imap := plan.Apply()
			if err := Verify(pr, Options{}, inst, imap); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
}

func TestPropertyInstrumentedProgramsStayValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		p := randProgram(rng)
		al := alias.Analyze(p)
		esc := escape.Analyze(p, al)
		set := orders.Generate(p, esc)
		plan := Minimize(set, Options{
			EntryFence: func(fn *ir.Fn) bool { return len(esc.EscapingReads(fn)) > 0 },
		})
		inst, _ := plan.Apply()
		if err := inst.Validate(); err != nil {
			t.Fatalf("trial %d: instrumented program invalid: %v", trial, err)
		}
	}
}
