package fence

import (
	"strings"
	"testing"

	"fenceplace/internal/acquire"
	"fenceplace/internal/alias"
	"fenceplace/internal/escape"
	"fenceplace/internal/ir"
	"fenceplace/internal/orders"
)

// pipeline runs escape → orders for a program.
func pipeline(t testing.TB, p *ir.Program) (*orders.Set, *alias.Analysis, *escape.Result) {
	t.Helper()
	al := alias.Analyze(p)
	esc := escape.Analyze(p, al)
	return orders.Generate(p, esc), al, esc
}

func TestSingleFenceCoversOverlappingIntervals(t *testing.T) {
	// w(a) w(b) r(c) r(d): the two w→r orderings (a→c, a→d, b→c, b→d)
	// overlap; one full fence between the last write and the first read
	// suffices. The greedy stabbing must find exactly one.
	pb := ir.NewProgram("p")
	a := pb.Global("a", 1)
	bg := pb.Global("b", 1)
	c := pb.Global("c", 1)
	d := pb.Global("d", 1)
	fb := pb.Func("f", 0)
	one := fb.Const(1)
	fb.Store(a, one)
	fb.Store(bg, one)
	v1 := fb.Load(c)
	v2 := fb.Load(d)
	_, _ = v1, v2
	fb.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	set, _, _ := pipeline(t, p)
	plan := Minimize(set, Options{})
	fullCount := 0
	for _, pl := range plan.Placements {
		if pl.Kind == ir.FenceFull {
			fullCount++
		}
	}
	if fullCount != 1 {
		t.Fatalf("placed %d full fences, want 1\n%s", fullCount, plan.Describe())
	}
	inst, imap := plan.Apply()
	if err := Verify(set, Options{}, inst, imap); err != nil {
		t.Fatal(err)
	}
}

func TestDisjointIntervalsNeedTwoFences(t *testing.T) {
	// w r w r: the two w→r pairs (w1→r1) and (w2→r2) are disjoint... but
	// note w1→r2 spans both, so greedy still needs 2 stabs for the two
	// disjoint cores.
	pb := ir.NewProgram("p")
	a := pb.Global("a", 1)
	bg := pb.Global("b", 1)
	fb := pb.Func("f", 0)
	one := fb.Const(1)
	fb.Store(a, one)
	v1 := fb.Load(a)
	fb.Store(bg, one)
	v2 := fb.Load(bg)
	_, _ = v1, v2
	fb.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	set, _, _ := pipeline(t, p)
	plan := Minimize(set, Options{})
	fullCount := 0
	for _, pl := range plan.Placements {
		if pl.Kind == ir.FenceFull {
			fullCount++
		}
	}
	if fullCount != 2 {
		t.Fatalf("placed %d full fences, want 2\n%s", fullCount, plan.Describe())
	}
	inst, imap := plan.Apply()
	if err := Verify(set, Options{}, inst, imap); err != nil {
		t.Fatal(err)
	}
}

func TestCompilerBarriersForNonWRO(t *testing.T) {
	// w(a) w(b): a single w→w ordering needs a compiler barrier but no full
	// fence on TSO.
	pb := ir.NewProgram("p")
	a := pb.Global("a", 1)
	bg := pb.Global("b", 1)
	fb := pb.Func("f", 0)
	one := fb.Const(1)
	fb.Store(a, one)
	fb.Store(bg, one)
	fb.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	set, _, _ := pipeline(t, p)
	plan := Minimize(set, Options{})
	if plan.FullFences() != 0 {
		t.Fatalf("w->w needed %d full fences on TSO, want 0", plan.FullFences())
	}
	if plan.CompilerBarriers() != 1 {
		t.Fatalf("placed %d compiler barriers, want 1", plan.CompilerBarriers())
	}
	inst, imap := plan.Apply()
	if err := Verify(set, Options{}, inst, imap); err != nil {
		t.Fatal(err)
	}
}

func TestFullFenceSubsumesCompilerBarrier(t *testing.T) {
	// w(a) w(b) r(c): w→r needs a full fence; the w→w ordering's interval
	// overlaps it, so no separate compiler barrier may appear at a gap the
	// full fence already stabs.
	pb := ir.NewProgram("p")
	a := pb.Global("a", 1)
	bg := pb.Global("b", 1)
	c := pb.Global("c", 1)
	fb := pb.Func("f", 0)
	one := fb.Const(1)
	fb.Store(a, one)
	fb.Store(bg, one)
	v := fb.Load(c)
	_ = v
	fb.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	set, _, _ := pipeline(t, p)
	plan := Minimize(set, Options{})
	// w(a)→w(b) has interval ending before the full fence's gap choices...
	// count: the w→w interval is [store_a+1, store_b]; w→r intervals end
	// later. Greedy may need one barrier + one fence or the fence may
	// cover, depending on gaps. The invariant: every ordering covered and
	// no two placements at one gap.
	seen := map[[2]int]bool{}
	for _, pl := range plan.Placements {
		key := [2]int{pl.Block.ID(), pl.Gap}
		if seen[key] {
			t.Fatalf("two placements at the same gap\n%s", plan.Describe())
		}
		seen[key] = true
	}
	inst, imap := plan.Apply()
	if err := Verify(set, Options{}, inst, imap); err != nil {
		t.Fatal(err)
	}
}

func TestCrossBlockAnchoredAtSource(t *testing.T) {
	// Producer-style: store in entry, conditional, load in a later block.
	// The w→r ordering must be covered on every path.
	pb := ir.NewProgram("p")
	a := pb.Global("a", 1)
	bg := pb.Global("b", 1)
	fb := pb.Func("f", 1)
	one := fb.Const(1)
	fb.Store(a, one)
	fb.IfElse(fb.Gt(fb.Param(0), one), func() {
		fb.Store(bg, one)
	}, func() {})
	v := fb.Load(a)
	_ = v
	fb.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	set, _, _ := pipeline(t, p)
	plan := Minimize(set, Options{})
	inst, imap := plan.Apply()
	if err := Verify(set, Options{}, inst, imap); err != nil {
		t.Fatal(err)
	}
}

func TestLoopCarriedOrderingCovered(t *testing.T) {
	// store x; load y in a loop: the loop-carried r(y)→w(x) and w(x)→r(y)
	// orderings (via the back edge) must be covered.
	pb := ir.NewProgram("p")
	x := pb.Global("x", 1)
	y := pb.Global("y", 1)
	fb := pb.Func("f", 0)
	fb.ForConst(0, 8, func(i ir.Reg) {
		fb.Store(x, i)
		v := fb.Load(y)
		_ = v
	})
	fb.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	set, _, _ := pipeline(t, p)
	plan := Minimize(set, Options{})
	inst, imap := plan.Apply()
	if err := Verify(set, Options{}, inst, imap); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyDetectsMissingFence(t *testing.T) {
	// An empty plan over a program with a w→r ordering must fail Verify.
	pb := ir.NewProgram("p")
	a := pb.Global("a", 1)
	fb := pb.Func("f", 0)
	fb.Store(a, fb.Const(1))
	v := fb.Load(a)
	_ = v
	fb.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	set, _, _ := pipeline(t, p)
	empty := &Plan{Prog: p}
	inst, imap := empty.Apply()
	err = Verify(set, Options{}, inst, imap)
	if err == nil {
		t.Fatal("Verify accepted an unfenced w->r ordering")
	}
	if !strings.Contains(err.Error(), "uncovered") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCompilerBarrierDoesNotSatisfyFullOrdering(t *testing.T) {
	// Hand-place a compiler barrier where a full fence is required; Verify
	// must reject it.
	pb := ir.NewProgram("p")
	a := pb.Global("a", 1)
	fb := pb.Func("f", 0)
	fb.Store(a, fb.Const(1))
	v := fb.Load(a)
	_ = v
	fb.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	set, _, _ := pipeline(t, p)
	var gap int
	var blk *ir.Block
	for _, f := range p.Funcs {
		for _, o := range set.ByFn[f] {
			b, iv := anchor(o)
			blk, gap = b, iv.lo
		}
	}
	weak := &Plan{Prog: p, Placements: []Placement{{blk, gap, ir.FenceCompiler}}}
	inst, imap := weak.Apply()
	if err := Verify(set, Options{}, inst, imap); err == nil {
		t.Fatal("compiler barrier accepted for a w->r ordering")
	}
	// The same placement as a full fence passes.
	strong := &Plan{Prog: p, Placements: []Placement{{blk, gap, ir.FenceFull}}}
	inst2, imap2 := strong.Apply()
	if err := Verify(set, Options{}, inst2, imap2); err != nil {
		t.Fatal(err)
	}
}

func TestEntryFences(t *testing.T) {
	pb := ir.NewProgram("p")
	a := pb.Global("a", 1)
	fb := pb.Func("f", 0)
	v := fb.Load(a)
	_ = v
	fb.RetVoid()
	g := pb.Func("g", 0)
	g.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	set, _, esc := pipeline(t, p)
	plan := Minimize(set, Options{
		EntryFence: func(fn *ir.Fn) bool { return len(esc.EscapingReads(fn)) > 0 },
	})
	if len(plan.EntryFns) != 1 || plan.EntryFns[0].Name != "f" {
		t.Fatalf("entry fences on %v, want [f]", plan.EntryFns)
	}
	inst, _ := plan.Apply()
	first := inst.Fn("f").Entry().Instrs[0]
	if first.Kind != ir.Fence || ir.FenceKind(first.Imm) != ir.FenceFull || !first.Synthetic {
		t.Fatalf("entry fence not inserted first: %s", first)
	}
	if inst.Fn("g").Entry().Instrs[0].Kind == ir.Fence {
		t.Fatal("entry fence on function with no escaping reads")
	}
	if plan.FullFences() != 1 {
		t.Fatalf("FullFences = %d, want 1 (the entry fence)", plan.FullFences())
	}
}

func TestApplyLeavesOriginalUntouched(t *testing.T) {
	pb := ir.NewProgram("p")
	a := pb.Global("a", 1)
	fb := pb.Func("f", 0)
	fb.Store(a, fb.Const(1))
	v := fb.Load(a)
	_ = v
	fb.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	before := p.NumInstrs()
	set, _, _ := pipeline(t, p)
	plan := Minimize(set, Options{})
	inst, _ := plan.Apply()
	if p.NumInstrs() != before {
		t.Fatal("Apply mutated the analyzed program")
	}
	if inst.NumInstrs() <= before {
		t.Fatal("instrumented clone has no extra instructions")
	}
	full, _ := inst.CountFences(true)
	if full != plan.FullFences() {
		t.Fatalf("clone has %d synthetic full fences, plan says %d", full, plan.FullFences())
	}
}

func TestPrunedPlanNeverLargerAndStillVerifies(t *testing.T) {
	// End-to-end: MP with acquire detection. The pruned plan must place no
	// more fences than the unpruned one, and the pruned instrumentation
	// must still cover every surviving ordering.
	pb := ir.NewProgram("mp")
	data := pb.Global("data", 1)
	flag := pb.Global("flag", 1)
	sink := pb.Global("sink", 1)
	prod := pb.Func("producer", 0)
	one := prod.Const(1)
	prod.Store(data, one)
	prod.Store(flag, one)
	prod.RetVoid()
	cons := pb.Func("consumer", 0)
	one2 := cons.Const(1)
	cons.SpinWhileNe(flag, ir.NoReg, one2)
	v := cons.Load(data)
	cons.Store(sink, v)
	cons.RetVoid()
	main := pb.Func("main", 0)
	t1 := main.Spawn("producer")
	t2 := main.Spawn("consumer")
	main.Join(t1)
	main.Join(t2)
	main.RetVoid()
	pb.SetMain("main")
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	al := alias.Analyze(p)
	esc := escape.Analyze(p, al)
	full := orders.Generate(p, esc)
	acq := acquire.Detect(p, al, esc, acquire.Control)
	pruned := full.Prune(acq)

	planFull := Minimize(full, Options{})
	planPruned := Minimize(pruned, Options{})
	if planPruned.FullFences() > planFull.FullFences() {
		t.Fatalf("pruned plan has more full fences (%d) than unpruned (%d)",
			planPruned.FullFences(), planFull.FullFences())
	}
	inst, imap := planPruned.Apply()
	if err := Verify(pruned, Options{}, inst, imap); err != nil {
		t.Fatal(err)
	}
	instF, imapF := planFull.Apply()
	if err := Verify(full, Options{}, instF, imapF); err != nil {
		t.Fatal(err)
	}
}
