package fence

import (
	"strings"
	"testing"

	"fenceplace/internal/ir"
	"fenceplace/internal/orders"
)

// mkBlockProgram builds one function with two blocks:
//
//	entry: store a; store b; load a; jmp next
//	next:  load b; ret
func mkBlockProgram(t *testing.T) (*ir.Program, []*ir.Instr) {
	t.Helper()
	pb := ir.NewProgram("p")
	a := pb.Global("a", 1)
	bg := pb.Global("b", 1)
	fb := pb.Func("f", 0)
	one := fb.Const(1)
	s1 := fb.Emit(&ir.Instr{Kind: ir.Store, G: a, Idx: ir.NoReg, A: one})
	s2 := fb.Emit(&ir.Instr{Kind: ir.Store, G: bg, Idx: ir.NoReg, A: one})
	l1 := fb.Emit(&ir.Instr{Kind: ir.Load, Dst: fb.NewReg(), G: a, Idx: ir.NoReg})
	next := fb.NewBlock("next")
	fb.Jmp(next)
	fb.StartBlock(next)
	l2 := fb.Emit(&ir.Instr{Kind: ir.Load, Dst: fb.NewReg(), G: bg, Idx: ir.NoReg})
	fb.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p, []*ir.Instr{s1, s2, l1, l2}
}

func TestAnchorSameBlockForward(t *testing.T) {
	_, ins := mkBlockProgram(t)
	s1, l1 := ins[0], ins[2]
	blk, iv := anchor(orders.Ordering{From: s1, To: l1, Type: orders.WR})
	if blk != s1.Block() {
		t.Fatal("anchored in the wrong block")
	}
	// s1 at pos 1 (after the const), l1 at pos 3: interval [2, 3].
	if iv.lo != s1.Pos()+1 || iv.hi != l1.Pos() {
		t.Fatalf("interval [%d,%d], want [%d,%d]", iv.lo, iv.hi, s1.Pos()+1, l1.Pos())
	}
}

func TestAnchorCrossBlock(t *testing.T) {
	_, ins := mkBlockProgram(t)
	s2, l2 := ins[1], ins[3]
	blk, iv := anchor(orders.Ordering{From: s2, To: l2, Type: orders.WR})
	if blk != s2.Block() {
		t.Fatal("cross-block ordering must anchor in the source block")
	}
	// Fence must land after s2 and at latest just before the terminator.
	if iv.lo != s2.Pos()+1 || iv.hi != len(s2.Block().Instrs)-1 {
		t.Fatalf("interval [%d,%d], want [%d,%d]", iv.lo, iv.hi, s2.Pos()+1, len(s2.Block().Instrs)-1)
	}
}

func TestStabGreedyOptimal(t *testing.T) {
	cases := []struct {
		name string
		ivs  []interval
		pre  []int
		want int
	}{
		{"empty", nil, nil, 0},
		{"single", []interval{{1, 3}}, nil, 1},
		{"nested share a point", []interval{{1, 5}, {2, 3}}, nil, 1},
		{"disjoint need two", []interval{{1, 2}, {4, 5}}, nil, 2},
		{"chain overlapping", []interval{{1, 3}, {2, 4}, {3, 5}}, nil, 1},
		{"classic two-stab", []interval{{1, 2}, {2, 3}, {4, 5}}, nil, 2},
		{"pre covers all", []interval{{1, 3}}, []int{2}, 0},
		{"pre covers some", []interval{{1, 2}, {4, 6}}, []int{1}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := stab(tc.ivs, tc.pre)
			if len(got) != tc.want {
				t.Fatalf("stab placed %d points %v, want %d", len(got), got, tc.want)
			}
			// Every interval must be stabbed by a chosen or pre point.
			points := append(append([]int{}, got...), tc.pre...)
			for _, iv := range tc.ivs {
				hit := false
				for _, p := range points {
					if iv.lo <= p && p <= iv.hi {
						hit = true
					}
				}
				if !hit {
					t.Fatalf("interval [%d,%d] left uncovered by %v", iv.lo, iv.hi, points)
				}
			}
		})
	}
}

func TestDescribeOutput(t *testing.T) {
	p, _ := mkBlockProgram(t)
	set, _, _ := pipeline(t, p)
	plan := Minimize(set, Options{})
	d := plan.Describe()
	for _, want := range []string{"plan for p", "full"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
}

func TestVerifyRejectsUnmappedInstrs(t *testing.T) {
	p, _ := mkBlockProgram(t)
	set, _, _ := pipeline(t, p)
	plan := Minimize(set, Options{})
	inst, _ := plan.Apply()
	// An empty instruction map must be reported, not panic.
	err := Verify(set, Options{}, inst, map[*ir.Instr]*ir.Instr{})
	if err == nil || !strings.Contains(err.Error(), "not mapped") {
		t.Fatalf("err = %v, want mapping complaint", err)
	}
}
