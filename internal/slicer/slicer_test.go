package slicer

import (
	"testing"

	"fenceplace/internal/alias"
	"fenceplace/internal/escape"
	"fenceplace/internal/ir"
)

func prep(t *testing.T, p *ir.Program) (*alias.Analysis, *escape.Result) {
	t.Helper()
	al := alias.Analyze(p)
	return al, escape.Analyze(p, al)
}

func TestDefsConservativeOverMultipleAssignments(t *testing.T) {
	// A register assigned in two places (loop induction pattern) reports
	// both defining instructions.
	pb := ir.NewProgram("p")
	g := pb.Global("g", 8)
	b := pb.Func("f", 0)
	b.ForConst(0, 4, func(i ir.Reg) {
		b.StoreIdx(g, i, i)
	})
	b.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	al, esc := prep(t, p)
	f := p.Fn("f")
	s := New(f, al, esc)
	// Find the induction register: destination of the first Move.
	var ind ir.Reg = ir.NoReg
	f.Instrs(func(in *ir.Instr) {
		if in.Kind == ir.Move && ind == ir.NoReg {
			ind = in.Dst
		}
	})
	if ind == ir.NoReg {
		t.Fatal("no move found")
	}
	if got := len(s.Defs(ind)); got < 2 {
		t.Fatalf("induction register has %d defs, want >= 2 (init + latch)", got)
	}
}

func TestSliceStopsAtPlainLoadOperands(t *testing.T) {
	// Listing 2: for a load, only potential writers are traced — the index
	// operand is not (that is the address signature's job). Slicing from a
	// branch on arr[i] must flag the arr load but not the i load.
	pb := ir.NewProgram("p")
	idxG := pb.Global("idx", 1)
	arr := pb.Global("arr", 8)
	b := pb.Func("f", 0)
	i := b.Load(idxG)
	v := b.LoadIdx(arr, i)
	b.If(b.Gt(v, b.Const(0)), func() {})
	b.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	al, esc := prep(t, p)
	f := p.Fn("f")
	s := New(f, al, esc)
	var br *ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in.Kind == ir.Br && br == nil {
			br = in
		}
	})
	s.SliceFromRegs(br.A)
	reads := s.SyncReads()
	foundArr, foundIdx := false, false
	for _, in := range reads {
		if in.G != nil && in.G.Name == "arr" {
			foundArr = true
		}
		if in.G != nil && in.G.Name == "idx" {
			foundIdx = true
		}
	}
	if !foundArr {
		t.Error("branch-fed arr load not in slice")
	}
	if foundIdx {
		t.Error("index load wrongly pulled into the value slice of a plain load")
	}
}

func TestSeenSetSharedAcrossSlices(t *testing.T) {
	pb := ir.NewProgram("p")
	flag := pb.Global("flag", 1)
	b := pb.Func("f", 0)
	v := b.Load(flag)
	c := b.Eq(v, b.Const(1))
	b.If(c, func() {})
	b.If(c, func() {}) // second branch over the same slice
	b.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	al, esc := prep(t, p)
	f := p.Fn("f")
	s := New(f, al, esc)
	var brs []*ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in.Kind == ir.Br {
			brs = append(brs, in)
		}
	})
	if len(brs) < 2 {
		t.Fatalf("want >= 2 branches, got %d", len(brs))
	}
	s.SliceFromRegs(brs[0].A)
	if !s.Seen(find(f, ir.Load)) {
		t.Fatal("load not seen after first slice")
	}
	s.SliceFromRegs(brs[1].A) // must terminate instantly via seen set
	if got := len(s.SyncReads()); got != 1 {
		t.Fatalf("got %d sync reads, want exactly 1 (no duplicates)", got)
	}
}

func TestCycleTermination(t *testing.T) {
	// A loop-carried dependence (x = f(x)) must not hang the slicer.
	pb := ir.NewProgram("p")
	g := pb.Global("g", 1)
	b := pb.Func("f", 0)
	acc := b.Move(b.Load(g))
	n := b.Move(b.Const(10))
	one := b.Const(1)
	b.While(func() ir.Reg { return b.Gt(n, b.Const(0)) }, func() {
		b.MoveTo(acc, b.Add(acc, acc)) // acc depends on acc
		b.MoveTo(n, b.Sub(n, one))
	})
	b.If(b.Gt(acc, b.Const(100)), func() {})
	b.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	al, esc := prep(t, p)
	f := p.Fn("f")
	s := New(f, al, esc)
	f.Instrs(func(in *ir.Instr) {
		if in.Kind == ir.Br {
			s.SliceFromRegs(in.A)
		}
	})
	reads := s.SyncReads()
	if len(reads) != 1 {
		t.Fatalf("got %d sync reads, want 1 (the g load feeding acc)", len(reads))
	}
}

func TestNoRegRootIgnored(t *testing.T) {
	pb := ir.NewProgram("p")
	b := pb.Func("f", 0)
	b.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	al, esc := prep(t, p)
	s := New(p.Fn("f"), al, esc)
	s.SliceFromRegs(ir.NoReg) // must be a no-op, not a panic
	if len(s.SyncReads()) != 0 {
		t.Fatal("NoReg root produced sync reads")
	}
}

func find(f *ir.Fn, k ir.Kind) *ir.Instr {
	var found *ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in.Kind == k && found == nil {
			found = in
		}
	})
	return found
}
