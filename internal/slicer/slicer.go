// Package slicer implements the conservative intraprocedural backwards
// slicer of the paper's Listing 2. Both acquire-detection algorithms
// (Listings 1 and 3) drive it: they seed a worklist with the defining
// instructions of some root operands (branch predicates, dereferenced
// addresses, address-calculation offsets) and the slicer walks backwards
// through register def-use and — for loads — through the may-alias
// "potential writers", registering every escaping read it encounters as a
// synchronization-read candidate.
//
// Conservatism notes, mirroring the paper:
//   - get_def is conservative: registers may be defined at several sites
//     (loop-carried moves), and every defining site enters the slice;
//   - a load's value is traced to every store in the function that may
//     alias it (Listing 2 line 17);
//   - the `seen` set is shared across all slices of one function, both to
//     terminate cycles and because results only accumulate (Listing 1
//     passes one seen set to every slicer call).
//
// The paper ignores read-modify-writes; following its Section 3 remark we
// treat CAS/FetchAdd as a read-followed-by-write at one point, and — since
// their result registers genuinely derive from their value operands — we
// additionally trace their operand definitions, which only widens the slice
// (the conservative direction).
package slicer

import (
	"fenceplace/internal/alias"
	"fenceplace/internal/escape"
	"fenceplace/internal/ir"
)

// Index is the immutable per-function lookup state a slice walks over: the
// conservative register-definition map and, for every memory read, its
// precomputed may-alias potential writers. One Index serves every slicer of
// the function — both detection variants, possibly concurrently — so a pass
// session builds it once per function and shares it.
type Index struct {
	fn      *ir.Fn
	defs    map[ir.Reg][]*ir.Instr
	writers map[*ir.Instr][]*ir.Instr
}

// NewIndex builds the shared def/writer index for fn. The alias analysis
// must belong to the same (finalized) program.
func NewIndex(fn *ir.Fn, al *alias.Analysis) *Index {
	ix := &Index{
		fn:      fn,
		defs:    make(map[ir.Reg][]*ir.Instr),
		writers: make(map[*ir.Instr][]*ir.Instr),
	}
	fn.Instrs(func(in *ir.Instr) {
		if d := in.Def(); d != ir.NoReg {
			ix.defs[d] = append(ix.defs[d], in)
		}
	})
	fn.Instrs(func(in *ir.Instr) {
		if in.ReadsMem() {
			ix.writers[in] = al.PotentialWriters(fn, in)
		}
	})
	return ix
}

// Fn returns the indexed function.
func (ix *Index) Fn() *ir.Fn { return ix.fn }

// Defs returns every instruction in the function that may define r — the
// conservative get_def of the paper's listings.
func (ix *Index) Defs(r ir.Reg) []*ir.Instr { return ix.defs[r] }

// Writers returns the precomputed potential writers of a memory read
// (Listing 2 line 17).
func (ix *Index) Writers(load *ir.Instr) []*ir.Instr { return ix.writers[load] }

// Slicer carries the per-function slicing state shared across root sets.
type Slicer struct {
	ix  *Index
	esc *escape.Result

	seen      map[*ir.Instr]bool
	syncReads map[*ir.Instr]bool
}

// New prepares a slicer for fn with a private index. The alias and escape
// results must belong to the same (finalized) program. Callers slicing one
// function more than once (e.g. under several detection variants) should
// build the Index once and use NewShared.
func New(fn *ir.Fn, al *alias.Analysis, esc *escape.Result) *Slicer {
	return NewShared(NewIndex(fn, al), esc)
}

// NewShared prepares a slicer over a prebuilt index. The index is only
// read, so any number of concurrent slicers may share it.
func NewShared(ix *Index, esc *escape.Result) *Slicer {
	return &Slicer{
		ix:        ix,
		esc:       esc,
		seen:      make(map[*ir.Instr]bool),
		syncReads: make(map[*ir.Instr]bool),
	}
}

// Defs returns every instruction in the function that may define r — the
// conservative get_def of the paper's listings.
func (s *Slicer) Defs(r ir.Reg) []*ir.Instr { return s.ix.defs[r] }

// SliceFromRegs seeds the worklist with the definitions of the given
// registers (get_def of each root operand) and runs the slice to exhaustion,
// accumulating escaping reads into the sync-read set.
func (s *Slicer) SliceFromRegs(regs ...ir.Reg) {
	var work []*ir.Instr
	for _, r := range regs {
		if r == ir.NoReg {
			continue
		}
		work = append(work, s.ix.defs[r]...)
	}
	s.run(work)
}

// run is Listing 2: a worklist of instructions; loads contribute their
// may-alias writers, everything else contributes its operands' definitions.
func (s *Slicer) run(work []*ir.Instr) {
	for len(work) > 0 {
		in := work[len(work)-1]
		work = work[:len(work)-1]
		if s.seen[in] {
			continue
		}
		s.seen[in] = true

		if in.ReadsMem() {
			if s.esc.AccessEscapes(in) {
				s.syncReads[in] = true
			}
			work = append(work, s.ix.writers[in]...)
			// RMW result values derive from their operands as well; plain
			// loads stop here (their address dependence is the address
			// signature's concern, handled by the caller's root set).
			if in.Kind == ir.CAS || in.Kind == ir.FetchAdd {
				for _, u := range in.Uses() {
					work = append(work, s.ix.defs[u]...)
				}
			}
			continue
		}
		for _, u := range in.Uses() {
			work = append(work, s.ix.defs[u]...)
		}
	}
}

// SyncReads returns the accumulated synchronization-read candidates in
// program order.
func (s *Slicer) SyncReads() []*ir.Instr {
	var out []*ir.Instr
	s.ix.fn.Instrs(func(in *ir.Instr) {
		if s.syncReads[in] {
			out = append(out, in)
		}
	})
	return out
}

// Seen reports whether the instruction has entered any slice so far.
func (s *Slicer) Seen(in *ir.Instr) bool { return s.seen[in] }
