package passes

import (
	"strings"
	"sync"
	"testing"

	"fenceplace/internal/acquire"
	"fenceplace/internal/alias"
	"fenceplace/internal/escape"
	"fenceplace/internal/fence"
	"fenceplace/internal/ir"
	"fenceplace/internal/mc"
	"fenceplace/internal/orders"
	"fenceplace/internal/progs"
)

// TestMemoization: every pass artifact is computed once and the same
// pointer is served on every later call.
func TestMemoization(t *testing.T) {
	s := NewSession(progs.ByName("msqueue").Default())
	if s.Alias() != s.Alias() {
		t.Error("alias recomputed")
	}
	if s.Escape() != s.Escape() {
		t.Error("escape recomputed")
	}
	if s.Generated() != s.Generated() {
		t.Error("ordering generation recomputed")
	}
	for _, v := range []acquire.Variant{acquire.Control, acquire.AddressControl} {
		if s.Detect(v) != s.Detect(v) {
			t.Errorf("acquire detection %s recomputed", v)
		}
	}
	for _, st := range Strategies {
		if s.Kept(st) != s.Kept(st) {
			t.Errorf("%s: pruned set recomputed", st)
		}
		if s.Plan(st) != s.Plan(st) {
			t.Errorf("%s: plan recomputed", st)
		}
		if s.Instrumented(st) != s.Instrumented(st) {
			t.Errorf("%s: instrumented clone recomputed", st)
		}
	}
	if s.Kept(PensieveOnly) != s.Generated() {
		t.Error("Pensieve must keep the generated set itself")
	}
	f := s.Program().Funcs[0]
	if s.CFG(f) != s.CFG(f) || s.Index(f) != s.Index(f) {
		t.Error("per-function prep recomputed")
	}
}

// TestSessionMatchesDirectPipeline: the session's artifacts agree with the
// pre-session sequential pipeline on representative corpus programs.
func TestSessionMatchesDirectPipeline(t *testing.T) {
	for _, name := range []string{"peterson", "msqueue", "radix"} {
		p := progs.ByName(name).Default()
		s := NewSession(p)

		al := alias.Analyze(p)
		esc := escape.Analyze(p, al)
		full := orders.Generate(p, esc)

		if got, want := s.Escape().CountReads(), esc.CountReads(); got != want {
			t.Errorf("%s: escaping reads %d, want %d", name, got, want)
		}
		gen := s.Generated()
		if gen.Total() != full.Total() {
			t.Errorf("%s: %d orderings generated, want %d", name, gen.Total(), full.Total())
		}
		for _, ty := range orders.Types {
			if gen.Count(ty) != full.Count(ty) {
				t.Errorf("%s: %s count %d, want %d", name, ty, gen.Count(ty), full.Count(ty))
			}
		}
		for _, v := range []acquire.Variant{acquire.Control, acquire.AddressControl} {
			want := acquire.Detect(p, al, esc, v).Count()
			if got := s.Detect(v).Count(); got != want {
				t.Errorf("%s/%s: %d acquires, want %d", name, v, got, want)
			}
		}
		for _, st := range Strategies {
			kept := s.Kept(st)
			var wantKept *orders.Set
			switch st {
			case PensieveOnly:
				wantKept = full
			case Control:
				wantKept = full.Prune(acquire.Detect(p, al, esc, acquire.Control))
			case AddressControl:
				wantKept = full.Prune(acquire.Detect(p, al, esc, acquire.AddressControl))
			}
			if kept.Total() != wantKept.Total() {
				t.Errorf("%s/%s: kept %d orderings, want %d", name, st, kept.Total(), wantKept.Total())
			}
			var wantPlan *fence.Plan
			if st == PensieveOnly {
				wantPlan = fence.Minimize(wantKept, fence.Options{
					EntryFence: func(fn *ir.Fn) bool { return len(esc.EscapingReads(fn)) > 0 },
				})
			} else {
				v := acquire.Control
				if st == AddressControl {
					v = acquire.AddressControl
				}
				wantPlan = fence.Minimize(wantKept, fence.Options{
					EntryFence: acquire.Detect(p, al, esc, v).FnHasSync,
				})
			}
			plan := s.Plan(st)
			if plan.FullFences() != wantPlan.FullFences() ||
				plan.CompilerBarriers() != wantPlan.CompilerBarriers() {
				t.Errorf("%s/%s: plan %d+%d fences, want %d+%d", name, st,
					plan.FullFences(), plan.CompilerBarriers(),
					wantPlan.FullFences(), wantPlan.CompilerBarriers())
			}
		}
	}
}

// TestConcurrentSessionUse hammers one session from many goroutines; run
// under -race this is the session's thread-safety obligation.
func TestConcurrentSessionUse(t *testing.T) {
	for _, workers := range []int{1, 4} {
		s := NewSession(progs.ByName("msqueue").Default(), Workers(workers))
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				st := Strategies[g%len(Strategies)]
				plan := s.Plan(st)
				kept := s.Kept(st)
				if plan.FullFences() == 0 {
					t.Errorf("%s: no fences", st)
				}
				if kept.Total() > s.Generated().Total() {
					t.Errorf("%s: kept more than generated", st)
				}
				_ = s.Signatures()
			}(g)
		}
		wg.Wait()
	}
}

// TestWorkerCountsAgree: the fan-out width must not change any artifact.
func TestWorkerCountsAgree(t *testing.T) {
	m := progs.ByName("chaselev")
	base := NewSession(m.Default())
	for _, w := range []int{1, 2, 8} {
		s := NewSession(m.Default(), Workers(w))
		for _, st := range Strategies {
			if got, want := s.Kept(st).Total(), base.Kept(st).Total(); got != want {
				t.Errorf("workers=%d %s: kept %d, want %d", w, st, got, want)
			}
			if got, want := s.Plan(st).FullFences(), base.Plan(st).FullFences(); got != want {
				t.Errorf("workers=%d %s: %d fences, want %d", w, st, got, want)
			}
		}
	}
}

// TestTimings: each executed pass appears exactly once.
func TestTimings(t *testing.T) {
	s := NewSession(progs.ByName("dekker").Default())
	for _, st := range Strategies {
		s.Plan(st)
	}
	seen := map[string]int{}
	for _, tm := range s.Timings() {
		seen[tm.Pass]++
		if tm.Duration < 0 {
			t.Errorf("pass %s: negative duration", tm.Pass)
		}
	}
	for _, pass := range []string{
		"alias", "escape", "cfg", "slice-index", "orders",
		"acquire/Control", "acquire/Address+Control",
		"prune/Control", "prune/Address+Control",
		"minimize/Pensieve", "minimize/Control", "minimize/Address+Control",
	} {
		if seen[pass] != 1 {
			t.Errorf("pass %s recorded %d times, want 1", pass, seen[pass])
		}
	}
}

// TestPensieveOnlySkipsSlicing: the baseline strategy needs no acquire
// knowledge, so a session that only evaluates Pensieve must never pay for
// slicer indexes or detection.
func TestPensieveOnlySkipsSlicing(t *testing.T) {
	s := NewSession(progs.ByName("msqueue").Default())
	if s.Plan(PensieveOnly).FullFences() == 0 {
		t.Fatal("no fences")
	}
	s.Instrumented(PensieveOnly)
	for _, tm := range s.Timings() {
		if tm.Pass == "slice-index" || strings.HasPrefix(tm.Pass, "acquire/") {
			t.Errorf("Pensieve-only session ran %s", tm.Pass)
		}
	}
}

// TestCertBaselineMemoized: the session serves one certification
// baseline per (entry configuration, normalized exploration config) —
// including under concurrent demand — and distinguishes genuinely
// different configurations.
func TestCertBaselineMemoized(t *testing.T) {
	m := progs.ByName("dekker")
	pp := m.Defaults
	pp.Threads = 2
	pp.Size = 1
	s := NewSession(m.Build(pp))

	const callers = 8
	got := make([]*mc.Baseline, callers)
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			b, err := s.CertBaseline(nil, mc.Config{})
			if err != nil {
				t.Errorf("caller %d: %v", g, err)
				return
			}
			got[g] = b
		}(g)
	}
	wg.Wait()
	for g := 1; g < callers; g++ {
		if got[g] != got[0] {
			t.Fatalf("caller %d received a different baseline", g)
		}
	}
	// Zero config and explicitly-defaulted config normalize to one key.
	b, err := s.CertBaseline(nil, mc.Config{}.Normalize())
	if err != nil {
		t.Fatal(err)
	}
	if b != got[0] {
		t.Error("normalized config missed the memoized baseline")
	}
	// A different budget is a different baseline key.
	b2, err := s.CertBaseline(nil, mc.Config{MaxStates: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if b2 == got[0] {
		t.Error("distinct exploration configs shared a baseline")
	}
	// The exploration is recorded as a pass exactly once per key.
	n := 0
	for _, tm := range s.Timings() {
		if tm.Pass == "mc-baseline" {
			n++
		}
	}
	if n != 2 {
		t.Errorf("mc-baseline recorded %d times, want 2 (one per config key)", n)
	}
}

func TestStrategyNames(t *testing.T) {
	want := map[Strategy]string{
		PensieveOnly: "Pensieve", Control: "Control", AddressControl: "Address+Control",
	}
	for st, s := range want {
		if st.String() != s {
			t.Errorf("strategy %d renders %q, want %q", st, st.String(), s)
		}
	}
	if len(Strategies) != int(numStrategies) {
		t.Error("Strategies list out of sync")
	}
}
