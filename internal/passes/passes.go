// Package passes is the pass manager of the static pipeline. A Session
// owns one finalized ir.Program and memoizes every pass artifact — alias
// analysis, escape analysis, per-function CFGs and slicer indexes,
// Pensieve ordering generation, acquire detection per variant, DRF pruning
// and fence minimization per strategy — so the strategy-independent passes
// (alias, escape, ordering generation, the shared indexes) run exactly
// once no matter how many placement strategies are evaluated. Per-function
// work (CFG construction, slicing, ordering generation) fans out over a
// bounded worker pool.
//
// Every artifact is immutable once computed and every memoization is
// guarded, so a Session may be used from any number of goroutines:
// strategies can be analyzed in parallel, and a corpus driver can analyze
// many programs each with its own Session.
package passes

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"fenceplace/internal/acquire"
	"fenceplace/internal/alias"
	"fenceplace/internal/cfg"
	"fenceplace/internal/escape"
	"fenceplace/internal/fence"
	"fenceplace/internal/ir"
	"fenceplace/internal/mc"
	"fenceplace/internal/orders"
	"fenceplace/internal/par"
	"fenceplace/internal/slicer"
	"fenceplace/internal/store"
	"fenceplace/internal/telemetry"
	"fenceplace/internal/tso"
)

// Strategy selects a fence-placement variant. It mirrors the public
// fenceplace.Strategy (same values, same order); the facade maps between
// the two so this package stays import-cycle-free.
type Strategy int

const (
	// PensieveOnly places fences for every generated ordering.
	PensieveOnly Strategy = iota
	// Control prunes orderings using control acquires (Listing 1).
	Control
	// AddressControl prunes using control and address acquires (Listing 3).
	AddressControl
	numStrategies
)

func (s Strategy) String() string {
	switch s {
	case PensieveOnly:
		return "Pensieve"
	case Control:
		return "Control"
	case AddressControl:
		return "Address+Control"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Strategies lists all placement strategies.
var Strategies = [...]Strategy{PensieveOnly, Control, AddressControl}

// Timing records one pass execution: its own wall time, excluding the
// passes it depends on (dependencies are resolved before the clock starts).
type Timing struct {
	Pass     string
	Duration time.Duration
}

// Option configures a Session.
type Option func(*Session)

// Workers bounds the per-function fan-out; n < 1 means GOMAXPROCS.
func Workers(n int) Option {
	return func(s *Session) { s.workers = n }
}

// memo is a lazily-computed, concurrency-safe pass artifact.
type memo[T any] struct {
	once sync.Once
	v    T
}

func (m *memo[T]) get(f func() T) T {
	m.once.Do(func() { m.v = f() })
	return m.v
}

// Session is a shared analysis context for one program.
type Session struct {
	prog    *ir.Program
	workers int
	pos     map[*ir.Fn]int // function -> position in prog.Funcs

	aliasM memo[*alias.Analysis]
	escM   memo[*escape.Result]
	cfgM   memo[[]*cfg.Graph]
	idxM   memo[[]*slicer.Index]
	genM   memo[*orders.Set]
	detM   [3]memo[*acquire.Result] // indexed by acquire.Variant
	sigM   memo[acquire.Signatures]
	keptM  [numStrategies]memo[*orders.Set]
	planM  [numStrategies]memo[*fence.Plan]
	instM  [numStrategies]memo[applied]

	bmu       sync.Mutex
	baselines map[baselineKey]*baselineEntry

	tmu   sync.Mutex
	spans []telemetry.Span // completed pass executions, in completion order
	track int32            // the session's trace lane (one per Session)
}

// baselineKey identifies one certification baseline: the entry
// configuration plus the normalized exploration config it was explored
// under. Keying by the normalized form lets a zero-valued config and an
// explicitly-defaulted one share the entry.
type baselineKey struct {
	threads string
	cfg     mc.Config
}

// baselineEntry is a once-per-key SC exploration; errors are memoized too
// (a truncated baseline will not complete on retry with the same budget).
type baselineEntry struct {
	once sync.Once
	b    *mc.Baseline
	err  error
}

// NewSession finalizes the program and prepares an empty session; every
// pass runs lazily on first demand.
func NewSession(p *ir.Program, opts ...Option) *Session {
	s := &Session{prog: p, track: telemetry.NextTrack()}
	for _, o := range opts {
		o(s)
	}
	if s.workers < 1 {
		s.workers = runtime.GOMAXPROCS(0)
	}
	p.Finalize()
	s.pos = make(map[*ir.Fn]int, len(p.Funcs))
	for i, f := range p.Funcs {
		s.pos[f] = i
	}
	return s
}

// Program returns the analyzed program.
func (s *Session) Program() *ir.Program { return s.prog }

// record registers a completed pass execution as a span: appended to the
// session's span log (the source of truth behind Timings) and forwarded
// to the process trace sink, so a -trace run shows every pass on the
// session's lane.
func (s *Session) record(pass string, start time.Time) {
	sp := telemetry.Span{
		Name:  pass,
		Cat:   "pass",
		Track: s.track,
		Start: start,
		Dur:   time.Since(start),
	}
	telemetry.Emit(sp)
	s.tmu.Lock()
	s.spans = append(s.spans, sp)
	s.tmu.Unlock()
}

// Spans returns a copy of the pass spans recorded so far, in completion
// order — the full record (start time, duration, trace lane) behind the
// Timings view.
func (s *Session) Spans() []telemetry.Span {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	out := make([]telemetry.Span, len(s.spans))
	copy(out, s.spans)
	return out
}

// Timings returns the wall time of every pass executed so far, in
// completion order. It is a view over the session's span log; the spans
// themselves (Spans) carry the start times and trace attribution.
func (s *Session) Timings() []Timing {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	out := make([]Timing, len(s.spans))
	for i, sp := range s.spans {
		out[i] = Timing{Pass: sp.Name, Duration: sp.Dur}
	}
	return out
}

// TestHookForEachFn, when non-nil, runs before every function's work in
// the per-function fan-out — the chaos suite's seam for injecting a
// pass-layer panic. The pool captures the panic and re-raises it on the
// calling goroutine, where the facade's recover turns it into a
// structured InternalError on that one job's result.
var TestHookForEachFn func(i int, f *ir.Fn)

// forEachFn runs work over every function of the program, fanning out over
// the session's worker pool. work receives the function's position, so
// results can be written into preallocated per-function slots without
// locking; it must not touch other shared mutable state.
func (s *Session) forEachFn(work func(i int, f *ir.Fn)) {
	fns := s.prog.Funcs
	par.ForEach(len(fns), s.workers, func(i int) {
		if TestHookForEachFn != nil {
			TestHookForEachFn(i, fns[i])
		}
		work(i, fns[i])
	})
}

// Alias returns the memoized whole-program points-to analysis.
func (s *Session) Alias() *alias.Analysis {
	return s.aliasM.get(func() *alias.Analysis {
		defer s.record("alias", time.Now())
		return alias.Analyze(s.prog)
	})
}

// Escape returns the memoized thread-escape analysis.
func (s *Session) Escape() *escape.Result {
	return s.escM.get(func() *escape.Result {
		al := s.Alias()
		defer s.record("escape", time.Now())
		return escape.Analyze(s.prog, al)
	})
}

// cfgs builds all control-flow graphs in parallel. It is separate from
// indexes so the PensieveOnly-only path (which never slices) does not pay
// the potential-writers precomputation.
func (s *Session) cfgs() []*cfg.Graph {
	return s.cfgM.get(func() []*cfg.Graph {
		defer s.record("cfg", time.Now())
		out := make([]*cfg.Graph, len(s.prog.Funcs))
		s.forEachFn(func(i int, f *ir.Fn) {
			out[i] = cfg.New(f)
		})
		return out
	})
}

// indexes builds all slicer def/writer indexes in parallel.
func (s *Session) indexes() []*slicer.Index {
	return s.idxM.get(func() []*slicer.Index {
		al := s.Alias()
		defer s.record("slice-index", time.Now())
		out := make([]*slicer.Index, len(s.prog.Funcs))
		s.forEachFn(func(i int, f *ir.Fn) {
			out[i] = slicer.NewIndex(f, al)
		})
		return out
	})
}

// fnPos returns fn's position in the session's program, panicking on a
// function from another program (e.g. an instrumented clone) — returning
// function 0's artifacts for a foreign *ir.Fn would be silently wrong.
func (s *Session) fnPos(f *ir.Fn) int {
	i, ok := s.pos[f]
	if !ok {
		panic(fmt.Sprintf("passes: function %s does not belong to program %s", f.Name, s.prog.Name))
	}
	return i
}

// CFG returns the memoized control-flow graph of fn, which must belong to
// the session's program.
func (s *Session) CFG(f *ir.Fn) *cfg.Graph { return s.cfgs()[s.fnPos(f)] }

// Index returns the memoized slicer def/writer index of fn, which must
// belong to the session's program.
func (s *Session) Index(f *ir.Fn) *slicer.Index { return s.indexes()[s.fnPos(f)] }

// Generated returns the memoized Pensieve ordering set (before pruning),
// generated per function in parallel.
func (s *Session) Generated() *orders.Set {
	return s.genM.get(func() *orders.Set {
		esc := s.Escape()
		cfgs := s.cfgs()
		defer s.record("orders", time.Now())
		lists := make([][]orders.Ordering, len(s.prog.Funcs))
		s.forEachFn(func(i int, f *ir.Fn) {
			lists[i] = orders.GenerateFn(f, cfgs[i], esc)
		})
		set := orders.NewSet(s.prog)
		for i, f := range s.prog.Funcs {
			set.Add(f, lists[i])
		}
		return set
	})
}

// Detect returns the memoized acquire detection for a variant, sliced per
// function in parallel over the shared indexes.
func (s *Session) Detect(v acquire.Variant) *acquire.Result {
	return s.detM[v].get(func() *acquire.Result {
		esc := s.Escape()
		idx := s.indexes()
		defer s.record("acquire/"+v.String(), time.Now())
		lists := make([][]*ir.Instr, len(s.prog.Funcs))
		s.forEachFn(func(i int, f *ir.Fn) {
			lists[i] = acquire.DetectFn(f, idx[i], esc, v)
		})
		return acquire.NewResult(v, lists...)
	})
}

// Signatures returns the memoized Table II signature classification,
// reusing the Control and AddressOnly detections.
func (s *Session) Signatures() acquire.Signatures {
	return s.sigM.get(func() acquire.Signatures {
		return acquire.SignaturesOf(s.Detect(acquire.Control), s.Detect(acquire.AddressOnly))
	})
}

// acquireVariant maps a pruning strategy to its detection variant.
// PensieveOnly has none and must not be passed.
func acquireVariant(st Strategy) acquire.Variant {
	if st == AddressControl {
		return acquire.AddressControl
	}
	return acquire.Control
}

// Acquires returns the detected synchronization reads a strategy prunes
// with, or nil for PensieveOnly (which detects none).
func (s *Session) Acquires(st Strategy) *acquire.Result {
	if st == PensieveOnly {
		return nil
	}
	return s.Detect(acquireVariant(st))
}

// Kept returns the memoized post-pruning ordering set of a strategy. For
// PensieveOnly this is the generated set itself.
func (s *Session) Kept(st Strategy) *orders.Set {
	return s.keptM[st].get(func() *orders.Set {
		full := s.Generated()
		if st == PensieveOnly {
			return full
		}
		acq := s.Detect(acquireVariant(st))
		defer s.record("prune/"+st.String(), time.Now())
		return full.Prune(acq)
	})
}

// EntryFence returns the strategy's function-entry-fence policy: Pensieve
// fences every function with an escaping read (§4.4's baseline), the
// pruned variants only functions containing detected synchronization reads.
func (s *Session) EntryFence(st Strategy) func(*ir.Fn) bool {
	if st == PensieveOnly {
		esc := s.Escape()
		return func(fn *ir.Fn) bool { return len(esc.EscapingReads(fn)) > 0 }
	}
	return s.Detect(acquireVariant(st)).FnHasSync
}

// Plan returns the memoized minimized fence plan of a strategy.
func (s *Session) Plan(st Strategy) *fence.Plan {
	return s.planM[st].get(func() *fence.Plan {
		kept := s.Kept(st)
		entry := s.EntryFence(st)
		defer s.record("minimize/"+st.String(), time.Now())
		return fence.Minimize(kept, fence.Options{EntryFence: entry})
	})
}

// applied is a plan application: the instrumented clone plus the
// analyzed-to-clone instruction correspondence map.
type applied struct {
	prog *ir.Program
	imap map[*ir.Instr]*ir.Instr
}

// Applied returns the memoized application of the strategy's plan: the
// instrumented clone and its instruction correspondence map. The program
// deep-copy is made once per strategy no matter how often the strategy is
// analyzed or verified. Both returns are shared; callers must treat them
// as read-only (execute, format, verify — not mutate).
func (s *Session) Applied(st Strategy) (*ir.Program, map[*ir.Instr]*ir.Instr) {
	a := s.instM[st].get(func() applied {
		plan := s.Plan(st)
		defer s.record("apply/"+st.String(), time.Now())
		inst, imap := plan.Apply()
		return applied{prog: inst, imap: imap}
	})
	return a.prog, a.imap
}

// Instrumented returns the memoized instrumented clone (see Applied).
func (s *Session) Instrumented(st Strategy) *ir.Program {
	inst, _ := s.Applied(st)
	return inst
}

// CertBaseline returns the memoized certification baseline of the
// session's program: its reachable final-state set under sequential
// consistency, explored once per (entry configuration, normalized
// exploration config) no matter how many placement strategies are
// certified against it. Concurrent callers with the same key block on one
// exploration; errors (including truncation) are memoized, since retrying
// with an identical budget cannot succeed.
func (s *Session) CertBaseline(threadFns []string, cfg mc.Config) (*mc.Baseline, error) {
	return s.CertBaselineAt(threadFns, cfg, "")
}

// CertBaselineAt is CertBaseline backed by the persistent baseline store
// at cacheDir (empty: in-memory memoization only). On an in-session miss
// the store is consulted before exploring — a warm entry skips the SC
// exploration entirely — and a freshly explored baseline is written back
// for future processes. The in-memory key is unchanged, so mixed callers
// share one entry per configuration; the first caller's cache directory
// decides whether the disk is involved.
func (s *Session) CertBaselineAt(threadFns []string, cfg mc.Config, cacheDir string) (*mc.Baseline, error) {
	return s.CertBaselineAtCtx(context.Background(), threadFns, cfg, cacheDir)
}

// CertBaselineAtCtx is CertBaselineAt bounded by a context. Genuine
// exploration failures (truncation, bad programs) are memoized like
// always — retrying cannot help — but a cancellation is the caller's
// doing, not the key's: the cancelled entry is dropped from the session
// so a later call with a live context explores afresh. Concurrent callers
// that were blocked on the cancelled exploration observe the same ctx
// error for that attempt.
func (s *Session) CertBaselineAtCtx(ctx context.Context, threadFns []string, cfg mc.Config, cacheDir string) (*mc.Baseline, error) {
	ncfg := cfg.Normalize()
	ncfg.Mode = tso.SC // the baseline side is always the SC exploration
	key := baselineKey{threads: strings.Join(threadFns, ","), cfg: ncfg}

	s.bmu.Lock()
	if s.baselines == nil {
		s.baselines = make(map[baselineKey]*baselineEntry)
	}
	en := s.baselines[key]
	if en == nil {
		en = &baselineEntry{}
		s.baselines[key] = en
	}
	s.bmu.Unlock()

	en.once.Do(func() {
		start := time.Now()
		b, warm, err := LoadOrExploreBaselineCtx(ctx, s.prog, threadFns, ncfg, cacheDir)
		pass := "mc-baseline"
		if warm {
			pass = "mc-baseline/warm"
		}
		s.record(pass, start)
		en.b, en.err = b, err
	})
	if en.err != nil && (errors.Is(en.err, context.Canceled) || errors.Is(en.err, context.DeadlineExceeded)) {
		s.bmu.Lock()
		if s.baselines[key] == en {
			delete(s.baselines, key)
		}
		s.bmu.Unlock()
	}
	return en.b, en.err
}

// LoadOrExploreBaseline produces the SC certification baseline of (p,
// threadFns, cfg), consulting the persistent store at cacheDir first. A
// verified store entry is decoded and returned without exploring (warm =
// true); a miss — including corrupt or truncated entries, which the store
// quarantines — falls back to a fresh SC exploration whose result is
// written back. An unusable cache directory degrades to the uncached path:
// persistence is an optimization and must never fail a certification that
// exploration could complete.
func LoadOrExploreBaseline(p *ir.Program, threadFns []string, cfg mc.Config, cacheDir string) (b *mc.Baseline, warm bool, err error) {
	return LoadOrExploreBaselineCtx(context.Background(), p, threadFns, cfg, cacheDir)
}

// LoadOrExploreBaselineCtx is LoadOrExploreBaseline bounded by a context:
// store reads, the SC exploration and the write-back all observe ctx, so a
// cancelled certification returns ctx's error promptly and never leaves a
// fresh store entry behind (writes are skipped outright once ctx is done;
// the store's atomic rename already rules out partial entries).
func LoadOrExploreBaselineCtx(ctx context.Context, p *ir.Program, threadFns []string, cfg mc.Config, cacheDir string) (b *mc.Baseline, warm bool, err error) {
	ncfg := cfg.Normalize()
	ncfg.Mode = tso.SC

	var st *store.Store
	var key string
	if cacheDir != "" {
		var serr error
		st, serr = store.OpenConfig(cacheDir, store.Config{FS: ncfg.FS, Retries: ncfg.IORetries})
		if serr != nil {
			// The cache directory is unusable (unwritable, unreachable):
			// the first rung of the degradation ladder — certify uncached.
			store.NoteUncached()
			st = nil
		}
		if st != nil {
			key = mc.BaselineKey(p, threadFns, ncfg).String()
			if data, ok := st.GetCtx(ctx, key); ok {
				if b, err := mc.UnmarshalBaseline(p, threadFns, ncfg, data); err == nil {
					return b, true, nil
				}
				// The framing verified but the record did not decode (e.g.
				// an incompatible codec version): reclassify as a miss and
				// quarantine.
				st.Reject(key)
			}
		}
	}

	b, err = mc.NewBaselineCtx(ctx, p, threadFns, ncfg)
	if err != nil {
		return nil, false, err
	}
	if st != nil {
		if data, merr := b.MarshalBinary(); merr == nil {
			// Best-effort write-back; a failure on a live ctx means the
			// cache could not absorb this baseline — the next run pays a
			// cold exploration, so meter the uncached rung.
			if perr := st.PutCtx(ctx, key, data); perr != nil && ctx.Err() == nil {
				store.NoteUncached()
			}
		}
	}
	return b, false, nil
}
