// Package tso executes ir programs under Sequential Consistency or under
// x86-TSO (per-thread FIFO store buffers with store-to-load forwarding).
// It stands in for the paper's hardware testbed: fences placed by the
// analyses have exactly their x86 semantics here — a full fence drains the
// executing thread's store buffer (and costs time), a compiler barrier is
// free at run time, and atomic read-modify-writes behave like LOCK-prefixed
// instructions (drain, then act on memory atomically).
//
// The simulator is faithful to TSO's relaxation surface: stores retire in
// order, loads execute in program order and forward from the local buffer,
// so the only visible reordering is store→load — which is why, as in the
// paper (§4.4), only w→r orderings ever need a full fence.
//
// Two schedulers are provided. MinTime (the default) always steps the
// runnable thread with the smallest accumulated cycle count, which makes
// the simulation a deterministic parallel-time model: the outcome's
// MaxCycles is the simulated wall-clock of the run and is what the
// Figure 10 experiment reports. Random is an adversarial scheduler for
// correctness testing.
package tso

import (
	"fmt"
	"math/rand"

	"fenceplace/internal/ir"
)

// Mode selects the memory model.
type Mode int

const (
	// TSO runs with per-thread FIFO store buffers (x86-like).
	TSO Mode = iota
	// SC retires every store to memory immediately.
	SC
)

func (m Mode) String() string {
	if m == SC {
		return "SC"
	}
	return "TSO"
}

// Sched selects the thread scheduler.
type Sched int

const (
	// MinTime steps the runnable thread with the fewest accumulated
	// cycles: a deterministic parallel-time simulation.
	MinTime Sched = iota
	// Random picks uniformly among runnable threads.
	Random
)

// Policy controls when buffered stores voluntarily drain to memory.
type Policy int

const (
	// DrainRandom drains one entry with DrainPercent probability after
	// each step of the owning thread.
	DrainRandom Policy = iota
	// DrainLazy never drains voluntarily: stores sit in the buffer until a
	// fence, an RMW, buffer pressure, or thread exit forces them out. This
	// is the adversarial policy that maximizes store→load reordering.
	DrainLazy
	// DrainEager drains the whole buffer after every step, making TSO
	// behave like SC (useful as a differential-testing oracle).
	DrainEager
)

// CostModel assigns simulated cycle costs to operations. The absolute
// numbers are loosely calibrated to a small x86 core; only their ratios
// matter for the normalized Figure 10 comparison.
type CostModel struct {
	ALU          int64 // arithmetic, moves, constants
	Branch       int64
	LoadMem      int64 // load served from memory
	LoadFwd      int64 // load forwarded from the store buffer
	Store        int64 // store issued (into the buffer or memory)
	FullFence    int64 // base cost of a full fence
	FencePerSlot int64 // extra cost per buffered entry drained by a fence
	RMW          int64 // CAS / FetchAdd (locked instruction)
	Call         int64 // call / return / spawn / join overhead
}

// DefaultCosts returns the cost model used by the experiments.
func DefaultCosts() CostModel {
	return CostModel{
		ALU: 1, Branch: 1,
		LoadMem: 3, LoadFwd: 1, Store: 1,
		FullFence: 40, FencePerSlot: 3,
		RMW: 30, Call: 5,
	}
}

// Tracer observes a run's memory accesses and thread lifecycle events. The
// happens-before race checker (package hb) is its main client. A
// read-modify-write reports two Access events: the read, then the write.
type Tracer interface {
	// Access reports a shared-memory access by thread tid executing in.
	Access(tid int, in *ir.Instr, addr int64, write bool)
	// Spawn reports that parent created child.
	Spawn(parent, child int)
	// Join reports that parent observed child's completion.
	Join(parent, child int)
}

// Config parameterizes a run.
type Config struct {
	Mode         Mode
	Sched        Sched
	Policy       Policy
	DrainPercent int   // DrainRandom probability in percent (default 30)
	BufferCap    int   // store buffer capacity (default 16)
	Seed         int64 // RNG seed for Random scheduling / DrainRandom
	MaxSteps     int64 // livelock guard (default 20M)
	MemoryCap    int   // arena limit in words (default 1<<22)
	Costs        CostModel
	Tracer       Tracer // optional run observer
}

func (c Config) withDefaults() Config {
	if c.DrainPercent == 0 {
		c.DrainPercent = 30
	}
	if c.BufferCap == 0 {
		c.BufferCap = 16
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 20_000_000
	}
	if c.MemoryCap == 0 {
		c.MemoryCap = 1 << 22
	}
	if c.Costs == (CostModel{}) {
		c.Costs = DefaultCosts()
	}
	return c
}

// Outcome reports the result of one run.
type Outcome struct {
	Program    string
	Failures   []string // assertion failures, in detection order
	Deadlock   bool     // no runnable thread, or MaxSteps exceeded
	Err        error    // runtime error (bounds, arena exhaustion, ...)
	Steps      int64
	MaxCycles  int64 // simulated parallel time: max per-thread cycles
	SumCycles  int64 // total work across threads
	FullFences int64 // dynamically executed full fences
	RMWs       int64
	Printed    []int64

	globals map[string][]int64
}

// Global returns the final value of a scalar global.
func (o *Outcome) Global(name string) int64 {
	if vs, ok := o.globals[name]; ok && len(vs) > 0 {
		return vs[0]
	}
	return 0
}

// GlobalIdx returns the final value of g[idx].
func (o *Outcome) GlobalIdx(name string, idx int) int64 {
	if vs, ok := o.globals[name]; ok && idx >= 0 && idx < len(vs) {
		return vs[idx]
	}
	return 0
}

// Failed reports whether the run hit an assertion failure, deadlock or
// runtime error.
func (o *Outcome) Failed() bool {
	return len(o.Failures) > 0 || o.Deadlock || o.Err != nil
}

type bufEntry struct {
	addr int64
	val  int64
}

type frame struct {
	fn     *ir.Fn
	blk    *ir.Block
	idx    int
	regs   []int64
	retDst ir.Reg // caller register receiving the return value
}

type thread struct {
	id      int
	frames  []frame
	buf     []bufEntry
	cycles  int64
	done    bool
	joining int // thread id being joined, or -1
}

type machine struct {
	prog    *ir.Program
	cfg     Config
	mem     []int64
	next    int64 // arena bump pointer
	base    map[*ir.Global]int64
	threads []*thread
	rng     *rand.Rand
	out     *Outcome
}

// Run executes the program's main function to completion (or failure).
func Run(p *ir.Program, cfg Config) *Outcome {
	cfg = cfg.withDefaults()
	m := &machine{
		prog: p,
		cfg:  cfg,
		base: make(map[*ir.Global]int64),
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		out:  &Outcome{Program: p.Name},
	}
	m.layout()
	mainFn := p.Fn(p.Main)
	if mainFn == nil {
		m.out.Err = fmt.Errorf("tso: program %q has no main function %q", p.Name, p.Main)
		return m.out
	}
	m.startThread(mainFn, nil)
	m.loop()
	for _, t := range m.threads {
		m.out.SumCycles += t.cycles
	}
	m.snapshot()
	return m.out
}

// layout assigns each global a base address; address 0 stays unused so a
// zero value is never a valid pointer.
func (m *machine) layout() {
	m.mem = make([]int64, 1)
	for _, g := range m.prog.Globals {
		m.base[g] = int64(len(m.mem))
		cells := make([]int64, g.Size)
		copy(cells, g.Init)
		m.mem = append(m.mem, cells...)
	}
	m.next = int64(len(m.mem))
}

func (m *machine) snapshot() {
	m.out.globals = make(map[string][]int64, len(m.prog.Globals))
	for _, g := range m.prog.Globals {
		b := m.base[g]
		m.out.globals[g.Name] = append([]int64(nil), m.mem[b:b+int64(g.Size)]...)
	}
}

func (m *machine) startThread(fn *ir.Fn, args []int64) int {
	t := &thread{id: len(m.threads), joining: -1}
	t.frames = []frame{newFrame(fn, args, ir.NoReg)}
	m.threads = append(m.threads, t)
	return t.id
}

func newFrame(fn *ir.Fn, args []int64, retDst ir.Reg) frame {
	regs := make([]int64, fn.NRegs)
	copy(regs, args)
	return frame{fn: fn, blk: fn.Entry(), idx: 0, regs: regs, retDst: retDst}
}

func (m *machine) runnable(t *thread) bool {
	if t.done {
		return false
	}
	if t.joining >= 0 {
		if !m.threads[t.joining].done {
			return false
		}
		if m.cfg.Tracer != nil {
			m.cfg.Tracer.Join(t.id, t.joining)
		}
		t.joining = -1
	}
	return true
}

func (m *machine) loop() {
	for {
		if m.out.Err != nil {
			return
		}
		if m.out.Steps >= m.cfg.MaxSteps {
			m.out.Deadlock = true
			m.out.Failures = append(m.out.Failures, "livelock: step limit exceeded")
			return
		}
		var ready []*thread
		alive := false
		for _, t := range m.threads {
			if !t.done {
				alive = true
			}
			if m.runnable(t) {
				ready = append(ready, t)
			}
		}
		if !alive {
			return // all threads finished
		}
		if len(ready) == 0 {
			m.out.Deadlock = true
			m.out.Failures = append(m.out.Failures, "deadlock: threads blocked in join")
			return
		}
		t := m.pick(ready)
		m.step(t)
		m.out.Steps++
		m.voluntaryDrain(t)
	}
}

func (m *machine) pick(ready []*thread) *thread {
	if m.cfg.Sched == Random {
		return ready[m.rng.Intn(len(ready))]
	}
	best := ready[0]
	for _, t := range ready[1:] {
		if t.cycles < best.cycles || (t.cycles == best.cycles && t.id < best.id) {
			best = t
		}
	}
	return best
}

func (m *machine) voluntaryDrain(t *thread) {
	if m.cfg.Mode != TSO || len(t.buf) == 0 {
		return
	}
	switch m.cfg.Policy {
	case DrainEager:
		m.drainAll(t)
	case DrainRandom:
		if m.rng.Intn(100) < m.cfg.DrainPercent {
			m.drainOne(t)
		}
	case DrainLazy:
		// only forced drains
	}
}

// trace reports a memory access to the configured tracer, if any.
func (m *machine) trace(t *thread, in *ir.Instr, addr int64, write bool) {
	if m.cfg.Tracer != nil {
		m.cfg.Tracer.Access(t.id, in, addr, write)
	}
}

func (m *machine) drainOne(t *thread) {
	e := t.buf[0]
	t.buf = t.buf[1:]
	m.mem[e.addr] = e.val
}

func (m *machine) drainAll(t *thread) {
	for len(t.buf) > 0 {
		m.drainOne(t)
	}
}

func (m *machine) fail(t *thread, format string, args ...any) {
	m.out.Err = fmt.Errorf("tso: thread %d in %s: %s", t.id, t.frames[len(t.frames)-1].fn.Name, fmt.Sprintf(format, args...))
}

// addrOf computes and bounds-checks the address of a direct global access.
func (m *machine) addrOf(t *thread, f *frame, g *ir.Global, idx ir.Reg) (int64, bool) {
	off := int64(0)
	if idx != ir.NoReg {
		off = f.regs[idx]
	}
	if off < 0 || off >= int64(g.Size) {
		m.fail(t, "index %d out of bounds for global %s[%d]", off, g.Name, g.Size)
		return 0, false
	}
	return m.base[g] + off, true
}

func (m *machine) checkAddr(t *thread, addr int64) bool {
	if addr <= 0 || addr >= int64(len(m.mem)) {
		m.fail(t, "wild address %d (memory has %d words)", addr, len(m.mem))
		return false
	}
	return true
}

// loadWord reads a word with TSO store-to-load forwarding.
func (m *machine) loadWord(t *thread, addr int64) (val int64, forwarded bool) {
	if m.cfg.Mode == TSO {
		for i := len(t.buf) - 1; i >= 0; i-- {
			if t.buf[i].addr == addr {
				return t.buf[i].val, true
			}
		}
	}
	return m.mem[addr], false
}

// storeWord issues a store: buffered under TSO, direct under SC.
func (m *machine) storeWord(t *thread, addr, val int64) {
	if m.cfg.Mode == TSO {
		if len(t.buf) >= m.cfg.BufferCap {
			m.drainOne(t) // buffer pressure forces the oldest entry out
		}
		t.buf = append(t.buf, bufEntry{addr, val})
		return
	}
	m.mem[addr] = val
}

// alloc reserves n fresh words in the arena.
func (m *machine) alloc(t *thread, n int64) (int64, bool) {
	if int(m.next)+int(n) > m.cfg.MemoryCap {
		m.fail(t, "arena exhausted (%d words requested at %d)", n, m.next)
		return 0, false
	}
	addr := m.next
	for i := int64(0); i < n; i++ {
		m.mem = append(m.mem, 0)
	}
	m.next += n
	return addr, true
}

// step executes one instruction of t.
func (m *machine) step(t *thread) {
	f := &t.frames[len(t.frames)-1]
	in := f.blk.Instrs[f.idx]
	c := &m.cfg.Costs
	advance := true

	switch in.Kind {
	case ir.Const:
		f.regs[in.Dst] = in.Imm
		t.cycles += c.ALU
	case ir.Move:
		f.regs[in.Dst] = f.regs[in.A]
		t.cycles += c.ALU
	case ir.BinOp:
		f.regs[in.Dst] = evalBinOp(in.Op, f.regs[in.A], f.regs[in.B])
		t.cycles += c.ALU
	case ir.Load:
		addr, ok := m.addrOf(t, f, in.G, in.Idx)
		if !ok {
			return
		}
		v, fwd := m.loadWord(t, addr)
		f.regs[in.Dst] = v
		if fwd {
			t.cycles += c.LoadFwd
		} else {
			t.cycles += c.LoadMem
		}
		m.trace(t, in, addr, false)
	case ir.Store:
		addr, ok := m.addrOf(t, f, in.G, in.Idx)
		if !ok {
			return
		}
		m.storeWord(t, addr, f.regs[in.A])
		t.cycles += c.Store
		m.trace(t, in, addr, true)
	case ir.LoadPtr:
		addr := f.regs[in.Addr]
		if !m.checkAddr(t, addr) {
			return
		}
		v, fwd := m.loadWord(t, addr)
		f.regs[in.Dst] = v
		if fwd {
			t.cycles += c.LoadFwd
		} else {
			t.cycles += c.LoadMem
		}
		m.trace(t, in, addr, false)
	case ir.StorePtr:
		addr := f.regs[in.Addr]
		if !m.checkAddr(t, addr) {
			return
		}
		m.storeWord(t, addr, f.regs[in.A])
		t.cycles += c.Store
		m.trace(t, in, addr, true)
	case ir.AddrOf:
		addr, ok := m.addrOf(t, f, in.G, in.Idx)
		if !ok {
			return
		}
		f.regs[in.Dst] = addr
		t.cycles += c.ALU
	case ir.Gep:
		f.regs[in.Dst] = f.regs[in.A] + f.regs[in.B]
		t.cycles += c.ALU
	case ir.Alloca, ir.Malloc:
		addr, ok := m.alloc(t, in.Imm)
		if !ok {
			return
		}
		f.regs[in.Dst] = addr
		t.cycles += c.ALU
	case ir.CAS:
		addr := f.regs[in.Addr]
		if !m.checkAddr(t, addr) {
			return
		}
		m.drainAll(t) // LOCK prefix: full barrier
		m.trace(t, in, addr, false)
		if m.mem[addr] == f.regs[in.A] {
			m.mem[addr] = f.regs[in.B]
			f.regs[in.Dst] = 1
			m.trace(t, in, addr, true)
		} else {
			f.regs[in.Dst] = 0
		}
		t.cycles += c.RMW
		m.out.RMWs++
	case ir.FetchAdd:
		addr := f.regs[in.Addr]
		if !m.checkAddr(t, addr) {
			return
		}
		m.drainAll(t)
		m.trace(t, in, addr, false)
		f.regs[in.Dst] = m.mem[addr]
		m.mem[addr] += f.regs[in.A]
		m.trace(t, in, addr, true)
		t.cycles += c.RMW
		m.out.RMWs++
	case ir.Fence:
		if ir.FenceKind(in.Imm) == ir.FenceFull {
			t.cycles += c.FullFence + int64(len(t.buf))*c.FencePerSlot
			m.drainAll(t)
			m.out.FullFences++
		}
		// compiler barriers cost nothing at run time
	case ir.Br:
		t.cycles += c.Branch
		if f.regs[in.A] != 0 {
			f.blk, f.idx = in.Then, 0
		} else {
			f.blk, f.idx = in.Else, 0
		}
		advance = false
	case ir.Jmp:
		t.cycles += c.Branch
		f.blk, f.idx = in.Then, 0
		advance = false
	case ir.Ret:
		t.cycles += c.Call
		var val int64
		if in.A != ir.NoReg {
			val = f.regs[in.A]
		}
		retDst := f.retDst
		t.frames = t.frames[:len(t.frames)-1]
		if len(t.frames) == 0 {
			t.done = true
			m.drainAll(t) // a finished thread's stores become visible
		} else if retDst != ir.NoReg {
			t.frames[len(t.frames)-1].regs[retDst] = val
		}
		advance = false
	case ir.Call:
		t.cycles += c.Call
		callee := m.prog.Fn(in.Callee)
		args := make([]int64, len(in.Args))
		for i, a := range in.Args {
			args[i] = f.regs[a]
		}
		f.idx++ // return to the next instruction
		t.frames = append(t.frames, newFrame(callee, args, in.Dst))
		advance = false
	case ir.Spawn:
		t.cycles += c.Call
		// Thread creation synchronizes (pthread_create takes kernel locks):
		// the parent's buffered stores are visible to the child.
		m.drainAll(t)
		callee := m.prog.Fn(in.Callee)
		args := make([]int64, len(in.Args))
		for i, a := range in.Args {
			args[i] = f.regs[a]
		}
		tid := m.startThread(callee, args)
		if in.Dst != ir.NoReg {
			f.regs[in.Dst] = int64(tid)
		}
		if m.cfg.Tracer != nil {
			m.cfg.Tracer.Spawn(t.id, tid)
		}
	case ir.Join:
		t.cycles += c.Call
		target := f.regs[in.A]
		if target < 0 || target >= int64(len(m.threads)) {
			m.fail(t, "join of invalid thread id %d", target)
			return
		}
		if !m.threads[target].done {
			t.joining = int(target)
			advance = false // retry after the target finishes
		} else if m.cfg.Tracer != nil {
			m.cfg.Tracer.Join(t.id, int(target))
		}
	case ir.Assert:
		if f.regs[in.A] == 0 {
			m.out.Failures = append(m.out.Failures,
				fmt.Sprintf("assert failed in %s (thread %d): %s", f.fn.Name, t.id, in.Msg))
		}
	case ir.Print:
		m.out.Printed = append(m.out.Printed, f.regs[in.A])
	default:
		m.fail(t, "cannot execute %s", in.Kind)
		return
	}

	if advance {
		f = &t.frames[len(t.frames)-1]
		f.idx++
	}
	if t.cycles > m.out.MaxCycles {
		m.out.MaxCycles = t.cycles
	}
}

// evalBinOp delegates to the IR's single arithmetic definition so the
// simulator and the model checker can never diverge on pure operations.
func evalBinOp(op ir.Op, a, b int64) int64 { return ir.EvalBinOp(op, a, b) }
