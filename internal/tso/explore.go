package tso

import (
	"fmt"
	"sort"
	"strings"

	"fenceplace/internal/ir"
)

// ExploreConfig bounds an exhaustive exploration.
type ExploreConfig struct {
	Mode      Mode
	BufferCap int // default 4
	MaxStates int // default 1<<20; exceeded => Truncated
}

// StateSet is the set of reachable final states of an exploration. Each
// outcome is the final value vector of the program's globals, keyed by a
// printable form.
type StateSet struct {
	Outcomes  map[string][]int64
	Visited   int
	Truncated bool
}

// Has reports whether the final state assigning the given scalar-global
// values was reached. Globals not mentioned may hold anything.
func (s *StateSet) Has(want map[string]int64, prog *ir.Program) bool {
	idx := make(map[string]int, len(prog.Globals))
	off := 0
	for _, g := range prog.Globals {
		idx[g.Name] = off
		off += g.Size
	}
	for _, vec := range s.Outcomes {
		match := true
		for name, v := range want {
			if vec[idx[name]] != v {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// Keys returns the printable outcome keys, sorted.
func (s *StateSet) Keys() []string {
	keys := make([]string, 0, len(s.Outcomes))
	for k := range s.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// exState is one exploration state: flat global memory plus per-thread
// control state and store buffer. Litmus threads are single-function and
// call-free, so a thread needs no frame stack.
type exState struct {
	mem     []int64
	threads []exThread
}

type exThread struct {
	blk  *ir.Block
	idx  int
	regs []int64
	buf  []bufEntry
	done bool
}

func (s *exState) clone() *exState {
	n := &exState{mem: append([]int64(nil), s.mem...)}
	n.threads = make([]exThread, len(s.threads))
	for i, t := range s.threads {
		n.threads[i] = exThread{
			blk: t.blk, idx: t.idx, done: t.done,
			regs: append([]int64(nil), t.regs...),
			buf:  append([]bufEntry(nil), t.buf...),
		}
	}
	return n
}

func (s *exState) key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%v", s.mem)
	for _, t := range s.threads {
		fmt.Fprintf(&sb, "|%p.%d.%v.%v.%t", t.blk, t.idx, t.regs, t.buf, t.done)
	}
	return sb.String()
}

func (s *exState) terminal() bool {
	for _, t := range s.threads {
		if !t.done || len(t.buf) > 0 {
			return false
		}
	}
	return true
}

// Explore enumerates every reachable interleaving (and, under TSO, every
// drain schedule) of the named thread functions running concurrently from
// the program's initial global state. The thread functions must be flat:
// no Call, Spawn, Join, Alloca or Malloc (litmus tests are). It returns the
// set of reachable final global states.
func Explore(p *ir.Program, threadFns []string, cfg ExploreConfig) (*StateSet, error) {
	if cfg.BufferCap == 0 {
		cfg.BufferCap = 4
	}
	if cfg.MaxStates == 0 {
		cfg.MaxStates = 1 << 20
	}
	// Layout globals exactly like machine.layout (minus the null word —
	// exploration uses direct indices; AddrOf still needs real addresses,
	// so keep the same scheme with a leading null word).
	base := make(map[*ir.Global]int64)
	mem := []int64{0}
	for _, g := range p.Globals {
		base[g] = int64(len(mem))
		cells := make([]int64, g.Size)
		copy(cells, g.Init)
		mem = append(mem, cells...)
	}
	init := &exState{mem: mem}
	for _, name := range threadFns {
		fn := p.Fn(name)
		if fn == nil {
			return nil, fmt.Errorf("tso: explore: no function %q", name)
		}
		if err := checkFlat(fn); err != nil {
			return nil, err
		}
		init.threads = append(init.threads, exThread{blk: fn.Entry(), regs: make([]int64, fn.NRegs)})
	}

	res := &StateSet{Outcomes: make(map[string][]int64)}
	seen := map[string]bool{}
	stack := []*exState{init}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		k := s.key()
		if seen[k] {
			continue
		}
		seen[k] = true
		res.Visited++
		if res.Visited > cfg.MaxStates {
			res.Truncated = true
			return res, nil
		}
		if s.terminal() {
			// Record final globals (skip the null word).
			res.Outcomes[fmt.Sprintf("%v", s.mem[1:])] = append([]int64(nil), s.mem[1:]...)
			continue
		}
		for ti := range s.threads {
			t := &s.threads[ti]
			// Choice A: drain the oldest buffered store.
			if cfg.Mode == TSO && len(t.buf) > 0 {
				n := s.clone()
				e := n.threads[ti].buf[0]
				n.threads[ti].buf = n.threads[ti].buf[1:]
				n.mem[e.addr] = e.val
				stack = append(stack, n)
			}
			// Choice B: execute the thread's next instruction.
			if !t.done {
				n := s.clone()
				if err := exStep(p, n, ti, base, cfg); err != nil {
					return nil, err
				}
				stack = append(stack, n)
			}
		}
	}
	return res, nil
}

func checkFlat(fn *ir.Fn) error {
	var bad *ir.Instr
	fn.Instrs(func(in *ir.Instr) {
		switch in.Kind {
		case ir.Call, ir.Spawn, ir.Join, ir.Alloca, ir.Malloc:
			if bad == nil {
				bad = in
			}
		}
	})
	if bad != nil {
		return fmt.Errorf("tso: explore: %s contains %s; exploration requires flat litmus threads", fn.Name, bad.Kind)
	}
	return nil
}

// exStep executes one instruction of thread ti in state s (in place).
func exStep(p *ir.Program, s *exState, ti int, base map[*ir.Global]int64, cfg ExploreConfig) error {
	t := &s.threads[ti]
	in := t.blk.Instrs[t.idx]
	advance := true

	addrOf := func(g *ir.Global, idx ir.Reg) (int64, error) {
		off := int64(0)
		if idx != ir.NoReg {
			off = t.regs[idx]
		}
		if off < 0 || off >= int64(g.Size) {
			return 0, fmt.Errorf("tso: explore: index %d out of bounds for %s", off, g.Name)
		}
		return base[g] + off, nil
	}
	load := func(addr int64) int64 {
		if cfg.Mode == TSO {
			for i := len(t.buf) - 1; i >= 0; i-- {
				if t.buf[i].addr == addr {
					return t.buf[i].val
				}
			}
		}
		return s.mem[addr]
	}
	store := func(addr, val int64) {
		if cfg.Mode == TSO {
			if len(t.buf) >= cfg.BufferCap {
				e := t.buf[0]
				t.buf = t.buf[1:]
				s.mem[e.addr] = e.val
			}
			t.buf = append(t.buf, bufEntry{addr, val})
			return
		}
		s.mem[addr] = val
	}
	drainAll := func() {
		for len(t.buf) > 0 {
			e := t.buf[0]
			t.buf = t.buf[1:]
			s.mem[e.addr] = e.val
		}
	}

	switch in.Kind {
	case ir.Const:
		t.regs[in.Dst] = in.Imm
	case ir.Move:
		t.regs[in.Dst] = t.regs[in.A]
	case ir.BinOp:
		t.regs[in.Dst] = evalBinOp(in.Op, t.regs[in.A], t.regs[in.B])
	case ir.Load:
		addr, err := addrOf(in.G, in.Idx)
		if err != nil {
			return err
		}
		t.regs[in.Dst] = load(addr)
	case ir.Store:
		addr, err := addrOf(in.G, in.Idx)
		if err != nil {
			return err
		}
		store(addr, t.regs[in.A])
	case ir.AddrOf:
		addr, err := addrOf(in.G, in.Idx)
		if err != nil {
			return err
		}
		t.regs[in.Dst] = addr
	case ir.Gep:
		t.regs[in.Dst] = t.regs[in.A] + t.regs[in.B]
	case ir.LoadPtr:
		addr := t.regs[in.Addr]
		if addr <= 0 || addr >= int64(len(s.mem)) {
			return fmt.Errorf("tso: explore: wild address %d", addr)
		}
		t.regs[in.Dst] = load(addr)
	case ir.StorePtr:
		addr := t.regs[in.Addr]
		if addr <= 0 || addr >= int64(len(s.mem)) {
			return fmt.Errorf("tso: explore: wild address %d", addr)
		}
		store(addr, t.regs[in.A])
	case ir.CAS:
		addr := t.regs[in.Addr]
		if addr <= 0 || addr >= int64(len(s.mem)) {
			return fmt.Errorf("tso: explore: wild address %d", addr)
		}
		drainAll()
		if s.mem[addr] == t.regs[in.A] {
			s.mem[addr] = t.regs[in.B]
			t.regs[in.Dst] = 1
		} else {
			t.regs[in.Dst] = 0
		}
	case ir.FetchAdd:
		addr := t.regs[in.Addr]
		if addr <= 0 || addr >= int64(len(s.mem)) {
			return fmt.Errorf("tso: explore: wild address %d", addr)
		}
		drainAll()
		t.regs[in.Dst] = s.mem[addr]
		s.mem[addr] += t.regs[in.A]
	case ir.Fence:
		if ir.FenceKind(in.Imm) == ir.FenceFull {
			drainAll()
		}
	case ir.Br:
		if t.regs[in.A] != 0 {
			t.blk, t.idx = in.Then, 0
		} else {
			t.blk, t.idx = in.Else, 0
		}
		advance = false
	case ir.Jmp:
		t.blk, t.idx = in.Then, 0
		advance = false
	case ir.Ret:
		t.done = true
		advance = false
	case ir.Assert, ir.Print:
		// recorded outcomes carry the information; ignore here
	default:
		return fmt.Errorf("tso: explore: cannot execute %s", in.Kind)
	}
	if advance {
		t.idx++
	}
	return nil
}
