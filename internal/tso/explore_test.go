package tso

import (
	"strings"
	"testing"

	"fenceplace/internal/ir"
)

// sb builds the store-buffering litmus (Dekker core): each thread writes
// its flag then reads the other's into an observation global. The non-SC
// outcome is out0 = out1 = 0.
func sb(fenced bool) *ir.Program {
	pb := ir.NewProgram("sb")
	x := pb.Global("x", 1)
	y := pb.Global("y", 1)
	out0 := pb.Global("out0", 1)
	out1 := pb.Global("out1", 1)

	t0 := pb.Func("t0", 0)
	t0.Store(x, t0.Const(1))
	if fenced {
		t0.Fence(ir.FenceFull)
	}
	t0.Store(out0, t0.Load(y))
	t0.RetVoid()

	t1 := pb.Func("t1", 0)
	t1.Store(y, t1.Const(1))
	if fenced {
		t1.Fence(ir.FenceFull)
	}
	t1.Store(out1, t1.Load(x))
	t1.RetVoid()
	return pb.MustBuild()
}

func TestSBReachableOnlyUnderUnfencedTSO(t *testing.T) {
	cases := []struct {
		name   string
		prog   *ir.Program
		mode   Mode
		wantSB bool // is the out0=0,out1=0 outcome reachable?
	}{
		{"TSO unfenced", sb(false), TSO, true},
		{"TSO fenced", sb(true), TSO, false},
		{"SC unfenced", sb(false), SC, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Explore(tc.prog, []string{"t0", "t1"}, ExploreConfig{Mode: tc.mode})
			if err != nil {
				t.Fatal(err)
			}
			if res.Truncated {
				t.Fatal("exploration truncated")
			}
			got := res.Has(map[string]int64{"out0": 0, "out1": 0}, tc.prog)
			if got != tc.wantSB {
				t.Fatalf("SB outcome reachable = %v, want %v (outcomes: %v)", got, tc.wantSB, res.Keys())
			}
			// Sanity: at least one SC outcome is always reachable.
			if !res.Has(map[string]int64{"out0": 1}, tc.prog) && !res.Has(map[string]int64{"out1": 1}, tc.prog) {
				t.Fatal("no SC outcome reachable at all")
			}
		})
	}
}

// mpLitmus is MP without a spin loop: t1 reads flag then data; the non-SC
// outcome is flag=1 observed but data=0. TSO forbids it (stores retire in
// order, loads execute in order), matching the paper's claim that only w→r
// needs full fences on x86.
func mpLitmus() *ir.Program {
	pb := ir.NewProgram("mp-litmus")
	data := pb.Global("data", 1)
	flag := pb.Global("flag", 1)
	outF := pb.Global("outF", 1)
	outD := pb.Global("outD", 1)

	t0 := pb.Func("t0", 0)
	t0.Store(data, t0.Const(1))
	t0.Store(flag, t0.Const(1))
	t0.RetVoid()

	t1 := pb.Func("t1", 0)
	t1.Store(outF, t1.Load(flag))
	t1.Store(outD, t1.Load(data))
	t1.RetVoid()
	return pb.MustBuild()
}

func TestMPReorderForbiddenUnderTSO(t *testing.T) {
	p := mpLitmus()
	for _, mode := range []Mode{TSO, SC} {
		res, err := Explore(p, []string{"t0", "t1"}, ExploreConfig{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if res.Has(map[string]int64{"outF": 1, "outD": 0}, p) {
			t.Fatalf("%s allowed the MP anomaly (flag seen, data stale)", mode)
		}
		if !res.Has(map[string]int64{"outF": 1, "outD": 1}, p) {
			t.Fatalf("%s: expected outcome flag=1,data=1 missing", mode)
		}
		if !res.Has(map[string]int64{"outF": 0, "outD": 0}, p) {
			t.Fatalf("%s: expected outcome flag=0,data=0 missing", mode)
		}
	}
}

func TestExploreTSOStrictlyWeakerThanSC(t *testing.T) {
	// Every SC-reachable final state is TSO-reachable (drain eagerly ==
	// SC), so outcomes(SC) ⊆ outcomes(TSO).
	p := sb(false)
	scRes, err := Explore(p, []string{"t0", "t1"}, ExploreConfig{Mode: SC})
	if err != nil {
		t.Fatal(err)
	}
	tsoRes, err := Explore(p, []string{"t0", "t1"}, ExploreConfig{Mode: TSO})
	if err != nil {
		t.Fatal(err)
	}
	for k := range scRes.Outcomes {
		if _, ok := tsoRes.Outcomes[k]; !ok {
			t.Errorf("SC outcome %s not reachable under TSO", k)
		}
	}
	if len(tsoRes.Outcomes) <= len(scRes.Outcomes) {
		t.Error("TSO should reach strictly more outcomes than SC for unfenced SB")
	}
}

func TestExploreCASIsFullBarrier(t *testing.T) {
	// SB with the first store replaced by CAS: the locked RMW drains the
	// buffer, so the SB outcome disappears without explicit fences.
	pb := ir.NewProgram("sb-cas")
	x := pb.Global("x", 1)
	y := pb.Global("y", 1)
	out0 := pb.Global("out0", 1)
	out1 := pb.Global("out1", 1)
	t0 := pb.Func("t0", 0)
	px := t0.AddrOf(x)
	t0.CAS(px, t0.Const(0), t0.Const(1))
	t0.Store(out0, t0.Load(y))
	t0.RetVoid()
	t1 := pb.Func("t1", 0)
	py := t1.AddrOf(y)
	t1.CAS(py, t1.Const(0), t1.Const(1))
	t1.Store(out1, t1.Load(x))
	t1.RetVoid()
	p := pb.MustBuild()
	res, err := Explore(p, []string{"t0", "t1"}, ExploreConfig{Mode: TSO})
	if err != nil {
		t.Fatal(err)
	}
	if res.Has(map[string]int64{"out0": 0, "out1": 0}, p) {
		t.Fatal("CAS did not act as a full barrier")
	}
}

func TestExploreRejectsNonFlatThreads(t *testing.T) {
	pb := ir.NewProgram("bad")
	h := pb.Func("helper", 0)
	h.RetVoid()
	f := pb.Func("f", 0)
	f.CallVoid("helper")
	f.RetVoid()
	p := pb.MustBuild()
	_, err := Explore(p, []string{"f"}, ExploreConfig{})
	if err == nil || !strings.Contains(err.Error(), "flat") {
		t.Fatalf("err = %v, want flatness complaint", err)
	}
	if _, err := Explore(p, []string{"missing"}, ExploreConfig{}); err == nil {
		t.Fatal("missing function accepted")
	}
}

func TestExploreTruncation(t *testing.T) {
	p := sb(false)
	res, err := Explore(p, []string{"t0", "t1"}, ExploreConfig{Mode: TSO, MaxStates: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("tiny MaxStates did not truncate")
	}
}
