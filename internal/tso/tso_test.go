package tso

import (
	"strings"
	"testing"

	"fenceplace/internal/ir"
)

// mp builds the MP handshake with a final assertion that data was visible.
func mp(t testing.TB) *ir.Program {
	t.Helper()
	pb := ir.NewProgram("mp")
	data := pb.Global("data", 1)
	flag := pb.Global("flag", 1)
	prod := pb.Func("producer", 0)
	one := prod.Const(1)
	prod.Store(data, prod.Const(42))
	prod.Store(flag, one)
	prod.RetVoid()
	cons := pb.Func("consumer", 0)
	one2 := cons.Const(1)
	cons.SpinWhileNe(flag, ir.NoReg, one2)
	v := cons.Load(data)
	cons.Assert(cons.Eq(v, cons.Const(42)), "data visible after flag")
	cons.RetVoid()
	main := pb.Func("main", 0)
	t1 := main.Spawn("producer")
	t2 := main.Spawn("consumer")
	main.Join(t1)
	main.Join(t2)
	main.RetVoid()
	pb.SetMain("main")
	return pb.MustBuild()
}

func TestMPCorrectUnderSCAndTSO(t *testing.T) {
	p := mp(t)
	for _, mode := range []Mode{SC, TSO} {
		for seed := int64(0); seed < 10; seed++ {
			out := Run(p, Config{Mode: mode, Sched: Random, Policy: DrainRandom, Seed: seed})
			if out.Failed() {
				// MP is w→w / r→r; TSO preserves both orders, so this must
				// never fail even without fences.
				t.Fatalf("%s seed %d: %v %v", mode, seed, out.Failures, out.Err)
			}
			if out.Global("data") != 42 || out.Global("flag") != 1 {
				t.Fatalf("%s seed %d: final data=%d flag=%d", mode, seed, out.Global("data"), out.Global("flag"))
			}
		}
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	// A thread must see its own buffered store even under DrainLazy.
	pb := ir.NewProgram("fwd")
	x := pb.Global("x", 1)
	main := pb.Func("main", 0)
	main.Store(x, main.Const(7))
	v := main.Load(x)
	main.Assert(main.Eq(v, main.Const(7)), "own store forwarded")
	main.RetVoid()
	pb.SetMain("main")
	p := pb.MustBuild()
	out := Run(p, Config{Mode: TSO, Policy: DrainLazy})
	if out.Failed() {
		t.Fatalf("forwarding broken: %v", out.Failures)
	}
}

func TestCallsAndReturns(t *testing.T) {
	// Recursive fib through the interpreter's frame stack.
	pb := ir.NewProgram("fib")
	res := pb.Global("res", 1)
	fib := pb.Func("fib", 1)
	n := fib.Param(0)
	fib.IfElse(fib.Lt(n, fib.Const(2)), func() {
		fib.Ret(n)
	}, func() {
		a := fib.Call("fib", fib.Sub(n, fib.Const(1)))
		b := fib.Call("fib", fib.Sub(n, fib.Const(2)))
		fib.Ret(fib.Add(a, b))
	})
	// Unreachable tail for validation: IfElse leaves an open join block.
	fib.Ret(fib.Const(0))
	main := pb.Func("main", 0)
	main.Store(res, main.Call("fib", main.Const(10)))
	main.RetVoid()
	pb.SetMain("main")
	p := pb.MustBuild()
	out := Run(p, Config{Mode: SC})
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if got := out.Global("res"); got != 55 {
		t.Fatalf("fib(10) = %d, want 55", got)
	}
}

func TestFetchAddAtomicUnderContention(t *testing.T) {
	pb := ir.NewProgram("counter")
	ctr := pb.Global("ctr", 1)
	w := pb.Func("worker", 0)
	pc := w.AddrOf(ctr)
	one := w.Const(1)
	w.ForConst(0, 100, func(i ir.Reg) {
		w.FetchAdd(pc, one)
	})
	w.RetVoid()
	main := pb.Func("main", 0)
	var tids []ir.Reg
	for i := 0; i < 4; i++ {
		tids = append(tids, main.Spawn("worker"))
	}
	for _, tid := range tids {
		main.Join(tid)
	}
	v := main.Load(ctr)
	main.Assert(main.Eq(v, main.Const(400)), "atomic counter")
	main.RetVoid()
	pb.SetMain("main")
	p := pb.MustBuild()
	for seed := int64(0); seed < 5; seed++ {
		out := Run(p, Config{Mode: TSO, Sched: Random, Policy: DrainLazy, Seed: seed})
		if out.Failed() {
			t.Fatalf("seed %d: %v", seed, out.Failures)
		}
		if out.Global("ctr") != 400 {
			t.Fatalf("seed %d: ctr = %d, want 400", seed, out.Global("ctr"))
		}
		if out.RMWs != 400 {
			t.Fatalf("seed %d: %d RMWs executed, want 400", seed, out.RMWs)
		}
	}
}

// peterson builds Peterson's mutual exclusion with an unprotected counter
// increment in the critical section; fenced controls whether the w→r entry
// fences are present. Without them, TSO store buffering breaks mutual
// exclusion and increments are lost.
func peterson(t testing.TB, fenced bool, iters int64) *ir.Program {
	t.Helper()
	pb := ir.NewProgram("peterson")
	flag := pb.Global("flag", 2)
	turn := pb.Global("turn", 1)
	ctr := pb.Global("ctr", 1)

	worker := func(name string, me, other int64) {
		b := pb.Func(name, 0)
		meR := b.Const(me)
		otherR := b.Const(other)
		one := b.Const(1)
		zero := b.Const(0)
		b.ForConst(0, iters, func(i ir.Reg) {
			b.StoreIdx(flag, meR, one)
			b.Store(turn, otherR)
			if fenced {
				b.Fence(ir.FenceFull)
			}
			// while (flag[other] == 1 && turn == other) spin
			b.While(func() ir.Reg {
				fo := b.LoadIdx(flag, otherR)
				tu := b.Load(turn)
				return b.And(b.Eq(fo, one), b.Eq(tu, otherR))
			}, func() {})
			// critical section: racy increment, protected only by the lock
			v := b.Load(ctr)
			b.Store(ctr, b.Add(v, one))
			b.StoreIdx(flag, meR, zero)
			_ = zero
		})
		b.RetVoid()
	}
	worker("p0", 0, 1)
	worker("p1", 1, 0)
	main := pb.Func("main", 0)
	t0 := main.Spawn("p0")
	t1 := main.Spawn("p1")
	main.Join(t0)
	main.Join(t1)
	v := main.Load(ctr)
	main.Assert(main.Eq(v, main.Const(2*iters)), "no lost updates in critical section")
	main.RetVoid()
	pb.SetMain("main")
	return pb.MustBuild()
}

func TestPetersonRequiresFencesUnderTSO(t *testing.T) {
	unfenced := peterson(t, false, 50)
	violated := false
	for seed := int64(0); seed < 8 && !violated; seed++ {
		out := Run(unfenced, Config{Mode: TSO, Sched: Random, Policy: DrainLazy, Seed: seed})
		if len(out.Failures) > 0 {
			violated = true
		}
	}
	if !violated {
		t.Error("unfenced Peterson never lost an update under lazy TSO; the simulator is too strong")
	}

	fenced := peterson(t, true, 50)
	for seed := int64(0); seed < 8; seed++ {
		out := Run(fenced, Config{Mode: TSO, Sched: Random, Policy: DrainLazy, Seed: seed})
		if out.Failed() {
			t.Fatalf("fenced Peterson failed (seed %d): %v %v", seed, out.Failures, out.Err)
		}
		if out.FullFences == 0 {
			t.Fatal("fences not executed")
		}
	}
}

func TestPetersonCorrectUnderSCWithoutFences(t *testing.T) {
	p := peterson(t, false, 50)
	for seed := int64(0); seed < 8; seed++ {
		out := Run(p, Config{Mode: SC, Sched: Random, Seed: seed})
		if out.Failed() {
			t.Fatalf("SC Peterson failed (seed %d): %v", seed, out.Failures)
		}
	}
}

func TestFenceCostVisibleInCycles(t *testing.T) {
	build := func(fenced bool) *ir.Program {
		pb := ir.NewProgram("cost")
		x := pb.Global("x", 1)
		main := pb.Func("main", 0)
		main.ForConst(0, 100, func(i ir.Reg) {
			main.Store(x, i)
			if fenced {
				main.Fence(ir.FenceFull)
			}
			v := main.Load(x)
			_ = v
		})
		main.RetVoid()
		pb.SetMain("main")
		return pb.MustBuild()
	}
	with := Run(build(true), Config{Mode: TSO, Policy: DrainLazy})
	without := Run(build(false), Config{Mode: TSO, Policy: DrainLazy})
	if with.Err != nil || without.Err != nil {
		t.Fatal(with.Err, without.Err)
	}
	if with.FullFences != 100 {
		t.Fatalf("executed %d fences, want 100", with.FullFences)
	}
	if with.MaxCycles <= without.MaxCycles {
		t.Fatalf("fenced run (%d cycles) not slower than unfenced (%d)", with.MaxCycles, without.MaxCycles)
	}
	// Compiler barriers must be free.
	pbComp := ir.NewProgram("comp")
	x := pbComp.Global("x", 1)
	mainC := pbComp.Func("main", 0)
	mainC.ForConst(0, 100, func(i ir.Reg) {
		mainC.Store(x, i)
		mainC.Fence(ir.FenceCompiler)
		v := mainC.Load(x)
		_ = v
	})
	mainC.RetVoid()
	pbComp.SetMain("main")
	comp := Run(pbComp.MustBuild(), Config{Mode: TSO, Policy: DrainLazy})
	if comp.FullFences != 0 {
		t.Fatal("compiler barrier counted as full fence")
	}
	if comp.MaxCycles != without.MaxCycles {
		t.Fatalf("compiler barrier changed timing: %d vs %d", comp.MaxCycles, without.MaxCycles)
	}
}

func TestLivelockGuard(t *testing.T) {
	pb := ir.NewProgram("hang")
	flag := pb.Global("flag", 1)
	main := pb.Func("main", 0)
	main.SpinWhileNe(flag, ir.NoReg, main.Const(1)) // never satisfied
	main.RetVoid()
	pb.SetMain("main")
	out := Run(pb.MustBuild(), Config{Mode: SC, MaxSteps: 10_000})
	if !out.Deadlock {
		t.Fatal("livelock not detected")
	}
}

func TestRuntimeErrors(t *testing.T) {
	t.Run("out of bounds index", func(t *testing.T) {
		pb := ir.NewProgram("oob")
		g := pb.Global("g", 2)
		main := pb.Func("main", 0)
		v := main.LoadIdx(g, main.Const(5))
		_ = v
		main.RetVoid()
		pb.SetMain("main")
		out := Run(pb.MustBuild(), Config{})
		if out.Err == nil || !strings.Contains(out.Err.Error(), "out of bounds") {
			t.Fatalf("err = %v", out.Err)
		}
	})
	t.Run("wild pointer", func(t *testing.T) {
		pb := ir.NewProgram("wild")
		main := pb.Func("main", 0)
		v := main.LoadPtr(main.Const(999999))
		_ = v
		main.RetVoid()
		pb.SetMain("main")
		out := Run(pb.MustBuild(), Config{})
		if out.Err == nil || !strings.Contains(out.Err.Error(), "wild address") {
			t.Fatalf("err = %v", out.Err)
		}
	})
	t.Run("missing main", func(t *testing.T) {
		pb := ir.NewProgram("nomain")
		f := pb.Func("f", 0)
		f.RetVoid()
		p := pb.MustBuild()
		out := Run(p, Config{})
		if out.Err == nil {
			t.Fatal("missing main not reported")
		}
	})
}

func TestAssertRecordsFailure(t *testing.T) {
	pb := ir.NewProgram("a")
	main := pb.Func("main", 0)
	main.Assert(main.Const(0), "always fails")
	main.RetVoid()
	pb.SetMain("main")
	out := Run(pb.MustBuild(), Config{})
	if len(out.Failures) != 1 || !strings.Contains(out.Failures[0], "always fails") {
		t.Fatalf("failures = %v", out.Failures)
	}
}

func TestPrintAndAllocas(t *testing.T) {
	pb := ir.NewProgram("p")
	main := pb.Func("main", 0)
	buf := main.Alloca(4)
	main.StorePtr(main.Gep(buf, main.Const(2)), main.Const(9))
	v := main.LoadPtr(main.Gep(buf, main.Const(2)))
	main.Print(v)
	main.RetVoid()
	pb.SetMain("main")
	out := Run(pb.MustBuild(), Config{})
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if len(out.Printed) != 1 || out.Printed[0] != 9 {
		t.Fatalf("printed = %v, want [9]", out.Printed)
	}
}

func TestMinTimeSchedulerDeterministic(t *testing.T) {
	p := mp(t)
	a := Run(p, Config{Mode: TSO, Sched: MinTime, Policy: DrainLazy})
	b := Run(p, Config{Mode: TSO, Sched: MinTime, Policy: DrainLazy})
	if a.MaxCycles != b.MaxCycles || a.Steps != b.Steps {
		t.Fatalf("MinTime+DrainLazy not deterministic: (%d,%d) vs (%d,%d)",
			a.MaxCycles, a.Steps, b.MaxCycles, b.Steps)
	}
}

func TestBufferCapForcesDrain(t *testing.T) {
	// More stores than the buffer holds: earlier stores must become
	// visible even under DrainLazy.
	pb := ir.NewProgram("cap")
	g := pb.Global("g", 64)
	obs := pb.Global("obs", 1)
	w := pb.Func("writer", 0)
	w.ForConst(0, 64, func(i ir.Reg) {
		w.StoreIdx(g, i, w.Const(1))
	})
	w.SpinWhileNe(obs, ir.NoReg, w.Const(1)) // keep thread alive, no exit drain
	w.RetVoid()
	r := pb.Func("reader", 0)
	r.SpinWhileNe(g, r.Const(0), r.Const(1)) // waits for g[0] to appear
	r.Store(obs, r.Const(1))
	r.RetVoid()
	main := pb.Func("main", 0)
	t1 := main.Spawn("writer")
	t2 := main.Spawn("reader")
	main.Join(t1)
	main.Join(t2)
	main.RetVoid()
	pb.SetMain("main")
	out := Run(pb.MustBuild(), Config{Mode: TSO, Sched: Random, Policy: DrainLazy, BufferCap: 8, Seed: 3})
	if out.Failed() {
		t.Fatalf("capacity-forced drain missing: %v %v", out.Failures, out.Err)
	}
}
