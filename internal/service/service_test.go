package service

// Manager-level semantics: single-flight coalescing (N identical
// concurrent submissions cost one SC exploration and share byte-identical
// rows), waiter-cancellation rules, budget clamping, queue backpressure,
// warm-cache restarts and graceful drain. Everything here must hold under
// -race; the suite deliberately drives real explorations through the
// public pipeline rather than stubbing the runner, so the coalescing
// accounting is pinned against the model checker's own metrics.

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"fenceplace"
	"fenceplace/corpus"
	"fenceplace/internal/mc"
)

// newTestManager builds a manager with a neutral environment: no ambient
// cache or spill directory can leak into the jobs.
func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	t.Setenv("FENCEPLACE_CACHE_DIR", "")
	t.Setenv("FENCEPLACE_SPILL_DIR", "")
	m := NewManager(cfg)
	t.Cleanup(m.Close)
	return m
}

// blockerRequest is a deliberately heavy job (szymanski's reduced
// instantiation explores on the order of a million states) used to occupy
// a one-worker pool while the interesting submissions queue up behind it.
func blockerRequest() *Request {
	return &Request{
		Corpus:     "szymanski",
		Budget:     Budget{MaxStates: 1 << 26},
		ProgressMS: 10,
	}
}

// dekkerRequest is the fast identical submission the coalescing tests
// replicate.
func dekkerRequest() *Request {
	return &Request{Corpus: "dekker", Strategy: "control"}
}

// startBlocker submits the blocker and waits until its SC exploration has
// demonstrably begun (first progress heartbeat), so the mc exploration
// counters have already ticked for it. Returns the blocker's claim.
func startBlocker(t *testing.T, m *Manager) *Claim {
	t.Helper()
	claim, coalesced, err := m.Submit(blockerRequest())
	if err != nil {
		t.Fatalf("blocker submit: %v", err)
	}
	if coalesced {
		t.Fatal("blocker submission unexpectedly coalesced")
	}
	sub, detach := claim.Job().Subscribe()
	defer detach()
	for {
		select {
		case ev := <-sub:
			if ev.Mode == "SC" {
				return claim
			}
		case <-claim.Job().Done():
			t.Fatal("blocker finished before emitting a heartbeat; it is not blocking anything")
		case <-time.After(10 * time.Second):
			t.Fatal("blocker never started exploring")
		}
	}
}

func encodeRows(t *testing.T, rep *corpus.Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCoalescingSingleFlight is the tentpole's acceptance test: with one
// worker pinned down by a blocker, N identical submissions must collapse
// into a single job — one SC exploration for all of them, every waiter
// handed byte-identical report rows.
func TestCoalescingSingleFlight(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, MaxStatesCap: 1 << 26})

	scBefore := mc.SCExploreRuns()
	runsBefore := mc.ExploreRuns()
	coalescedBefore := mCoalesced.Value()

	blocker := startBlocker(t, m)

	const N = 8
	claims := make([]*Claim, N)
	for i := 0; i < N; i++ {
		c, coalesced, err := m.Submit(dekkerRequest())
		if err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
		if coalesced != (i > 0) {
			t.Errorf("submission %d: coalesced = %v, want %v", i, coalesced, i > 0)
		}
		claims[i] = c
	}
	shared := claims[0].Job()
	for i, c := range claims {
		if c.Job() != shared {
			t.Fatalf("submission %d landed on job %s, want shared job %s", i, c.Job().ID(), shared.ID())
		}
	}
	if d := mCoalesced.Value() - coalescedBefore; d != N-1 {
		t.Errorf("service.coalesced_hits advanced by %d, want %d", d, N-1)
	}

	// Free the worker: the blocker's only waiter leaves, so the blocker is
	// cancelled and the shared job runs.
	blocker.Release()

	select {
	case <-shared.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("shared job never finished")
	}
	rep, err := shared.Result()
	if err != nil {
		t.Fatalf("shared job failed: %v", err)
	}

	// Exactly one SC exploration for the N submissions (plus the blocker's
	// single started-then-abandoned one), and one TSO exploration for the
	// shared job's only variant.
	if d := mc.SCExploreRuns() - scBefore; d != 2 {
		t.Errorf("SC explorations advanced by %d, want 2 (blocker + one shared exploration for %d submissions)", d, N)
	}
	// Blocker SC + shared SC + shared TSO; the blocker may have reached its
	// TSO pass before the release cancelled it.
	if d := mc.ExploreRuns() - runsBefore; d != 3 && d != 4 {
		t.Errorf("explorations advanced by %d, want 3 (blocker SC + shared SC + shared TSO)", d)
	}

	// Every waiter serializes the same rows, byte for byte.
	want := encodeRows(t, rep)
	for i, c := range claims {
		r, err := c.Job().Result()
		if err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
		if got := encodeRows(t, r); !bytes.Equal(got, want) {
			t.Errorf("waiter %d received different rows:\n%s\nvs\n%s", i, got, want)
		}
	}
	if len(rep.Rows) != 1 || len(rep.Rows[0].Variants) != 1 {
		t.Fatalf("unexpected report shape: %+v", rep)
	}
	if st := rep.Rows[0].Variants[0].Cert.Status; st != corpus.CertCertified {
		t.Errorf("dekker/Control certification = %q, want %q", st, corpus.CertCertified)
	}
}

// goSourceSB returns a store-buffering program in restricted real Go.
// The comment knob makes the bytes differ while the lowered IR — and so
// the coalescing key — stays identical.
func goSourceSB(comment string) string {
	return "package sb\n\n// " + comment + "\n\nimport \"sync\"\n\n" +
		"var (\n\tx int64\n\ty int64\n\tr0 int64\n\tr1 int64\n)\n\n" +
		"var wg sync.WaitGroup\n\n" +
		"func t0() {\n\tdefer wg.Done()\n\tx = 1\n\tr0 = y\n}\n\n" +
		"func t1() {\n\tdefer wg.Done()\n\ty = 1\n\tr1 = x\n}\n\n" +
		"func main() {\n\twg.Add(2)\n\tgo t0()\n\tgo t1()\n\twg.Wait()\n}\n"
}

// TestGoSourceSubmission pins the go_source request variant: the frontend
// lowers the submission, the job certifies it, and byte-different sources
// with identical lowerings single-flight onto one job — the coalescing
// key is the lowered IR's baseline key, not the source text.
func TestGoSourceSubmission(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, MaxStatesCap: 1 << 26})

	blocker := startBlocker(t, m)

	a, coalesced, err := m.Submit(&Request{GoSource: goSourceSB("first copy"), Strategy: "pensieve"})
	if err != nil {
		t.Fatalf("go_source submit: %v", err)
	}
	if coalesced {
		t.Error("first go_source submission unexpectedly coalesced")
	}
	b, coalesced, err := m.Submit(&Request{GoSource: goSourceSB("second copy, different bytes"), Strategy: "pensieve"})
	if err != nil {
		t.Fatalf("second go_source submit: %v", err)
	}
	if !coalesced {
		t.Error("byte-different source with identical lowering did not coalesce")
	}
	if a.Job() != b.Job() {
		t.Fatalf("submissions landed on jobs %s and %s, want one shared job", a.Job().ID(), b.Job().ID())
	}

	blocker.Release()
	select {
	case <-a.Job().Done():
	case <-time.After(30 * time.Second):
		t.Fatal("go_source job never finished")
	}
	rep, err := a.Job().Result()
	if err != nil {
		t.Fatalf("go_source job failed: %v", err)
	}
	if len(rep.Rows) != 1 || rep.Rows[0].Program != "sb" {
		t.Fatalf("unexpected report shape: %+v", rep)
	}
	if st := rep.Rows[0].Variants[0].Cert.Status; st != corpus.CertCertified {
		t.Errorf("sb/Pensieve certification = %q, want %q (full fences restore SC)", st, corpus.CertCertified)
	}
}

// TestCancelledWaiterKeepsSharedJob pins the coalescing cancellation rule:
// releasing one of two coalesced claims must not cancel the shared job —
// the surviving waiter still gets its verdict.
func TestCancelledWaiterKeepsSharedJob(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, MaxStatesCap: 1 << 26})
	blocker := startBlocker(t, m)

	a, _, err := m.Submit(dekkerRequest())
	if err != nil {
		t.Fatal(err)
	}
	b, coalesced, err := m.Submit(dekkerRequest())
	if err != nil {
		t.Fatal(err)
	}
	if !coalesced || a.Job() != b.Job() {
		t.Fatal("second identical submission did not coalesce")
	}

	// One waiter walks away; the other still wants the result.
	a.Release()
	blocker.Release()

	j := b.Job()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("shared job never finished")
	}
	if st := j.State(); st != StateDone {
		t.Fatalf("shared job state = %s, want %s (a released waiter must not cancel it)", st, StateDone)
	}
	rep, err := j.Result()
	if err != nil || rep == nil {
		t.Fatalf("surviving waiter got (%v, %v), want a report", rep, err)
	}

	// The inverse: when the LAST waiter leaves, the job dies.
	blocker2 := startBlocker(t, m)
	c, _, err := m.Submit(dekkerRequest())
	if err != nil {
		t.Fatal(err)
	}
	lone := c.Job()
	c.Release()
	blocker2.Release()
	select {
	case <-lone.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("abandoned job never resolved")
	}
	if st := lone.State(); st != StateCancelled {
		t.Errorf("abandoned job state = %s, want %s", st, StateCancelled)
	}
}

// TestWarmCacheRestart is the PR 4 CI invariant transplanted onto the
// service: a second identical submission against a restarted manager
// sharing the same cache directory must perform zero SC explorations.
func TestWarmCacheRestart(t *testing.T) {
	dir := t.TempDir()
	opts := []fenceplace.Option{fenceplace.WithCacheDir(dir)}

	m1 := newTestManager(t, Config{Options: opts})
	c1, _, err := m1.Submit(dekkerRequest())
	if err != nil {
		t.Fatal(err)
	}
	<-c1.Job().Done()
	if rep, err := c1.Job().Result(); err != nil || rep == nil {
		t.Fatalf("cold run: (%v, %v)", rep, err)
	}
	if err := m1.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// "Restart": a fresh manager over the same store directory.
	scBefore := mc.SCExploreRuns()
	m2 := newTestManager(t, Config{Options: opts})
	c2, _, err := m2.Submit(dekkerRequest())
	if err != nil {
		t.Fatal(err)
	}
	<-c2.Job().Done()
	rep, err := c2.Job().Result()
	if err != nil || rep == nil {
		t.Fatalf("warm run: (%v, %v)", rep, err)
	}
	if d := mc.SCExploreRuns() - scBefore; d != 0 {
		t.Errorf("warm restart performed %d SC explorations, want 0 (baseline must come from %s)", d, dir)
	}
	if st := rep.Rows[0].Variants[0].Cert.Status; st != corpus.CertCertified {
		t.Errorf("warm verdict = %q, want %q", st, corpus.CertCertified)
	}
}

// TestBudgetClamping checks the server-side ceilings: oversized requests
// are clamped, absent budgets get the defaults, and the per-job deadline
// and state budgets actually bite.
func TestBudgetClamping(t *testing.T) {
	m := newTestManager(t, Config{
		MaxStatesCap:    1000,
		MemoryCapCeil:   1 << 20,
		MaxDeadline:     time.Minute,
		DefaultDeadline: time.Second,
	})
	spec, err := m.buildSpec(&Request{
		Corpus: "dekker",
		Budget: Budget{MaxStates: 1 << 40, MemoryCap: 1 << 30, DeadlineMS: int64(time.Hour / time.Millisecond)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if spec.maxStates != 1000 {
		t.Errorf("maxStates clamped to %d, want 1000", spec.maxStates)
	}
	if spec.memoryCap != 1<<20 {
		t.Errorf("memoryCap clamped to %d, want %d", spec.memoryCap, 1<<20)
	}
	if spec.deadline != time.Minute {
		t.Errorf("deadline clamped to %v, want 1m", spec.deadline)
	}
	spec, err = m.buildSpec(&Request{Corpus: "dekker"})
	if err != nil {
		t.Fatal(err)
	}
	if spec.maxStates != 1000 || spec.deadline != time.Second {
		t.Errorf("defaults = (%d states, %v), want (1000, 1s)", spec.maxStates, spec.deadline)
	}
}

// TestStateBudgetVerdict: an exhausted state budget must come back as the
// "budget" certification status — a truncated exploration is inconclusive,
// never a verdict and never a job failure.
func TestStateBudgetVerdict(t *testing.T) {
	m := newTestManager(t, Config{})
	c, _, err := m.Submit(&Request{Corpus: "dekker", Budget: Budget{MaxStates: 16}})
	if err != nil {
		t.Fatal(err)
	}
	<-c.Job().Done()
	rep, err := c.Job().Result()
	if err != nil {
		t.Fatalf("job failed outright: %v (truncation should be a row verdict)", err)
	}
	if st := rep.Rows[0].Variants[0].Cert.Status; st != corpus.CertBudget {
		t.Errorf("verdict under a 16-state budget = %q, want %q", st, corpus.CertBudget)
	}
}

// TestDeadlineEnforced: a job that cannot finish inside its clamped
// deadline fails with the deadline error instead of running forever.
func TestDeadlineEnforced(t *testing.T) {
	m := newTestManager(t, Config{MaxStatesCap: 1 << 26})
	c, _, err := m.Submit(&Request{
		Corpus: "szymanski",
		Budget: Budget{MaxStates: 1 << 26, DeadlineMS: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-c.Job().Done():
	case <-time.After(20 * time.Second):
		t.Fatal("deadline-bounded job never resolved")
	}
	if st := c.Job().State(); st != StateFailed {
		t.Fatalf("state = %s, want %s", st, StateFailed)
	}
	if _, err := c.Job().Result(); err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Errorf("error = %v, want a deadline exceeded error", err)
	}
}

// TestQueueBackpressure: with one busy worker and a one-slot queue, a
// third distinct submission bounces with ErrQueueFull.
func TestQueueBackpressure(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 1, MaxStatesCap: 1 << 26})
	rejectsBefore := mRejected.Value()
	blocker := startBlocker(t, m)
	defer blocker.Release()

	// Distinct budgets make distinct coalescing keys, so nothing coalesces.
	q1, _, err := m.Submit(&Request{Corpus: "dekker", Budget: Budget{MaxStates: 1001}})
	if err != nil {
		t.Fatalf("queued submission: %v", err)
	}
	defer q1.Release()
	_, _, err = m.Submit(&Request{Corpus: "dekker", Budget: Budget{MaxStates: 1002}})
	if err != ErrQueueFull {
		t.Fatalf("over-capacity submission returned %v, want ErrQueueFull", err)
	}
	if d := mRejected.Value() - rejectsBefore; d != 1 {
		t.Errorf("service.queue_rejects advanced by %d, want 1", d)
	}
}

// TestValidation rejects malformed submissions with descriptive errors.
func TestValidation(t *testing.T) {
	m := newTestManager(t, Config{})
	cases := []struct {
		req  Request
		want string
	}{
		{Request{}, "exactly one of"},
		{Request{Corpus: "dekker", Program: "func main() {}"}, "exactly one of"},
		{Request{Corpus: "dekker", GoSource: "package p"}, "exactly one of"},
		{Request{Program: "program p", GoSource: "package p"}, "exactly one of"},
		{Request{Corpus: "no-such-program"}, "unknown corpus program"},
		{Request{Corpus: "dekker", Strategy: "bogus"}, "unknown strategy"},
		{Request{Program: "not ir at all"}, "program:"},
		{Request{GoSource: "package p\n\nvar ch chan int64\n"}, "go_source:"},
	}
	for _, tc := range cases {
		_, _, err := m.Submit(&tc.req)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Submit(%+v) = %v, want error containing %q", tc.req, err, tc.want)
		}
	}
}

// TestDrainGraceful: a drain with headroom lets the in-flight job finish;
// submissions during and after the drain are refused with ErrDraining.
func TestDrainGraceful(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	c, _, err := m.Submit(dekkerRequest())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("graceful drain: %v", err)
	}
	if st := c.Job().State(); st != StateDone {
		t.Errorf("in-flight job after graceful drain = %s, want %s", st, StateDone)
	}
	if _, _, err := m.Submit(dekkerRequest()); err != ErrDraining {
		t.Errorf("post-drain submission returned %v, want ErrDraining", err)
	}
}

// TestDrainDeadlineCancels: when the drain budget expires, stragglers are
// cancelled rather than awaited, and Drain still leaves nothing running.
func TestDrainDeadlineCancels(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, MaxStatesCap: 1 << 26})
	blocker := startBlocker(t, m)
	defer blocker.Release()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := m.Drain(ctx)
	if err == nil {
		t.Fatal("drain of a blocked pool returned nil, want the deadline error")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("drain took %v to give up, want prompt cancellation", d)
	}
	j := blocker.Job()
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("blocked job still running after the drain deadline")
	}
	if st := j.State(); st != StateCancelled {
		t.Errorf("straggler state = %s, want %s", st, StateCancelled)
	}
}

// TestConcurrentMixedSubmissions hammers the manager with a mix of
// identical and distinct submissions under -race: every job resolves, and
// identical wait-pairs agree on their rows.
func TestConcurrentMixedSubmissions(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2})
	var wg sync.WaitGroup
	reqs := []*Request{
		{Corpus: "dekker"},
		{Corpus: "dekker"},
		{Corpus: "peterson"},
		{Corpus: "dekker", Strategy: "all"},
		{Corpus: "peterson"},
		{Corpus: "dekker"},
	}
	errs := make([]error, len(reqs))
	wg.Add(len(reqs))
	for i, r := range reqs {
		go func(i int, r *Request) {
			defer wg.Done()
			c, _, err := m.Submit(r)
			if err != nil {
				errs[i] = err
				return
			}
			<-c.Job().Done()
			_, errs[i] = c.Job().Result()
			c.Release()
		}(i, r)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("submission %d: %v", i, err)
		}
	}
}
