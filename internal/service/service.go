// Package service is the long-running certification server behind
// cmd/fenced: it multiplexes concurrent HTTP clients over one warm
// process — one baseline store, one telemetry registry, one pool of
// exploration workers — instead of a cold CLI process per request.
//
// The core is the job Manager. A submission names a program (inline IR
// text or a corpus program), a strategy set and per-job budgets; the
// manager derives the job's canonical identity from mc.BaselineKey plus
// the verdict-shaping knobs and single-flights it: while a job for a key
// is queued or running, further identical submissions coalesce onto it as
// additional claims, so N identical concurrent requests cost exactly one
// SC exploration and every waiter receives the same report rows. Jobs
// admit through a bounded queue (backpressure surfaces as ErrQueueFull —
// HTTP 429) into a fixed worker pool; each job runs through the public
// corpus.Runner under its own context with the clamped deadline, state
// and memory budgets applied, and fans WithProgress heartbeats out to any
// number of subscribed watchers. Releasing the last claim of an
// unfinished job cancels it — a lone disconnected client stops paying for
// an exploration nobody wants, while coalesced waiters keep it alive.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"fenceplace"
	"fenceplace/corpus"
	"fenceplace/internal/mc"
	"fenceplace/internal/progs"
	"fenceplace/internal/telemetry"
)

// Service-level metrics, registered once in the process-wide registry next
// to the mc.* and store.* families.
var (
	mSubmitted   = telemetry.NewCounter("service.jobs_submitted") // claims accepted (coalesced included)
	mStarted     = telemetry.NewCounter("service.jobs_started")   // jobs a worker began running
	mDone        = telemetry.NewCounter("service.jobs_done")      // jobs finished with a report
	mFailed      = telemetry.NewCounter("service.jobs_failed")    // jobs finished with an error
	mCancelled   = telemetry.NewCounter("service.jobs_cancelled") // jobs cancelled (waiters gone or drain)
	mCoalesced   = telemetry.NewCounter("service.coalesced_hits") // submissions that joined an in-flight job
	mRejected    = telemetry.NewCounter("service.queue_rejects")  // submissions bounced off the full queue
	gInflight    = telemetry.NewGauge("service.jobs_inflight")    // queued + running jobs
	gQueueDepth  = telemetry.NewGauge("service.queue_depth")      // jobs admitted and not yet picked up
	mVerdictCert = telemetry.NewCounter("service.verdict_certified")
	mVerdictViol = telemetry.NewCounter("service.verdict_violation")
	mVerdictBudg = telemetry.NewCounter("service.verdict_budget")
	mVerdictErr  = telemetry.NewCounter("service.verdict_error")
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull reports a full admission queue: the client should back
	// off and retry (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("service: admission queue full")
	// ErrDraining reports a server past SIGTERM: no new work is admitted
	// (HTTP 503).
	ErrDraining = errors.New("service: draining, not accepting jobs")
)

// Config sizes the manager and sets the server-side ceilings client
// budgets are clamped to. The zero value of every field selects the
// documented default.
type Config struct {
	Workers    int // job worker pool size (default GOMAXPROCS, min 1)
	QueueDepth int // admission queue capacity beyond the running jobs (default 64)

	// JobWorkers bounds each job's exploration parallelism
	// (fenceplace.WithWorkers). The default 0 lets every job use
	// GOMAXPROCS; busy pools set 1..k to keep N concurrent jobs from
	// oversubscribing the cores.
	JobWorkers int

	MaxStatesCap     int64         // ceiling for per-job max_states (default 1<<21)
	DefaultMaxStates int64         // when the request names none (default the ceiling)
	MemoryCapCeil    int           // ceiling for per-job memory_cap words (default 1<<22)
	MaxDeadline      time.Duration // ceiling for per-job deadlines (default 2m)
	DefaultDeadline  time.Duration // when the request names none (default 30s)

	// Retain bounds how many finished jobs stay queryable through Job()
	// for status polling before the oldest are forgotten (default 256).
	Retain int

	// Options is the base option set every job runs under — the cache and
	// spill directories, progress interval and similar process-wide
	// configuration. Per-job budgets are appended after it and win.
	Options []fenceplace.Option
}

// withDefaults resolves the zero-value fields.
func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.MaxStatesCap <= 0 {
		c.MaxStatesCap = 1 << 21
	}
	if c.DefaultMaxStates <= 0 || c.DefaultMaxStates > c.MaxStatesCap {
		c.DefaultMaxStates = c.MaxStatesCap
	}
	if c.MemoryCapCeil <= 0 {
		c.MemoryCapCeil = 1 << 22
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.DefaultDeadline <= 0 || c.DefaultDeadline > c.MaxDeadline {
		c.DefaultDeadline = 30 * time.Second
		if c.DefaultDeadline > c.MaxDeadline {
			c.DefaultDeadline = c.MaxDeadline
		}
	}
	if c.Retain <= 0 {
		c.Retain = 256
	}
	return c
}

// Budget is the per-job resource envelope a submission may request; every
// field is clamped to the server's Config ceilings, never rejected, so a
// greedy client silently gets the house limits.
type Budget struct {
	MaxStates  int64 `json:"max_states,omitempty"`  // model-checker states per exploration
	MemoryCap  int   `json:"memory_cap,omitempty"`  // arena words (anchors the seen-set RAM budget)
	DeadlineMS int64 `json:"deadline_ms,omitempty"` // wall-clock budget for the whole job
}

// Request is one certification submission, as decoded off the wire.
// Exactly one of Program (inline textual IR), GoSource (restricted real-Go
// source, lowered by the frontend) and Corpus (a named corpus program,
// instantiated at Threads/Size like fencecheck -prog) must be set.
type Request struct {
	Program  string `json:"program,omitempty"`   // textual IR
	GoSource string `json:"go_source,omitempty"` // restricted real-Go source
	Corpus   string `json:"corpus,omitempty"`    // named corpus program
	Threads int    `json:"threads,omitempty"` // corpus instantiation (default 2)
	Size    int64  `json:"size,omitempty"`    // corpus instantiation (0 = reduced default)

	Strategy string   `json:"strategy,omitempty"` // pensieve | control | addresscontrol | all (default control)
	Entry    []string `json:"entry,omitempty"`    // litmus-style flat thread functions (default: main)

	Budget Budget `json:"budget,omitempty"`

	// ProgressMS tunes the exploration heartbeat interval streamed to
	// watchers (default 250ms, floor 10ms).
	ProgressMS int64 `json:"progress_ms,omitempty"`
}

// JobState is a job's lifecycle phase.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"      // finished with a report (verdicts inside the rows)
	StateFailed    JobState = "failed"    // finished with an error
	StateCancelled JobState = "cancelled" // claims hit zero or the drain deadline fired
)

// Job is one admitted certification: possibly shared by many coalesced
// submissions. All mutable state is guarded by the owning manager's lock;
// readers outside the package go through the accessor methods.
type Job struct {
	id  string
	key string

	m    *Manager
	spec jobSpec

	state    JobState
	claims   int
	ctx      context.Context // job lifetime; child of the manager's base ctx
	cancel   context.CancelFunc
	done     chan struct{}
	report   *corpus.Report
	err      error
	subs     map[chan fenceplace.ProgressEvent]struct{}
	created  time.Time
	started  time.Time
	finished time.Time
}

// jobSpec is a validated, clamped submission: everything a worker needs
// to run the job, fully resolved at admission time.
type jobSpec struct {
	name       string
	prog       *fenceplace.Program
	strategies []fenceplace.Strategy
	entry      []string
	maxStates  int64
	memoryCap  int
	deadline   time.Duration
	progressMS int64
}

// ID returns the job's identifier ("j-<seq>").
func (j *Job) ID() string { return j.id }

// Key returns the job's coalescing key (the baseline key plus the
// verdict-shaping knobs; see coalesceKey).
func (j *Job) Key() string { return j.key }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the job's current lifecycle phase.
func (j *Job) State() JobState {
	j.m.mu.Lock()
	defer j.m.mu.Unlock()
	return j.state
}

// Result returns the job's report and error; valid only after Done is
// closed (before that it returns nil, nil).
func (j *Job) Result() (*corpus.Report, error) {
	j.m.mu.Lock()
	defer j.m.mu.Unlock()
	return j.report, j.err
}

// Subscribe attaches a progress watcher: events published while the job
// runs are delivered on the returned channel (buffered; a slow watcher
// drops events rather than stalling the exploration). Detach releases the
// subscription. Subscribing to a finished job returns a channel that
// never fires — select on Done alongside it.
func (j *Job) Subscribe() (<-chan fenceplace.ProgressEvent, func()) {
	ch := make(chan fenceplace.ProgressEvent, 64)
	j.m.mu.Lock()
	if j.subs == nil {
		j.subs = make(map[chan fenceplace.ProgressEvent]struct{})
	}
	j.subs[ch] = struct{}{}
	j.m.mu.Unlock()
	var once sync.Once
	return ch, func() {
		once.Do(func() {
			j.m.mu.Lock()
			delete(j.subs, ch)
			j.m.mu.Unlock()
		})
	}
}

// publish fans one progress event out to the current subscribers,
// dropping to any watcher whose buffer is full: progress is advisory and
// must never backpressure the exploration.
func (j *Job) publish(ev fenceplace.ProgressEvent) {
	j.m.mu.Lock()
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	j.m.mu.Unlock()
}

// Claim is one submission's stake in a (possibly shared) job. Release
// drops it; releasing the last claim of an unfinished job cancels the job.
// Release is idempotent.
type Claim struct {
	job  *Job
	once sync.Once
}

// Job returns the claimed job.
func (c *Claim) Job() *Job { return c.job }

// Release drops the claim. When it was the job's last and the job has not
// finished, the job is cancelled — no waiter is left to want the result.
func (c *Claim) Release() {
	c.once.Do(func() {
		j := c.job
		j.m.mu.Lock()
		if j.claims > 0 { // clamp: a synthesized DELETE can race the auto-release
			j.claims--
		}
		cancel := j.claims == 0 && j.state != StateDone && j.state != StateFailed && j.state != StateCancelled
		j.m.mu.Unlock()
		if cancel {
			j.cancel()
		}
	})
}

// Manager is the job engine: admission, coalescing, the worker pool and
// the finished-job retention window. Create with NewManager, stop with
// Drain (graceful) or Close (immediate).
type Manager struct {
	cfg  Config
	opts []fenceplace.Option // cfg.Options, resolved once

	baseCtx    context.Context // parent of every job context; Close cancels it
	baseCancel context.CancelFunc

	mu       sync.Mutex
	byKey    map[string]*Job // queued + running jobs, by coalescing key
	byID     map[string]*Job // every retained job
	retained []string        // finished job IDs, oldest first, len <= cfg.Retain
	seq      int64
	draining bool
	closed   bool

	queue chan *Job
	wg    sync.WaitGroup // worker goroutines
}

// NewManager starts the worker pool and returns a ready manager.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		opts:       fenceplace.Resolved(cfg.Options...),
		baseCtx:    ctx,
		baseCancel: cancel,
		byKey:      make(map[string]*Job),
		byID:       make(map[string]*Job),
		queue:      make(chan *Job, cfg.QueueDepth),
	}
	m.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	return m
}

// Config returns the manager's resolved configuration (for /statusz).
func (m *Manager) Config() Config { return m.cfg }

// resolveStrategies parses the request's strategy word.
func resolveStrategies(s string) ([]fenceplace.Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "control":
		return []fenceplace.Strategy{fenceplace.Control}, nil
	case "pensieve":
		return []fenceplace.Strategy{fenceplace.PensieveOnly}, nil
	case "addresscontrol", "address+control", "ac":
		return []fenceplace.Strategy{fenceplace.AddressControl}, nil
	case "all":
		return []fenceplace.Strategy{
			fenceplace.PensieveOnly, fenceplace.AddressControl, fenceplace.Control,
		}, nil
	}
	return nil, fmt.Errorf("unknown strategy %q (valid: pensieve, control, addresscontrol, all)", s)
}

// buildSpec validates a request and resolves it into a runnable spec: the
// program is built, the strategy set parsed, and every budget clamped to
// the server ceilings.
func (m *Manager) buildSpec(req *Request) (*jobSpec, error) {
	set := 0
	for _, s := range []string{req.Program, req.GoSource, req.Corpus} {
		if s != "" {
			set++
		}
	}
	if set != 1 {
		return nil, errors.New("exactly one of \"program\" (inline IR), \"go_source\" (restricted Go) and \"corpus\" (named program) must be set")
	}
	spec := &jobSpec{entry: req.Entry}

	switch {
	case req.Corpus != "":
		meta := progs.ByName(req.Corpus)
		if meta == nil {
			names := progs.Names()
			sort.Strings(names)
			return nil, fmt.Errorf("unknown corpus program %q (valid: %s)", req.Corpus, strings.Join(names, ", "))
		}
		pp := meta.Defaults
		if req.Threads > 0 {
			pp.Threads = req.Threads
		} else {
			pp.Threads = 2
		}
		if req.Size > 0 {
			pp.Size = req.Size
		} else if pp.Size > 2 {
			// Exhaustive certification needs small instantiations, like
			// fencecheck's default reduction.
			pp.Size = 2
		}
		spec.name = req.Corpus
		spec.prog = meta.Build(pp)
	case req.GoSource != "":
		// Lowering is canonical, so byte-different Go sources of the same
		// program coalesce for free: coalesceKey hashes the lowered IR.
		p, err := fenceplace.ParseGo("request.go", []byte(req.GoSource))
		if err != nil {
			return nil, fmt.Errorf("go_source: %w", err)
		}
		spec.name = p.Name
		if spec.name == "" {
			spec.name = "submitted"
		}
		spec.prog = p
	default:
		p, err := fenceplace.Parse(req.Program)
		if err != nil {
			return nil, fmt.Errorf("program: %w", err)
		}
		spec.name = p.Name
		if spec.name == "" {
			spec.name = "submitted"
		}
		spec.prog = p
	}

	var err error
	if spec.strategies, err = resolveStrategies(req.Strategy); err != nil {
		return nil, err
	}

	// Clamp, never reject: the server's ceilings are the contract.
	spec.maxStates = req.Budget.MaxStates
	if spec.maxStates <= 0 {
		spec.maxStates = m.cfg.DefaultMaxStates
	} else if spec.maxStates > m.cfg.MaxStatesCap {
		spec.maxStates = m.cfg.MaxStatesCap
	}
	spec.memoryCap = req.Budget.MemoryCap
	if spec.memoryCap <= 0 {
		spec.memoryCap = m.cfg.MemoryCapCeil
	} else if spec.memoryCap > m.cfg.MemoryCapCeil {
		spec.memoryCap = m.cfg.MemoryCapCeil
	}
	d := time.Duration(req.Budget.DeadlineMS) * time.Millisecond
	if d <= 0 {
		d = m.cfg.DefaultDeadline
	} else if d > m.cfg.MaxDeadline {
		d = m.cfg.MaxDeadline
	}
	spec.deadline = d
	spec.progressMS = req.ProgressMS
	if spec.progressMS > 0 && spec.progressMS < 10 {
		spec.progressMS = 10
	}
	return spec, nil
}

// coalesceKey derives the single-flight identity of a spec. The dominant
// component is mc.BaselineKey — the canonical content hash of the program,
// entry configuration and semantic exploration parameters the persistent
// store files baselines under — extended with every remaining knob that
// can change the response: the strategy set (it selects which variants
// are analyzed and certified) and the clamped state budget and deadline
// (they decide whether a verdict or a truncation comes back). Two
// submissions with equal keys are answer-equivalent by construction, so
// sharing one job can never serve either of them the wrong rows.
func coalesceKey(spec *jobSpec) string {
	cert := fenceplace.CertOptions{
		MaxStates: spec.maxStates,
		MemoryCap: spec.memoryCap,
	}
	key := mc.BaselineKey(spec.prog, spec.entry, cert.MCConfig())
	var sb strings.Builder
	sb.WriteString(key.String())
	for _, s := range spec.strategies {
		fmt.Fprintf(&sb, "|%d", int(s))
	}
	fmt.Fprintf(&sb, "|ms%d|dl%d", spec.maxStates, spec.deadline/time.Millisecond)
	return sb.String()
}

// Submit validates and admits a request. The returned claim is the
// caller's stake in the job — release it when no longer interested (the
// job dies with its last claim). coalesced reports whether the submission
// joined an already in-flight identical job instead of enqueuing a new
// one. Admission failures: ErrDraining after Drain/SIGTERM, ErrQueueFull
// when the bounded queue is at capacity (back off and retry), or a
// validation error describing the bad request.
func (m *Manager) Submit(req *Request) (claim *Claim, coalesced bool, err error) {
	spec, err := m.buildSpec(req)
	if err != nil {
		return nil, false, err
	}
	key := coalesceKey(spec)

	m.mu.Lock()
	if m.draining || m.closed {
		m.mu.Unlock()
		return nil, false, ErrDraining
	}
	// Coalesce onto an identical in-flight job — unless that job is already
	// dying (its last waiter just left): joining a cancelled exploration
	// would hand this submission a result nobody computed.
	if j := m.byKey[key]; j != nil && j.ctx.Err() == nil {
		j.claims++
		m.mu.Unlock()
		mCoalesced.Inc(0)
		mSubmitted.Inc(0)
		return &Claim{job: j}, true, nil
	}
	m.seq++
	j := &Job{
		id:      fmt.Sprintf("j-%06d", m.seq),
		key:     key,
		m:       m,
		spec:    *spec,
		state:   StateQueued,
		claims:  1,
		done:    make(chan struct{}),
		created: time.Now(),
	}
	j.ctx, j.cancel = context.WithCancel(m.baseCtx)
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		j.cancel()
		mRejected.Inc(0)
		return nil, false, ErrQueueFull
	}
	m.byKey[key] = j
	m.byID[j.id] = j
	gQueueDepth.Set(0, int64(len(m.queue)))
	gInflight.Add(0, 1)
	m.mu.Unlock()
	mSubmitted.Inc(0)
	return &Claim{job: j}, false, nil
}

// Job returns a retained or in-flight job by ID.
func (m *Manager) Job(id string) *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byID[id]
}

// Stats is the manager's live job accounting (for /statusz).
type Stats struct {
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Retained int `json:"retained"` // finished jobs still queryable
}

// Stats counts the current jobs by phase.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s Stats
	for _, j := range m.byKey {
		if j.state == StateQueued {
			s.Queued++
		} else {
			s.Running++
		}
	}
	s.Retained = len(m.retained)
	return s
}

// worker is one pool goroutine: it drains the admission queue until the
// queue closes (Drain) or the base context dies (Close).
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runJob(j)
	}
}

// runJob executes one job end to end and resolves its waiters.
func (m *Manager) runJob(j *Job) {
	if j.ctx.Err() != nil { // cancelled while queued (waiters gone, or hard stop)
		m.finish(j, nil, context.Canceled)
		return
	}
	m.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	gQueueDepth.Set(0, int64(len(m.queue)))
	m.mu.Unlock()
	mStarted.Inc(0)

	ctx, cancelTimeout := context.WithTimeout(j.ctx, j.spec.deadline)
	defer cancelTimeout()

	opts := append([]fenceplace.Option{}, m.opts...)
	opts = append(opts,
		fenceplace.WithMaxStates(j.spec.maxStates),
		fenceplace.WithMemoryCap(j.spec.memoryCap),
		fenceplace.WithProgress(j.publish),
	)
	if m.cfg.JobWorkers > 0 {
		opts = append(opts, fenceplace.WithWorkers(m.cfg.JobWorkers))
	}
	if j.spec.progressMS > 0 {
		opts = append(opts, fenceplace.WithProgressInterval(time.Duration(j.spec.progressMS)*time.Millisecond))
	}

	runner := corpus.Runner{
		Strategies: j.spec.strategies,
		Certify:    true,
		Threads:    j.spec.entry,
		Workers:    1, // one program per job; parallelism lives in the exploration
		Options:    opts,
	}
	rep, err := runner.Run(ctx, corpus.SingleSource(j.spec.name, j.spec.prog, nil))
	m.finish(j, rep, err)
}

// finish records a job's terminal state, publishes the verdict metrics,
// removes it from the in-flight index and trims the retention window.
func (m *Manager) finish(j *Job, rep *corpus.Report, err error) {
	m.mu.Lock()
	j.report, j.err = rep, err
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
	case errors.Is(err, context.Canceled):
		j.state = StateCancelled
	default:
		j.state = StateFailed
	}
	// A dying job may have been superseded in byKey by a fresh submission
	// with the same key; only remove the mapping if it is still ours.
	if m.byKey[j.key] == j {
		delete(m.byKey, j.key)
	}
	gInflight.Add(0, -1)
	m.retained = append(m.retained, j.id)
	for len(m.retained) > m.cfg.Retain {
		delete(m.byID, m.retained[0])
		m.retained = m.retained[1:]
	}
	state := j.state
	m.mu.Unlock()

	switch state {
	case StateDone:
		mDone.Inc(0)
		countVerdicts(rep)
	case StateCancelled:
		mCancelled.Inc(0)
	default:
		mFailed.Inc(0)
	}
	j.cancel() // release the job context's resources
	close(j.done)
}

// countVerdicts folds a finished report's certification cells into the
// per-verdict counters.
func countVerdicts(rep *corpus.Report) {
	for _, row := range rep.Rows {
		for _, v := range row.Variants {
			if v.Cert == nil {
				continue
			}
			switch v.Cert.Status {
			case corpus.CertCertified:
				mVerdictCert.Inc(0)
			case corpus.CertViolation:
				mVerdictViol.Inc(0)
			case corpus.CertBudget:
				mVerdictBudg.Inc(0)
			default:
				mVerdictErr.Inc(0)
			}
		}
	}
}

// Draining reports whether the manager has stopped admitting work.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Drain stops admission and waits for in-flight jobs: every queued and
// running job may finish normally until ctx expires, after which the
// stragglers are cancelled and awaited. Drain returns nil when everything
// finished in time and ctx's error otherwise; either way the pool is down
// and no job is left running when it returns.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.draining = true
	m.closed = true
	close(m.queue) // workers exit once the backlog is gone
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Past the drain deadline: cancel everything still in flight. The
		// base context is the parent of every job context, so one cancel
		// reaches all workers; the queue backlog drains as instant
		// cancellations.
		m.baseCancel()
		<-done
		return ctx.Err()
	}
}

// Close is an immediate Drain: in-flight jobs are cancelled rather than
// awaited. Safe to call after Drain.
func (m *Manager) Close() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = m.Drain(ctx)
	m.baseCancel()
}
