package service

// The HTTP/JSON surface over the job manager. Endpoints:
//
//	POST   /v1/jobs             submit; ?wait=1 blocks for the result,
//	                            ?stream=1 streams progress + result
//	                            (NDJSON, or SSE under Accept: text/event-stream)
//	GET    /v1/jobs/{id}        status snapshot (+ result when finished)
//	GET    /v1/jobs/{id}/stream watch a job's progress without claiming it
//	DELETE /v1/jobs/{id}        release the async submission's claim
//	GET    /healthz             liveness ("ok", 503 once draining)
//	GET    /statusz             build info, config, job stats, store
//	                            snapshot, degradation gauge, metrics
//
// Claim semantics mirror the manager's: an async submission's claim lives
// until the job finishes or a DELETE releases it; a ?wait/?stream
// submission's claim lives exactly as long as the request — a client that
// disconnects mid-exploration releases it, cancelling the job unless
// other coalesced waiters remain.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"fenceplace"
	"fenceplace/corpus"
	"fenceplace/internal/buildinfo"
	"fenceplace/internal/store"
	"fenceplace/internal/telemetry"
)

// Server glues the manager to an http.Handler. Build with NewServer,
// mount Handler on any mux or http.Server.
type Server struct {
	m     *Manager
	mux   *http.ServeMux
	start time.Time

	// RetryAfter is the hint returned with 429 when the admission queue is
	// full (default 1s).
	RetryAfter time.Duration

	// CacheDir, when non-empty, lets /statusz include the baseline store's
	// snapshot for that directory.
	CacheDir string
}

// NewServer wraps a manager with the HTTP surface.
func NewServer(m *Manager) *Server {
	s := &Server{m: m, mux: http.NewServeMux(), start: time.Now(), RetryAfter: time.Second}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleWatch)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statusz", s.handleStatusz)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Manager returns the underlying job manager.
func (s *Server) Manager() *Manager { return s.m }

// errorDoc is the uniform error body.
type errorDoc struct {
	Error string `json:"error"`
}

// jobDoc is the uniform job representation: status endpoints and final
// stream events alike serialize it, so every consumer parses one shape.
type jobDoc struct {
	ID        string         `json:"id"`
	State     JobState       `json:"state"`
	Coalesced bool           `json:"coalesced,omitempty"` // this submission joined an in-flight job
	Program   string         `json:"program,omitempty"`
	ElapsedMS int64          `json:"elapsed_ms,omitempty"`
	Report    *corpus.Report `json:"report,omitempty"`
	Error     string         `json:"error,omitempty"`
}

// snapshotJob renders a job's current state (result included once done).
func snapshotJob(j *Job, coalesced bool) jobDoc {
	j.m.mu.Lock()
	doc := jobDoc{
		ID:        j.id,
		State:     j.state,
		Coalesced: coalesced,
		Program:   j.spec.name,
	}
	rep, err := j.report, j.err
	switch j.state {
	case StateDone, StateFailed, StateCancelled:
		doc.ElapsedMS = j.finished.Sub(j.created).Milliseconds()
	default:
		doc.ElapsedMS = time.Since(j.created).Milliseconds()
	}
	j.m.mu.Unlock()
	doc.Report = rep
	if err != nil {
		doc.Error = err.Error()
	}
	return doc
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError maps a submission error onto its status code.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	switch {
	case err == ErrQueueFull:
		w.Header().Set("Retry-After", strconv.Itoa(int((s.RetryAfter+time.Second-1)/time.Second)))
		writeJSON(w, http.StatusTooManyRequests, errorDoc{Error: err.Error()})
	case err == ErrDraining:
		writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
	}
}

// handleSubmit admits a request and answers in the mode the query
// selects: async (202 + job id), wait (block, then the final jobDoc), or
// stream (progress events, then the final jobDoc).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: "request body: " + err.Error()})
		return
	}
	claim, coalesced, err := s.m.Submit(&req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	j := claim.Job()

	q := r.URL.Query()
	switch {
	case isSet(q.Get("stream")):
		s.streamJob(w, r, j, claim, coalesced)
	case isSet(q.Get("wait")):
		defer claim.Release() // disconnect or completion: either way this waiter is done
		select {
		case <-j.Done():
			writeJSON(w, http.StatusOK, snapshotJob(j, coalesced))
		case <-r.Context().Done():
			// The client went away; Release (deferred) cancels the job if it
			// was the last waiter. Nothing useful can be written.
		}
	default:
		// Async: the claim lives until the job finishes (or a DELETE). Tie
		// its release to completion so claims never leak.
		go func() {
			<-j.Done()
			claim.Release()
		}()
		writeJSON(w, http.StatusAccepted, snapshotJob(j, coalesced))
	}
}

// isSet interprets a query flag ("1", "true", "yes" — anything but empty,
// "0" and "false").
func isSet(v string) bool {
	switch strings.ToLower(v) {
	case "", "0", "false", "no":
		return false
	}
	return true
}

// handleStatus is the status poll: the job's current jobDoc.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.m.Job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "no such job (finished jobs are retained only briefly)"})
		return
	}
	writeJSON(w, http.StatusOK, snapshotJob(j, false))
}

// handleWatch streams an existing job's progress without holding a claim:
// a pure observer whose disconnect never cancels anything.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	j := s.m.Job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "no such job"})
		return
	}
	s.streamJob(w, r, j, nil, false)
}

// handleCancel releases the async submission's claim: the job is
// cancelled if this was its last claim, and untouched while coalesced
// waiters remain. Finished jobs are unaffected.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.m.Job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "no such job"})
		return
	}
	// Synthesize a claim release against the job. Claims are counters, not
	// identities, so "one DELETE releases one claim" is exactly the
	// decrement the async submit left outstanding.
	(&Claim{job: j}).Release()
	writeJSON(w, http.StatusOK, snapshotJob(j, false))
}

// streamEvent is one line of a progress stream. Exactly one of Progress
// and Job is set; the Job event is final.
type streamEvent struct {
	Kind string `json:"kind"` // "progress" | "row" | "done"

	// Exploration heartbeats and row completions:
	Program      string  `json:"program,omitempty"`
	Mode         string  `json:"mode,omitempty"`
	States       int64   `json:"states,omitempty"`
	StatesPerSec float64 `json:"states_per_sec,omitempty"`
	Frontier     int64   `json:"frontier,omitempty"`
	ElapsedMS    int64   `json:"elapsed_ms,omitempty"`
	Final        bool    `json:"final,omitempty"`

	// The closing event (kind "done"):
	Job *jobDoc `json:"job,omitempty"`
}

// eventOf converts a facade progress event to its wire form.
func eventOf(ev fenceplace.ProgressEvent) streamEvent {
	kind := "progress"
	if ev.Kind == fenceplace.ProgressRow {
		kind = "row"
	}
	return streamEvent{
		Kind:         kind,
		Program:      ev.Program,
		Mode:         ev.Mode,
		States:       ev.States,
		StatesPerSec: ev.StatesPerSec,
		Frontier:     ev.Frontier,
		ElapsedMS:    ev.Elapsed.Milliseconds(),
		Final:        ev.Final,
	}
}

// streamJob writes a job's progress events until it finishes, then the
// final jobDoc, as NDJSON (default) or SSE (Accept: text/event-stream).
// claim, when non-nil, is released on client disconnect — the coalescing
// rules decide whether that cancels the job.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, j *Job, claim *Claim, coalesced bool) {
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	writeEvent := func(ev streamEvent) {
		b, err := json.Marshal(ev)
		if err != nil {
			return
		}
		if sse {
			fmt.Fprintf(w, "data: %s\n\n", b)
		} else {
			w.Write(b)
			w.Write([]byte{'\n'})
		}
		if flusher != nil {
			flusher.Flush()
		}
	}

	sub, detach := j.Subscribe()
	defer detach()
	if claim != nil {
		defer claim.Release()
	}

	for {
		select {
		case ev := <-sub:
			writeEvent(eventOf(ev))
		case <-j.Done():
			// Drain whatever the subscription buffered before the close so
			// the final exploration totals are not lost.
			for {
				select {
				case ev := <-sub:
					writeEvent(eventOf(ev))
					continue
				default:
				}
				break
			}
			doc := snapshotJob(j, coalesced)
			writeEvent(streamEvent{Kind: "done", Job: &doc})
			return
		case <-r.Context().Done():
			return
		}
	}
}

// handleHealthz is the liveness probe: 200 "ok" while accepting, 503 once
// draining.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.m.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// statuszDoc is the /statusz body: enough to see at a glance what build
// is running, how loaded it is, and whether it has degraded.
type statuszDoc struct {
	Version   string    `json:"version"`
	Commit    string    `json:"commit,omitempty"`
	BuiltFrom string    `json:"commit_time,omitempty"`
	Go        string    `json:"go"`
	StartedAt time.Time `json:"started_at"`
	UptimeMS  int64     `json:"uptime_ms"`

	Workers      int    `json:"workers"`
	QueueDepth   int    `json:"queue_capacity"`
	MaxStatesCap int64  `json:"max_states_cap"`
	MemoryCapCap int    `json:"memory_cap_cap"`
	MaxDeadline  string `json:"max_deadline"`
	Draining     bool   `json:"draining"`

	Jobs Stats `json:"jobs"`

	// DegradedMode is the store package's process-wide degradation rung:
	// 0 healthy, higher rungs mean the process has fallen back (uncached
	// certification, seal-in-RAM, truncation). Monotonic per process.
	DegradedMode int `json:"degraded_mode"`

	// Store is the baseline store's snapshot when the server runs with a
	// cache directory.
	Store *telemetry.Snapshot `json:"store,omitempty"`

	// Metrics is the process-wide telemetry snapshot (service.*, mc.*,
	// store.* families).
	Metrics telemetry.Snapshot `json:"metrics"`
}

// handleStatusz renders the introspection document.
func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	bi := buildinfo.Read()
	cfg := s.m.Config()
	doc := statuszDoc{
		Version:      buildinfo.String(),
		Commit:       bi.Commit,
		BuiltFrom:    bi.CommitTime,
		Go:           bi.Go,
		StartedAt:    s.start,
		UptimeMS:     time.Since(s.start).Milliseconds(),
		Workers:      cfg.Workers,
		QueueDepth:   cfg.QueueDepth,
		MaxStatesCap: cfg.MaxStatesCap,
		MemoryCapCap: cfg.MemoryCapCeil,
		MaxDeadline:  cfg.MaxDeadline.String(),
		Draining:     s.m.Draining(),
		Jobs:         s.m.Stats(),
		DegradedMode: store.DegradedMode(),
		Metrics:      telemetry.Default().Snapshot(),
	}
	if s.CacheDir != "" {
		if st, err := store.Open(s.CacheDir); err == nil {
			snap := st.Snapshot()
			doc.Store = &snap
		}
	}
	writeJSON(w, http.StatusOK, doc)
}
