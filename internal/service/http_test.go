package service

// HTTP surface tests: submission modes (async / wait / stream), streamed
// progress heartbeats, coalesced waiters over the wire, status codes for
// backpressure and drain, and the introspection endpoints.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fenceplace/corpus"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	m := newTestManager(t, cfg)
	s := NewServer(m)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestHTTPWaitSubmit: a blocking submission returns the finished jobDoc
// with the certification rows inline.
func TestHTTPWaitSubmit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/jobs?wait=1", `{"corpus":"dekker","strategy":"control"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var doc jobDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	if doc.State != StateDone || doc.Report == nil {
		t.Fatalf("doc = %+v, want done with a report", doc)
	}
	if st := doc.Report.Rows[0].Variants[0].Cert.Status; st != corpus.CertCertified {
		t.Errorf("verdict = %q, want %q", st, corpus.CertCertified)
	}
}

// TestHTTPAsyncLifecycle: async submit returns 202 immediately; the
// status endpoint converges on the finished job with its report.
func TestHTTPAsyncLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/jobs", `{"corpus":"peterson"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var doc jobDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.ID == "" {
		t.Fatalf("202 body without a job id: %s", body)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + doc.ID)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var cur jobDoc
		if err := json.Unmarshal(b, &cur); err != nil {
			t.Fatalf("%v in %s", err, b)
		}
		if cur.State == StateDone {
			if cur.Report == nil {
				t.Fatalf("done without report: %s", b)
			}
			break
		}
		if cur.State == StateFailed || cur.State == StateCancelled {
			t.Fatalf("job ended %s: %s", cur.State, b)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", cur.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if resp, _ := http.Get(ts.URL + "/v1/jobs/j-999999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job id: status %d, want 404", resp.StatusCode)
	}
}

// TestHTTPStreamedProgress is the streaming satellite: a ?stream=1
// submission yields at least one exploration heartbeat (mc publishes a
// synchronous final event per exploration, so even fast jobs heartbeat)
// followed by a closing "done" event carrying the full jobDoc.
func TestHTTPStreamedProgress(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/jobs?stream=1", "application/json",
		strings.NewReader(`{"corpus":"dekker","progress_ms":10}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var progress, rows int
	var final *streamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("%v in line %q", err, sc.Text())
		}
		switch ev.Kind {
		case "progress":
			progress++
			if ev.Mode != "SC" && ev.Mode != "TSO" {
				t.Errorf("heartbeat with mode %q", ev.Mode)
			}
		case "row":
			rows++
		case "done":
			final = &ev
		default:
			t.Errorf("unknown stream event kind %q", ev.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if progress < 1 {
		t.Errorf("stream carried %d heartbeats, want >= 1", progress)
	}
	if final == nil || final.Job == nil {
		t.Fatal("stream ended without a done event")
	}
	if final.Job.State != StateDone || final.Job.Report == nil {
		t.Errorf("final event job = %+v, want done with report", final.Job)
	}
}

// TestHTTPStreamSSE: under Accept: text/event-stream the same stream
// comes back as server-sent events.
func TestHTTPStreamSSE(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs?stream=1",
		strings.NewReader(`{"corpus":"dekker"}`))
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(body, []byte("data: ")) || !bytes.Contains(body, []byte(`"kind":"done"`)) {
		t.Errorf("SSE body missing data frames or the done event:\n%s", body)
	}
}

// TestHTTPStreamDisconnectCancels: a streaming client that goes away is
// the job's only waiter, so the job is cancelled instead of burning the
// pool for nobody.
func TestHTTPStreamDisconnectCancels(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxStatesCap: 1 << 26})
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/jobs?stream=1",
		strings.NewReader(`{"corpus":"szymanski","budget":{"max_states":67108864},"progress_ms":10}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first heartbeat so the exploration is demonstrably
	// running, then drop the connection.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first event: %v", sc.Err())
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(15 * time.Second)
	for {
		st := s.Manager().Stats()
		if st.Queued == 0 && st.Running == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still in flight %v after its only client disconnected", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := mCancelled.Value(); got < 1 {
		t.Errorf("service.jobs_cancelled = %d, want >= 1", got)
	}
}

// TestHTTPCoalescedWaiters: N concurrent identical ?wait=1 requests all
// succeed and carry byte-identical report rows; all but one are marked
// coalesced. A blocker occupies the single worker so the N requests
// demonstrably overlap.
func TestHTTPCoalescedWaiters(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxStatesCap: 1 << 26})

	blockCtx, unblock := context.WithCancel(context.Background())
	blockReq, _ := http.NewRequestWithContext(blockCtx, "POST", ts.URL+"/v1/jobs?stream=1",
		strings.NewReader(`{"corpus":"szymanski","budget":{"max_states":67108864},"progress_ms":10}`))
	blockResp, err := http.DefaultClient.Do(blockReq)
	if err != nil {
		t.Fatal(err)
	}
	bsc := bufio.NewScanner(blockResp.Body)
	if !bsc.Scan() { // first heartbeat: the worker is pinned
		t.Fatalf("blocker stream empty: %v", bsc.Err())
	}

	const N = 4
	type result struct {
		doc jobDoc
		raw json.RawMessage
		err error
	}
	results := make([]result, N)
	var wg sync.WaitGroup
	wg.Add(N)
	for i := 0; i < N; i++ {
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json",
				strings.NewReader(`{"corpus":"dekker"}`))
			if err != nil {
				results[i].err = err
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				results[i].err = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				results[i].err = fmt.Errorf("status %d: %s", resp.StatusCode, b)
				return
			}
			var doc struct {
				jobDoc
				Report json.RawMessage `json:"report"`
			}
			if err := json.Unmarshal(b, &doc); err != nil {
				results[i].err = fmt.Errorf("%v in %s", err, b)
				return
			}
			results[i].doc = doc.jobDoc
			results[i].raw = doc.Report
		}(i)
	}

	// Give the waiters a moment to all reach the manager, then free the
	// worker by disconnecting the blocker.
	time.Sleep(300 * time.Millisecond)
	unblock()
	blockResp.Body.Close()
	wg.Wait()

	var coalesced int
	sameJob := true
	for i := range results {
		if results[i].err != nil {
			t.Fatalf("waiter %d: %v", i, results[i].err)
		}
		if results[i].doc.State != StateDone {
			t.Fatalf("waiter %d state = %s", i, results[i].doc.State)
		}
		if results[i].doc.Coalesced {
			coalesced++
		}
		if results[i].doc.ID != results[0].doc.ID {
			sameJob = false
		}
		if !bytes.Equal(results[i].raw, results[0].raw) {
			t.Errorf("waiter %d rows differ:\n%s\nvs\n%s", i, results[i].raw, results[0].raw)
		}
	}
	// All N landing on one job is the expected steady state; the first one
	// in is not "coalesced".
	if sameJob && coalesced != N-1 {
		t.Errorf("%d of %d waiters marked coalesced on the shared job, want %d", coalesced, N, N-1)
	}
}

// TestHTTPBackpressure: a full queue answers 429 with Retry-After.
func TestHTTPBackpressure(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, MaxStatesCap: 1 << 26})

	blockCtx, unblock := context.WithCancel(context.Background())
	defer unblock()
	blockReq, _ := http.NewRequestWithContext(blockCtx, "POST", ts.URL+"/v1/jobs?stream=1",
		strings.NewReader(`{"corpus":"szymanski","budget":{"max_states":67108864},"progress_ms":10}`))
	blockResp, err := http.DefaultClient.Do(blockReq)
	if err != nil {
		t.Fatal(err)
	}
	defer blockResp.Body.Close()
	bsc := bufio.NewScanner(blockResp.Body)
	if !bsc.Scan() {
		t.Fatalf("blocker stream empty: %v", bsc.Err())
	}

	if resp, body := postJSON(t, ts.URL+"/v1/jobs", `{"corpus":"dekker","budget":{"max_states":1001}}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued submission: status %d: %s", resp.StatusCode, body)
	}
	resp, body := postJSON(t, ts.URL+"/v1/jobs", `{"corpus":"dekker","budget":{"max_states":1002}}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submission: status %d, want 429 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

// TestHTTPValidationErrors: malformed submissions come back 400 with a
// descriptive error body.
func TestHTTPValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for body, want := range map[string]string{
		`{}`:                         "exactly one of",
		`{"corpus":"nope"}`:          "unknown corpus",
		`{"corpus":"dekker","x":1}`:  "unknown field",
		`not json`:                   "request body",
		`{"program":"garbage here"}`: "program:",
	} {
		resp, b := postJSON(t, ts.URL+"/v1/jobs", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s: status %d, want 400", body, resp.StatusCode)
			continue
		}
		var doc errorDoc
		if err := json.Unmarshal(b, &doc); err != nil || !strings.Contains(doc.Error, want) {
			t.Errorf("POST %s: error %q, want substring %q", body, doc.Error, want)
		}
	}
}

// TestHTTPInlineProgram: the inline-IR submission path end to end, using
// the textual format fenceplace.Parse accepts.
func TestHTTPInlineProgram(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	prog := `program sb
global x 1
global y 1
global s0 1
global s1 1
main main

func t0 params=0 regs=2 {
entry:
  r0 = const 1
  store x, r0
  r1 = load y
  store s0, r1
  ret
}

func t1 params=0 regs=2 {
entry:
  r0 = const 1
  store y, r0
  r1 = load x
  store s1, r1
  ret
}

func main params=0 regs=2 {
entry:
  r0 = spawn t0()
  r1 = spawn t1()
  join r0
  join r1
  ret
}
`
	req := Request{Program: prog}
	body, _ := json.Marshal(req)
	resp, b := postJSON(t, ts.URL+"/v1/jobs?wait=1", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var doc jobDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.State != StateDone || doc.Report == nil {
		t.Fatalf("doc = %+v, want done with report", doc)
	}
}

// TestHTTPHealthAndStatusz: /healthz flips 200 -> 503 across a drain, and
// /statusz carries build identity, config ceilings and the metric
// families the CI smoke asserts on.
func TestHTTPHealthAndStatusz(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxStatesCap: 4242})
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("/healthz: %d %q", resp.StatusCode, body)
	}

	resp, body = get(t, ts.URL+"/statusz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/statusz: %d", resp.StatusCode)
	}
	var doc struct {
		Version      string `json:"version"`
		Go           string `json:"go"`
		MaxStatesCap int64  `json:"max_states_cap"`
		Draining     bool   `json:"draining"`
		DegradedMode *int   `json:"degraded_mode"`
		Metrics      struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	if doc.Version == "" || doc.Go == "" {
		t.Errorf("statusz missing build identity: %s", body)
	}
	if doc.MaxStatesCap != 4242 {
		t.Errorf("statusz max_states_cap = %d, want 4242", doc.MaxStatesCap)
	}
	if doc.DegradedMode == nil {
		t.Error("statusz missing degraded_mode")
	}
	if _, ok := doc.Metrics.Counters["mc.worker_panics"]; !ok {
		t.Errorf("statusz metrics missing mc.worker_panics (CI smoke asserts on it): %s", body)
	}

	if err := s.Manager().Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/healthz while draining: %d, want 503", resp.StatusCode)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/jobs", `{"corpus":"dekker"}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: %d (%s), want 503", resp.StatusCode, body)
	}
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}
