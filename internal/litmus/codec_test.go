package litmus

// The baseline codec round-tripped over the whole litmus corpus: every
// test's SC baseline must survive encode → decode bit-exactly (outcome
// set and visit count), and its canonical store key must be stable across
// repeated derivations — the invariants the persistent certification
// store (internal/store) rests on.

import (
	"reflect"
	"testing"

	"fenceplace/internal/mc"
)

func TestBaselineCodecRoundTripCorpus(t *testing.T) {
	for _, lt := range All() {
		lt := lt
		t.Run(lt.Name, func(t *testing.T) {
			t.Parallel()
			base, err := mc.NewBaseline(lt.Prog, lt.Threads, mc.Config{})
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			data, err := base.MarshalBinary()
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			got, err := mc.UnmarshalBaseline(lt.Prog, lt.Threads, mc.Config{}, data)
			if err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			if got.SC.Visited != base.SC.Visited {
				t.Errorf("visited %d after round trip, want %d", got.SC.Visited, base.SC.Visited)
			}
			if !reflect.DeepEqual(got.SC.Outcomes, base.SC.Outcomes) {
				t.Errorf("outcome set changed across the round trip:\ngot  %v\nwant %v",
					got.SC.Keys(), base.SC.Keys())
			}

			// The store key must not depend on search-shaping parameters,
			// or identical corpora explored with different budgets or
			// worker counts would never share entries.
			k1 := mc.BaselineKey(lt.Prog, lt.Threads, mc.Config{})
			k2 := mc.BaselineKey(lt.Prog, lt.Threads, mc.Config{Workers: 2, MaxStates: 1 << 19})
			if k1 != k2 {
				t.Errorf("store key unstable under search-shaping config: %s vs %s", k1, k2)
			}
		})
	}
}
