package litmus

import (
	"errors"
	"sort"
	"testing"

	"fenceplace/internal/mc"
	"fenceplace/internal/tso"
)

func TestSuiteVerdicts(t *testing.T) {
	for _, lt := range All() {
		lt := lt
		t.Run(lt.Name, func(t *testing.T) {
			t.Parallel()
			if err := lt.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSuiteCoversTheRelaxationSurface(t *testing.T) {
	// Exactly one test (unfenced SB) may show a non-SC outcome under TSO:
	// that is TSO's entire relaxation surface and the basis of the paper's
	// w→r-only fencing policy.
	relaxed := 0
	for _, lt := range All() {
		if lt.AllowedTSO && !lt.AllowedSC {
			relaxed++
			if lt.Name != "SB" {
				t.Errorf("unexpected TSO-relaxed test %s", lt.Name)
			}
		}
	}
	if relaxed != 1 {
		t.Fatalf("%d TSO-relaxed tests, want exactly 1 (SB)", relaxed)
	}
}

// TestModelCheckerAgreesWithLegacyExplorer keeps tso.Explore as the
// differential oracle for the new engine: on every litmus test and under
// both memory models, the reachable final-state sets must be identical.
func TestModelCheckerAgreesWithLegacyExplorer(t *testing.T) {
	for _, lt := range All() {
		for _, mode := range []tso.Mode{tso.TSO, tso.SC} {
			legacy, err := tso.Explore(lt.Prog, lt.Threads, tso.ExploreConfig{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			if legacy.Truncated {
				t.Fatalf("%s/%s: legacy exploration truncated", lt.Name, mode)
			}
			checked, err := lt.Explore(mode)
			if err != nil {
				t.Fatal(err)
			}
			want := sortedKeys(legacy.Outcomes)
			got := sortedKeys(checked.Outcomes)
			if len(want) != len(got) {
				t.Fatalf("%s/%s: %d outcomes vs legacy %d\n got %v\nwant %v", lt.Name, mode, len(got), len(want), got, want)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%s/%s: outcome sets differ\n got %v\nwant %v", lt.Name, mode, got, want)
				}
			}
		}
	}
}

func sortedKeys(m map[string][]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestTruncationSurfacesAsError pins the verdict-soundness rule: a litmus
// check whose exploration blows its state budget must fail loudly instead
// of reporting "outcome not observed".
func TestTruncationSurfacesAsError(t *testing.T) {
	lt := All()[0]
	res, err := mc.Explore(lt.Prog, lt.Threads, mc.Config{Mode: tso.TSO, MaxStates: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("tiny budget did not truncate")
	}
	// The package-level path must convert Truncated into an error.
	if _, err := (&Test{Name: lt.Name, Prog: lt.Prog, Threads: lt.Threads, Outcome: lt.Outcome}).observedBudget(tso.TSO, 2); !errors.Is(err, mc.ErrTruncated) {
		t.Fatalf("truncated verdict returned %v, want mc.ErrTruncated", err)
	}
}

func TestObservedAgreesWithExploration(t *testing.T) {
	sbTest := All()[0]
	got, err := sbTest.Observed(tso.TSO)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("SB outcome not observed under TSO")
	}
	got, err = sbTest.Observed(tso.SC)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("SB outcome observed under SC")
	}
}
