package litmus

import (
	"testing"

	"fenceplace/internal/tso"
)

func TestSuiteVerdicts(t *testing.T) {
	for _, lt := range All() {
		lt := lt
		t.Run(lt.Name, func(t *testing.T) {
			t.Parallel()
			if err := lt.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSuiteCoversTheRelaxationSurface(t *testing.T) {
	// Exactly one test (unfenced SB) may show a non-SC outcome under TSO:
	// that is TSO's entire relaxation surface and the basis of the paper's
	// w→r-only fencing policy.
	relaxed := 0
	for _, lt := range All() {
		if lt.AllowedTSO && !lt.AllowedSC {
			relaxed++
			if lt.Name != "SB" {
				t.Errorf("unexpected TSO-relaxed test %s", lt.Name)
			}
		}
	}
	if relaxed != 1 {
		t.Fatalf("%d TSO-relaxed tests, want exactly 1 (SB)", relaxed)
	}
}

func TestObservedAgreesWithExploration(t *testing.T) {
	sbTest := All()[0]
	got, err := sbTest.Observed(tso.TSO)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("SB outcome not observed under TSO")
	}
	got, err = sbTest.Observed(tso.SC)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("SB outcome observed under SC")
	}
}
