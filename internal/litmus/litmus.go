// Package litmus defines the classic memory-model litmus tests in the
// module's IR and checks them by exhaustive state-space exploration. They
// pin the TSO simulator to the architecture the paper targets: store
// buffering (SB) is the only relaxation — message passing (MP), load
// buffering (LB) and read coherence (CoRR) behave as under SC, which is
// exactly why the paper's §4.4 only spends full fences on w→r orderings.
package litmus

import (
	"fmt"

	"fenceplace/internal/ir"
	"fenceplace/internal/mc"
	"fenceplace/internal/tso"
)

// Test is one litmus test: flat thread functions plus one distinguished
// final state and its verdict per memory model.
type Test struct {
	Name    string
	Desc    string
	Prog    *ir.Program
	Threads []string
	// Outcome is the distinguished (usually non-SC) final state.
	Outcome map[string]int64
	// AllowedTSO / AllowedSC state whether Outcome is reachable.
	AllowedTSO bool
	AllowedSC  bool
}

// Observed explores the test under the given model with the parallel model
// checker and reports whether the distinguished outcome is reachable. A
// truncated exploration is an explicit error (wrapping mc.ErrTruncated):
// an incomplete state space must never silently pass for a verdict.
func (t *Test) Observed(mode tso.Mode) (bool, error) {
	return t.observedBudget(mode, 0)
}

// Explore runs the model checker over the test's threads under the given
// model and returns the reachable final-state set.
func (t *Test) Explore(mode tso.Mode) (*mc.StateSet, error) {
	return t.exploreBudget(mode, 0)
}

func (t *Test) exploreBudget(mode tso.Mode, maxStates int64) (*mc.StateSet, error) {
	res, err := mc.Explore(t.Prog, t.Threads, mc.Config{Mode: mode, MaxStates: maxStates})
	if err != nil {
		return nil, err
	}
	if res.Truncated {
		return nil, fmt.Errorf("litmus %s under %s: gave up after %d states: %w",
			t.Name, mode, res.Visited, mc.ErrTruncated)
	}
	return res, nil
}

func (t *Test) observedBudget(mode tso.Mode, maxStates int64) (bool, error) {
	res, err := t.exploreBudget(mode, maxStates)
	if err != nil {
		return false, err
	}
	return res.Has(t.Outcome, t.Prog), nil
}

// Check runs the test under both models and verifies the verdicts.
func (t *Test) Check() error {
	for _, m := range []tso.Mode{tso.TSO, tso.SC} {
		got, err := t.Observed(m)
		if err != nil {
			return err
		}
		want := t.AllowedSC
		if m == tso.TSO {
			want = t.AllowedTSO
		}
		if got != want {
			return fmt.Errorf("litmus %s under %s: outcome observed=%v, want %v", t.Name, m, got, want)
		}
	}
	return nil
}

// All returns the litmus suite.
func All() []*Test {
	return []*Test{
		sb(false), sb(true), mp(), lb(), corr(), sbRMW(),
	}
}

// sb is store buffering: w x; r y || w y; r x. The both-read-zero outcome
// is TSO's signature relaxation; a full fence in each thread forbids it.
func sb(fenced bool) *Test {
	pb := ir.NewProgram("sb")
	x := pb.Global("x", 1)
	y := pb.Global("y", 1)
	o0 := pb.Global("o0", 1)
	o1 := pb.Global("o1", 1)
	t0 := pb.Func("t0", 0)
	t0.Store(x, t0.Const(1))
	if fenced {
		t0.Fence(ir.FenceFull)
	}
	t0.Store(o0, t0.Load(y))
	t0.RetVoid()
	t1 := pb.Func("t1", 0)
	t1.Store(y, t1.Const(1))
	if fenced {
		t1.Fence(ir.FenceFull)
	}
	t1.Store(o1, t1.Load(x))
	t1.RetVoid()
	name, desc := "SB", "store buffering: both loads read 0"
	if fenced {
		name, desc = "SB+fences", "store buffering with full fences"
	}
	return &Test{
		Name: name, Desc: desc, Prog: pb.MustBuild(),
		Threads:    []string{"t0", "t1"},
		Outcome:    map[string]int64{"o0": 0, "o1": 0},
		AllowedTSO: !fenced, AllowedSC: false,
	}
}

// mp is message passing without fences: observing the flag but missing the
// data would require w→w or r→r reordering, which TSO forbids.
func mp() *Test {
	pb := ir.NewProgram("mp")
	data := pb.Global("data", 1)
	flag := pb.Global("flag", 1)
	of := pb.Global("of", 1)
	od := pb.Global("od", 1)
	t0 := pb.Func("t0", 0)
	t0.Store(data, t0.Const(1))
	t0.Store(flag, t0.Const(1))
	t0.RetVoid()
	t1 := pb.Func("t1", 0)
	t1.Store(of, t1.Load(flag))
	t1.Store(od, t1.Load(data))
	t1.RetVoid()
	return &Test{
		Name: "MP", Desc: "message passing: flag seen but data stale",
		Prog: pb.MustBuild(), Threads: []string{"t0", "t1"},
		Outcome:    map[string]int64{"of": 1, "od": 0},
		AllowedTSO: false, AllowedSC: false,
	}
}

// lb is load buffering: r x; w y || r y; w x with both loads observing 1.
// Needs load→store reordering; impossible on TSO and SC.
func lb() *Test {
	pb := ir.NewProgram("lb")
	x := pb.Global("x", 1)
	y := pb.Global("y", 1)
	o0 := pb.Global("o0", 1)
	o1 := pb.Global("o1", 1)
	t0 := pb.Func("t0", 0)
	v := t0.Load(x)
	t0.Store(o0, v)
	t0.Store(y, t0.Const(1))
	t0.RetVoid()
	t1 := pb.Func("t1", 0)
	w := t1.Load(y)
	t1.Store(o1, w)
	t1.Store(x, t1.Const(1))
	t1.RetVoid()
	return &Test{
		Name: "LB", Desc: "load buffering: both loads observe 1",
		Prog: pb.MustBuild(), Threads: []string{"t0", "t1"},
		Outcome:    map[string]int64{"o0": 1, "o1": 1},
		AllowedTSO: false, AllowedSC: false,
	}
}

// corr is read coherence: two loads of x in one thread must not observe the
// new value then the old one.
func corr() *Test {
	pb := ir.NewProgram("corr")
	x := pb.Global("x", 1)
	o0 := pb.Global("o0", 1)
	o1 := pb.Global("o1", 1)
	t0 := pb.Func("t0", 0)
	t0.Store(x, t0.Const(1))
	t0.RetVoid()
	t1 := pb.Func("t1", 0)
	t1.Store(o0, t1.Load(x))
	t1.Store(o1, t1.Load(x))
	t1.RetVoid()
	return &Test{
		Name: "CoRR", Desc: "coherent reads: new value then old value",
		Prog: pb.MustBuild(), Threads: []string{"t0", "t1"},
		Outcome:    map[string]int64{"o0": 1, "o1": 0},
		AllowedTSO: false, AllowedSC: false,
	}
}

// sbRMW is SB with the stores replaced by CAS: locked RMWs drain the store
// buffer, so the relaxed outcome disappears without any explicit fence —
// the reason orderings at RMW endpoints need no extra MFENCE.
func sbRMW() *Test {
	pb := ir.NewProgram("sb-rmw")
	x := pb.Global("x", 1)
	y := pb.Global("y", 1)
	o0 := pb.Global("o0", 1)
	o1 := pb.Global("o1", 1)
	t0 := pb.Func("t0", 0)
	t0.CAS(t0.AddrOf(x), t0.Const(0), t0.Const(1))
	t0.Store(o0, t0.Load(y))
	t0.RetVoid()
	t1 := pb.Func("t1", 0)
	t1.CAS(t1.AddrOf(y), t1.Const(0), t1.Const(1))
	t1.Store(o1, t1.Load(x))
	t1.RetVoid()
	return &Test{
		Name: "SB+RMW", Desc: "store buffering with locked RMW stores",
		Prog: pb.MustBuild(), Threads: []string{"t0", "t1"},
		Outcome:    map[string]int64{"o0": 0, "o1": 0},
		AllowedTSO: false, AllowedSC: false,
	}
}
