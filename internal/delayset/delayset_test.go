package delayset

import (
	"testing"
)

func delaySet(delays []Delay) map[string]bool {
	m := map[string]bool{}
	for _, d := range delays {
		m[d.String()] = true
	}
	return m
}

func TestFig2Delays(t *testing.T) {
	p, _ := Fig2()
	delays := Delays(p)
	got := delaySet(delays)
	// The paper's §2.4 lists these delay edges explicitly:
	for _, want := range []string{
		"a1→a3", "b3→b5", // cycle (a1, a3, b3, b5)
		"a2→a3", "b3→b4", // cycle (a2, a3, b3, b4)
		"a1→a2", "b4→b5", // cycle (a1, a2, b4, b5)
		"b1→b2", // cycle (a1, a2, b1, b2)
	} {
		if !got[want] {
			t.Errorf("paper delay %s missing (have %v)", want, delays)
		}
	}
	// Exact enumeration is a sound superset; no delay may be bogus: every
	// reported delay must come from a real cycle, i.e. at minimum the two
	// endpoints must be orderable and distinct.
	for _, d := range delays {
		if d.From.Thread != d.To.Thread || d.From.Index >= d.To.Index {
			t.Errorf("malformed delay %s", d)
		}
	}
}

func TestFig2FenceCountsMatchPaper(t *testing.T) {
	p, isAcq := Fig2()
	delays := Delays(p)

	full := MinimizeFences(delays)
	if len(full) != 5 {
		t.Fatalf("unpruned placement uses %d fences, paper places 5 (F1..F5): %v", len(full), full)
	}

	pruned := Prune(delays, isAcq)
	fences := MinimizeFences(pruned)
	if len(fences) != 2 {
		t.Fatalf("pruned placement uses %d fences, paper places 2 (F2, F4): %v", len(fences), fences)
	}
	// The paper keeps F2 (between a2 and a3, i.e. thread 0 gap 2) and F4
	// (between b3 and b4, i.e. thread 1 gap 3).
	want := map[FencePos]bool{{Thread: 0, Gap: 2}: true, {Thread: 1, Gap: 3}: true}
	for _, f := range fences {
		if !want[f] {
			t.Errorf("unexpected fence position %v (want F2=T0@2 and F4=T1@3)", f)
		}
	}
}

func TestPruneRules(t *testing.T) {
	p := NewProgram(2)
	w1 := p.Add(0, "w1", true, "x")
	r1 := p.Add(0, "r1", false, "y")
	racq := p.Add(0, "racq", false, "f")
	w2 := p.Add(0, "w2", true, "z")
	isAcq := func(a Access) bool { return a.ID == "racq" }

	mk := func(from, to Access) Delay { return Delay{From: from, To: to} }
	cases := []struct {
		d    Delay
		keep bool
		why  string
	}{
		{mk(w1, r1), false, "w→r with non-acquire read"},
		{mk(w1, racq), true, "w→racq"},
		{mk(w1, w2), true, "w→w (release)"},
		{mk(r1, w2), true, "r→w (release)"},
		{mk(r1, racq), false, "r→racq: data-read source"},
		{mk(racq, r1), true, "racq→r"},
		{mk(racq, w2), true, "racq→w"},
	}
	var all []Delay
	for _, c := range cases {
		all = append(all, c.d)
	}
	kept := delaySet(Prune(all, isAcq))
	for _, c := range cases {
		if kept[c.d.String()] != c.keep {
			t.Errorf("%s (%s): kept=%v want %v", c.d, c.why, kept[c.d.String()], c.keep)
		}
	}
}

func TestTwoAccessCycleNoDelays(t *testing.T) {
	// Two conflicting writes with nothing else yield a 2-access cycle with
	// no po edges, hence no delays and no fences.
	p := NewProgram(2)
	p.Add(0, "a", true, "x")
	p.Add(1, "b", true, "x")
	if cycles := CriticalCycles(p); len(cycles) == 0 {
		t.Fatal("conflicting writes should form a cycle")
	}
	if delays := Delays(p); len(delays) != 0 {
		t.Fatalf("single-access threads produced delays: %v", delays)
	}
	if fences := MinimizeFences(nil); len(fences) != 0 {
		t.Fatal("no delays must mean no fences")
	}
}

func TestNoConflictNoCycle(t *testing.T) {
	p := NewProgram(2)
	p.Add(0, "a1", true, "x")
	p.Add(0, "a2", false, "x")
	p.Add(1, "b1", true, "y")
	p.Add(1, "b2", false, "y")
	if cycles := CriticalCycles(p); len(cycles) != 0 {
		t.Fatalf("disjoint threads produced %d cycles", len(cycles))
	}
}

func TestUnknownLocationConflictsWithEverything(t *testing.T) {
	p := NewProgram(2)
	p.Add(0, "a1", true) // unknown target
	p.Add(0, "a2", false, "y")
	p.Add(1, "b1", true, "y")
	p.Add(1, "b2", false, "q")
	delays := Delays(p)
	got := delaySet(delays)
	// Cycle (a1,a2 ; b1,b2)? conflict(a2,b1) on y ✓; conflict(b2,a1): a1
	// unknown write vs q read → conflicts ✓.
	if !got["a1→a2"] || !got["b1→b2"] {
		t.Fatalf("unknown-target write did not participate in cycles: %v", delays)
	}
}

func TestSBDelays(t *testing.T) {
	// Store buffering: both w→r pairs are delays.
	p := NewProgram(2)
	p.Add(0, "a1", true, "x")
	p.Add(0, "a2", false, "y")
	p.Add(1, "b1", true, "y")
	p.Add(1, "b2", false, "x")
	got := delaySet(Delays(p))
	if !got["a1→a2"] || !got["b1→b2"] {
		t.Fatalf("SB delays missing: %v", got)
	}
	fences := MinimizeFences(Delays(p))
	if len(fences) != 2 {
		t.Fatalf("SB needs 2 fences, got %v", fences)
	}
}

func TestThreeThreadCycle(t *testing.T) {
	// IRIW-like shape across three threads: ensure k>2 enumeration works.
	p := NewProgram(3)
	p.Add(0, "a1", true, "x")
	p.Add(0, "a2", false, "y")
	p.Add(1, "b1", true, "y")
	p.Add(1, "b2", false, "z")
	p.Add(2, "c1", true, "z")
	p.Add(2, "c2", false, "x")
	cycles := CriticalCycles(p)
	found := false
	for _, c := range cycles {
		if len(c.Entries) == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("no 3-thread cycle found")
	}
	got := delaySet(Delays(p))
	for _, want := range []string{"a1→a2", "b1→b2", "c1→c2"} {
		if !got[want] {
			t.Errorf("delay %s missing", want)
		}
	}
}

func TestCycleString(t *testing.T) {
	p, _ := Fig2()
	cycles := CriticalCycles(p)
	if len(cycles) == 0 {
		t.Fatal("no cycles")
	}
	for _, c := range cycles {
		s := c.String()
		if len(s) < 4 {
			t.Errorf("cycle string too short: %q", s)
		}
	}
}
