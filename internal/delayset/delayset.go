// Package delayset implements exact Shasha–Snir delay-set analysis for
// small multi-threaded programs given as straight-line access sequences
// with may-alias location sets. It exists to regenerate the paper's worked
// example (§2.4, Figure 2): enumerate the critical cycles, extract the
// program-order delay edges, optionally prune them with the paper's DRF
// rules, and place a minimal set of full fences per thread.
//
// A critical cycle here has the canonical Shasha–Snir shape: it visits
// k ≥ 2 distinct threads; in each visited thread it uses an entry access e
// and an exit access x with e ≤po x (possibly the same access); and
// consecutive threads are linked by a conflict edge — the exit of one
// thread conflicts with the entry of the next (same location, at least one
// write, honoring may-alias sets). The delay set is the union of the po
// edges (e, x) with e ≠ x over all critical cycles. This enumeration is a
// sound superset of the minimal cycles a hand analysis lists; extra cycles
// only add delays that fence minimization absorbs (the worked-example
// fence counts match the paper exactly).
package delayset

import (
	"fmt"
	"sort"
	"strings"
)

// Access is one shared-memory access of a straight-line thread.
type Access struct {
	ID     string   // display label, e.g. "a1"
	Thread int      // owning thread index
	Index  int      // program-order position within the thread
	Write  bool     // write or read
	Locs   []string // may-touch locations; empty means statically unknown
}

func (a Access) String() string { return a.ID }

// Program is a set of straight-line threads.
type Program struct {
	threads [][]Access
}

// NewProgram creates an empty program with n threads.
func NewProgram(n int) *Program {
	return &Program{threads: make([][]Access, n)}
}

// Add appends an access to thread t and returns it.
func (p *Program) Add(t int, id string, write bool, locs ...string) Access {
	a := Access{ID: id, Thread: t, Index: len(p.threads[t]), Write: write, Locs: locs}
	p.threads[t] = append(p.threads[t], a)
	return a
}

// Threads returns the number of threads.
func (p *Program) Threads() int { return len(p.threads) }

// Accesses returns thread t's accesses in program order.
func (p *Program) Accesses(t int) []Access { return p.threads[t] }

// conflict reports whether u and v may conflict: may touch a common
// location with at least one write. An empty location set is "unknown" and
// matches anything.
func conflict(u, v Access) bool {
	if !u.Write && !v.Write {
		return false
	}
	if len(u.Locs) == 0 || len(v.Locs) == 0 {
		return true
	}
	for _, lu := range u.Locs {
		for _, lv := range v.Locs {
			if lu == lv {
				return true
			}
		}
	}
	return false
}

// Cycle is one critical cycle: per visited thread, its entry and exit
// accesses in visit order.
type Cycle struct {
	Entries []Access
	Exits   []Access
}

func (c Cycle) String() string {
	var parts []string
	for i := range c.Entries {
		if c.Entries[i].Index == c.Exits[i].Index {
			parts = append(parts, c.Entries[i].ID)
		} else {
			parts = append(parts, c.Entries[i].ID+"→"+c.Exits[i].ID)
		}
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Delay is a program-order edge that must be enforced to avoid some
// critical cycle.
type Delay struct {
	From, To Access
}

func (d Delay) String() string { return d.From.ID + "→" + d.To.ID }

// CriticalCycles enumerates all critical cycles of the program (canonical:
// the visit order starts at the smallest participating thread, and for
// cycles over 3+ threads the reflection with the larger second thread is
// dropped).
func CriticalCycles(p *Program) []Cycle {
	var cycles []Cycle
	n := p.Threads()
	threadIDs := make([]int, n)
	for i := range threadIDs {
		threadIDs[i] = i
	}
	// Enumerate ordered sequences of 2..n distinct threads starting with
	// the minimum participating thread.
	var seq []int
	used := make([]bool, n)
	var rec func(first int)
	rec = func(first int) {
		if len(seq) >= 2 {
			if len(seq) == 2 || seq[1] < seq[len(seq)-1] { // kill reflections
				cycles = append(cycles, cyclesForThreadSeq(p, seq)...)
			}
		}
		for _, t := range threadIDs[first+1:] {
			if used[t] || t <= seq[0] {
				continue
			}
			used[t] = true
			seq = append(seq, t)
			rec(first)
			seq = seq[:len(seq)-1]
			used[t] = false
		}
	}
	for start := 0; start < n; start++ {
		seq = []int{start}
		used[start] = true
		rec(start)
		used[start] = false
	}
	return cycles
}

// cyclesForThreadSeq enumerates the (entry, exit) choices per thread of the
// sequence such that exit_i conflicts with entry_{i+1} cyclically.
func cyclesForThreadSeq(p *Program, seq []int) []Cycle {
	var out []Cycle
	k := len(seq)
	entries := make([]Access, k)
	exits := make([]Access, k)
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			// Close the cycle: last exit conflicts with first entry.
			if conflict(exits[k-1], entries[0]) {
				out = append(out, Cycle{
					Entries: append([]Access(nil), entries...),
					Exits:   append([]Access(nil), exits...),
				})
			}
			return
		}
		accs := p.threads[seq[i]]
		for ei := range accs {
			for xi := ei; xi < len(accs); xi++ {
				e, x := accs[ei], accs[xi]
				if i > 0 && !conflict(exits[i-1], e) {
					continue
				}
				entries[i], exits[i] = e, x
				rec(i + 1)
			}
		}
	}
	rec(0)
	return out
}

// Delays returns the deduplicated delay set: every po edge appearing in
// some critical cycle, sorted by (thread, from, to).
func Delays(p *Program) []Delay {
	seen := map[[3]int]Delay{}
	for _, c := range CriticalCycles(p) {
		for i := range c.Entries {
			e, x := c.Entries[i], c.Exits[i]
			if e.Index != x.Index {
				seen[[3]int{e.Thread, e.Index, x.Index}] = Delay{From: e, To: x}
			}
		}
	}
	out := make([]Delay, 0, len(seen))
	for _, d := range seen {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From.Thread != b.From.Thread {
			return a.From.Thread < b.From.Thread
		}
		if a.From.Index != b.From.Index {
			return a.From.Index < b.From.Index
		}
		return a.To.Index < b.To.Index
	})
	return out
}

// Prune applies the paper's DRF rules (§2.3) to a delay set: keep
// racq→anything, keep anything→w (all writes are releases), keep w→racq,
// prune the rest. isAcquire classifies reads.
func Prune(delays []Delay, isAcquire func(Access) bool) []Delay {
	var out []Delay
	for _, d := range delays {
		switch {
		case !d.From.Write && isAcquire(d.From):
			out = append(out, d)
		case d.To.Write:
			out = append(out, d)
		case d.From.Write && isAcquire(d.To):
			out = append(out, d)
		}
	}
	return out
}

// FencePos places a full fence in thread Thread at gap Gap: between the
// accesses with Index Gap-1 and Gap.
type FencePos struct {
	Thread int
	Gap    int
}

func (f FencePos) String() string { return fmt.Sprintf("T%d@%d", f.Thread, f.Gap) }

// MinimizeFences places the minimum number of full fences enforcing every
// delay (greedy interval stabbing per thread, optimal for straight-line
// threads — the setting of the paper's Figure 2).
func MinimizeFences(delays []Delay) []FencePos {
	type iv struct{ lo, hi int }
	byThread := map[int][]iv{}
	for _, d := range delays {
		byThread[d.From.Thread] = append(byThread[d.From.Thread], iv{d.From.Index + 1, d.To.Index})
	}
	var out []FencePos
	threads := make([]int, 0, len(byThread))
	for t := range byThread {
		threads = append(threads, t)
	}
	sort.Ints(threads)
	for _, t := range threads {
		ivs := byThread[t]
		sort.Slice(ivs, func(i, j int) bool {
			if ivs[i].hi != ivs[j].hi {
				return ivs[i].hi < ivs[j].hi
			}
			return ivs[i].lo < ivs[j].lo
		})
		last := -1
		for _, v := range ivs {
			if last >= v.lo && last <= v.hi {
				continue
			}
			last = v.hi
			out = append(out, FencePos{Thread: t, Gap: last})
		}
	}
	return out
}
