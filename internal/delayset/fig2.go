package delayset

// Fig2 constructs the paper's Figure 2 worked example:
//
//	P1                P2
//	a1: x = ...       b1: *p1 = ...
//	a2: ... = y       b2: ... = *p2
//	a3: flag = 1      b3: while (flag != 1);   // the acquire read
//	                  b4: y = ...
//	                  b5: ... = x
//
// with the paper's alias assumption: *p1 and *p2 may alias x and y but not
// flag. It returns the program and the acquire classifier (exactly b3, the
// busy-wait read the detection algorithms flag).
func Fig2() (*Program, func(Access) bool) {
	p := NewProgram(2)
	p.Add(0, "a1", true, "x")
	p.Add(0, "a2", false, "y")
	p.Add(0, "a3", true, "flag")

	p.Add(1, "b1", true, "x", "y")
	p.Add(1, "b2", false, "x", "y")
	b3 := p.Add(1, "b3", false, "flag")
	p.Add(1, "b4", true, "y")
	p.Add(1, "b5", false, "x")

	isAcquire := func(a Access) bool { return a.Thread == b3.Thread && a.Index == b3.Index }
	return p, isAcquire
}
