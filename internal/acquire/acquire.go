// Package acquire implements the paper's two synchronization-read detection
// algorithms: Control (Listing 1 — slice backwards from every conditional
// branch) and Address+Control (Listing 3 — additionally slice from every
// dereference and address calculation). A shared-memory read can only be an
// acquire if it matches at least one of the two signatures (Theorem 3.1),
// so every read these detectors do NOT flag is provably not a
// synchronization read and the orderings involving it may be pruned.
package acquire

import (
	"fmt"

	"fenceplace/internal/alias"
	"fenceplace/internal/escape"
	"fenceplace/internal/ir"
	"fenceplace/internal/slicer"
)

// Variant selects a detection algorithm.
type Variant int

const (
	// Control detects only control acquires (Listing 1).
	Control Variant = iota
	// AddressControl detects control and address acquires (Listing 3).
	AddressControl
	// AddressOnly detects only address acquires; it exists for the
	// Table II signature breakdown, not as a placement variant.
	AddressOnly
)

func (v Variant) String() string {
	switch v {
	case Control:
		return "Control"
	case AddressControl:
		return "Address+Control"
	case AddressOnly:
		return "AddressOnly"
	}
	return fmt.Sprintf("variant(%d)", int(v))
}

// Result is the program-wide set of detected synchronization reads.
type Result struct {
	Variant Variant
	sync    map[*ir.Instr]bool
}

// IsSync reports whether the instruction was flagged as a potential
// synchronization (acquire) read.
func (r *Result) IsSync(in *ir.Instr) bool { return r.sync[in] }

// Count returns the number of flagged reads.
func (r *Result) Count() int { return len(r.sync) }

// SyncReads returns fn's flagged reads in program order.
func (r *Result) SyncReads(f *ir.Fn) []*ir.Instr {
	var out []*ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if r.sync[in] {
			out = append(out, in)
		}
	})
	return out
}

// FnHasSync reports whether any flagged read lives in fn — the condition
// under which the paper's modified minimization places a function-entry
// fence (§4.4).
func (r *Result) FnHasSync(f *ir.Fn) bool {
	found := false
	f.Instrs(func(in *ir.Instr) {
		if r.sync[in] {
			found = true
		}
	})
	return found
}

// NewResult assembles a Result from per-function flagged-read lists, as
// produced by DetectFn. A pass manager detects functions in parallel and
// collects them here.
func NewResult(v Variant, reads ...[]*ir.Instr) *Result {
	res := &Result{Variant: v, sync: make(map[*ir.Instr]bool)}
	for _, list := range reads {
		for _, in := range list {
			res.sync[in] = true
		}
	}
	return res
}

// DetectFn runs the selected variant's slicing over one function, reusing a
// prebuilt def/writer index, and returns the flagged reads in program
// order. The index and escape result are only read, so functions (and
// variants sharing one index) may be detected concurrently.
func DetectFn(f *ir.Fn, ix *slicer.Index, esc *escape.Result, v Variant) []*ir.Instr {
	s := slicer.NewShared(ix, esc)
	f.Instrs(func(in *ir.Instr) {
		for _, root := range rootRegs(in, v) {
			s.SliceFromRegs(root)
		}
	})
	return s.SyncReads()
}

// Detect runs the selected variant over every function of the program.
func Detect(p *ir.Program, al *alias.Analysis, esc *escape.Result, v Variant) *Result {
	lists := make([][]*ir.Instr, 0, len(p.Funcs))
	for _, f := range p.Funcs {
		lists = append(lists, DetectFn(f, slicer.NewIndex(f, al), esc, v))
	}
	return NewResult(v, lists...)
}

// SignaturesOf assembles the Table II signature classification from two
// already-computed detections (Control and AddressOnly), letting a pass
// session reuse its memoized results.
func SignaturesOf(ctl, adr *Result) Signatures {
	return Signatures{Control: ctl.sync, Address: adr.sync}
}

// rootRegs returns the operand registers to slice from for this instruction
// under the given variant: branch predicates for the control signature;
// dereferenced addresses and address-calculation offsets for the address
// signature (Listing 3 slices the offset of a GetElementPtr and the operand
// of a dereference; our indexed Load/Store/AddrOf are implicit address
// calculations whose offset is the index).
func rootRegs(in *ir.Instr, v Variant) []ir.Reg {
	var roots []ir.Reg
	if v == Control || v == AddressControl {
		if in.Kind == ir.Br {
			roots = append(roots, in.A)
		}
	}
	if v == AddressOnly || v == AddressControl {
		switch in.Kind {
		case ir.LoadPtr, ir.StorePtr, ir.CAS, ir.FetchAdd:
			roots = append(roots, in.Addr)
		case ir.Gep:
			roots = append(roots, in.B)
		case ir.AddrOf, ir.Load, ir.Store:
			if in.Idx != ir.NoReg {
				roots = append(roots, in.Idx)
			}
		}
	}
	return roots
}

// Signatures carries the per-read signature classification used by the
// Table II study: which reads match the control signature and which match
// the address signature.
type Signatures struct {
	Control map[*ir.Instr]bool
	Address map[*ir.Instr]bool
}

// Classify computes both signature sets independently.
func Classify(p *ir.Program, al *alias.Analysis, esc *escape.Result) Signatures {
	return SignaturesOf(Detect(p, al, esc, Control), Detect(p, al, esc, AddressOnly))
}

// HasControl reports whether any read matches the control signature.
func (s Signatures) HasControl() bool { return len(s.Control) > 0 }

// HasAddress reports whether any read matches the address signature.
func (s Signatures) HasAddress() bool { return len(s.Address) > 0 }

// HasPureAddress reports whether some read matches the address signature
// without also matching the control signature — the case the paper's
// empirical study (Table II) finds in none of the nine primitives.
func (s Signatures) HasPureAddress() bool {
	for in := range s.Address {
		if !s.Control[in] {
			return true
		}
	}
	return false
}
