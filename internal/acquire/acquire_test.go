package acquire

import (
	"testing"

	"fenceplace/internal/alias"
	"fenceplace/internal/escape"
	"fenceplace/internal/ir"
)

func prep(t *testing.T, p *ir.Program) (*alias.Analysis, *escape.Result) {
	t.Helper()
	al := alias.Analyze(p)
	return al, escape.Analyze(p, al)
}

func loadsOf(f *ir.Fn, g string) []*ir.Instr {
	var out []*ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in.Kind == ir.Load && in.G.Name == g {
			out = append(out, in)
		}
	})
	return out
}

// buildMP: the paper's Figure 4. The consumer's flag read feeds a branch
// (control acquire); its data read feeds nothing.
func buildMP(t *testing.T) *ir.Program {
	pb := ir.NewProgram("mp")
	data := pb.Global("data", 1)
	flag := pb.Global("flag", 1)
	sink := pb.Global("sink", 1)

	prod := pb.Func("producer", 0)
	one := prod.Const(1)
	prod.Store(data, one)
	prod.Store(flag, one)
	prod.RetVoid()

	cons := pb.Func("consumer", 0)
	one2 := cons.Const(1)
	cons.SpinWhileNe(flag, ir.NoReg, one2)
	v := cons.Load(data)
	cons.Store(sink, v)
	cons.RetVoid()

	main := pb.Func("main", 0)
	t1 := main.Spawn("producer")
	t2 := main.Spawn("consumer")
	main.Join(t1)
	main.Join(t2)
	main.RetVoid()
	pb.SetMain("main")
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestControlDetectsFlagSpin(t *testing.T) {
	p := buildMP(t)
	al, esc := prep(t, p)
	res := Detect(p, al, esc, Control)
	cons := p.Fn("consumer")

	flagLoads := loadsOf(cons, "flag")
	if len(flagLoads) != 1 {
		t.Fatalf("want 1 flag load, got %d", len(flagLoads))
	}
	if !res.IsSync(flagLoads[0]) {
		t.Error("flag spin load must be a control acquire")
	}
	dataLoads := loadsOf(cons, "data")
	if len(dataLoads) != 1 {
		t.Fatalf("want 1 data load, got %d", len(dataLoads))
	}
	if res.IsSync(dataLoads[0]) {
		t.Error("data load must not be flagged: it feeds no branch or address")
	}
	if !res.FnHasSync(cons) {
		t.Error("consumer contains a sync read")
	}
	if res.FnHasSync(p.Fn("producer")) {
		t.Error("producer contains no reads at all")
	}
}

// buildMPPointers: the paper's Figure 5 — MP where the flag variable holds
// a pointer that the consumer dereferences. The y read matches only the
// address signature.
func buildMPPointers(t *testing.T) *ir.Program {
	pb := ir.NewProgram("mp-ptr")
	x := pb.Global("x", 1)
	z := pb.Global("z", 1)
	y := pb.Global("y", 1)
	sink := pb.Global("sink", 1)

	prod := pb.Func("producer", 0)
	prod.Store(x, prod.Const(41))
	prod.Store(y, prod.AddrOf(x)) // release: publish &x
	prod.RetVoid()

	cons := pb.Func("consumer", 0)
	r := cons.Load(y)    // acquire by address signature only
	v := cons.LoadPtr(r) // data access whose address derives from r
	cons.Store(sink, v)
	cons.RetVoid()

	main := pb.Func("main", 0)
	// Initialize y = &z so the consumer always has a valid pointer.
	main.Store(y, main.AddrOf(z))
	t1 := main.Spawn("producer")
	t2 := main.Spawn("consumer")
	main.Join(t1)
	main.Join(t2)
	main.RetVoid()
	pb.SetMain("main")
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAddressSignature(t *testing.T) {
	p := buildMPPointers(t)
	al, esc := prep(t, p)
	cons := p.Fn("consumer")
	yLoad := loadsOf(cons, "y")[0]

	ctl := Detect(p, al, esc, Control)
	if ctl.IsSync(yLoad) {
		t.Error("y load must not match the control signature (no branch)")
	}
	ac := Detect(p, al, esc, AddressControl)
	if !ac.IsSync(yLoad) {
		t.Error("y load must match the address signature")
	}
	sig := Classify(p, al, esc)
	if !sig.HasAddress() {
		t.Error("classification must report an address acquire")
	}
	if !sig.HasPureAddress() {
		t.Error("y load is a pure address acquire (paper Figure 5)")
	}
	if sig.Control[yLoad] {
		t.Error("y load misclassified as control")
	}
}

func TestSliceThroughLocalStoreLoad(t *testing.T) {
	// An escaping read whose value is stored to a local slot, reloaded, and
	// only then branched on must still be detected (potential_writers chain).
	pb := ir.NewProgram("p")
	flag := pb.Global("flag", 1)
	tmp := pb.Global("tmp", 1) // stand-in for spilled local
	b := pb.Func("f", 0)
	v := b.Load(flag)
	b.Store(tmp, v)
	w := b.Load(tmp)
	b.If(b.Eq(w, b.Const(1)), func() {})
	b.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	al, esc := prep(t, p)
	res := Detect(p, al, esc, Control)
	f := p.Fn("f")
	fl := loadsOf(f, "flag")[0]
	if !res.IsSync(fl) {
		t.Error("flag read reaching a branch through memory must be flagged")
	}
}

func TestCASResultFeedsBranch(t *testing.T) {
	pb := ir.NewProgram("p")
	lock := pb.Global("lock", 1)
	b := pb.Func("f", 0)
	pl := b.AddrOf(lock)
	zero := b.Const(0)
	one := b.Const(1)
	b.While(func() ir.Reg {
		got := b.CAS(pl, zero, one)
		return b.Eq(got, zero)
	}, func() {})
	b.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	al, esc := prep(t, p)
	res := Detect(p, al, esc, Control)
	var cas *ir.Instr
	p.Fn("f").Instrs(func(in *ir.Instr) {
		if in.Kind == ir.CAS {
			cas = in
		}
	})
	if cas == nil {
		t.Fatal("no CAS found")
	}
	if !res.IsSync(cas) {
		t.Error("CAS whose result feeds the spin branch must be a sync read")
	}
}

func TestInterproceduralSplitNotDetected(t *testing.T) {
	// The paper's documented simplification (§4): a read in one function
	// whose branch lives in another function is not detected. This test
	// pins that (intentional) behavior.
	pb := ir.NewProgram("p")
	flag := pb.Global("flag", 1)
	chk := pb.Func("check", 1)
	chk.If(chk.Eq(chk.Param(0), chk.Const(1)), func() {})
	chk.RetVoid()
	f := pb.Func("f", 0)
	v := f.Load(flag)
	f.CallVoid("check", v)
	f.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	al, esc := prep(t, p)
	res := Detect(p, al, esc, Control)
	fl := loadsOf(p.Fn("f"), "flag")[0]
	if res.IsSync(fl) {
		t.Error("intraprocedural algorithm unexpectedly crossed the call (update this test if interprocedural slicing is added)")
	}
}

func TestMonotoneControlSubsetOfAddressControl(t *testing.T) {
	for _, build := range []func(*testing.T) *ir.Program{buildMP, buildMPPointers} {
		p := build(t)
		al, esc := prep(t, p)
		ctl := Detect(p, al, esc, Control)
		ac := Detect(p, al, esc, AddressControl)
		for _, f := range p.Funcs {
			for _, in := range ctl.SyncReads(f) {
				if !ac.IsSync(in) {
					t.Errorf("%s: %s flagged by Control but not AddressControl", p.Name, in)
				}
			}
		}
		if ctl.Count() > ac.Count() {
			t.Errorf("%s: Control count %d > AddressControl count %d", p.Name, ctl.Count(), ac.Count())
		}
	}
}

func TestOnlyEscapingReadsFlagged(t *testing.T) {
	// A branch on a non-escaping (local alloca) load must not produce sync
	// reads; acquires are a subset of escaping reads by construction.
	pb := ir.NewProgram("p")
	b := pb.Func("f", 0)
	buf := b.Alloca(1)
	b.StorePtr(buf, b.Const(1))
	v := b.LoadPtr(buf)
	b.If(b.Eq(v, b.Const(1)), func() {})
	b.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	al, esc := prep(t, p)
	res := Detect(p, al, esc, Control)
	if res.Count() != 0 {
		t.Fatalf("local-only program produced %d sync reads", res.Count())
	}
}

func TestIndexedLoadIsAddressRoot(t *testing.T) {
	// idx = load shared; v = load arr[idx]: under Address+Control the idx
	// read matches the address signature even with no branch anywhere.
	pb := ir.NewProgram("p")
	idxG := pb.Global("idx", 1)
	arr := pb.Global("arr", 8)
	sink := pb.Global("sink", 1)
	b := pb.Func("f", 0)
	i := b.Load(idxG)
	v := b.LoadIdx(arr, i)
	b.Store(sink, v)
	b.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	al, esc := prep(t, p)
	ctl := Detect(p, al, esc, Control)
	if ctl.Count() != 0 {
		t.Fatalf("Control flagged %d reads in a branch-free program", ctl.Count())
	}
	ac := Detect(p, al, esc, AddressControl)
	idxLoad := loadsOf(p.Fn("f"), "idx")[0]
	if !ac.IsSync(idxLoad) {
		t.Error("index-feeding read must match the address signature")
	}
	arrLoad := loadsOf(p.Fn("f"), "arr")[0]
	if ac.IsSync(arrLoad) {
		t.Error("the indexed data load itself feeds no address; must not be flagged")
	}
}

func TestVariantString(t *testing.T) {
	if Control.String() != "Control" || AddressControl.String() != "Address+Control" || AddressOnly.String() != "AddressOnly" {
		t.Error("variant names changed; experiment tables depend on them")
	}
}
