package fsx

// The deterministic fault injector. A FaultFS wraps another FS and, per
// operation, consults a seed-scripted PRNG to decide whether to inject a
// fault: the same seed and rates always produce the same fault sequence
// (by operation ordinal), so a chaos run that found a bug replays
// byte-for-byte from its seed. Under concurrency the attribution of the
// k-th fault to a particular caller can vary, but the schedule itself —
// which ordinals fail, and how — cannot.
//
// Injected errors wrap real syscall errnos (EIO, ENOSPC) and
// io.ErrShortWrite, so Transient classifies injected and genuine faults
// identically and the retry layer exercises its production paths.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"syscall"
	"time"
)

// ErrCrashed is the error every operation returns once a FaultFS's
// CrashAfter budget is spent: the modeled disk has gone away mid-run and
// will not come back. It is permanent — Transient(ErrCrashed) is false.
var ErrCrashed = errors.New("fsx: filesystem crashed (injected)")

// FaultConfig scripts a FaultFS. All probabilities are per eligible
// operation, in [0, 1]; the zero value injects nothing.
type FaultConfig struct {
	// Seed selects the deterministic fault schedule.
	Seed int64

	// EIO is the probability of a transient I/O error, on any operation.
	EIO float64
	// ENOSPC is the probability of a permanent no-space error on
	// write-side operations (writes, creates, mkdirs, renames).
	ENOSPC float64
	// ShortWrite is the probability that a WriteFile or File.Write
	// persists only a prefix of its data before failing — the torn-file
	// generator the framing layer must catch.
	ShortWrite float64
	// RenameFail is the probability of a transient failure on Rename —
	// the atomic-publish step of the store's write path.
	RenameFail float64

	// Latency is slept before an operation with probability LatencyProb —
	// the slow-disk simulation behind the -deadline flag's tests.
	Latency     time.Duration
	LatencyProb float64

	// CrashAfter fails every operation past the N-th with ErrCrashed
	// (0 = never): the disk-vanishes-mid-run schedule.
	CrashAfter uint64

	// MaxInjected stops injecting after N faults (0 = no limit), so a
	// schedule can deterministically fail once and then recover — the
	// retry layer's success-after-retry case. CrashAfter ignores it.
	MaxInjected uint64
}

// FaultFS wraps an FS with the scripted fault injector.
type FaultFS struct {
	inner FS
	cfg   FaultConfig

	mu       sync.Mutex
	rng      uint64
	ops      uint64
	injected uint64
}

// NewFaultFS wraps inner (nil: the OS) with the fault schedule cfg.
func NewFaultFS(inner FS, cfg FaultConfig) *FaultFS {
	seed := uint64(cfg.Seed)
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &FaultFS{inner: Or(inner), cfg: cfg, rng: seed}
}

// Ops returns the number of operations observed so far.
func (f *FaultFS) Ops() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Injected returns the number of faults injected so far.
func (f *FaultFS) Injected() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// next is a splitmix64 step — the deterministic fault dice.
func (f *FaultFS) next() uint64 {
	f.rng += 0x9e3779b97f4a7c15
	z := f.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b9b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// roll draws one deterministic decision with probability p.
func (f *FaultFS) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	return float64(f.next()>>11)/float64(1<<53) < p
}

// opClass flags which fault classes an operation is eligible for.
type opClass struct {
	write  bool // ENOSPC applies
	rename bool // RenameFail applies
}

// decide runs the fault schedule for one operation: it advances the
// operation counter, then returns the injected error (nil: the operation
// proceeds to the inner FS) and how long to sleep first.
func (f *FaultFS) decide(op string, cl opClass) (sleep time.Duration, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	if f.cfg.CrashAfter != 0 && f.ops > f.cfg.CrashAfter {
		return 0, fmt.Errorf("fsx: injected fault on %s: %w", op, ErrCrashed)
	}
	if f.roll(f.cfg.LatencyProb) {
		sleep = f.cfg.Latency
	}
	if f.cfg.MaxInjected != 0 && f.injected >= f.cfg.MaxInjected {
		return sleep, nil
	}
	switch {
	case cl.rename && f.roll(f.cfg.RenameFail):
		err = fmt.Errorf("fsx: injected rename failure on %s: %w", op, syscall.EIO)
	case cl.write && f.roll(f.cfg.ENOSPC):
		err = fmt.Errorf("fsx: injected no-space on %s: %w", op, syscall.ENOSPC)
	case f.roll(f.cfg.EIO):
		err = fmt.Errorf("fsx: injected I/O error on %s: %w", op, syscall.EIO)
	}
	if err != nil {
		f.injected++
	}
	return sleep, err
}

// shortWrite draws the short-write decision for a write of n bytes,
// returning the prefix length to persist and whether to inject.
func (f *FaultFS) shortWrite(n int) (int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cfg.MaxInjected != 0 && f.injected >= f.cfg.MaxInjected {
		return n, false
	}
	if n > 0 && f.roll(f.cfg.ShortWrite) {
		f.injected++
		return n / 2, true
	}
	return n, false
}

func (f *FaultFS) run(op string, cl opClass, fn func() error) error {
	sleep, err := f.decide(op, cl)
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if err != nil {
		return err
	}
	return fn()
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return f.run("mkdirall "+path, opClass{write: true}, func() error { return f.inner.MkdirAll(path, perm) })
}

func (f *FaultFS) MkdirTemp(dir, pattern string) (name string, err error) {
	err = f.run("mkdirtemp "+dir, opClass{write: true}, func() (e error) {
		name, e = f.inner.MkdirTemp(dir, pattern)
		return e
	})
	return name, err
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	var file File
	err := f.run("createtemp "+dir, opClass{write: true}, func() (e error) {
		file, e = f.inner.CreateTemp(dir, pattern)
		return e
	})
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FaultFS) Open(name string) (File, error) {
	var file File
	err := f.run("open "+name, opClass{}, func() (e error) {
		file, e = f.inner.Open(name)
		return e
	})
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FaultFS) ReadFile(name string) (data []byte, err error) {
	err = f.run("readfile "+name, opClass{}, func() (e error) {
		data, e = f.inner.ReadFile(name)
		return e
	})
	if err != nil {
		return nil, err
	}
	return data, nil
}

func (f *FaultFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	sleep, err := f.decide("writefile "+name, opClass{write: true})
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if err != nil {
		return err
	}
	if n, short := f.shortWrite(len(data)); short {
		// Persist the torn prefix, then fail: exactly what a crashed or
		// full disk leaves behind for the framing layer to catch.
		_ = f.inner.WriteFile(name, data[:n], perm)
		return fmt.Errorf("fsx: injected short write on %s (%d of %d bytes): %w",
			name, n, len(data), io.ErrShortWrite)
	}
	return f.inner.WriteFile(name, data, perm)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	return f.run("rename "+oldpath, opClass{write: true, rename: true},
		func() error { return f.inner.Rename(oldpath, newpath) })
}

func (f *FaultFS) Remove(name string) error {
	return f.run("remove "+name, opClass{write: true}, func() error { return f.inner.Remove(name) })
}

func (f *FaultFS) RemoveAll(path string) error {
	return f.run("removeall "+path, opClass{write: true}, func() error { return f.inner.RemoveAll(path) })
}

func (f *FaultFS) ReadDir(name string) (ents []os.DirEntry, err error) {
	err = f.run("readdir "+name, opClass{}, func() (e error) {
		ents, e = f.inner.ReadDir(name)
		return e
	})
	if err != nil {
		return nil, err
	}
	return ents, nil
}

// faultFile routes the open-file operations through the schedule, so
// spilled-run reads (ReadAt) and in-flight entry writes fail like any
// other operation.
type faultFile struct {
	File
	fs *FaultFS
}

func (ff *faultFile) Write(p []byte) (int, error) {
	sleep, err := ff.fs.decide("write "+ff.Name(), opClass{write: true})
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if err != nil {
		return 0, err
	}
	if n, short := ff.fs.shortWrite(len(p)); short {
		if n > 0 {
			if wn, werr := ff.File.Write(p[:n]); werr != nil {
				return wn, werr
			}
		}
		return n, fmt.Errorf("fsx: injected short write on %s (%d of %d bytes): %w",
			ff.Name(), n, len(p), io.ErrShortWrite)
	}
	return ff.File.Write(p)
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	sleep, err := ff.fs.decide("readat "+ff.Name(), opClass{})
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if err != nil {
		return 0, err
	}
	return ff.File.ReadAt(p, off)
}
