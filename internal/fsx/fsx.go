// Package fsx is the filesystem seam of the persistence layers: a minimal
// interface over the operations internal/store (the baseline cache and the
// spill area) performs, with a passthrough OS implementation for
// production and a deterministic fault-injecting implementation for the
// chaos test suite (see fault.go). Routing every store and spill
// operation through FS is what lets the test suite replay seeded disk
// failures — EIO, ENOSPC, short writes, rename failures, latency, a
// crash-after-N-ops disk — through full certifications and assert that
// every verdict stays exact or degrades explicitly.
//
// The package also owns the transient-vs-permanent error classification
// (Transient) and the bounded-backoff retry helper (retry.go) the store
// layers use, so real and injected faults are retried by one policy.
package fsx

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"syscall"
)

// File is the open-file surface the store layers need: sequential writes
// for in-flight entries, random-access reads for spilled runs.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	// Name returns the path the file was opened or created with.
	Name() string
}

// FS is the filesystem interface every internal/store operation routes
// through. Implementations must be safe for concurrent use; the OS
// passthrough trivially is, and the fault injector serializes its fault
// schedule internally.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	MkdirTemp(dir, pattern string) (string, error)
	CreateTemp(dir, pattern string) (File, error)
	Open(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	RemoveAll(path string) error
	ReadDir(name string) ([]os.DirEntry, error)
}

// OS is the passthrough implementation: every method is the corresponding
// os package call. It is the value nil FS fields resolve to.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) MkdirTemp(dir, pattern string) (string, error) {
	return os.MkdirTemp(dir, pattern)
}
func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) Open(name string) (File, error)               { return os.Open(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) RemoveAll(path string) error                { return os.RemoveAll(path) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

// Or returns f, or OS when f is nil — the one place the nil-means-OS
// convention is implemented.
func Or(f FS) FS {
	if f == nil {
		return OS
	}
	return f
}

// Transient reports whether err looks like a temporary I/O condition a
// bounded retry can plausibly outlast: an I/O error blip, an interrupted
// or would-block syscall, a busy file, or a short write. Everything else
// — no space, read-only or permission failures, missing files, a crashed
// (injected) disk — is permanent: retrying cannot help, and the caller
// must degrade instead (uncached certification, seal-in-RAM, an explicit
// miss).
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrCrashed) || errors.Is(err, fs.ErrNotExist) || errors.Is(err, fs.ErrPermission) {
		return false
	}
	for _, t := range []error{syscall.EIO, syscall.EINTR, syscall.EAGAIN, syscall.EBUSY, io.ErrShortWrite} {
		if errors.Is(err, t) {
			return true
		}
	}
	return false
}
