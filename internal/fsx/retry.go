package fsx

// Bounded retry with exponential backoff and jitter — the one retry
// policy of the persistence layers. Only Transient errors are retried;
// permanent failures return immediately so the caller can degrade.
// Backoff sleeps are context-aware and individually capped well under
// 100ms, so a cancelled certification stops waiting on a sick disk
// within one sleep.

import (
	"context"
	"sync/atomic"
	"time"
)

// RetryPolicy bounds the retry loop. The zero value means the defaults
// noted per field.
type RetryPolicy struct {
	// Retries is how many times a transiently failing operation is
	// re-attempted after its first failure: 0 means the default (2),
	// negative disables retrying.
	Retries int
	// Base is the first backoff sleep (default 500µs); each retry
	// doubles it.
	Base time.Duration
	// Cap bounds every individual sleep (default 20ms) — the guarantee
	// that cancellation wins within 100ms even mid-backoff.
	Cap time.Duration
}

const (
	defaultRetries = 2
	defaultBase    = 500 * time.Microsecond
	defaultCap     = 20 * time.Millisecond
)

func (p RetryPolicy) withDefaults() RetryPolicy {
	switch {
	case p.Retries == 0:
		p.Retries = defaultRetries
	case p.Retries < 0:
		p.Retries = 0
	}
	if p.Base <= 0 {
		p.Base = defaultBase
	}
	if p.Cap <= 0 {
		p.Cap = defaultCap
	}
	return p
}

// jitterState seeds the backoff jitter; a process-wide splitmix64 walk is
// enough — jitter decorrelates concurrent retriers, it carries no
// semantics.
var jitterState atomic.Uint64

func jitter() uint64 {
	z := jitterState.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b9b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Do runs op, re-attempting transient failures under the policy. It
// returns the number of retries performed and op's final error: nil on
// success, the permanent error that stopped the loop, the transient
// error that survived every attempt, or ctx's error when cancellation
// won a backoff sleep. The caller meters retries and give-ups.
func (p RetryPolicy) Do(ctx context.Context, op func() error) (retries int, err error) {
	p = p.withDefaults()
	for attempt := 0; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return retries, cerr
		}
		err = op()
		if err == nil || !Transient(err) || attempt >= p.Retries {
			return retries, err
		}
		retries++
		d := p.Base << uint(attempt)
		if d > p.Cap {
			d = p.Cap
		}
		// Full jitter in [d/2, d): staggers concurrent retriers without
		// losing the exponential shape.
		d = d/2 + time.Duration(jitter()%uint64(d/2+1))
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return retries, ctx.Err()
		case <-t.C:
		}
	}
}
