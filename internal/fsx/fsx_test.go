package fsx

import (
	"context"
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestTransientClassification(t *testing.T) {
	transient := []error{
		syscall.EIO,
		syscall.EINTR,
		syscall.EAGAIN,
		syscall.EBUSY,
		io.ErrShortWrite,
		&os.PathError{Op: "read", Path: "x", Err: syscall.EIO},
	}
	for _, err := range transient {
		if !Transient(err) {
			t.Errorf("Transient(%v) = false, want true", err)
		}
	}
	permanent := []error{
		nil,
		syscall.ENOSPC,
		fs.ErrNotExist,
		fs.ErrPermission,
		ErrCrashed,
		&os.PathError{Op: "open", Path: "x", Err: syscall.ENOENT},
		errors.New("opaque"),
	}
	for _, err := range permanent {
		if Transient(err) {
			t.Errorf("Transient(%v) = true, want false", err)
		}
	}
	// An injected fault wraps a real errno, so one classification covers
	// injected and genuine failures.
	f := NewFaultFS(OS, FaultConfig{Seed: 1, EIO: 1})
	if err := f.Remove(filepath.Join(t.TempDir(), "x")); !Transient(err) {
		t.Errorf("injected EIO not classified transient: %v", err)
	}
}

// TestFaultFSDeterministic pins the injector's core contract: the same
// seed and rates replay the same fault schedule over the same operation
// sequence.
func TestFaultFSDeterministic(t *testing.T) {
	cfg := FaultConfig{Seed: 42, EIO: 0.3, ENOSPC: 0.1, RenameFail: 0.2}
	run := func() []string {
		dir := t.TempDir()
		f := NewFaultFS(OS, cfg)
		var got []string
		for i := 0; i < 64; i++ {
			name := filepath.Join(dir, "f")
			err := f.WriteFile(name, []byte("payload"), 0o644)
			got = append(got, errClass(err))
			err = f.Rename(name, name+".2")
			got = append(got, errClass(err))
			_, err = f.ReadFile(name + ".2")
			got = append(got, errClass(err))
		}
		return got
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at op %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func errClass(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, syscall.ENOSPC):
		return "enospc"
	case errors.Is(err, syscall.EIO):
		return "eio"
	case errors.Is(err, io.ErrShortWrite):
		return "short"
	case errors.Is(err, ErrCrashed):
		return "crashed"
	case errors.Is(err, fs.ErrNotExist):
		// A real miss following an injected fault (e.g. rename of a file
		// whose write was suppressed): deterministic, but path-dependent
		// in its message.
		return "noent"
	default:
		return "other:" + err.Error()
	}
}

func TestFaultFSCrashAfter(t *testing.T) {
	dir := t.TempDir()
	f := NewFaultFS(OS, FaultConfig{CrashAfter: 3})
	for i := 0; i < 3; i++ {
		if err := f.WriteFile(filepath.Join(dir, "a"), []byte("x"), 0o644); err != nil {
			t.Fatalf("op %d before the crash failed: %v", i, err)
		}
	}
	for i := 0; i < 4; i++ {
		err := f.WriteFile(filepath.Join(dir, "b"), []byte("x"), 0o644)
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("op %d after the crash: err = %v, want ErrCrashed", i, err)
		}
		if Transient(err) {
			t.Fatal("a crashed disk must be permanent, not transient")
		}
	}
}

// TestFaultFSShortWritePersistsPrefix pins the torn-file behavior: a
// short write leaves the prefix on disk (what a real crash leaves for the
// framing layer to catch) and reports io.ErrShortWrite.
func TestFaultFSShortWritePersistsPrefix(t *testing.T) {
	dir := t.TempDir()
	f := NewFaultFS(OS, FaultConfig{Seed: 7, ShortWrite: 1, MaxInjected: 1})
	name := filepath.Join(dir, "torn")
	payload := []byte("0123456789abcdef")
	err := f.WriteFile(name, payload, 0o644)
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("err = %v, want io.ErrShortWrite", err)
	}
	got, rerr := os.ReadFile(name)
	if rerr != nil {
		t.Fatalf("torn file unreadable: %v", rerr)
	}
	if len(got) >= len(payload) || string(got) != string(payload[:len(got)]) {
		t.Fatalf("torn file holds %q, want a strict prefix of %q", got, payload)
	}
	// MaxInjected spent: the next write goes through whole.
	if err := f.WriteFile(name, payload, 0o644); err != nil {
		t.Fatalf("write after MaxInjected: %v", err)
	}
	if got, _ := os.ReadFile(name); string(got) != string(payload) {
		t.Fatalf("recovered write holds %q, want %q", got, payload)
	}
}

func TestRetryDoRetriesTransientThenSucceeds(t *testing.T) {
	calls := 0
	retries, err := RetryPolicy{Base: time.Microsecond}.Do(context.Background(), func() error {
		calls++
		if calls <= 2 {
			return syscall.EIO
		}
		return nil
	})
	if err != nil || retries != 2 || calls != 3 {
		t.Fatalf("got retries=%d calls=%d err=%v, want 2/3/nil", retries, calls, err)
	}
}

func TestRetryDoPermanentFailsImmediately(t *testing.T) {
	calls := 0
	retries, err := RetryPolicy{}.Do(context.Background(), func() error {
		calls++
		return syscall.ENOSPC
	})
	if !errors.Is(err, syscall.ENOSPC) || retries != 0 || calls != 1 {
		t.Fatalf("got retries=%d calls=%d err=%v, want 0/1/ENOSPC", retries, calls, err)
	}
}

func TestRetryDoExhaustsAttempts(t *testing.T) {
	calls := 0
	retries, err := RetryPolicy{Retries: 3, Base: time.Microsecond}.Do(context.Background(), func() error {
		calls++
		return syscall.EIO
	})
	if !errors.Is(err, syscall.EIO) || retries != 3 || calls != 4 {
		t.Fatalf("got retries=%d calls=%d err=%v, want 3/4/EIO", retries, calls, err)
	}
	retries, err = RetryPolicy{Retries: -1}.Do(context.Background(), func() error {
		return syscall.EIO
	})
	if !errors.Is(err, syscall.EIO) || retries != 0 {
		t.Fatalf("negative Retries: got retries=%d err=%v, want 0/EIO", retries, err)
	}
}

// TestRetryDoCancellationWins pins the ladder's latency guarantee: a
// cancelled context stops the retry loop within one capped backoff sleep
// (well under 100ms), even when the operation keeps failing transiently.
func TestRetryDoCancellationWins(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	start := time.Now()
	_, err := RetryPolicy{Retries: 1 << 20, Base: 10 * time.Millisecond, Cap: 20 * time.Millisecond}.
		Do(ctx, func() error {
			calls++
			if calls == 2 {
				cancel()
			}
			return syscall.EIO
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("cancellation took %v, want < 100ms", elapsed)
	}
}
