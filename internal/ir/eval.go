package ir

// EvalBinOp evaluates a pure binary operation on word values with the IR's
// total semantics: division and modulo by zero yield 0 (the interpreters
// never trap), shifts mask their count to 63, comparisons yield 0 or 1.
// Both the TSO simulator and the model checker execute BinOp through this
// single definition so their arithmetic can never diverge.
func EvalBinOp(op Op, a, b int64) int64 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpDiv:
		if b == 0 {
			return 0
		}
		return a / b
	case OpMod:
		if b == 0 {
			return 0
		}
		return a % b
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpShl:
		return a << (uint64(b) & 63)
	case OpShr:
		return a >> (uint64(b) & 63)
	case OpEq:
		return b2i(a == b)
	case OpNe:
		return b2i(a != b)
	case OpLt:
		return b2i(a < b)
	case OpLe:
		return b2i(a <= b)
	case OpGt:
		return b2i(a > b)
	case OpGe:
		return b2i(a >= b)
	}
	return 0
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
