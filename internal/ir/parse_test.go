package ir

import (
	"strings"
	"testing"
)

const mpSource = `
program mp
global data 1
global flag 1 = 0
main main

func producer params=0 regs=1 {
entry:
  r0 = const 1
  store data, r0
  store flag, r0
  ret
}

func consumer params=0 regs=4 {
entry:
  r0 = const 1
  jmp spin
spin:
  r1 = load flag          ; the acquire read
  r2 = ne r1, r0
  br r2, spin, done
done:
  r3 = load data
  assert r3, "data visible after flag"
  ret
}

func main params=0 regs=2 {
entry:
  r0 = spawn producer()
  r1 = spawn consumer()
  join r0
  join r1
  ret
}
`

func TestParseMP(t *testing.T) {
	p, err := Parse(mpSource)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Name != "mp" || p.Main != "main" {
		t.Fatalf("got name=%q main=%q", p.Name, p.Main)
	}
	if len(p.Globals) != 2 || len(p.Funcs) != 3 {
		t.Fatalf("got %d globals %d funcs", len(p.Globals), len(p.Funcs))
	}
	cons := p.Fn("consumer")
	if len(cons.Blocks) != 3 {
		t.Fatalf("consumer has %d blocks, want 3", len(cons.Blocks))
	}
	spin := cons.Blocks[1]
	if spin.Name != "spin" {
		t.Fatalf("second block is %q, want spin", spin.Name)
	}
	term := spin.Terminator()
	if term == nil || term.Kind != Br {
		t.Fatalf("spin terminator = %v", term)
	}
	if term.Then != spin {
		t.Fatal("spin back-edge not resolved to the same block")
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	orig, err := Parse(mpSource)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(orig)
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
	text2 := Format(back)
	if text != text2 {
		t.Fatalf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", text, text2)
	}
}

func TestRoundTripAllInstructionKinds(t *testing.T) {
	src := `
program kinds
global g 4
global s 1

func callee params=2 regs=3 {
entry:
  r2 = add r0, r1
  ret r2
}

func f params=1 regs=20 {
entry:
  r1 = const -7
  r2 = move r1
  r3 = mul r1, r2
  r4 = load g[r1]
  store g[r1], r4
  r5 = load s
  store s, r5
  r6 = addrof g[r1]
  r7 = addrof s
  r8 = gep r6, r1
  r9 = loadptr r8
  storeptr r8, r9
  r10 = alloca 4
  r11 = malloc 8
  r12 = cas r8, r1, r2
  r13 = fetchadd r8, r1
  fence full
  fence compiler
  r14 = call callee(r1, r2)
  call callee(r1, r2)
  r15 = spawn callee(r1, r2)
  join r15
  assert r1, "odd \"quoted\" message"
  print r1
  br r1, more, done
more:
  jmp done
done:
  ret
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	text := Format(p)
	p2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if Format(p2) != text {
		t.Fatal("round trip not stable")
	}
	// Spot-check the assert message survived quoting.
	var found bool
	p2.Fn("f").Instrs(func(in *Instr) {
		if in.Kind == Assert && in.Msg == `odd "quoted" message` {
			found = true
		}
	})
	if !found {
		t.Fatal("assert message lost in round trip")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unknown directive", "program x\nbogus y\n", "unknown top-level"},
		{"bad register", "program x\nfunc f params=0 regs=1 {\nentry:\n  rX = const 1\n  ret\n}\n", "register"},
		{"unknown instr", "program x\nfunc f params=0 regs=1 {\nentry:\n  r0 = zorble 1\n  ret\n}\n", "unknown instruction"},
		{"unknown global", "program x\nfunc f params=0 regs=1 {\nentry:\n  r0 = load nope\n  ret\n}\n", "unknown global"},
		{"undefined label", "program x\nfunc f params=0 regs=1 {\nentry:\n  jmp nowhere\n}\n", "undefined label"},
		{"duplicate label", "program x\nfunc f params=0 regs=1 {\nentry:\n  jmp entry\nentry:\n  ret\n}\n", "duplicate label"},
		{"unterminated func", "program x\nfunc f params=0 regs=1 {\nentry:\n  ret\n", "unterminated"},
		{"instr outside block", "program x\nfunc f params=0 regs=1 {\n  r0 = const 1\n}\n", "outside a block"},
		{"bad fence", "program x\nfunc f params=0 regs=1 {\nentry:\n  fence sideways\n  ret\n}\n", "fence"},
		{"validation propagates", "program x\nmain nope\n", "main function"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatal("Parse succeeded, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestParseComments(t *testing.T) {
	src := "program x ; trailing\n# whole-line hash comment\nglobal g 1 ; sized\nfunc f params=0 regs=1 {\nentry: \n  r0 = load g # read\n  ret\n}\n"
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Global("g") == nil {
		t.Fatal("global lost")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic on bad input")
		}
	}()
	MustParse("program x\nbogus\n")
}
