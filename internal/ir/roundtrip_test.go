package ir_test

import (
	"testing"

	"fenceplace/internal/ir"
	"fenceplace/internal/litmus"
	"fenceplace/internal/progs"
)

// corpusPrograms is every program the repo can name: the litmus suite
// and the full evaluation registry at default parameters.
func corpusPrograms() map[string]*ir.Program {
	out := make(map[string]*ir.Program)
	for _, t := range litmus.All() {
		out["litmus/"+t.Name] = t.Prog
	}
	for _, m := range progs.All() {
		out["progs/"+m.Name] = m.Default()
	}
	return out
}

// TestRoundTripCorpus pins the textual format as a lossless codec over
// the full corpus: Format → Parse → Format must be byte-identical.
func TestRoundTripCorpus(t *testing.T) {
	for name, prog := range corpusPrograms() {
		t.Run(name, func(t *testing.T) {
			text := ir.Format(prog)
			back, err := ir.Parse(text)
			if err != nil {
				t.Fatalf("Parse(Format(%s)): %v", name, err)
			}
			again := ir.Format(back)
			if again != text {
				t.Fatalf("round trip not byte-identical for %s:\n--- first ---\n%s\n--- second ---\n%s", name, text, again)
			}
		})
	}
}

// FuzzRoundTrip feeds the parser arbitrary text (seeded with the whole
// corpus) and checks the invariant that survives a successful parse:
// formatting is a fixed point, i.e. Format(Parse(Format(p))) == Format(p),
// and the reformatted text still parses.
func FuzzRoundTrip(f *testing.F) {
	for _, prog := range corpusPrograms() {
		f.Add(ir.Format(prog))
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := ir.Parse(src)
		if err != nil {
			return // invalid input is not the parser's round-trip contract
		}
		text := ir.Format(prog)
		back, err := ir.Parse(text)
		if err != nil {
			t.Fatalf("formatted output does not parse back: %v\n%s", err, text)
		}
		if again := ir.Format(back); again != text {
			t.Fatalf("format is not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", text, again)
		}
	})
}
