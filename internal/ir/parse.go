package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a program in the textual syntax produced by Print. The format
// is line-oriented:
//
//	program <name>
//	global <name> <size> [= v0 v1 ...]
//	main <fn>
//	func <name> params=<n> regs=<n> {
//	<label>:
//	  r1 = const 42
//	  ...
//	}
//
// Comments start with ';' or '#' and run to end of line. Parse validates the
// resulting program before returning it.
func Parse(src string) (*Program, error) {
	pr := &parser{prog: &Program{}}
	if err := pr.run(src); err != nil {
		return nil, err
	}
	if err := pr.prog.Validate(); err != nil {
		return nil, fmt.Errorf("ir: parsed program invalid: %w", err)
	}
	return pr.prog, nil
}

// MustParse is Parse for trusted embedded sources; it panics on error.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	prog *Program
	line int

	// per-function state
	fn      *Fn
	cur     *Block
	blocks  map[string]*Block // every mentioned block, defined or forward-referenced
	defined map[*Block]bool   // blocks whose label has appeared
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("ir: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *parser) run(src string) error {
	for _, raw := range strings.Split(src, "\n") {
		p.line++
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := p.statement(line); err != nil {
			return err
		}
	}
	if p.fn != nil {
		return p.errf("unterminated function %q (missing '}')", p.fn.Name)
	}
	return nil
}

func (p *parser) statement(line string) error {
	if p.fn == nil {
		return p.topLevel(line)
	}
	if line == "}" {
		return p.endFunc()
	}
	if strings.HasSuffix(line, ":") && !strings.Contains(line, " ") {
		return p.startLabel(strings.TrimSuffix(line, ":"))
	}
	if p.cur == nil {
		return p.errf("instruction outside a block (missing label?)")
	}
	in, err := p.instruction(line)
	if err != nil {
		return err
	}
	p.cur.Instrs = append(p.cur.Instrs, in)
	return nil
}

func (p *parser) topLevel(line string) error {
	f := strings.Fields(line)
	switch f[0] {
	case "program":
		if len(f) != 2 {
			return p.errf("want 'program <name>'")
		}
		p.prog.Name = f[1]
	case "main":
		if len(f) != 2 {
			return p.errf("want 'main <fn>'")
		}
		p.prog.Main = f[1]
	case "global":
		if len(f) < 3 {
			return p.errf("want 'global <name> <size> [= v...]'")
		}
		size, err := strconv.Atoi(f[2])
		if err != nil {
			return p.errf("bad global size %q", f[2])
		}
		g := &Global{Name: f[1], Size: size}
		if len(f) > 3 {
			if f[3] != "=" {
				return p.errf("want '=' before global initializers")
			}
			for _, v := range f[4:] {
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return p.errf("bad initializer %q", v)
				}
				g.Init = append(g.Init, n)
			}
		}
		p.prog.Globals = append(p.prog.Globals, g)
		p.prog.globals = nil // invalidate index
	case "func":
		// func <name> params=<n> regs=<n> {
		if len(f) != 4 && !(len(f) == 5 && f[4] == "{") {
			return p.errf("want 'func <name> params=<n> regs=<n> {'")
		}
		nparams, err := parseKV(f[2], "params")
		if err != nil {
			return p.errf("%v", err)
		}
		nregs, err := parseKV(f[3], "regs")
		if err != nil {
			return p.errf("%v", err)
		}
		p.fn = &Fn{Name: f[1], NParams: nparams, NRegs: nregs}
		p.blocks = make(map[string]*Block)
		p.defined = make(map[*Block]bool)
		p.cur = nil
		p.prog.Funcs = append(p.prog.Funcs, p.fn)
		p.prog.byName = nil // invalidate index
	default:
		return p.errf("unknown top-level directive %q", f[0])
	}
	return nil
}

func parseKV(s, key string) (int, error) {
	val, ok := strings.CutPrefix(s, key+"=")
	if !ok {
		return 0, fmt.Errorf("want '%s=<n>', got %q", key, s)
	}
	return strconv.Atoi(val)
}

func (p *parser) startLabel(name string) error {
	b, err := p.block(name)
	if err != nil {
		return err
	}
	if p.defined[b] {
		return p.errf("duplicate label %q", name)
	}
	p.defined[b] = true
	p.fn.Blocks = append(p.fn.Blocks, b)
	p.cur = b
	return nil
}

// block returns the named block, creating a forward-declared one on first
// mention. Declaration order in the file is preserved for defined blocks.
func (p *parser) block(name string) (*Block, error) {
	if name == "" {
		return nil, p.errf("empty block name")
	}
	if b, ok := p.blocks[name]; ok {
		return b, nil
	}
	b := &Block{Name: name}
	p.blocks[name] = b
	return b, nil
}

func (p *parser) endFunc() error {
	for name, b := range p.blocks {
		if !p.defined[b] {
			return p.errf("branch to undefined label %q in %q", name, p.fn.Name)
		}
	}
	p.fn = nil
	p.cur = nil
	p.blocks = nil
	p.defined = nil
	return nil
}

func (p *parser) reg(s string) (Reg, error) {
	if s == "_" {
		return NoReg, nil
	}
	num, ok := strings.CutPrefix(s, "r")
	if !ok {
		return 0, p.errf("want register, got %q", s)
	}
	n, err := strconv.Atoi(num)
	if err != nil || n < 0 {
		return 0, p.errf("bad register %q", s)
	}
	return Reg(n), nil
}

func (p *parser) imm(s string) (int64, error) {
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, p.errf("want integer, got %q", s)
	}
	return n, nil
}

// globalRef parses `name` or `name[rN]`.
func (p *parser) globalRef(s string) (*Global, Reg, error) {
	idx := NoReg
	name := s
	if i := strings.IndexByte(s, '['); i >= 0 {
		if !strings.HasSuffix(s, "]") {
			return nil, 0, p.errf("bad indexed global %q", s)
		}
		name = s[:i]
		r, err := p.reg(s[i+1 : len(s)-1])
		if err != nil {
			return nil, 0, err
		}
		idx = r
	}
	g := p.prog.Global(name)
	if g == nil {
		return nil, 0, p.errf("unknown global %q", name)
	}
	return g, idx, nil
}

// instruction parses one instruction line (already trimmed, comment-free).
func (p *parser) instruction(line string) (*Instr, error) {
	dst := NoReg
	rest := line
	if eq := strings.Index(line, " = "); eq > 0 && strings.HasPrefix(line, "r") {
		d, err := p.reg(strings.TrimSpace(line[:eq]))
		if err != nil {
			return nil, err
		}
		dst = d
		rest = strings.TrimSpace(line[eq+3:])
	}
	op, args, hasArgs := strings.Cut(rest, " ")
	args = strings.TrimSpace(args)
	_ = hasArgs
	split := func() []string {
		if args == "" {
			return nil
		}
		parts := strings.Split(args, ",")
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
		}
		return parts
	}

	switch op {
	case "const":
		v, err := p.imm(args)
		if err != nil {
			return nil, err
		}
		return &Instr{Kind: Const, Dst: dst, Imm: v}, nil
	case "move":
		a, err := p.reg(args)
		if err != nil {
			return nil, err
		}
		return &Instr{Kind: Move, Dst: dst, A: a}, nil
	case "load":
		g, idx, err := p.globalRef(args)
		if err != nil {
			return nil, err
		}
		return &Instr{Kind: Load, Dst: dst, G: g, Idx: idx}, nil
	case "store":
		a := split()
		if len(a) != 2 {
			return nil, p.errf("want 'store g[, idx], rV'")
		}
		g, idx, err := p.globalRef(a[0])
		if err != nil {
			return nil, err
		}
		v, err := p.reg(a[1])
		if err != nil {
			return nil, err
		}
		return &Instr{Kind: Store, G: g, Idx: idx, A: v}, nil
	case "loadptr":
		a, err := p.reg(args)
		if err != nil {
			return nil, err
		}
		return &Instr{Kind: LoadPtr, Dst: dst, Addr: a}, nil
	case "storeptr":
		a := split()
		if len(a) != 2 {
			return nil, p.errf("want 'storeptr rAddr, rV'")
		}
		addr, err := p.reg(a[0])
		if err != nil {
			return nil, err
		}
		v, err := p.reg(a[1])
		if err != nil {
			return nil, err
		}
		return &Instr{Kind: StorePtr, Addr: addr, A: v}, nil
	case "addrof":
		g, idx, err := p.globalRef(args)
		if err != nil {
			return nil, err
		}
		return &Instr{Kind: AddrOf, Dst: dst, G: g, Idx: idx}, nil
	case "gep":
		a := split()
		if len(a) != 2 {
			return nil, p.errf("want 'gep rBase, rOff'")
		}
		base, err := p.reg(a[0])
		if err != nil {
			return nil, err
		}
		off, err := p.reg(a[1])
		if err != nil {
			return nil, err
		}
		return &Instr{Kind: Gep, Dst: dst, A: base, B: off}, nil
	case "alloca", "malloc":
		v, err := p.imm(args)
		if err != nil {
			return nil, err
		}
		k := Alloca
		if op == "malloc" {
			k = Malloc
		}
		return &Instr{Kind: k, Dst: dst, Imm: v}, nil
	case "cas":
		a := split()
		if len(a) != 3 {
			return nil, p.errf("want 'cas rAddr, rOld, rNew'")
		}
		addr, err := p.reg(a[0])
		if err != nil {
			return nil, err
		}
		old, err := p.reg(a[1])
		if err != nil {
			return nil, err
		}
		nw, err := p.reg(a[2])
		if err != nil {
			return nil, err
		}
		return &Instr{Kind: CAS, Dst: dst, Addr: addr, A: old, B: nw}, nil
	case "fetchadd":
		a := split()
		if len(a) != 2 {
			return nil, p.errf("want 'fetchadd rAddr, rDelta'")
		}
		addr, err := p.reg(a[0])
		if err != nil {
			return nil, err
		}
		d, err := p.reg(a[1])
		if err != nil {
			return nil, err
		}
		return &Instr{Kind: FetchAdd, Dst: dst, Addr: addr, A: d}, nil
	case "fence":
		switch args {
		case "full":
			return &Instr{Kind: Fence, Imm: int64(FenceFull)}, nil
		case "compiler":
			return &Instr{Kind: Fence, Imm: int64(FenceCompiler)}, nil
		}
		return nil, p.errf("want 'fence full' or 'fence compiler'")
	case "br":
		a := split()
		if len(a) != 3 {
			return nil, p.errf("want 'br rC, then, else'")
		}
		c, err := p.reg(a[0])
		if err != nil {
			return nil, err
		}
		thenB, err := p.block(a[1])
		if err != nil {
			return nil, err
		}
		elseB, err := p.block(a[2])
		if err != nil {
			return nil, err
		}
		return &Instr{Kind: Br, A: c, Then: thenB, Else: elseB}, nil
	case "jmp":
		t, err := p.block(args)
		if err != nil {
			return nil, err
		}
		return &Instr{Kind: Jmp, Then: t}, nil
	case "ret":
		if args == "" {
			return &Instr{Kind: Ret, A: NoReg}, nil
		}
		v, err := p.reg(args)
		if err != nil {
			return nil, err
		}
		return &Instr{Kind: Ret, A: v}, nil
	case "call", "spawn":
		callee, argRegs, err := p.callExpr(args)
		if err != nil {
			return nil, err
		}
		k := Call
		if op == "spawn" {
			k = Spawn
		}
		return &Instr{Kind: k, Dst: dst, Callee: callee, Args: argRegs}, nil
	case "join":
		t, err := p.reg(args)
		if err != nil {
			return nil, err
		}
		return &Instr{Kind: Join, A: t}, nil
	case "assert":
		c, msg, ok := strings.Cut(args, ",")
		if !ok {
			return nil, p.errf("want 'assert rC, \"msg\"'")
		}
		cr, err := p.reg(strings.TrimSpace(c))
		if err != nil {
			return nil, err
		}
		m, err := strconv.Unquote(strings.TrimSpace(msg))
		if err != nil {
			return nil, p.errf("bad assert message: %v", err)
		}
		return &Instr{Kind: Assert, A: cr, Msg: m}, nil
	case "print":
		v, err := p.reg(args)
		if err != nil {
			return nil, err
		}
		return &Instr{Kind: Print, A: v}, nil
	default:
		if o, ok := OpFromName(op); ok {
			a := split()
			if len(a) != 2 {
				return nil, p.errf("want '%s rX, rY'", op)
			}
			x, err := p.reg(a[0])
			if err != nil {
				return nil, err
			}
			y, err := p.reg(a[1])
			if err != nil {
				return nil, err
			}
			return &Instr{Kind: BinOp, Dst: dst, Op: o, A: x, B: y}, nil
		}
		return nil, p.errf("unknown instruction %q", op)
	}
}

func (p *parser) callExpr(s string) (string, []Reg, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", nil, p.errf("want 'name(args)', got %q", s)
	}
	name := strings.TrimSpace(s[:open])
	inner := strings.TrimSpace(s[open+1 : len(s)-1])
	var regs []Reg
	if inner != "" {
		for _, part := range strings.Split(inner, ",") {
			r, err := p.reg(strings.TrimSpace(part))
			if err != nil {
				return "", nil, err
			}
			regs = append(regs, r)
		}
	}
	return name, regs, nil
}
