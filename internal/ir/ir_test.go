package ir

import (
	"strings"
	"testing"
)

// buildMP constructs the paper's Figure 4 MP (message-passing) example:
// producer writes data then flag; consumer spins on flag then reads data.
func buildMP(t testing.TB) *Program {
	t.Helper()
	pb := NewProgram("mp")
	data := pb.Global("data", 1)
	flag := pb.Global("flag", 1)

	prod := pb.Func("producer", 0)
	one := prod.Const(1)
	prod.Store(data, one)
	prod.Store(flag, one)
	prod.RetVoid()

	cons := pb.Func("consumer", 0)
	one2 := cons.Const(1)
	cons.SpinWhileNe(flag, NoReg, one2)
	v := cons.Load(data)
	cons.Assert(cons.Eq(v, one2), "consumer must observe data=1")
	cons.RetVoid()

	main := pb.Func("main", 0)
	t1 := main.Spawn("producer")
	t2 := main.Spawn("consumer")
	main.Join(t1)
	main.Join(t2)
	main.RetVoid()
	pb.SetMain("main")

	p, err := pb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestBuilderMP(t *testing.T) {
	p := buildMP(t)
	if got := len(p.Funcs); got != 3 {
		t.Fatalf("got %d funcs, want 3", got)
	}
	cons := p.Fn("consumer")
	if cons == nil {
		t.Fatal("consumer not found")
	}
	// The spin loop must produce a load feeding a branch.
	var loads, brs int
	cons.Instrs(func(in *Instr) {
		switch in.Kind {
		case Load:
			loads++
		case Br:
			brs++
		}
	})
	if loads < 2 {
		t.Errorf("consumer has %d loads, want >= 2 (flag spin + data)", loads)
	}
	if brs < 1 {
		t.Errorf("consumer has %d conditional branches, want >= 1", brs)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Program
		want  string
	}{
		{
			name: "empty block",
			build: func() *Program {
				return &Program{Name: "x", Funcs: []*Fn{{Name: "f", Blocks: []*Block{{Name: "entry"}}}}}
			},
			want: "empty",
		},
		{
			name: "missing terminator",
			build: func() *Program {
				return &Program{Name: "x", Funcs: []*Fn{{
					Name: "f", NRegs: 1,
					Blocks: []*Block{{Name: "entry", Instrs: []*Instr{{Kind: Const, Dst: 0, Imm: 1}}}},
				}}}
			},
			want: "terminator",
		},
		{
			name: "register out of range",
			build: func() *Program {
				return &Program{Name: "x", Funcs: []*Fn{{
					Name: "f", NRegs: 1,
					Blocks: []*Block{{Name: "entry", Instrs: []*Instr{
						{Kind: Const, Dst: 5, Imm: 1},
						{Kind: Ret, A: NoReg},
					}}},
				}}}
			},
			want: "out of range",
		},
		{
			name: "undefined callee",
			build: func() *Program {
				return &Program{Name: "x", Funcs: []*Fn{{
					Name: "f", NRegs: 1,
					Blocks: []*Block{{Name: "entry", Instrs: []*Instr{
						{Kind: Call, Dst: NoReg, Callee: "nope"},
						{Kind: Ret, A: NoReg},
					}}},
				}}}
			},
			want: "undefined function",
		},
		{
			name: "undefined main",
			build: func() *Program {
				return &Program{Name: "x", Main: "main"}
			},
			want: "main function",
		},
		{
			name: "arity mismatch",
			build: func() *Program {
				callee := &Fn{Name: "g", NParams: 2, NRegs: 2, Blocks: []*Block{
					{Name: "entry", Instrs: []*Instr{{Kind: Ret, A: NoReg}}},
				}}
				caller := &Fn{Name: "f", NRegs: 1, Blocks: []*Block{
					{Name: "entry", Instrs: []*Instr{
						{Kind: Call, Dst: NoReg, Callee: "g", Args: []Reg{0}},
						{Kind: Ret, A: NoReg},
					}}},
				}
				return &Program{Name: "x", Funcs: []*Fn{callee, caller}}
			},
			want: "want 2",
		},
		{
			name: "bad global size",
			build: func() *Program {
				return &Program{Name: "x", Globals: []*Global{{Name: "g", Size: 0}}}
			},
			want: "size 0",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.build().Validate()
			if err == nil {
				t.Fatal("Validate passed, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestUsesAndMemFlags(t *testing.T) {
	g := &Global{Name: "g", Size: 4}
	cases := []struct {
		in     Instr
		uses   int
		reads  bool
		writes bool
	}{
		{Instr{Kind: Const, Dst: 0, Imm: 7}, 0, false, false},
		{Instr{Kind: BinOp, Op: OpAdd, Dst: 2, A: 0, B: 1}, 2, false, false},
		{Instr{Kind: Load, Dst: 1, G: g, Idx: 0}, 1, true, false},
		{Instr{Kind: Load, Dst: 1, G: g, Idx: NoReg}, 0, true, false},
		{Instr{Kind: Store, G: g, Idx: 0, A: 1}, 2, false, true},
		{Instr{Kind: LoadPtr, Dst: 1, Addr: 0}, 1, true, false},
		{Instr{Kind: StorePtr, Addr: 0, A: 1}, 2, false, true},
		{Instr{Kind: CAS, Dst: 3, Addr: 0, A: 1, B: 2}, 3, true, true},
		{Instr{Kind: FetchAdd, Dst: 2, Addr: 0, A: 1}, 2, true, true},
		{Instr{Kind: Fence, Imm: int64(FenceFull)}, 0, false, false},
		{Instr{Kind: Gep, Dst: 2, A: 0, B: 1}, 2, false, false},
		{Instr{Kind: AddrOf, Dst: 1, G: g, Idx: 0}, 1, false, false},
	}
	for _, tc := range cases {
		if got := len(tc.in.Uses()); got != tc.uses {
			t.Errorf("%s: %d uses, want %d", tc.in.Kind, got, tc.uses)
		}
		if got := tc.in.ReadsMem(); got != tc.reads {
			t.Errorf("%s: ReadsMem=%v, want %v", tc.in.Kind, got, tc.reads)
		}
		if got := tc.in.WritesMem(); got != tc.writes {
			t.Errorf("%s: WritesMem=%v, want %v", tc.in.Kind, got, tc.writes)
		}
	}
}

func TestFinalizePositions(t *testing.T) {
	p := buildMP(t)
	p.Finalize()
	for _, f := range p.Funcs {
		for bi, b := range f.Blocks {
			if b.Fn() != f {
				t.Fatalf("%s/%s: wrong fn back-reference", f.Name, b.Name)
			}
			if b.ID() != bi {
				t.Fatalf("%s/%s: id %d, want %d", f.Name, b.Name, b.ID(), bi)
			}
			for pi, in := range b.Instrs {
				if in.Block() != b || in.Pos() != pi {
					t.Fatalf("%s/%s[%d]: bad back-reference", f.Name, b.Name, pi)
				}
			}
		}
	}
}

func TestBlockInsertRenumbers(t *testing.T) {
	p := buildMP(t)
	f := p.Fn("producer")
	b := f.Entry()
	n := len(b.Instrs)
	b.Insert(1, &Instr{Kind: Fence, Imm: int64(FenceFull), Synthetic: true})
	p.Finalize()
	if len(b.Instrs) != n+1 {
		t.Fatalf("got %d instrs, want %d", len(b.Instrs), n+1)
	}
	if b.Instrs[1].Kind != Fence {
		t.Fatalf("instr 1 is %s, want fence", b.Instrs[1].Kind)
	}
	for pi, in := range b.Instrs {
		if in.Pos() != pi {
			t.Fatalf("pos %d not renumbered (got %d)", pi, in.Pos())
		}
	}
	full, comp := p.CountFences(true)
	if full != 1 || comp != 0 {
		t.Fatalf("CountFences(synthetic)=(%d,%d), want (1,0)", full, comp)
	}
}

func TestCloneIsDeepAndMapped(t *testing.T) {
	p := buildMP(t)
	q, imap, bmap := p.Clone()
	if err := q.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	if q == p {
		t.Fatal("clone returned same program")
	}
	// Every instruction mapped, all pointers into the clone.
	count := 0
	for _, f := range p.Funcs {
		nf := q.Fn(f.Name)
		if nf == nil {
			t.Fatalf("clone missing func %s", f.Name)
		}
		for bi, b := range f.Blocks {
			nb := bmap[b]
			if nb == nil || nf.Blocks[bi] != nb {
				t.Fatalf("%s: block %s not mapped in order", f.Name, b.Name)
			}
			for pi, in := range b.Instrs {
				ni := imap[in]
				if ni == nil || nb.Instrs[pi] != ni {
					t.Fatalf("%s/%s[%d]: instruction not mapped", f.Name, b.Name, pi)
				}
				if ni == in {
					t.Fatal("clone shares instruction pointer")
				}
				if in.G != nil && ni.G == in.G {
					t.Fatal("clone shares global pointer")
				}
				if in.Then != nil && ni.Then != bmap[in.Then] {
					t.Fatal("clone branch target not remapped")
				}
				count++
			}
		}
	}
	// Mutating the clone must not affect the original.
	q.Fn("producer").Entry().Insert(0, &Instr{Kind: Fence, Imm: int64(FenceFull)})
	if got := len(p.Fn("producer").Entry().Instrs); got != 4 {
		t.Fatalf("original mutated by clone edit: %d instrs", got)
	}
}

func TestSuccs(t *testing.T) {
	p := buildMP(t)
	cons := p.Fn("consumer")
	// Entry jumps to the while head; head branches to body/exit.
	entry := cons.Entry()
	succs := entry.Succs()
	if len(succs) != 1 {
		t.Fatalf("entry has %d succs, want 1", len(succs))
	}
	head := succs[0]
	hs := head.Succs()
	if len(hs) != 2 {
		t.Fatalf("loop head has %d succs, want 2", len(hs))
	}
	// Ret block has no successors.
	last := cons.Blocks[len(cons.Blocks)-1]
	if n := len(last.Succs()); n != 0 {
		t.Fatalf("ret block has %d succs, want 0", n)
	}
	// A Br with equal targets deduplicates.
	b := &Block{Name: "x"}
	b.Instrs = []*Instr{{Kind: Br, A: 0, Then: b, Else: b}}
	if n := len(b.Succs()); n != 1 {
		t.Fatalf("self-br has %d succs, want 1", n)
	}
}

func TestOpAndKindNames(t *testing.T) {
	for o := Op(0); o < opEnd; o++ {
		name := o.String()
		if strings.Contains(name, "op(") {
			t.Fatalf("op %d has no name", o)
		}
		back, ok := OpFromName(name)
		if !ok || back != o {
			t.Fatalf("OpFromName(%q) = %v,%v, want %v", name, back, ok, o)
		}
	}
	if _, ok := OpFromName("frobnicate"); ok {
		t.Fatal("OpFromName accepted nonsense")
	}
	for k := Kind(0); k < kindEnd; k++ {
		if strings.Contains(k.String(), "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

func TestStructuredControlFlow(t *testing.T) {
	pb := NewProgram("ctl")
	g := pb.Global("g", 8)
	b := pb.Func("f", 1)
	x := b.Param(0)
	// if/else with both arms
	b.IfElse(b.Gt(x, b.Const(0)), func() {
		b.Store(g, x)
	}, func() {
		b.StoreIdx(g, b.Const(1), x)
	})
	// nested For over constant range
	b.ForConst(0, 4, func(i Reg) {
		v := b.LoadIdx(g, i)
		b.If(b.Gt(v, b.Const(10)), func() {
			b.StoreIdx(g, i, b.Const(10))
		})
	})
	// DoWhile
	n := b.Move(b.Const(3))
	b.DoWhile(func() Reg {
		b.MoveTo(n, b.Sub(n, b.Const(1)))
		return b.Gt(n, b.Const(0))
	})
	b.Ret(n)
	pb.SetMain("f")
	// main must exist for SetMain; point at f
	p, err := pb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	f := p.Fn("f")
	if len(f.Blocks) < 8 {
		t.Fatalf("structured helpers produced only %d blocks", len(f.Blocks))
	}
	// All blocks reachable-ish sanity: every block except entry has a predecessor.
	preds := map[*Block]int{}
	for _, blk := range f.Blocks {
		for _, s := range blk.Succs() {
			preds[s]++
		}
	}
	for _, blk := range f.Blocks[1:] {
		if preds[blk] == 0 {
			t.Errorf("block %s unreachable", blk.Name)
		}
	}
}

func TestEmitAfterTerminatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("emit after terminator did not panic")
		}
	}()
	pb := NewProgram("x")
	b := pb.Func("f", 0)
	b.RetVoid()
	b.Const(1) // must panic
}

func TestProgramIndexInvalidation(t *testing.T) {
	pb := NewProgram("x")
	b := pb.Func("f", 0)
	b.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Fn("f") == nil {
		t.Fatal("Fn(f) nil after build")
	}
	if p.Fn("missing") != nil || p.Global("missing") != nil {
		t.Fatal("lookup of missing name returned non-nil")
	}
}
