package ir

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// quickBuild constructs a random valid program from a seed, exercising the
// builder's full surface.
func quickBuild(seed int64) *Program {
	rng := rand.New(rand.NewSource(seed))
	pb := NewProgram("q")
	g := pb.Global("g", 8)
	s := pb.Global("s", 1)
	b := pb.Func("f", 1)
	v := b.Move(b.Param(0))
	n := 3 + rng.Intn(12)
	for i := 0; i < n; i++ {
		switch rng.Intn(8) {
		case 0:
			v = b.Add(v, b.Const(int64(rng.Intn(100))))
		case 1:
			b.Store(s, v)
		case 2:
			v = b.Load(s)
		case 3:
			b.StoreIdx(g, b.Mod(v, b.Const(8)), v)
		case 4:
			b.If(b.Gt(v, b.Const(5)), func() {
				b.Store(s, b.Const(1))
			})
		case 5:
			ptr := b.AddrOfIdx(g, b.Mod(v, b.Const(8)))
			b.StorePtr(ptr, v)
			v = b.LoadPtr(ptr)
		case 6:
			b.ForConst(0, int64(1+rng.Intn(3)), func(j Reg) {
				b.StoreIdx(g, j, j)
			})
		case 7:
			b.Fence(FenceFull)
		}
	}
	b.Ret(v)
	main := pb.Func("main", 0)
	main.CallVoid("f", main.Const(3))
	main.RetVoid()
	pb.SetMain("main")
	return pb.MustBuild()
}

// TestQuickFormatParseRoundTrip: for random programs, Format -> Parse ->
// Format is a fixed point and preserves the instruction count.
func TestQuickFormatParseRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		p := quickBuild(seed % 100000)
		text := Format(p)
		back, err := Parse(text)
		if err != nil {
			t.Logf("reparse error: %v", err)
			return false
		}
		if back.NumInstrs() != p.NumInstrs() {
			return false
		}
		return Format(back) == text
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCloneIsIdentical: cloning preserves the textual form and the
// validity of random programs.
func TestQuickCloneIsIdentical(t *testing.T) {
	prop := func(seed int64) bool {
		p := quickBuild(seed % 100000)
		c, imap, _ := p.Clone()
		if err := c.Validate(); err != nil {
			return false
		}
		if len(imap) != p.NumInstrs() {
			return false
		}
		return Format(c) == Format(p)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
