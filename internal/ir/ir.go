// Package ir defines the intermediate representation that all analyses in
// this module operate on: an infinite-register, load/store, word-addressed
// IR in the style of the paper's Section 4 ("all the algorithms operate on
// infinite register load-store intermediate representations").
//
// A Program is a set of word-sized shared Globals (scalars or arrays) plus a
// set of Fns. Each Fn is a control-flow graph of Blocks; each Block is a
// straight-line sequence of Instrs ending in a terminator (Br, Jmp or Ret).
// Registers are function-local virtual registers; there is no implicit
// memory traffic — every access to shared state is an explicit Load, Store,
// LoadPtr, StorePtr, CAS or FetchAdd instruction, which is exactly the shape
// the backwards slicer and the escape analysis need.
//
// Pointers are plain word values: every Global, Alloca and Malloc occupies a
// contiguous range of words in a flat address space laid out by the
// interpreter (package tso). AddrOf and Gep perform address arithmetic in
// word units, mirroring LLVM's GetElementPtr at the precision the paper's
// Address+Control algorithm cares about.
package ir

import (
	"fmt"
	"strings"
)

// Reg names a function-local virtual register. Registers 0..NParams-1 of a
// Fn hold its arguments on entry. NoReg marks an absent operand.
type Reg int32

// NoReg is the sentinel for "no register operand".
const NoReg Reg = -1

// Op enumerates the pure binary operators of the IR. Expressions in the
// paper's while-language are pure; BinOp is their entire algebra.
type Op uint8

// Binary operators. Comparison operators yield 0 or 1.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv // division by zero yields 0 (the interpreter never traps)
	OpMod // modulo by zero yields 0
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	opEnd // sentinel; keep last
)

var opNames = [...]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// OpFromName maps a textual operator name back to its Op. The boolean
// reports whether the name is known.
func OpFromName(s string) (Op, bool) {
	for i, n := range opNames {
		if n == s {
			return Op(i), true
		}
	}
	return 0, false
}

// Kind enumerates instruction kinds.
type Kind uint8

// Instruction kinds. The comment on each line documents which Instr fields
// the kind uses; all other fields are ignored for that kind.
const (
	Const    Kind = iota // Dst = Imm
	Move                 // Dst = A
	BinOp                // Dst = A <Op> B
	Load                 // Dst = G[Idx]      (Idx == NoReg for scalars)
	Store                // G[Idx] = A
	LoadPtr              // Dst = *Addr
	StorePtr             // *Addr = A
	AddrOf               // Dst = &G[Idx]     (Idx == NoReg for &G)
	Gep                  // Dst = A + B       (word-scaled address arithmetic)
	Alloca               // Dst = &fresh local block of Imm words
	Malloc               // Dst = &fresh heap block of Imm words
	CAS                  // Dst = (*Addr == A) ? (*Addr = B; 1) : 0, atomically
	FetchAdd             // Dst = *Addr; *Addr += A, atomically
	Fence                // memory fence; Imm is a FenceKind
	Br                   // if A != 0 goto Then else goto Else; block terminator
	Jmp                  // goto Then; block terminator
	Ret                  // return A (A == NoReg for void); block terminator
	Call                 // Dst = Callee(Args...)  (Dst may be NoReg)
	Spawn                // Dst = thread id of new thread running Callee(Args...)
	Join                 // wait for thread id in A
	Assert               // runtime check: fail with Msg if A == 0
	Print                // debugging: print A
	kindEnd              // sentinel; keep last
)

var kindNames = [...]string{
	Const: "const", Move: "move", BinOp: "binop", Load: "load", Store: "store",
	LoadPtr: "loadptr", StorePtr: "storeptr", AddrOf: "addrof", Gep: "gep",
	Alloca: "alloca", Malloc: "malloc", CAS: "cas", FetchAdd: "fetchadd",
	Fence: "fence", Br: "br", Jmp: "jmp", Ret: "ret", Call: "call",
	Spawn: "spawn", Join: "join", Assert: "assert", Print: "print",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// FenceKind distinguishes the two fence strengths the paper's Section 4.4
// places: full hardware fences (MFENCE on x86-TSO, enforcing w→r) and
// compiler-only barriers (the "empty memory-clobbering assembly" that
// constrains the compiler but emits nothing).
type FenceKind int64

const (
	// FenceFull is a full hardware memory fence: it drains the store
	// buffer in the TSO simulator and orders everything.
	FenceFull FenceKind = iota
	// FenceCompiler is a compiler barrier: it pins compile-time order but
	// costs nothing at run time and does not constrain the hardware.
	FenceCompiler
)

func (f FenceKind) String() string {
	switch f {
	case FenceFull:
		return "full"
	case FenceCompiler:
		return "compiler"
	}
	return fmt.Sprintf("fencekind(%d)", int64(f))
}

// Instr is a single IR instruction. One concrete struct covers all kinds
// (the Kind field selects which operands are meaningful — see the constants
// above); instruction identity is pointer identity, which is what every
// analysis keys on.
type Instr struct {
	Kind   Kind
	Dst    Reg   // result register, or NoReg
	A, B   Reg   // generic operands (see per-Kind comments)
	Idx    Reg   // array index for Load/Store/AddrOf, or NoReg
	Addr   Reg   // pointer operand for LoadPtr/StorePtr/CAS/FetchAdd
	Op     Op    // operator for BinOp
	Imm    int64 // literal for Const, size for Alloca/Malloc, FenceKind for Fence
	G      *Global
	Callee string // callee name for Call/Spawn
	Args   []Reg  // call/spawn arguments
	Then   *Block // Br taken target; Jmp target
	Else   *Block // Br fall-through target
	Msg    string // Assert message

	// Synthetic marks an instruction inserted by a tool (fence placement)
	// rather than written by the "programmer"; the printers surface it and
	// experiment accounting keys on it.
	Synthetic bool

	blk *Block // owning block; maintained by Fn.renumber
	pos int    // index within blk.Instrs; maintained by Fn.renumber
}

// Block returns the basic block containing the instruction. It is valid
// after the owning Program (or Fn) has been finalized with Finalize.
func (i *Instr) Block() *Block { return i.blk }

// Pos returns the instruction's index within its block. It is valid after
// Finalize and is recomputed whenever instructions are inserted.
func (i *Instr) Pos() int { return i.pos }

// ReadsMem reports whether the instruction performs a shared-memory read.
// CAS and FetchAdd are read-modify-writes; per the paper's Section 3 they
// are treated as a read followed by a write at one program point.
func (i *Instr) ReadsMem() bool {
	switch i.Kind {
	case Load, LoadPtr, CAS, FetchAdd:
		return true
	}
	return false
}

// WritesMem reports whether the instruction performs a shared-memory write.
// A failed CAS does not write, but the analysis must treat it as a potential
// write, which is the conservative direction.
func (i *Instr) WritesMem() bool {
	switch i.Kind {
	case Store, StorePtr, CAS, FetchAdd:
		return true
	}
	return false
}

// IsAccess reports whether the instruction touches shared memory at all.
func (i *Instr) IsAccess() bool { return i.ReadsMem() || i.WritesMem() }

// IsTerminator reports whether the instruction ends a basic block.
func (i *Instr) IsTerminator() bool {
	switch i.Kind {
	case Br, Jmp, Ret:
		return true
	}
	return false
}

// Def returns the register the instruction defines, or NoReg. Call and
// Spawn may legitimately discard their results (Dst == NoReg); all other
// value-producing kinds always define Dst.
func (i *Instr) Def() Reg {
	switch i.Kind {
	case Const, Move, BinOp, Load, LoadPtr, AddrOf, Gep, Alloca, Malloc, CAS, FetchAdd:
		return i.Dst
	case Call, Spawn:
		return i.Dst
	}
	return NoReg
}

// Uses returns the registers the instruction reads. The result is a fresh
// slice and may be retained by the caller.
func (i *Instr) Uses() []Reg {
	var u []Reg
	add := func(r Reg) {
		if r != NoReg {
			u = append(u, r)
		}
	}
	switch i.Kind {
	case Const, Alloca, Malloc, Fence:
	case Move:
		add(i.A)
	case BinOp, Gep:
		add(i.A)
		add(i.B)
	case Load:
		add(i.Idx)
	case Store:
		add(i.Idx)
		add(i.A)
	case LoadPtr:
		add(i.Addr)
	case StorePtr:
		add(i.Addr)
		add(i.A)
	case AddrOf:
		add(i.Idx)
	case CAS:
		add(i.Addr)
		add(i.A)
		add(i.B)
	case FetchAdd:
		add(i.Addr)
		add(i.A)
	case Br, Ret, Join, Assert, Print:
		add(i.A)
	case Jmp:
	case Call, Spawn:
		for _, a := range i.Args {
			add(a)
		}
	}
	return u
}

// AddrOperand returns the register holding the pointer this instruction
// dereferences, or NoReg if the instruction addresses memory directly (via
// G) or does not access memory.
func (i *Instr) AddrOperand() Reg {
	switch i.Kind {
	case LoadPtr, StorePtr, CAS, FetchAdd:
		return i.Addr
	}
	return NoReg
}

// Global is a shared memory location: a scalar (Size 1) or a word array.
// Every Global thread-escapes by definition — it is reachable from every
// thread — which is exactly the Pensieve escape rule for globals.
type Global struct {
	Name string
	Size int     // number of words; must be >= 1
	Init []int64 // optional initial values (zero-filled if shorter than Size)
}

func (g *Global) String() string { return g.Name }

// Block is a basic block: straight-line instructions ending in a terminator.
type Block struct {
	Name   string
	Instrs []*Instr

	fn *Fn
	id int
}

// Fn returns the function owning the block (valid after Finalize).
func (b *Block) Fn() *Fn { return b.fn }

// ID returns the block's index within its function (valid after Finalize).
func (b *Block) ID() int { return b.id }

// Terminator returns the block's final instruction, or nil if the block is
// empty or unterminated (only possible before validation).
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !t.IsTerminator() {
		return nil
	}
	return t
}

// Succs returns the block's successor blocks in the CFG.
func (b *Block) Succs() []*Block {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	switch t.Kind {
	case Br:
		if t.Then == t.Else {
			return []*Block{t.Then}
		}
		return []*Block{t.Then, t.Else}
	case Jmp:
		return []*Block{t.Then}
	}
	return nil
}

// Insert places instr at index pos within the block (0 ≤ pos ≤ len). The
// owning function must be re-finalized before position queries are used.
func (b *Block) Insert(pos int, instr *Instr) {
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[pos+1:], b.Instrs[pos:])
	b.Instrs[pos] = instr
}

// Fn is a function: an entry block plus the rest of its CFG. Parameters
// arrive in registers 0..NParams-1.
type Fn struct {
	Name    string
	NParams int
	NRegs   int // registers are 0..NRegs-1
	Blocks  []*Block
}

// Entry returns the function's entry block (Blocks[0]).
func (f *Fn) Entry() *Block { return f.Blocks[0] }

// renumber refreshes the back-references (owning block, position, block id)
// that analyses rely on. It must run after any structural mutation.
func (f *Fn) renumber() {
	for bi, b := range f.Blocks {
		b.fn = f
		b.id = bi
		for pi, in := range b.Instrs {
			in.blk = b
			in.pos = pi
		}
	}
}

// Instrs calls visit for every instruction in the function, in block order.
func (f *Fn) Instrs(visit func(*Instr)) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			visit(in)
		}
	}
}

// NumInstrs returns the total instruction count of the function.
func (f *Fn) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Program is a whole compilation unit: globals, functions and the name of
// the main function the interpreter starts in.
type Program struct {
	Name    string
	Globals []*Global
	Funcs   []*Fn
	Main    string

	byName  map[string]*Fn
	globals map[string]*Global
}

// Fn returns the function with the given name, or nil.
func (p *Program) Fn(name string) *Fn {
	if p.byName == nil {
		p.index()
	}
	return p.byName[name]
}

// Global returns the global with the given name, or nil.
func (p *Program) Global(name string) *Global {
	if p.globals == nil {
		p.index()
	}
	return p.globals[name]
}

func (p *Program) index() {
	p.byName = make(map[string]*Fn, len(p.Funcs))
	for _, f := range p.Funcs {
		p.byName[f.Name] = f
	}
	p.globals = make(map[string]*Global, len(p.Globals))
	for _, g := range p.Globals {
		p.globals[g.Name] = g
	}
}

// Finalize refreshes all derived indices and back-references. Call it after
// construction and after any structural mutation (e.g. fence insertion).
func (p *Program) Finalize() {
	p.index()
	for _, f := range p.Funcs {
		f.renumber()
	}
}

// NumInstrs returns the total instruction count of the program.
func (p *Program) NumInstrs() int {
	n := 0
	for _, f := range p.Funcs {
		n += f.NumInstrs()
	}
	return n
}

// Validate checks structural invariants: every block is non-empty and
// terminator-ended, terminators only appear last, branch targets belong to
// the same function, register numbers are in range, callees and globals
// exist, and Main is defined. It returns the first violation found.
func (p *Program) Validate() error {
	p.Finalize()
	if p.Main != "" && p.Fn(p.Main) == nil {
		return fmt.Errorf("program %q: main function %q not defined", p.Name, p.Main)
	}
	for _, g := range p.Globals {
		if g.Size < 1 {
			return fmt.Errorf("global %q: size %d < 1", g.Name, g.Size)
		}
		if len(g.Init) > g.Size {
			return fmt.Errorf("global %q: %d initializers for size %d", g.Name, len(g.Init), g.Size)
		}
	}
	for _, f := range p.Funcs {
		if err := p.validateFn(f); err != nil {
			return err
		}
	}
	return nil
}

func (p *Program) validateFn(f *Fn) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("func %q: no blocks", f.Name)
	}
	if f.NParams > f.NRegs {
		return fmt.Errorf("func %q: NParams %d > NRegs %d", f.Name, f.NParams, f.NRegs)
	}
	inFn := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		inFn[b] = true
	}
	checkReg := func(b *Block, in *Instr, r Reg, what string) error {
		if r == NoReg {
			return nil
		}
		if int(r) < 0 || int(r) >= f.NRegs {
			return fmt.Errorf("func %q block %q: %s register r%d out of range [0,%d)", f.Name, b.Name, what, r, f.NRegs)
		}
		return nil
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("func %q: block %q is empty", f.Name, b.Name)
		}
		for pi, in := range b.Instrs {
			last := pi == len(b.Instrs)-1
			if in.IsTerminator() != last {
				if last {
					return fmt.Errorf("func %q: block %q does not end in a terminator", f.Name, b.Name)
				}
				return fmt.Errorf("func %q: block %q has terminator %s at non-final position %d", f.Name, b.Name, in.Kind, pi)
			}
			if err := checkReg(b, in, in.Def(), "destination"); err != nil {
				return err
			}
			for _, u := range in.Uses() {
				if err := checkReg(b, in, u, "use of"); err != nil {
					return err
				}
			}
			switch in.Kind {
			case Br:
				if in.Then == nil || in.Else == nil || !inFn[in.Then] || !inFn[in.Else] {
					return fmt.Errorf("func %q block %q: br with foreign or nil target", f.Name, b.Name)
				}
			case Jmp:
				if in.Then == nil || !inFn[in.Then] {
					return fmt.Errorf("func %q block %q: jmp with foreign or nil target", f.Name, b.Name)
				}
			case Load, Store, AddrOf:
				if in.G == nil {
					return fmt.Errorf("func %q block %q: %s without global", f.Name, b.Name, in.Kind)
				}
				if p.Global(in.G.Name) != in.G {
					return fmt.Errorf("func %q block %q: %s references unregistered global %q", f.Name, b.Name, in.Kind, in.G.Name)
				}
			case Call, Spawn:
				callee := p.Fn(in.Callee)
				if callee == nil {
					return fmt.Errorf("func %q block %q: %s of undefined function %q", f.Name, b.Name, in.Kind, in.Callee)
				}
				if len(in.Args) != callee.NParams {
					return fmt.Errorf("func %q block %q: %s %q with %d args, want %d", f.Name, b.Name, in.Kind, in.Callee, len(in.Args), callee.NParams)
				}
			case Alloca, Malloc:
				if in.Imm < 1 {
					return fmt.Errorf("func %q block %q: %s of %d words", f.Name, b.Name, in.Kind, in.Imm)
				}
			case Fence:
				if fk := FenceKind(in.Imm); fk != FenceFull && fk != FenceCompiler {
					return fmt.Errorf("func %q block %q: unknown fence kind %d", f.Name, b.Name, in.Imm)
				}
			}
		}
	}
	return nil
}

// Clone produces a deep copy of the program along with instruction and block
// correspondence maps from the original to the copy. Analyses run on the
// original; instrumentation applies to the clone via the maps, so one
// analyzed program can be lowered under several fence-placement variants.
func (p *Program) Clone() (*Program, map[*Instr]*Instr, map[*Block]*Block) {
	np := &Program{Name: p.Name, Main: p.Main}
	gmap := make(map[*Global]*Global, len(p.Globals))
	for _, g := range p.Globals {
		ng := &Global{Name: g.Name, Size: g.Size, Init: append([]int64(nil), g.Init...)}
		gmap[g] = ng
		np.Globals = append(np.Globals, ng)
	}
	imap := make(map[*Instr]*Instr)
	bmap := make(map[*Block]*Block)
	for _, f := range p.Funcs {
		nf := &Fn{Name: f.Name, NParams: f.NParams, NRegs: f.NRegs}
		for _, b := range f.Blocks {
			nb := &Block{Name: b.Name}
			bmap[b] = nb
			nf.Blocks = append(nf.Blocks, nb)
		}
		for _, b := range f.Blocks {
			nb := bmap[b]
			for _, in := range b.Instrs {
				ni := &Instr{
					Kind: in.Kind, Dst: in.Dst, A: in.A, B: in.B, Idx: in.Idx,
					Addr: in.Addr, Op: in.Op, Imm: in.Imm, Callee: in.Callee,
					Msg: in.Msg, Synthetic: in.Synthetic,
					Args: append([]Reg(nil), in.Args...),
				}
				if in.G != nil {
					ni.G = gmap[in.G]
				}
				imap[in] = ni
				nb.Instrs = append(nb.Instrs, ni)
			}
		}
		np.Funcs = append(np.Funcs, nf)
	}
	// Patch branch targets now that every block has a copy.
	for old, ni := range imap {
		if old.Then != nil {
			ni.Then = bmap[old.Then]
		}
		if old.Else != nil {
			ni.Else = bmap[old.Else]
		}
	}
	np.Finalize()
	return np, imap, bmap
}

// CountFences returns the number of full fences and compiler barriers in the
// program, counting only tool-inserted (synthetic) ones when syntheticOnly
// is set.
func (p *Program) CountFences(syntheticOnly bool) (full, compiler int) {
	for _, f := range p.Funcs {
		f.Instrs(func(in *Instr) {
			if in.Kind != Fence || (syntheticOnly && !in.Synthetic) {
				return
			}
			if FenceKind(in.Imm) == FenceFull {
				full++
			} else {
				compiler++
			}
		})
	}
	return full, compiler
}

// String returns a short identifying description of the instruction for
// diagnostics; the full textual form lives in the printer.
func (i *Instr) String() string {
	var sb strings.Builder
	writeInstr(&sb, i)
	return sb.String()
}
