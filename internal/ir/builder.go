package ir

import "fmt"

// ProgBuilder accumulates a Program. Typical use:
//
//	pb := ir.NewProgram("mp")
//	flag := pb.Global("flag", 1)
//	b := pb.Func("main", 0)
//	... emit ...
//	prog := pb.MustBuild()
type ProgBuilder struct {
	p *Program
}

// NewProgram starts a new program builder.
func NewProgram(name string) *ProgBuilder {
	return &ProgBuilder{p: &Program{Name: name}}
}

// Global declares a shared location of the given size (in words) with
// optional initial values.
func (pb *ProgBuilder) Global(name string, size int, init ...int64) *Global {
	g := &Global{Name: name, Size: size, Init: init}
	pb.p.Globals = append(pb.p.Globals, g)
	return g
}

// SetMain names the entry function run by the interpreter.
func (pb *ProgBuilder) SetMain(name string) { pb.p.Main = name }

// Func starts a new function with nparams parameters (delivered in registers
// 0..nparams-1) and returns its builder positioned at the entry block.
func (pb *ProgBuilder) Func(name string, nparams int) *FB {
	fn := &Fn{Name: name, NParams: nparams, NRegs: nparams}
	pb.p.Funcs = append(pb.p.Funcs, fn)
	b := &FB{pb: pb, fn: fn}
	entry := b.NewBlock("entry")
	b.StartBlock(entry)
	return b
}

// Build validates and finalizes the program.
func (pb *ProgBuilder) Build() (*Program, error) {
	if err := pb.p.Validate(); err != nil {
		return nil, err
	}
	return pb.p, nil
}

// MustBuild is Build for statically-known programs; it panics on a
// malformed program, which in this module is always a programming error in
// the corpus, not an input error.
func (pb *ProgBuilder) MustBuild() *Program {
	p, err := pb.Build()
	if err != nil {
		panic(fmt.Sprintf("ir: MustBuild(%s): %v", pb.p.Name, err))
	}
	return p
}

// FB builds one function. It tracks a current block; emitting a terminator
// clears it, and structured helpers (If, While, For) manage the block
// plumbing so corpus code reads like the pseudo-code in the paper.
type FB struct {
	pb  *ProgBuilder
	fn  *Fn
	cur *Block
	nb  int // block name counter
}

// Fn returns the function under construction.
func (b *FB) Fn() *Fn { return b.fn }

// Param returns the register holding parameter i.
func (b *FB) Param(i int) Reg {
	if i < 0 || i >= b.fn.NParams {
		panic(fmt.Sprintf("ir: %s has no parameter %d", b.fn.Name, i))
	}
	return Reg(i)
}

// NewReg allocates a fresh virtual register.
func (b *FB) NewReg() Reg {
	r := Reg(b.fn.NRegs)
	b.fn.NRegs++
	return r
}

// NewBlock creates (but does not enter) a block with a unique name derived
// from the hint.
func (b *FB) NewBlock(hint string) *Block {
	name := hint
	if b.nb > 0 {
		name = fmt.Sprintf("%s.%d", hint, b.nb)
	}
	b.nb++
	blk := &Block{Name: name}
	b.fn.Blocks = append(b.fn.Blocks, blk)
	return blk
}

// StartBlock makes blk the current emission target.
func (b *FB) StartBlock(blk *Block) { b.cur = blk }

// InBlock reports whether the builder has a current emission target, i.e.
// the last emitted instruction was not a terminator. Frontends lowering a
// source language use it to detect fallthrough function ends and to park
// statements that follow a return or goto in fresh (unreachable) blocks
// instead of tripping Emit's terminator check.
func (b *FB) InBlock() bool { return b.cur != nil }

// Emit appends a raw instruction to the current block. Most callers should
// prefer the typed helpers below.
func (b *FB) Emit(in *Instr) *Instr {
	if b.cur == nil {
		panic(fmt.Sprintf("ir: %s: emit %s after terminator without StartBlock", b.fn.Name, in.Kind))
	}
	b.cur.Instrs = append(b.cur.Instrs, in)
	if in.IsTerminator() {
		b.cur = nil
	}
	return in
}

func (b *FB) emitDst(in *Instr) Reg {
	in.Dst = b.NewReg()
	b.Emit(in)
	return in.Dst
}

// Const materializes an integer literal.
func (b *FB) Const(v int64) Reg { return b.emitDst(&Instr{Kind: Const, Imm: v}) }

// Move copies src into a fresh register.
func (b *FB) Move(src Reg) Reg { return b.emitDst(&Instr{Kind: Move, A: src}) }

// MoveTo copies src into the existing register dst; this is how loop
// induction variables and accumulators are updated.
func (b *FB) MoveTo(dst, src Reg) { b.Emit(&Instr{Kind: Move, Dst: dst, A: src}) }

// Bin emits a binary operation.
func (b *FB) Bin(op Op, x, y Reg) Reg {
	return b.emitDst(&Instr{Kind: BinOp, Op: op, A: x, B: y})
}

// Arithmetic and comparison conveniences.
func (b *FB) Add(x, y Reg) Reg { return b.Bin(OpAdd, x, y) }
func (b *FB) Sub(x, y Reg) Reg { return b.Bin(OpSub, x, y) }
func (b *FB) Mul(x, y Reg) Reg { return b.Bin(OpMul, x, y) }
func (b *FB) Div(x, y Reg) Reg { return b.Bin(OpDiv, x, y) }
func (b *FB) Mod(x, y Reg) Reg { return b.Bin(OpMod, x, y) }
func (b *FB) And(x, y Reg) Reg { return b.Bin(OpAnd, x, y) }
func (b *FB) Or(x, y Reg) Reg  { return b.Bin(OpOr, x, y) }
func (b *FB) Xor(x, y Reg) Reg { return b.Bin(OpXor, x, y) }
func (b *FB) Eq(x, y Reg) Reg  { return b.Bin(OpEq, x, y) }
func (b *FB) Ne(x, y Reg) Reg  { return b.Bin(OpNe, x, y) }
func (b *FB) Lt(x, y Reg) Reg  { return b.Bin(OpLt, x, y) }
func (b *FB) Le(x, y Reg) Reg  { return b.Bin(OpLe, x, y) }
func (b *FB) Gt(x, y Reg) Reg  { return b.Bin(OpGt, x, y) }
func (b *FB) Ge(x, y Reg) Reg  { return b.Bin(OpGe, x, y) }

// AddImm adds a constant to a register.
func (b *FB) AddImm(x Reg, v int64) Reg { return b.Add(x, b.Const(v)) }

// MulImm multiplies a register by a constant.
func (b *FB) MulImm(x Reg, v int64) Reg { return b.Mul(x, b.Const(v)) }

// Load reads a scalar global.
func (b *FB) Load(g *Global) Reg { return b.emitDst(&Instr{Kind: Load, G: g, Idx: NoReg}) }

// LoadIdx reads g[idx].
func (b *FB) LoadIdx(g *Global, idx Reg) Reg {
	return b.emitDst(&Instr{Kind: Load, G: g, Idx: idx})
}

// Store writes a scalar global.
func (b *FB) Store(g *Global, v Reg) { b.Emit(&Instr{Kind: Store, G: g, Idx: NoReg, A: v}) }

// StoreIdx writes g[idx].
func (b *FB) StoreIdx(g *Global, idx, v Reg) { b.Emit(&Instr{Kind: Store, G: g, Idx: idx, A: v}) }

// LoadPtr dereferences a pointer register.
func (b *FB) LoadPtr(addr Reg) Reg { return b.emitDst(&Instr{Kind: LoadPtr, Addr: addr}) }

// StorePtr writes through a pointer register.
func (b *FB) StorePtr(addr, v Reg) { b.Emit(&Instr{Kind: StorePtr, Addr: addr, A: v}) }

// AddrOf takes the address of a scalar global.
func (b *FB) AddrOf(g *Global) Reg { return b.emitDst(&Instr{Kind: AddrOf, G: g, Idx: NoReg}) }

// AddrOfIdx takes &g[idx].
func (b *FB) AddrOfIdx(g *Global, idx Reg) Reg {
	return b.emitDst(&Instr{Kind: AddrOf, G: g, Idx: idx})
}

// Gep performs word-scaled address arithmetic: base + off.
func (b *FB) Gep(base, off Reg) Reg { return b.emitDst(&Instr{Kind: Gep, A: base, B: off}) }

// Alloca reserves size thread-local words and yields their address. The
// address may still escape (e.g. via a global), which is exactly what the
// escape analysis must discover.
func (b *FB) Alloca(size int64) Reg { return b.emitDst(&Instr{Kind: Alloca, Imm: size}) }

// Malloc reserves size heap words and yields their address.
func (b *FB) Malloc(size int64) Reg { return b.emitDst(&Instr{Kind: Malloc, Imm: size}) }

// CAS emits an atomic compare-and-swap on *addr; result is 1 on success.
func (b *FB) CAS(addr, old, new Reg) Reg {
	return b.emitDst(&Instr{Kind: CAS, Addr: addr, A: old, B: new})
}

// FetchAdd emits an atomic fetch-and-add on *addr, returning the old value.
func (b *FB) FetchAdd(addr, delta Reg) Reg {
	return b.emitDst(&Instr{Kind: FetchAdd, Addr: addr, A: delta})
}

// Fence emits a fence written by the "programmer" (manual placement).
func (b *FB) Fence(k FenceKind) { b.Emit(&Instr{Kind: Fence, Imm: int64(k)}) }

// Call invokes callee and returns its result register.
func (b *FB) Call(callee string, args ...Reg) Reg {
	return b.emitDst(&Instr{Kind: Call, Callee: callee, Args: args})
}

// CallVoid invokes callee discarding any result.
func (b *FB) CallVoid(callee string, args ...Reg) {
	b.Emit(&Instr{Kind: Call, Dst: NoReg, Callee: callee, Args: args})
}

// Spawn starts callee on a new thread and returns the thread id.
func (b *FB) Spawn(callee string, args ...Reg) Reg {
	return b.emitDst(&Instr{Kind: Spawn, Callee: callee, Args: args})
}

// Join blocks until the thread with the given id returns.
func (b *FB) Join(tid Reg) { b.Emit(&Instr{Kind: Join, A: tid}) }

// Assert emits a runtime check used by the TSO test harness: the program
// fails if cond is zero.
func (b *FB) Assert(cond Reg, msg string) { b.Emit(&Instr{Kind: Assert, A: cond, Msg: msg}) }

// Print emits a debug print of a register.
func (b *FB) Print(x Reg) { b.Emit(&Instr{Kind: Print, A: x}) }

// Ret returns a value.
func (b *FB) Ret(v Reg) { b.Emit(&Instr{Kind: Ret, A: v}) }

// RetVoid returns without a value.
func (b *FB) RetVoid() { b.Emit(&Instr{Kind: Ret, A: NoReg}) }

// Jmp emits an unconditional jump.
func (b *FB) Jmp(blk *Block) { b.Emit(&Instr{Kind: Jmp, Then: blk}) }

// Br emits a conditional branch.
func (b *FB) Br(cond Reg, then, els *Block) {
	b.Emit(&Instr{Kind: Br, A: cond, Then: then, Else: els})
}

// If runs then() when cond is non-zero.
func (b *FB) If(cond Reg, then func()) {
	b.IfElse(cond, then, nil)
}

// IfElse runs then() when cond is non-zero, otherwise els() (which may be
// nil). Either arm may end the function with Ret.
func (b *FB) IfElse(cond Reg, then, els func()) {
	thenB := b.NewBlock("then")
	join := b.NewBlock("endif")
	elseB := join
	if els != nil {
		elseB = b.NewBlock("else")
	}
	b.Br(cond, thenB, elseB)
	b.StartBlock(thenB)
	then()
	if b.cur != nil {
		b.Jmp(join)
	}
	if els != nil {
		b.StartBlock(elseB)
		els()
		if b.cur != nil {
			b.Jmp(join)
		}
	}
	b.StartBlock(join)
}

// While emits a pre-tested loop: cond() is evaluated in a fresh header block
// each iteration and the body runs while it is non-zero.
func (b *FB) While(cond func() Reg, body func()) {
	head := b.NewBlock("while.head")
	bodyB := b.NewBlock("while.body")
	exit := b.NewBlock("while.exit")
	b.Jmp(head)
	b.StartBlock(head)
	c := cond()
	b.Br(c, bodyB, exit)
	b.StartBlock(bodyB)
	body()
	if b.cur != nil {
		b.Jmp(head)
	}
	b.StartBlock(exit)
}

// DoWhile emits a post-tested loop: body() runs, then its returned register
// is tested; non-zero repeats the loop.
func (b *FB) DoWhile(body func() Reg) {
	bodyB := b.NewBlock("do.body")
	exit := b.NewBlock("do.exit")
	b.Jmp(bodyB)
	b.StartBlock(bodyB)
	c := body()
	b.Br(c, bodyB, exit)
	b.StartBlock(exit)
}

// For emits a counted loop over i in [lo, hi). The induction register passed
// to body is updated in place each iteration.
func (b *FB) For(lo, hi Reg, body func(i Reg)) {
	i := b.Move(lo)
	one := b.Const(1)
	b.While(func() Reg { return b.Lt(i, hi) }, func() {
		body(i)
		if b.cur != nil {
			b.MoveTo(i, b.Add(i, one))
		}
	})
}

// ForConst is For with literal bounds.
func (b *FB) ForConst(lo, hi int64, body func(i Reg)) {
	b.For(b.Const(lo), b.Const(hi), body)
}

// SpinWhileNe emits the classic acquire idiom `while (load(g) != want);` —
// a busy-wait whose load must be detected as a control acquire.
func (b *FB) SpinWhileNe(g *Global, idx, want Reg) {
	b.While(func() Reg {
		var v Reg
		if idx == NoReg {
			v = b.Load(g)
		} else {
			v = b.LoadIdx(g, idx)
		}
		return b.Ne(v, want)
	}, func() {})
}
