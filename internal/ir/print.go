package ir

import (
	"fmt"
	"strings"
)

// Format renders the program in the textual IR syntax accepted by Parse.
// The round trip Parse(Format(p)) reproduces p up to instruction pointer
// identity, a property the parser tests rely on.
func Format(p *Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s\n", p.Name)
	for _, g := range p.Globals {
		fmt.Fprintf(&sb, "global %s %d", g.Name, g.Size)
		if len(g.Init) > 0 {
			sb.WriteString(" =")
			for _, v := range g.Init {
				fmt.Fprintf(&sb, " %d", v)
			}
		}
		sb.WriteByte('\n')
	}
	if p.Main != "" {
		fmt.Fprintf(&sb, "main %s\n", p.Main)
	}
	for _, f := range p.Funcs {
		fmt.Fprintf(&sb, "\nfunc %s params=%d regs=%d {\n", f.Name, f.NParams, f.NRegs)
		for _, b := range f.Blocks {
			fmt.Fprintf(&sb, "%s:\n", b.Name)
			for _, in := range b.Instrs {
				sb.WriteString("  ")
				writeInstr(&sb, in)
				sb.WriteByte('\n')
			}
		}
		sb.WriteString("}\n")
	}
	return sb.String()
}

func regStr(r Reg) string {
	if r == NoReg {
		return "_"
	}
	return fmt.Sprintf("r%d", r)
}

func idxSuffix(r Reg) string {
	if r == NoReg {
		return ""
	}
	return "[" + regStr(r) + "]"
}

func writeInstr(sb *strings.Builder, in *Instr) {
	switch in.Kind {
	case Const:
		fmt.Fprintf(sb, "%s = const %d", regStr(in.Dst), in.Imm)
	case Move:
		fmt.Fprintf(sb, "%s = move %s", regStr(in.Dst), regStr(in.A))
	case BinOp:
		fmt.Fprintf(sb, "%s = %s %s, %s", regStr(in.Dst), in.Op, regStr(in.A), regStr(in.B))
	case Load:
		fmt.Fprintf(sb, "%s = load %s%s", regStr(in.Dst), in.G.Name, idxSuffix(in.Idx))
	case Store:
		fmt.Fprintf(sb, "store %s%s, %s", in.G.Name, idxSuffix(in.Idx), regStr(in.A))
	case LoadPtr:
		fmt.Fprintf(sb, "%s = loadptr %s", regStr(in.Dst), regStr(in.Addr))
	case StorePtr:
		fmt.Fprintf(sb, "storeptr %s, %s", regStr(in.Addr), regStr(in.A))
	case AddrOf:
		fmt.Fprintf(sb, "%s = addrof %s%s", regStr(in.Dst), in.G.Name, idxSuffix(in.Idx))
	case Gep:
		fmt.Fprintf(sb, "%s = gep %s, %s", regStr(in.Dst), regStr(in.A), regStr(in.B))
	case Alloca:
		fmt.Fprintf(sb, "%s = alloca %d", regStr(in.Dst), in.Imm)
	case Malloc:
		fmt.Fprintf(sb, "%s = malloc %d", regStr(in.Dst), in.Imm)
	case CAS:
		fmt.Fprintf(sb, "%s = cas %s, %s, %s", regStr(in.Dst), regStr(in.Addr), regStr(in.A), regStr(in.B))
	case FetchAdd:
		fmt.Fprintf(sb, "%s = fetchadd %s, %s", regStr(in.Dst), regStr(in.Addr), regStr(in.A))
	case Fence:
		fmt.Fprintf(sb, "fence %s", FenceKind(in.Imm))
		if in.Synthetic {
			sb.WriteString(" ; synthetic")
		}
	case Br:
		fmt.Fprintf(sb, "br %s, %s, %s", regStr(in.A), in.Then.Name, in.Else.Name)
	case Jmp:
		fmt.Fprintf(sb, "jmp %s", in.Then.Name)
	case Ret:
		if in.A == NoReg {
			sb.WriteString("ret")
		} else {
			fmt.Fprintf(sb, "ret %s", regStr(in.A))
		}
	case Call:
		if in.Dst != NoReg {
			fmt.Fprintf(sb, "%s = ", regStr(in.Dst))
		}
		fmt.Fprintf(sb, "call %s(%s)", in.Callee, regList(in.Args))
	case Spawn:
		if in.Dst != NoReg {
			fmt.Fprintf(sb, "%s = ", regStr(in.Dst))
		}
		fmt.Fprintf(sb, "spawn %s(%s)", in.Callee, regList(in.Args))
	case Join:
		fmt.Fprintf(sb, "join %s", regStr(in.A))
	case Assert:
		fmt.Fprintf(sb, "assert %s, %q", regStr(in.A), in.Msg)
	case Print:
		fmt.Fprintf(sb, "print %s", regStr(in.A))
	default:
		fmt.Fprintf(sb, "<invalid %s>", in.Kind)
	}
}

func regList(rs []Reg) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = regStr(r)
	}
	return strings.Join(parts, ", ")
}
