// Package annotate implements the paper's alternative application (§1.3):
// instead of inserting fences directly, use the detected synchronization
// reads to emit the minimal acquire annotations that would make the legacy
// program data-race-free under an annotation-aware compiler (C11-style
// memory_order_acquire on the flagged loads; every escaping write is
// conservatively a release).
package annotate

import (
	"fmt"
	"sort"
	"strings"

	"fenceplace/internal/acquire"
	"fenceplace/internal/alias"
	"fenceplace/internal/escape"
	"fenceplace/internal/ir"
)

// Kind is the annotation attached to one access.
type Kind int

const (
	// Acquire marks a detected synchronization read.
	Acquire Kind = iota
	// Release marks an escaping write (the conservative release set).
	Release
)

func (k Kind) String() string {
	if k == Acquire {
		return "acquire"
	}
	return "release"
}

// Annotation pins a memory-order annotation to one instruction.
type Annotation struct {
	Fn    *ir.Fn
	Instr *ir.Instr
	Kind  Kind
	// Signature records which acquire signature(s) matched: "control",
	// "address" or "control+address". Empty for releases.
	Signature string
}

// Describe renders the annotation as a human-readable line.
func (a Annotation) Describe() string {
	loc := fmt.Sprintf("%s/%s#%d", a.Fn.Name, a.Instr.Block().Name, a.Instr.Pos())
	if a.Kind == Release {
		return fmt.Sprintf("%-9s %-30s %s", "release", loc, a.Instr)
	}
	return fmt.Sprintf("%-9s %-30s %s  (%s)", "acquire", loc, a.Instr, a.Signature)
}

// Result is the full annotation set for a program.
type Result struct {
	Acquires []Annotation
	Releases []Annotation
}

// Generate computes the minimal annotation set: one acquire per detected
// synchronization read (classified by signature) and one release per
// escaping write. The annotated program is DRF by the paper's Theorem 3.1:
// every read that could be an acquire is annotated.
func Generate(p *ir.Program) *Result {
	al := alias.Analyze(p)
	esc := escape.Analyze(p, al)
	sig := acquire.Classify(p, al, esc)

	res := &Result{}
	for _, f := range p.Funcs {
		f.Instrs(func(in *ir.Instr) {
			ctl, adr := sig.Control[in], sig.Address[in]
			if ctl || adr {
				s := "control"
				switch {
				case ctl && adr:
					s = "control+address"
				case adr:
					s = "address"
				}
				res.Acquires = append(res.Acquires, Annotation{Fn: f, Instr: in, Kind: Acquire, Signature: s})
			}
			if in.WritesMem() && esc.AccessEscapes(in) {
				res.Releases = append(res.Releases, Annotation{Fn: f, Instr: in, Kind: Release})
			}
		})
	}
	return res
}

// Report renders the annotation set grouped by function, acquires first.
func (r *Result) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "minimal DRF annotations: %d acquires, %d releases\n", len(r.Acquires), len(r.Releases))
	byFn := map[string][]Annotation{}
	var names []string
	for _, a := range append(append([]Annotation{}, r.Acquires...), r.Releases...) {
		if _, ok := byFn[a.Fn.Name]; !ok {
			names = append(names, a.Fn.Name)
		}
		byFn[a.Fn.Name] = append(byFn[a.Fn.Name], a)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&sb, "func %s:\n", n)
		for _, a := range byFn[n] {
			sb.WriteString("  " + a.Describe() + "\n")
		}
	}
	return sb.String()
}

// PureAddressAcquires returns the acquires that matched only the address
// signature — the paper's empirical study (Table II) expects none in real
// synchronization primitives, so surfacing them is a useful code smell.
func (r *Result) PureAddressAcquires() []Annotation {
	var out []Annotation
	for _, a := range r.Acquires {
		if a.Signature == "address" {
			out = append(out, a)
		}
	}
	return out
}
