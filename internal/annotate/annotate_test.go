package annotate

import (
	"strings"
	"testing"

	"fenceplace/internal/ir"
	"fenceplace/internal/progs"
)

func buildMP(t *testing.T) *ir.Program {
	t.Helper()
	pb := ir.NewProgram("mp")
	data := pb.Global("data", 1)
	flag := pb.Global("flag", 1)
	sink := pb.Global("sink", 1)
	prod := pb.Func("producer", 0)
	one := prod.Const(1)
	prod.Store(data, one)
	prod.Store(flag, one)
	prod.RetVoid()
	cons := pb.Func("consumer", 0)
	cons.SpinWhileNe(flag, ir.NoReg, cons.Const(1))
	cons.Store(sink, cons.Load(data))
	cons.RetVoid()
	main := pb.Func("main", 0)
	t1 := main.Spawn("producer")
	t2 := main.Spawn("consumer")
	main.Join(t1)
	main.Join(t2)
	main.RetVoid()
	pb.SetMain("main")
	return pb.MustBuild()
}

func TestMPAnnotations(t *testing.T) {
	res := Generate(buildMP(t))
	if len(res.Acquires) != 1 {
		t.Fatalf("got %d acquires, want 1 (the flag spin): %v", len(res.Acquires), res.Acquires)
	}
	a := res.Acquires[0]
	if a.Signature != "control" {
		t.Errorf("flag spin classified %q, want control", a.Signature)
	}
	if a.Fn.Name != "consumer" {
		t.Errorf("acquire attributed to %s, want consumer", a.Fn.Name)
	}
	// Releases: data, flag (producer) and sink (consumer).
	if len(res.Releases) != 3 {
		t.Fatalf("got %d releases, want 3", len(res.Releases))
	}
	if got := len(res.PureAddressAcquires()); got != 0 {
		t.Errorf("MP has %d pure-address acquires, want 0", got)
	}
	rep := res.Report()
	for _, want := range []string{"1 acquires", "3 releases", "func consumer:", "(control)"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestPureAddressSurfaced(t *testing.T) {
	// The paper's Figure 5 (MP with pointers) is the canonical
	// pure-address acquire; the annotator must classify it as such.
	pb := ir.NewProgram("mp-ptr")
	x := pb.Global("x", 1)
	y := pb.Global("y", 1, 0)
	z := pb.Global("z", 1)
	sink := pb.Global("sink", 1)
	prod := pb.Func("producer", 0)
	prod.Store(x, prod.Const(41))
	prod.Store(y, prod.AddrOf(x))
	prod.RetVoid()
	cons := pb.Func("consumer", 0)
	r := cons.Load(y)
	cons.Store(sink, cons.LoadPtr(r))
	cons.RetVoid()
	main := pb.Func("main", 0)
	main.Store(y, main.AddrOf(z))
	t1 := main.Spawn("producer")
	t2 := main.Spawn("consumer")
	main.Join(t1)
	main.Join(t2)
	main.RetVoid()
	pb.SetMain("main")
	res := Generate(pb.MustBuild())
	pure := res.PureAddressAcquires()
	if len(pure) != 1 {
		t.Fatalf("got %d pure-address acquires, want 1 (the y load): %v", len(pure), res.Acquires)
	}
}

func TestCorpusKernelsHaveNoPureAddressAnnotations(t *testing.T) {
	// Table II through the annotator's lens.
	for _, m := range progs.ByKind(progs.SyncKernel) {
		res := Generate(m.Default())
		if len(res.Acquires) == 0 {
			t.Errorf("%s: no acquires annotated", m.Name)
		}
		if pure := res.PureAddressAcquires(); len(pure) != 0 {
			t.Errorf("%s: unexpected pure-address acquires: %v", m.Name, pure)
		}
	}
}

func TestAnnotationCountsMatchDescribe(t *testing.T) {
	res := Generate(progs.ByName("msqueue").Default())
	for _, a := range append(append([]Annotation{}, res.Acquires...), res.Releases...) {
		d := a.Describe()
		if !strings.Contains(d, a.Fn.Name) || len(d) < 10 {
			t.Errorf("weak description: %q", d)
		}
	}
	if res.Acquires[0].Kind.String() != "acquire" || Release.String() != "release" {
		t.Error("kind names drifted")
	}
}
