package mc

import (
	"reflect"
	"testing"

	"fenceplace/internal/ir"
	"fenceplace/internal/tso"
)

// sbProgram builds the store-buffering litmus program deterministically —
// the fixed input behind the golden key vectors.
func sbProgram() *ir.Program {
	pb := ir.NewProgram("sb")
	x := pb.Global("x", 1)
	y := pb.Global("y", 1)
	o0 := pb.Global("o0", 1)
	o1 := pb.Global("o1", 1)
	t0 := pb.Func("t0", 0)
	t0.Store(x, t0.Const(1))
	t0.Store(o0, t0.Load(y))
	t0.RetVoid()
	t1 := pb.Func("t1", 0)
	t1.Store(y, t1.Const(1))
	t1.Store(o1, t1.Load(x))
	t1.RetVoid()
	return pb.MustBuild()
}

// spawnProgram is a second fixed input: main spawning a worker, with a
// fence, exercising calls, spawns and branch targets in the key preimage.
func spawnProgram() *ir.Program {
	pb := ir.NewProgram("spawny")
	g := pb.Global("g", 2)
	w := pb.Func("worker", 1)
	w.StoreIdx(g, w.Param(0), w.Const(7))
	w.RetVoid()
	m := pb.Func("main", 0)
	tid := m.Spawn("worker", m.Const(0))
	m.Fence(ir.FenceFull)
	m.Join(tid)
	m.RetVoid()
	pb.SetMain("main")
	return pb.MustBuild()
}

// TestBaselineKeyGolden pins the canonical key derivation to fixed hex
// vectors: any process, on any machine, hashing these programs must derive
// exactly these keys, or warm-starting across processes silently breaks.
// If the key schema changes intentionally, bump keySchema and regenerate.
func TestBaselineKeyGolden(t *testing.T) {
	cases := []struct {
		name    string
		prog    *ir.Program
		threads []string
		want    string
	}{
		{"sb-threads", sbProgram(), []string{"t0", "t1"}, "c5b27df47b1a3c69efcd777ac7b4e8d9"},
		{"sb-main", sbProgram(), nil, "7abb50e0905cc9c755a795a7d9dc9e22"},
		{"spawny", spawnProgram(), nil, "7ffa828b409dba720d1d0daacf51634a"},
	}
	// Regenerate the vectors with `go test -run BaselineKeyGolden -v` after
	// an intentional keySchema bump.
	for _, tc := range cases {
		key := BaselineKey(tc.prog, tc.threads, Config{})
		if key.String() != tc.want {
			t.Errorf("%s: key %s, want golden %s", tc.name, key, tc.want)
		}
	}
}

// TestBaselineKeyDeterminismAndSensitivity: two independent builds of one
// program share a key; semantic differences (an extra fence, a different
// thread set, a different memory cap) change it; search-shaping config
// (workers, budget, seen-set mode, POR, buffer capacity) does not.
func TestBaselineKeyDeterminismAndSensitivity(t *testing.T) {
	base := BaselineKey(sbProgram(), []string{"t0", "t1"}, Config{})
	if again := BaselineKey(sbProgram(), []string{"t0", "t1"}, Config{}); again != base {
		t.Fatalf("independent builds of one program disagree: %s vs %s", base, again)
	}

	// Search-shaping config fields must not perturb the key.
	for name, cfg := range map[string]Config{
		"workers":   {Workers: 3},
		"budget":    {MaxStates: 1 << 10},
		"exactseen": {ExactSeen: true},
		"nopor":     {NoPOR: true},
		"buffercap": {BufferCap: 2},
		"mode":      {Mode: tso.TSO}, // a baseline is SC by definition
	} {
		if k := BaselineKey(sbProgram(), []string{"t0", "t1"}, cfg); k != base {
			t.Errorf("%s changed the key: %s vs %s", name, k, base)
		}
	}

	// Semantic inputs must perturb it.
	if k := BaselineKey(sbProgram(), []string{"t1", "t0"}, Config{}); k == base {
		t.Error("thread order did not change the key")
	}
	if k := BaselineKey(sbProgram(), []string{"t0", "t1"}, Config{MemoryCap: 1 << 10}); k == base {
		t.Error("memory cap did not change the key")
	}
	fenced := sbProgram()
	fn := fenced.Fn("t0")
	fn.Blocks[0].Insert(1, &ir.Instr{Kind: ir.Fence, Imm: int64(ir.FenceFull)})
	fenced.Finalize()
	if k := BaselineKey(fenced, []string{"t0", "t1"}, Config{}); k == base {
		t.Error("an inserted fence did not change the key")
	}

	// Names are metadata: a renamed clone keys identically.
	clone, _, _ := sbProgram().Clone()
	clone.Name = "renamed"
	if k := BaselineKey(clone, []string{"t0", "t1"}, Config{}); k != base {
		t.Errorf("program rename changed the key: %s vs %s", k, base)
	}
}

// roundTrip marshals a baseline and decodes it back against the same
// inputs, failing the test on any mismatch.
func roundTrip(t *testing.T, b *Baseline) *Baseline {
	t.Helper()
	data, err := b.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal %s: %v", b.Prog.Name, err)
	}
	got, err := UnmarshalBaseline(b.Prog, b.ThreadFns, b.Cfg, data)
	if err != nil {
		t.Fatalf("unmarshal %s: %v", b.Prog.Name, err)
	}
	if got.SC.Visited != b.SC.Visited {
		t.Errorf("%s: visited %d, want %d", b.Prog.Name, got.SC.Visited, b.SC.Visited)
	}
	if !reflect.DeepEqual(got.SC.Outcomes, b.SC.Outcomes) {
		t.Errorf("%s: outcome sets disagree after round trip", b.Prog.Name)
	}
	if got.SC.Truncated {
		t.Errorf("%s: decoded baseline claims truncation", b.Prog.Name)
	}
	if got.Cfg.Mode != tso.SC {
		t.Errorf("%s: decoded baseline config is not SC", b.Prog.Name)
	}
	return got
}

// TestBaselineCodecRoundTrip explores small programs and pins the codec:
// encode → decode reproduces the exact outcome set and visit count, and
// the encoding itself is deterministic (sorted keys), so two processes
// storing the same baseline write identical bytes.
func TestBaselineCodecRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		prog    *ir.Program
		threads []string
	}{
		{sbProgram(), []string{"t0", "t1"}},
		{spawnProgram(), nil},
	} {
		b, err := NewBaseline(tc.prog, tc.threads, Config{})
		if err != nil {
			t.Fatalf("baseline %s: %v", tc.prog.Name, err)
		}
		if len(b.SC.Outcomes) == 0 {
			t.Fatalf("%s: baseline with no outcomes", tc.prog.Name)
		}
		roundTrip(t, b)

		d1, _ := b.MarshalBinary()
		d2, _ := b.MarshalBinary()
		if string(d1) != string(d2) {
			t.Errorf("%s: non-deterministic encoding", tc.prog.Name)
		}
	}
}

// TestBaselineCodecCorruption: a damaged record must decode to an error —
// never a panic, never a silently wrong baseline. Truncations at every
// prefix length and single-bit flips across the whole record are exercised;
// flips must either fail decoding or decode without panicking (the store's
// checksum layer is what rejects them — this guards the codec itself).
func TestBaselineCodecCorruption(t *testing.T) {
	b, err := NewBaseline(sbProgram(), []string{"t0", "t1"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	decode := func(d []byte) (err error) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("decoder panicked on corrupt input: %v", r)
			}
		}()
		_, err = UnmarshalBaseline(b.Prog, b.ThreadFns, b.Cfg, d)
		return err
	}

	for n := 0; n < len(data); n++ {
		if decode(data[:n]) == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
	for i := range data {
		for _, bit := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), data...)
			mut[i] ^= bit
			decode(mut) // must not panic; error or benign decode both fine
		}
	}
	if decode(append(append([]byte(nil), data...), 0)) == nil {
		t.Error("trailing byte decoded successfully")
	}
	if decode([]byte("FPB\x02")) == nil {
		t.Error("future version decoded successfully")
	}
}
