package mc

import (
	"context"
	"time"

	"fenceplace/internal/tso"
)

// Progress is one heartbeat of a running exploration: the engine's shared
// counters sampled at an instant, plus window-averaged throughput. The
// final event of an exploration (Final true) carries the closing totals,
// so a consumer that only keeps the last event per exploration has the
// exact outcome figures.
type Progress struct {
	Program      string        // program under exploration
	Mode         tso.Mode      // SC or TSO
	Visited      int64         // states expanded so far
	Frontier     int64         // states enqueued and not yet expanded
	Seen         int64         // distinct states in the seen set (est. table load)
	Elapsed      time.Duration // since the exploration started
	StatesPerSec float64       // averaged over the heartbeat window (whole run for Final)
	Final        bool          // last event of this exploration
}

// progressCfg is the context payload WithProgress installs.
type progressCfg struct {
	every time.Duration
	fn    func(Progress)
}

type progressCtxKey struct{}

// WithProgress returns a context that makes every ExploreCtx under it
// stream Progress events to fn, sampled every `every` (<= 0: one second).
// The sink rides the context rather than Config so Config stays a
// comparable value usable as a cache key. Events of one exploration are
// delivered sequentially, but concurrent explorations under the same
// context call fn concurrently — sinks must be safe for that.
func WithProgress(ctx context.Context, every time.Duration, fn func(Progress)) context.Context {
	if fn == nil {
		return ctx
	}
	if every <= 0 {
		every = time.Second
	}
	return context.WithValue(ctx, progressCtxKey{}, progressCfg{every: every, fn: fn})
}

// progressFrom extracts the installed progress sink, if any.
func progressFrom(ctx context.Context) (progressCfg, bool) {
	pc, ok := ctx.Value(progressCtxKey{}).(progressCfg)
	return pc, ok
}

// heartbeat samples the engine's shared counters on a ticker until the
// exploration completes (e.done). It runs only when a progress sink is
// installed, so the common path pays nothing; the counters it reads are
// the atomics the workers maintain anyway.
func (e *engine) heartbeat(pc progressCfg, start time.Time) {
	t := time.NewTicker(pc.every)
	defer t.Stop()
	var lastV int64
	lastT := start
	for {
		select {
		case <-e.done:
			return
		case now := <-t.C:
			v := e.visited.Load()
			window := now.Sub(lastT).Seconds()
			var rate float64
			if window > 0 {
				rate = float64(v-lastV) / window
			}
			lastV, lastT = v, now
			pc.fn(Progress{
				Program:      e.prog.Name,
				Mode:         e.cfg.Mode,
				Visited:      v,
				Frontier:     e.inflight.Load(),
				Seen:         e.seen.Load(),
				Elapsed:      now.Sub(start),
				StatesPerSec: rate,
			})
		}
	}
}
