// Package mc is a parallel stateless model checker for the module's IR
// running on the x86-TSO (or SC) machine of package tso. It is the
// verification subsystem behind fenceplace.Certify: it enumerates every
// reachable final state of a program under both memory models and decides
// whether a fence placement restores sequential consistency, producing a
// counterexample schedule when it does not.
//
// Compared with the legacy sequential enumerator (tso.Explore) the engine
// adds three things:
//
//   - canonical state hashing: states are encoded into a compact canonical
//     byte string (memory, per-thread frame stacks, store buffers), so
//     structurally identical states met along different interleavings are
//     explored once;
//
//   - partial-order reduction: a persistent-set rule executes invisible
//     transitions (register ops, buffered stores, forwarded loads, frame
//     pushes/pops) immediately without branching on other threads, and
//     sleep sets prune commuting interleavings of the remaining visible
//     transitions. Reduction preserves the reachable final-state set, which
//     is the property certification compares;
//
//   - a sharded work-stealing worker pool: every worker owns a frontier
//     stack and a shard of the seen set; surplus states are handed off to
//     hungry workers over a channel, so exploration scales with GOMAXPROCS
//     instead of dying at a fixed sequential budget.
//
// Unlike tso.Explore, the engine also executes Call, Spawn, Join, Alloca
// and Malloc, so whole corpus programs (main spawning workers) can be
// explored, not just flat litmus threads. Thread exit models pthread
// semantics exactly like tso.Run: a finishing thread's buffered stores
// become visible atomically at its final Ret.
package mc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"

	"fenceplace/internal/ir"
	"fenceplace/internal/tso"
)

// MaxThreads bounds the number of simultaneously live threads the engine
// can track; transition identities are packed into a 32-bit sleep mask
// (one step bit and one drain bit per thread).
const MaxThreads = 16

// ErrTruncated is wrapped by exploration results whose state budget was
// exhausted: the verdict would be unsound, so callers must treat it as an
// explicit failure, never as "no violation found".
var ErrTruncated = errors.New("mc: state budget exhausted, exploration truncated")

// Config parameterizes an exploration.
type Config struct {
	Mode      tso.Mode
	BufferCap int   // store buffer capacity (default 4)
	MaxStates int64 // state budget; exceeded => Truncated (default 1<<21)
	MemoryCap int   // arena limit in words (default 1<<16)
	Workers   int   // worker goroutines (default GOMAXPROCS)
	NoPOR     bool  // disable partial-order reduction (cross-check oracle)
}

func (c Config) withDefaults() Config {
	if c.BufferCap == 0 {
		c.BufferCap = 4
	}
	if c.MaxStates == 0 {
		c.MaxStates = 1 << 21
	}
	if c.MemoryCap == 0 {
		c.MemoryCap = 1 << 16
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// StateSet is the set of reachable final states of an exploration, keyed by
// a printable form of the final global values (suffixed with "!assert" or
// "!deadlock" for failing terminals).
type StateSet struct {
	Outcomes  map[string][]int64
	Visited   int64
	Truncated bool
}

// Has reports whether a final state assigning the given scalar-global
// values was reached. Globals not mentioned may hold anything.
func (s *StateSet) Has(want map[string]int64, prog *ir.Program) bool {
	idx := make(map[string]int, len(prog.Globals))
	off := 0
	for _, g := range prog.Globals {
		idx[g.Name] = off
		off += g.Size
	}
	for _, vec := range s.Outcomes {
		match := true
		for name, v := range want {
			off, ok := idx[name]
			if !ok || vec[off] != v {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// --- machine state -----------------------------------------------------------

type bufEntry struct {
	addr, val int64
}

type frm struct {
	fn     *ir.Fn
	blk    *ir.Block
	idx    int
	regs   []int64
	retDst ir.Reg
}

type thr struct {
	frames []frm
	buf    []bufEntry
	done   bool
}

type state struct {
	mem     []int64
	threads []thr
	failed  bool // an Assert tripped somewhere on the path to this state
}

func (s *state) clone() *state {
	n := &state{mem: append([]int64(nil), s.mem...), failed: s.failed}
	n.threads = make([]thr, len(s.threads))
	for i := range s.threads {
		t := &s.threads[i]
		nt := &n.threads[i]
		nt.done = t.done
		nt.buf = append([]bufEntry(nil), t.buf...)
		nt.frames = make([]frm, len(t.frames))
		for j := range t.frames {
			f := &t.frames[j]
			nt.frames[j] = frm{
				fn: f.fn, blk: f.blk, idx: f.idx, retDst: f.retDst,
				regs: append([]int64(nil), f.regs...),
			}
		}
	}
	return n
}

func (s *state) terminal() bool {
	for i := range s.threads {
		if !s.threads[i].done || len(s.threads[i].buf) > 0 {
			return false
		}
	}
	return true
}

// top returns the executing frame of a live thread.
func (t *thr) top() *frm { return &t.frames[len(t.frames)-1] }

// next returns the next instruction of a live thread.
func (t *thr) next() *ir.Instr {
	f := t.top()
	return f.blk.Instrs[f.idx]
}

// encode renders the state into its canonical byte form, appending to buf
// (callers keep a per-worker buffer to avoid allocation churn). Block
// identity is (function index, block id), so the encoding is stable across
// workers.
func (e *engine) encode(s *state, buf []byte) []byte {
	b := buf[:0]
	if s.failed {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendVarint(b, int64(len(s.mem)))
	for _, v := range s.mem {
		b = binary.AppendVarint(b, v)
	}
	for i := range s.threads {
		t := &s.threads[i]
		flag := byte(0)
		if t.done {
			flag = 1
		}
		b = append(b, '|', flag)
		b = binary.AppendVarint(b, int64(len(t.buf)))
		for _, en := range t.buf {
			b = binary.AppendVarint(b, en.addr)
			b = binary.AppendVarint(b, en.val)
		}
		b = binary.AppendVarint(b, int64(len(t.frames)))
		for j := range t.frames {
			f := &t.frames[j]
			b = binary.AppendVarint(b, int64(e.fnIdx[f.fn]))
			b = binary.AppendVarint(b, int64(f.blk.ID()))
			b = binary.AppendVarint(b, int64(f.idx))
			b = binary.AppendVarint(b, int64(f.retDst))
			for _, r := range f.regs {
				b = binary.AppendVarint(b, r)
			}
		}
	}
	return b
}

// --- transitions -------------------------------------------------------------

// A transition is identified by a bit in a 32-bit mask: bit t is "thread t
// executes its next instruction", bit MaxThreads+t is "thread t drains the
// oldest entry of its store buffer".
func stepBit(tid int) uint32  { return 1 << uint(tid) }
func drainBit(tid int) uint32 { return 1 << uint(MaxThreads+tid) }

// fp is the shared-memory footprint of one enabled transition, evaluated in
// a concrete state (addresses are exact, not abstract).
type fp struct {
	reads  []int64
	writes []int64
	local  bool // no visible effect: independent of every other thread
	det    bool // safe persistent singleton: local and never part of a cycle
	alloc  bool // moves the arena bump pointer
	univ   bool // conservatively dependent with everything (Spawn)
}

// analysis is the per-state expansion record: the enabled transition mask
// plus the footprint of every enabled transition.
type analysis struct {
	enabled uint32
	fps     [2 * MaxThreads]fp
}

// analyze computes the enabled transitions of s and their footprints.
func (e *engine) analyze(s *state) analysis {
	var a analysis
	for tid := range s.threads {
		t := &s.threads[tid]
		if e.cfg.Mode == tso.TSO && len(t.buf) > 0 {
			a.enabled |= drainBit(tid)
			a.fps[MaxThreads+tid] = fp{writes: []int64{t.buf[0].addr}}
		}
		if t.done {
			continue
		}
		in := t.next()
		if in.Kind == ir.Join {
			// A join is enabled only once its target has finished; an
			// out-of-range id is "enabled" so apply can surface the error.
			target := t.top().regs[in.A]
			if target >= 0 && target < int64(len(s.threads)) && !s.threads[target].done {
				continue
			}
		}
		a.enabled |= stepBit(tid)
		a.fps[tid] = e.stepFP(s, tid, in)
	}
	return a
}

func bufAddrs(t *thr) []int64 {
	out := make([]int64, len(t.buf))
	for i, en := range t.buf {
		out[i] = en.addr
	}
	return out
}

// stepFP evaluates the footprint of thread tid executing in from s.
func (e *engine) stepFP(s *state, tid int, in *ir.Instr) fp {
	t := &s.threads[tid]
	f := t.top()
	tso_ := e.cfg.Mode == tso.TSO
	directAddr := func() int64 {
		off := int64(0)
		if in.Idx != ir.NoReg {
			off = f.regs[in.Idx]
		}
		return e.base[in.G] + off
	}
	forwarded := func(addr int64) bool {
		for i := len(t.buf) - 1; i >= 0; i-- {
			if t.buf[i].addr == addr {
				return true
			}
		}
		return false
	}
	switch in.Kind {
	case ir.Const, ir.Move, ir.BinOp, ir.AddrOf, ir.Gep, ir.Assert, ir.Print, ir.Call, ir.Join:
		return fp{local: true, det: true}
	case ir.Br, ir.Jmp:
		// Local, but never a persistent singleton: every cycle in the state
		// graph contains a Br/Jmp, so expanding these states fully is the
		// cycle proviso that keeps the reduction from ignoring threads.
		return fp{local: true}
	case ir.Ret:
		if len(t.frames) == 1 && tso_ && len(t.buf) > 0 {
			// Thread exit publishes the store buffer (pthread semantics).
			return fp{writes: bufAddrs(t)}
		}
		return fp{local: true, det: true}
	case ir.Load, ir.LoadPtr:
		var addr int64
		if in.Kind == ir.Load {
			addr = directAddr()
		} else {
			addr = f.regs[in.Addr]
		}
		if tso_ && forwarded(addr) {
			return fp{local: true, det: true}
		}
		return fp{reads: []int64{addr}}
	case ir.Store, ir.StorePtr:
		if tso_ {
			if len(t.buf) >= e.cfg.BufferCap {
				// Buffer pressure forces the oldest entry to memory.
				return fp{writes: []int64{t.buf[0].addr}}
			}
			return fp{local: true, det: true} // store lands in the buffer
		}
		var addr int64
		if in.Kind == ir.Store {
			addr = directAddr()
		} else {
			addr = f.regs[in.Addr]
		}
		return fp{writes: []int64{addr}}
	case ir.CAS, ir.FetchAdd:
		addr := f.regs[in.Addr]
		return fp{reads: []int64{addr}, writes: append(bufAddrs(t), addr)}
	case ir.Fence:
		if ir.FenceKind(in.Imm) == ir.FenceFull && tso_ && len(t.buf) > 0 {
			return fp{writes: bufAddrs(t)}
		}
		return fp{local: true, det: true}
	case ir.Alloca, ir.Malloc:
		return fp{alloc: true}
	case ir.Spawn:
		return fp{univ: true}
	}
	return fp{univ: true} // unknown kinds: maximally conservative
}

func addrsIntersect(a, b []int64) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// indep reports whether two transitions (identified by bit index into
// a.fps) of different threads commute in the analyzed state.
func indep(a *analysis, i, j int) bool {
	ti, tj := i%MaxThreads, j%MaxThreads
	if ti == tj {
		return false
	}
	fi, fj := &a.fps[i], &a.fps[j]
	if fi.univ || fj.univ {
		return false
	}
	if fi.alloc && fj.alloc {
		return false
	}
	if addrsIntersect(fi.writes, fj.writes) ||
		addrsIntersect(fi.writes, fj.reads) ||
		addrsIntersect(fi.reads, fj.writes) {
		return false
	}
	return true
}

// --- execution ---------------------------------------------------------------

// applyDrain retires the oldest buffered store of thread tid, in place.
func applyDrain(s *state, tid int) {
	t := &s.threads[tid]
	en := t.buf[0]
	t.buf = t.buf[1:]
	s.mem[en.addr] = en.val
}

// applyStep executes the next instruction of thread tid, in place. It
// mirrors tso.Run's semantics exactly (including forced drains, LOCK-prefix
// RMWs and thread-exit buffer publication) minus cost accounting.
func (e *engine) applyStep(s *state, tid int) error {
	t := &s.threads[tid]
	f := t.top()
	in := f.blk.Instrs[f.idx]
	tsoMode := e.cfg.Mode == tso.TSO
	advance := true

	fail := func(format string, args ...any) error {
		return fmt.Errorf("mc: thread %d in %s: %s", tid, f.fn.Name, fmt.Sprintf(format, args...))
	}
	directAddr := func(g *ir.Global, idx ir.Reg) (int64, error) {
		off := int64(0)
		if idx != ir.NoReg {
			off = f.regs[idx]
		}
		if off < 0 || off >= int64(g.Size) {
			return 0, fail("index %d out of bounds for global %s[%d]", off, g.Name, g.Size)
		}
		return e.base[g] + off, nil
	}
	checkAddr := func(addr int64) error {
		if addr <= 0 || addr >= int64(len(s.mem)) {
			return fail("wild address %d (memory has %d words)", addr, len(s.mem))
		}
		return nil
	}
	load := func(addr int64) int64 {
		if tsoMode {
			for i := len(t.buf) - 1; i >= 0; i-- {
				if t.buf[i].addr == addr {
					return t.buf[i].val
				}
			}
		}
		return s.mem[addr]
	}
	store := func(addr, val int64) {
		if tsoMode {
			if len(t.buf) >= e.cfg.BufferCap {
				applyDrain(s, tid)
			}
			t.buf = append(t.buf, bufEntry{addr, val})
			return
		}
		s.mem[addr] = val
	}
	drainAll := func() {
		for len(t.buf) > 0 {
			applyDrain(s, tid)
		}
	}
	alloc := func(n int64) (int64, error) {
		if len(s.mem)+int(n) > e.cfg.MemoryCap {
			return 0, fail("arena exhausted (%d words requested at %d)", n, len(s.mem))
		}
		addr := int64(len(s.mem))
		s.mem = append(s.mem, make([]int64, n)...)
		return addr, nil
	}

	switch in.Kind {
	case ir.Const:
		f.regs[in.Dst] = in.Imm
	case ir.Move:
		f.regs[in.Dst] = f.regs[in.A]
	case ir.BinOp:
		f.regs[in.Dst] = ir.EvalBinOp(in.Op, f.regs[in.A], f.regs[in.B])
	case ir.Load:
		addr, err := directAddr(in.G, in.Idx)
		if err != nil {
			return err
		}
		f.regs[in.Dst] = load(addr)
	case ir.Store:
		addr, err := directAddr(in.G, in.Idx)
		if err != nil {
			return err
		}
		store(addr, f.regs[in.A])
	case ir.LoadPtr:
		addr := f.regs[in.Addr]
		if err := checkAddr(addr); err != nil {
			return err
		}
		f.regs[in.Dst] = load(addr)
	case ir.StorePtr:
		addr := f.regs[in.Addr]
		if err := checkAddr(addr); err != nil {
			return err
		}
		store(addr, f.regs[in.A])
	case ir.AddrOf:
		addr, err := directAddr(in.G, in.Idx)
		if err != nil {
			return err
		}
		f.regs[in.Dst] = addr
	case ir.Gep:
		f.regs[in.Dst] = f.regs[in.A] + f.regs[in.B]
	case ir.Alloca, ir.Malloc:
		addr, err := alloc(in.Imm)
		if err != nil {
			return err
		}
		f.regs[in.Dst] = addr
	case ir.CAS:
		addr := f.regs[in.Addr]
		if err := checkAddr(addr); err != nil {
			return err
		}
		drainAll()
		if s.mem[addr] == f.regs[in.A] {
			s.mem[addr] = f.regs[in.B]
			f.regs[in.Dst] = 1
		} else {
			f.regs[in.Dst] = 0
		}
	case ir.FetchAdd:
		addr := f.regs[in.Addr]
		if err := checkAddr(addr); err != nil {
			return err
		}
		drainAll()
		f.regs[in.Dst] = s.mem[addr]
		s.mem[addr] += f.regs[in.A]
	case ir.Fence:
		if ir.FenceKind(in.Imm) == ir.FenceFull {
			drainAll()
		}
	case ir.Br:
		if f.regs[in.A] != 0 {
			f.blk, f.idx = in.Then, 0
		} else {
			f.blk, f.idx = in.Else, 0
		}
		advance = false
	case ir.Jmp:
		f.blk, f.idx = in.Then, 0
		advance = false
	case ir.Ret:
		var val int64
		if in.A != ir.NoReg {
			val = f.regs[in.A]
		}
		retDst := f.retDst
		t.frames = t.frames[:len(t.frames)-1]
		if len(t.frames) == 0 {
			t.done = true
			drainAll() // exit publishes the buffer, like tso.Run
		} else if retDst != ir.NoReg {
			t.top().regs[retDst] = val
		}
		advance = false
	case ir.Call:
		callee := e.prog.Fn(in.Callee)
		args := make([]int64, len(in.Args))
		for i, a := range in.Args {
			args[i] = f.regs[a]
		}
		f.idx++ // return to the next instruction
		t.frames = append(t.frames, newFrame(callee, args, in.Dst))
		advance = false
	case ir.Spawn:
		drainAll() // thread creation synchronizes
		if len(s.threads) >= MaxThreads {
			return fail("spawn exceeds the %d-thread limit of the model checker", MaxThreads)
		}
		callee := e.prog.Fn(in.Callee)
		args := make([]int64, len(in.Args))
		for i, a := range in.Args {
			args[i] = f.regs[a]
		}
		ntid := len(s.threads)
		s.threads = append(s.threads, thr{frames: []frm{newFrame(callee, args, ir.NoReg)}})
		// NB: appending may have moved the threads slice; refresh t and f.
		t = &s.threads[tid]
		f = t.top()
		if in.Dst != ir.NoReg {
			f.regs[in.Dst] = int64(ntid)
		}
	case ir.Join:
		target := f.regs[in.A]
		if target < 0 || target >= int64(len(s.threads)) {
			return fail("join of invalid thread id %d", target)
		}
		// enabledness guaranteed the target is done
	case ir.Assert:
		if f.regs[in.A] == 0 {
			s.failed = true
		}
	case ir.Print:
		// no observable effect on final state
	default:
		return fail("cannot execute %s", in.Kind)
	}

	if advance {
		f = t.top()
		f.idx++
	}
	return nil
}

func newFrame(fn *ir.Fn, args []int64, retDst ir.Reg) frm {
	regs := make([]int64, fn.NRegs)
	copy(regs, args)
	return frm{fn: fn, blk: fn.Entry(), idx: 0, regs: regs, retDst: retDst}
}
