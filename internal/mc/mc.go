// Package mc is a parallel stateless model checker for the module's IR
// running on the x86-TSO (or SC) machine of package tso. It is the
// verification subsystem behind fenceplace.Certify: it enumerates every
// reachable final state of a program under both memory models and decides
// whether a fence placement restores sequential consistency, producing a
// counterexample schedule when it does not.
//
// Compared with the legacy sequential enumerator (tso.Explore) the engine
// adds three things:
//
//   - canonical state hashing: states are encoded into a compact canonical
//     byte string (memory, per-thread frame stacks, store buffers), so
//     structurally identical states met along different interleavings are
//     explored once;
//
//   - partial-order reduction: a persistent-set rule executes invisible
//     transitions (register ops, buffered stores, forwarded loads, frame
//     pushes/pops) immediately without branching on other threads, and
//     sleep sets prune commuting interleavings of the remaining visible
//     transitions. Reduction preserves the reachable final-state set, which
//     is the property certification compares;
//
//   - a sharded work-stealing worker pool: every worker owns a frontier
//     stack and a shard of the seen set; surplus states are handed off to
//     hungry workers over a channel, so exploration scales with GOMAXPROCS
//     instead of dying at a fixed sequential budget.
//
// Unlike tso.Explore, the engine also executes Call, Spawn, Join, Alloca
// and Malloc, so whole corpus programs (main spawning workers) can be
// explored, not just flat litmus threads. Thread exit models pthread
// semantics exactly like tso.Run: a finishing thread's buffered stores
// become visible atomically at its final Ret.
package mc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"strconv"

	"fenceplace/internal/fsx"
	"fenceplace/internal/ir"
	"fenceplace/internal/tso"
)

// MaxThreads bounds the number of simultaneously live threads the engine
// can track; transition identities are packed into a 32-bit sleep mask
// (one step bit and one drain bit per thread).
const MaxThreads = 16

// ErrTruncated is wrapped by exploration results whose state budget was
// exhausted: the verdict would be unsound, so callers must treat it as an
// explicit failure, never as "no violation found".
var ErrTruncated = errors.New("mc: state budget exhausted, exploration truncated")

// Config parameterizes an exploration.
type Config struct {
	Mode      tso.Mode
	BufferCap int   // store buffer capacity (default 4)
	MaxStates int64 // state budget; exceeded => Truncated (default 1<<21)
	Workers   int   // worker goroutines (default GOMAXPROCS)
	NoPOR     bool  // disable partial-order reduction (cross-check oracle)

	// MemoryCap is the per-state arena limit in words and the anchor of
	// the exploration's memory budget: the two-level seen set derives its
	// RAM allowance from it (8 bytes per word) unless SeenBudget overrides
	// that. 0 means the default (1<<22 words); negative means uncapped.
	MemoryCap int

	// SeenBudget bounds the seen set's RAM in bytes. When a shard's share
	// of the budget fills, its hot fingerprint tier is sealed into a
	// sorted run and spilled to SpillDir in the background (see seen.go),
	// so exploration proceeds under the cap instead of truncating. 0
	// derives the budget from MemoryCap; negative disables the bound.
	SeenBudget int64

	// SpillDir is where sealed seen-set runs are written (a scratch spill
	// area managed by internal/store, distinct from the baseline cache).
	// Empty disables spilling: sealed runs then stay in RAM, keeping
	// correctness but not the budget. SpillDir and SeenBudget do not
	// affect exploration results, so neither is part of BaselineKey.
	SpillDir string

	// ExactSeen keys the seen set by full canonical state encodings
	// instead of 128-bit fingerprints. Exact mode allocates one string per
	// visited state; it exists as a cross-checking oracle for the
	// fingerprint tiers, not for production use.
	ExactSeen bool

	// FS overrides the filesystem the exploration's disk surface (the
	// spill area) routes through; nil means the real OS. It is the fault-
	// injection seam of the chaos suite and, like SpillDir, cannot affect
	// exploration results — it is not part of BaselineKey. Implementations
	// must have a comparable dynamic type: normalized Configs are used as
	// map keys by the pass session.
	FS fsx.FS

	// IORetries bounds the retry loop around transient spill-I/O
	// failures: 0 means the fsx default (2), negative disables retrying.
	// Excluded from BaselineKey like every other I/O knob.
	IORetries int
}

// Normalize returns the configuration with every unset field replaced by
// its default, the form under which explorations actually run. Callers
// that key caches by configuration (the pass session's certification
// baselines) normalize first so a zero Workers field and an explicit
// GOMAXPROCS hit the same entry.
func (c Config) Normalize() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.BufferCap == 0 {
		c.BufferCap = 4
	}
	if c.MaxStates == 0 {
		c.MaxStates = 1 << 21
	}
	if c.MemoryCap == 0 {
		c.MemoryCap = 1 << 22
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// StateSet is the set of reachable final states of an exploration, keyed by
// a printable form of the final global values (suffixed with "!assert" or
// "!deadlock" for failing terminals).
type StateSet struct {
	Outcomes  map[string][]int64
	Visited   int64
	Truncated bool
}

// Has reports whether a final state assigning the given scalar-global
// values was reached. Globals not mentioned may hold anything.
func (s *StateSet) Has(want map[string]int64, prog *ir.Program) bool {
	idx := make(map[string]int, len(prog.Globals))
	off := 0
	for _, g := range prog.Globals {
		idx[g.Name] = off
		off += g.Size
	}
	for _, vec := range s.Outcomes {
		match := true
		for name, v := range want {
			off, ok := idx[name]
			if !ok || vec[off] != v {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// --- machine state -----------------------------------------------------------

type bufEntry struct {
	addr, val int64
}

type frm struct {
	fn     *ir.Fn
	blk    *ir.Block
	idx    int
	regs   []int64
	retDst ir.Reg
}

type thr struct {
	frames []frm
	buf    []bufEntry
	done   bool
}

type state struct {
	mem     []int64
	threads []thr
	failed  bool // an Assert tripped somewhere on the path to this state
}

func (s *state) clone() *state {
	n := &state{}
	cloneInto(n, s)
	return n
}

// cloneInto copies src into dst, reusing every slice dst already owns
// (memory, per-thread buffers, frame stacks, register files). With dst
// drawn from a worker freelist the copy allocates nothing in steady state;
// only shape growth beyond a recycled state's capacity allocates.
func cloneInto(dst, src *state) {
	dst.failed = src.failed
	dst.mem = append(dst.mem[:0], src.mem...)
	n := len(src.threads)
	if cap(dst.threads) >= n {
		// Reslicing (not appending) keeps the recycled thr slots beyond the
		// previous length, so their buffers and frame stacks get reused too.
		dst.threads = dst.threads[:n]
	} else {
		dst.threads = append(dst.threads[:cap(dst.threads)], make([]thr, n-cap(dst.threads))...)
	}
	for i := 0; i < n; i++ {
		st, dt := &src.threads[i], &dst.threads[i]
		dt.done = st.done
		dt.buf = append(dt.buf[:0], st.buf...)
		m := len(st.frames)
		if cap(dt.frames) >= m {
			dt.frames = dt.frames[:m]
		} else {
			dt.frames = append(dt.frames[:cap(dt.frames)], make([]frm, m-cap(dt.frames))...)
		}
		for j := 0; j < m; j++ {
			sf, df := &st.frames[j], &dt.frames[j]
			regs := df.regs
			*df = *sf
			df.regs = append(regs[:0], sf.regs...)
		}
	}
}

func (s *state) terminal() bool {
	for i := range s.threads {
		if !s.threads[i].done || len(s.threads[i].buf) > 0 {
			return false
		}
	}
	return true
}

// top returns the executing frame of a live thread.
func (t *thr) top() *frm { return &t.frames[len(t.frames)-1] }

// next returns the next instruction of a live thread.
func (t *thr) next() *ir.Instr {
	f := t.top()
	return f.blk.Instrs[f.idx]
}

// encode renders the state into its canonical byte form, appending to buf
// (callers keep a per-worker buffer to avoid allocation churn). Block
// identity is (function index, block id), so the encoding is stable across
// workers.
func (e *engine) encode(s *state, buf []byte) []byte {
	b := buf[:0]
	if s.failed {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendVarint(b, int64(len(s.mem)))
	for _, v := range s.mem {
		b = binary.AppendVarint(b, v)
	}
	for i := range s.threads {
		t := &s.threads[i]
		flag := byte(0)
		if t.done {
			flag = 1
		}
		b = append(b, '|', flag)
		b = binary.AppendVarint(b, int64(len(t.buf)))
		for _, en := range t.buf {
			b = binary.AppendVarint(b, en.addr)
			b = binary.AppendVarint(b, en.val)
		}
		b = binary.AppendVarint(b, int64(len(t.frames)))
		for j := range t.frames {
			f := &t.frames[j]
			b = binary.AppendVarint(b, int64(e.fnIdx[f.fn]))
			b = binary.AppendVarint(b, int64(f.blk.ID()))
			b = binary.AppendVarint(b, int64(f.idx))
			b = binary.AppendVarint(b, int64(f.retDst))
			for _, r := range f.regs {
				b = binary.AppendVarint(b, r)
			}
		}
	}
	return b
}

// appendOutcomeKey renders the printable outcome key of a terminal state
// — the final global values in fmt's %v slice form, suffixed "!assert"
// for failed paths — into buf, so the hot recording path can probe the
// outcome map without allocating a string.
func appendOutcomeKey(buf []byte, vec []int64, failed bool, suffix string) []byte {
	buf = append(buf, '[')
	for i, v := range vec {
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = strconv.AppendInt(buf, v, 10)
	}
	buf = append(buf, ']')
	if failed {
		buf = append(buf, "!assert"...)
	}
	return append(buf, suffix...)
}

// --- transitions -------------------------------------------------------------

// A transition is identified by a bit in a 32-bit mask: bit t is "thread t
// executes its next instruction", bit MaxThreads+t is "thread t drains the
// oldest entry of its store buffer".
func stepBit(tid int) uint32  { return 1 << uint(tid) }
func drainBit(tid int) uint32 { return 1 << uint(MaxThreads+tid) }

// fp is the shared-memory footprint of one enabled transition, evaluated
// in a concrete state (addresses are exact, not abstract). Read and write
// sets are ranges into the owning analysis's address arena, so evaluating
// a footprint allocates nothing; write sets are kept sorted so indep can
// merge-scan them.
type fp struct {
	rOff, rLen int
	wOff, wLen int
	local      bool // no visible effect: independent of every other thread
	det        bool // safe persistent singleton: local and never part of a cycle
	alloc      bool // moves the arena bump pointer
	univ       bool // conservatively dependent with everything (Spawn)
}

// analysis is the per-state expansion record: the enabled transition mask,
// the footprint of every enabled transition, and the address arena the
// footprints slice into. One analysis per worker is reused across states.
type analysis struct {
	enabled uint32
	fps     [2 * MaxThreads]fp
	addrs   []int64
}

func (a *analysis) reads(i int) []int64 {
	f := &a.fps[i]
	return a.addrs[f.rOff : f.rOff+f.rLen]
}

func (a *analysis) writes(i int) []int64 {
	f := &a.fps[i]
	return a.addrs[f.wOff : f.wOff+f.wLen]
}

// read1 records a single-address read set.
func (a *analysis) read1(addr int64) fp {
	off := len(a.addrs)
	a.addrs = append(a.addrs, addr)
	return fp{rOff: off, rLen: 1}
}

// write1 records a single-address write set.
func (a *analysis) write1(addr int64) fp {
	off := len(a.addrs)
	a.addrs = append(a.addrs, addr)
	return fp{wOff: off, wLen: 1}
}

// writeBuf records the thread's buffered store addresses (plus extra, when
// extraAddr is true) as a write set, sorted for merge-scanning.
func (a *analysis) writeBuf(t *thr, extraAddr bool, extra int64) fp {
	off := len(a.addrs)
	for _, en := range t.buf {
		a.addrs = append(a.addrs, en.addr)
	}
	if extraAddr {
		a.addrs = append(a.addrs, extra)
	}
	w := a.addrs[off:]
	slices.Sort(w)
	return fp{wOff: off, wLen: len(w)}
}

// analyze computes the enabled transitions of s and their footprints into
// the caller's reusable analysis record.
func (e *engine) analyze(s *state, a *analysis) {
	a.enabled = 0
	a.addrs = a.addrs[:0]
	for tid := range s.threads {
		t := &s.threads[tid]
		if e.cfg.Mode == tso.TSO && len(t.buf) > 0 {
			a.enabled |= drainBit(tid)
			a.fps[MaxThreads+tid] = a.write1(t.buf[0].addr)
		}
		if t.done {
			continue
		}
		in := t.next()
		if in.Kind == ir.Join {
			// A join is enabled only once its target has finished; an
			// out-of-range id is "enabled" so apply can surface the error.
			target := t.top().regs[in.A]
			if target >= 0 && target < int64(len(s.threads)) && !s.threads[target].done {
				continue
			}
		}
		a.enabled |= stepBit(tid)
		a.fps[tid] = e.stepFP(a, s, tid, in)
	}
}

// stepFP evaluates the footprint of thread tid executing in from s,
// recording address sets in a's arena.
func (e *engine) stepFP(a *analysis, s *state, tid int, in *ir.Instr) fp {
	t := &s.threads[tid]
	f := t.top()
	tso_ := e.cfg.Mode == tso.TSO
	directAddr := func() int64 {
		off := int64(0)
		if in.Idx != ir.NoReg {
			off = f.regs[in.Idx]
		}
		return e.base[in.G] + off
	}
	forwarded := func(addr int64) bool {
		for i := len(t.buf) - 1; i >= 0; i-- {
			if t.buf[i].addr == addr {
				return true
			}
		}
		return false
	}
	switch in.Kind {
	case ir.Const, ir.Move, ir.BinOp, ir.AddrOf, ir.Gep, ir.Assert, ir.Print, ir.Call, ir.Join:
		return fp{local: true, det: true}
	case ir.Br, ir.Jmp:
		// Local, but never a persistent singleton: every cycle in the state
		// graph contains a Br/Jmp, so expanding these states fully is the
		// cycle proviso that keeps the reduction from ignoring threads.
		return fp{local: true}
	case ir.Ret:
		if len(t.frames) == 1 && tso_ && len(t.buf) > 0 {
			// Thread exit publishes the store buffer (pthread semantics).
			return a.writeBuf(t, false, 0)
		}
		return fp{local: true, det: true}
	case ir.Load, ir.LoadPtr:
		var addr int64
		if in.Kind == ir.Load {
			addr = directAddr()
		} else {
			addr = f.regs[in.Addr]
		}
		if tso_ && forwarded(addr) {
			return fp{local: true, det: true}
		}
		return a.read1(addr)
	case ir.Store, ir.StorePtr:
		if tso_ {
			if len(t.buf) >= e.cfg.BufferCap {
				// Buffer pressure forces the oldest entry to memory.
				return a.write1(t.buf[0].addr)
			}
			return fp{local: true, det: true} // store lands in the buffer
		}
		var addr int64
		if in.Kind == ir.Store {
			addr = directAddr()
		} else {
			addr = f.regs[in.Addr]
		}
		return a.write1(addr)
	case ir.CAS, ir.FetchAdd:
		addr := f.regs[in.Addr]
		r := a.read1(addr)
		w := a.writeBuf(t, true, addr)
		r.wOff, r.wLen = w.wOff, w.wLen
		return r
	case ir.Fence:
		if ir.FenceKind(in.Imm) == ir.FenceFull && tso_ && len(t.buf) > 0 {
			return a.writeBuf(t, false, 0)
		}
		return fp{local: true, det: true}
	case ir.Alloca, ir.Malloc:
		return fp{alloc: true}
	case ir.Spawn:
		return fp{univ: true}
	}
	return fp{univ: true} // unknown kinds: maximally conservative
}

// addrsIntersect merge-scans two sorted address slices for a common
// element. Single-element sets are trivially sorted; buffered write sets
// are sorted once when their footprint is recorded.
func addrsIntersect(a, b []int64) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// indep reports whether two transitions (identified by bit index into
// a.fps) of different threads commute in the analyzed state.
func indep(a *analysis, i, j int) bool {
	ti, tj := i%MaxThreads, j%MaxThreads
	if ti == tj {
		return false
	}
	fi, fj := &a.fps[i], &a.fps[j]
	if fi.univ || fj.univ {
		return false
	}
	if fi.alloc && fj.alloc {
		return false
	}
	if addrsIntersect(a.writes(i), a.writes(j)) ||
		addrsIntersect(a.writes(i), a.reads(j)) ||
		addrsIntersect(a.reads(i), a.writes(j)) {
		return false
	}
	return true
}

// --- execution ---------------------------------------------------------------

// applyDrain retires the oldest buffered store of thread tid, in place.
// The remaining entries shift down rather than reslicing forward: a
// forward reslice would bleed the array's front capacity away, and every
// later cloneInto of the state would have to reallocate the buffer.
func applyDrain(s *state, tid int) {
	t := &s.threads[tid]
	en := t.buf[0]
	copy(t.buf, t.buf[1:])
	t.buf = t.buf[:len(t.buf)-1]
	s.mem[en.addr] = en.val
}

// applyStep executes the next instruction of thread tid, in place. It
// mirrors tso.Run's semantics exactly (including forced drains, LOCK-prefix
// RMWs and thread-exit buffer publication) minus cost accounting.
func (e *engine) applyStep(s *state, tid int) error {
	t := &s.threads[tid]
	f := t.top()
	in := f.blk.Instrs[f.idx]
	tsoMode := e.cfg.Mode == tso.TSO
	advance := true

	fail := func(format string, args ...any) error {
		return fmt.Errorf("mc: thread %d in %s: %s", tid, f.fn.Name, fmt.Sprintf(format, args...))
	}
	directAddr := func(g *ir.Global, idx ir.Reg) (int64, error) {
		off := int64(0)
		if idx != ir.NoReg {
			off = f.regs[idx]
		}
		if off < 0 || off >= int64(g.Size) {
			return 0, fail("index %d out of bounds for global %s[%d]", off, g.Name, g.Size)
		}
		return e.base[g] + off, nil
	}
	checkAddr := func(addr int64) error {
		if addr <= 0 || addr >= int64(len(s.mem)) {
			return fail("wild address %d (memory has %d words)", addr, len(s.mem))
		}
		return nil
	}
	load := func(addr int64) int64 {
		if tsoMode {
			for i := len(t.buf) - 1; i >= 0; i-- {
				if t.buf[i].addr == addr {
					return t.buf[i].val
				}
			}
		}
		return s.mem[addr]
	}
	store := func(addr, val int64) {
		if tsoMode {
			if len(t.buf) >= e.cfg.BufferCap {
				applyDrain(s, tid)
			}
			t.buf = append(t.buf, bufEntry{addr, val})
			return
		}
		s.mem[addr] = val
	}
	drainAll := func() {
		for len(t.buf) > 0 {
			applyDrain(s, tid)
		}
	}
	alloc := func(n int64) (int64, error) {
		if e.cfg.MemoryCap > 0 && len(s.mem)+int(n) > e.cfg.MemoryCap {
			return 0, fail("arena exhausted (%d words requested at %d)", n, len(s.mem))
		}
		addr := int64(len(s.mem))
		// Appended words are zeroed explicitly: a recycled state's mem
		// array may hold stale values beyond its length.
		for i := int64(0); i < n; i++ {
			s.mem = append(s.mem, 0)
		}
		return addr, nil
	}

	switch in.Kind {
	case ir.Const:
		f.regs[in.Dst] = in.Imm
	case ir.Move:
		f.regs[in.Dst] = f.regs[in.A]
	case ir.BinOp:
		f.regs[in.Dst] = ir.EvalBinOp(in.Op, f.regs[in.A], f.regs[in.B])
	case ir.Load:
		addr, err := directAddr(in.G, in.Idx)
		if err != nil {
			return err
		}
		f.regs[in.Dst] = load(addr)
	case ir.Store:
		addr, err := directAddr(in.G, in.Idx)
		if err != nil {
			return err
		}
		store(addr, f.regs[in.A])
	case ir.LoadPtr:
		addr := f.regs[in.Addr]
		if err := checkAddr(addr); err != nil {
			return err
		}
		f.regs[in.Dst] = load(addr)
	case ir.StorePtr:
		addr := f.regs[in.Addr]
		if err := checkAddr(addr); err != nil {
			return err
		}
		store(addr, f.regs[in.A])
	case ir.AddrOf:
		addr, err := directAddr(in.G, in.Idx)
		if err != nil {
			return err
		}
		f.regs[in.Dst] = addr
	case ir.Gep:
		f.regs[in.Dst] = f.regs[in.A] + f.regs[in.B]
	case ir.Alloca, ir.Malloc:
		addr, err := alloc(in.Imm)
		if err != nil {
			return err
		}
		f.regs[in.Dst] = addr
	case ir.CAS:
		addr := f.regs[in.Addr]
		if err := checkAddr(addr); err != nil {
			return err
		}
		drainAll()
		if s.mem[addr] == f.regs[in.A] {
			s.mem[addr] = f.regs[in.B]
			f.regs[in.Dst] = 1
		} else {
			f.regs[in.Dst] = 0
		}
	case ir.FetchAdd:
		addr := f.regs[in.Addr]
		if err := checkAddr(addr); err != nil {
			return err
		}
		drainAll()
		f.regs[in.Dst] = s.mem[addr]
		s.mem[addr] += f.regs[in.A]
	case ir.Fence:
		if ir.FenceKind(in.Imm) == ir.FenceFull {
			drainAll()
		}
	case ir.Br:
		if f.regs[in.A] != 0 {
			f.blk, f.idx = in.Then, 0
		} else {
			f.blk, f.idx = in.Else, 0
		}
		advance = false
	case ir.Jmp:
		f.blk, f.idx = in.Then, 0
		advance = false
	case ir.Ret:
		var val int64
		if in.A != ir.NoReg {
			val = f.regs[in.A]
		}
		retDst := f.retDst
		t.frames = t.frames[:len(t.frames)-1]
		if len(t.frames) == 0 {
			t.done = true
			drainAll() // exit publishes the buffer, like tso.Run
		} else if retDst != ir.NoReg {
			t.top().regs[retDst] = val
		}
		advance = false
	case ir.Call:
		// The caller's register file survives frame-stack growth (it is its
		// own array), so arguments are read through it after the push.
		f.idx++ // return to the next instruction
		t.pushFrame(e.prog.Fn(in.Callee), in.Dst, f.regs, in.Args)
		advance = false
	case ir.Spawn:
		drainAll() // thread creation synchronizes
		if len(s.threads) >= MaxThreads {
			return fail("spawn exceeds the %d-thread limit of the model checker", MaxThreads)
		}
		callee := e.prog.Fn(in.Callee)
		ntid := len(s.threads)
		if ntid < cap(s.threads) {
			// Reslice to recycle the stale thr slot's buffers and frames.
			s.threads = s.threads[:ntid+1]
		} else {
			s.threads = append(s.threads, thr{})
		}
		// NB: growing may have moved the threads slice; refresh t and f
		// (f.regs itself is stable — register files are separate arrays).
		t = &s.threads[tid]
		f = t.top()
		nt := &s.threads[ntid]
		nt.done = false
		nt.buf = nt.buf[:0]
		nt.frames = nt.frames[:0]
		nt.pushFrame(callee, ir.NoReg, f.regs, in.Args)
		if in.Dst != ir.NoReg {
			f.regs[in.Dst] = int64(ntid)
		}
	case ir.Join:
		target := f.regs[in.A]
		if target < 0 || target >= int64(len(s.threads)) {
			return fail("join of invalid thread id %d", target)
		}
		// enabledness guaranteed the target is done
	case ir.Assert:
		if f.regs[in.A] == 0 {
			s.failed = true
		}
	case ir.Print:
		// no observable effect on final state
	default:
		return fail("cannot execute %s", in.Kind)
	}

	if advance {
		f = t.top()
		f.idx++
	}
	return nil
}

func newFrame(fn *ir.Fn, args []int64, retDst ir.Reg) frm {
	regs := make([]int64, fn.NRegs)
	copy(regs, args)
	return frm{fn: fn, blk: fn.Entry(), idx: 0, regs: regs, retDst: retDst}
}

// pushFrame appends a frame for callee to the thread's stack, reusing the
// register file a recycled frm slot may still hold. Argument registers are
// resolved through callerRegs — passed as a slice header so the values
// stay reachable even when growing t.frames moves the stack.
func (t *thr) pushFrame(callee *ir.Fn, retDst ir.Reg, callerRegs []int64, argRegs []ir.Reg) {
	if len(t.frames) < cap(t.frames) {
		t.frames = t.frames[:len(t.frames)+1]
	} else {
		t.frames = append(t.frames, frm{})
	}
	nf := &t.frames[len(t.frames)-1]
	regs := nf.regs
	if cap(regs) < callee.NRegs {
		regs = make([]int64, callee.NRegs)
	} else {
		regs = regs[:callee.NRegs]
		clear(regs)
	}
	for i, a := range argRegs {
		regs[i] = callerRegs[a]
	}
	*nf = frm{fn: callee, blk: callee.Entry(), idx: 0, regs: regs, retDst: retDst}
}
