package mc

// Crash-safety discipline for spilled seen-set runs, mirroring the
// baseline store's corruption tests: any damage to a sealed run on disk —
// truncation by a crashed writer, a flipped bit, outright deletion — must
// quarantine the run and degrade it to all-miss. A miss merely re-explores
// a state (wasted work, identical answers); a false "seen" would silently
// prune live states, so it must be impossible.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fenceplace/internal/store"
	"fenceplace/internal/tso"
)

// spilledShard builds a shard with n sealed-and-spilled fingerprints
// behind a real spill session rooted at dir.
func spilledShard(t *testing.T, dir string, n int) (*engine, *seenShard, *run) {
	t.Helper()
	e := testEngine()
	sp, err := store.NewSpillSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	e.spill = sp
	sh := &e.shards[0]
	sh.mu.Lock()
	for i := 0; i < n; i++ {
		sh.visit(e, 0, testFP(i), 0)
	}
	sh.seal(e, 0)
	r := sh.runs[0]
	sh.mu.Unlock()
	e.spillRun(sh, 0, r)
	if r.path == "" || r.data != nil || r.bad {
		t.Fatalf("run not cleanly spilled: path=%q ram=%d bad=%v", r.path, len(r.data), r.bad)
	}
	return e, sh, r
}

// corruptions are the damage modes every spilled run must survive.
var corruptions = []struct {
	name string
	do   func(t *testing.T, path string)
}{
	{"truncated", func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}},
	{"bit-flipped", func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}},
	{"header-clobbered", func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[0] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}},
	{"deleted", func(t *testing.T, path string) {
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
	}},
}

// TestCorruptSpilledRunQuarantines damages a spilled run in every mode and
// checks the contract: all probes miss (never a false "seen"), the run is
// marked bad exactly once, and — when the file still exists — it lands in
// the spill root's quarantine directory for post-mortem.
func TestCorruptSpilledRunQuarantines(t *testing.T) {
	const n = 2000
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			root := t.TempDir()
			e, sh, r := spilledShard(t, root, n)
			c.do(t, r.path)

			sh.mu.Lock()
			for i := 0; i < n; i++ {
				if _, ok := sh.coldLookup(e, 0, testFP(i)); ok {
					t.Fatalf("probe %d: corrupt run answered \"seen\"", i)
				}
			}
			if !r.bad {
				t.Error("corrupt run not marked bad")
			}
			if sh.stQuarantines != 1 {
				t.Errorf("quarantine count %d, want 1", sh.stQuarantines)
			}
			// The visit protocol downgrades the loss to re-exploration: the
			// state reads as fresh, gets re-inserted hot, and is pruned on the
			// next encounter — exactly a cache miss, never wrong pruning.
			if need, revisit := sh.visit(e, 0, testFP(0), 0); !need || revisit != 0 {
				t.Fatalf("post-corruption visit: need=%v revisit=%d, want fresh insert", need, revisit)
			}
			if need, _ := sh.visit(e, 0, testFP(0), 0); need {
				t.Fatal("re-inserted state not found hot")
			}
			sh.mu.Unlock()

			if c.name != "deleted" {
				quar, err := os.ReadDir(filepath.Join(root, "quarantine"))
				if err != nil || len(quar) != 1 {
					t.Fatalf("quarantine dir: %d files, err %v; want the corrupt run preserved", len(quar), err)
				}
				if !strings.Contains(quar[0].Name(), filepath.Base(r.path)) {
					t.Errorf("quarantined as %q, want the run file name %q in it", quar[0].Name(), filepath.Base(r.path))
				}
			}
			e.finishSeen()
		})
	}
}

// TestCorruptSpillDuringExploration runs a whole exploration against a
// spill directory whose runs are being corrupted underneath it (every run
// file truncated as soon as it appears, via a hostile session sweep after
// sealing is forced by a 1-byte budget) and checks the results still match
// the oracle. This is the end-to-end form of the quarantine contract:
// corruption may cost work, never answers.
func TestCorruptSpillDuringExploration(t *testing.T) {
	p := medium3()
	exact, err := Explore(p, []string{"t0", "t1", "t2"}, Config{Mode: tso.TSO, Workers: 1, ExactSeen: true})
	if err != nil {
		t.Fatal(err)
	}

	root := t.TempDir()
	done := make(chan struct{})
	stop := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Truncate every run file in sight to one byte.
			matches, _ := filepath.Glob(filepath.Join(root, "sess-*", "run-*.run"))
			for _, m := range matches {
				os.Truncate(m, 1)
			}
		}
	}()
	fp, err := Explore(p, []string{"t0", "t1", "t2"}, Config{
		Mode: tso.TSO, Workers: 1, SeenBudget: 1, SpillDir: root,
	})
	close(stop)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	sameKeys(t, "corrupted-spill vs exact outcomes", keySet(fp.Outcomes), keySet(exact.Outcomes))
	// Visit counts are NOT compared: quarantined runs legitimately cause
	// re-exploration. Outcomes must still be exact.
}
