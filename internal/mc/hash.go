package mc

import "encoding/binary"

// The fingerprint seen set: instead of keying visited states by their full
// canonical byte encoding (one string allocation per state), the engine
// keys them by a 128-bit hash of that encoding stored in open-addressed
// tables. At the engine's state budgets (≤2^21 states per exploration) the
// collision probability of a 128-bit fingerprint is below 2^-85, far
// under the odds of a hardware fault; Config.ExactSeen retains the exact
// string-keyed mode as a cross-checking oracle.

// h128 is a 128-bit state fingerprint.
type h128 struct{ hi, lo uint64 }

func rotl64(x uint64, r uint) uint64 { return x<<r | x>>(64-r) }

func fmix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// hash128 is MurmurHash3 x64/128 over b. It is not cryptographic — the
// inputs are canonical state encodings produced by the engine itself, so
// adversarial collisions are not a concern, only accidental ones.
func hash128(b []byte) h128 {
	const c1 = 0x87c37b91114253d5
	const c2 = 0x4cf5ad432745937f
	var h1, h2 uint64
	n := len(b)
	for len(b) >= 16 {
		k1 := binary.LittleEndian.Uint64(b)
		k2 := binary.LittleEndian.Uint64(b[8:])
		k1 *= c1
		k1 = rotl64(k1, 31)
		k1 *= c2
		h1 ^= k1
		h1 = rotl64(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729
		k2 *= c2
		k2 = rotl64(k2, 33)
		k2 *= c1
		h2 ^= k2
		h2 = rotl64(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
		b = b[16:]
	}
	var k1, k2 uint64
	switch len(b) {
	case 15:
		k2 ^= uint64(b[14]) << 48
		fallthrough
	case 14:
		k2 ^= uint64(b[13]) << 40
		fallthrough
	case 13:
		k2 ^= uint64(b[12]) << 32
		fallthrough
	case 12:
		k2 ^= uint64(b[11]) << 24
		fallthrough
	case 11:
		k2 ^= uint64(b[10]) << 16
		fallthrough
	case 10:
		k2 ^= uint64(b[9]) << 8
		fallthrough
	case 9:
		k2 ^= uint64(b[8])
		k2 *= c2
		k2 = rotl64(k2, 33)
		k2 *= c1
		h2 ^= k2
		fallthrough
	case 8:
		k1 ^= uint64(b[7]) << 56
		fallthrough
	case 7:
		k1 ^= uint64(b[6]) << 48
		fallthrough
	case 6:
		k1 ^= uint64(b[5]) << 40
		fallthrough
	case 5:
		k1 ^= uint64(b[4]) << 32
		fallthrough
	case 4:
		k1 ^= uint64(b[3]) << 24
		fallthrough
	case 3:
		k1 ^= uint64(b[2]) << 16
		fallthrough
	case 2:
		k1 ^= uint64(b[1]) << 8
		fallthrough
	case 1:
		k1 ^= uint64(b[0])
		k1 *= c1
		k1 = rotl64(k1, 31)
		k1 *= c2
		h1 ^= k1
	}
	h1 ^= uint64(n)
	h2 ^= uint64(n)
	h1 += h2
	h2 += h1
	h1 = fmix64(h1)
	h2 = fmix64(h2)
	h1 += h2
	h2 += h1
	return h128{hi: h1, lo: h2}
}

// fpEntry is one slot of the hot fingerprint tier (and the unit of a
// sealed cold-tier run): the state's fingerprint plus the sleep mask it
// has been covered for (see seenShard in seen.go). visit remaps the
// (vanishingly unlikely) all-zero fingerprint away from the hot tier's
// empty-slot marker.
type fpEntry struct {
	hi, lo uint64
	sleep  uint32
}
