package mc

// Canonical baseline identity and the baseline wire codec — the model
// checker's half of the persistent certification store (internal/store).
//
// BaselineKey names an SC baseline by content: a 128-bit hash of the
// finalized program's semantic structure, the entry configuration, and the
// semantically relevant exploration parameters. Two processes (or two
// machines) building the same corpus program derive the same key, which is
// what lets `paperbench -cert` warm-start from a store another run filled.
//
// MarshalBinary/UnmarshalBaseline serialize only the exploration outcome —
// the reachable SC final-state set plus its visit count — in a versioned
// binary format. The program, thread set and config are not stored: they
// are the key, and the loader re-supplies them.

import (
	"encoding/binary"
	"fmt"
	"sort"

	"fenceplace/internal/ir"
	"fenceplace/internal/tso"
)

// Key is the canonical 128-bit identity of a certification baseline.
type Key struct{ Hi, Lo uint64 }

// String renders the key as 32 lowercase hex digits — the name the
// persistent store files the baseline under.
func (k Key) String() string { return fmt.Sprintf("%016x%016x", k.Hi, k.Lo) }

// keySchema versions the key preimage: bump it whenever the encoding below
// (or the semantics it captures) changes, so stale store entries become
// unreachable instead of wrongly served. Schema 2: the default MemoryCap
// rose from 1<<16 to 1<<22 words and negative means uncapped — both move
// where allocations fail, so schema-1 entries must not be served.
const keySchema = 2

// BaselineKey derives the canonical key of the SC baseline of (orig,
// threadFns, cfg). The preimage covers every input that can change the
// reachable SC final-state set:
//
//   - the program's semantic structure (globals with sizes and initial
//     values, every instruction with its operands, branch targets, callee
//     and global references by index) — names, assert messages and the
//     Synthetic marker are metadata and excluded, so a renamed but
//     structurally identical program hits the same entry;
//   - the entry configuration (the thread functions, or main);
//   - cfg.MemoryCap, which decides where allocations fail.
//
// Deliberately excluded: Mode (a baseline is by definition the SC
// exploration), BufferCap (store buffers never engage under SC), Workers
// and MaxStates (they shape the search, not the state space — a stored
// baseline is always a complete exploration, valid under any budget),
// SeenBudget/SpillDir (the two-level seen set changes where visited states
// live, never which states are visited), FS/IORetries (how disk I/O is
// performed and retried can cost re-exploration, never change the state
// space), and ExactSeen/NoPOR (oracle switches that differential tests pin
// to identical outcome sets). Excluding them maximizes warm hits across
// machines with different core counts, budgets and disks.
func BaselineKey(orig *ir.Program, threadFns []string, cfg Config) Key {
	cfg = cfg.withDefaults()
	orig.Finalize()

	fnPos := make(map[*ir.Fn]int64, len(orig.Funcs))
	for i, f := range orig.Funcs {
		fnPos[f] = int64(i)
	}
	fnIdx := func(name string) int64 {
		if f := orig.Fn(name); f != nil {
			return fnPos[f]
		}
		return -1
	}

	b := make([]byte, 0, 4096)
	b = append(b, "fpbase"...)
	b = append(b, keySchema)
	b = binary.AppendVarint(b, int64(cfg.MemoryCap))

	// Entry configuration: the resolved thread functions, or main.
	b = binary.AppendVarint(b, int64(len(threadFns)))
	if len(threadFns) == 0 {
		b = binary.AppendVarint(b, fnIdx(orig.Main))
	} else {
		for _, name := range threadFns {
			b = binary.AppendVarint(b, fnIdx(name))
		}
	}

	b = appendProgram(b, orig, fnIdx)
	h := hash128(b)
	return Key{Hi: h.hi, Lo: h.lo}
}

// appendProgram renders the program's semantic structure into b. Globals
// and functions are referenced by index (their order defines the memory
// layout and the engine's function table), blocks by their finalized IDs.
func appendProgram(b []byte, p *ir.Program, fnIdx func(string) int64) []byte {
	gPos := make(map[*ir.Global]int64, len(p.Globals))
	b = binary.AppendVarint(b, int64(len(p.Globals)))
	for i, g := range p.Globals {
		gPos[g] = int64(i)
		b = binary.AppendVarint(b, int64(g.Size))
		b = binary.AppendVarint(b, int64(len(g.Init)))
		for _, v := range g.Init {
			b = binary.AppendVarint(b, v)
		}
	}
	blockID := func(blk *ir.Block) int64 {
		if blk == nil {
			return -1
		}
		return int64(blk.ID())
	}
	b = binary.AppendVarint(b, int64(len(p.Funcs)))
	for _, f := range p.Funcs {
		b = binary.AppendVarint(b, int64(f.NParams))
		b = binary.AppendVarint(b, int64(f.NRegs))
		b = binary.AppendVarint(b, int64(len(f.Blocks)))
		for _, blk := range f.Blocks {
			b = binary.AppendVarint(b, int64(len(blk.Instrs)))
			for _, in := range blk.Instrs {
				b = append(b, byte(in.Kind), byte(in.Op))
				for _, r := range [...]ir.Reg{in.Dst, in.A, in.B, in.Idx, in.Addr} {
					b = binary.AppendVarint(b, int64(r))
				}
				b = binary.AppendVarint(b, in.Imm)
				if in.G != nil {
					b = binary.AppendVarint(b, gPos[in.G])
				} else {
					b = binary.AppendVarint(b, -1)
				}
				if in.Callee != "" {
					b = binary.AppendVarint(b, fnIdx(in.Callee))
				} else {
					b = binary.AppendVarint(b, -1)
				}
				b = binary.AppendVarint(b, int64(len(in.Args)))
				for _, a := range in.Args {
					b = binary.AppendVarint(b, int64(a))
				}
				b = binary.AppendVarint(b, blockID(in.Then))
				b = binary.AppendVarint(b, blockID(in.Else))
			}
		}
	}
	return b
}

// baselineMagic heads every serialized baseline; the trailing byte is the
// format version. A version bump makes old entries decode errors, which the
// store layer treats as misses.
var baselineMagic = []byte{'F', 'P', 'B', 1}

// MarshalBinary serializes the baseline's SC outcome set in the versioned
// wire format. Outcome keys are written sorted, so the encoding of a given
// state set is byte-identical across processes.
func (b *Baseline) MarshalBinary() ([]byte, error) {
	if b.SC == nil {
		return nil, fmt.Errorf("mc: marshal baseline of %s: no SC state set", b.Prog.Name)
	}
	if b.SC.Truncated {
		return nil, fmt.Errorf("mc: marshal baseline of %s: truncated exploration is not a baseline", b.Prog.Name)
	}
	keys := make([]string, 0, len(b.SC.Outcomes))
	for k := range b.SC.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	out := append([]byte(nil), baselineMagic...)
	out = binary.AppendVarint(out, b.SC.Visited)
	out = binary.AppendVarint(out, int64(len(keys)))
	for _, k := range keys {
		out = binary.AppendVarint(out, int64(len(k)))
		out = append(out, k...)
		vec := b.SC.Outcomes[k]
		out = binary.AppendVarint(out, int64(len(vec)))
		for _, v := range vec {
			out = binary.AppendVarint(out, v)
		}
	}
	return out, nil
}

// decoder is a panic-free varint reader over a baseline record; every read
// checks bounds so corrupt or truncated input surfaces as an error.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("mc: baseline record: bad varint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

// count reads a non-negative length that must be satisfiable by the
// remaining bytes at minBytes bytes per element — the guard that keeps a
// corrupt length field from provoking a giant allocation.
func (d *decoder) count(minBytes int) (int, error) {
	v, err := d.varint()
	if err != nil {
		return 0, err
	}
	if v < 0 || int(v)*minBytes > len(d.b)-d.off {
		return 0, fmt.Errorf("mc: baseline record: implausible count %d at offset %d", v, d.off)
	}
	return int(v), nil
}

// UnmarshalBaseline decodes a baseline record produced by MarshalBinary
// and rebinds it to the caller's program, thread set and config — which
// must be the ones the record's store key was derived from; the codec
// cannot detect a mismatched program, only a malformed record. Any
// malformation (bad magic, wrong version, truncation, implausible counts,
// trailing bytes) is an error, never a panic: the store layer treats it as
// a cache miss and quarantines the entry.
func UnmarshalBaseline(orig *ir.Program, threadFns []string, cfg Config, data []byte) (*Baseline, error) {
	if len(data) < len(baselineMagic) || string(data[:3]) != string(baselineMagic[:3]) {
		return nil, fmt.Errorf("mc: baseline record: bad magic")
	}
	if data[3] != baselineMagic[3] {
		return nil, fmt.Errorf("mc: baseline record: unsupported version %d", data[3])
	}
	d := &decoder{b: data, off: len(baselineMagic)}
	visited, err := d.varint()
	if err != nil {
		return nil, err
	}
	if visited < 0 {
		return nil, fmt.Errorf("mc: baseline record: negative visit count %d", visited)
	}
	nOutcomes, err := d.count(2) // each outcome: at least a key byte and a vec length
	if err != nil {
		return nil, err
	}
	outcomes := make(map[string][]int64, nOutcomes)
	for i := 0; i < nOutcomes; i++ {
		klen, err := d.count(1)
		if err != nil {
			return nil, err
		}
		if klen == 0 || klen > len(d.b)-d.off {
			return nil, fmt.Errorf("mc: baseline record: bad outcome key length %d", klen)
		}
		key := string(d.b[d.off : d.off+klen])
		d.off += klen
		vlen, err := d.count(1)
		if err != nil {
			return nil, err
		}
		vec := make([]int64, vlen)
		for j := range vec {
			if vec[j], err = d.varint(); err != nil {
				return nil, err
			}
		}
		if _, dup := outcomes[key]; dup {
			return nil, fmt.Errorf("mc: baseline record: duplicate outcome key %q", key)
		}
		outcomes[key] = vec
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("mc: baseline record: %d trailing bytes", len(data)-d.off)
	}

	scCfg := cfg.withDefaults()
	scCfg.Mode = tso.SC
	return &Baseline{
		Prog:      orig,
		ThreadFns: threadFns,
		Cfg:       scCfg,
		SC:        &StateSet{Outcomes: outcomes, Visited: visited},
	}, nil
}
