package mc

// Panic isolation. A panic in an exploration worker (or a spiller, or the
// pass layer's per-function fan-out) must cost exactly one job: the pool
// drains cleanly, sibling explorations keep running, and the process never
// dies. The recovered panic travels as an InternalError on the failing
// job's result — a structured, inspectable error, not a crash.

import (
	"fmt"
	"runtime/debug"

	"fenceplace/internal/par"
	"fenceplace/internal/telemetry"
)

// mWorkerPanics counts every recovered worker panic process-wide; the CI
// bench-smoke asserts it stays zero on healthy runs.
var mWorkerPanics = telemetry.NewCounter("mc.worker_panics")

// InternalError is a panic recovered from a worker goroutine, carried on
// the result of the job whose work panicked. It wraps nothing: an
// internal error is terminal for its job and matched with errors.As, not
// errors.Is.
type InternalError struct {
	Op    string // which pool the panic escaped from
	Panic any    // the recovered panic value
	Stack []byte // the panicking goroutine's stack at recovery
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("%s: internal error (recovered panic): %v", e.Op, e.Panic)
}

// AsInternalError converts a value recovered from a panic into an
// InternalError attributed to op, counting it in mc.worker_panics. A
// *par.PanicError (the pool's capture, which re-panics on the caller
// goroutine) is unwrapped so the original panic value and stack survive;
// an already-converted *InternalError passes through uncounted.
func AsInternalError(op string, r any) *InternalError {
	if ie, ok := r.(*InternalError); ok {
		return ie
	}
	mWorkerPanics.Inc(0)
	if pe, ok := r.(*par.PanicError); ok {
		return &InternalError{Op: op, Panic: pe.Value, Stack: pe.Stack}
	}
	return &InternalError{Op: op, Panic: r, Stack: debug.Stack()}
}
