package mc

// Cold-tier runs and the spill machinery. A run is an immutable sorted
// set of (fingerprint, sleep-mask) entries produced by seenShard.seal:
// 256-entry blocks, each delta-encoded against a small in-RAM index that
// holds every block's first fingerprint and byte offset. Lookups binary-
// search the index and decode one block.
//
// Runs are born in RAM and handed to background spiller goroutines (one
// per shard group) that write them through internal/store's checksummed
// framing and then drop the in-RAM blob, leaving only the index. A probe
// of a spilled run reads exactly one block back with ReadAt into a
// per-shard scratch buffer — no allocation, no mmap dependency. Integrity
// failures quarantine the file and mark the run bad: every subsequent
// probe of a bad run misses, so corruption can re-explore states but can
// never fabricate a "seen".

import (
	"encoding/binary"

	"fenceplace/internal/fsx"
	"fenceplace/internal/store"
)

// runBlockLen is the number of entries per delta-encoded block.
const runBlockLen = 256

// run is one sealed, immutable, sorted cold-tier run.
//
// Field discipline: the index arrays and n are immutable after buildRun.
// data/path/f/bad are mutated only under the owning shard's mutex; data
// itself is immutable, so the spiller may read it after taking the
// pointer under the lock.
type run struct {
	n       int      // entry count
	firstHi []uint64 // per-block first fingerprint
	firstLo []uint64
	offs    []uint32 // len nBlocks+1; block i is data[offs[i]:offs[i+1]]

	data []byte   // encoded blocks; nil once spilled
	path string   // spill file; "" while in RAM
	f    fsx.File // lazily opened spilled file
	bad  bool     // quarantined: all probes miss
}

// ramBytes is the run's accountable RAM cost (index always; blob until
// spilled).
func (r *run) ramBytes() int64 {
	return int64(len(r.data)) + int64(16*len(r.firstHi)) + int64(4*len(r.offs))
}

// buildRun encodes entries (sorted by hi, then lo) into a run. Encoding
// per block: the first entry contributes only uvarint(mask) — its
// fingerprint lives in the index — and each subsequent entry contributes
// uvarint(hi-prevHi), then uvarint(lo-prevLo) when the his are equal or
// uvarint(lo) when they differ, then uvarint(mask).
func buildRun(entries []fpEntry) *run {
	nBlocks := (len(entries) + runBlockLen - 1) / runBlockLen
	r := &run{
		n:       len(entries),
		firstHi: make([]uint64, 0, nBlocks),
		firstLo: make([]uint64, 0, nBlocks),
		offs:    make([]uint32, 1, nBlocks+1),
	}
	var buf [3 * binary.MaxVarintLen64]byte
	data := make([]byte, 0, 4*len(entries))
	for b := 0; b < nBlocks; b++ {
		blk := entries[b*runBlockLen : min((b+1)*runBlockLen, len(entries))]
		r.firstHi = append(r.firstHi, blk[0].hi)
		r.firstLo = append(r.firstLo, blk[0].lo)
		data = append(data, buf[:binary.PutUvarint(buf[:], uint64(blk[0].sleep))]...)
		for i := 1; i < len(blk); i++ {
			n := binary.PutUvarint(buf[:], blk[i].hi-blk[i-1].hi)
			if blk[i].hi == blk[i-1].hi {
				n += binary.PutUvarint(buf[n:], blk[i].lo-blk[i-1].lo)
			} else {
				n += binary.PutUvarint(buf[n:], blk[i].lo)
			}
			n += binary.PutUvarint(buf[n:], uint64(blk[i].sleep))
			data = append(data, buf[:n]...)
		}
		r.offs = append(r.offs, uint32(len(data)))
	}
	r.data = data
	return r
}

// blockBytes returns the encoded bytes of block b, reading them from the
// spill file when the run's blob has been dropped. Must be called with
// the owning shard's mutex held (it may open the file and uses the
// shard's scratch buffer).
func (sh *seenShard) blockBytes(e *engine, si int, r *run, b int) ([]byte, bool) {
	if r.bad {
		return nil, false
	}
	if r.data != nil {
		return r.data[r.offs[b]:r.offs[b+1]], true
	}
	if r.f == nil && !sh.openRun(e, si, r) {
		return nil, false
	}
	n := int(r.offs[b+1] - r.offs[b])
	if cap(sh.blockBuf) < n {
		sh.blockBuf = make([]byte, n, max(n, 4096))
	}
	buf := sh.blockBuf[:n]
	if _, err := r.f.ReadAt(buf, int64(store.HeaderSize)+int64(r.offs[b])); err != nil {
		sh.quarantineRun(e, si, r)
		return nil, false
	}
	return buf, true
}

// openRun verifies and opens a spilled run's file. A run that fails
// verification is quarantined and marked bad — treated as all-miss from
// then on, mirroring the baseline store's corruption discipline.
func (sh *seenShard) openRun(e *engine, si int, r *run) bool {
	f, _, err := e.spill.OpenRun(r.path)
	if err != nil {
		r.bad = true
		sh.stQuarantines++
		return false
	}
	r.f = f
	return true
}

// quarantineRun retires a run whose file went bad after open.
func (sh *seenShard) quarantineRun(e *engine, si int, r *run) {
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
	if r.path != "" && e.spill != nil {
		e.spill.Quarantine(r.path)
	}
	r.bad = true
	sh.stQuarantines++
}

// runFind binary-searches r for h and returns its stored sleep mask.
// Must be called with the owning shard's mutex held.
func (sh *seenShard) runFind(e *engine, si int, r *run, h h128) (mask uint32, ok bool) {
	// Last block whose first entry is <= h.
	lo, hi := 0, len(r.firstHi)-1
	b := -1
	for lo <= hi {
		mid := (lo + hi) / 2
		if r.firstHi[mid] > h.hi || (r.firstHi[mid] == h.hi && r.firstLo[mid] > h.lo) {
			hi = mid - 1
		} else {
			b = mid
			lo = mid + 1
		}
	}
	if b < 0 {
		return 0, false
	}
	blk, ok := sh.blockBytes(e, si, r, b)
	if !ok {
		return 0, false
	}
	curHi, curLo := r.firstHi[b], r.firstLo[b]
	m, n := binary.Uvarint(blk)
	if n <= 0 {
		sh.quarantineRun(e, si, r)
		return 0, false
	}
	blk = blk[n:]
	for {
		if curHi == h.hi && curLo == h.lo {
			return uint32(m), true
		}
		if curHi > h.hi || (curHi == h.hi && curLo > h.lo) || len(blk) == 0 {
			return 0, false
		}
		dHi, l, mm, rest, ok := decodeEntry(blk)
		if !ok {
			sh.quarantineRun(e, si, r)
			return 0, false
		}
		blk = rest
		if dHi == 0 {
			curLo += l
		} else {
			curHi += dHi
			curLo = l
		}
		m = mm
	}
}

// runEntries decodes every entry of r — the filter-rebuild path. Must be
// called with the owning shard's mutex held.
func (sh *seenShard) runEntries(r *run) ([]fpEntry, error) {
	if r.bad {
		return nil, errBadRun
	}
	data := r.data
	if data == nil {
		// Re-read the whole payload; rebuilds are rare (filter doublings).
		if sh.spill == nil {
			return nil, errBadRun
		}
		payload, err := sh.spill.ReadRunPayload(r.path)
		if err != nil {
			return nil, errBadRun
		}
		data = payload
	}
	out := make([]fpEntry, 0, r.n)
	for b := 0; b < len(r.firstHi); b++ {
		if int(r.offs[b+1]) > len(data) {
			return nil, errBadRun
		}
		blk := data[r.offs[b]:r.offs[b+1]]
		curHi, curLo := r.firstHi[b], r.firstLo[b]
		m, n := binary.Uvarint(blk)
		if n <= 0 {
			return nil, errBadRun
		}
		blk = blk[n:]
		out = append(out, fpEntry{hi: curHi, lo: curLo, sleep: uint32(m)})
		for len(blk) > 0 {
			dHi, l, mm, rest, ok := decodeEntry(blk)
			if !ok {
				return nil, errBadRun
			}
			blk = rest
			if dHi == 0 {
				curLo += l
			} else {
				curHi += dHi
				curLo = l
			}
			out = append(out, fpEntry{hi: curHi, lo: curLo, sleep: uint32(mm)})
		}
	}
	return out, nil
}

// decodeEntry reads one non-first block entry — uvarint(dHi),
// uvarint(lo or dLo), uvarint(mask) — validating each length before
// advancing, so truncated or corrupt bytes surface as !ok rather than a
// slice panic.
func decodeEntry(blk []byte) (dHi, l, mask uint64, rest []byte, ok bool) {
	dHi, n1 := binary.Uvarint(blk)
	if n1 <= 0 {
		return 0, 0, 0, nil, false
	}
	blk = blk[n1:]
	l, n2 := binary.Uvarint(blk)
	if n2 <= 0 {
		return 0, 0, 0, nil, false
	}
	blk = blk[n2:]
	mask, n3 := binary.Uvarint(blk)
	if n3 <= 0 {
		return 0, 0, 0, nil, false
	}
	return dHi, l, mask, blk[n3:], true
}

type badRunError struct{}

func (badRunError) Error() string { return "mc: spilled run failed integrity verification" }

var errBadRun = badRunError{}

// --- spiller goroutines ---

// nSpillGroups is the number of background spiller goroutines; shard si
// hands sealed runs to spiller si%nSpillGroups, so one slow disk write
// never serializes the whole shard space.
const nSpillGroups = 4

// spillItem is one sealed run awaiting its disk write.
type spillItem struct {
	sh *seenShard
	si int
	r  *run
}

// spillEnqueue hands a freshly sealed run to its shard group's spiller.
// The handoff never blocks: when the spillers are saturated (or there is
// no spill directory at all) the run simply stays in RAM — graceful
// degradation, not a stall in the workers' hot path.
func (e *engine) spillEnqueue(sh *seenShard, si int, r *run) {
	if e.spill == nil {
		return
	}
	select {
	case e.spillChs[si%nSpillGroups] <- spillItem{sh: sh, si: si, r: r}:
	default:
	}
}

// spiller drains one shard group's channel, writing runs to disk and
// dropping their in-RAM blobs.
func (e *engine) spiller(ch chan spillItem) {
	defer e.spillWG.Done()
	for it := range ch {
		e.spillRunSafe(it.sh, it.si, it.r)
	}
}

// spillRunSafe isolates one run's disk write: a panic in the spill path
// is recorded like a worker panic, and the run simply stays in RAM (the
// seal-in-RAM rung) — a background writer must never take down an
// exploration that is correct without it.
func (e *engine) spillRunSafe(sh *seenShard, si int, r *run) {
	defer func() {
		if rec := recover(); rec != nil {
			AsInternalError("mc: spiller", rec)
			store.NoteSealInRAM()
		}
	}()
	e.spillRun(sh, si, r)
}

// spillRun writes one run through the store's framing and swaps the run's
// backing from RAM to the file under the shard lock.
func (e *engine) spillRun(sh *seenShard, si int, r *run) {
	sh.mu.Lock()
	data := r.data
	bad := r.bad
	sh.mu.Unlock()
	if data == nil || bad {
		return
	}
	path, err := e.spill.Write(data)
	if err != nil {
		// Disk trouble the retries could not outlast: the run stays in
		// RAM, correctness unharmed — the seal-in-RAM degradation rung.
		store.NoteSealInRAM()
		return
	}
	sh.mu.Lock()
	r.path = path
	r.data = nil
	sh.coldRAM -= int64(len(data))
	sh.stSpillRuns++
	sh.stSpillBytes += int64(len(data))
	sh.mu.Unlock()
}

// startSpill creates the spill session and spiller pool for an
// exploration, when cfg.SpillDir asks for one. Spill-session failure is
// metered once (the seal-in-RAM rung) and disables spilling — runs stay
// in RAM — rather than failing the exploration.
func (e *engine) startSpill() {
	if e.cfg.SpillDir == "" {
		return
	}
	sp, err := store.NewSpillSessionConfig(e.cfg.SpillDir, store.Config{
		FS:      e.cfg.FS,
		Retries: e.cfg.IORetries,
	})
	if err != nil {
		store.NoteSealInRAM()
		return
	}
	e.spill = sp
	for i := range e.shards {
		e.shards[i].spill = sp
	}
	for i := range e.spillChs {
		e.spillChs[i] = make(chan spillItem, 256)
		e.spillWG.Add(1)
		go e.spiller(e.spillChs[i])
	}
}

// finishSeen tears down the seen set after the workers have retired:
// joins the spillers, flushes the per-shard stats to the telemetry
// registry, closes spilled-run files, and removes the spill session.
func (e *engine) finishSeen() {
	for i := range e.spillChs {
		if e.spillChs[i] != nil {
			close(e.spillChs[i])
			e.spillChs[i] = nil
		}
	}
	e.spillWG.Wait()
	for i := range e.shards {
		sh := &e.shards[i]
		mSeenHotHits.Add(i, sh.stHotHits)
		mSeenColdHits.Add(i, sh.stColdHits)
		mSeenSeals.Add(i, sh.stSeals)
		mSpillRuns.Add(i, sh.stSpillRuns)
		mSpillBytes.Add(i, sh.stSpillBytes)
		mSpillQuarantines.Add(i, sh.stQuarantines)
		for _, r := range sh.runs {
			if r.f != nil {
				r.f.Close()
				r.f = nil
			}
		}
	}
	if e.spill != nil {
		e.spill.Remove()
		e.spill = nil
	}
}

// spillStats sums the per-shard spill counters — the bench harness reads
// these to report hot/cold hit ratios and spill volume.
func (e *engine) spillStats() (hotHits, coldHits, seals, spillRuns, spillBytes int64) {
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		hotHits += sh.stHotHits
		coldHits += sh.stColdHits
		seals += sh.stSeals
		spillRuns += sh.stSpillRuns
		spillBytes += sh.stSpillBytes
		sh.mu.Unlock()
	}
	return
}
