package mc

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"fenceplace/internal/ir"
)

const nShards = 64 // seen-set shards; fine-grained locking for the pool

// seenShard is one shard of the global seen set. The value is the sleep
// mask the state has been covered for: a state needs re-expansion only when
// it is reached with a sleep set that is not a superset of the stored mask,
// and then only for the previously-slept transitions (Godefroid's sleep
// sets with state matching).
type seenShard struct {
	mu sync.Mutex
	m  map[string]uint32
}

// node is one frontier entry: a state plus the sleep-set context it was
// reached with. revisit != 0 marks a re-expansion restricted to that
// transition mask.
type node struct {
	s       *state
	sleep   uint32
	revisit uint32
}

type engine struct {
	prog   *ir.Program
	cfg    Config
	base   map[*ir.Global]int64
	fnIdx  map[*ir.Fn]int32
	gwords int

	shards    [nShards]seenShard
	visited   atomic.Int64
	truncated atomic.Bool
	inflight  atomic.Int64
	hungry    atomic.Int32
	handoff   chan *node
	done      chan struct{}
	closeOnce sync.Once

	outMu    sync.Mutex
	outcomes map[string][]int64
	err      error
}

// worker-local scratch: frontier stack and encode buffer.
type workerCtx struct {
	local  []*node
	encBuf []byte
}

// fnv1a hashes the canonical encoding for shard routing.
func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// newEngine builds an engine and the initial state for the given entry
// configuration (thread functions, or the program's main when nil).
func newEngine(p *ir.Program, threadFns []string, cfg Config) (*engine, *state, error) {
	cfg = cfg.withDefaults()
	p.Finalize()
	e := &engine{
		prog:     p,
		cfg:      cfg,
		base:     make(map[*ir.Global]int64),
		fnIdx:    make(map[*ir.Fn]int32, len(p.Funcs)),
		handoff:  make(chan *node, 4096),
		done:     make(chan struct{}),
		outcomes: make(map[string][]int64),
	}
	for i, f := range p.Funcs {
		e.fnIdx[f] = int32(i)
	}

	// Layout globals exactly like tso.Run: address 0 stays unused so a zero
	// value is never a valid pointer.
	mem := []int64{0}
	for _, g := range p.Globals {
		e.base[g] = int64(len(mem))
		cells := make([]int64, g.Size)
		copy(cells, g.Init)
		mem = append(mem, cells...)
		e.gwords += g.Size
	}

	init := &state{mem: mem}
	if len(threadFns) > 0 {
		if len(threadFns) > MaxThreads {
			return nil, nil, fmt.Errorf("mc: %d thread functions exceed the %d-thread limit", len(threadFns), MaxThreads)
		}
		for _, name := range threadFns {
			fn := p.Fn(name)
			if fn == nil {
				return nil, nil, fmt.Errorf("mc: explore: no function %q", name)
			}
			init.threads = append(init.threads, thr{frames: []frm{newFrame(fn, nil, ir.NoReg)}})
		}
	} else {
		mainFn := p.Fn(p.Main)
		if mainFn == nil {
			return nil, nil, fmt.Errorf("mc: explore: program %q has no main function %q", p.Name, p.Main)
		}
		init.threads = []thr{{frames: []frm{newFrame(mainFn, nil, ir.NoReg)}}}
	}
	return e, init, nil
}

// Explore enumerates the reachable final states of the program under
// cfg.Mode. With threadFns set, the named functions run concurrently from
// the initial global state (the litmus configuration, compatible with
// tso.Explore). With threadFns nil, exploration starts from the program's
// main function and follows Spawn/Join/Call, so whole corpus programs can
// be checked. A Truncated result means the state budget ran out; callers
// must treat it as inconclusive, never as a verdict.
func Explore(p *ir.Program, threadFns []string, cfg Config) (*StateSet, error) {
	e, init, err := newEngine(p, threadFns, cfg)
	if err != nil {
		return nil, err
	}
	cfg = e.cfg
	e.inflight.Store(1)
	e.handoff <- &node{s: init}

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.worker(&workerCtx{encBuf: make([]byte, 0, 256)})
		}()
	}
	wg.Wait()

	if e.err != nil {
		return nil, e.err
	}
	res := &StateSet{
		Outcomes:  e.outcomes,
		Visited:   e.visited.Load(),
		Truncated: e.truncated.Load(),
	}
	return res, nil
}

func (e *engine) worker(w *workerCtx) {
	for {
		var n *node
		if len(w.local) > 0 {
			n = w.local[len(w.local)-1]
			w.local = w.local[:len(w.local)-1]
		} else {
			e.hungry.Add(1)
			select {
			case n = <-e.handoff:
				e.hungry.Add(-1)
			case <-e.done:
				e.hungry.Add(-1)
				return
			}
		}
		e.expand(w, n)
		if e.inflight.Add(-1) == 0 {
			e.closeOnce.Do(func() { close(e.done) })
		}
		// Feed hungry workers from the cold (root-near) end of the stack:
		// those nodes head the largest unexplored subtrees.
	offload:
		for len(w.local) > 1 && e.hungry.Load() > 0 {
			select {
			case e.handoff <- w.local[0]:
				w.local = w.local[1:]
			default:
				break offload
			}
		}
	}
}

func (e *engine) fail(err error) {
	e.outMu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.outMu.Unlock()
	e.truncated.Store(true) // drain the frontier quickly
}

// expand explores one frontier node: records terminal outcomes, computes
// the transition set to fire (persistent singleton, fresh sleep complement,
// or revisit delta), executes each transition and enqueues the children
// that survive the seen-set filter.
func (e *engine) expand(w *workerCtx, n *node) {
	if e.truncated.Load() {
		return // budget blown or failed: drain the frontier uncounted
	}
	v := e.visited.Add(1)
	if v > e.cfg.MaxStates {
		e.truncated.Store(true)
		return
	}
	s := n.s
	if s.terminal() {
		e.record(s, "")
		return
	}
	a := e.analyze(s)
	if a.enabled == 0 {
		e.record(s, "!deadlock")
		return
	}

	sleep := n.sleep & a.enabled
	var T uint32
	switch {
	case n.revisit != 0:
		T = n.revisit & a.enabled
	case e.cfg.NoPOR:
		T = a.enabled
		sleep = 0
	default:
		// Persistent singleton: an invisible, non-branching transition is
		// independent of everything other threads can ever do before it
		// runs, so it can be fired alone. Br/Jmp are excluded so that every
		// cycle of the state graph retains a fully-expanded state (the
		// cycle proviso); without that, a spinning thread could starve the
		// transitions of its peers out of the reduced graph.
		for bit := 0; bit < 2*MaxThreads; bit++ {
			if a.enabled&(1<<uint(bit)) != 0 && a.fps[bit].det {
				T = 1 << uint(bit)
				break
			}
		}
		if T == 0 {
			T = a.enabled &^ sleep
		}
	}

	cur := sleep
	for bit := 0; bit < 2*MaxThreads; bit++ {
		tb := uint32(1) << uint(bit)
		if T&tb == 0 {
			continue
		}
		child := s.clone()
		if bit < MaxThreads {
			if err := e.applyStep(child, bit); err != nil {
				e.fail(err)
				return
			}
		} else {
			applyDrain(child, bit-MaxThreads)
		}
		// The child sleeps on every already-covered transition that
		// commutes with the one just fired.
		var childSleep uint32
		for sb := 0; sb < 2*MaxThreads; sb++ {
			if cur&(1<<uint(sb)) != 0 && indep(&a, sb, bit) {
				childSleep |= 1 << uint(sb)
			}
		}
		e.enqueue(w, child, childSleep)
		cur |= tb
	}
}

// enqueue runs the seen-set protocol for a freshly produced state and, if
// it needs (re-)expansion, pushes it on the worker's frontier.
func (e *engine) enqueue(w *workerCtx, s *state, sleep uint32) {
	if e.truncated.Load() {
		return
	}
	w.encBuf = e.encode(s, w.encBuf)
	key := string(w.encBuf)
	sh := &e.shards[fnv1a(w.encBuf)%nShards]

	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[string]uint32)
	}
	prev, seen := sh.m[key]
	var n *node
	switch {
	case !seen:
		sh.m[key] = sleep
		n = &node{s: s, sleep: sleep}
	case prev&^sleep == 0:
		// Already covered for a sleep set at least as permissive: prune.
	default:
		// Previously slept transitions wake up: expand just those.
		sh.m[key] = prev & sleep
		n = &node{s: s, sleep: sleep, revisit: prev &^ sleep}
	}
	sh.mu.Unlock()

	if n != nil {
		e.inflight.Add(1)
		w.local = append(w.local, n)
	}
}

// record registers a terminal (or deadlocked) state's global values.
func (e *engine) record(s *state, suffix string) {
	vec := append([]int64(nil), s.mem[1:1+e.gwords]...)
	key := e.outcomeKey(s, suffix)
	e.outMu.Lock()
	if _, ok := e.outcomes[key]; !ok {
		e.outcomes[key] = vec
	}
	e.outMu.Unlock()
}

// Keys returns the printable outcome keys, sorted.
func (s *StateSet) Keys() []string {
	keys := make([]string, 0, len(s.Outcomes))
	for k := range s.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
