package mc

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fenceplace/internal/ir"
	"fenceplace/internal/store"
	"fenceplace/internal/telemetry"
	"fenceplace/internal/tso"
)

// Registry metrics of the model checker. Workers accumulate plain local
// counts (workerStats) and flush them once per exploration on their own
// shard, so the hot loop stays free of atomics and allocations; only the
// counters the heartbeat samples live (visited, inflight, seen) are shared
// engine atomics.
var (
	mExploreRuns   = telemetry.NewCounter("mc.explore_runs")
	mSCExploreRuns = telemetry.NewCounter("mc.sc_explore_runs")
	mStates        = telemetry.NewCounter("mc.states_visited")
	mTransitions   = telemetry.NewCounter("mc.transitions_executed")
	mSleepPrunes   = telemetry.NewCounter("mc.sleep_set_prunes")
	mSteals        = telemetry.NewCounter("mc.steals")
	mSeenProbes    = telemetry.NewCounter("mc.seen_probes")
	mSeenStates    = telemetry.NewCounter("mc.seen_states")
	mFreelistHits  = telemetry.NewCounter("mc.freelist_hits")
	mTruncated     = telemetry.NewCounter("mc.truncated_runs")
	mFrontierDepth = telemetry.NewHistogram("mc.frontier_depth")
	mMemHeadroom   = telemetry.NewGauge("mc.memcap_headroom")

	// Two-level seen-set metrics (see seen.go / spill.go). Hot/cold hits
	// count probes answered by the in-RAM tier vs. sealed runs; seals,
	// spill runs/bytes and quarantines describe the cold tier's life
	// cycle; seal latency is the pause a worker takes to sort and encode
	// a full hot tier.
	mSeenHotHits      = telemetry.NewCounter("mc.seen_hot_hits")
	mSeenColdHits     = telemetry.NewCounter("mc.seen_cold_hits")
	mSeenSeals        = telemetry.NewCounter("mc.seen_seals")
	mSpillRuns        = telemetry.NewCounter("mc.spill_runs")
	mSpillBytes       = telemetry.NewCounter("mc.spill_bytes")
	mSpillQuarantines = telemetry.NewCounter("mc.spill_quarantines")
	mSealLatency      = telemetry.NewHistogram("mc.seal_latency_ns")
)

const nShards = 64 // seen-set shards; fine-grained locking for the pool

// node is one frontier entry: a state plus the sleep-set context it was
// reached with. revisit != 0 marks a re-expansion restricted to that
// transition mask.
type node struct {
	s       *state
	sleep   uint32
	revisit uint32
}

type engine struct {
	prog   *ir.Program
	cfg    Config
	base   map[*ir.Global]int64
	fnIdx  map[*ir.Fn]int32
	gwords int

	shards      [nShards]seenShard
	shardBudget int64 // seen-set RAM budget per shard, in bytes
	hotMaxSlots int   // hot-tier slot cap derived from the budget
	spill       *store.Spill
	spillChs    [nSpillGroups]chan spillItem
	spillWG     sync.WaitGroup

	visited   atomic.Int64
	seen      atomic.Int64 // distinct states inserted into the seen set
	truncated atomic.Bool
	inflight  atomic.Int64
	hungry    atomic.Int32
	handoff   chan *node
	done      chan struct{}
	closeOnce sync.Once

	outMu    sync.Mutex
	outcomes map[string][]int64
	err      error
}

// workerCtx is the worker-local scratch that keeps the steady state of an
// exploration allocation-free: the frontier stack, reusable encode and
// outcome-key buffers, a reusable transition-analysis record (with its
// address arena), and freelists recycling the states and nodes the worker
// retires. Nodes handed off to other workers are recycled by the receiving
// worker; freelists never cross workers, so no locking is involved.
type workerCtx struct {
	local      []*node
	encBuf     []byte
	keyBuf     []byte
	an         analysis
	freeStates []*state
	freeNodes  []*node
	stats      workerStats
}

// workerStats is the worker-local metric accumulator: plain integers
// bumped in the hot loop (no atomics, no sharing) and flushed to the
// registry counters once, on the worker's own shard, when the worker
// retires.
type workerStats struct {
	states       int64 // states expanded (mirrors engine.visited)
	transitions  int64 // child transitions executed
	sleepPrunes  int64 // states pruned by the sleep-set seen protocol
	steals       int64 // nodes received over the handoff channel
	seenProbes   int64 // seen-set lookups
	freelistHits int64 // state/node shells served from the local freelist
	maxFrontier  int64 // peak local frontier depth
	maxMem       int64 // peak state arena size in words
}

// flush adds the accumulated statistics to the registry on the given
// shard (the worker's index, so concurrent workers never contend).
func (st *workerStats) flush(shard int) {
	mStates.Add(shard, st.states)
	mTransitions.Add(shard, st.transitions)
	mSleepPrunes.Add(shard, st.sleepPrunes)
	mSteals.Add(shard, st.steals)
	mSeenProbes.Add(shard, st.seenProbes)
	mFreelistHits.Add(shard, st.freelistHits)
	mFrontierDepth.Observe(shard, st.maxFrontier)
}

// statePool and nodePool recycle shells across explorations: a worker's
// freelist starts empty, and without a process-wide pool every fresh
// Explore would re-allocate its peak frontier (states live concurrently on
// the stack) even though cloneInto immediately resizes whatever it gets.
// States carry no engine- or program-specific invariants — cloneInto and
// pushFrame overwrite everything and reuse only slice capacity — so
// recycling across programs is safe.
var statePool = sync.Pool{New: func() any { return &state{} }}
var nodePool = sync.Pool{New: func() any { return &node{} }}

func (w *workerCtx) newState() *state {
	if n := len(w.freeStates); n > 0 {
		s := w.freeStates[n-1]
		w.freeStates = w.freeStates[:n-1]
		w.stats.freelistHits++
		return s
	}
	return statePool.Get().(*state)
}

func (w *workerCtx) putState(s *state) { w.freeStates = append(w.freeStates, s) }

func (w *workerCtx) newNode(s *state, sleep, revisit uint32) *node {
	var n *node
	if l := len(w.freeNodes); l > 0 {
		n = w.freeNodes[l-1]
		w.freeNodes = w.freeNodes[:l-1]
		w.stats.freelistHits++
	} else {
		n = nodePool.Get().(*node)
	}
	*n = node{s: s, sleep: sleep, revisit: revisit}
	return n
}

func (w *workerCtx) putNode(n *node) {
	n.s = nil
	w.freeNodes = append(w.freeNodes, n)
}

// release returns the worker's freelists to the process-wide pools when
// the worker retires, so the next exploration starts warm.
func (w *workerCtx) release() {
	for _, s := range w.freeStates {
		statePool.Put(s)
	}
	w.freeStates = nil
	for _, n := range w.freeNodes {
		nodePool.Put(n)
	}
	w.freeNodes = nil
}

// fnv1a hashes the canonical encoding for shard routing in exact mode.
func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// ExploreRuns returns the cumulative number of Explore invocations in this
// process. It exists for tests and telemetry: certifying N fence-placement
// variants of one program against a shared Baseline must advance it by
// exactly N+1 (one SC exploration plus one TSO exploration per variant).
//
// Deprecated: this is a read of the "mc.explore_runs" registry counter;
// new code should consume telemetry.Default().Snapshot() instead.
func ExploreRuns() int64 { return mExploreRuns.Value() }

// SCExploreRuns returns the cumulative number of SC-mode Explore
// invocations in this process — the explorations a warm baseline cache
// exists to avoid.
//
// Deprecated: this is a read of the "mc.sc_explore_runs" registry counter;
// new code should consume telemetry.Default().Snapshot() instead.
func SCExploreRuns() int64 { return mSCExploreRuns.Value() }

// newEngine builds an engine and the initial state for the given entry
// configuration (thread functions, or the program's main when nil).
func newEngine(p *ir.Program, threadFns []string, cfg Config) (*engine, *state, error) {
	cfg = cfg.withDefaults()
	p.Finalize()
	e := &engine{
		prog:     p,
		cfg:      cfg,
		base:     make(map[*ir.Global]int64),
		fnIdx:    make(map[*ir.Fn]int32, len(p.Funcs)),
		handoff:  make(chan *node, 4096),
		done:     make(chan struct{}),
		outcomes: make(map[string][]int64),
	}
	for i, f := range p.Funcs {
		e.fnIdx[f] = int32(i)
	}
	e.shardBudget, e.hotMaxSlots = seenBudget(cfg)

	// Layout globals exactly like tso.Run: address 0 stays unused so a zero
	// value is never a valid pointer.
	mem := []int64{0}
	for _, g := range p.Globals {
		e.base[g] = int64(len(mem))
		cells := make([]int64, g.Size)
		copy(cells, g.Init)
		mem = append(mem, cells...)
		e.gwords += g.Size
	}

	init := &state{mem: mem}
	if len(threadFns) > 0 {
		if len(threadFns) > MaxThreads {
			return nil, nil, fmt.Errorf("mc: %d thread functions exceed the %d-thread limit", len(threadFns), MaxThreads)
		}
		for _, name := range threadFns {
			fn := p.Fn(name)
			if fn == nil {
				return nil, nil, fmt.Errorf("mc: explore: no function %q", name)
			}
			init.threads = append(init.threads, thr{frames: []frm{newFrame(fn, nil, ir.NoReg)}})
		}
	} else {
		mainFn := p.Fn(p.Main)
		if mainFn == nil {
			return nil, nil, fmt.Errorf("mc: explore: program %q has no main function %q", p.Name, p.Main)
		}
		init.threads = []thr{{frames: []frm{newFrame(mainFn, nil, ir.NoReg)}}}
	}
	return e, init, nil
}

// Explore enumerates the reachable final states of the program under
// cfg.Mode. With threadFns set, the named functions run concurrently from
// the initial global state (the litmus configuration, compatible with
// tso.Explore). With threadFns nil, exploration starts from the program's
// main function and follows Spawn/Join/Call, so whole corpus programs can
// be checked. A Truncated result means the state budget ran out; callers
// must treat it as inconclusive, never as a verdict.
func Explore(p *ir.Program, threadFns []string, cfg Config) (*StateSet, error) {
	return ExploreCtx(context.Background(), p, threadFns, cfg)
}

// ExploreCtx is Explore bounded by a context: when ctx is cancelled the
// workers abandon the exploration promptly — every in-flight state stops
// producing children, the frontier drains uncounted — and the call returns
// ctx's error. Cancellation reuses the budget-exhaustion drain path, so no
// per-state ctx polling taxes the hot loop.
func ExploreCtx(ctx context.Context, p *ir.Program, threadFns []string, cfg Config) (*StateSet, error) {
	mExploreRuns.Inc(0)
	if cfg.Mode == tso.SC {
		mSCExploreRuns.Inc(0)
	}
	start := time.Now()
	e, init, err := newEngine(p, threadFns, cfg)
	if err != nil {
		return nil, err
	}
	cfg = e.cfg
	e.startSpill()
	e.inflight.Store(1)
	e.handoff <- &node{s: init}

	// The watcher turns a ctx firing into an engine failure: e.fail sets
	// the drain flag every worker polls, so the frontier empties within one
	// expansion per worker. It is joined after the workers so the final
	// e.err read cannot race a late fail.
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		select {
		case <-ctx.Done():
			e.fail(ctx.Err())
		case <-e.done:
		}
	}()

	// The heartbeat streams Progress events while workers run; it exits on
	// e.done, which is closed before the last worker returns, so joining it
	// after wg.Wait cannot deadlock and the final (synchronous) event below
	// never races a ticker-driven one.
	pc, hasProgress := progressFrom(ctx)
	var hbDone chan struct{}
	if hasProgress {
		hbDone = make(chan struct{})
		go func() {
			defer close(hbDone)
			e.heartbeat(pc, start)
		}()
	}

	var wg sync.WaitGroup
	var maxMem atomic.Int64
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			wctx := &workerCtx{encBuf: make([]byte, 0, 256)}
			e.worker(wctx)
			wctx.stats.flush(shard)
			for m := wctx.stats.maxMem; ; {
				cur := maxMem.Load()
				if m <= cur || maxMem.CompareAndSwap(cur, m) {
					break
				}
			}
			wctx.release()
		}(w)
	}
	wg.Wait()
	<-watchDone
	e.finishSeen()
	mSeenStates.Add(0, e.seen.Load())
	if e.cfg.MemoryCap > 0 {
		mMemHeadroom.Set(0, int64(e.cfg.MemoryCap)-maxMem.Load())
	} else {
		// Always write the gauge: an uncapped run must not leave a stale
		// headroom value from an earlier capped run in the same process.
		mMemHeadroom.Set(0, -1)
	}

	if e.err != nil {
		if hbDone != nil {
			<-hbDone
		}
		return nil, e.err
	}
	res := &StateSet{
		Outcomes:  e.outcomes,
		Visited:   e.visited.Load(),
		Truncated: e.truncated.Load(),
	}
	if res.Truncated {
		mTruncated.Inc(0)
		// The last rung of the degradation ladder: the budget is truly
		// exhausted and the verdict is explicitly three-valued.
		store.NoteDegraded(store.DegradeTruncated)
	}
	if telemetry.TraceEnabled() {
		telemetry.Emit(telemetry.Span{
			Name:  "explore " + p.Name + "/" + cfg.Mode.String(),
			Cat:   "mc",
			Track: telemetry.NextTrack(),
			Start: start,
			Dur:   time.Since(start),
			Args: []telemetry.Arg{
				{Key: "visited", Val: res.Visited},
				{Key: "outcomes", Val: int64(len(res.Outcomes))},
				{Key: "workers", Val: int64(cfg.Workers)},
			},
		})
	}
	if hasProgress {
		<-hbDone
		elapsed := time.Since(start)
		var rate float64
		if s := elapsed.Seconds(); s > 0 {
			rate = float64(res.Visited) / s
		}
		pc.fn(Progress{
			Program:      p.Name,
			Mode:         cfg.Mode,
			Visited:      res.Visited,
			Frontier:     e.inflight.Load(),
			Seen:         e.seen.Load(),
			Elapsed:      elapsed,
			StatesPerSec: rate,
			Final:        true,
		})
	}
	return res, nil
}

func (e *engine) worker(w *workerCtx) {
	for {
		var n *node
		if len(w.local) > 0 {
			n = w.local[len(w.local)-1]
			w.local = w.local[:len(w.local)-1]
		} else {
			e.hungry.Add(1)
			select {
			case n = <-e.handoff:
				e.hungry.Add(-1)
				w.stats.steals++
			case <-e.done:
				e.hungry.Add(-1)
				return
			}
		}
		e.expandSafe(w, n)
		// The node and its state are dead once expanded (children are
		// cloned, outcomes copied): recycle both.
		w.putState(n.s)
		w.putNode(n)
		if e.inflight.Add(-1) == 0 {
			e.closeOnce.Do(func() { close(e.done) })
		}
		// Feed hungry workers from the cold (root-near) end of the stack:
		// those nodes head the largest unexplored subtrees.
	offload:
		for len(w.local) > 1 && e.hungry.Load() > 0 {
			select {
			case e.handoff <- w.local[0]:
				w.local = w.local[1:]
			default:
				break offload
			}
		}
	}
}

// TestHookExpand, when non-nil, runs at the top of every state expansion
// with the running visited count — the chaos suite's seam for injecting a
// worker panic mid-exploration. It executes inside expandSafe's recover
// scope, once per state, outside the per-transition hot loop.
var TestHookExpand func(visited int64)

// expandSafe isolates one state expansion: a panic anywhere below
// (including the test hook) is recovered into a structured InternalError
// and turned into an engine failure, which drains the frontier exactly
// like cancellation does. The worker then retires the node normally, so
// inflight accounting and freelists stay consistent — the pool drains
// cleanly, sibling explorations keep running, and the process never dies.
func (e *engine) expandSafe(w *workerCtx, n *node) {
	defer func() {
		if r := recover(); r != nil {
			e.fail(AsInternalError("mc: exploration worker", r))
		}
	}()
	if TestHookExpand != nil {
		TestHookExpand(e.visited.Load())
	}
	e.expand(w, n)
}

func (e *engine) fail(err error) {
	e.outMu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.outMu.Unlock()
	e.truncated.Store(true) // drain the frontier quickly
}

// expand explores one frontier node: records terminal outcomes, computes
// the transition set to fire (persistent singleton, fresh sleep complement,
// or revisit delta), executes each transition and enqueues the children
// that survive the seen-set filter.
func (e *engine) expand(w *workerCtx, n *node) {
	if e.truncated.Load() {
		return // budget blown or failed: drain the frontier uncounted
	}
	v := e.visited.Add(1)
	w.stats.states++
	if v > e.cfg.MaxStates {
		e.truncated.Store(true)
		return
	}
	s := n.s
	if m := int64(len(s.mem)); m > w.stats.maxMem {
		w.stats.maxMem = m
	}
	if d := int64(len(w.local)); d > w.stats.maxFrontier {
		w.stats.maxFrontier = d
	}
	if s.terminal() {
		e.record(w, s, "")
		return
	}
	a := &w.an
	e.analyze(s, a)
	if a.enabled == 0 {
		e.record(w, s, "!deadlock")
		return
	}

	sleep := n.sleep & a.enabled
	var T uint32
	switch {
	case n.revisit != 0:
		T = n.revisit & a.enabled
	case e.cfg.NoPOR:
		T = a.enabled
		sleep = 0
	default:
		// Persistent singleton: an invisible, non-branching transition is
		// independent of everything other threads can ever do before it
		// runs, so it can be fired alone. Br/Jmp are excluded so that every
		// cycle of the state graph retains a fully-expanded state (the
		// cycle proviso); without that, a spinning thread could starve the
		// transitions of its peers out of the reduced graph.
		for bit := 0; bit < 2*MaxThreads; bit++ {
			if a.enabled&(1<<uint(bit)) != 0 && a.fps[bit].det {
				T = 1 << uint(bit)
				break
			}
		}
		if T == 0 {
			T = a.enabled &^ sleep
		}
	}

	cur := sleep
	for bit := 0; bit < 2*MaxThreads; bit++ {
		tb := uint32(1) << uint(bit)
		if T&tb == 0 {
			continue
		}
		child := w.newState()
		w.stats.transitions++
		cloneInto(child, s)
		if bit < MaxThreads {
			if err := e.applyStep(child, bit); err != nil {
				e.fail(err)
				return
			}
		} else {
			applyDrain(child, bit-MaxThreads)
		}
		// The child sleeps on every already-covered transition that
		// commutes with the one just fired.
		var childSleep uint32
		for sb := 0; sb < 2*MaxThreads; sb++ {
			if cur&(1<<uint(sb)) != 0 && indep(a, sb, bit) {
				childSleep |= 1 << uint(sb)
			}
		}
		e.enqueue(w, child, childSleep)
		cur |= tb
	}
}

// enqueue runs the seen-set protocol for a freshly produced state and, if
// it needs (re-)expansion, pushes it on the worker's frontier; pruned
// states go back on the worker's freelist.
func (e *engine) enqueue(w *workerCtx, s *state, sleep uint32) {
	if e.truncated.Load() {
		w.putState(s)
		return
	}
	w.encBuf = e.encode(s, w.encBuf)
	w.stats.seenProbes++

	var need bool
	var revisit uint32
	if e.cfg.ExactSeen {
		sh := &e.shards[fnv1a(w.encBuf)%nShards]
		sh.mu.Lock()
		if sh.m == nil {
			sh.m = make(map[string]uint32)
		}
		prev, seen := sh.m[string(w.encBuf)] // no-copy map probe
		switch {
		case !seen:
			sh.m[string(w.encBuf)] = sleep
			need = true
		case prev&^sleep == 0:
			// Already covered for a sleep set at least as permissive: prune.
		default:
			// Previously slept transitions wake up: expand just those.
			sh.m[string(w.encBuf)] = prev & sleep
			need, revisit = true, prev&^sleep
		}
		sh.mu.Unlock()
	} else {
		h := hash128(w.encBuf)
		si := int(h.hi % nShards)
		sh := &e.shards[si]
		sh.mu.Lock()
		need, revisit = sh.visit(e, si, h, sleep)
		sh.mu.Unlock()
	}

	if need {
		if revisit == 0 {
			e.seen.Add(1) // first sighting: the table grew by one state
		}
		e.inflight.Add(1)
		w.local = append(w.local, w.newNode(s, sleep, revisit))
	} else {
		w.stats.sleepPrunes++
		w.putState(s)
	}
}

// record registers a terminal (or deadlocked) state's global values. The
// outcome key is rendered into the worker's scratch buffer and the map is
// probed before anything is copied, so duplicate terminal states — the
// overwhelming majority — allocate nothing.
func (e *engine) record(w *workerCtx, s *state, suffix string) {
	w.keyBuf = appendOutcomeKey(w.keyBuf[:0], s.mem[1:1+e.gwords], s.failed, suffix)
	e.outMu.Lock()
	if _, ok := e.outcomes[string(w.keyBuf)]; !ok {
		vec := append([]int64(nil), s.mem[1:1+e.gwords]...)
		e.outcomes[string(w.keyBuf)] = vec
	}
	e.outMu.Unlock()
}

// Keys returns the printable outcome keys, sorted.
func (s *StateSet) Keys() []string {
	keys := make([]string, 0, len(s.Outcomes))
	for k := range s.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
