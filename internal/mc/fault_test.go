package mc

// Fault and panic tests for the model checker: a flaky spill disk must
// never change the verdict (spill failures seal in RAM and at worst cost
// re-exploration), and a worker panic must come back as a structured
// *InternalError with the process and subsequent runs unharmed.

import (
	"errors"
	"testing"

	"fenceplace/internal/fsx"
	"fenceplace/internal/store"
	"fenceplace/internal/tso"
)

// TestExploreExactUnderSpillFaults is the exactness-under-faults oracle
// check: forced spilling through a seeded flaky filesystem — transient
// EIO, ENOSPC, short writes, rename failures — must reproduce exactly
// the outcome set and visit count of the fault-free exact exploration.
// Disk trouble may cost re-exploration of spilled runs; it may never
// drop or invent an outcome.
func TestExploreExactUnderSpillFaults(t *testing.T) {
	prog := sb(false)
	threads := []string{"t0", "t1"}
	exact, err := Explore(prog, threads, Config{Mode: tso.TSO, Workers: 1, ExactSeen: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 7, 42} {
		store.ResetDegraded()
		ff := fsx.NewFaultFS(nil, fsx.FaultConfig{
			Seed: seed, EIO: 0.2, ENOSPC: 0.05, ShortWrite: 0.1, RenameFail: 0.1,
		})
		got, err := Explore(prog, threads, Config{
			Mode: tso.TSO, Workers: 1,
			SeenBudget: 1, SpillDir: t.TempDir(), // seal on every insert
			FS: ff, IORetries: 1,
		})
		if err != nil {
			t.Fatalf("seed %d: exploration failed under spill faults: %v", seed, err)
		}
		if got.Truncated {
			t.Fatalf("seed %d: truncated under spill faults", seed)
		}
		sameKeys(t, "faulty-spill vs exact outcomes", keySet(got.Outcomes), keySet(exact.Outcomes))
		if got.Visited != exact.Visited {
			t.Fatalf("seed %d: visited %d vs exact %d", seed, got.Visited, exact.Visited)
		}
	}
	store.ResetDegraded()
}

// TestExploreSurvivesCrashedSpillDisk pins the seal-in-RAM rung: a spill
// disk that dies entirely mid-run degrades to in-RAM sealed runs, notes
// the rung on the ladder, and still produces the exact outcome set.
func TestExploreSurvivesCrashedSpillDisk(t *testing.T) {
	store.ResetDegraded()
	defer store.ResetDegraded()
	prog := sb(false)
	threads := []string{"t0", "t1"}
	exact, err := Explore(prog, threads, Config{Mode: tso.TSO, Workers: 1, ExactSeen: true})
	if err != nil {
		t.Fatal(err)
	}
	ff := fsx.NewFaultFS(nil, fsx.FaultConfig{CrashAfter: 4})
	got, err := Explore(prog, threads, Config{
		Mode: tso.TSO, Workers: 1,
		SeenBudget: 1, SpillDir: t.TempDir(),
		FS: ff,
	})
	if err != nil {
		t.Fatalf("exploration failed after spill-disk crash: %v", err)
	}
	sameKeys(t, "crashed-spill vs exact outcomes", keySet(got.Outcomes), keySet(exact.Outcomes))
	if got.Visited != exact.Visited {
		t.Fatalf("visited %d vs exact %d", got.Visited, exact.Visited)
	}
	if rung := store.DegradedMode(); rung < store.DegradeSealInRAM {
		t.Fatalf("degraded rung = %d, want at least DegradeSealInRAM", rung)
	}
}

// TestWorkerPanicBecomesInternalError pins panic isolation end to end: a
// panic injected into an exploration worker comes back from ExploreCtx as
// a structured *InternalError carrying the panic value and stack, the
// worker_panics counter ticks, and the process is healthy enough that an
// immediately following clean run succeeds with the exact outcomes.
func TestWorkerPanicBecomesInternalError(t *testing.T) {
	prog := sb(false)
	threads := []string{"t0", "t1"}
	panicsBefore := mWorkerPanics.Value()
	TestHookExpand = func(visited int64) {
		if visited >= 2 {
			panic("injected worker fault")
		}
	}
	defer func() { TestHookExpand = nil }()
	for _, workers := range []int{1, 4} {
		_, err := Explore(prog, threads, Config{Mode: tso.TSO, Workers: workers})
		var ie *InternalError
		if !errors.As(err, &ie) {
			t.Fatalf("workers=%d: err = %v, want *InternalError", workers, err)
		}
		if ie.Panic != "injected worker fault" {
			t.Fatalf("workers=%d: InternalError.Panic = %v", workers, ie.Panic)
		}
		if len(ie.Stack) == 0 {
			t.Fatalf("workers=%d: InternalError.Stack is empty", workers)
		}
	}
	if got := mWorkerPanics.Value() - panicsBefore; got < 2 {
		t.Fatalf("worker_panics delta = %d, want >= 2", got)
	}
	TestHookExpand = nil

	// The process survived: a clean run right after is exact.
	exact, err := Explore(prog, threads, Config{Mode: tso.TSO, Workers: 1, ExactSeen: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Explore(prog, threads, Config{Mode: tso.TSO})
	if err != nil {
		t.Fatalf("clean run after recovered panics: %v", err)
	}
	sameKeys(t, "post-panic clean run", keySet(got.Outcomes), keySet(exact.Outcomes))
}

// TestCertifyUnderStoreFaultsStaysExact runs the full certification of a
// fenced program through a flaky spill disk: the verdict must match the
// fault-free certification.
func TestCertifyUnderStoreFaultsStaysExact(t *testing.T) {
	orig, inst := sb(false), sb(true)
	threads := []string{"t0", "t1"}
	clean, err := Certify(orig, inst, threads, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ff := fsx.NewFaultFS(nil, fsx.FaultConfig{Seed: 13, EIO: 0.3, ShortWrite: 0.1})
	faulty, err := Certify(orig, inst, threads, Config{
		Workers: 1, SeenBudget: 1, SpillDir: t.TempDir(), FS: ff, IORetries: 2,
	})
	if err != nil {
		t.Fatalf("certification failed under store faults: %v", err)
	}
	if faulty.Equivalent != clean.Equivalent {
		t.Fatalf("verdict flipped under faults: %v vs clean %v", faulty.Equivalent, clean.Equivalent)
	}
}
