package mc

import (
	"context"
	"sync"
	"testing"
	"time"

	"fenceplace/internal/tso"
)

// TestExploreMetricsMatchResult checks the registry counters against the
// exploration's own figures: the states_visited delta must equal
// res.Visited exactly (the acceptance contract of the -metrics dump), the
// run counters must advance by one per exploration, and the structural
// counters must be self-consistent.
func TestExploreMetricsMatchResult(t *testing.T) {
	p := medium3()
	for _, mode := range []tso.Mode{tso.TSO, tso.SC} {
		t.Run(mode.String(), func(t *testing.T) {
			states0 := mStates.Value()
			runs0 := mExploreRuns.Value()
			scRuns0 := mSCExploreRuns.Value()
			trans0 := mTransitions.Value()
			probes0 := mSeenProbes.Value()
			seen0 := mSeenStates.Value()

			res, err := Explore(p, []string{"t0", "t1", "t2"}, Config{Mode: mode, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}

			if d := mStates.Value() - states0; d != res.Visited {
				t.Errorf("mc.states_visited advanced by %d, exploration reports %d", d, res.Visited)
			}
			if d := mExploreRuns.Value() - runs0; d != 1 {
				t.Errorf("mc.explore_runs advanced by %d, want 1", d)
			}
			wantSC := int64(0)
			if mode == tso.SC {
				wantSC = 1
			}
			if d := mSCExploreRuns.Value() - scRuns0; d != wantSC {
				t.Errorf("mc.sc_explore_runs advanced by %d, want %d", d, wantSC)
			}
			// Every visited state beyond the root arrived by executing a
			// transition, and every executed transition was probed against
			// the seen set.
			trans := mTransitions.Value() - trans0
			if trans < res.Visited-1 {
				t.Errorf("mc.transitions_executed %d < visited-1 (%d)", trans, res.Visited-1)
			}
			if probes := mSeenProbes.Value() - probes0; probes != trans {
				t.Errorf("mc.seen_probes %d != transitions %d (each child is probed exactly once)", probes, trans)
			}
			seen := mSeenStates.Value() - seen0
			if seen <= 0 || seen > res.Visited {
				t.Errorf("mc.seen_states delta %d out of range (visited %d)", seen, res.Visited)
			}
		})
	}
}

// TestDeprecatedRunCountersTrackRegistry pins the compatibility contract:
// the deprecated ExploreRuns/SCExploreRuns reads move in lockstep with the
// registry counters they now alias.
func TestDeprecatedRunCountersTrackRegistry(t *testing.T) {
	before, scBefore := ExploreRuns(), SCExploreRuns()
	if _, err := Explore(medium3(), []string{"t0", "t1", "t2"}, Config{Mode: tso.SC, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if d := ExploreRuns() - before; d != 1 {
		t.Errorf("ExploreRuns advanced by %d, want 1", d)
	}
	if d := SCExploreRuns() - scBefore; d != 1 {
		t.Errorf("SCExploreRuns advanced by %d, want 1", d)
	}
}

// TestProgressHeartbeat streams progress from an exploration at a tiny
// interval and checks the event protocol: sequential delivery per
// exploration, monotone visited counts, and a Final event whose totals
// match the returned result exactly.
func TestProgressHeartbeat(t *testing.T) {
	var mu sync.Mutex
	var events []Progress
	ctx := WithProgress(context.Background(), time.Microsecond, func(p Progress) {
		mu.Lock()
		events = append(events, p)
		mu.Unlock()
	})
	p := medium3()
	res, err := ExploreCtx(ctx, p, []string{"t0", "t1", "t2"}, Config{Mode: tso.TSO, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) == 0 {
		t.Fatal("no progress events delivered")
	}
	last := events[len(events)-1]
	if !last.Final {
		t.Fatalf("last event is not Final: %+v", last)
	}
	if last.Visited != res.Visited {
		t.Errorf("final event reports %d states, exploration returned %d", last.Visited, res.Visited)
	}
	if last.Program != p.Name || last.Mode != tso.TSO {
		t.Errorf("final event misattributed: %+v", last)
	}
	if last.Seen <= 0 || last.Elapsed <= 0 {
		t.Errorf("final event missing figures: %+v", last)
	}
	prev := int64(-1)
	for i, ev := range events {
		if ev.Final && i != len(events)-1 {
			t.Errorf("Final event at %d of %d", i, len(events))
		}
		if ev.Visited < prev {
			t.Errorf("visited counts not monotone: %d after %d", ev.Visited, prev)
		}
		prev = ev.Visited
	}
}

// TestProgressAbsentIsFree checks explorations without a sink see no
// callback machinery: a plain context must not deliver events (guarded by
// the allocation regression in seen_test.go staying green).
func TestProgressAbsentIsFree(t *testing.T) {
	if _, ok := progressFrom(context.Background()); ok {
		t.Fatal("progressFrom found a sink on a bare context")
	}
	if ctx := WithProgress(context.Background(), time.Second, nil); ctx != context.Background() {
		t.Fatal("WithProgress(nil fn) must return the context unchanged")
	}
}
