package mc

import (
	"fmt"
	"testing"

	"fenceplace/internal/ir"
	"fenceplace/internal/progs"
	"fenceplace/internal/tso"
)

// TestFingerprintMatchesExactSeen is the oracle check for the fingerprint
// seen-set: across the litmus corpus and instrumented (expert-fenced)
// corpus kernels, exploration keyed by 128-bit fingerprints must produce
// exactly the outcome set and visit count of exploration keyed by full
// canonical encodings. Visit counts are compared at one worker, where the
// sleep-set protocol is deterministic; any fingerprint collision would
// merge distinct states and show up as a visit-count or outcome drift.
func TestFingerprintMatchesExactSeen(t *testing.T) {
	type tc struct {
		name    string
		prog    *ir.Program
		threads []string
	}
	cases := []tc{
		{"sb", sb(false), []string{"t0", "t1"}},
		{"sb+f", sb(true), []string{"t0", "t1"}},
		{"mp", mp(), []string{"t0", "t1"}},
		{"lb", lb(), []string{"t0", "t1"}},
		{"ring3", medium3(), []string{"t0", "t1", "t2"}},
	}
	for _, name := range []string{"dekker", "peterson"} {
		m := progs.ByName(name)
		pp := m.Defaults
		pp.Threads = 2
		pp.Size = 1
		pp.Manual = true
		cases = append(cases, tc{name + "/manual", m.Build(pp), nil})
	}
	for _, c := range cases {
		for _, mode := range []tso.Mode{tso.TSO, tso.SC} {
			t.Run(fmt.Sprintf("%s/%s", c.name, mode), func(t *testing.T) {
				fp, err := Explore(c.prog, c.threads, Config{Mode: mode, Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				exact, err := Explore(c.prog, c.threads, Config{Mode: mode, Workers: 1, ExactSeen: true})
				if err != nil {
					t.Fatal(err)
				}
				if fp.Truncated || exact.Truncated {
					t.Fatal("exploration truncated")
				}
				sameKeys(t, "fingerprint vs exact outcomes", keySet(fp.Outcomes), keySet(exact.Outcomes))
				for k, vec := range exact.Outcomes {
					got := fp.Outcomes[k]
					if len(got) != len(vec) {
						t.Fatalf("outcome %s: vector length %d vs %d", k, len(got), len(vec))
					}
					for i := range vec {
						if got[i] != vec[i] {
							t.Fatalf("outcome %s: globals %v vs %v", k, got, vec)
						}
					}
				}
				if fp.Visited != exact.Visited {
					t.Errorf("visit counts diverge: fingerprint %d, exact %d", fp.Visited, exact.Visited)
				}
			})
		}
	}
}

// TestFingerprintMatchesExactSeenRandom fuzzes flat programs through both
// seen-set modes (the same generator as the POR differential, different
// seed) so the oracle check is not limited to hand-picked shapes.
func TestFingerprintMatchesExactSeenRandom(t *testing.T) {
	progsByName := randomPrograms(20260729, 25)
	for name, p := range progsByName {
		for _, mode := range []tso.Mode{tso.TSO, tso.SC} {
			fp, err := Explore(p, []string{"t0", "t1"}, Config{Mode: mode, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			exact, err := Explore(p, []string{"t0", "t1"}, Config{Mode: mode, Workers: 1, ExactSeen: true})
			if err != nil {
				t.Fatal(err)
			}
			sameKeys(t, fmt.Sprintf("%s/%s fingerprint vs exact", name, mode),
				keySet(fp.Outcomes), keySet(exact.Outcomes))
			if fp.Visited != exact.Visited {
				t.Errorf("%s/%s: visit counts diverge: fingerprint %d, exact %d", name, mode, fp.Visited, exact.Visited)
			}
		}
	}
}

// TestExploreSteadyStateAllocs is the allocation regression test for the
// hot path: exploring a program whose state space dwarfs the engine's
// fixed setup cost must allocate per exploration, not per state. ring3
// visits thousands of states under TSO; the bound below is a multiple of
// the engine's setup footprint (shard tables, worker scratch, channel) and
// two orders of magnitude under a states-proportional count.
func TestExploreSteadyStateAllocs(t *testing.T) {
	p := medium3()
	var visited int64
	allocs := testing.AllocsPerRun(3, func() {
		res, err := Explore(p, []string{"t0", "t1", "t2"}, Config{Mode: tso.TSO, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		visited = res.Visited
	})
	if visited < 1000 {
		t.Fatalf("ring3 visited only %d states; the bound below is meaningless", visited)
	}
	const maxAllocs = 400
	if allocs > maxAllocs {
		t.Errorf("Explore allocated %.0f times for %d states (budget %d): the steady state is allocating again",
			allocs, visited, maxAllocs)
	}
	t.Logf("%.0f allocs for %d states", allocs, visited)
}

// TestHash128Vectors pins the murmur3 x64/128 implementation to reference
// digests so a silent change to the fingerprint function cannot slip in.
func TestHash128Vectors(t *testing.T) {
	cases := []struct {
		in     string
		hi, lo uint64
	}{
		// Reference values from the canonical C++ MurmurHash3_x64_128
		// (seed 0), little-endian digest split into two words.
		{"", 0, 0},
		{"hello", 0xcbd8a7b341bd9b02, 0x5b1e906a48ae1d19},
		{"hello, world", 0x342fac623a5ebc8e, 0x4cdcbc079642414d},
		// Wikipedia quotes this digest as the byte stream
		// 6c1b07bc7bbc4be3 47939ac4a93c437a; the words below are its two
		// little-endian uint64 halves, matching the convention above.
		{"The quick brown fox jumps over the lazy dog", 0xe34bbc7bbc071b6c, 0x7a433ca9c49a9347},
	}
	for _, c := range cases {
		got := hash128([]byte(c.in))
		if got.hi != c.hi || got.lo != c.lo {
			t.Errorf("hash128(%q) = %016x%016x, want %016x%016x", c.in, got.hi, got.lo, c.hi, c.lo)
		}
	}
}
