package mc

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"fenceplace/internal/ir"
	"fenceplace/internal/tso"
)

// Step is one scheduling decision of a counterexample: either thread
// Thread executes its next instruction, or it retires the oldest entry of
// its store buffer.
type Step struct {
	Thread int
	Drain  bool
	Desc   string // printable form of the instruction or retired store
}

func (s Step) String() string {
	if s.Drain {
		return fmt.Sprintf("t%d: <drain> %s", s.Thread, s.Desc)
	}
	return fmt.Sprintf("t%d: %s", s.Thread, s.Desc)
}

// Violation is one final state reachable under TSO but not under SC, with a
// concrete schedule reaching it when reconstruction succeeded.
type Violation struct {
	Key      string  // printable outcome key
	Globals  []int64 // final global values
	Schedule []Step  // interleaving + drain schedule; nil if not reconstructed
}

// Report is the result of one certification run.
type Report struct {
	Program     string
	Equivalent  bool // TSO(instrumented) reaches exactly the SC final states
	SCOutcomes  int
	TSOOutcomes int
	VisitedSC   int64       // states visited exploring the original under SC
	VisitedTSO  int64       // states visited exploring the instrumented under TSO
	Missing     []string    // SC-only outcomes (engine invariant: always empty)
	Violations  []Violation // TSO-only outcomes
}

// String renders a one-paragraph verdict.
func (r *Report) String() string {
	var sb strings.Builder
	verdict := "CERTIFIED SC-equivalent"
	if !r.Equivalent {
		verdict = "NOT SC-equivalent"
	}
	fmt.Fprintf(&sb, "%s: %s; %d SC outcomes (%d states), %d TSO outcomes (%d states)",
		r.Program, verdict, r.SCOutcomes, r.VisitedSC, r.TSOOutcomes, r.VisitedTSO)
	if len(r.Violations) > 0 {
		fmt.Fprintf(&sb, "; %d TSO-only outcome(s)", len(r.Violations))
	}
	if len(r.Missing) > 0 {
		fmt.Fprintf(&sb, "; %d SC outcome(s) unreachable under TSO", len(r.Missing))
	}
	return sb.String()
}

// Counterexample renders the first reconstructed violation schedule, or ""
// when the report is clean.
func (r *Report) Counterexample() string {
	for _, v := range r.Violations {
		var sb strings.Builder
		fmt.Fprintf(&sb, "non-SC outcome %s via schedule:\n", v.Key)
		if v.Schedule == nil {
			sb.WriteString("  (schedule not reconstructed within the state budget)\n")
			return sb.String()
		}
		for _, st := range v.Schedule {
			fmt.Fprintf(&sb, "  %s\n", st)
		}
		return sb.String()
	}
	return ""
}

// Baseline is the SC half of a certification, computed once and reusable:
// the reachable final-state set of the original (uninstrumented) program
// under sequential consistency. Every fence-placement variant of one
// program certifies against the same SC state space, so exploring it once
// per program — instead of once per variant, as the plain Certify
// entry point must — removes the dominant redundant work of corpus
// certification. Baselines are immutable after construction and safe for
// concurrent use by any number of CertifyAgainst calls.
type Baseline struct {
	Prog      *ir.Program // the original program the SC set belongs to
	ThreadFns []string    // entry configuration the set was explored under
	Cfg       Config      // normalized exploration config (Mode forced to SC)
	SC        *StateSet   // the reachable SC final states
}

// NewBaseline explores the original program under sequential consistency
// and packages the result for reuse. A truncated exploration is an error
// wrapping ErrTruncated: an incomplete baseline could certify nothing.
func NewBaseline(orig *ir.Program, threadFns []string, cfg Config) (*Baseline, error) {
	return NewBaselineCtx(context.Background(), orig, threadFns, cfg)
}

// NewBaselineCtx is NewBaseline bounded by a context; a cancelled SC
// exploration returns ctx's error instead of a baseline.
func NewBaselineCtx(ctx context.Context, orig *ir.Program, threadFns []string, cfg Config) (*Baseline, error) {
	scCfg := cfg.withDefaults()
	scCfg.Mode = tso.SC
	sc, err := ExploreCtx(ctx, orig, threadFns, scCfg)
	if err != nil {
		return nil, err
	}
	if sc.Truncated {
		return nil, fmt.Errorf("mc: certify %s: SC exploration after %d states: %w", orig.Name, sc.Visited, ErrTruncated)
	}
	return &Baseline{Prog: orig, ThreadFns: threadFns, Cfg: scCfg, SC: sc}, nil
}

// Certify decides whether the instrumented program running under x86-TSO
// reaches exactly the final states the original program reaches under
// sequential consistency — the paper's guarantee, stated over a concrete
// state space. threadFns selects litmus-style entry (nil explores from
// main). Both explorations must complete within cfg.MaxStates; a truncated
// exploration returns an error wrapping ErrTruncated rather than an
// unsound verdict.
//
// Certify explores the original's SC state space anew on every call.
// Callers certifying several fence-placement variants of one program
// should build the SC side once with NewBaseline and fan the variants out
// over CertifyAgainst.
func Certify(orig, inst *ir.Program, threadFns []string, cfg Config) (*Report, error) {
	return CertifyCtx(context.Background(), orig, inst, threadFns, cfg)
}

// CertifyCtx is Certify bounded by a context: cancellation abandons
// whichever exploration (SC baseline or TSO variant) is in flight and
// returns ctx's error.
func CertifyCtx(ctx context.Context, orig, inst *ir.Program, threadFns []string, cfg Config) (*Report, error) {
	base, err := NewBaselineCtx(ctx, orig, threadFns, cfg)
	if err != nil {
		return nil, err
	}
	return CertifyAgainstCtx(ctx, base, inst, cfg)
}

// CertifyAgainst certifies one instrumented variant against a prebuilt SC
// baseline: it explores only the instrumented program under x86-TSO and
// compares the reachable final states with the baseline's. cfg governs the
// TSO exploration (and witness reconstruction); the entry configuration is
// the baseline's.
func CertifyAgainst(base *Baseline, inst *ir.Program, cfg Config) (*Report, error) {
	return CertifyAgainstCtx(context.Background(), base, inst, cfg)
}

// CertifyAgainstCtx is CertifyAgainst bounded by a context; the TSO
// exploration and any counterexample reconstruction abandon promptly when
// ctx is cancelled.
func CertifyAgainstCtx(ctx context.Context, base *Baseline, inst *ir.Program, cfg Config) (*Report, error) {
	sc := base.SC
	tsoCfg := cfg.withDefaults()
	tsoCfg.Mode = tso.TSO
	ts, err := ExploreCtx(ctx, inst, base.ThreadFns, tsoCfg)
	if err != nil {
		return nil, err
	}
	if ts.Truncated {
		return nil, fmt.Errorf("mc: certify %s: TSO exploration after %d states: %w", inst.Name, ts.Visited, ErrTruncated)
	}

	r := &Report{
		Program:     base.Prog.Name,
		SCOutcomes:  len(sc.Outcomes),
		TSOOutcomes: len(ts.Outcomes),
		VisitedSC:   sc.Visited,
		VisitedTSO:  ts.Visited,
	}
	targets := make(map[string]bool)
	for k := range ts.Outcomes {
		if _, ok := sc.Outcomes[k]; !ok {
			targets[k] = true
		}
	}
	for k := range sc.Outcomes {
		if _, ok := ts.Outcomes[k]; !ok {
			r.Missing = append(r.Missing, k)
		}
	}
	sort.Strings(r.Missing)
	r.Equivalent = len(targets) == 0 && len(r.Missing) == 0
	if len(targets) == 0 {
		return r, nil
	}

	schedules := witness(ctx, inst, base.ThreadFns, tsoCfg, targets)
	keys := make([]string, 0, len(targets))
	for k := range targets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		r.Violations = append(r.Violations, Violation{
			Key:      k,
			Globals:  ts.Outcomes[k],
			Schedule: schedules[k],
		})
	}
	return r, nil
}

// wframe is one level of the witness DFS: the state it entered with, the
// step that produced it, and the enabled transitions left to try.
type wframe struct {
	s    *state
	step Step
	bits []int
	i    int
}

// witness reconstructs, by sequential depth-first search over the full
// (unreduced) transition graph, one schedule per target outcome key. The
// search stops when every target has a schedule, the state budget runs
// out, or ctx is cancelled (polled every 1024 states to keep the loop
// cheap); missing entries stay nil.
func witness(ctx context.Context, p *ir.Program, threadFns []string, cfg Config, targets map[string]bool) map[string][]Step {
	e, init, err := newEngine(p, threadFns, cfg)
	if err != nil {
		return nil
	}
	out := make(map[string][]Step, len(targets))
	remaining := len(targets)
	seen := make(map[string]bool)
	encBuf := make([]byte, 0, 256)

	var an analysis
	push := func(stack []*wframe, s *state, step Step) []*wframe {
		f := &wframe{s: s, step: step}
		e.analyze(s, &an)
		for bit := 0; bit < 2*MaxThreads; bit++ {
			if an.enabled&(1<<uint(bit)) != 0 {
				f.bits = append(f.bits, bit)
			}
		}
		return append(stack, f)
	}

	encBuf = e.encode(init, encBuf)
	seen[string(encBuf)] = true
	stack := push(nil, init, Step{})
	var visited int64

	for len(stack) > 0 && remaining > 0 {
		top := stack[len(stack)-1]
		if top.i == 0 {
			visited++
			if visited > e.cfg.MaxStates {
				return out
			}
			if visited&1023 == 0 && ctx.Err() != nil {
				return out
			}
			key := ""
			if top.s.terminal() {
				key = e.outcomeKey(top.s, "")
			} else if len(top.bits) == 0 {
				key = e.outcomeKey(top.s, "!deadlock")
			}
			if key != "" {
				if targets[key] && out[key] == nil {
					sched := make([]Step, 0, len(stack)-1)
					for _, f := range stack[1:] {
						sched = append(sched, f.step)
					}
					out[key] = sched
					remaining--
				}
			}
		}
		if top.i >= len(top.bits) {
			stack = stack[:len(stack)-1]
			continue
		}
		bit := top.bits[top.i]
		top.i++
		child := top.s.clone()
		var step Step
		if bit < MaxThreads {
			in := child.threads[bit].next()
			step = Step{Thread: bit, Desc: in.String()}
			if err := e.applyStep(child, bit); err != nil {
				continue
			}
		} else {
			tid := bit - MaxThreads
			en := child.threads[tid].buf[0]
			step = Step{Thread: tid, Drain: true, Desc: fmt.Sprintf("%s = %d", e.addrName(en.addr), en.val)}
			applyDrain(child, tid)
		}
		encBuf = e.encode(child, encBuf)
		key := string(encBuf)
		if seen[key] {
			continue
		}
		seen[key] = true
		stack = push(stack, child, step)
	}
	return out
}

// outcomeKey renders a terminal state's printable outcome key.
func (e *engine) outcomeKey(s *state, suffix string) string {
	return string(appendOutcomeKey(nil, s.mem[1:1+e.gwords], s.failed, suffix))
}

// addrName maps a word address back to a printable global location.
func (e *engine) addrName(addr int64) string {
	for _, g := range e.prog.Globals {
		b := e.base[g]
		if addr >= b && addr < b+int64(g.Size) {
			if g.Size == 1 {
				return g.Name
			}
			return fmt.Sprintf("%s[%d]", g.Name, addr-b)
		}
	}
	return fmt.Sprintf("mem[%d]", addr)
}
