package mc

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"fenceplace/internal/ir"
	"fenceplace/internal/progs"
	"fenceplace/internal/tso"
)

// sb builds the store-buffering litmus; the non-SC outcome is o0=o1=0.
func sb(fenced bool) *ir.Program {
	pb := ir.NewProgram("sb")
	x := pb.Global("x", 1)
	y := pb.Global("y", 1)
	o0 := pb.Global("o0", 1)
	o1 := pb.Global("o1", 1)
	t0 := pb.Func("t0", 0)
	t0.Store(x, t0.Const(1))
	if fenced {
		t0.Fence(ir.FenceFull)
	}
	t0.Store(o0, t0.Load(y))
	t0.RetVoid()
	t1 := pb.Func("t1", 0)
	t1.Store(y, t1.Const(1))
	if fenced {
		t1.Fence(ir.FenceFull)
	}
	t1.Store(o1, t1.Load(x))
	t1.RetVoid()
	return pb.MustBuild()
}

func keySet(outcomes map[string][]int64) []string {
	keys := make([]string, 0, len(outcomes))
	for k := range outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sameKeys(t *testing.T, label string, a, b []string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d outcomes\n  a=%v\n  b=%v", label, len(a), len(b), a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: outcome sets differ\n  a=%v\n  b=%v", label, a, b)
		}
	}
}

// crossCheck explores p's threads under mode with the legacy enumerator,
// the reduced engine, and the unreduced engine, and demands identical
// final-state sets from all three.
func crossCheck(t *testing.T, p *ir.Program, threads []string, mode tso.Mode, workers int) (por, naive *StateSet) {
	t.Helper()
	legacy, err := tso.Explore(p, threads, tso.ExploreConfig{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Truncated {
		t.Fatal("legacy exploration truncated")
	}
	por, err = Explore(p, threads, Config{Mode: mode, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	naive, err = Explore(p, threads, Config{Mode: mode, Workers: workers, NoPOR: true})
	if err != nil {
		t.Fatal(err)
	}
	if por.Truncated || naive.Truncated {
		t.Fatal("mc exploration truncated")
	}
	want := keySet(legacy.Outcomes)
	sameKeys(t, fmt.Sprintf("%s/%s POR vs legacy", p.Name, mode), keySet(por.Outcomes), want)
	sameKeys(t, fmt.Sprintf("%s/%s NoPOR vs legacy", p.Name, mode), keySet(naive.Outcomes), want)
	return por, naive
}

func TestLitmusAgreesWithLegacyExplorer(t *testing.T) {
	progs := map[string]*ir.Program{"sb": sb(false), "sb+f": sb(true), "mp": mp(), "lb": lb()}
	for name, p := range progs {
		for _, mode := range []tso.Mode{tso.TSO, tso.SC} {
			t.Run(fmt.Sprintf("%s/%s", name, mode), func(t *testing.T) {
				crossCheck(t, p, []string{"t0", "t1"}, mode, 0)
			})
		}
	}
}

func mp() *ir.Program {
	pb := ir.NewProgram("mp")
	data := pb.Global("data", 1)
	flag := pb.Global("flag", 1)
	of := pb.Global("of", 1)
	od := pb.Global("od", 1)
	t0 := pb.Func("t0", 0)
	t0.Store(data, t0.Const(1))
	t0.Store(flag, t0.Const(1))
	t0.RetVoid()
	t1 := pb.Func("t1", 0)
	t1.Store(of, t1.Load(flag))
	t1.Store(od, t1.Load(data))
	t1.RetVoid()
	return pb.MustBuild()
}

func lb() *ir.Program {
	pb := ir.NewProgram("lb")
	x := pb.Global("x", 1)
	y := pb.Global("y", 1)
	o0 := pb.Global("o0", 1)
	o1 := pb.Global("o1", 1)
	t0 := pb.Func("t0", 0)
	t0.Store(o0, t0.Load(x))
	t0.Store(y, t0.Const(1))
	t0.RetVoid()
	t1 := pb.Func("t1", 0)
	t1.Store(o1, t1.Load(y))
	t1.Store(x, t1.Const(1))
	t1.RetVoid()
	return pb.MustBuild()
}

// TestPORVisitsStrictlyFewerStates is the reduction acceptance check: on
// SB, MP and LB the reduced engine must beat both naive enumerations.
func TestPORVisitsStrictlyFewerStates(t *testing.T) {
	progs := map[string]*ir.Program{"sb": sb(false), "mp": mp(), "lb": lb()}
	for name, p := range progs {
		legacy, err := tso.Explore(p, []string{"t0", "t1"}, tso.ExploreConfig{Mode: tso.TSO})
		if err != nil {
			t.Fatal(err)
		}
		por, naive := crossCheck(t, p, []string{"t0", "t1"}, tso.TSO, 1)
		if por.Visited >= naive.Visited {
			t.Errorf("%s: POR visited %d >= naive %d", name, por.Visited, naive.Visited)
		}
		if por.Visited >= int64(legacy.Visited) {
			t.Errorf("%s: POR visited %d >= legacy %d", name, por.Visited, legacy.Visited)
		}
		t.Logf("%s: POR %d, NoPOR %d, legacy %d states", name, por.Visited, naive.Visited, legacy.Visited)
	}
}

// randomPrograms generates small flat two-thread programs over a few
// shared globals: stores, observed loads, fences and CAS in random order.
// Both the POR differential and the fingerprint-vs-exact differential fuzz
// with it (different seeds).
func randomPrograms(seed int64, trials int) map[string]*ir.Program {
	rng := rand.New(rand.NewSource(seed))
	shared := []string{"x", "y", "z"}
	out := make(map[string]*ir.Program, trials)
	for trial := 0; trial < trials; trial++ {
		name := fmt.Sprintf("rand%d", trial)
		pb := ir.NewProgram(name)
		var gs []*ir.Global
		for _, n := range shared {
			gs = append(gs, pb.Global(n, 1))
		}
		obs := 0
		for ti := 0; ti < 2; ti++ {
			fb := pb.Func(fmt.Sprintf("t%d", ti), 0)
			nops := 2 + rng.Intn(3)
			for k := 0; k < nops; k++ {
				g := gs[rng.Intn(len(gs))]
				switch rng.Intn(4) {
				case 0:
					fb.Store(g, fb.Const(int64(1+rng.Intn(2))))
				case 1:
					o := pb.Global(fmt.Sprintf("o%d", obs), 1)
					obs++
					fb.Store(o, fb.Load(g))
				case 2:
					fb.Fence(ir.FenceFull)
				case 3:
					fb.CAS(fb.AddrOf(g), fb.Const(0), fb.Const(int64(1+rng.Intn(2))))
				}
			}
			fb.RetVoid()
		}
		out[name] = pb.MustBuild()
	}
	return out
}

// TestRandomProgramsDifferential fuzzes small flat programs and demands
// that the reduced, unreduced and legacy engines agree on the final-state
// set under both memory models — the soundness check for the POR rules.
func TestRandomProgramsDifferential(t *testing.T) {
	for _, p := range randomPrograms(20260728, 40) {
		for _, mode := range []tso.Mode{tso.TSO, tso.SC} {
			crossCheck(t, p, []string{"t0", "t1"}, mode, 2)
		}
	}
}

// TestParallelWorkersAgree runs the same exploration at 1 worker and at
// GOMAXPROCS workers and demands identical results.
func TestParallelWorkersAgree(t *testing.T) {
	p := medium3()
	seq, err := Explore(p, []string{"t0", "t1", "t2"}, Config{Mode: tso.TSO, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Explore(p, []string{"t0", "t1", "t2"}, Config{Mode: tso.TSO, Workers: runtime.GOMAXPROCS(0)})
	if err != nil {
		t.Fatal(err)
	}
	sameKeys(t, "1 worker vs GOMAXPROCS", keySet(seq.Outcomes), keySet(par.Outcomes))
	if len(seq.Outcomes) == 0 {
		t.Fatal("no outcomes")
	}
}

// medium3 is a three-thread store/load ring with a decent state space.
func medium3() *ir.Program {
	pb := ir.NewProgram("ring3")
	var xs, os []*ir.Global
	for i := 0; i < 3; i++ {
		xs = append(xs, pb.Global(fmt.Sprintf("x%d", i), 1))
	}
	for i := 0; i < 3; i++ {
		os = append(os, pb.Global(fmt.Sprintf("o%d", i), 1))
	}
	for i := 0; i < 3; i++ {
		fb := pb.Func(fmt.Sprintf("t%d", i), 0)
		fb.Store(xs[i], fb.Const(1))
		fb.Store(os[i], fb.Load(xs[(i+1)%3]))
		fb.Store(xs[i], fb.Const(2))
		fb.RetVoid()
	}
	return pb.MustBuild()
}

// TestWholeProgramSpawnJoin explores a full program (main spawns workers,
// joins them, asserts) — beyond what the legacy explorer can execute.
func TestWholeProgramSpawnJoin(t *testing.T) {
	build := func(fenced bool) *ir.Program {
		pb := ir.NewProgram("whole-sb")
		x := pb.Global("x", 1)
		y := pb.Global("y", 1)
		o0 := pb.Global("o0", 1)
		o1 := pb.Global("o1", 1)
		t0 := pb.Func("t0", 0)
		t0.Store(x, t0.Const(1))
		if fenced {
			t0.Fence(ir.FenceFull)
		}
		t0.Store(o0, t0.Load(y))
		t0.RetVoid()
		t1 := pb.Func("t1", 0)
		t1.Store(y, t1.Const(1))
		if fenced {
			t1.Fence(ir.FenceFull)
		}
		t1.Store(o1, t1.Load(x))
		t1.RetVoid()
		m := pb.Func("main", 0)
		a := m.Spawn("t0")
		b := m.Spawn("t1")
		m.Join(a)
		m.Join(b)
		// DRF-ility check: after joining, at least one thread saw the
		// other's store (fails only on the non-SC outcome).
		sum := m.Add(m.Load(o0), m.Load(o1))
		m.Assert(m.Ge(sum, m.Const(1)), "both threads read 0")
		m.RetVoid()
		pb.SetMain("main")
		return pb.MustBuild()
	}

	unfenced, err := Explore(build(false), nil, Config{Mode: tso.TSO})
	if err != nil {
		t.Fatal(err)
	}
	foundAssert := false
	for k := range unfenced.Outcomes {
		if len(k) > 7 && k[len(k)-7:] == "!assert" {
			foundAssert = true
		}
	}
	if !foundAssert {
		t.Fatalf("unfenced whole-program SB never tripped its assert under TSO; outcomes: %v", unfenced.Keys())
	}

	fenced, err := Explore(build(true), nil, Config{Mode: tso.TSO})
	if err != nil {
		t.Fatal(err)
	}
	for k := range fenced.Outcomes {
		if len(k) > 7 && k[len(k)-7:] == "!assert" {
			t.Fatalf("fenced whole-program SB tripped its assert under TSO: %s", k)
		}
	}
}

// TestCertifySB is the certification core: the fenced instrumentation of SB
// is SC-equivalent; with a fence deliberately removed certification must
// fail and reconstruct a counterexample schedule.
func TestCertifySB(t *testing.T) {
	orig := sb(false)
	rep, err := Certify(orig, sb(true), []string{"t0", "t1"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equivalent {
		t.Fatalf("fenced SB not certified: %s", rep)
	}
	if len(rep.Missing) != 0 || len(rep.Violations) != 0 {
		t.Fatalf("clean report expected, got %s", rep)
	}

	// Fence removed: the store-buffering outcome must be found and carry a
	// schedule ending in the non-SC final state.
	rep, err = Certify(orig, sb(false), []string{"t0", "t1"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Equivalent {
		t.Fatal("unfenced SB wrongly certified SC-equivalent")
	}
	if len(rep.Violations) == 0 {
		t.Fatal("no violation recorded")
	}
	v := rep.Violations[0]
	if v.Schedule == nil {
		t.Fatal("violation carries no counterexample schedule")
	}
	if rep.Counterexample() == "" {
		t.Fatal("empty counterexample rendering")
	}
	t.Logf("counterexample:\n%s", rep.Counterexample())
}

// TestCertifyWholeProgram certifies the spawn/join SB program end to end.
func TestCertifyWholeProgram(t *testing.T) {
	pb := func(fenced bool) *ir.Program {
		p := ir.NewProgram("wp")
		x := p.Global("x", 1)
		y := p.Global("y", 1)
		o0 := p.Global("o0", 1)
		o1 := p.Global("o1", 1)
		t0 := p.Func("t0", 0)
		t0.Store(x, t0.Const(1))
		if fenced {
			t0.Fence(ir.FenceFull)
		}
		t0.Store(o0, t0.Load(y))
		t0.RetVoid()
		t1 := p.Func("t1", 0)
		t1.Store(y, t1.Const(1))
		if fenced {
			t1.Fence(ir.FenceFull)
		}
		t1.Store(o1, t1.Load(x))
		t1.RetVoid()
		m := p.Func("main", 0)
		a := m.Spawn("t0")
		b := m.Spawn("t1")
		m.Join(a)
		m.Join(b)
		m.RetVoid()
		p.SetMain("main")
		return p.MustBuild()
	}
	rep, err := Certify(pb(false), pb(true), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equivalent {
		t.Fatalf("fenced whole-program SB not certified: %s", rep)
	}
	rep, err = Certify(pb(false), pb(false), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Equivalent {
		t.Fatal("unfenced whole-program SB wrongly certified")
	}
}

func TestTruncationIsAnExplicitError(t *testing.T) {
	p := sb(false)
	res, err := Explore(p, []string{"t0", "t1"}, Config{Mode: tso.TSO, MaxStates: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("tiny MaxStates did not truncate")
	}
	_, err = Certify(p, sb(true), []string{"t0", "t1"}, Config{MaxStates: 3})
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("certify on a truncated exploration returned %v, want ErrTruncated", err)
	}
}

func TestThreadLimit(t *testing.T) {
	pb := ir.NewProgram("many")
	names := make([]string, 0, MaxThreads+1)
	for i := 0; i <= MaxThreads; i++ {
		fb := pb.Func(fmt.Sprintf("t%d", i), 0)
		fb.RetVoid()
		names = append(names, fmt.Sprintf("t%d", i))
	}
	if _, err := Explore(pb.MustBuild(), names, Config{}); err == nil {
		t.Fatal("17 thread functions accepted")
	}
}

// TestRMWAndPointerOps exercises CAS/FetchAdd/pointer access paths against
// the legacy explorer.
func TestRMWAndPointerOps(t *testing.T) {
	pb := ir.NewProgram("rmw")
	c := pb.Global("c", 1)
	o0 := pb.Global("o0", 1)
	o1 := pb.Global("o1", 1)
	t0 := pb.Func("t0", 0)
	t0.Store(o0, t0.FetchAdd(t0.AddrOf(c), t0.Const(1)))
	t0.RetVoid()
	t1 := pb.Func("t1", 0)
	t1.Store(o1, t1.FetchAdd(t1.AddrOf(c), t1.Const(1)))
	t1.RetVoid()
	p := pb.MustBuild()
	for _, mode := range []tso.Mode{tso.TSO, tso.SC} {
		por, _ := crossCheck(t, p, []string{"t0", "t1"}, mode, 2)
		// The counter always ends at 2 and the two observations are {0,1}.
		if !por.Has(map[string]int64{"c": 2}, p) {
			t.Fatalf("%s: counter did not reach 2: %v", mode, por.Keys())
		}
	}
}

// TestWholeProgramPORDifferential checks the reduction on real corpus
// kernels (spawn, join, spin loops): with and without POR the reachable
// final-state sets must coincide, and POR must visit fewer states.
func TestWholeProgramPORDifferential(t *testing.T) {
	for _, name := range []string{"dekker", "peterson"} {
		m := progs.ByName(name)
		pp := m.Defaults
		pp.Threads = 2
		pp.Size = 1
		pp.Manual = true
		p := m.Build(pp)
		for _, mode := range []tso.Mode{tso.TSO, tso.SC} {
			por, err := Explore(p, nil, Config{Mode: mode, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			naive, err := Explore(p, nil, Config{Mode: mode, Workers: 2, NoPOR: true})
			if err != nil {
				t.Fatal(err)
			}
			if por.Truncated || naive.Truncated {
				t.Fatalf("%s/%s: truncated", name, mode)
			}
			sameKeys(t, fmt.Sprintf("%s/%s POR vs NoPOR", name, mode),
				keySet(por.Outcomes), keySet(naive.Outcomes))
			if por.Visited >= naive.Visited {
				t.Errorf("%s/%s: POR visited %d >= naive %d", name, mode, por.Visited, naive.Visited)
			}
		}
	}
}
