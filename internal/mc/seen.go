package mc

// The two-level seen set. Each of the nShards shards keeps:
//
//   - a HOT tier: a fixed-budget open-addressed table of full 128-bit
//     fingerprints (fpEntry) fronted by a parallel array of 16-bit tags —
//     one cache line of tags covers 32 probe slots, so the common probe
//     touches the 24-byte entries only on a tag match. The hot tier is
//     where fresh states land and where sleep-mask updates happen.
//
//   - a COLD tier: immutable runs of (fingerprint, mask) entries sorted by
//     fingerprint and delta-encoded in 256-entry blocks. When the hot tier
//     crosses its share of the seen-set budget it is sealed — sorted,
//     encoded, appended to the shard's run list — and cleared; sealed runs
//     are handed to background spiller goroutines that move them to disk
//     through the store's checksummed framing (internal/store.Spill), so
//     workers never block on I/O and a spilled state costs ~2–4 bytes of
//     RAM instead of 26.
//
//   - a cuckoo-style presence filter over the cold tier: 4-slot buckets of
//     packed (16-bit fingerprint remainder, run id) pairs. A probe that
//     misses the hot tier consults the filter; in the overwhelmingly
//     common case (state never sealed) no bucket slot matches and the
//     probe ends O(1) and allocation-free. Filter hits name candidate
//     runs, which are binary-searched newest-first.
//
// Protocol invariants the differential tests pin against ExactSeen:
//
//   - A sealed entry is always findable: runs are appended to sh.runs
//     before their filter insertions, and a filter overflow grows the
//     filter and rebuilds it losslessly from the runs (the ground truth),
//     so the filter has no false negatives.
//   - The newest mask wins: probes check hot before cold and candidate
//     runs newest-first, and a cold hit that narrows the stored mask
//     re-inserts the narrowed mask into the hot tier, shadowing the stale
//     run entry.
//   - A corrupt spilled run is quarantined and treated as all-miss — a
//     state is then re-explored (wasted work, same answers), never
//     falsely pruned.

import (
	"sort"
	"sync"
	"time"

	"fenceplace/internal/store"
)

const (
	// hotMinSlots is the floor of the hot tier: even a 1-byte budget keeps
	// one probe-able table (it just seals after every insert).
	hotMinSlots = 128
	// hotMaxSlots caps hot-tier growth independent of budget.
	hotMaxSlots = 1 << 20
	// hotEntryBytes is the per-slot RAM cost: 2-byte tag + 24-byte entry.
	hotEntryBytes = 2 + 24
	// maxRunsPerShard bounds the cold tier: run ids are packed into 16
	// filter bits. At the bound the shard stops sealing and lets the hot
	// tier grow past its budget — correctness outranks the cap.
	maxRunsPerShard = 1 << 16
	// cuckooKicks bounds displacement chains before the filter grows.
	cuckooKicks = 512
)

// seenBudget derives the per-shard byte budget and the hot-tier slot cap
// from the config: SeenBudget bytes when set, else 8 bytes per MemoryCap
// arena word (the seen set gets to mirror the state arena's bound), else
// — negative SeenBudget, or uncapped MemoryCap — effectively unbounded.
// The hot tier is sized to about half the shard budget; the other half
// absorbs run indexes, the presence filter, and not-yet-spilled runs.
func seenBudget(cfg Config) (shardBudget int64, hotMax int) {
	total := cfg.SeenBudget
	if total == 0 {
		if cfg.MemoryCap > 0 {
			total = int64(cfg.MemoryCap) * 8
		} else {
			total = -1
		}
	}
	if total < 0 {
		return 1 << 62, hotMaxSlots
	}
	shardBudget = total / nShards
	if shardBudget < 1 {
		shardBudget = 1
	}
	slots := hotMinSlots
	for int64(slots)*2*hotEntryBytes*2 <= shardBudget && slots < hotMaxSlots {
		slots *= 2
	}
	return shardBudget, slots
}

// seenShard is one shard of the global seen set. The value stored per
// state is the sleep mask the state has been covered for: a state needs
// re-expansion only when it is reached with a sleep set that is not a
// superset of the stored mask, and then only for the previously-slept
// transitions (Godefroid's sleep sets with state matching). States are
// keyed by 128-bit fingerprints of their canonical encoding in the
// two-level hot/cold structure above; the exact string-keyed mode (m)
// survives behind Config.ExactSeen as a cross-checking oracle.
type seenShard struct {
	mu sync.Mutex

	// Hot tier. tags[i]==0 marks an empty slot (tag values are remapped
	// away from 0); entries[i] is live iff tags[i]!=0.
	tags    []uint16
	entries []fpEntry
	hotN    int

	// Cold tier: sealed runs, oldest first (index == run id), and the
	// cuckoo presence filter over their entries.
	runs    []*run
	filter  cuckoo
	coldRAM int64 // bytes of run data not yet spilled + run indexes

	// spill is the engine's spill session (nil when spilling is off); the
	// filter-rebuild path re-reads whole runs through it so spilled-run
	// I/O stays behind the fsx seam.
	spill *store.Spill

	// Per-shard scratch reused across seals and spilled-block reads.
	sealBuf  []fpEntry
	blockBuf []byte

	kickSeed uint64 // deterministic "random" kick-slot selection

	// Plain-integer stats accumulated under mu and flushed to the
	// telemetry registry once per exploration (finishSeen).
	stHotHits     int64
	stColdHits    int64
	stSeals       int64
	stSpillRuns   int64
	stSpillBytes  int64
	stQuarantines int64

	m map[string]uint32 // ExactSeen oracle
}

// hotBytes is the hot tier's current RAM footprint.
func (sh *seenShard) hotBytes() int64 {
	return int64(len(sh.tags)) * hotEntryBytes
}

// ramBytes is the shard's accountable seen-set footprint: hot arrays,
// unspilled run data and run indexes, and the filter.
func (sh *seenShard) ramBytes() int64 {
	return sh.hotBytes() + sh.coldRAM + int64(4*len(sh.filter.slots))
}

// hotTag derives the 16-bit quick-reject tag, remapped away from the
// empty-slot marker.
func hotTag(h h128) uint16 {
	t := uint16(h.hi)
	if t == 0 {
		t = 0xffff
	}
	return t
}

// visit runs the sleep-set seen protocol for a state fingerprint against
// the two-level structure: it returns whether the state needs
// (re-)expansion and, for re-expansions, the mask of previously slept
// transitions to fire. Must be called with sh.mu held. e and si are the
// owning engine and shard index, for budget decisions and spill handoff.
func (sh *seenShard) visit(e *engine, si int, h h128, sleep uint32) (need bool, revisit uint32) {
	if h.hi == 0 && h.lo == 0 {
		h.lo = 1
	}
	if sh.tags == nil {
		sh.grow(hotMinSlots)
	}
	tag := hotTag(h)
	mask := uint64(len(sh.tags) - 1)
	i := h.lo & mask
	for {
		t := sh.tags[i]
		if t == 0 {
			break // not hot
		}
		if t == tag {
			en := &sh.entries[i]
			if en.hi == h.hi && en.lo == h.lo {
				sh.stHotHits++
				prev := en.sleep
				if prev&^sleep == 0 {
					return false, 0 // covered for a sleep set at least as permissive
				}
				en.sleep = prev & sleep
				return true, prev &^ sleep
			}
		}
		i = (i + 1) & mask
	}

	// Not hot: consult the cold tier. prev is the sealed mask if present.
	if prev, ok := sh.coldLookup(e, si, h); ok {
		sh.stColdHits++
		if prev&^sleep == 0 {
			return false, 0
		}
		// Narrow the mask by shadowing the (immutable) run entry in hot.
		sh.hotInsert(e, si, h, prev&sleep)
		return true, prev &^ sleep
	}

	// First sighting.
	sh.hotInsert(e, si, h, sleep)
	return true, 0
}

// hotInsert adds a fingerprint to the hot tier, growing or sealing as the
// budget dictates. Must be called with sh.mu held.
func (sh *seenShard) hotInsert(e *engine, si int, h h128, sleep uint32) {
	if sh.tags == nil {
		sh.grow(hotMinSlots)
	}
	// Keep the load factor below 3/4: grow within budget, else seal (which
	// empties the table), else — at the run cap — grow past the budget.
	for (sh.hotN+1)*4 > len(sh.tags)*3 {
		switch {
		case len(sh.tags) < e.hotMaxSlots:
			sh.grow(2 * len(sh.tags))
		case len(sh.runs) < maxRunsPerShard:
			sh.seal(e, si)
		default:
			sh.grow(2 * len(sh.tags))
		}
	}
	tag := hotTag(h)
	mask := uint64(len(sh.tags) - 1)
	i := h.lo & mask
	for sh.tags[i] != 0 {
		i = (i + 1) & mask
	}
	sh.tags[i] = tag
	sh.entries[i] = fpEntry{hi: h.hi, lo: h.lo, sleep: sleep}
	sh.hotN++
	// A budget below even the minimum hot tier means every insert crosses
	// it: seal immediately. This is the forced-spill mode the differential
	// tests drive with SeenBudget=1 (one single-entry run per state), and
	// it is deterministic — independent of spiller timing — so visit
	// counts stay reproducible.
	if e.shardBudget < hotMinSlots*hotEntryBytes && len(sh.runs) < maxRunsPerShard {
		sh.seal(e, si)
	}
}

// grow (re)builds the hot arrays at n slots, rehashing live entries.
func (sh *seenShard) grow(n int) {
	oldTags, oldEntries := sh.tags, sh.entries
	sh.tags = make([]uint16, n)
	sh.entries = make([]fpEntry, n)
	mask := uint64(n - 1)
	for j, t := range oldTags {
		if t == 0 {
			continue
		}
		en := oldEntries[j]
		i := en.lo & mask
		for sh.tags[i] != 0 {
			i = (i + 1) & mask
		}
		sh.tags[i] = t
		sh.entries[i] = en
	}
}

// seal sorts the hot tier's live entries into an immutable delta-encoded
// run, registers the run with the presence filter, clears the hot tier,
// and hands the run to the spillers. Must be called with sh.mu held.
func (sh *seenShard) seal(e *engine, si int) {
	if sh.hotN == 0 {
		return
	}
	start := time.Now()
	buf := sh.sealBuf[:0]
	for j, t := range sh.tags {
		if t != 0 {
			buf = append(buf, sh.entries[j])
		}
	}
	sh.sealBuf = buf
	sort.Slice(buf, func(a, b int) bool {
		if buf[a].hi != buf[b].hi {
			return buf[a].hi < buf[b].hi
		}
		return buf[a].lo < buf[b].lo
	})
	r := buildRun(buf)
	id := uint16(len(sh.runs))
	sh.runs = append(sh.runs, r) // before filter inserts: runs are the filter's ground truth
	sh.coldRAM += r.ramBytes()
	for i := range buf {
		sh.filterInsert(h128{hi: buf[i].hi, lo: buf[i].lo}, id)
	}
	clear(sh.tags)
	sh.hotN = 0
	sh.stSeals++
	mSealLatency.Observe(si&(nShards-1), time.Since(start).Nanoseconds())
	e.spillEnqueue(sh, si, r)
}

// --- cuckoo presence filter over the cold tier ---

// cuckoo maps 16-bit fingerprint remainders to run ids in 4-slot buckets.
// A slot packs remainder<<16|runID; 0 is the empty marker (remainders are
// remapped away from 0). Lookups collect every candidate run whose
// remainder matches; inserts displace with bounded kicks and fall back to
// growing the filter and rebuilding it from the shard's runs.
type cuckoo struct {
	slots []uint32 // 4*nBuckets, bucket-major
	n     int
}

// cuckooFP derives the filter remainder from bits of the fingerprint not
// used for shard routing (hi low bits), hot indexing (lo low bits), or
// bucket choice (lo high bits).
func cuckooFP(h h128) uint16 {
	f := uint16(h.hi >> 48)
	if f == 0 {
		f = 0xffff
	}
	return f
}

// buckets returns the two candidate bucket indexes for h. The alternate
// is an XOR partner, so it is an involution computable from either side.
func (c *cuckoo) buckets(h h128) (uint32, uint32) {
	nb := uint32(len(c.slots) / 4)
	b1 := uint32(h.lo>>32) & (nb - 1)
	b2 := b1 ^ (uint32(cuckooFP(h))*0x5bd1e995)&(nb-1)
	return b1, b2
}

// lookup appends the run ids of every slot matching h's remainder to dst
// (newest runs have the highest ids; the caller probes in descending id
// order). dst must have capacity 8; lookup never allocates.
func (c *cuckoo) lookup(h h128, dst []uint16) []uint16 {
	if c.slots == nil {
		return dst
	}
	fp := uint32(cuckooFP(h))
	b1, b2 := c.buckets(h)
	for _, b := range [2]uint32{b1, b2} {
		for s := b * 4; s < b*4+4; s++ {
			if v := c.slots[s]; v != 0 && v>>16 == fp {
				dst = append(dst, uint16(v))
			}
		}
	}
	return dst
}

// coldLookup probes the cold tier for h: presence filter first, then the
// candidate runs newest-first (so the latest sealed mask for a fingerprint
// shadows older ones).
func (sh *seenShard) coldLookup(e *engine, si int, h h128) (mask uint32, ok bool) {
	if len(sh.runs) == 0 {
		return 0, false
	}
	var cand [8]uint16
	ids := sh.filter.lookup(h, cand[:0])
	if len(ids) == 0 {
		return 0, false
	}
	// Insertion sort descending: at most 8 ids, no allocation.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] > ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	prev := uint16(0xffff)
	for k, id := range ids {
		if k > 0 && id == prev {
			continue // both bucket slots of the same (fp, run) pair
		}
		prev = id
		if m, found := sh.runFind(e, si, sh.runs[id], h); found {
			return m, true
		}
	}
	return 0, false
}

// filterInsert adds (h → run id) to the presence filter, growing it (and
// rebuilding from the runs) when a displacement chain overruns.
func (sh *seenShard) filterInsert(h h128, id uint16) {
	if sh.filter.slots == nil {
		sh.filter.slots = make([]uint32, 4*64)
	}
	for !sh.filter.tryInsert(h, id, &sh.kickSeed) {
		sh.filterRebuild(2 * len(sh.filter.slots))
	}
}

// tryInsert places the packed pair, displacing residents along a bounded
// random walk. Returns false when the filter needs to grow. A displaced
// resident's alternate bucket is recomputed from its packed remainder via
// the XOR involution, so no original fingerprint is needed.
func (c *cuckoo) tryInsert(h h128, id uint16, seed *uint64) bool {
	fp := uint32(cuckooFP(h))
	v := fp<<16 | uint32(id)
	b1, b2 := c.buckets(h)
	nb := uint32(len(c.slots) / 4)
	for _, b := range [2]uint32{b1, b2} {
		for s := b * 4; s < b*4+4; s++ {
			if c.slots[s] == 0 {
				c.slots[s] = v
				c.n++
				return true
			}
		}
	}
	b := b1
	for kick := 0; kick < cuckooKicks; kick++ {
		// xorshift: deterministic slot choice (reproducible explorations).
		*seed = *seed*6364136223846793005 + 1442695040888963407
		s := b*4 + uint32(*seed>>61)&3
		c.slots[s], v = v, c.slots[s]
		b = (s / 4) ^ ((v>>16)*0x5bd1e995)&(nb-1)
		for t := b * 4; t < b*4+4; t++ {
			if c.slots[t] == 0 {
				c.slots[t] = v
				c.n++
				return true
			}
		}
	}
	// v is homeless; the caller rebuilds from the runs, so nothing is lost.
	c.n++
	return false
}

// filterRebuild regenerates the filter at the given slot count from the
// shard's runs — the cold tier's ground truth. Runs that fail integrity
// are skipped (their entries degrade to all-miss, consistent with every
// other read of a quarantined run).
func (sh *seenShard) filterRebuild(slots int) {
	for {
		sh.filter = cuckoo{slots: make([]uint32, slots)}
		ok := true
	rebuild:
		for id, r := range sh.runs {
			ents, err := sh.runEntries(r)
			if err != nil {
				continue
			}
			for _, en := range ents {
				if !sh.filter.tryInsert(h128{hi: en.hi, lo: en.lo}, uint16(id), &sh.kickSeed) {
					ok = false
					break rebuild
				}
			}
		}
		if ok {
			return
		}
		slots *= 2
	}
}
