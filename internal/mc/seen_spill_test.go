package mc

import (
	"encoding/binary"
	"fmt"
	"testing"

	"fenceplace/internal/ir"
	"fenceplace/internal/progs"
	"fenceplace/internal/store"
	"fenceplace/internal/tso"
)

// spillBudgets are the forced-spill thresholds the differential tests
// sweep: 1 byte seals the hot tier on every insert (every state becomes
// its own sealed run — the most hostile schedule for the cold tier),
// 4 KiB seals every few dozen states, 1 MiB seals occasionally on the
// larger corpora, and -1 never seals (the pure hot-tier baseline).
var spillBudgets = []int64{1, 4 << 10, 1 << 20, -1}

// TestTwoLevelSeenMatchesExactSeen is the oracle check for the two-level
// seen set under forced spilling: across litmus programs and instrumented
// corpus kernels, every spill budget — including the 1-byte budget that
// seals on every insert — must reproduce exactly the outcome sets AND
// visit counts of the exact string-keyed oracle. Visit counts are
// compared at one worker, where the sleep-set protocol is deterministic;
// a lost or stale sleep mask anywhere in the hot/cold/filter machinery
// shows up as a drift here.
func TestTwoLevelSeenMatchesExactSeen(t *testing.T) {
	type tc struct {
		name    string
		prog    *ir.Program
		threads []string
	}
	cases := []tc{
		{"sb", sb(false), []string{"t0", "t1"}},
		{"sb+f", sb(true), []string{"t0", "t1"}},
		{"mp", mp(), []string{"t0", "t1"}},
		{"lb", lb(), []string{"t0", "t1"}},
		{"ring3", medium3(), []string{"t0", "t1", "t2"}},
	}
	for _, name := range []string{"dekker", "peterson"} {
		m := progs.ByName(name)
		pp := m.Defaults
		pp.Threads = 2
		pp.Size = 1
		pp.Manual = true
		cases = append(cases, tc{name + "/manual", m.Build(pp), nil})
	}
	spillDir := t.TempDir()
	for _, c := range cases {
		for _, mode := range []tso.Mode{tso.TSO, tso.SC} {
			exact, err := Explore(c.prog, c.threads, Config{Mode: mode, Workers: 1, ExactSeen: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, budget := range spillBudgets {
				t.Run(fmt.Sprintf("%s/%s/budget=%d", c.name, mode, budget), func(t *testing.T) {
					fp, err := Explore(c.prog, c.threads, Config{
						Mode: mode, Workers: 1, SeenBudget: budget, SpillDir: spillDir,
					})
					if err != nil {
						t.Fatal(err)
					}
					if fp.Truncated || exact.Truncated {
						t.Fatal("exploration truncated")
					}
					sameKeys(t, "two-level vs exact outcomes", keySet(fp.Outcomes), keySet(exact.Outcomes))
					for k, vec := range exact.Outcomes {
						got := fp.Outcomes[k]
						if len(got) != len(vec) {
							t.Fatalf("outcome %s: vector length %d vs %d", k, len(got), len(vec))
						}
						for i := range vec {
							if got[i] != vec[i] {
								t.Fatalf("outcome %s: globals %v vs %v", k, got, vec)
							}
						}
					}
					if fp.Visited != exact.Visited {
						t.Errorf("visit counts diverge: two-level %d, exact %d", fp.Visited, exact.Visited)
					}
				})
			}
		}
	}
}

// TestTwoLevelSeenMatchesExactSeenRandom fuzzes flat random programs
// through the 1-byte forced-spill budget (a fresh generator seed, so the
// shapes differ from the other differentials): maximum seal pressure over
// unpredictable sleep-set interleavings.
func TestTwoLevelSeenMatchesExactSeenRandom(t *testing.T) {
	spillDir := t.TempDir()
	progsByName := randomPrograms(20260807, 15)
	for name, p := range progsByName {
		for _, mode := range []tso.Mode{tso.TSO, tso.SC} {
			fp, err := Explore(p, []string{"t0", "t1"}, Config{
				Mode: mode, Workers: 1, SeenBudget: 1, SpillDir: spillDir,
			})
			if err != nil {
				t.Fatal(err)
			}
			exact, err := Explore(p, []string{"t0", "t1"}, Config{Mode: mode, Workers: 1, ExactSeen: true})
			if err != nil {
				t.Fatal(err)
			}
			sameKeys(t, fmt.Sprintf("%s/%s two-level vs exact", name, mode),
				keySet(fp.Outcomes), keySet(exact.Outcomes))
			if fp.Visited != exact.Visited {
				t.Errorf("%s/%s: visit counts diverge: two-level %d, exact %d", name, mode, fp.Visited, exact.Visited)
			}
		}
	}
}

// TestTwoLevelSeenSpillsConcurrently re-runs one differential with the
// full worker pool and a forcing budget: outcome sets (visit counts are
// schedule-dependent under >1 workers) must survive concurrent sealing,
// spilling and cold probing.
func TestTwoLevelSeenSpillsConcurrently(t *testing.T) {
	p := medium3()
	exact, err := Explore(p, []string{"t0", "t1", "t2"}, Config{Mode: tso.TSO, Workers: 1, ExactSeen: true})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := Explore(p, []string{"t0", "t1", "t2"}, Config{
		Mode: tso.TSO, SeenBudget: 1 << 10, SpillDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sameKeys(t, "concurrent two-level vs exact outcomes", keySet(fp.Outcomes), keySet(exact.Outcomes))
}

// testFP derives a deterministic fingerprint stream for the unit tests.
func testFP(i int) h128 {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(i))
	return hash128(b[:])
}

// testEngine is a bare engine for seen-set unit tests: unbounded budget,
// no spill session unless the test installs one.
func testEngine() *engine {
	e := &engine{}
	e.shardBudget, e.hotMaxSlots = seenBudget(Config{SeenBudget: -1})
	return e
}

// TestHotProbeAllocFree pins the hot-tier probe path at zero allocations
// per probe: hits on present fingerprints, misses on absent ones, and —
// with a sealed cold tier behind an in-RAM run — filter-rejected cold
// misses and cold hits alike.
func TestHotProbeAllocFree(t *testing.T) {
	e := testEngine()
	sh := &e.shards[0]
	const n = 1000
	sh.mu.Lock()
	for i := 0; i < n; i++ {
		sh.visit(e, 0, testFP(i), 0)
	}
	sh.mu.Unlock()

	probe := func(name string, fn func()) {
		t.Helper()
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %v allocs per probe, want 0", name, allocs)
		}
	}
	i := 0
	probe("hot hit", func() {
		sh.mu.Lock()
		if need, _ := sh.visit(e, 0, testFP(i%n), 0); need {
			t.Fatal("present fingerprint reported unseen")
		}
		sh.mu.Unlock()
		i++
	})
	j := 0
	probe("miss", func() {
		sh.mu.Lock()
		// Probing the cold path directly keeps the table from filling with
		// the probes themselves.
		if _, ok := sh.coldLookup(e, 0, testFP(n+j)); ok {
			t.Fatal("absent fingerprint reported cold-seen")
		}
		sh.mu.Unlock()
		j++
	})

	// Seal: everything moves cold (in RAM — no spill session installed).
	sh.mu.Lock()
	sh.seal(e, 0)
	if len(sh.runs) != 1 || sh.runs[0].n != n {
		t.Fatalf("seal produced %d runs (first n=%d), want 1 run of %d", len(sh.runs), sh.runs[0].n, n)
	}
	sh.mu.Unlock()
	k := 0
	probe("cold hit", func() {
		sh.mu.Lock()
		if _, ok := sh.coldLookup(e, 0, testFP(k%n)); !ok {
			t.Fatal("sealed fingerprint not found in cold tier")
		}
		sh.mu.Unlock()
		k++
	})
	l := 0
	probe("cold miss", func() {
		sh.mu.Lock()
		if _, ok := sh.coldLookup(e, 0, testFP(n+l)); ok {
			t.Fatal("absent fingerprint reported cold-seen")
		}
		sh.mu.Unlock()
		l++
	})
}

// TestSpilledProbeAllocFree pins the probe path over a run that has
// actually gone to disk: after the first block read warms the shard's
// scratch buffer, spilled cold hits and misses allocate nothing.
func TestSpilledProbeAllocFree(t *testing.T) {
	e := testEngine()
	sp, err := store.NewSpillSession(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e.spill = sp
	sh := &e.shards[0]
	const n = 5000
	sh.mu.Lock()
	for i := 0; i < n; i++ {
		sh.visit(e, 0, testFP(i), 0)
	}
	sh.seal(e, 0)
	r := sh.runs[0]
	sh.mu.Unlock()
	e.spillRun(sh, 0, r)
	if r.path == "" || r.data != nil {
		t.Fatalf("run not spilled: path=%q data=%d bytes", r.path, len(r.data))
	}

	// Warm: first probe opens the file and sizes the scratch buffer.
	sh.mu.Lock()
	if _, ok := sh.coldLookup(e, 0, testFP(0)); !ok {
		t.Fatal("spilled fingerprint not found")
	}
	sh.mu.Unlock()
	k := 0
	if allocs := testing.AllocsPerRun(100, func() {
		sh.mu.Lock()
		if _, ok := sh.coldLookup(e, 0, testFP(k%n)); !ok {
			t.Fatal("spilled fingerprint not found")
		}
		sh.mu.Unlock()
		k++
	}); allocs != 0 {
		t.Errorf("spilled cold hit: %v allocs per probe, want 0", allocs)
	}
	e.finishSeen()
}

// TestSealPreservesSleepMasks drives the mask-narrowing protocol across a
// seal boundary: a state first seen with a permissive sleep mask, sealed,
// then revisited with a disjoint mask must wake exactly the previously
// slept transitions and store the narrowed mask — the shadow-entry
// discipline the differential tests rely on, checked here directly.
func TestSealPreservesSleepMasks(t *testing.T) {
	e := testEngine()
	sh := &e.shards[0]
	h := testFP(42)
	sh.mu.Lock()
	defer sh.mu.Unlock()

	if need, _ := sh.visit(e, 0, h, 0b1100); !need {
		t.Fatal("first visit pruned")
	}
	sh.seal(e, 0)
	// Covered: sleep ⊇ stored is false here — stored 1100, probe 0100 is a
	// subset, so prev&^sleep = 1000 must wake.
	need, revisit := sh.visit(e, 0, h, 0b0100)
	if !need || revisit != 0b1000 {
		t.Fatalf("post-seal revisit: need=%v revisit=%04b, want true 1000", need, revisit)
	}
	// The narrowed mask (0100) now lives in the hot shadow; a probe with
	// 0100 is covered, a probe with 0000 wakes the remaining bit.
	if need, _ := sh.visit(e, 0, h, 0b0100); need {
		t.Fatal("narrowed mask not honored: probe with equal sleep re-expanded")
	}
	need, revisit = sh.visit(e, 0, h, 0)
	if !need || revisit != 0b0100 {
		t.Fatalf("final narrowing: need=%v revisit=%04b, want true 0100", need, revisit)
	}
}

// TestFilterRebuildKeepsEverything forces the cuckoo filter through many
// seals (and therefore growth rebuilds) and checks no sealed fingerprint
// was lost: the filter must stay free of false negatives because a false
// negative silently double-counts a state.
func TestFilterRebuildKeepsEverything(t *testing.T) {
	e := testEngine()
	e.shardBudget = 1 // seal on every insert: one run per fingerprint
	sh := &e.shards[0]
	const n = 3000
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i := 0; i < n; i++ {
		sh.visit(e, 0, testFP(i), 0)
	}
	if len(sh.runs) < n/2 {
		t.Fatalf("forced sealing produced only %d runs for %d states", len(sh.runs), n)
	}
	for i := 0; i < n; i++ {
		if need, _ := sh.visit(e, 0, testFP(i), 0); need {
			t.Fatalf("fingerprint %d lost across %d runs and filter rebuilds", i, len(sh.runs))
		}
	}
}
