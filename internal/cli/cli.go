// Package cli holds the scraps of process plumbing every command shares:
// the signal-bound root context and the -version flag body. It exists so
// cmd/paperbench, cmd/fencecheck and cmd/fenced cannot drift apart in
// which signals they honor or how they report their build.
package cli

import (
	"context"
	"os"
	"os/signal"
	"syscall"

	"fenceplace/internal/buildinfo"
)

// SignalContext returns a context cancelled by SIGINT or SIGTERM — the
// interactive interrupt and the orchestrator's shutdown request alike.
// The returned stop releases the signal registration; a second signal
// after cancellation kills the process with the default disposition, so a
// stuck drain can always be escalated by hand.
func SignalContext() (ctx context.Context, stop context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// Version prints the build identity (internal/buildinfo) to stdout — the
// body of every command's -version flag.
func Version() {
	os.Stdout.WriteString(buildinfo.String() + "\n")
}
