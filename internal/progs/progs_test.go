package progs

import (
	"testing"

	"fenceplace/internal/acquire"
	"fenceplace/internal/alias"
	"fenceplace/internal/escape"
	"fenceplace/internal/tso"
)

func TestRegistryShape(t *testing.T) {
	if got := len(ByKind(SyncKernel)); got != 9 {
		t.Errorf("got %d sync kernels, want 9 (Table II)", got)
	}
	if got := len(ByKind(Splash)); got != 14 {
		t.Errorf("got %d SPLASH-like programs, want 14", got)
	}
	if got := len(ByKind(LockFree)); got != 3 {
		t.Errorf("got %d lock-free programs, want 3 (Table III)", got)
	}
	if got := len(EvalSet()); got != 17 {
		t.Errorf("evaluation set has %d programs, want 17 (Figures 7-10)", got)
	}
	for _, m := range All() {
		if ByName(m.Name) != m {
			t.Errorf("%s: lookup mismatch", m.Name)
		}
		if m.Desc == "" || m.Source == "" {
			t.Errorf("%s: missing description or source", m.Name)
		}
	}
	if ByName("nope") != nil {
		t.Error("unknown name returned a program")
	}
	if len(Names()) != len(All()) {
		t.Error("Names out of sync")
	}
}

func TestAllProgramsBuildAndValidate(t *testing.T) {
	for _, m := range All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			p := m.Default()
			if err := p.Validate(); err != nil {
				t.Fatalf("invalid: %v", err)
			}
			pm := m.Build(withManual(m.Defaults))
			if err := pm.Validate(); err != nil {
				t.Fatalf("manual build invalid: %v", err)
			}
			full, _ := pm.CountFences(false)
			if full != m.ManualFences {
				t.Errorf("manual build has %d full fences, Meta says %d", full, m.ManualFences)
			}
		})
	}
}

func withManual(p Params) Params {
	p.Manual = true
	return p
}

func TestAllProgramsCorrectUnderSC(t *testing.T) {
	// Under SC no fences are needed: the unfenced (legacy) builds must run
	// clean over several adversarial schedules. This is the corpus's basic
	// correctness gate.
	for _, m := range All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			t.Parallel()
			p := m.Default()
			for seed := int64(0); seed < 3; seed++ {
				out := tso.Run(p, tso.Config{Mode: tso.SC, Sched: tso.Random, Seed: seed})
				if out.Failed() {
					t.Fatalf("seed %d: failures=%v err=%v deadlock=%v",
						seed, out.Failures, out.Err, out.Deadlock)
				}
			}
		})
	}
}

func TestManualBuildsCorrectUnderTSO(t *testing.T) {
	// The expert-fenced builds are the paper's baseline: they must be
	// correct on TSO (with eventual store visibility, as real hardware
	// provides).
	for _, m := range All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			t.Parallel()
			p := m.Build(withManual(m.Defaults))
			for seed := int64(0); seed < 3; seed++ {
				out := tso.Run(p, tso.Config{
					Mode: tso.TSO, Sched: tso.Random,
					Policy: tso.DrainRandom, Seed: seed,
				})
				if out.Failed() {
					t.Fatalf("seed %d: failures=%v err=%v deadlock=%v",
						seed, out.Failures, out.Err, out.Deadlock)
				}
			}
		})
	}
}

func TestRMWSyncedProgramsSafeOnTSOWithoutFences(t *testing.T) {
	// Programs whose synchronization goes through locked RMWs (locks,
	// barriers, CAS protocols) are TSO-safe even unfenced — the paper's
	// observation that only w→r needs MFENCE.
	for _, m := range All() {
		if m.NeedsWRFence {
			continue
		}
		m := m
		t.Run(m.Name, func(t *testing.T) {
			t.Parallel()
			p := m.Default()
			for seed := int64(0); seed < 3; seed++ {
				out := tso.Run(p, tso.Config{
					Mode: tso.TSO, Sched: tso.Random,
					Policy: tso.DrainRandom, Seed: seed,
				})
				if out.Failed() {
					t.Fatalf("seed %d: failures=%v err=%v", seed, out.Failures, out.Err)
				}
			}
		})
	}
}

func TestDekkerFamilyBreaksOnTSOWithoutFences(t *testing.T) {
	// The teeth of the dynamic validation: flag-and-check mutual exclusion
	// must fail under TSO when its w→r fences are missing.
	for _, m := range All() {
		if !m.NeedsWRFence {
			continue
		}
		m := m
		t.Run(m.Name, func(t *testing.T) {
			t.Parallel()
			p := m.Default()
			violated := false
			for seed := int64(0); seed < 12 && !violated; seed++ {
				out := tso.Run(p, tso.Config{
					Mode: tso.TSO, Sched: tso.Random,
					Policy: tso.DrainRandom, DrainPercent: 5, Seed: seed,
					MaxSteps: 3_000_000,
				})
				if len(out.Failures) > 0 || out.Deadlock {
					violated = true
				}
			}
			if !violated {
				t.Errorf("%s never misbehaved on unfenced TSO across 12 seeds", m.Name)
			}
		})
	}
}

func TestTable2Classification(t *testing.T) {
	// Regenerates the paper's Table II: signature breakdown per kernel,
	// and the headline observation — no pure-address acquires anywhere.
	for _, m := range ByKind(SyncKernel) {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			p := m.Default()
			al := alias.Analyze(p)
			esc := escape.Analyze(p, al)
			sig := acquire.Classify(p, al, esc)
			if m.Table2 == nil {
				t.Fatal("kernel missing Table2 expectation")
			}
			if got := sig.HasControl(); got != m.Table2.Ctrl {
				t.Errorf("Ctrl = %v, Table II says %v", got, m.Table2.Ctrl)
			}
			if got := sig.HasAddress(); got != m.Table2.Addr {
				t.Errorf("Addr = %v, Table II says %v", got, m.Table2.Addr)
			}
			if sig.HasPureAddress() != m.Table2.PureAddr {
				t.Errorf("PureAddr = %v, Table II says %v (paper: none exist)",
					sig.HasPureAddress(), m.Table2.PureAddr)
			}
		})
	}
}
