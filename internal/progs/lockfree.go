package progs

import "fenceplace/internal/ir"

// The lock-free programs of the paper's Table III. All three synchronize
// exclusively with user-defined (annotation-free) primitives, which is why
// the paper uses them: Pensieve must fence them heavily, acquire detection
// prunes most of it.

func init() {
	register(&Meta{
		Name: "canneal", Kind: LockFree,
		Source: "Bienia et al., PACT'08 (PARSEC)",
		Desc:   "cache-aware simulated annealing: atomic location swaps via CAS",
		// The paper's canneal carries 10 expert fences for portability to
		// weaker models; on x86-TSO its CAS claims already order everything,
		// so the expert baseline here needs none.
		ManualFences: 0,
		Build:        buildCanneal,
		Defaults:     Params{Threads: 4, Size: 16},
	})
	register(&Meta{
		Name: "matrix", Kind: LockFree,
		Source: "Michael & Scott, PODC'96 (queue)",
		Desc:   "matrix multiplication with work distributed over an MS queue",
		// Paper: 6 expert fences; the MS queue is CAS-synchronized, which
		// x86-TSO orders for free (see EXPERIMENTS.md).
		ManualFences: 0,
		Build:        buildMatrix,
		Defaults:     Params{Threads: 4, Size: 4},
	})
	register(&Meta{
		Name: "spanningtree", Kind: LockFree,
		Source: "Bader & Cong, JPDC'05",
		Desc:   "parallel spanning tree over a work queue with CAS node claims",
		// Paper: 5 expert fences; CAS claims + FIFO publication suffice on
		// x86-TSO (see EXPERIMENTS.md).
		ManualFences: 0,
		Build:        buildSpanningTree,
		Defaults:     Params{Threads: 4, Size: 16},
	})
}

// --- Canneal -------------------------------------------------------------------

// buildCanneal models canneal's core loop: pick two elements, compute a
// routing-cost delta from their neighbors' positions, and atomically swap
// the elements' locations with CAS claims. The location array is a
// permutation whose sum is invariant — the program's self-check.
func buildCanneal(p Params) *ir.Program {
	n := p.Size
	pb := ir.NewProgram("canneal")
	loc := pb.Global("loc", int(n))         // element -> location (a permutation)
	busy := pb.Global("busy", int(n))       // per-element CAS claim flags
	netlist := pb.Global("netlist", int(n)) // neighbor element per element
	swaps := pb.Global("swaps", 1)
	temperature := pb.Global("temperature", 1)

	w := pb.Func("worker", 1)
	me := w.Param(0)
	one := w.Const(1)
	zero := w.Const(0)
	psw := w.AddrOf(swaps)
	w.ForConst(0, p.Size*2, func(it ir.Reg) {
		// Temperature schedule read: feeds the accept branch.
		temp := w.Load(temperature)
		// Pick a deterministic pseudo-random pair.
		a := w.Mod(w.Add(w.MulImm(it, 7), me), w.Const(n))
		bIdx := w.Mod(w.Add(w.MulImm(it, 13), w.AddImm(me, 3)), w.Const(n))
		w.If(w.Ne(a, bIdx), func() {
			// Claim both elements with CAS (ordered by index to avoid
			// deadlock; here try-lock style: give up on failure).
			pa := w.AddrOfIdx(busy, a)
			okA := w.CAS(pa, zero, one)
			w.If(w.Eq(okA, one), func() {
				pb2 := w.AddrOfIdx(busy, bIdx)
				okB := w.CAS(pb2, zero, one)
				w.If(w.Eq(okB, one), func() {
					// Routing cost delta from the neighbors' locations:
					// netlist reads feed addresses (indirect).
					na := w.LoadIdx(netlist, a)
					nb := w.LoadIdx(netlist, bIdx)
					la := w.LoadIdx(loc, a)
					lb := w.LoadIdx(loc, bIdx)
					lna := w.LoadIdx(loc, na)
					lnb := w.LoadIdx(loc, nb)
					delta := w.Sub(w.Add(w.Sub(la, lna), w.Sub(lb, lnb)),
						w.Add(w.Sub(lb, lna), w.Sub(la, lnb)))
					accept := w.Or(w.Lt(delta, zero), w.Lt(temp, w.Const(4)))
					w.If(accept, func() {
						w.StoreIdx(loc, a, lb)
						w.StoreIdx(loc, bIdx, la)
						w.FetchAdd(psw, one)
					})
					w.StoreIdx(busy, bIdx, zero) // release claims
				})
				w.StoreIdx(busy, a, zero)
			})
		})
	})
	// Cool the schedule (racy by design — the paper's canneal reads the
	// temperature without synchronization too; it only gates a heuristic).
	w.Store(temperature, w.Sub(w.Load(temperature), one))
	dlo, dhi := chunk(w, me, p.Threads, n)
	dilute(pb, w, "cann", loc, netlist, dlo, dhi, n, 5, 4, 3)
	w.RetVoid()

	splashMain(pb, p.Threads, func(b *ir.FB) {
		initRamp(b, loc, n, 0, 1) // identity permutation
		initPerm(b, netlist, n)
	}, func(b *ir.FB) {
		// The locations must still be a permutation: the sum is invariant.
		sum := b.Move(b.Const(0))
		b.ForConst(0, n, func(i ir.Reg) {
			sum = mAdd(b, sum, b.LoadIdx(loc, i))
		})
		b.Assert(b.Eq(sum, b.Const(n*(n-1)/2)), "canneal: swaps preserved the location permutation")
	})
	p2 := pb.MustBuild()
	_ = p2.Fn("main")
	return p2
}

// --- Matrix ---------------------------------------------------------------------

// buildMatrix multiplies two Size x Size matrices, distributing row tasks
// through a Michael-Scott queue (the paper's Matrix program computes both
// products; we compute A*B and verify every cell against a sequential
// recomputation in main).
func buildMatrix(p Params) *ir.Program {
	n := p.Size
	pb := ir.NewProgram("matrix")
	ma := pb.Global("ma", int(n*n))
	mb := pb.Global("mb", int(n*n))
	mc := pb.Global("mc", int(n*n))
	qhead := pb.Global("qhead", 1)
	qtail := pb.Global("qtail", 1)
	donerows := pb.Global("donerows", 1)

	w := pb.Func("worker", 1)
	me := w.Param(0)
	one := w.Const(1)
	zero := w.Const(0)
	phead := w.AddrOf(qhead)
	ptail := w.AddrOf(qtail)
	pdone := w.AddrOf(donerows)
	stop := w.Move(zero)
	w.While(func() ir.Reg { return w.Eq(stop, zero) }, func() {
		// MS-queue dequeue of a row task.
		h := w.Load(qhead)
		t := w.Load(qtail)
		nxt := w.LoadPtr(w.Gep(h, one))
		w.IfElse(w.Eq(h, t), func() {
			w.IfElse(w.Eq(nxt, zero), func() {
				w.MoveTo(stop, one) // queue drained: done
			}, func() {
				w.CAS(ptail, t, nxt)
			})
		}, func() {
			w.If(w.Ne(nxt, zero), func() {
				row := w.LoadPtr(nxt)
				ok := w.CAS(phead, h, nxt)
				w.If(w.Eq(ok, one), func() {
					// Compute row `row` of C = A*B.
					base := w.Mul(row, w.Const(n))
					w.ForConst(0, n, func(j ir.Reg) {
						acc := w.Move(zero)
						w.ForConst(0, n, func(k ir.Reg) {
							av := w.LoadIdx(ma, w.Add(base, k))
							bv := w.LoadIdx(mb, w.Add(w.Mul(k, w.Const(n)), j))
							w.MoveTo(acc, w.Add(acc, w.Mul(av, bv)))
						})
						w.StoreIdx(mc, w.Add(base, j), acc)
					})
					w.FetchAdd(pdone, one)
				})
			})
		})
	})
	dlo, dhi := chunk(w, me, p.Threads, n)
	dilute(pb, w, "mx", ma, nil, dlo, dhi, n, 3, 3, 4)
	w.RetVoid()

	main := pb.Func("main", 0)
	one2 := main.Const(1)
	// Fill A and B with small deterministic values.
	main.ForConst(0, n*n, func(i ir.Reg) {
		main.StoreIdx(ma, i, main.Mod(i, main.Const(5)))
		main.StoreIdx(mb, i, main.Mod(main.MulImm(i, 3), main.Const(7)))
	})
	// Seed the MS queue with one node per row.
	dummy := main.Malloc(2)
	main.Store(qhead, dummy)
	main.Store(qtail, dummy)
	main.ForConst(0, n, func(row ir.Reg) {
		node := main.Malloc(2)
		main.StorePtr(node, row)
		t := main.Load(qtail)
		main.StorePtr(main.Gep(t, one2), node)
		main.Store(qtail, node)
	})
	tids := make([]ir.Reg, p.Threads)
	for i := 0; i < p.Threads; i++ {
		tids[i] = main.Spawn("worker", main.Const(int64(i)))
	}
	for _, tid := range tids {
		main.Join(tid)
	}
	assertEq(main, donerows, n, "matrix: every row computed exactly once")
	// Verify every cell against a sequential recomputation.
	main.ForConst(0, n, func(i ir.Reg) {
		base := main.Mul(i, main.Const(n))
		main.ForConst(0, n, func(j ir.Reg) {
			acc := main.Move(main.Const(0))
			main.ForConst(0, n, func(k ir.Reg) {
				av := main.LoadIdx(ma, main.Add(base, k))
				bv := main.LoadIdx(mb, main.Add(main.Mul(k, main.Const(n)), j))
				main.MoveTo(acc, main.Add(acc, main.Mul(av, bv)))
			})
			got := main.LoadIdx(mc, main.Add(base, j))
			main.Assert(main.Eq(got, acc), "matrix: parallel product matches sequential product")
		})
	})
	main.RetVoid()
	pb.SetMain("main")
	return pb.MustBuild()
}

// --- SpanningTree ------------------------------------------------------------------

// buildSpanningTree grows a spanning tree over a ring-with-chords graph: a
// shared work queue of frontier nodes, CAS claims on the color array, and
// adjacency through index arithmetic. The self-check: every node claimed
// exactly once (the tree spans).
func buildSpanningTree(p Params) *ir.Program {
	n := p.Size
	pb := ir.NewProgram("spanningtree")
	color := pb.Global("color", int(n)) // 0 = unvisited, else owner+1
	parent := pb.Global("parent", int(n))
	queue := pb.Global("queue", int(n*4))   // frontier queue (ample)
	qvalid := pb.Global("qvalid", int(n*4)) // per-slot published flag
	qtail := pb.Global("qtail", 1)          // fetch-add producer cursor
	qhead := pb.Global("qhead", 1)          // CAS-advanced consumer cursor
	visited := pb.Global("visited", 1)

	w := pb.Func("worker", 1)
	me := w.Param(0)
	one := w.Const(1)
	zero := w.Const(0)
	ph := w.AddrOf(qhead)
	pt := w.AddrOf(qtail)
	pv := w.AddrOf(visited)
	idle := w.Move(zero)
	w.While(func() ir.Reg { return w.Lt(idle, w.Const(n*8)) }, func() {
		done := w.Load(visited)
		w.If(w.Ge(done, w.Const(n)), func() {
			w.MoveTo(idle, w.Const(n*8)) // tree complete: fast exit
		})
		head := w.Load(qhead)
		tail := w.Load(qtail)
		w.IfElse(w.Ge(head, tail), func() {
			w.MoveTo(idle, w.Add(idle, one)) // queue looks empty
		}, func() {
			// Claim exactly slot `head` (no overshoot past the tail).
			ok := w.CAS(ph, head, w.Add(head, one))
			w.If(w.Eq(ok, one), func() {
				// Wait for the producer to publish the slot.
				w.SpinWhileNe(qvalid, head, one)
				u := w.LoadIdx(queue, head) // loaded index drives addresses
				// Explore u's two ring neighbors and one chord.
				for _, stride := range []int64{1, n - 1, 3} {
					v := w.Mod(w.Add(u, w.Const(stride)), w.Const(n))
					pc := w.AddrOfIdx(color, v)
					okc := w.CAS(pc, zero, w.AddImm(me, 1))
					w.If(w.Eq(okc, one), func() {
						w.StoreIdx(parent, v, u)
						w.FetchAdd(pv, one)
						spot := w.FetchAdd(pt, one)
						w.StoreIdx(queue, spot, v)
						w.StoreIdx(qvalid, spot, one) // publish after the value
					})
				}
				w.MoveTo(idle, zero)
			})
		})
	})
	weights := pb.Global("weights", int(n)) // read-only edge weights
	dlo, dhi := chunk(w, me, p.Threads, n)
	dilute(pb, w, "st", weights, nil, dlo, dhi, n, 10, 8, 2)
	w.RetVoid()

	splashMain(pb, p.Threads, func(b *ir.FB) {
		// Root node 0: colored by the boot thread, queued once.
		initRamp(b, weights, n, 1, 1)
		b.StoreIdx(color, b.Const(0), b.Const(99))
		b.StoreIdx(queue, b.Const(0), b.Const(0))
		b.StoreIdx(qvalid, b.Const(0), b.Const(1))
		b.Store(qtail, b.Const(1))
		b.Store(visited, b.Const(1))
	}, func(b *ir.FB) {
		assertEq(b, visited, n, "spanningtree: the tree spans every node")
		// Every non-root node has a parent in range.
		b.ForConst(1, n, func(i ir.Reg) {
			c := b.LoadIdx(color, i)
			b.Assert(b.Gt(c, b.Const(0)), "spanningtree: node claimed")
		})
	})
	return pb.MustBuild()
}
