// Package progs is the benchmark corpus of the reproduction: ir programs
// standing in for the paper's evaluation subjects. Three families:
//
//   - the nine synchronization primitives of Table II (Chase–Lev and Cilk-5
//     work-stealing deques, CLH and MCS queue locks, the Michael–Scott
//     queue, and the Dekker, Lamport, Peterson and Szymanski mutual
//     exclusion algorithms);
//   - fourteen SPLASH-2-like programs mirroring each benchmark's
//     synchronization idioms (sense-reversing barriers, spin locks, ad-hoc
//     flag synchronization) and data-access shape (stencils, indirect
//     indexing, pointer-chasing tree walks), since the original sources
//     cannot be compiled without LLVM and libc;
//   - the three lock-free programs of Table III (Canneal-like annealing via
//     atomic swaps, Matrix on a Michael–Scott queue, SpanningTree on a
//     work-stealing queue).
//
// Every program is self-checking: main spawns the workers, joins them and
// asserts a result invariant, so the TSO simulator can validate fence
// placements dynamically. Synchronization is written inline inside the
// functions that use it (as macro-expanded PARMACS or inlined lock code
// would be after -O2), matching the paper's intraprocedural detection
// assumption.
package progs

import (
	"fmt"
	"sort"

	"fenceplace/internal/ir"
)

// Kind is the corpus family of a program.
type Kind int

const (
	// SyncKernel is a Table II synchronization primitive.
	SyncKernel Kind = iota
	// Splash is a SPLASH-2-like benchmark.
	Splash
	// LockFree is a Table III lock-free program.
	LockFree
	// Extra is outside the paper's evaluation set: hand-built originals
	// for the real-Go frontend's differential twins (testdata/gosource).
	Extra
)

func (k Kind) String() string {
	switch k {
	case SyncKernel:
		return "kernel"
	case Splash:
		return "splash"
	case LockFree:
		return "lockfree"
	case Extra:
		return "extra"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Params sizes a program instantiation.
type Params struct {
	Threads int   // worker threads (the paper ran 64; tests use fewer)
	Size    int64 // problem-size knob, program-specific meaning
	// Manual includes the expert-placed fences in the program text — the
	// paper's §5.3 manual baseline. The analysis variants run on the
	// unfenced (legacy) build.
	Manual bool
}

// Meta describes one corpus program.
type Meta struct {
	Name   string
	Kind   Kind
	Source string // citation for the synchronization pattern
	Desc   string
	// ManualFences is the paper's §5.3 expert fence count where reported
	// (Canneal 10, FMM 6, Volrend 2, Matrix 6, SpanningTree 5); 0 = not
	// reported. The manual baseline uses the fences written in the program
	// text itself.
	ManualFences int
	// Table2 records the paper's Table II expectation for sync kernels.
	Table2 *Table2Row
	// Build instantiates the program at the given size.
	Build func(p Params) *ir.Program
	// Defaults are the parameters used by tests and the experiment
	// harness when none are supplied.
	Defaults Params
	// NeedsWRFence marks programs whose synchronization is
	// flag-and-check mutual exclusion (Dekker family): they are
	// incorrect on TSO without w→r fences, which gives the dynamic
	// validation its teeth.
	NeedsWRFence bool
}

// Table2Row is the expected signature breakdown for a Table II kernel.
type Table2Row struct {
	Addr, Ctrl, PureAddr bool
}

// Default instantiates the program at its default parameters.
func (m *Meta) Default() *ir.Program { return m.Build(m.Defaults) }

var registry = map[string]*Meta{}
var order []string

func register(m *Meta) *Meta {
	if _, dup := registry[m.Name]; dup {
		panic("progs: duplicate program " + m.Name)
	}
	registry[m.Name] = m
	order = append(order, m.Name)
	return m
}

// All returns every corpus program in registration order.
func All() []*Meta {
	out := make([]*Meta, 0, len(order))
	for _, n := range order {
		out = append(out, registry[n])
	}
	return out
}

// ByKind returns the corpus programs of one family, in registration order.
func ByKind(k Kind) []*Meta {
	var out []*Meta
	for _, m := range All() {
		if m.Kind == k {
			out = append(out, m)
		}
	}
	return out
}

// ByName looks a program up; nil if absent.
func ByName(name string) *Meta { return registry[name] }

// Names returns all program names, sorted.
func Names() []string {
	out := append([]string(nil), order...)
	sort.Strings(out)
	return out
}

// EvalSet returns the programs of the paper's Figures 7-10: the SPLASH-2
// set followed by the lock-free set, in the paper's display order.
func EvalSet() []*Meta {
	var out []*Meta
	out = append(out, ByKind(Splash)...)
	out = append(out, ByKind(LockFree)...)
	return out
}
