package progs

import "fenceplace/internal/ir"

// The nine synchronization primitives of the paper's Table II. Each is a
// small self-checking program: the expected signature classification
// (address / control / pure-address) is recorded in Meta.Table2 and checked
// by the Table II experiment. Acquires obtained through CAS loops match the
// control signature (the CAS result feeds the retry branch) and, where the
// loaded value is dereferenced or used as an index, the address signature
// too — which is exactly the paper's observation that no primitive has a
// pure-address acquire.

func init() {
	register(&Meta{
		Name: "chaselev", Kind: SyncKernel,
		Source: "Chase & Lev, SPAA'05",
		Desc:   "dynamic circular work-stealing deque; owner pops, thief steals",
		Table2: &Table2Row{Addr: true, Ctrl: true},
		Build:  buildChaseLev, Defaults: Params{Threads: 2, Size: 24},
		ManualFences: 1, NeedsWRFence: true,
	})
	register(&Meta{
		Name: "cilk5", Kind: SyncKernel,
		Source: "Frigo, Leiserson & Randall, PLDI'98",
		Desc:   "Cilk-5 THE protocol: victim/thief handshake over head and tail",
		Table2: &Table2Row{Addr: false, Ctrl: true},
		Build:  buildCilk5, Defaults: Params{Threads: 2, Size: 24},
		ManualFences: 2, NeedsWRFence: true,
	})
	register(&Meta{
		Name: "clh", Kind: SyncKernel,
		Source: "Craig, TR 93-02-02",
		Desc:   "CLH queue lock: spin on the predecessor's node",
		Table2: &Table2Row{Addr: true, Ctrl: true},
		Build:  buildCLH, Defaults: Params{Threads: 3, Size: 16},
	})
	register(&Meta{
		Name: "dekker", Kind: SyncKernel,
		Source: "Dijkstra, CACM 1965",
		Desc:   "Dekker's mutual exclusion for two threads",
		Table2: &Table2Row{Addr: false, Ctrl: true},
		Build:  buildDekker, Defaults: Params{Threads: 2, Size: 40},
		ManualFences: 2, NeedsWRFence: true,
	})
	register(&Meta{
		Name: "lamport", Kind: SyncKernel,
		Source: "Lamport, TOCS 1987",
		Desc:   "Lamport's fast mutual exclusion (two contenders)",
		Table2: &Table2Row{Addr: false, Ctrl: true},
		Build:  buildLamport, Defaults: Params{Threads: 2, Size: 40},
		ManualFences: 2, NeedsWRFence: true,
	})
	register(&Meta{
		Name: "mcs", Kind: SyncKernel,
		Source: "Mellor-Crummey & Scott, TOCS 1991",
		Desc:   "MCS queue lock: spin on own node, hand off via next pointer",
		Table2: &Table2Row{Addr: true, Ctrl: true},
		Build:  buildMCS, Defaults: Params{Threads: 3, Size: 16},
	})
	register(&Meta{
		Name: "msqueue", Kind: SyncKernel,
		Source: "Michael & Scott, PODC'96",
		Desc:   "two-lock-free FIFO queue: CAS on head, tail and next links",
		Table2: &Table2Row{Addr: true, Ctrl: true},
		Build:  buildMSQueue, Defaults: Params{Threads: 4, Size: 12},
	})
	register(&Meta{
		Name: "peterson", Kind: SyncKernel,
		Source: "Peterson, IPL 1981",
		Desc:   "Peterson's two-thread mutual exclusion",
		Table2: &Table2Row{Addr: false, Ctrl: true},
		Build:  buildPeterson, Defaults: Params{Threads: 2, Size: 40},
		ManualFences: 1, NeedsWRFence: true,
	})
	register(&Meta{
		Name: "szymanski", Kind: SyncKernel,
		Source: "Szymanski, ICS'88",
		Desc:   "Szymanski's waiting-room mutual exclusion (two threads)",
		Table2: &Table2Row{Addr: false, Ctrl: true},
		Build:  buildSzymanski, Defaults: Params{Threads: 2, Size: 30},
		ManualFences: 4, NeedsWRFence: true,
	})
}

// --- Dekker -----------------------------------------------------------------

func buildDekker(p Params) *ir.Program {
	pb := ir.NewProgram("dekker")
	flag := pb.Global("flag", 2)
	turn := pb.Global("turn", 1)
	ctr := pb.Global("ctr", 1)

	w := pb.Func("worker", 1)
	me := w.Param(0)
	one := w.Const(1)
	zero := w.Const(0)
	other := w.Sub(one, me)
	w.ForConst(0, p.Size, func(i ir.Reg) {
		w.StoreIdx(flag, me, one)
		if p.Manual {
			w.Fence(ir.FenceFull)
		}
		w.While(func() ir.Reg {
			return w.Eq(w.LoadIdx(flag, other), one)
		}, func() {
			w.If(w.Ne(w.Load(turn), me), func() {
				w.StoreIdx(flag, me, zero)
				w.SpinWhileNe(turn, ir.NoReg, me)
				w.StoreIdx(flag, me, one)
				if p.Manual {
					w.Fence(ir.FenceFull)
				}
			})
		})
		w.Store(ctr, w.Add(w.Load(ctr), one)) // critical section
		w.Store(turn, other)
		w.StoreIdx(flag, me, zero)
	})
	w.RetVoid()
	spawnWorkers(pb, "worker", 2, func(b *ir.FB) {
		assertEq(b, ctr, 2*p.Size, "dekker: no lost increments in the critical section")
	})
	return pb.MustBuild()
}

// --- Peterson ---------------------------------------------------------------

func buildPeterson(p Params) *ir.Program {
	pb := ir.NewProgram("peterson")
	flag := pb.Global("flag", 2)
	turn := pb.Global("turn", 1)
	ctr := pb.Global("ctr", 1)

	w := pb.Func("worker", 1)
	me := w.Param(0)
	one := w.Const(1)
	zero := w.Const(0)
	other := w.Sub(one, me)
	w.ForConst(0, p.Size, func(i ir.Reg) {
		w.StoreIdx(flag, me, one)
		w.Store(turn, other)
		if p.Manual {
			w.Fence(ir.FenceFull)
		}
		w.While(func() ir.Reg {
			fo := w.LoadIdx(flag, other)
			tu := w.Load(turn)
			return w.And(w.Eq(fo, one), w.Eq(tu, other))
		}, func() {})
		w.Store(ctr, w.Add(w.Load(ctr), one))
		w.StoreIdx(flag, me, zero)
	})
	w.RetVoid()
	spawnWorkers(pb, "worker", 2, func(b *ir.FB) {
		assertEq(b, ctr, 2*p.Size, "peterson: no lost increments in the critical section")
	})
	return pb.MustBuild()
}

// --- Lamport's fast mutex ---------------------------------------------------

func buildLamport(p Params) *ir.Program {
	pb := ir.NewProgram("lamport")
	x := pb.Global("x", 1)
	y := pb.Global("y", 1)  // 0 = free
	bb := pb.Global("b", 3) // 1-indexed contender flags
	ctr := pb.Global("ctr", 1)

	w := pb.Func("worker", 1)
	id := w.Add(w.Param(0), w.Const(1)) // ids 1..2
	one := w.Const(1)
	zero := w.Const(0)
	w.ForConst(0, p.Size, func(i ir.Reg) {
		start := w.NewBlock("start")
		cs := w.NewBlock("cs")
		w.Jmp(start)
		w.StartBlock(start)
		w.StoreIdx(bb, id, one)
		w.Store(x, id)
		if p.Manual {
			w.Fence(ir.FenceFull)
		}
		w.If(w.Ne(w.Load(y), zero), func() {
			w.StoreIdx(bb, id, zero)
			w.SpinWhileNe(y, ir.NoReg, zero)
			w.Jmp(start)
		})
		w.Store(y, id)
		if p.Manual {
			w.Fence(ir.FenceFull)
		}
		w.If(w.Ne(w.Load(x), id), func() {
			w.StoreIdx(bb, id, zero)
			w.ForConst(1, 3, func(j ir.Reg) {
				w.SpinWhileNe(bb, j, zero)
			})
			w.If(w.Ne(w.Load(y), id), func() {
				w.SpinWhileNe(y, ir.NoReg, zero)
				w.Jmp(start)
			})
		})
		w.Jmp(cs)
		w.StartBlock(cs)
		w.Store(ctr, w.Add(w.Load(ctr), one))
		w.Store(y, zero)
		w.StoreIdx(bb, id, zero)
	})
	w.RetVoid()
	spawnWorkers(pb, "worker", 2, func(b *ir.FB) {
		assertEq(b, ctr, 2*p.Size, "lamport: no lost increments in the critical section")
	})
	return pb.MustBuild()
}

// --- Szymanski --------------------------------------------------------------

func buildSzymanski(p Params) *ir.Program {
	pb := ir.NewProgram("szymanski")
	flag := pb.Global("flag", 2)
	ctr := pb.Global("ctr", 1)

	w := pb.Func("worker", 1)
	me := w.Param(0)
	one := w.Const(1)
	other := w.Sub(one, me)
	two := w.Const(2)
	three := w.Const(3)
	four := w.Const(4)
	w.ForConst(0, p.Size, func(i ir.Reg) {
		// Entry: stand outside the waiting room.
		w.StoreIdx(flag, me, one)
		if p.Manual {
			w.Fence(ir.FenceFull)
		}
		// Wait for the door to be open (other not in 3 or 4... entering).
		w.While(func() ir.Reg {
			return w.Ge(w.LoadIdx(flag, other), three)
		}, func() {})
		w.StoreIdx(flag, me, three) // doorway
		if p.Manual {
			w.Fence(ir.FenceFull)
		}
		w.If(w.Eq(w.LoadIdx(flag, other), one), func() {
			w.StoreIdx(flag, me, two) // wait for the other to enter
			if p.Manual {
				w.Fence(ir.FenceFull)
			}
			w.SpinWhileNe(flag, other, four)
		})
		w.StoreIdx(flag, me, four) // close the door
		if p.Manual {
			w.Fence(ir.FenceFull)
		}
		// Lower-id threads leave first: thread 1 waits for thread 0.
		w.If(w.Eq(w.Param(0), w.Const(1)), func() {
			w.While(func() ir.Reg {
				return w.Ge(w.LoadIdx(flag, w.Const(0)), two)
			}, func() {})
		})
		w.Store(ctr, w.Add(w.Load(ctr), one)) // critical section
		// Exit: thread 0 makes sure thread 1 noticed the closed door.
		w.If(w.Eq(w.Param(0), w.Const(0)), func() {
			w.While(func() ir.Reg {
				f := w.LoadIdx(flag, w.Const(1))
				return w.And(w.Ge(f, two), w.Le(f, three))
			}, func() {})
		})
		w.StoreIdx(flag, me, w.Const(0))
	})
	w.RetVoid()
	spawnWorkers(pb, "worker", 2, func(b *ir.FB) {
		assertEq(b, ctr, 2*p.Size, "szymanski: no lost increments in the critical section")
	})
	return pb.MustBuild()
}

// --- CLH queue lock ----------------------------------------------------------

func buildCLH(p Params) *ir.Program {
	nt := int64(p.Threads)
	pb := ir.NewProgram("clh")
	tail := pb.Global("tail", 1)
	dummy := pb.Global("dummy", 1) // initial unlocked node
	nodes := pb.Global("nodes", int(nt))
	ctr := pb.Global("ctr", 1)

	w := pb.Func("worker", 1)
	me := w.Param(0)
	one := w.Const(1)
	zero := w.Const(0)
	myNode := w.Move(w.AddrOfIdx(nodes, me))
	pred := w.Move(zero)
	ptail := w.AddrOf(tail)
	w.ForConst(0, p.Size, func(i ir.Reg) {
		w.StorePtr(myNode, one) // locked = 1
		// pred = swap(tail, myNode), via CAS retry.
		w.DoWhile(func() ir.Reg {
			t := w.Load(tail)
			w.MoveTo(pred, t)
			ok := w.CAS(ptail, t, myNode)
			return w.Eq(ok, zero)
		})
		// Spin on the predecessor's node.
		w.While(func() ir.Reg {
			return w.Ne(w.LoadPtr(pred), zero)
		}, func() {})
		w.Store(ctr, w.Add(w.Load(ctr), one)) // critical section
		w.StorePtr(myNode, zero)              // release
		w.MoveTo(myNode, pred)                // recycle the predecessor's node
	})
	w.RetVoid()
	spawnWorkers(pb, "worker", p.Threads, func(b *ir.FB) {
		assertEq(b, ctr, nt*p.Size, "clh: no lost increments under the lock")
	})
	// main must initialize tail before spawning: rebuild main with init.
	mainFn := pb.Func("boot", 0)
	mainFn.Store(tail, mainFn.AddrOf(dummy))
	mainFn.CallVoid("main")
	mainFn.RetVoid()
	pb.SetMain("boot")
	return pb.MustBuild()
}

// --- MCS queue lock ----------------------------------------------------------

func buildMCS(p Params) *ir.Program {
	nt := int64(p.Threads)
	pb := ir.NewProgram("mcs")
	tail := pb.Global("tail", 1)           // 0 = free
	nodes := pb.Global("nodes", int(2*nt)) // [locked, next] per thread
	ctr := pb.Global("ctr", 1)

	w := pb.Func("worker", 1)
	me := w.Param(0)
	one := w.Const(1)
	zero := w.Const(0)
	node := w.AddrOfIdx(nodes, w.MulImm(me, 2))
	nextP := w.Gep(node, one)
	ptail := w.AddrOf(tail)
	w.ForConst(0, p.Size, func(i ir.Reg) {
		w.StorePtr(nextP, zero)
		w.StorePtr(node, one) // locked = 1
		// pred = swap(tail, node)
		pred := w.Move(zero)
		w.DoWhile(func() ir.Reg {
			t := w.Load(tail)
			w.MoveTo(pred, t)
			ok := w.CAS(ptail, t, node)
			return w.Eq(ok, zero)
		})
		w.If(w.Ne(pred, zero), func() {
			w.StorePtr(w.Gep(pred, one), node) // pred->next = node
			w.While(func() ir.Reg {            // spin on own locked flag
				return w.Ne(w.LoadPtr(node), zero)
			}, func() {})
		})
		w.Store(ctr, w.Add(w.Load(ctr), one)) // critical section
		// Release.
		next := w.Move(w.LoadPtr(nextP))
		w.IfElse(w.Eq(next, zero), func() {
			ok := w.CAS(ptail, node, zero)
			w.If(w.Eq(ok, zero), func() {
				// A successor is linking itself in; wait for it.
				w.DoWhile(func() ir.Reg {
					n2 := w.LoadPtr(nextP)
					w.MoveTo(next, n2)
					return w.Eq(n2, zero)
				})
				w.StorePtr(next, zero) // next->locked = 0
			})
		}, func() {
			w.StorePtr(next, zero)
		})
	})
	w.RetVoid()
	spawnWorkers(pb, "worker", p.Threads, func(b *ir.FB) {
		assertEq(b, ctr, nt*p.Size, "mcs: no lost increments under the lock")
	})
	return pb.MustBuild()
}

// --- Michael-Scott queue ------------------------------------------------------

func buildMSQueue(p Params) *ir.Program {
	producers := p.Threads / 2
	consumers := p.Threads - producers
	perProducer := p.Size
	total := int64(producers) * perProducer
	perConsumer := total / int64(consumers)
	rem := total - perConsumer*int64(consumers)

	pb := ir.NewProgram("msqueue")
	qhead := pb.Global("qhead", 1)
	qtail := pb.Global("qtail", 1)
	sums := pb.Global("sums", consumers)
	counts := pb.Global("counts", consumers)

	prod := pb.Func("producer", 1)
	me := prod.Param(0)
	one := prod.Const(1)
	zero := prod.Const(0)
	ptail := prod.AddrOf(qtail)
	prod.ForConst(0, perProducer, func(i ir.Reg) {
		v := prod.Add(prod.MulImm(me, perProducer), i)
		n := prod.Malloc(2) // [value, next=0]
		prod.StorePtr(n, v)
		t := prod.Move(zero)
		prod.DoWhile(func() ir.Reg {
			tv := prod.Load(qtail)
			prod.MoveTo(t, tv)
			nxt := prod.LoadPtr(prod.Gep(tv, one))
			again := prod.Move(one)
			prod.IfElse(prod.Eq(nxt, zero), func() {
				ok := prod.CAS(prod.Gep(tv, one), zero, n)
				prod.MoveTo(again, prod.Eq(ok, zero))
			}, func() {
				prod.CAS(ptail, tv, nxt) // help swing tail
			})
			return again
		})
		prod.CAS(ptail, t, n)
	})
	prod.RetVoid()

	cons := pb.Func("consumer", 1)
	cme := cons.Param(0)
	cone := cons.Const(1)
	czero := cons.Const(0)
	phead := cons.AddrOf(qhead)
	cptail := cons.AddrOf(qtail)
	// Consumer 0 takes the remainder.
	want := cons.Move(cons.Const(perConsumer))
	cons.If(cons.Eq(cme, czero), func() {
		cons.MoveTo(want, cons.AddImm(want, rem))
	})
	got := cons.Move(czero)
	sum := cons.Move(czero)
	cons.While(func() ir.Reg { return cons.Lt(got, want) }, func() {
		h := cons.Load(qhead)
		t := cons.Load(qtail)
		nxt := cons.LoadPtr(cons.Gep(h, cone))
		cons.IfElse(cons.Eq(h, t), func() {
			cons.If(cons.Ne(nxt, czero), func() {
				cons.CAS(cptail, t, nxt) // help
			})
			// empty: retry
		}, func() {
			cons.If(cons.Ne(nxt, czero), func() {
				v := cons.LoadPtr(nxt)
				ok := cons.CAS(phead, h, nxt)
				cons.If(cons.Eq(ok, cone), func() {
					cons.MoveTo(sum, cons.Add(sum, v))
					cons.MoveTo(got, cons.Add(got, cone))
				})
			})
		})
	})
	cons.StoreIdx(sums, cme, sum)
	cons.StoreIdx(counts, cme, got)
	cons.RetVoid()

	main := pb.Func("main", 0)
	dummy := main.Malloc(2)
	main.Store(qhead, dummy)
	main.Store(qtail, dummy)
	var tids []ir.Reg
	for i := 0; i < producers; i++ {
		tids = append(tids, main.Spawn("producer", main.Const(int64(i))))
	}
	for i := 0; i < consumers; i++ {
		tids = append(tids, main.Spawn("consumer", main.Const(int64(i))))
	}
	for _, tid := range tids {
		main.Join(tid)
	}
	// Sum of all dequeued values must equal sum of 0..total-1; count must
	// equal total: nothing lost, nothing duplicated.
	totalSum := main.Move(main.Const(0))
	totalCount := main.Move(main.Const(0))
	main.ForConst(0, int64(consumers), func(i ir.Reg) {
		totalSum = mAdd(main, totalSum, main.LoadIdx(sums, i))
		totalCount = mAdd(main, totalCount, main.LoadIdx(counts, i))
	})
	main.Assert(main.Eq(totalCount, main.Const(total)), "msqueue: every enqueued item dequeued exactly once")
	main.Assert(main.Eq(totalSum, main.Const(total*(total-1)/2)), "msqueue: dequeued values intact")
	main.RetVoid()
	pb.SetMain("main")
	return pb.MustBuild()
}

// mAdd accumulates into a fresh register and returns it (builder sugar).
func mAdd(b *ir.FB, acc, v ir.Reg) ir.Reg {
	b.MoveTo(acc, b.Add(acc, v))
	return acc
}

// --- Chase-Lev work-stealing deque --------------------------------------------

func buildChaseLev(p Params) *ir.Program {
	n := p.Size
	size := int64(64)
	for size < n+2 {
		size *= 2
	}
	pb := ir.NewProgram("chaselev")
	top := pb.Global("top", 1)
	bottom := pb.Global("bottom", 1)
	buf := pb.Global("buf", int(size))
	popped := pb.Global("popped", 1)
	stolen := pb.Global("stolen", 1)
	ownerDone := pb.Global("ownerDone", 1)

	mask := size - 1

	owner := pb.Func("owner", 1)
	one := owner.Const(1)
	zero := owner.Const(0)
	maskR := owner.Const(mask)
	ptop := owner.AddrOf(top)
	// Push n tasks.
	owner.ForConst(0, n, func(i ir.Reg) {
		b := owner.Load(bottom)
		owner.StoreIdx(buf, owner.And(b, maskR), i)
		owner.Store(bottom, owner.Add(b, one))
	})
	// Pop until empty.
	count := owner.Move(zero)
	empty := owner.Move(zero)
	owner.While(func() ir.Reg { return owner.Eq(empty, zero) }, func() {
		b := owner.Sub(owner.Load(bottom), one)
		owner.Store(bottom, b)
		if p.Manual {
			owner.Fence(ir.FenceFull) // the Chase-Lev w→r fence
		}
		t := owner.Load(top)
		owner.IfElse(owner.Gt(t, b), func() {
			// Deque exhausted.
			owner.Store(bottom, t)
			owner.MoveTo(empty, one)
		}, func() {
			v := owner.LoadIdx(buf, owner.And(b, maskR))
			_ = v
			owner.IfElse(owner.Eq(t, b), func() {
				// Last element: race a thief for it.
				ok := owner.CAS(ptop, t, owner.Add(t, one))
				owner.If(owner.Eq(ok, one), func() {
					owner.MoveTo(count, owner.Add(count, one))
				})
				owner.Store(bottom, owner.Add(t, one))
				owner.MoveTo(empty, one)
			}, func() {
				owner.MoveTo(count, owner.Add(count, one))
			})
		})
	})
	owner.Store(popped, count)
	owner.Store(ownerDone, one)
	owner.RetVoid()

	thief := pb.Func("thief", 1)
	tone := thief.Const(1)
	tzero := thief.Const(0)
	tmask := thief.Const(mask)
	tptop := thief.AddrOf(top)
	tcount := thief.Move(tzero)
	thief.While(func() ir.Reg {
		// Keep stealing until the owner is done AND the deque is empty.
		done := thief.Load(ownerDone)
		t := thief.Load(top)
		b := thief.Load(bottom)
		return thief.Or(thief.Eq(done, tzero), thief.Lt(t, b))
	}, func() {
		t := thief.Load(top)
		b := thief.Load(bottom)
		thief.If(thief.Lt(t, b), func() {
			v := thief.LoadIdx(buf, thief.And(t, tmask))
			_ = v
			ok := thief.CAS(tptop, t, thief.Add(t, tone))
			thief.If(thief.Eq(ok, tone), func() {
				thief.MoveTo(tcount, thief.Add(tcount, tone))
			})
		})
	})
	thief.Store(stolen, tcount)
	thief.RetVoid()

	main := pb.Func("main", 0)
	t1 := main.Spawn("owner", main.Const(0))
	t2 := main.Spawn("thief", main.Const(1))
	main.Join(t1)
	main.Join(t2)
	tot := main.Add(main.Load(popped), main.Load(stolen))
	main.Assert(main.Eq(tot, main.Const(n)), "chaselev: every task taken exactly once")
	main.RetVoid()
	pb.SetMain("main")
	return pb.MustBuild()
}

// --- Cilk-5 THE protocol --------------------------------------------------------

func buildCilk5(p Params) *ir.Program {
	n := p.Size
	pb := ir.NewProgram("cilk5")
	hG := pb.Global("H", 1)
	tG := pb.Global("T", 1)
	lock := pb.Global("L", 1)
	popped := pb.Global("popped", 1)
	stolen := pb.Global("stolen", 1)
	ownerDone := pb.Global("ownerDone", 1)

	// The victim: pushes n frames, then pops with the THE fast path. The
	// frame index lives in a register (the victim owns T), so no escaping
	// read feeds an address — Table II's Cilk-5 row: control only.
	v := pb.Func("victim", 1)
	one := v.Const(1)
	zero := v.Const(0)
	tLocal := v.Move(zero)
	v.ForConst(0, n, func(i ir.Reg) { // push n frames
		v.MoveTo(tLocal, v.Add(tLocal, one))
		v.Store(tG, tLocal)
	})
	count := v.Move(zero)
	emptyFlag := v.Move(zero)
	v.While(func() ir.Reg { return v.Eq(emptyFlag, zero) }, func() {
		v.MoveTo(tLocal, v.Sub(tLocal, one)) // T--
		v.Store(tG, tLocal)
		if p.Manual {
			v.Fence(ir.FenceFull) // THE: store T must precede load H
		}
		h := v.Load(hG)
		v.IfElse(v.Gt(h, tLocal), func() {
			// Conflict: restore and retry under the lock.
			v.MoveTo(tLocal, v.Add(tLocal, one))
			v.Store(tG, tLocal)
			lockAcquire(v, lock)
			h2 := v.Load(hG)
			v.IfElse(v.Ge(h2, tLocal), func() {
				v.MoveTo(emptyFlag, one) // deque exhausted
			}, func() {
				v.MoveTo(tLocal, v.Sub(tLocal, one))
				v.Store(tG, tLocal)
				v.MoveTo(count, v.Add(count, one))
			})
			lockRelease(v, lock)
		}, func() {
			v.MoveTo(count, v.Add(count, one))
		})
	})
	v.Store(popped, count)
	v.Store(ownerDone, one)
	v.RetVoid()

	// The thief steals from the head under the lock.
	th := pb.Func("thief", 1)
	tone := th.Const(1)
	tzero := th.Const(0)
	tcount := th.Move(tzero)
	th.While(func() ir.Reg {
		done := th.Load(ownerDone)
		h := th.Load(hG)
		t := th.Load(tG)
		return th.Or(th.Eq(done, tzero), th.Lt(h, t))
	}, func() {
		lockAcquire(th, lock)
		h := th.Load(hG)
		th.Store(hG, th.Add(h, tone)) // H++
		if p.Manual {
			th.Fence(ir.FenceFull) // THE: store H must precede load T
		}
		t := th.Load(tG)
		th.IfElse(th.Ge(h, t), func() {
			th.Store(hG, h) // restore: nothing to steal
		}, func() {
			th.MoveTo(tcount, th.Add(tcount, tone))
		})
		lockRelease(th, lock)
	})
	th.Store(stolen, tcount)
	th.RetVoid()

	main := pb.Func("main", 0)
	t1 := main.Spawn("victim", main.Const(0))
	t2 := main.Spawn("thief", main.Const(1))
	main.Join(t1)
	main.Join(t2)
	tot := main.Add(main.Load(popped), main.Load(stolen))
	main.Assert(main.Eq(tot, main.Const(n)), "cilk5: every frame taken exactly once")
	main.RetVoid()
	pb.SetMain("main")
	return pb.MustBuild()
}
