package progs

import "fenceplace/internal/ir"

// This file provides the synchronization idioms the corpus inlines into its
// worker functions: test-and-set spin locks, ticket locks, sense-reversing
// barriers and ad-hoc flag synchronization. They are emitted inline (not as
// separate ir functions) because that is how the paper's subjects look
// after -O2 — PARMACS macros and small lock routines are expanded into
// their callers — and because the detection algorithms are intraprocedural.

// lockAcquire spins on a CAS until it takes the lock. The CAS result feeds
// the spin branch, so the lock read is a control acquire; the LOCK prefix
// makes it a full barrier at run time.
func lockAcquire(b *ir.FB, lock *ir.Global) {
	pl := b.AddrOf(lock)
	zero := b.Const(0)
	one := b.Const(1)
	b.While(func() ir.Reg {
		got := b.CAS(pl, zero, one)
		return b.Eq(got, zero)
	}, func() {})
}

// lockRelease stores 0 — a release write; on TSO the next CAS drains it.
func lockRelease(b *ir.FB, lock *ir.Global) {
	b.Store(lock, b.Const(0))
}

// ticketAcquire takes a ticket with fetch-add and spins until served. The
// now-serving read feeds the spin branch: a control acquire.
func ticketAcquire(b *ir.FB, next, serving *ir.Global) {
	pn := b.AddrOf(next)
	my := b.FetchAdd(pn, b.Const(1))
	b.SpinWhileNe(serving, ir.NoReg, my)
}

// ticketRelease passes the lock to the next ticket.
func ticketRelease(b *ir.FB, serving *ir.Global) {
	v := b.Load(serving)
	b.Store(serving, b.Add(v, b.Const(1)))
}

// barrierState groups the globals of one sense-reversing barrier.
type barrierState struct {
	count *ir.Global // arrivals in the current episode
	sense *ir.Global // global sense flag
}

func newBarrier(pb *ir.ProgBuilder, name string) barrierState {
	return barrierState{
		count: pb.Global(name+"_count", 1),
		sense: pb.Global(name+"_sense", 1),
	}
}

// barrierWait emits one sense-reversing barrier episode. localSense is a
// caller-owned register that the barrier flips in place. The last arriver
// resets the count and publishes the new sense; everyone else spins on the
// sense flag — the classic control-acquire busy wait.
func (bar barrierState) wait(b *ir.FB, localSense ir.Reg, nthreads int64) {
	one := b.Const(1)
	b.MoveTo(localSense, b.Sub(one, localSense))
	pos := b.FetchAdd(b.AddrOf(bar.count), one)
	b.IfElse(b.Eq(pos, b.Const(nthreads-1)), func() {
		b.Store(bar.count, b.Const(0))
		b.Store(bar.sense, localSense)
	}, func() {
		b.SpinWhileNe(bar.sense, ir.NoReg, localSense)
	})
}

// flagSet publishes a flag value (ad-hoc FMM/Volrend-style sync).
func flagSet(b *ir.FB, flag *ir.Global, idx ir.Reg, val int64) {
	v := b.Const(val)
	if idx == ir.NoReg {
		b.Store(flag, v)
	} else {
		b.StoreIdx(flag, idx, v)
	}
}

// flagWait spins until flag[idx] == want: a control acquire.
func flagWait(b *ir.FB, flag *ir.Global, idx ir.Reg, want int64) {
	b.SpinWhileNe(flag, idx, b.Const(want))
}

// spawnWorkers emits the canonical main function: spawn nthreads copies of
// worker (passing the thread index), join them all, then run check to
// assert the program invariant.
func spawnWorkers(pb *ir.ProgBuilder, worker string, nthreads int, check func(b *ir.FB)) {
	b := pb.Func("main", 0)
	tids := make([]ir.Reg, nthreads)
	for i := 0; i < nthreads; i++ {
		tids[i] = b.Spawn(worker, b.Const(int64(i)))
	}
	for _, tid := range tids {
		b.Join(tid)
	}
	if check != nil {
		check(b)
	}
	b.RetVoid()
	pb.SetMain("main")
}

// assertEq emits `assert load(g) == want`.
func assertEq(b *ir.FB, g *ir.Global, want int64, msg string) {
	v := b.Load(g)
	b.Assert(b.Eq(v, b.Const(want)), msg)
}
