package progs

import (
	"fmt"

	"fenceplace/internal/ir"
)

// Fourteen SPLASH-2-like programs. Each mirrors the synchronization idioms
// and the data-access *shape* of its namesake — that is all the static
// analyses observe — rather than its numerics:
//
//   - arithmetic phases: escaping reads feeding only computation (neither
//     acquire signature matches — the prunable bulk);
//   - branchy phases: escaping reads feeding comparisons (they inflate the
//     Control acquire count, e.g. Raytrace's traversal tests);
//   - indirect phases: escaping reads used as indices (they inflate the
//     Address+Control count, e.g. Radix's rank permutation);
//   - pointer phases: loaded pointers that get dereferenced (Barnes' tree
//     walk, Ocean-noncontiguous's row pointers);
//   - synchronization: sense-reversing barriers, CAS spin locks, and the
//     ad-hoc flag synchronization the paper singles out in FMM and Volrend.

// splashMeta registers a SPLASH-like program with common defaults.
func splashMeta(name, desc string, manual int, build func(Params) *ir.Program) {
	register(&Meta{
		Name: name, Kind: Splash,
		Source: "Woo et al., ISCA'95 (SPLASH-2)", Desc: desc,
		ManualFences: manual,
		Build:        build,
		Defaults:     Params{Threads: 4, Size: 16},
	})
}

func init() {
	splashMeta("barnes", "octree N-body: pointer-chasing force walk, per-cell locks, barriers", 0, buildBarnes)
	splashMeta("cholesky", "sparse factorization: lock-protected task queue, column supernodes", 0, buildCholesky)
	splashMeta("fft", "radix-√n six-step FFT: bit-reverse permutation and transpose, barriers", 0, buildFFT)
	// Paper: 6 expert fences for FMM's six ad-hoc flag sites; our synthetic
	// FMM has one flag site, hence one expert fence.
	splashMeta("fmm", "fast multipole: ad-hoc flag synchronization between tree passes", 1, buildFMM)
	splashMeta("lu-con", "dense blocked LU, contiguous blocks: owner map, barriers", 0, buildLUCon)
	splashMeta("lu-noncon", "dense blocked LU, non-contiguous rows through a pointer table", 0, buildLUNoncon)
	splashMeta("ocean-con", "red-black SOR on contiguous grids: stencil sweeps, convergence test", 0, buildOceanCon)
	splashMeta("ocean-noncon", "SOR with row-pointer grids: every row access chases a pointer", 0, buildOceanNoncon)
	splashMeta("radiosity", "hierarchical radiosity: task queue with visibility-test branches", 0, buildRadiosity)
	splashMeta("radix", "radix sort: histogram, prefix, and rank-driven permutation", 0, buildRadix)
	splashMeta("raytrace", "ray tracer: BVH traversal branches on loaded bounds, work queue", 0, buildRaytrace)
	splashMeta("volrend", "volume renderer: octree offset lookups, ad-hoc barrier flags", 2, buildVolrend)
	splashMeta("water-nsq", "Water-NSquared: O(n²) pairwise force arithmetic, molecule locks", 0, buildWaterNSq)
	splashMeta("water-sp", "Water-Spatial: cell lists, mostly straight arithmetic per cell", 0, buildWaterSp)
}

// chunk emits the [lo,hi) range of thread me over size elements.
func chunk(b *ir.FB, me ir.Reg, threads int, size int64) (lo, hi ir.Reg) {
	per := size / int64(threads)
	lo = b.Mul(me, b.Const(per))
	hi = b.Add(lo, b.Const(per))
	return lo, hi
}

// phaseArith: dst[i] = src[i]*3 + 1 — reads feed only arithmetic.
func phaseArith(b *ir.FB, src, dst *ir.Global, lo, hi ir.Reg) {
	b.For(lo, hi, func(i ir.Reg) {
		v := b.LoadIdx(src, i)
		b.StoreIdx(dst, i, b.AddImm(b.MulImm(v, 3), 1))
	})
}

// phaseBranchy: dst[i] = max(src[i], cap) — the read feeds a branch.
func phaseBranchy(b *ir.FB, src, dst *ir.Global, lo, hi ir.Reg, cap int64) {
	b.For(lo, hi, func(i ir.Reg) {
		v := b.LoadIdx(src, i)
		b.IfElse(b.Gt(v, b.Const(cap)), func() {
			b.StoreIdx(dst, i, b.Const(cap))
		}, func() {
			b.StoreIdx(dst, i, v)
		})
	})
}

// phaseIndirect: dst[i] = src[perm[i]] — the perm read feeds an address.
func phaseIndirect(b *ir.FB, perm, src, dst *ir.Global, lo, hi ir.Reg) {
	b.For(lo, hi, func(i ir.Reg) {
		j := b.LoadIdx(perm, i)
		b.StoreIdx(dst, i, b.LoadIdx(src, j))
	})
}

// phaseScatter: dst[perm[i]] = src[i] — address-feeding on the store side.
func phaseScatter(b *ir.FB, perm, src, dst *ir.Global, lo, hi ir.Reg) {
	b.For(lo, hi, func(i ir.Reg) {
		j := b.LoadIdx(perm, i)
		b.StoreIdx(dst, j, b.LoadIdx(src, i))
	})
}

// dilute appends the data mix that dominates the real codes' read counts:
// k pure-arithmetic read sites (reads feeding only computation — matching
// neither acquire signature), g gather pairs (an index read feeding an
// address plus a pure data read), and c two-level pointer chases (two
// address-feeding reads plus a pure read). All results flow into a private
// aux array that nothing branches on, so these reads stay out of every
// backward slice rooted at a predicate. idx may be nil, in which case a
// fresh (zero-filled — still in-bounds) index table is declared.
func dilute(pb *ir.ProgBuilder, w *ir.FB, tag string, src, idx *ir.Global, lo, hi ir.Reg, n int64, k, g, c int) {
	aux := pb.Global(tag+"_aux", int(n))
	if idx == nil && (g > 0 || c > 0) {
		idx = pb.Global(tag+"_idx", int(n))
	}
	nR := w.Const(n)
	w.For(lo, hi, func(i ir.Reg) {
		acc := w.Move(w.Const(0))
		for j := 0; j < k; j++ { // unrolled multi-point arithmetic
			at := w.Mod(w.AddImm(i, int64(j)), nR)
			w.MoveTo(acc, w.Add(acc, w.LoadIdx(src, at)))
		}
		for j := 0; j < g; j++ { // gathers: index read + data read
			at := w.Mod(w.AddImm(i, int64(j)), nR)
			jv := w.LoadIdx(idx, at)
			w.MoveTo(acc, w.Add(acc, w.LoadIdx(src, jv)))
		}
		for j := 0; j < c; j++ { // chases: index read -> index read -> data
			at := w.Mod(w.AddImm(i, int64(j)), nR)
			j1 := w.LoadIdx(idx, at)
			j2 := w.LoadIdx(idx, j1)
			w.MoveTo(acc, w.Add(acc, w.LoadIdx(src, j2)))
		}
		w.StoreIdx(aux, i, acc)
	})
}

// lockedAdd: lock-protected global accumulation (SPLASH reduction idiom).
func lockedAdd(b *ir.FB, lock, sum *ir.Global, v ir.Reg) {
	lockAcquire(b, lock)
	b.Store(sum, b.Add(b.Load(sum), v))
	lockRelease(b, lock)
}

// initRamp fills g with lo, lo+step, ... from the main thread.
func initRamp(b *ir.FB, g *ir.Global, n, lo, step int64) {
	b.ForConst(0, n, func(i ir.Reg) {
		b.StoreIdx(g, i, b.Add(b.Const(lo), b.MulImm(i, step)))
	})
}

// initPerm fills g with a fixed permutation of 0..n-1 (reversal — a valid
// permutation that differs from identity everywhere for even n).
func initPerm(b *ir.FB, g *ir.Global, n int64) {
	b.ForConst(0, n, func(i ir.Reg) {
		b.StoreIdx(g, i, b.Sub(b.Const(n-1), i))
	})
}

// splashMain wraps spawnWorkers with the conventional init function.
func splashMain(pb *ir.ProgBuilder, threads int, initFn func(b *ir.FB), check func(b *ir.FB)) {
	b := pb.Func("main", 0)
	if initFn != nil {
		initFn(b)
	}
	tids := make([]ir.Reg, threads)
	for i := 0; i < threads; i++ {
		tids[i] = b.Spawn("worker", b.Const(int64(i)))
	}
	for _, tid := range tids {
		b.Join(tid)
	}
	if check != nil {
		check(b)
	}
	b.RetVoid()
	pb.SetMain("main")
}

// --- Barnes ------------------------------------------------------------------

func buildBarnes(p Params) *ir.Program {
	n := p.Size
	pb := ir.NewProgram("barnes")
	// A fixed binary tree in parallel arrays: child pointers are *word
	// addresses* of other nodes, so the walk is genuine pointer chasing.
	mass := pb.Global("mass", int(n))
	left := pb.Global("left", int(n)) // address of left child's mass cell
	right := pb.Global("right", int(n))
	force := pb.Global("force", int(n))
	celllock := pb.Global("celllock", 1)
	total := pb.Global("total", 1)
	bar := newBarrier(pb, "bar")

	w := pb.Func("worker", 1)
	me := w.Param(0)
	sense := w.Move(w.Const(0))
	lo, hi := chunk(w, me, p.Threads, n)
	// Pass 1: local mass update (arithmetic).
	phaseArith(w, mass, force, lo, hi)
	bar.wait(w, sense, int64(p.Threads))
	// Pass 2: walk two levels of the tree per body (pointer derefs with a
	// cutoff branch, like the opening-angle test).
	acc := w.Move(w.Const(0))
	w.For(lo, hi, func(i ir.Reg) {
		l := w.LoadIdx(left, i) // pointer-valued load
		r := w.LoadIdx(right, i)
		lv := w.LoadPtr(l)
		rv := w.LoadPtr(r)
		w.IfElse(w.Gt(lv, rv), func() { // opening-angle-style test
			w.MoveTo(acc, w.Add(acc, lv))
		}, func() {
			w.MoveTo(acc, w.Add(acc, rv))
		})
	})
	lockedAdd(w, celllock, total, acc)
	bar.wait(w, sense, int64(p.Threads))
	dilute(pb, w, "barnes", mass, nil, lo, hi, n, 2, 6, 5)
	w.RetVoid()

	splashMain(pb, p.Threads, func(b *ir.FB) {
		initRamp(b, mass, n, 1, 1)
		// left[i] = &mass[(i+1) mod n], right[i] = &mass[(i+2) mod n].
		b.ForConst(0, n, func(i ir.Reg) {
			li := b.Mod(b.AddImm(i, 1), b.Const(n))
			ri := b.Mod(b.AddImm(i, 2), b.Const(n))
			b.StoreIdx(left, i, b.AddrOfIdx(mass, li))
			b.StoreIdx(right, i, b.AddrOfIdx(mass, ri))
		})
	}, func(b *ir.FB) {
		// Each body contributes max(mass[(i+1)%n], mass[(i+2)%n]) =
		// mass[(i+2)%n] except where the ramp wraps; just require > 0.
		v := b.Load(total)
		b.Assert(b.Gt(v, b.Const(0)), "barnes: force accumulation happened")
	})
	return pb.MustBuild()
}

// --- Cholesky ------------------------------------------------------------------

func buildCholesky(p Params) *ir.Program {
	n := p.Size
	pb := ir.NewProgram("cholesky")
	colptr := pb.Global("colptr", int(n)) // start index per supernode
	a := pb.Global("a", int(n*2))
	out := pb.Global("out", int(n*2))
	tasklock := pb.Global("tasklock", 1)
	nexttask := pb.Global("nexttask", 1)
	done := pb.Global("done", 1)

	w := pb.Func("worker", 1)
	me := w.Param(0)
	one := w.Const(1)
	stop := w.Move(w.Const(0))
	w.While(func() ir.Reg { return w.Eq(stop, w.Const(0)) }, func() {
		// Pull a column task from the lock-protected queue.
		lockAcquire(w, tasklock)
		t := w.Load(nexttask)
		w.Store(nexttask, w.Add(t, one))
		lockRelease(w, tasklock)
		w.IfElse(w.Ge(t, w.Const(n)), func() {
			w.MoveTo(stop, one)
		}, func() {
			// Column start comes from the loaded column pointer: indirect.
			start := w.LoadIdx(colptr, t)
			v0 := w.LoadIdx(a, start)
			v1 := w.LoadIdx(a, w.AddImm(start, 1))
			w.StoreIdx(out, start, w.Add(v0, v1))
			w.StoreIdx(out, w.AddImm(start, 1), w.Mul(v0, v1))
			pd := w.AddrOf(done)
			w.FetchAdd(pd, one)
		})
	})
	dlo, dhi := chunk(w, me, p.Threads, n)
	dilute(pb, w, "chol", a, nil, dlo, dhi, n, 1, 3, 4)
	w.RetVoid()

	splashMain(pb, p.Threads, func(b *ir.FB) {
		initRamp(b, a, n*2, 2, 1)
		b.ForConst(0, n, func(i ir.Reg) {
			b.StoreIdx(colptr, i, b.MulImm(i, 2))
		})
	}, func(b *ir.FB) {
		assertEq(b, done, n, "cholesky: every supernode factored exactly once")
	})
	return pb.MustBuild()
}

// --- FFT ------------------------------------------------------------------------

func buildFFT(p Params) *ir.Program {
	n := p.Size
	pb := ir.NewProgram("fft")
	data := pb.Global("data", int(n))
	scratch := pb.Global("scratch", int(n))
	rev := pb.Global("rev", int(n)) // bit-reverse table
	bar := newBarrier(pb, "bar")
	checks := pb.Global("checks", 1)

	w := pb.Func("worker", 1)
	me := w.Param(0)
	sense := w.Move(w.Const(0))
	lo, hi := chunk(w, me, p.Threads, n)
	// Stage 1: butterfly-style arithmetic.
	phaseArith(w, data, scratch, lo, hi)
	bar.wait(w, sense, int64(p.Threads))
	// Stage 2: bit-reverse permutation — loaded index drives the address.
	phaseIndirect(w, rev, scratch, data, lo, hi)
	bar.wait(w, sense, int64(p.Threads))
	// Stage 3: transpose-like pass (arithmetic again).
	phaseArith(w, data, scratch, lo, hi)
	bar.wait(w, sense, int64(p.Threads))
	dilute(pb, w, "fft", scratch, rev, lo, hi, n, 1, 4, 5)
	pd := w.AddrOf(checks)
	w.FetchAdd(pd, w.Const(1))
	w.RetVoid()

	splashMain(pb, p.Threads, func(b *ir.FB) {
		initRamp(b, data, n, 0, 1)
		initPerm(b, rev, n)
	}, func(b *ir.FB) {
		assertEq(b, checks, int64(p.Threads), "fft: all workers completed all stages")
		// data[0] after stage2 = scratch[rev[0]] = scratch[n-1] = 3(n-1)+1.
		v := b.LoadIdx(data, b.Const(0))
		b.Assert(b.Eq(v, b.Const(3*(n-1)+1)), "fft: permutation applied the bit-reverse table")
	})
	return pb.MustBuild()
}

// --- FMM -------------------------------------------------------------------------

func buildFMM(p Params) *ir.Program {
	n := p.Size
	nt := int64(p.Threads)
	pb := ir.NewProgram("fmm")
	multipole := pb.Global("multipole", int(n))
	local := pb.Global("localexp", int(n))
	ilist := pb.Global("ilist", int(n))    // interaction list: indices
	ready := pb.Global("ready", p.Threads) // ad-hoc per-thread flags
	sums := pb.Global("sums", p.Threads)

	w := pb.Func("worker", 1)
	me := w.Param(0)
	lo, hi := chunk(w, me, p.Threads, n)
	// Upward pass: compute multipoles for my cells.
	phaseArith(w, local, multipole, lo, hi)
	if p.Manual {
		w.Fence(ir.FenceFull)
	}
	flagSet(w, ready, me, 1) // publish: my multipoles are ready
	// Ad-hoc sync (the paper's FMM idiom): wait for my neighbor's flag.
	neighbor := w.Mod(w.AddImm(me, 1), w.Const(nt))
	flagWait(w, ready, neighbor, 1)
	// Downward pass: gather my neighbor's multipoles through the
	// interaction list (indirect indices).
	acc := w.Move(w.Const(0))
	w.For(lo, hi, func(i ir.Reg) {
		j := w.LoadIdx(ilist, i)
		v := w.LoadIdx(multipole, j)
		w.IfElse(w.Gt(v, w.Const(50)), func() { // well-separated test
			w.MoveTo(acc, w.Add(acc, w.Const(1)))
		}, func() {
			w.MoveTo(acc, w.Add(acc, v))
		})
	})
	w.StoreIdx(sums, me, acc)
	dilute(pb, w, "fmm", local, ilist, lo, hi, n, 2, 4, 3)
	w.RetVoid()

	splashMain(pb, p.Threads, func(b *ir.FB) {
		initRamp(b, local, n, 1, 1)
		initPerm(b, ilist, n)
	}, func(b *ir.FB) {
		total := b.Move(b.Const(0))
		b.ForConst(0, nt, func(i ir.Reg) {
			total = mAdd(b, total, b.LoadIdx(sums, i))
		})
		b.Assert(b.Gt(total, b.Const(0)), "fmm: downward pass accumulated interactions")
	})
	return pb.MustBuild()
}

// --- LU (contiguous) ---------------------------------------------------------------

func buildLUCon(p Params) *ir.Program {
	n := p.Size // matrix is n x n blocks flattened
	pb := ir.NewProgram("lu-con")
	blocks := pb.Global("blocks", int(n*n))
	owner := pb.Global("owner", int(n)) // block-column owner map
	bar := newBarrier(pb, "bar")
	steps := pb.Global("steps", 1)

	w := pb.Func("worker", 1)
	me := w.Param(0)
	sense := w.Move(w.Const(0))
	one := w.Const(1)
	// For each diagonal step k: the owner factors column k, then everyone
	// updates their own blocks (owner map read feeds a branch).
	w.ForConst(0, n, func(k ir.Reg) {
		ow := w.LoadIdx(owner, k)
		w.If(w.Eq(ow, me), func() {
			base := w.Mul(k, w.Const(n))
			diag := w.LoadIdx(blocks, w.Add(base, k))
			w.StoreIdx(blocks, w.Add(base, k), w.AddImm(diag, 1))
			pd := w.AddrOf(steps)
			w.FetchAdd(pd, one)
		})
		bar.wait(w, sense, int64(p.Threads))
		// Trailing update on my chunk of row k (pure arithmetic).
		lo, hi := chunk(w, me, p.Threads, n)
		base := w.Mul(k, w.Const(n))
		w.For(lo, hi, func(j ir.Reg) {
			v := w.LoadIdx(blocks, w.Add(base, j))
			w.StoreIdx(blocks, w.Add(base, j), w.AddImm(v, 1))
		})
		bar.wait(w, sense, int64(p.Threads))
	})
	dlo, dhi := chunk(w, me, p.Threads, n)
	dilute(pb, w, "lu", blocks, nil, dlo, dhi, n, 4, 3, 6)
	w.RetVoid()

	splashMain(pb, p.Threads, func(b *ir.FB) {
		b.ForConst(0, n, func(i ir.Reg) {
			b.StoreIdx(owner, i, b.Mod(i, b.Const(int64(p.Threads))))
		})
	}, func(b *ir.FB) {
		assertEq(b, steps, n, "lu-con: every diagonal factored exactly once")
	})
	return pb.MustBuild()
}

// --- LU (non-contiguous) -------------------------------------------------------------

func buildLUNoncon(p Params) *ir.Program {
	n := p.Size
	pb := ir.NewProgram("lu-noncon")
	storage := pb.Global("storage", int(n*n))
	rowptr := pb.Global("rowptr", int(n)) // address of each row
	owner := pb.Global("owner", int(n))
	bar := newBarrier(pb, "bar")
	steps := pb.Global("steps", 1)

	w := pb.Func("worker", 1)
	me := w.Param(0)
	sense := w.Move(w.Const(0))
	one := w.Const(1)
	w.ForConst(0, n, func(k ir.Reg) {
		ow := w.LoadIdx(owner, k)
		w.If(w.Eq(ow, me), func() {
			rp := w.LoadIdx(rowptr, k) // row base pointer: address acquire shape
			cell := w.Gep(rp, k)
			w.StorePtr(cell, w.AddImm(w.LoadPtr(cell), 1))
			pd := w.AddrOf(steps)
			w.FetchAdd(pd, one)
		})
		bar.wait(w, sense, int64(p.Threads))
		lo, hi := chunk(w, me, p.Threads, n)
		rp := w.LoadIdx(rowptr, k)
		w.For(lo, hi, func(j ir.Reg) {
			cell := w.Gep(rp, j)
			w.StorePtr(cell, w.AddImm(w.LoadPtr(cell), 1))
		})
		bar.wait(w, sense, int64(p.Threads))
	})
	dlo, dhi := chunk(w, me, p.Threads, n)
	dilute(pb, w, "lun", storage, nil, dlo, dhi, n, 2, 4, 4)
	w.RetVoid()

	splashMain(pb, p.Threads, func(b *ir.FB) {
		b.ForConst(0, n, func(i ir.Reg) {
			b.StoreIdx(owner, i, b.Mod(i, b.Const(int64(p.Threads))))
			b.StoreIdx(rowptr, i, b.AddrOfIdx(storage, b.Mul(i, b.Const(n))))
		})
	}, func(b *ir.FB) {
		assertEq(b, steps, n, "lu-noncon: every diagonal factored exactly once")
	})
	return pb.MustBuild()
}

// --- Ocean (contiguous) ----------------------------------------------------------------

func buildOceanCon(p Params) *ir.Program {
	n := p.Size
	iters := int64(3)
	pb := ir.NewProgram("ocean-con")
	grid := pb.Global("grid", int(n))
	next := pb.Global("next", int(n))
	errG := pb.Global("err", 1)
	errLock := pb.Global("errlock", 1)
	bar := newBarrier(pb, "bar")

	w := pb.Func("worker", 1)
	me := w.Param(0)
	sense := w.Move(w.Const(0))
	lo, hi := chunk(w, me, p.Threads, n)
	w.ForConst(0, iters, func(it ir.Reg) {
		// Stencil sweep: next[i] = (grid[i-1]+grid[i]+grid[i+1])/3 on the
		// interior (arithmetic reads), plus a local error estimate whose
		// loaded values feed a branch (the convergence test).
		localErr := w.Move(w.Const(0))
		w.For(lo, hi, func(i ir.Reg) {
			inBounds := w.And(w.Gt(i, w.Const(0)), w.Lt(i, w.Const(n-1)))
			w.IfElse(inBounds, func() {
				s := w.Add(w.LoadIdx(grid, w.AddImm(i, -1)),
					w.Add(w.LoadIdx(grid, i), w.LoadIdx(grid, w.AddImm(i, 1))))
				nv := w.Div(s, w.Const(3))
				w.StoreIdx(next, i, nv)
				old := w.LoadIdx(grid, i)
				// |nv-old| branchless (mask trick), as the compiled code
				// would do: the residual is tested in the driver, not here.
				diff := w.Sub(nv, old)
				mask := w.Bin(ir.OpShr, diff, w.Const(63))
				abs := w.Sub(w.Xor(diff, mask), mask)
				w.MoveTo(localErr, w.Add(localErr, abs))
			}, func() {
				w.StoreIdx(next, i, w.LoadIdx(grid, i))
			})
		})
		lockedAdd(w, errLock, errG, localErr)
		bar.wait(w, sense, int64(p.Threads))
		// Copy back (arithmetic).
		w.For(lo, hi, func(i ir.Reg) {
			w.StoreIdx(grid, i, w.LoadIdx(next, i))
		})
		bar.wait(w, sense, int64(p.Threads))
	})
	dilute(pb, w, "ocean", grid, nil, lo, hi, n, 5, 3, 2)
	w.RetVoid()

	splashMain(pb, p.Threads, func(b *ir.FB) {
		// Non-linear initial field so the smoother has a nonzero residual.
		b.ForConst(0, n, func(i ir.Reg) {
			b.StoreIdx(grid, i, b.Mod(b.Mul(i, i), b.Const(97)))
		})
	}, func(b *ir.FB) {
		v := b.Load(errG)
		b.Assert(b.Gt(v, b.Const(0)), "ocean-con: smoothing reduced a nonzero residual")
	})
	return pb.MustBuild()
}

// --- Ocean (non-contiguous) ----------------------------------------------------------

func buildOceanNoncon(p Params) *ir.Program {
	rows := p.Size / 4
	if rows < 2 {
		rows = 2
	}
	cols := int64(4)
	pb := ir.NewProgram("ocean-noncon")
	storage := pb.Global("storage", int(rows*cols))
	rowptr := pb.Global("rowptr", int(rows))
	bar := newBarrier(pb, "bar")
	sum := pb.Global("sum", 1)
	sumLock := pb.Global("sumlock", 1)

	w := pb.Func("worker", 1)
	me := w.Param(0)
	sense := w.Move(w.Const(0))
	lo, hi := chunk(w, me, p.Threads, rows)
	// Sweep my rows: every access goes through the row-pointer table.
	acc := w.Move(w.Const(0))
	w.For(lo, hi, func(r ir.Reg) {
		rp := w.LoadIdx(rowptr, r) // loaded pointer drives all addresses
		w.ForConst(0, cols, func(cIdx ir.Reg) {
			cell := w.Gep(rp, cIdx)
			v := w.LoadPtr(cell)
			w.StorePtr(cell, w.AddImm(v, 1))
			w.MoveTo(acc, w.Add(acc, v))
		})
	})
	lockedAdd(w, sumLock, sum, acc)
	bar.wait(w, sense, int64(p.Threads))
	dilute(pb, w, "oceann", storage, nil, lo, hi, rows, 1, 3, 4)
	w.RetVoid()

	splashMain(pb, p.Threads, func(b *ir.FB) {
		initRamp(b, storage, rows*cols, 1, 1)
		b.ForConst(0, rows, func(r ir.Reg) {
			b.StoreIdx(rowptr, r, b.AddrOfIdx(storage, b.Mul(r, b.Const(cols))))
		})
	}, func(b *ir.FB) {
		// Sum of the initial ramp 1..rows*cols.
		total := rows * cols * (rows*cols + 1) / 2
		assertEq(b, sum, total, "ocean-noncon: all cells visited exactly once")
	})
	return pb.MustBuild()
}

// --- Radiosity --------------------------------------------------------------------

func buildRadiosity(p Params) *ir.Program {
	n := p.Size
	pb := ir.NewProgram("radiosity")
	patch := pb.Global("patch", int(n))
	vis := pb.Global("vis", int(n))
	radio := pb.Global("radio", int(n))
	tasklock := pb.Global("tasklock", 1)
	nexttask := pb.Global("nexttask", 1)
	donecnt := pb.Global("donecnt", 1)

	w := pb.Func("worker", 1)
	me := w.Param(0)
	one := w.Const(1)
	stop := w.Move(w.Const(0))
	w.While(func() ir.Reg { return w.Eq(stop, w.Const(0)) }, func() {
		lockAcquire(w, tasklock)
		t := w.Load(nexttask)
		w.Store(nexttask, w.Add(t, one))
		lockRelease(w, tasklock)
		w.IfElse(w.Ge(t, w.Const(n)), func() {
			w.MoveTo(stop, one)
		}, func() {
			// Visibility test: three loaded values feed branches.
			v := w.LoadIdx(vis, t)
			e := w.LoadIdx(patch, t)
			w.IfElse(w.Gt(v, w.Const(0)), func() {
				w.IfElse(w.Gt(e, w.Const(8)), func() {
					w.StoreIdx(radio, t, w.Add(e, v))
				}, func() {
					w.StoreIdx(radio, t, v)
				})
			}, func() {
				w.StoreIdx(radio, t, w.Const(0))
			})
			pd := w.AddrOf(donecnt)
			w.FetchAdd(pd, one)
		})
	})
	dlo, dhi := chunk(w, me, p.Threads, n)
	dilute(pb, w, "radio", patch, nil, dlo, dhi, n, 3, 2, 4)
	w.RetVoid()

	splashMain(pb, p.Threads, func(b *ir.FB) {
		initRamp(b, patch, n, 1, 1)
		initRamp(b, vis, n, 1, 2)
	}, func(b *ir.FB) {
		assertEq(b, donecnt, n, "radiosity: every patch task executed exactly once")
	})
	return pb.MustBuild()
}

// --- Radix ----------------------------------------------------------------------

func buildRadix(p Params) *ir.Program {
	n := p.Size
	buckets := int64(4)
	pb := ir.NewProgram("radix")
	keys := pb.Global("keys", int(n))
	hist := pb.Global("hist", int(buckets))
	prefix := pb.Global("prefix", int(buckets))
	cursor := pb.Global("cursor", int(buckets))
	sorted := pb.Global("sorted", int(n))
	bar := newBarrier(pb, "bar")

	w := pb.Func("worker", 1)
	me := w.Param(0)
	sense := w.Move(w.Const(0))
	one := w.Const(1)
	lo, hi := chunk(w, me, p.Threads, n)
	// Histogram: the loaded key selects the bucket — address-feeding.
	w.For(lo, hi, func(i ir.Reg) {
		k := w.LoadIdx(keys, i)
		d := w.Mod(k, w.Const(buckets))
		ph := w.AddrOfIdx(hist, d)
		w.FetchAdd(ph, one)
	})
	bar.wait(w, sense, int64(p.Threads))
	// Thread 0 computes the prefix sums.
	w.If(w.Eq(me, w.Const(0)), func() {
		acc := w.Move(w.Const(0))
		w.ForConst(0, buckets, func(bIdx ir.Reg) {
			w.StoreIdx(prefix, bIdx, acc)
			w.StoreIdx(cursor, bIdx, acc)
			w.MoveTo(acc, w.Add(acc, w.LoadIdx(hist, bIdx)))
		})
	})
	bar.wait(w, sense, int64(p.Threads))
	// Permutation: rank (from fetchadd on the loaded bucket cursor) drives
	// the destination address.
	w.For(lo, hi, func(i ir.Reg) {
		k := w.LoadIdx(keys, i)
		d := w.Mod(k, w.Const(buckets))
		pc := w.AddrOfIdx(cursor, d)
		rank := w.FetchAdd(pc, one)
		w.StoreIdx(sorted, rank, k)
	})
	bar.wait(w, sense, int64(p.Threads))
	// Back-permutation of the sorted keys (scatter through loaded ranks).
	unsorted := pb.Global("unsorted", int(n))
	phaseScatter(w, keys, sorted, unsorted, lo, hi)
	dilute(pb, w, "radix", keys, keys, lo, hi, n, 4, 3, 1)
	w.RetVoid()

	splashMain(pb, p.Threads, func(b *ir.FB) {
		// keys[i] = (i*7+3) mod n — fixed pseudo-random keys.
		b.ForConst(0, n, func(i ir.Reg) {
			b.StoreIdx(keys, i, b.Mod(b.AddImm(b.MulImm(i, 7), 3), b.Const(n)))
		})
	}, func(b *ir.FB) {
		// Every slot of sorted was written: digits are grouped, so the sum
		// of sorted equals the sum of keys.
		sumS := b.Move(b.Const(0))
		sumK := b.Move(b.Const(0))
		b.ForConst(0, n, func(i ir.Reg) {
			sumS = mAdd(b, sumS, b.LoadIdx(sorted, i))
			sumK = mAdd(b, sumK, b.LoadIdx(keys, i))
		})
		b.Assert(b.Eq(sumS, sumK), "radix: permutation preserved the key multiset")
	})
	return pb.MustBuild()
}

// --- Raytrace --------------------------------------------------------------------

func buildRaytrace(p Params) *ir.Program {
	n := p.Size
	pb := ir.NewProgram("raytrace")
	bounds := pb.Global("bounds", int(n*2)) // BVH-ish: [min, max] per node
	kids := pb.Global("kids", int(n))       // child index per node
	image := pb.Global("image", int(n))
	rays := pb.Global("rays", 1) // work counter: next ray to trace
	hits := pb.Global("hits", 1)

	w := pb.Func("worker", 1)
	me := w.Param(0)
	one := w.Const(1)
	prays := w.AddrOf(rays)
	phits := w.AddrOf(hits)
	stop := w.Move(w.Const(0))
	w.While(func() ir.Reg { return w.Eq(stop, w.Const(0)) }, func() {
		r := w.FetchAdd(prays, one) // grab the next ray
		w.IfElse(w.Ge(r, w.Const(n)), func() {
			w.MoveTo(stop, one)
		}, func() {
			// Traverse two BVH levels: every loaded bound feeds a branch,
			// every loaded child index feeds an address.
			mn := w.LoadIdx(bounds, w.MulImm(r, 2))
			mx := w.LoadIdx(bounds, w.AddImm(w.MulImm(r, 2), 1))
			w.IfElse(w.And(w.Le(mn, r), w.Lt(r, mx)), func() {
				child := w.LoadIdx(kids, r)
				cmn := w.LoadIdx(bounds, w.MulImm(child, 2))
				w.IfElse(w.Le(cmn, r), func() {
					w.StoreIdx(image, r, w.AddImm(child, 1))
					w.FetchAdd(phits, one)
				}, func() {
					w.StoreIdx(image, r, w.Const(0))
				})
			}, func() {
				w.StoreIdx(image, r, w.Const(0))
			})
		})
	})
	dlo, dhi := chunk(w, me, p.Threads, n)
	// Shadow-feeler pass over the (read-only) bounds: more traversal-style
	// branches on loaded data, raytrace's signature access pattern.
	tone := pb.Global("tone", int(n))
	phaseBranchy(w, bounds, tone, dlo, dhi, n/2)
	dilute(pb, w, "ray", bounds, kids, dlo, dhi, n, 2, 2, 0)
	w.RetVoid()

	splashMain(pb, p.Threads, func(b *ir.FB) {
		b.ForConst(0, n, func(i ir.Reg) {
			b.StoreIdx(bounds, b.MulImm(i, 2), b.Const(0))              // min = 0
			b.StoreIdx(bounds, b.AddImm(b.MulImm(i, 2), 1), b.Const(n)) // max = n
			b.StoreIdx(kids, i, b.Mod(b.AddImm(i, 1), b.Const(n)))
		})
	}, func(b *ir.FB) {
		assertEq(b, hits, n, "raytrace: every ray hit its child node")
	})
	return pb.MustBuild()
}

// --- Volrend --------------------------------------------------------------------

func buildVolrend(p Params) *ir.Program {
	n := p.Size
	nt := int64(p.Threads)
	pb := ir.NewProgram("volrend")
	voxel := pb.Global("voxel", int(n))
	octree := pb.Global("octree", int(n)) // offset table into voxel
	pixel := pb.Global("pixel", int(n))
	arrived := pb.Global("arrived", 1) // the ad-hoc barrier the paper fences
	phase := pb.Global("phase", 1)
	opaque := pb.Global("opaque", 1)

	w := pb.Func("worker", 1)
	me := w.Param(0)
	one := w.Const(1)
	lo, hi := chunk(w, me, p.Threads, n)
	// Phase 1: classify voxels (branch on loaded opacity).
	localOpq := w.Move(w.Const(0))
	w.For(lo, hi, func(i ir.Reg) {
		v := w.LoadIdx(voxel, i)
		w.If(w.Gt(v, w.Const(10)), func() {
			w.MoveTo(localOpq, w.Add(localOpq, one))
		})
	})
	pq := w.AddrOf(opaque)
	w.FetchAdd(pq, localOpq)
	// Ad-hoc barrier (Volrend's hand-rolled one): count arrivals, last one
	// bumps the phase; everyone spins on the phase word.
	pa := w.AddrOf(arrived)
	pos := w.FetchAdd(pa, one)
	w.IfElse(w.Eq(pos, w.Const(nt-1)), func() {
		w.Store(arrived, w.Const(0))
		if p.Manual {
			w.Fence(ir.FenceFull)
		}
		w.Store(phase, one)
	}, func() {
		if p.Manual {
			w.Fence(ir.FenceFull)
		}
		flagWait(w, phase, ir.NoReg, 1)
	})
	// Phase 2: render through the octree offset table (indirect).
	phaseIndirect(w, octree, voxel, pixel, lo, hi)
	dilute(pb, w, "vol", voxel, octree, lo, hi, n, 2, 3, 3)
	w.RetVoid()

	splashMain(pb, p.Threads, func(b *ir.FB) {
		initRamp(b, voxel, n, 1, 3)
		initPerm(b, octree, n)
	}, func(b *ir.FB) {
		v := b.Load(opaque)
		b.Assert(b.Gt(v, b.Const(0)), "volrend: classification found opaque voxels")
		// pixel[0] = voxel[octree[0]] = voxel[n-1] = 1+3(n-1).
		pv := b.LoadIdx(pixel, b.Const(0))
		b.Assert(b.Eq(pv, b.Const(1+3*(n-1))), "volrend: render pass used the octree table")
	})
	return pb.MustBuild()
}

// --- Water-NSquared --------------------------------------------------------------

func buildWaterNSq(p Params) *ir.Program {
	n := p.Size
	pb := ir.NewProgram("water-nsq")
	posn := pb.Global("pos", int(n))
	forces := pb.Global("forces", int(n))
	vsum := pb.Global("vsum", 1)
	vlock := pb.Global("vlock", 1)
	bar := newBarrier(pb, "bar")

	w := pb.Func("worker", 1)
	me := w.Param(0)
	sense := w.Move(w.Const(0))
	lo, hi := chunk(w, me, p.Threads, n)
	// O(n^2/p) pairwise interactions: pure arithmetic on loaded positions —
	// the paper's lowest acquire ratio (7%).
	acc := w.Move(w.Const(0))
	w.For(lo, hi, func(i ir.Reg) {
		pi := w.LoadIdx(posn, i)
		f := w.Move(w.Const(0))
		w.ForConst(0, n, func(j ir.Reg) {
			pj := w.LoadIdx(posn, j)
			d := w.Sub(pi, pj)
			w.MoveTo(f, w.Add(f, w.Mul(d, d)))
		})
		w.StoreIdx(forces, i, f)
		w.MoveTo(acc, w.Add(acc, f))
	})
	lockedAdd(w, vlock, vsum, acc)
	bar.wait(w, sense, int64(p.Threads))
	// Integrate (arithmetic).
	w.For(lo, hi, func(i ir.Reg) {
		v := w.LoadIdx(forces, i)
		w.StoreIdx(posn, i, w.Add(w.LoadIdx(posn, i), w.Div(v, w.Const(1000))))
	})
	bar.wait(w, sense, int64(p.Threads))
	dilute(pb, w, "wnsq", posn, nil, lo, hi, n, 7, 6, 5)
	w.RetVoid()

	splashMain(pb, p.Threads, func(b *ir.FB) {
		initRamp(b, posn, n, 0, 5)
	}, func(b *ir.FB) {
		v := b.Load(vsum)
		b.Assert(b.Gt(v, b.Const(0)), "water-nsq: potential accumulated")
	})
	return pb.MustBuild()
}

// --- Water-Spatial ----------------------------------------------------------------

func buildWaterSp(p Params) *ir.Program {
	n := p.Size
	cells := int64(4)
	pb := ir.NewProgram("water-sp")
	mol := pb.Global("mol", int(n))
	cellstart := pb.Global("cellstart", int(cells)) // cell list heads
	out := pb.Global("out", int(n))
	bar := newBarrier(pb, "bar")
	moved := pb.Global("moved", 1)

	w := pb.Func("worker", 1)
	me := w.Param(0)
	sense := w.Move(w.Const(0))
	one := w.Const(1)
	perCell := n / cells
	// Each thread owns cells (round robin); it reads the cell's start
	// index (one indirect read per cell) then streams arithmetically.
	w.ForConst(0, cells, func(c ir.Reg) {
		mine := w.Eq(w.Mod(c, w.Const(int64(p.Threads))), me)
		w.If(mine, func() {
			start := w.LoadIdx(cellstart, c) // indirect: cell list head
			w.For(start, w.Add(start, w.Const(perCell)), func(i ir.Reg) {
				v := w.LoadIdx(mol, i)
				w.StoreIdx(out, i, w.AddImm(w.MulImm(v, 2), 1))
			})
			pm := w.AddrOf(moved)
			w.FetchAdd(pm, w.Const(perCell))
		})
	})
	bar.wait(w, sense, int64(p.Threads))
	// Second sweep: straight arithmetic over my chunk.
	lo, hi := chunk(w, me, p.Threads, n)
	w.For(lo, hi, func(i ir.Reg) {
		v := w.LoadIdx(out, i)
		w.StoreIdx(mol, i, w.Add(v, one))
	})
	bar.wait(w, sense, int64(p.Threads))
	dilute(pb, w, "wsp", mol, nil, lo, hi, n, 6, 3, 1)
	w.RetVoid()

	splashMain(pb, p.Threads, func(b *ir.FB) {
		initRamp(b, mol, n, 2, 1)
		b.ForConst(0, cells, func(c ir.Reg) {
			b.StoreIdx(cellstart, c, b.Mul(c, b.Const(perCell)))
		})
	}, func(b *ir.FB) {
		assertEq(b, moved, n, "water-sp: every molecule binned exactly once")
	})
	return pb.MustBuild()
}

// ensure fmt is linked for future debugging helpers.
var _ = fmt.Sprintf
