package progs

import "fenceplace/internal/ir"

// The Extra family: small lock-free kernels added as the hand-built twins
// of the real-Go frontend's testdata corpus (testdata/gosource). Each has
// a line-for-line Go counterpart that internal/frontend lowers onto the
// IR; the differential tests pin that the lowered program certifies with
// outcome sets and verdicts identical to the builder-built original here.
// They are deliberately outside the Table II kernel set so the paper's
// registry counts stay untouched.

func init() {
	register(&Meta{
		Name: "treiber", Kind: Extra,
		Source: "Treiber, IBM TR RJ5118 1986",
		Desc:   "index-based Treiber stack: CAS push and pop over a next-link array",
		Build:  buildTreiber, Defaults: Params{Threads: 2, Size: 1},
	})
	register(&Meta{
		Name: "spinlock", Kind: Extra,
		Source: "test-and-set lock, folklore",
		Desc:   "CAS spin lock protecting a shared counter",
		Build:  buildSpinlock, Defaults: Params{Threads: 2, Size: 2},
	})
}

// --- Treiber stack -----------------------------------------------------------

// buildTreiber is the hand-built original of testdata/gosource/treiber.go.
// The stack is index-based: top holds the id of the top node (0 is the
// empty sentinel), next[id] links downward. Two workers each push their own
// node (id = me+1) and then pop one; main asserts the popped ids are a
// permutation of the pushed ones. Synchronization is entirely CAS-carried,
// so the program is TSO-safe without any w→r fence.
func buildTreiber(p Params) *ir.Program {
	pb := ir.NewProgram("treiber")
	top := pb.Global("top", 1)
	next := pb.Global("next", 3)
	popped := pb.Global("popped", 2)

	w := pb.Func("worker", 1)
	me := w.Param(0)
	zero := w.Const(0)
	id := w.Add(me, w.Const(1))
	// push(id): link next[id] to the observed top, then CAS it in.
	w.While(func() ir.Reg {
		old := w.Load(top)
		w.StoreIdx(next, id, old)
		ok := w.CAS(w.AddrOf(top), old, id)
		return w.Eq(ok, zero)
	}, func() {})
	// pop(): read top, follow its next link, CAS top down to it. The
	// stack can never be observed empty here (each worker pops at most
	// once, after its own push), but the empty branch is lowered anyway —
	// that is what the Go twin's code says.
	done := w.Move(zero)
	w.While(func() ir.Reg { return w.Eq(done, zero) }, func() {
		old := w.Load(top)
		w.IfElse(w.Eq(old, zero), func() {
			w.StoreIdx(popped, me, w.Const(-1))
			w.MoveTo(done, w.Const(1))
		}, func() {
			nxt := w.LoadIdx(next, old)
			ok := w.CAS(w.AddrOf(top), old, nxt)
			w.If(w.Ne(ok, zero), func() {
				w.StoreIdx(popped, me, old)
				w.MoveTo(done, w.Const(1))
			})
		})
	})
	w.RetVoid()

	spawnWorkers(pb, "worker", 2, func(b *ir.FB) {
		sum := b.Add(b.LoadIdx(popped, b.Const(0)), b.LoadIdx(popped, b.Const(1)))
		b.Assert(b.Eq(sum, b.Const(3)), "treiber: popped ids are a permutation of the pushed ids")
	})
	return pb.MustBuild()
}

// --- Test-and-set spin lock --------------------------------------------------

// buildSpinlock is the hand-built original of testdata/gosource/spinlock.go:
// two workers each take a CAS spin lock p.Size times and increment a shared
// counter inside the critical section. RMW-carried synchronization, so the
// unfenced build is already TSO-safe (the paper's "only w→r needs MFENCE").
func buildSpinlock(p Params) *ir.Program {
	pb := ir.NewProgram("spinlock")
	lock := pb.Global("lock", 1)
	ctr := pb.Global("ctr", 1)

	w := pb.Func("worker", 1)
	zero := w.Const(0)
	one := w.Const(1)
	w.ForConst(0, p.Size, func(i ir.Reg) {
		w.While(func() ir.Reg {
			ok := w.CAS(w.AddrOf(lock), zero, one)
			return w.Eq(ok, zero)
		}, func() {})
		w.Store(ctr, w.Add(w.Load(ctr), one))
		w.Store(lock, zero)
	})
	w.RetVoid()

	spawnWorkers(pb, "worker", 2, func(b *ir.FB) {
		assertEq(b, ctr, 2*p.Size, "spinlock: no lost increments in the critical section")
	})
	return pb.MustBuild()
}
