package exp

import (
	"errors"
	"fmt"

	"fenceplace"
	"fenceplace/internal/mc"
	"fenceplace/internal/par"
	"fenceplace/internal/progs"
	"fenceplace/internal/stats"
)

// CertStatus classifies one certification attempt.
type CertStatus int

const (
	// CertOK: the variant's instrumented program is SC-equivalent.
	CertOK CertStatus = iota
	// CertViolation: a TSO-only final state exists (fences insufficient —
	// or the program is not DRF, voiding the pruned variants' guarantee).
	CertViolation
	// CertBudget: the state space outgrew the budget; verdict unknown.
	CertBudget
	// CertError: the exploration failed outright.
	CertError
)

func (s CertStatus) String() string {
	switch s {
	case CertOK:
		return "certified"
	case CertViolation:
		return "VIOLATION"
	case CertBudget:
		return "budget"
	case CertError:
		return "error"
	}
	return fmt.Sprintf("certstatus(%d)", int(s))
}

// CertCell is the certification column entry for one (program, variant).
type CertCell struct {
	Status CertStatus
	Report *mc.Report // nil unless the exploration completed
	Err    error
}

func (c CertCell) String() string {
	switch c.Status {
	case CertOK:
		return fmt.Sprintf("certified (%d states)", c.Report.VisitedTSO)
	case CertViolation:
		return fmt.Sprintf("VIOLATION (%d TSO-only)", len(c.Report.Violations))
	case CertBudget:
		return "budget exceeded"
	default:
		return fmt.Sprintf("error: %v", c.Err)
	}
}

// Certify model-checks the variant's instrumented build against the legacy
// build's SC semantics, whole-program (main spawns the workers). Rows
// produced by Analyze share one SC exploration across every variant: the
// baseline is memoized in the row's analyzer session, so only the TSO side
// runs per variant.
func (r *Row) Certify(v Variant, cfg mc.Config) CertCell {
	rep, err := r.certify(v, cfg)
	switch {
	case errors.Is(err, mc.ErrTruncated):
		return CertCell{Status: CertBudget, Err: err}
	case err != nil:
		return CertCell{Status: CertError, Err: err}
	case rep.Equivalent:
		return CertCell{Status: CertOK, Report: rep}
	default:
		return CertCell{Status: CertViolation, Report: rep}
	}
}

// certify runs the variant's TSO exploration against the shared SC
// baseline when the row carries an analyzer, or the standalone
// two-exploration certification when it does not.
func (r *Row) certify(v Variant, cfg mc.Config) (*mc.Report, error) {
	if r.az == nil {
		return mc.Certify(r.Prog, r.Inst[v], nil, cfg)
	}
	base, err := r.az.Baseline(nil, fenceplace.CertOptions{
		MaxStates: cfg.MaxStates,
		Workers:   cfg.Workers,
		BufferCap: cfg.BufferCap,
		MemoryCap: cfg.MemoryCap,
		ExactSeen: cfg.ExactSeen,
		NoPOR:     cfg.NoPOR,
	})
	if err != nil {
		return nil, err
	}
	return mc.CertifyAgainst(base, r.Inst[v], cfg)
}

// CertTable renders the certification column of the evaluation: for each
// program and variant, whether the placed fences provably restore SC.
// Exhaustive certification only scales to small instantiations, so callers
// analyze the corpus at reduced parameters (cmd/paperbench uses Threads=2)
// and bound the exploration with maxStates. Per row, the SC state space is
// explored once (the session baseline) and the four variant TSO
// explorations fan out over it concurrently.
func CertTable(rows []*Row, maxStates int64) string {
	t := stats.NewTable("program", "Manual", "Pensieve", "Address+Control", "Control")
	cfg := mc.Config{MaxStates: maxStates}
	for _, r := range rows {
		// The concurrent Certify calls collapse onto one SC exploration:
		// the session baseline is a per-key sync.Once, so the first caller
		// builds it and the rest block on it.
		cells := make([]string, len(Variants))
		par.ForEach(len(Variants), len(Variants), func(i int) {
			cells[i] = r.Certify(Variants[i], cfg).String()
		})
		t.Add(append([]string{r.Meta.Name}, cells...)...)
	}
	return "Certification: exhaustive SC-equivalence of the placed fences\n" +
		"(model checker: TSO final states of the instrumented build vs SC final states\n" +
		"of the legacy build; a VIOLATION on a pruned variant means the program is\n" +
		"not DRF or the fences are insufficient)\n" + t.String()
}

// CertSet returns corpus programs small enough for exhaustive
// certification at reduced parameters: the Table II synchronization
// kernels, whose whole state spaces fit comfortably in the budget.
func CertSet() []*progs.Meta {
	return progs.ByKind(progs.SyncKernel)
}
