package exp

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"fenceplace"
	"fenceplace/corpus"
	"fenceplace/internal/mc"
	"fenceplace/internal/par"
	"fenceplace/internal/progs"
	"fenceplace/internal/store"
)

// CertStatus classifies one certification attempt.
type CertStatus int

const (
	// CertOK: the variant's instrumented program is SC-equivalent.
	CertOK CertStatus = iota
	// CertViolation: a TSO-only final state exists (fences insufficient —
	// or the program is not DRF, voiding the pruned variants' guarantee).
	CertViolation
	// CertBudget: the state space outgrew the budget; verdict unknown.
	CertBudget
	// CertError: the exploration failed outright.
	CertError
)

func (s CertStatus) String() string {
	switch s {
	case CertOK:
		return "certified"
	case CertViolation:
		return "VIOLATION"
	case CertBudget:
		return "budget"
	case CertError:
		return "error"
	}
	return fmt.Sprintf("certstatus(%d)", int(s))
}

// CertCell is the certification column entry for one (program, variant).
type CertCell struct {
	Status CertStatus
	Report *mc.Report // nil unless the exploration completed
	Err    error
}

func (c CertCell) String() string {
	switch c.Status {
	case CertOK:
		return fmt.Sprintf("certified (%d states)", c.Report.VisitedTSO)
	case CertViolation:
		return fmt.Sprintf("VIOLATION (%d TSO-only)", len(c.Report.Violations))
	case CertBudget:
		return "budget exceeded"
	default:
		return fmt.Sprintf("error: %v", c.Err)
	}
}

// Certify model-checks the variant's instrumented build against the legacy
// build's SC semantics, whole-program (main spawns the workers). Rows
// produced by Analyze share one SC exploration across every variant: the
// baseline is memoized in the row's analyzer session, so only the TSO side
// runs per variant. With opt.CacheDir (or $FENCEPLACE_CACHE_DIR) set, the
// baseline additionally round-trips through the persistent store, so a
// warm store serves the SC side without exploring at all.
func (r *Row) Certify(v Variant, opt fenceplace.CertOptions) CertCell {
	return r.CertifyCtx(context.Background(), v, opt.Options()...)
}

// CertifyCtx is Certify under the unified option set and an explicit
// context; a cancelled certification surfaces as a CertError cell carrying
// ctx's error.
func (r *Row) CertifyCtx(ctx context.Context, v Variant, opts ...fenceplace.Option) CertCell {
	rep, err := r.certifyCtx(ctx, v, opts)
	switch {
	case errors.Is(err, mc.ErrTruncated):
		return CertCell{Status: CertBudget, Err: err}
	case err != nil:
		return CertCell{Status: CertError, Err: err}
	case rep.Equivalent:
		return CertCell{Status: CertOK, Report: rep}
	default:
		return CertCell{Status: CertViolation, Report: rep}
	}
}

// certifyCtx runs the variant's TSO exploration against the shared SC
// baseline when the row carries an analyzer, or hands a synthetic Result
// to the facade when it does not — one code path owns the baseline
// loading and option mapping either way.
func (r *Row) certifyCtx(ctx context.Context, v Variant, opts []fenceplace.Option) (*mc.Report, error) {
	if r.az == nil {
		res := &fenceplace.Result{Prog: r.Prog, Instrumented: r.Inst[v]}
		return fenceplace.CertifyCtx(ctx, res, nil, opts...)
	}
	return r.az.CertifyProgramCtx(ctx, r.Inst[v], nil, opts...)
}

// Cert converts a certification cell into its plain-data report form.
func (c CertCell) Cert() *corpus.Cert {
	out := &corpus.Cert{}
	switch c.Status {
	case CertOK:
		out.Status = corpus.CertCertified
	case CertViolation:
		out.Status = corpus.CertViolation
	case CertBudget:
		out.Status = corpus.CertBudget
	default:
		out.Status = corpus.CertError
	}
	if c.Err != nil {
		out.Err = c.Err.Error()
	}
	if c.Report != nil {
		out.SCOutcomes = c.Report.SCOutcomes
		out.TSOOutcomes = c.Report.TSOOutcomes
		out.VisitedSC = c.Report.VisitedSC
		out.VisitedTSO = c.Report.VisitedTSO
		out.Violations = len(c.Report.Violations)
		out.Counterexample = c.Report.Counterexample()
	}
	return out
}

// CertTable renders the certification column of the evaluation: for each
// program and variant, whether the placed fences provably restore SC.
// Exhaustive certification only scales to small instantiations, so callers
// analyze the corpus at reduced parameters (cmd/paperbench uses Threads=2)
// and bound the exploration with opt.MaxStates. Per row, the SC state
// space is explored once (the session baseline) and the four variant TSO
// explorations fan out over it concurrently. The table itself is a corpus
// view over the certified rows' plain data.
//
// The table's footer reports how warm the run was: the number of SC
// explorations actually performed, and — when a baseline store is in play
// — its hit/miss/quarantine deltas. A fully warm store makes the footer
// read "SC explorations: 0", which CI asserts on its second run.
func CertTable(rows []*Row, opt fenceplace.CertOptions) string {
	scBefore := mc.SCExploreRuns()
	// Resolve the option set — the cache directory in particular — exactly
	// once for the whole table: every certification below sees the same
	// store even if the environment changes mid-run.
	dir := opt.EffectiveCacheDir()
	opts := fenceplace.Resolved(append(opt.Options(), fenceplace.WithCacheDir(dir))...)
	var st *store.Store
	var stBefore store.Stats
	if dir != "" {
		if st, _ = store.Open(dir); st != nil {
			stBefore = st.Stats()
		}
	}

	rep := &corpus.Report{Version: corpus.Version, Source: "cert"}
	for idx, r := range rows {
		// The concurrent Certify calls collapse onto one SC exploration:
		// the session baseline is a per-key sync.Once, so the first caller
		// builds (or loads) it and the rest block on it.
		certs := make([]*corpus.Cert, len(Variants))
		par.ForEach(len(Variants), len(Variants), func(i int) {
			certs[i] = r.CertifyCtx(context.Background(), Variants[i], opts...).Cert()
		})
		row := corpus.Row{Index: idx, Program: r.Meta.Name, EscReads: r.EscReads}
		for i, v := range Variants {
			row.Variants = append(row.Variants, corpus.Variant{
				Name:       v.String(),
				Analyzed:   v != Manual,
				FullFences: r.Fences(v),
				Cert:       certs[i],
			})
		}
		rep.Rows = append(rep.Rows, row)
	}

	var sb strings.Builder
	sb.WriteString(corpus.CertTable(rep))
	fmt.Fprintf(&sb, "\nSC explorations: %d\n", mc.SCExploreRuns()-scBefore)
	if st != nil {
		d := st.Stats().Sub(stBefore)
		fmt.Fprintf(&sb, "baseline cache (%s): %d warm hits, %d cold misses, %d written, %d quarantined\n",
			st.Dir(), d.Hits, d.Misses, d.Puts, d.Quarantined)
	}
	return sb.String()
}

// CertSet returns corpus programs small enough for exhaustive
// certification at reduced parameters: the Table II synchronization
// kernels, whose whole state spaces fit comfortably in the budget.
func CertSet() []*progs.Meta {
	return progs.ByKind(progs.SyncKernel)
}
