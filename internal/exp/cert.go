package exp

import (
	"errors"
	"fmt"

	"fenceplace/internal/mc"
	"fenceplace/internal/progs"
	"fenceplace/internal/stats"
)

// CertStatus classifies one certification attempt.
type CertStatus int

const (
	// CertOK: the variant's instrumented program is SC-equivalent.
	CertOK CertStatus = iota
	// CertViolation: a TSO-only final state exists (fences insufficient —
	// or the program is not DRF, voiding the pruned variants' guarantee).
	CertViolation
	// CertBudget: the state space outgrew the budget; verdict unknown.
	CertBudget
	// CertError: the exploration failed outright.
	CertError
)

func (s CertStatus) String() string {
	switch s {
	case CertOK:
		return "certified"
	case CertViolation:
		return "VIOLATION"
	case CertBudget:
		return "budget"
	case CertError:
		return "error"
	}
	return fmt.Sprintf("certstatus(%d)", int(s))
}

// CertCell is the certification column entry for one (program, variant).
type CertCell struct {
	Status CertStatus
	Report *mc.Report // nil unless the exploration completed
	Err    error
}

func (c CertCell) String() string {
	switch c.Status {
	case CertOK:
		return fmt.Sprintf("certified (%d states)", c.Report.VisitedTSO)
	case CertViolation:
		return fmt.Sprintf("VIOLATION (%d TSO-only)", len(c.Report.Violations))
	case CertBudget:
		return "budget exceeded"
	default:
		return fmt.Sprintf("error: %v", c.Err)
	}
}

// Certify model-checks the variant's instrumented build against the legacy
// build's SC semantics, whole-program (main spawns the workers).
func (r *Row) Certify(v Variant, cfg mc.Config) CertCell {
	rep, err := mc.Certify(r.Prog, r.Inst[v], nil, cfg)
	switch {
	case errors.Is(err, mc.ErrTruncated):
		return CertCell{Status: CertBudget, Err: err}
	case err != nil:
		return CertCell{Status: CertError, Err: err}
	case rep.Equivalent:
		return CertCell{Status: CertOK, Report: rep}
	default:
		return CertCell{Status: CertViolation, Report: rep}
	}
}

// CertTable renders the certification column of the evaluation: for each
// program and variant, whether the placed fences provably restore SC.
// Exhaustive certification only scales to small instantiations, so callers
// analyze the corpus at reduced parameters (cmd/paperbench uses Threads=2)
// and bound the exploration with maxStates.
func CertTable(rows []*Row, maxStates int64) string {
	t := stats.NewTable("program", "Manual", "Pensieve", "Address+Control", "Control")
	cfg := mc.Config{MaxStates: maxStates}
	for _, r := range rows {
		cells := []string{r.Meta.Name}
		for _, v := range Variants {
			cells = append(cells, r.Certify(v, cfg).String())
		}
		t.Add(cells...)
	}
	return "Certification: exhaustive SC-equivalence of the placed fences\n" +
		"(model checker: TSO final states of the instrumented build vs SC final states\n" +
		"of the legacy build; a VIOLATION on a pruned variant means the program is\n" +
		"not DRF or the fences are insufficient)\n" + t.String()
}

// CertSet returns corpus programs small enough for exhaustive
// certification at reduced parameters: the Table II synchronization
// kernels, whose whole state spaces fit comfortably in the budget.
func CertSet() []*progs.Meta {
	return progs.ByKind(progs.SyncKernel)
}
