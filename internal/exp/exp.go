// Package exp is the experiment harness: it reruns the paper's evaluation
// (§5) over the corpus of package progs and renders every table and figure
// as text. One Row per program carries the whole static pipeline — run
// through the public fenceplace.Analyzer, whose shared pass session
// computes the strategy-independent passes once for all three variants —
// and the dynamic experiment executes the instrumented programs under the
// TSO simulator. AnalyzeAll fans the corpus out over a worker pool.
package exp

import (
	"fmt"
	"runtime"

	"fenceplace"
	"fenceplace/internal/ir"
	"fenceplace/internal/orders"
	"fenceplace/internal/par"
	"fenceplace/internal/progs"
	"fenceplace/internal/tso"
)

// Variant names a fence-placement strategy in the paper's comparison.
type Variant int

const (
	// Manual is the expert baseline: the fences written in the program.
	Manual Variant = iota
	// Pensieve is Fang et al.'s approximation with no acquire knowledge.
	Pensieve
	// AddressControl prunes with Listing 3's conservative acquire set.
	AddressControl
	// Control prunes with Listing 1's acquire set.
	Control
	numVariants
)

func (v Variant) String() string {
	switch v {
	case Manual:
		return "Manual"
	case Pensieve:
		return "Pensieve"
	case AddressControl:
		return "Address+Control"
	case Control:
		return "Control"
	}
	return fmt.Sprintf("variant(%d)", int(v))
}

// Variants lists the strategies in the paper's display order.
var Variants = [...]Variant{Manual, Pensieve, AddressControl, Control}

// Analyzed lists the variants the static pipeline produces (all but the
// expert Manual baseline).
var Analyzed = [...]Variant{Pensieve, AddressControl, Control}

func variantOf(s fenceplace.Strategy) Variant {
	switch s {
	case fenceplace.AddressControl:
		return AddressControl
	case fenceplace.Control:
		return Control
	}
	return Pensieve
}

// Row is the full analysis record for one program.
type Row struct {
	Meta *progs.Meta
	Prog *ir.Program // the unfenced (legacy) build

	EscReads int // potentially-escaping reads: Figure 7's denominator

	Res map[Variant]*fenceplace.Result // per analyzed variant

	Inst map[Variant]*ir.Program // instrumented clones (Manual = expert build)

	// az is the producing analyzer; certification draws the shared SC
	// baseline from its session so all four variants (including the
	// expert Manual build) cost one SC exploration. Nil for hand-built
	// rows, which fall back to per-variant baselines.
	az *fenceplace.Analyzer
}

// Analyze runs the complete static pipeline on one corpus program: one
// Analyzer session shared by all three variants.
func Analyze(m *progs.Meta, p progs.Params) *Row { return analyzeWith(m, p, 0) }

// analyzeWith is Analyze with an explicit per-function worker bound for
// the inner session (0 = GOMAXPROCS). Corpus-parallel callers pass 1 so
// the program-level fan-out is the only one competing for cores.
func analyzeWith(m *progs.Meta, p progs.Params, innerWorkers int) *Row {
	prog := m.Build(p)
	var opts []fenceplace.AnalyzerOption
	if innerWorkers > 0 {
		opts = append(opts, fenceplace.WithWorkers(innerWorkers))
	}
	az := fenceplace.NewAnalyzer(prog, opts...)
	results := az.AnalyzeAll(
		fenceplace.PensieveOnly, fenceplace.AddressControl, fenceplace.Control)

	row := &Row{
		Meta: m, Prog: prog,
		Res:  map[Variant]*fenceplace.Result{},
		Inst: map[Variant]*ir.Program{},
		az:   az,
	}
	for _, res := range results {
		v := variantOf(res.Strategy)
		row.Res[v] = res
		row.Inst[v] = res.Instrumented
	}
	row.EscReads = results[0].EscapingReads
	pm := p
	pm.Manual = true
	row.Inst[Manual] = m.Build(pm)
	return row
}

// Orderings returns the variant's enforced ordering set (for Pensieve: the
// full generated set), or nil for variants without an analysis (Manual).
func (r *Row) Orderings(v Variant) *orders.Set {
	if res, ok := r.Res[v]; ok {
		return res.Kept()
	}
	return nil
}

// VerifyPlans checks that every plan covers every ordering of its own set
// (the static soundness obligation).
func (r *Row) VerifyPlans() error {
	for _, v := range Analyzed {
		if err := r.Res[v].Verify(); err != nil {
			return fmt.Errorf("%s/%s: %w", r.Meta.Name, v, err)
		}
	}
	return nil
}

// Fences returns the number of full fences the variant places (for Manual:
// the fences in the expert build).
func (r *Row) Fences(v Variant) int {
	if v == Manual {
		full, _ := r.Inst[Manual].CountFences(false)
		return full
	}
	return r.Res[v].FullFences
}

// Acquires returns the number of detected sync reads for a pruned variant.
func (r *Row) Acquires(v Variant) int {
	if res, ok := r.Res[v]; ok {
		return len(res.Acquires)
	}
	return 0
}

// DynResult is one simulated execution.
type DynResult struct {
	Cycles     int64
	FullFences int64
	Failed     bool
	Detail     string
}

// RunDynamic executes the variant's instrumented program under the TSO
// simulator with the deterministic parallel-time scheduler and returns the
// simulated execution time.
func (r *Row) RunDynamic(v Variant, seed int64) DynResult {
	out := tso.Run(r.Inst[v], tso.Config{
		Mode:   tso.TSO,
		Sched:  tso.MinTime,
		Policy: tso.DrainRandom,
		Seed:   seed,
	})
	d := DynResult{Cycles: out.MaxCycles, FullFences: out.FullFences, Failed: out.Failed()}
	if d.Failed {
		d.Detail = fmt.Sprintf("failures=%v err=%v deadlock=%v", out.Failures, out.Err, out.Deadlock)
	}
	return d
}

// AnalyzeAll analyzes the full evaluation set (Figures 7-10 programs) with
// one worker per core.
func AnalyzeAll(p progs.Params) []*Row { return AnalyzeAllN(p, 0) }

// AnalyzeAllN is AnalyzeAll with an explicit corpus-level worker count
// (n < 1 means GOMAXPROCS). Programs are the unit of parallelism: each
// gets its own single-threaded Analyzer session, so the worker count is
// the run's total parallelism (-j 1 really is sequential) and the inner
// per-function pools never oversubscribe the cores. Rows come back in
// corpus order.
func AnalyzeAllN(p progs.Params, workers int) []*Row {
	set := progs.EvalSet()
	rows := make([]*Row, len(set))
	w := workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	par.ForEach(len(set), w, func(i int) {
		pp := p
		if pp.Threads == 0 {
			pp = set[i].Defaults
		}
		rows[i] = analyzeWith(set[i], pp, 1)
	})
	return rows
}
