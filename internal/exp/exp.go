// Package exp is the experiment harness: it reruns the paper's evaluation
// (§5) over the corpus of package progs and renders every table and figure
// as text. One Row per program carries the whole static pipeline (escape →
// acquire detection per variant → ordering generation → pruning → fence
// minimization → instrumented clones), and the dynamic experiment executes
// the instrumented programs under the TSO simulator.
package exp

import (
	"fmt"

	"fenceplace/internal/acquire"
	"fenceplace/internal/alias"
	"fenceplace/internal/escape"
	"fenceplace/internal/fence"
	"fenceplace/internal/ir"
	"fenceplace/internal/orders"
	"fenceplace/internal/progs"
	"fenceplace/internal/tso"
)

// Variant names a fence-placement strategy in the paper's comparison.
type Variant int

const (
	// Manual is the expert baseline: the fences written in the program.
	Manual Variant = iota
	// Pensieve is Fang et al.'s approximation with no acquire knowledge.
	Pensieve
	// AddressControl prunes with Listing 3's conservative acquire set.
	AddressControl
	// Control prunes with Listing 1's acquire set.
	Control
	numVariants
)

func (v Variant) String() string {
	switch v {
	case Manual:
		return "Manual"
	case Pensieve:
		return "Pensieve"
	case AddressControl:
		return "Address+Control"
	case Control:
		return "Control"
	}
	return fmt.Sprintf("variant(%d)", int(v))
}

// Variants lists the strategies in the paper's display order.
var Variants = [...]Variant{Manual, Pensieve, AddressControl, Control}

// Row is the full analysis record for one program.
type Row struct {
	Meta *progs.Meta
	Prog *ir.Program // the unfenced (legacy) build

	EscReads int // potentially-escaping reads: Figure 7's denominator

	Acq map[Variant]*acquire.Result // Control / AddressControl
	Ord map[Variant]*orders.Set     // Pensieve (unpruned) + pruned variants
	Pln map[Variant]*fence.Plan

	Inst map[Variant]*ir.Program // instrumented clones (Manual = expert build)
}

// Analyze runs the complete static pipeline on one corpus program.
func Analyze(m *progs.Meta, p progs.Params) *Row {
	prog := m.Build(p)
	al := alias.Analyze(prog)
	esc := escape.Analyze(prog, al)

	row := &Row{
		Meta: m, Prog: prog,
		EscReads: esc.CountReads(),
		Acq:      map[Variant]*acquire.Result{},
		Ord:      map[Variant]*orders.Set{},
		Pln:      map[Variant]*fence.Plan{},
		Inst:     map[Variant]*ir.Program{},
	}
	row.Acq[Control] = acquire.Detect(prog, al, esc, acquire.Control)
	row.Acq[AddressControl] = acquire.Detect(prog, al, esc, acquire.AddressControl)

	full := orders.Generate(prog, esc)
	row.Ord[Pensieve] = full
	row.Ord[Control] = full.Prune(row.Acq[Control])
	row.Ord[AddressControl] = full.Prune(row.Acq[AddressControl])

	// Pensieve has no acquire knowledge: every function with an escaping
	// read gets an entry fence (§4.4). The pruned variants place one only
	// in functions that contain detected synchronization reads.
	row.Pln[Pensieve] = fence.Minimize(full, fence.Options{
		EntryFence: func(fn *ir.Fn) bool { return len(esc.EscapingReads(fn)) > 0 },
	})
	for _, v := range []Variant{Control, AddressControl} {
		acq := row.Acq[v]
		row.Pln[v] = fence.Minimize(row.Ord[v], fence.Options{
			EntryFence: acq.FnHasSync,
		})
	}
	for _, v := range []Variant{Pensieve, Control, AddressControl} {
		inst, _ := row.Pln[v].Apply()
		row.Inst[v] = inst
	}
	pm := p
	pm.Manual = true
	row.Inst[Manual] = m.Build(pm)
	return row
}

// VerifyPlans checks that every plan covers every ordering of its own set
// (the static soundness obligation).
func (r *Row) VerifyPlans() error {
	for _, v := range []Variant{Pensieve, Control, AddressControl} {
		inst, imap := r.Pln[v].Apply()
		if err := fence.Verify(r.Ord[v], fence.Options{}, inst, imap); err != nil {
			return fmt.Errorf("%s/%s: %w", r.Meta.Name, v, err)
		}
	}
	return nil
}

// Fences returns the number of full fences the variant places (for Manual:
// the fences in the expert build).
func (r *Row) Fences(v Variant) int {
	if v == Manual {
		full, _ := r.Inst[Manual].CountFences(false)
		return full
	}
	return r.Pln[v].FullFences()
}

// Acquires returns the number of detected sync reads for a pruned variant.
func (r *Row) Acquires(v Variant) int {
	if a, ok := r.Acq[v]; ok {
		return a.Count()
	}
	return 0
}

// DynResult is one simulated execution.
type DynResult struct {
	Cycles     int64
	FullFences int64
	Failed     bool
	Detail     string
}

// RunDynamic executes the variant's instrumented program under the TSO
// simulator with the deterministic parallel-time scheduler and returns the
// simulated execution time.
func (r *Row) RunDynamic(v Variant, seed int64) DynResult {
	out := tso.Run(r.Inst[v], tso.Config{
		Mode:   tso.TSO,
		Sched:  tso.MinTime,
		Policy: tso.DrainRandom,
		Seed:   seed,
	})
	d := DynResult{Cycles: out.MaxCycles, FullFences: out.FullFences, Failed: out.Failed()}
	if d.Failed {
		d.Detail = fmt.Sprintf("failures=%v err=%v deadlock=%v", out.Failures, out.Err, out.Deadlock)
	}
	return d
}

// AnalyzeAll analyzes the full evaluation set (Figures 7-10 programs).
func AnalyzeAll(p progs.Params) []*Row {
	var rows []*Row
	for _, m := range progs.EvalSet() {
		pp := p
		if pp.Threads == 0 {
			pp = m.Defaults
		}
		rows = append(rows, Analyze(m, pp))
	}
	return rows
}
