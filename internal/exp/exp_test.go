package exp

import (
	"math"
	"strings"
	"sync"
	"testing"

	"fenceplace"
	"fenceplace/internal/ir"
	"fenceplace/internal/orders"
	"fenceplace/internal/progs"
)

var (
	rowsOnce sync.Once
	rowsAll  []*Row
)

// evalRows analyzes the full evaluation set once per test binary.
func evalRows(t *testing.T) []*Row {
	t.Helper()
	rowsOnce.Do(func() {
		rowsAll = AnalyzeAll(progs.Params{})
	})
	return rowsAll
}

func TestPlansVerifyAcrossCorpus(t *testing.T) {
	for _, r := range evalRows(t) {
		if err := r.VerifyPlans(); err != nil {
			t.Errorf("%v", err)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	// The paper's Figure 7 shape: Control flags far fewer reads than
	// Address+Control, which flags far fewer than everything.
	var ctl, ac []float64
	for _, r := range evalRows(t) {
		if r.EscReads == 0 {
			t.Fatalf("%s: no escaping reads", r.Meta.Name)
		}
		c := float64(r.Acquires(Control)) / float64(r.EscReads)
		a := float64(r.Acquires(AddressControl)) / float64(r.EscReads)
		if c > a+1e-9 {
			t.Errorf("%s: Control ratio %.2f exceeds A+C ratio %.2f", r.Meta.Name, c, a)
		}
		if a > 1 || c > 1 {
			t.Errorf("%s: acquire ratio above 1", r.Meta.Name)
		}
		if c == 0 {
			t.Errorf("%s: no control acquires at all — every program synchronizes", r.Meta.Name)
		}
		ctl = append(ctl, c)
		ac = append(ac, a)
	}
	gc, ga := geomean(ctl), geomean(ac)
	if !(gc > 0.05 && gc < 0.45) {
		t.Errorf("Control geomean %.2f outside the paper's ballpark (≈0.18)", gc)
	}
	if !(ga > 0.30 && ga < 0.90) {
		t.Errorf("A+C geomean %.2f outside the paper's ballpark (≈0.60)", ga)
	}
	if ga <= gc {
		t.Errorf("A+C geomean %.2f not above Control geomean %.2f", ga, gc)
	}
}

func geomean(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

func TestFig8Shape(t *testing.T) {
	rrDominant := 0
	for _, r := range evalRows(t) {
		full := r.Orderings(Pensieve)
		ctl := r.Orderings(Control)
		ac := r.Orderings(AddressControl)
		if ctl.Total() > ac.Total() || ac.Total() > full.Total() {
			t.Errorf("%s: ordering monotonicity violated: %d / %d / %d",
				r.Meta.Name, ctl.Total(), ac.Total(), full.Total())
		}
		// Pruning must not touch →w orderings.
		if ctl.Count(orders.RW) != full.Count(orders.RW) || ctl.Count(orders.WW) != full.Count(orders.WW) {
			t.Errorf("%s: pruning modified →w orderings", r.Meta.Name)
		}
		if full.Count(orders.RR) > full.Total()/2 {
			rrDominant++
		}
	}
	// The paper: r→r orderings form the majority in all but two programs.
	if rrDominant < len(evalRows(t))*2/3 {
		t.Errorf("r->r dominant in only %d of %d programs", rrDominant, len(evalRows(t)))
	}
}

func TestFig9Shape(t *testing.T) {
	for _, r := range evalRows(t) {
		p := r.Fences(Pensieve)
		a := r.Fences(AddressControl)
		c := r.Fences(Control)
		if c > a || a > p {
			t.Errorf("%s: fence monotonicity violated: Control %d, A+C %d, Pensieve %d",
				r.Meta.Name, c, a, p)
		}
		if p == 0 {
			t.Errorf("%s: Pensieve placed no fences", r.Meta.Name)
		}
	}
}

func TestInstrumentedProgramsCorrectUnderTSO(t *testing.T) {
	// The central soundness claim: programs instrumented by any variant
	// keep their assertions under TSO. (Manual is covered in progs tests.)
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, r := range evalRows(t) {
		for _, v := range []Variant{Pensieve, AddressControl, Control} {
			d := r.RunDynamic(v, 1)
			if d.Failed {
				t.Errorf("%s/%s: %s", r.Meta.Name, v, d.Detail)
			}
		}
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	report, err := Fig10(evalRows(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "geomean") {
		t.Fatal("missing geomean row")
	}
	// Recompute the geomeans directly for the shape assertions.
	var pens, ac, ctl []float64
	for _, r := range evalRows(t) {
		base := float64(r.RunDynamic(Manual, 1).Cycles)
		pens = append(pens, float64(r.RunDynamic(Pensieve, 1).Cycles)/base)
		ac = append(ac, float64(r.RunDynamic(AddressControl, 1).Cycles)/base)
		ctl = append(ctl, float64(r.RunDynamic(Control, 1).Cycles)/base)
	}
	gp, ga, gc := geomean(pens), geomean(ac), geomean(ctl)
	if !(gp >= ga-0.02 && ga >= gc-0.02) {
		t.Errorf("normalized time ordering broken: Pensieve %.2f, A+C %.2f, Control %.2f", gp, ga, gc)
	}
	if gp < 1.0 {
		t.Errorf("Pensieve (%.2f) should be slower than manual", gp)
	}
	if gc >= gp {
		t.Errorf("Control (%.2f) shows no speedup over Pensieve (%.2f)", gc, gp)
	}
}

func TestReportsRender(t *testing.T) {
	rows := evalRows(t)
	if s := Table2(); !strings.Contains(s, "chaselev") || !strings.Contains(s, "matches the paper") {
		t.Errorf("Table2 incomplete:\n%s", s)
	}
	if s := Fig7(rows); !strings.Contains(s, "geomean") {
		t.Error("Fig7 missing geomean")
	}
	if s := Fig8(rows); !strings.Contains(s, "r->r") {
		t.Error("Fig8 missing type columns")
	}
	if s := Fig9(rows); !strings.Contains(s, "Pensieve") {
		t.Error("Fig9 missing variants")
	}
	if s := Fig2(); !strings.Contains(s, "5 fences") || !strings.Contains(s, "2 fences") {
		t.Errorf("Fig2 worked example does not reproduce 5 -> 2:\n%s", s)
	}
	if s := ManualTable(rows); !strings.Contains(s, "volrend") {
		t.Error("manual table incomplete")
	}
}

func TestVariantNames(t *testing.T) {
	want := map[Variant]string{
		Manual: "Manual", Pensieve: "Pensieve",
		AddressControl: "Address+Control", Control: "Control",
	}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("variant %d renders %q, want %q", v, v.String(), s)
		}
	}
	if len(Variants) != int(numVariants) {
		t.Error("Variants list out of sync")
	}
}

// TestCertificationColumn model-checks the fence placements of two
// Dekker-family kernels at a reduced instantiation: every variant must be
// certified SC-equivalent, and the unfenced legacy build must not be.
func TestCertificationColumn(t *testing.T) {
	t.Setenv("FENCEPLACE_CACHE_DIR", "") // never read or write the operator's cache
	cfg := fenceplace.CertOptions{MaxStates: 1 << 20}
	for _, name := range []string{"dekker", "peterson"} {
		m := progs.ByName(name)
		pp := m.Defaults
		pp.Threads = 2
		pp.Size = 1
		r := Analyze(m, pp)
		for _, v := range Variants {
			cell := r.Certify(v, cfg)
			if cell.Status != CertOK {
				t.Errorf("%s/%s: %s", name, v, cell)
			}
		}
		// The legacy build run raw under TSO is the negative control.
		bare := &Row{Meta: r.Meta, Prog: r.Prog, Inst: map[Variant]*ir.Program{Manual: r.Prog}}
		if cell := bare.Certify(Manual, cfg); cell.Status != CertViolation {
			t.Errorf("%s unfenced: expected VIOLATION, got %s", name, cell)
		}
	}
}

func TestCertTableRenders(t *testing.T) {
	t.Setenv("FENCEPLACE_CACHE_DIR", "") // never read or write the operator's cache
	m := progs.ByName("peterson")
	pp := m.Defaults
	pp.Threads = 2
	pp.Size = 1
	s := CertTable([]*Row{Analyze(m, pp)}, fenceplace.CertOptions{MaxStates: 1 << 20})
	if !strings.Contains(s, "certified") || !strings.Contains(s, "peterson") {
		t.Errorf("certification table incomplete:\n%s", s)
	}
	if !strings.Contains(s, "SC explorations:") {
		t.Errorf("certification table missing the warm-vs-cold footer:\n%s", s)
	}
	if len(CertSet()) == 0 {
		t.Error("empty certification set")
	}
}
