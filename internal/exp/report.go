package exp

import (
	"fmt"
	"strings"

	"fenceplace/corpus"
	"fenceplace/internal/delayset"
	"fenceplace/internal/passes"
	"fenceplace/internal/progs"
	"fenceplace/internal/stats"
)

func mark(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// Report converts live analysis rows into the plain-data corpus report
// the table renderers consume — the figures below are views over it, not
// over the live objects. seeds > 0 additionally runs the dynamic
// experiment (Figure 10's input), seeds per variant; a failing TSO run is
// an error.
func Report(rows []*Row, seeds int) (*corpus.Report, error) {
	rep := &corpus.Report{Version: corpus.Version, Source: "eval"}
	for i, r := range rows {
		row := corpus.Row{Index: i, Program: r.Meta.Name, EscReads: r.EscReads}
		for _, v := range Variants {
			cv, err := r.corpusVariant(v, seeds)
			if err != nil {
				return nil, err
			}
			row.Variants = append(row.Variants, *cv)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// corpusVariant renders one variant of a live row as plain data; the
// result-to-variant field mapping is corpus.VariantFromResult's, shared
// with the corpus runner so the two drivers cannot drift.
func (r *Row) corpusVariant(v Variant, seeds int) (*corpus.Variant, error) {
	cv := &corpus.Variant{Name: v.String(), FullFences: r.Fences(v)}
	if res, ok := r.Res[v]; ok {
		*cv = corpus.VariantFromResult(res)
	}
	for s := 0; s < seeds; s++ {
		d := r.RunDynamic(v, int64(s))
		if d.Failed {
			return nil, fmt.Errorf("%s/%s failed under TSO: %s", r.Meta.Name, v, d.Detail)
		}
		cv.Cycles = append(cv.Cycles, d.Cycles)
	}
	return cv, nil
}

// mustReport is Report for the seedless figures, whose conversion cannot
// fail (no dynamic runs are involved).
func mustReport(rows []*Row) *corpus.Report {
	rep, err := Report(rows, 0)
	if err != nil {
		panic(err) // unreachable: seeds == 0 runs nothing that can fail
	}
	return rep
}

// Table2 regenerates the paper's Table II: the signature breakdown of the
// nine synchronization kernels.
func Table2() string {
	t := stats.NewTable("kernel", "addr", "ctrl", "pure addr", "source")
	pureAddrAnywhere := false
	for _, m := range progs.ByKind(progs.SyncKernel) {
		sess := passes.NewSession(m.Default())
		sig := sess.Signatures()
		t.Add(m.Name, mark(sig.HasAddress()), mark(sig.HasControl()),
			mark(sig.HasPureAddress()), m.Source)
		if sig.HasPureAddress() {
			pureAddrAnywhere = true
		}
	}
	out := "Table II: acquire signatures found in the synchronization kernels\n" + t.String()
	if !pureAddrAnywhere {
		out += "No kernel contains a pure-address acquire (matches the paper).\n"
	} else {
		out += "WARNING: a pure-address acquire appeared; the paper found none.\n"
	}
	return out
}

// Fig7 regenerates Figure 7: the percentage of potentially-escaping reads
// each detector marks as an acquire. Like every figure below, the table is
// rendered by package corpus from plain report data.
func Fig7(rows []*Row) string { return corpus.Fig7(mustReport(rows)) }

// Fig8 regenerates Figure 8: orderings by type for Pensieve and both pruned
// variants, as a percentage of Pensieve's total.
func Fig8(rows []*Row) string { return corpus.Fig8(mustReport(rows)) }

// Fig9 regenerates Figure 9: full fences remaining on x86-TSO relative to
// Pensieve's placement.
func Fig9(rows []*Row) string { return corpus.Fig9(mustReport(rows)) }

// Fig10 regenerates Figure 10: simulated execution time normalized to the
// manual placement. seeds > 1 averages several simulator runs.
func Fig10(rows []*Row, seeds int) (string, error) {
	rep, err := Report(rows, seeds)
	if err != nil {
		return "", err
	}
	return corpus.Fig10(rep)
}

// Fig2 regenerates the §2.4 worked example via exact delay-set analysis.
func Fig2() string {
	p, isAcq := delayset.Fig2()
	delays := delayset.Delays(p)
	fullFences := delayset.MinimizeFences(delays)
	pruned := delayset.Prune(delays, isAcq)
	prunedFences := delayset.MinimizeFences(pruned)

	var sb strings.Builder
	sb.WriteString("Figure 2 (worked example, §2.4): exact Shasha-Snir delay-set analysis\n")
	fmt.Fprintf(&sb, "delay edges (%d): ", len(delays))
	for i, d := range delays {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(d.String())
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "full fence placement: %d fences at %v (paper: 5, F1..F5)\n", len(fullFences), fullFences)
	fmt.Fprintf(&sb, "pruned delay edges (%d): ", len(pruned))
	for i, d := range pruned {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(d.String())
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "pruned fence placement: %d fences at %v (paper: 2, F2 and F4)\n", len(prunedFences), prunedFences)
	return sb.String()
}

// ManualTable reports the expert fence counts per program alongside the
// paper's §5.3 numbers.
func ManualTable(rows []*Row) string { return corpus.ManualTable(mustReport(rows)) }
