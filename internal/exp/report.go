package exp

import (
	"fmt"
	"strings"

	"fenceplace/internal/delayset"
	"fenceplace/internal/orders"
	"fenceplace/internal/passes"
	"fenceplace/internal/progs"
	"fenceplace/internal/stats"
)

func mark(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// Table2 regenerates the paper's Table II: the signature breakdown of the
// nine synchronization kernels.
func Table2() string {
	t := stats.NewTable("kernel", "addr", "ctrl", "pure addr", "source")
	pureAddrAnywhere := false
	for _, m := range progs.ByKind(progs.SyncKernel) {
		sess := passes.NewSession(m.Default())
		sig := sess.Signatures()
		t.Add(m.Name, mark(sig.HasAddress()), mark(sig.HasControl()),
			mark(sig.HasPureAddress()), m.Source)
		if sig.HasPureAddress() {
			pureAddrAnywhere = true
		}
	}
	out := "Table II: acquire signatures found in the synchronization kernels\n" + t.String()
	if !pureAddrAnywhere {
		out += "No kernel contains a pure-address acquire (matches the paper).\n"
	} else {
		out += "WARNING: a pure-address acquire appeared; the paper found none.\n"
	}
	return out
}

// Fig7 regenerates Figure 7: the percentage of potentially-escaping reads
// each detector marks as an acquire.
func Fig7(rows []*Row) string {
	t := stats.NewTable("program", "escaping reads", "Control", "Address+Control")
	var ctl, ac []float64
	for _, r := range rows {
		rc := stats.Ratio(r.Acquires(Control), r.EscReads)
		ra := stats.Ratio(r.Acquires(AddressControl), r.EscReads)
		ctl = append(ctl, rc)
		ac = append(ac, ra)
		t.Add(r.Meta.Name, fmt.Sprint(r.EscReads), stats.Pct(rc), stats.Pct(ra))
	}
	t.AddSep()
	t.Add("geomean", "", stats.Pct(stats.Geomean(ctl)), stats.Pct(stats.Geomean(ac)))
	return "Figure 7: percentage of escaping reads marked as acquires\n" +
		"(paper: Control ≈ 18% geomean, best 7%, worst 33%; A+C ≈ 60%, best 39%)\n" + t.String()
}

// Fig8 regenerates Figure 8: orderings by type for Pensieve and both pruned
// variants, as a percentage of Pensieve's total.
func Fig8(rows []*Row) string {
	t := stats.NewTable("program", "variant", "r->r", "r->w", "w->r", "w->w", "total", "% of Pensieve")
	var acPct, ctlPct []float64
	for _, r := range rows {
		base := r.Orderings(Pensieve).Total()
		for _, v := range []Variant{Pensieve, AddressControl, Control} {
			s := r.Orderings(v)
			ratio := stats.Ratio(s.Total(), base)
			switch v {
			case AddressControl:
				acPct = append(acPct, ratio)
			case Control:
				ctlPct = append(ctlPct, ratio)
			}
			t.Add(r.Meta.Name, v.String(),
				fmt.Sprint(s.Count(orders.RR)), fmt.Sprint(s.Count(orders.RW)),
				fmt.Sprint(s.Count(orders.WR)), fmt.Sprint(s.Count(orders.WW)),
				fmt.Sprint(s.Total()), stats.Pct(ratio))
		}
		t.AddSep()
	}
	t.Add("geomean", "Address+Control", "", "", "", "", "", stats.Pct(stats.Geomean(acPct)))
	t.Add("geomean", "Control", "", "", "", "", "", stats.Pct(stats.Geomean(ctlPct)))
	return "Figure 8: orderings by type, as generated (Pensieve) and after pruning\n" +
		"(paper: ≈ 34% of orderings survive under Control, ≈ 68% under A+C; r->r dominates)\n" + t.String()
}

// Fig9 regenerates Figure 9: full fences remaining on x86-TSO relative to
// Pensieve's placement.
func Fig9(rows []*Row) string {
	t := stats.NewTable("program", "Pensieve", "Address+Control", "Control", "A+C %", "Control %", "Manual")
	var acPct, ctlPct []float64
	for _, r := range rows {
		base := r.Fences(Pensieve)
		ra := stats.Ratio(r.Fences(AddressControl), base)
		rc := stats.Ratio(r.Fences(Control), base)
		acPct = append(acPct, ra)
		ctlPct = append(ctlPct, rc)
		t.Add(r.Meta.Name, fmt.Sprint(base), fmt.Sprint(r.Fences(AddressControl)),
			fmt.Sprint(r.Fences(Control)), stats.Pct(ra), stats.Pct(rc),
			fmt.Sprint(r.Fences(Manual)))
	}
	t.AddSep()
	t.Add("geomean", "", "", "", stats.Pct(stats.Geomean(acPct)), stats.Pct(stats.Geomean(ctlPct)), "")
	return "Figure 9: static full fences on x86-TSO (percentages relative to Pensieve)\n" +
		"(paper: ≈ 38% of Pensieve's fences remain under Control — 62% fewer; ≈ 73% under A+C)\n" + t.String()
}

// Fig10 regenerates Figure 10: simulated execution time normalized to the
// manual placement. seeds > 1 averages several simulator runs.
func Fig10(rows []*Row, seeds int) (string, error) {
	t := stats.NewTable("program", "Manual", "Pensieve", "Address+Control", "Control")
	norm := map[Variant][]float64{}
	for _, r := range rows {
		cycles := map[Variant]float64{}
		for _, v := range Variants {
			var sum float64
			for s := 0; s < seeds; s++ {
				d := r.RunDynamic(v, int64(s))
				if d.Failed {
					return "", fmt.Errorf("%s/%s failed under TSO: %s", r.Meta.Name, v, d.Detail)
				}
				sum += float64(d.Cycles)
			}
			cycles[v] = sum / float64(seeds)
		}
		base := cycles[Manual]
		row := []string{r.Meta.Name}
		for _, v := range Variants {
			n := cycles[v] / base
			if v != Manual {
				norm[v] = append(norm[v], n)
			}
			row = append(row, fmt.Sprintf("%.2fx", n))
		}
		t.Add(row...)
	}
	t.AddSep()
	t.Add("geomean", "1.00x",
		fmt.Sprintf("%.2fx", stats.Geomean(norm[Pensieve])),
		fmt.Sprintf("%.2fx", stats.Geomean(norm[AddressControl])),
		fmt.Sprintf("%.2fx", stats.Geomean(norm[Control])))
	head := "Figure 10: simulated execution time on TSO, normalized to manual fences\n" +
		"(paper: Pensieve ≈ 1.94x, A+C ≈ 1.69x, Control ≈ 1.44x; Control ≈ 30% faster than Pensieve)\n"
	return head + t.String(), nil
}

// Fig2 regenerates the §2.4 worked example via exact delay-set analysis.
func Fig2() string {
	p, isAcq := delayset.Fig2()
	delays := delayset.Delays(p)
	fullFences := delayset.MinimizeFences(delays)
	pruned := delayset.Prune(delays, isAcq)
	prunedFences := delayset.MinimizeFences(pruned)

	var sb strings.Builder
	sb.WriteString("Figure 2 (worked example, §2.4): exact Shasha-Snir delay-set analysis\n")
	fmt.Fprintf(&sb, "delay edges (%d): ", len(delays))
	for i, d := range delays {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(d.String())
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "full fence placement: %d fences at %v (paper: 5, F1..F5)\n", len(fullFences), fullFences)
	fmt.Fprintf(&sb, "pruned delay edges (%d): ", len(pruned))
	for i, d := range pruned {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(d.String())
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "pruned fence placement: %d fences at %v (paper: 2, F2 and F4)\n", len(prunedFences), prunedFences)
	return sb.String()
}

// ManualTable reports the expert fence counts per program alongside the
// paper's §5.3 numbers.
func ManualTable(rows []*Row) string {
	paper := map[string]string{
		"canneal": "10", "fmm": "6", "volrend": "2", "matrix": "6", "spanningtree": "5",
	}
	t := stats.NewTable("program", "manual full fences (ours)", "paper §5.3")
	for _, r := range rows {
		pp, ok := paper[r.Meta.Name]
		if !ok {
			pp = "-"
		}
		t.Add(r.Meta.Name, fmt.Sprint(r.Fences(Manual)), pp)
	}
	return "Manual (expert) fence placement\n" +
		"(differences are expected: our corpus synchronizes through locked RMWs\n" +
		"wherever the original used library atomics — see EXPERIMENTS.md)\n" + t.String()
}
