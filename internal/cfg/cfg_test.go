package cfg

import (
	"testing"

	"fenceplace/internal/ir"
)

// diamond builds:  entry -> (then | else) -> join -> ret
func diamond(t *testing.T) (*ir.Program, *ir.Fn) {
	t.Helper()
	pb := ir.NewProgram("d")
	g := pb.Global("g", 1)
	b := pb.Func("f", 1)
	b.IfElse(b.Gt(b.Param(0), b.Const(0)), func() {
		b.Store(g, b.Param(0))
	}, func() {
		b.Store(g, b.Const(0))
	})
	b.Ret(b.Load(g))
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p, p.Fn("f")
}

// loop builds: entry -> head -> (body -> head | exit)
func loop(t *testing.T) (*ir.Program, *ir.Fn) {
	t.Helper()
	pb := ir.NewProgram("l")
	g := pb.Global("g", 16)
	b := pb.Func("f", 0)
	b.ForConst(0, 10, func(i ir.Reg) {
		b.StoreIdx(g, i, i)
	})
	b.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p, p.Fn("f")
}

func TestDiamondReachability(t *testing.T) {
	_, f := diamond(t)
	g := New(f)
	entry := f.Entry()
	var thenB, elseB, join *ir.Block
	succ := entry.Succs()
	if len(succ) != 2 {
		t.Fatalf("entry succs = %d, want 2", len(succ))
	}
	thenB, elseB = succ[0], succ[1]
	js := thenB.Succs()
	if len(js) != 1 {
		t.Fatalf("then succs = %d, want 1", len(js))
	}
	join = js[0]

	if !g.BlockReaches(entry, join) {
		t.Error("entry should reach join")
	}
	if g.BlockReaches(thenB, elseB) || g.BlockReaches(elseB, thenB) {
		t.Error("branch arms must not reach each other")
	}
	if g.BlockReaches(join, entry) {
		t.Error("join must not reach entry (no back edges)")
	}
	if g.InLoop(entry) || g.InLoop(join) {
		t.Error("acyclic function reported a loop")
	}
	for _, b := range f.Blocks {
		if !g.Reachable(b) {
			t.Errorf("block %s unreachable", b.Name)
		}
	}
}

func TestDiamondPreds(t *testing.T) {
	_, f := diamond(t)
	g := New(f)
	entry := f.Entry()
	if n := len(g.Preds(entry)); n != 0 {
		t.Fatalf("entry preds = %d, want 0", n)
	}
	join := entry.Succs()[0].Succs()[0]
	if n := len(g.Preds(join)); n != 2 {
		t.Fatalf("join preds = %d, want 2", n)
	}
}

func TestLoopReachability(t *testing.T) {
	_, f := loop(t)
	g := New(f)
	var head, body *ir.Block
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			if s == b {
				t.Fatalf("unexpected self-loop at %s", b.Name)
			}
		}
	}
	// Find the loop head: a block that reaches itself with two successors.
	for _, b := range f.Blocks {
		if g.InLoop(b) && len(b.Succs()) == 2 {
			head = b
			body = b.Succs()[0]
		}
	}
	if head == nil {
		t.Fatal("no loop head found")
	}
	if !g.BlockReaches(head, head) {
		t.Error("loop head should reach itself")
	}
	if !g.BlockReaches(body, body) {
		t.Error("loop body should reach itself via the back edge")
	}
	if !g.InLoop(body) {
		t.Error("body not reported in loop")
	}
}

func TestCanFollow(t *testing.T) {
	_, f := loop(t)
	g := New(f)
	// Collect the store in the loop body.
	var store *ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in.Kind == ir.Store {
			store = in
		}
	})
	if store == nil {
		t.Fatal("no store found")
	}
	// A loop access can follow itself.
	if !g.CanFollow(store, store) {
		t.Error("loop store should be able to follow itself")
	}
	// Within a block, earlier instr can be followed by later one.
	blk := store.Block()
	first := blk.Instrs[0]
	last := blk.Instrs[len(blk.Instrs)-1]
	if !g.CanFollow(first, last) {
		t.Error("intra-block order not detected")
	}
	// Later cannot be followed by earlier in the same block... unless the
	// block is in a loop, which here it is.
	if !g.CanFollow(last, first) {
		t.Error("back-edge path not detected for same-block reversed pair")
	}
}

func TestCanFollowAcyclic(t *testing.T) {
	_, f := diamond(t)
	g := New(f)
	entry := f.Entry()
	join := entry.Succs()[0].Succs()[0]
	eFirst := entry.Instrs[0]
	jLast := join.Instrs[len(join.Instrs)-1]
	if !g.CanFollow(eFirst, jLast) {
		t.Error("entry instr should be followable by join instr")
	}
	if g.CanFollow(jLast, eFirst) {
		t.Error("reverse order reported followable in acyclic CFG")
	}
	// Same-block reversed pair in acyclic block: not followable.
	if g.CanFollow(jLast, join.Instrs[0]) {
		t.Error("same-block reversed pair followable without a loop")
	}
}

func TestRPO(t *testing.T) {
	_, f := diamond(t)
	g := New(f)
	rpo := g.RPO()
	if len(rpo) != len(f.Blocks) {
		t.Fatalf("rpo has %d blocks, want %d", len(rpo), len(f.Blocks))
	}
	if rpo[0] != f.Entry() {
		t.Fatal("rpo does not start at entry")
	}
	pos := map[*ir.Block]int{}
	for i, b := range rpo {
		pos[b] = i
	}
	// In an acyclic graph, every edge goes forward in RPO.
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			if pos[s] <= pos[b] {
				t.Errorf("edge %s->%s goes backward in RPO of acyclic CFG", b.Name, s.Name)
			}
		}
	}
}
