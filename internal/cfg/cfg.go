// Package cfg provides control-flow-graph queries over ir functions:
// successor/predecessor maps, reverse postorder, and — the workhorse of
// Pensieve-style ordering generation (paper §4.3) — a reachability lookup
// table answering "can access v occur after access u on some execution
// path?".
package cfg

import "fenceplace/internal/ir"

// Graph caches CFG structure and reachability for one function. Build one
// with New after the owning program has been finalized.
type Graph struct {
	fn    *ir.Fn
	preds map[*ir.Block][]*ir.Block
	// reach[i][j] reports whether block j is reachable from block i along a
	// path with at least one edge. Blocks are indexed by Block.ID.
	reach [][]bool
	rpo   []*ir.Block
}

// New builds the CFG caches for fn. The function's program must have been
// finalized (block IDs assigned).
func New(fn *ir.Fn) *Graph {
	g := &Graph{fn: fn, preds: make(map[*ir.Block][]*ir.Block, len(fn.Blocks))}
	for _, b := range fn.Blocks {
		for _, s := range b.Succs() {
			g.preds[s] = append(g.preds[s], b)
		}
	}
	g.computeReach()
	g.computeRPO()
	return g
}

// Fn returns the function the graph describes.
func (g *Graph) Fn() *ir.Fn { return g.fn }

// Succs returns the successor blocks of b.
func (g *Graph) Succs(b *ir.Block) []*ir.Block { return b.Succs() }

// Preds returns the predecessor blocks of b.
func (g *Graph) Preds(b *ir.Block) []*ir.Block { return g.preds[b] }

func (g *Graph) computeReach() {
	n := len(g.fn.Blocks)
	g.reach = make([][]bool, n)
	for i := range g.reach {
		g.reach[i] = make([]bool, n)
	}
	// DFS from each block's successors. O(B·E); functions in this module
	// are small (tens of blocks) so this is never the bottleneck.
	for _, b := range g.fn.Blocks {
		stack := append([]*ir.Block(nil), b.Succs()...)
		row := g.reach[b.ID()]
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if row[x.ID()] {
				continue
			}
			row[x.ID()] = true
			stack = append(stack, x.Succs()...)
		}
	}
}

func (g *Graph) computeRPO() {
	seen := make(map[*ir.Block]bool, len(g.fn.Blocks))
	var post []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs() {
			dfs(s)
		}
		post = append(post, b)
	}
	dfs(g.fn.Entry())
	g.rpo = make([]*ir.Block, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		g.rpo = append(g.rpo, post[i])
	}
}

// RPO returns the blocks reachable from entry in reverse postorder.
func (g *Graph) RPO() []*ir.Block { return g.rpo }

// BlockReaches reports whether dst is reachable from src along a path with
// at least one CFG edge. A block on a cycle reaches itself.
func (g *Graph) BlockReaches(src, dst *ir.Block) bool {
	return g.reach[src.ID()][dst.ID()]
}

// Reachable reports whether b is reachable from the function entry
// (trivially true for the entry itself).
func (g *Graph) Reachable(b *ir.Block) bool {
	e := g.fn.Entry()
	return b == e || g.reach[e.ID()][b.ID()]
}

// CanFollow reports whether instruction v can execute after instruction u on
// some path — the path-existence test of Pensieve's ordering generation.
// Both instructions must belong to this graph's function. If u precedes v in
// the same block the answer is immediate; otherwise a block-level
// reachability query (which accounts for loop back edges, including u == v
// inside a loop) decides.
func (g *Graph) CanFollow(u, v *ir.Instr) bool {
	ub, vb := u.Block(), v.Block()
	if ub == vb && u.Pos() < v.Pos() {
		return true
	}
	return g.BlockReaches(ub, vb)
}

// InLoop reports whether b lies on a CFG cycle.
func (g *Graph) InLoop(b *ir.Block) bool { return g.BlockReaches(b, b) }
