package store

// Fault-injection tests for the store and spill layers: seeded fault
// schedules and targeted stub filesystems drive every degradation path —
// transient faults retried to success, persistent faults surfacing as
// explicit errors with cleanup metered, torn writes degrading to misses.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"fenceplace/internal/fsx"
)

// stubFS overrides selected operations of the real filesystem with fixed
// errors — the deterministic complement of the seeded FaultFS.
type stubFS struct {
	fsx.FS
	renameErr error
	removeErr error
}

func (s *stubFS) Rename(oldpath, newpath string) error {
	if s.renameErr != nil {
		return s.renameErr
	}
	return s.FS.Rename(oldpath, newpath)
}

func (s *stubFS) Remove(name string) error {
	if s.removeErr != nil {
		return s.removeErr
	}
	return s.FS.Remove(name)
}

// TestOpenAndPutRideOutTransientFaults pins the retry loop end to end: a
// seeded burst of transient EIO at store init is retried to success, the
// retries are metered, and the store then works normally.
func TestOpenAndPutRideOutTransientFaults(t *testing.T) {
	dir := t.TempDir()
	ff := fsx.NewFaultFS(nil, fsx.FaultConfig{Seed: 11, EIO: 1, MaxInjected: 3})
	s, err := OpenConfig(dir, Config{FS: ff, Retries: 5})
	if err != nil {
		t.Fatalf("open under transient faults: %v", err)
	}
	if got := s.Stats(); got.CleanupErrors != 0 {
		t.Fatalf("cleanup errors at init: %+v", got)
	}
	if s.ioRetries.Value() == 0 {
		t.Fatal("transient faults were ridden out but io_retries is zero")
	}
	if s.ioGiveups.Value() != 0 {
		t.Fatalf("io_giveups = %d, want 0 (every fault was outlasted)", s.ioGiveups.Value())
	}
	payload := []byte("survives a flaky disk")
	if err := s.Put(key(1), payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key(1))
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want the stored payload", got, ok)
	}
}

// TestPutGivesUpOnPersistentTransientFault pins the bounded half of the
// policy: a rename that fails transiently on every attempt exhausts the
// retries, surfaces the error, meters one give-up, and leaves no temp
// litter behind.
func TestPutGivesUpOnPersistentTransientFault(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenConfig(dir, Config{FS: &stubFS{FS: fsx.OS, renameErr: syscall.EIO}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(1), []byte("doomed")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Put error = %v, want EIO", err)
	}
	if s.ioGiveups.Value() != 1 {
		t.Fatalf("io_giveups = %d, want 1", s.ioGiveups.Value())
	}
	if s.ioRetries.Value() == 0 {
		t.Fatal("give-up without any metered retries")
	}
	if got := s.Stats(); got.Puts != 0 || got.CleanupErrors != 0 {
		t.Fatalf("stats after give-up: %+v", got)
	}
	ents, err := os.ReadDir(filepath.Join(dir, tmpDirName))
	if err != nil || len(ents) != 0 {
		t.Fatalf("tmp dir not clean after failed Put: %v entries, err %v", len(ents), err)
	}
	if _, ok := s.Get(key(1)); ok {
		t.Fatal("failed Put became visible")
	}
}

// TestPutPermanentFaultFailsWithoutRetry pins the classification: ENOSPC
// is permanent, so the Put fails on the first attempt with no retries and
// no give-up metered.
func TestPutPermanentFaultFailsWithoutRetry(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenConfig(dir, Config{FS: &stubFS{FS: fsx.OS, renameErr: syscall.ENOSPC}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(1), []byte("x")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Put error = %v, want ENOSPC", err)
	}
	if r, g := s.ioRetries.Value(), s.ioGiveups.Value(); r != 0 || g != 0 {
		t.Fatalf("permanent fault metered as transient: retries=%d giveups=%d", r, g)
	}
}

// TestCleanupErrorsCounted pins satellite discipline: when the failed-Put
// temp file cannot be removed either, the silent leak is counted in
// cleanup_errors and surfaces through Stats and Snapshot.
func TestCleanupErrorsCounted(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenConfig(dir, Config{FS: &stubFS{FS: fsx.OS, renameErr: syscall.ENOSPC, removeErr: syscall.ENOSPC}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(1), []byte("x")); err == nil {
		t.Fatal("Put succeeded under a failing rename")
	}
	if got := s.Stats().CleanupErrors; got != 1 {
		t.Fatalf("Stats().CleanupErrors = %d, want 1", got)
	}
	snap := s.Snapshot()
	if got := snap.Counters["store.cleanup_errors"]; got != 1 {
		t.Fatalf("Snapshot cleanup_errors = %d, want 1", got)
	}
	prev := s.Stats()
	if d := s.Stats().Sub(prev); d.CleanupErrors != 0 {
		t.Fatalf("Sub delta = %+v, want zero", d)
	}
}

// TestTornSpillWriteRetriedToCleanFile pins the short-write path through
// the spill area: the first attempt tears the file, the retry overwrites
// it whole, and the read-back verifies.
func TestTornSpillWriteRetriedToCleanFile(t *testing.T) {
	root := t.TempDir()
	ff := fsx.NewFaultFS(nil, fsx.FaultConfig{Seed: 3, ShortWrite: 1, MaxInjected: 1})
	sp, err := NewSpillSessionConfig(root, Config{FS: ff})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Remove()
	payload := bytes.Repeat([]byte("spill"), 1000)
	path, err := sp.Write(payload)
	if err != nil {
		t.Fatalf("Write under a single short-write fault: %v", err)
	}
	got, err := sp.ReadRunPayload(path)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("ReadRunPayload = %d bytes, err %v; want the clean payload", len(got), err)
	}
}

// TestSpillWriteGiveUpRemovesTornPrefix pins that a spill write that
// fails every attempt does not leave a torn file behind for OpenRun to
// trip over.
func TestSpillWriteGiveUpRemovesTornPrefix(t *testing.T) {
	root := t.TempDir()
	ff := fsx.NewFaultFS(nil, fsx.FaultConfig{Seed: 9, ShortWrite: 1})
	sp, err := NewSpillSessionConfig(root, Config{FS: ff})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Remove()
	path, err := sp.Write([]byte("never lands"))
	if err == nil {
		t.Fatal("Write succeeded under an always-short-write schedule")
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Fatalf("torn spill file left behind: stat err %v", serr)
	}
}

// TestDegradationLadderMonotonic pins the gauge discipline: the recorded
// rung only climbs, and ResetDegraded rearms it.
func TestDegradationLadderMonotonic(t *testing.T) {
	ResetDegraded()
	defer ResetDegraded()
	if got := DegradedMode(); got != DegradeNone {
		t.Fatalf("fresh rung = %d, want DegradeNone", got)
	}
	NoteSealInRAM()
	if got := DegradedMode(); got != DegradeSealInRAM {
		t.Fatalf("rung = %d, want DegradeSealInRAM", got)
	}
	NoteUncached() // lower rung must not regress the gauge
	if got := DegradedMode(); got != DegradeSealInRAM {
		t.Fatalf("rung regressed to %d after a lower-rung note", got)
	}
	NoteDegraded(DegradeTruncated)
	if got := DegradedMode(); got != DegradeTruncated {
		t.Fatalf("rung = %d, want DegradeTruncated", got)
	}
	ResetDegraded()
	if got := DegradedMode(); got != DegradeNone {
		t.Fatalf("rung after reset = %d, want DegradeNone", got)
	}
}
