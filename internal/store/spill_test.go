package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestSpillWriteOpenRoundTrip(t *testing.T) {
	sp, err := NewSpillSession(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(strings.Repeat("run-bytes", 1000))
	path, err := sp.Write(payload)
	if err != nil {
		t.Fatal(err)
	}
	f, n, err := sp.OpenRun(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if n != int64(len(payload)) {
		t.Fatalf("payload length %d, want %d", n, len(payload))
	}
	got := make([]byte, 16)
	if _, err := f.ReadAt(got, HeaderSize+8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload[8:24]) {
		t.Fatalf("ReadAt past header returned %q, want %q", got, payload[8:24])
	}
	// Sequential writes get distinct files.
	p2, err := sp.Write(payload)
	if err != nil || p2 == path {
		t.Fatalf("second write: path %q (first %q), err %v", p2, path, err)
	}
}

func TestSpillOpenRunQuarantinesCorruption(t *testing.T) {
	for _, damage := range []struct {
		name string
		do   func(t *testing.T, path string)
	}{
		{"truncate", func(t *testing.T, path string) {
			if err := os.Truncate(path, 10); err != nil {
				t.Fatal(err)
			}
		}},
		{"bitflip", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-3] ^= 1
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(damage.name, func(t *testing.T) {
			root := t.TempDir()
			sp, err := NewSpillSession(root)
			if err != nil {
				t.Fatal(err)
			}
			path, err := sp.Write([]byte("precious fingerprints"))
			if err != nil {
				t.Fatal(err)
			}
			damage.do(t, path)
			if _, _, err := sp.OpenRun(path); err == nil {
				t.Fatal("OpenRun accepted a corrupt run")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt run still at its original path")
			}
			quar, err := os.ReadDir(filepath.Join(root, "quarantine"))
			if err != nil || len(quar) != 1 {
				t.Fatalf("quarantine: %d files, err %v; want 1", len(quar), err)
			}
		})
	}
}

func TestSpillGCReclaimsOrphansAndQuarantine(t *testing.T) {
	root := t.TempDir()
	// A stale session (crash orphan), a fresh session (live exploration),
	// and a quarantined run.
	stale, err := NewSpillSession(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stale.Write([]byte("orphaned run")); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-48 * time.Hour)
	if err := os.Chtimes(stale.Dir(), old, old); err != nil {
		t.Fatal(err)
	}
	live, err := NewSpillSession(root)
	if err != nil {
		t.Fatal(err)
	}
	livePath, err := live.Write([]byte("live run"))
	if err != nil {
		t.Fatal(err)
	}
	qsess, err := NewSpillSession(root)
	if err != nil {
		t.Fatal(err)
	}
	qpath, err := qsess.Write([]byte("bad run"))
	if err != nil {
		t.Fatal(err)
	}
	qsess.Quarantine(qpath)
	if err := qsess.Remove(); err != nil {
		t.Fatal(err)
	}

	plan, err := PlanSpillGC(root, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 2 {
		t.Fatalf("plan lists %d items, want 2 (stale session + quarantined run): %+v", len(plan), plan)
	}
	for _, en := range plan {
		if en.Path == live.Dir() {
			t.Fatal("plan wants to remove the live session")
		}
		if en.Size <= 0 {
			t.Errorf("plan entry %s has size %d", en.Path, en.Size)
		}
	}

	removed, freed, err := SpillGC(root, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 || freed <= 0 {
		t.Fatalf("SpillGC removed %d items / %d bytes, want 2 / >0", removed, freed)
	}
	if _, err := os.Stat(stale.Dir()); !os.IsNotExist(err) {
		t.Error("stale session survived GC")
	}
	if _, err := os.Stat(livePath); err != nil {
		t.Error("live session's run did not survive GC")
	}
	// Idempotent.
	if removed, _, _ := SpillGC(root, 24*time.Hour); removed != 0 {
		t.Errorf("second SpillGC removed %d items", removed)
	}
	// A missing root is an empty plan, not an error (nothing ever spilled).
	if plan, err := PlanSpillGC(filepath.Join(root, "nope"), time.Hour); err != nil || len(plan) != 0 {
		t.Errorf("missing root: plan %v, err %v", plan, err)
	}
}

func TestGCPlanMatchesGC(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	payload := []byte(strings.Repeat("p", 100))
	for i := 0; i < 4; i++ {
		if err := s.Put(key(i), payload); err != nil {
			t.Fatal(err)
		}
		old := time.Now().Add(time.Duration(i-10) * time.Hour)
		if err := os.Chtimes(filepath.Join(s.Dir(), key(i)[:2], key(i)+".art"), old, old); err != nil {
			t.Fatal(err)
		}
	}
	entries, _ := s.List()
	perEntry := entries[0].Size

	plan, err := s.GCPlan(2 * perEntry)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 2 || plan[0].Key != key(0) || plan[1].Key != key(1) {
		t.Fatalf("plan %+v, want the two oldest (key(0), key(1)) in eviction order", plan)
	}
	// The dry run removed nothing.
	for i := 0; i < 4; i++ {
		if _, ok := s.Get(key(i)); !ok {
			t.Fatalf("GCPlan evicted key(%d)", i)
		}
	}
	// The real GC does exactly what the plan said.
	evicted, freed, err := s.GC(2 * perEntry)
	if err != nil {
		t.Fatal(err)
	}
	if evicted != len(plan) || freed != 2*perEntry {
		t.Fatalf("GC evicted %d / %d bytes, plan promised %d / %d", evicted, freed, len(plan), 2*perEntry)
	}
	// Within budget: empty plan, no error.
	if plan, err := s.GCPlan(1 << 30); err != nil || len(plan) != 0 {
		t.Errorf("under-budget plan %v, err %v; want empty", plan, err)
	}
	if _, err := s.GCPlan(-1); err == nil {
		t.Error("GCPlan accepted a negative bound")
	}
}
