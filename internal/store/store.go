// Package store is a persistent, content-addressed artifact store: the
// disk layer behind warm-starting certification baselines across
// processes. Artifacts are opaque byte payloads filed under 128-bit
// content keys (32 lowercase hex digits, produced by mc.BaselineKey) in
// two-level sharded directories:
//
//	<dir>/<key[:2]>/<key>.art    one artifact per file
//	<dir>/tmp/                   in-flight writes (atomically renamed in)
//	<dir>/quarantine/            entries that failed integrity or decoding
//
// Every entry is framed with a magic+version header, the payload length
// and a checksum; Get verifies all three, so a truncated, bit-flipped or
// foreign file degrades to a cache miss — never to wrong data — and the
// offending file is moved to quarantine/ for post-mortem instead of being
// served again. Writes go through a temp file plus rename, so readers
// (including concurrent processes sharing the directory) only ever observe
// complete entries. A size-bounded GC evicts oldest-first, and hit/miss/
// evict/quarantine counters feed the warm-vs-cold reporting of the
// experiment harness and the fencecache CLI.
//
// All disk access routes through an fsx.FS (the real OS by default, a
// seeded fault injector in the chaos suite), and transient failures on
// the read and write paths are retried under a bounded-backoff policy
// (fsx.RetryPolicy); retries and give-ups are metered, and failures that
// survive the retries degrade — to a miss, to an error the caller turns
// into an uncached run — never to wrong data.
//
// Open memoizes one Store per directory process-wide, so every session
// certifying against the same cache shares one handle and one set of
// counters. Opens with a private FS (OpenConfig) bypass the memo: they
// model a separate process with its own fault schedule.
package store

import (
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fenceplace/internal/fsx"
	"fenceplace/internal/telemetry"
)

// Process-wide store metrics in the default telemetry registry: the sum
// over every open store, feeding the -metrics dumps and the expvar
// export. Per-directory counters live in each Store's private registry
// (see Store.Snapshot); Stats reads those, so warm-vs-cold deltas remain
// attributable to one cache directory.
var (
	gHits          = telemetry.NewCounter("store.hits")
	gMisses        = telemetry.NewCounter("store.misses")
	gPuts          = telemetry.NewCounter("store.puts")
	gEvicted       = telemetry.NewCounter("store.evictions")
	gQuarantined   = telemetry.NewCounter("store.quarantines")
	gCleanupErrors = telemetry.NewCounter("store.cleanup_errors")
	gIORetries     = telemetry.NewCounter("store.io_retries")
	gIOGiveups     = telemetry.NewCounter("store.io_giveups")
	gEntryBytes    = telemetry.NewHistogram("store.entry_bytes")
)

const (
	suffix        = ".art"
	tmpDirName    = "tmp"
	quarDirName   = "quarantine"
	headerSize    = 4 + 8 + 8 // magic+version, payload length, checksum
	formatVersion = 1
)

// magic heads every entry file; the fourth byte is the format version.
var magic = [4]byte{'F', 'P', 'S', formatVersion}

// Config tunes how a Store (or Spill session) touches the disk. The zero
// value is production behavior: the real OS, default retries.
type Config struct {
	// FS is the filesystem the store routes every operation through; nil
	// means the real OS. A non-nil FS makes OpenConfig return a private,
	// non-memoized handle — the seam the chaos suite injects faults
	// through, and a way to model a second process sharing the directory.
	FS fsx.FS
	// Retries bounds how often a transiently failing operation is
	// re-attempted: 0 means the fsx default (2), negative disables
	// retrying.
	Retries int
}

// Stats is a snapshot of a store's counters. Counters are per-process and
// cumulative since Open; Sub produces the delta over a window.
type Stats struct {
	Hits          int64 // Get served a verified entry
	Misses        int64 // Get found nothing usable (absent, corrupt, invalid key)
	Puts          int64 // entries written
	Evicted       int64 // entries removed by GC
	Quarantined   int64 // entries moved aside after failing integrity/decoding
	CleanupErrors int64 // best-effort removals (tmp files, quarantine moves) that failed
}

// Sub returns the counter delta s - prev.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Hits:          s.Hits - prev.Hits,
		Misses:        s.Misses - prev.Misses,
		Puts:          s.Puts - prev.Puts,
		Evicted:       s.Evicted - prev.Evicted,
		Quarantined:   s.Quarantined - prev.Quarantined,
		CleanupErrors: s.CleanupErrors - prev.CleanupErrors,
	}
}

// Entry describes one stored artifact.
type Entry struct {
	Key     string
	Size    int64 // file size, framing included
	ModTime time.Time
}

// Store is one content-addressed artifact directory. All methods are safe
// for concurrent use; cross-process safety rests on atomic renames.
//
// Counters are telemetry metrics in a per-store registry (one namespace
// per directory), mirrored into the process-wide "store.*" counters of the
// default registry; Stats and Snapshot are views of them.
type Store struct {
	dir     string
	fs      fsx.FS
	retries atomic.Int32 // configured retry bound; 0 = fsx default

	reg                                      *telemetry.Registry
	hits, misses, puts, evicted, quarantined *telemetry.Counter
	cleanupErrors, ioRetries, ioGiveups      *telemetry.Counter
}

// count bumps a per-store counter and its process-wide mirror. Counter
// writes land on shard 0: store operations are I/O-bound and serialized
// around the filesystem, so shard fan-out would buy nothing here.
func count(local, global *telemetry.Counter, d int64) {
	local.Add(0, d)
	global.Add(0, d)
}

var (
	regMu    sync.Mutex
	registry = map[string]*Store{}
)

// Open returns the process-shared Store for dir, creating the directory
// skeleton on first use. Repeated opens of one directory return the same
// handle, so counters aggregate across all users of the cache.
func Open(dir string) (*Store, error) { return OpenConfig(dir, Config{}) }

// OpenConfig is Open with disk-access configuration. With a nil cfg.FS it
// returns the memoized per-directory handle (creating it on first use,
// and adopting a non-zero cfg.Retries onto the shared handle so later
// openers see the tuned bound). With a non-nil cfg.FS it returns a fresh
// private handle every call: fault-injecting filesystems must not leak
// into the process-shared handle, and a private handle is exactly how a
// test models a second process on the same directory.
func OpenConfig(dir string, cfg Config) (*Store, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("store: resolve %q: %w", dir, err)
	}
	if cfg.FS != nil {
		return newStore(abs, cfg)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if s := registry[abs]; s != nil {
		if cfg.Retries != 0 {
			s.retries.Store(int32(cfg.Retries))
		}
		return s, nil
	}
	s, err := newStore(abs, cfg)
	if err != nil {
		return nil, err
	}
	registry[abs] = s
	return s, nil
}

func newStore(abs string, cfg Config) (*Store, error) {
	reg := telemetry.NewRegistry()
	s := &Store{
		dir:           abs,
		fs:            fsx.Or(cfg.FS),
		reg:           reg,
		hits:          reg.Counter("store.hits"),
		misses:        reg.Counter("store.misses"),
		puts:          reg.Counter("store.puts"),
		evicted:       reg.Counter("store.evictions"),
		quarantined:   reg.Counter("store.quarantines"),
		cleanupErrors: reg.Counter("store.cleanup_errors"),
		ioRetries:     reg.Counter("store.io_retries"),
		ioGiveups:     reg.Counter("store.io_giveups"),
	}
	s.retries.Store(int32(cfg.Retries))
	for _, sub := range []string{tmpDirName, quarDirName} {
		err := s.do(context.Background(), func() error {
			return s.fs.MkdirAll(filepath.Join(abs, sub), 0o755)
		})
		if err != nil {
			return nil, fmt.Errorf("store: init %q: %w", abs, err)
		}
	}
	return s, nil
}

// policy is the store's retry policy under its configured bound.
func (s *Store) policy() fsx.RetryPolicy {
	return fsx.RetryPolicy{Retries: int(s.retries.Load())}
}

// do runs op under the retry policy and meters the outcome: io_retries
// counts re-attempts, io_giveups counts transient failures that survived
// every attempt (permanent errors are not give-ups — retrying was never
// going to help).
func (s *Store) do(ctx context.Context, op func() error) error {
	retries, err := s.policy().Do(ctx, op)
	if retries > 0 {
		count(s.ioRetries, gIORetries, int64(retries))
	}
	if err != nil && fsx.Transient(err) {
		count(s.ioGiveups, gIOGiveups, 1)
	}
	return err
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:          s.hits.Value(),
		Misses:        s.misses.Value(),
		Puts:          s.puts.Value(),
		Evicted:       s.evicted.Value(),
		Quarantined:   s.quarantined.Value(),
		CleanupErrors: s.cleanupErrors.Value(),
	}
}

// Snapshot returns the store's per-directory telemetry snapshot — the
// counters behind Stats in the registry's machine-readable form (the
// fencecache -json surface).
func (s *Store) Snapshot() telemetry.Snapshot { return s.reg.Snapshot() }

// validKey reports whether key is a usable content key: lowercase hex,
// long enough to shard on. Anything else is rejected before it can name a
// path outside the store.
func validKey(key string) bool {
	if len(key) < 4 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) entryPath(key string) string {
	return filepath.Join(s.dir, key[:2], key+suffix)
}

// fnv1a64 checksums entry payloads. It guards against torn or bit-rotted
// files, not adversaries — the store lives in a local cache directory.
func fnv1a64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// HeaderSize is the length of the magic+length+checksum prefix Frame
// prepends; a framed file's payload begins at this offset.
const HeaderSize = headerSize

// Frame wraps payload in the store's on-disk format: magic+version, the
// payload length, and an FNV-1a checksum, followed by the payload bytes.
// It is exported so other disk surfaces (the model checker's spill area)
// reuse the exact framing — and therefore the exact corruption-degrades-
// to-a-miss guarantee — of the baseline store.
func Frame(payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	copy(buf, magic[:])
	binary.LittleEndian.PutUint64(buf[4:12], uint64(len(payload)))
	binary.LittleEndian.PutUint64(buf[12:20], fnv1a64(payload))
	copy(buf[headerSize:], payload)
	return buf
}

// Unframe verifies a framed file's header and checksum and returns its
// payload, or ok=false for any integrity failure (short file, bad magic or
// version, length mismatch, checksum mismatch).
func Unframe(data []byte) (payload []byte, ok bool) {
	if len(data) < headerSize || [4]byte(data[:4]) != magic {
		return nil, false
	}
	n := binary.LittleEndian.Uint64(data[4:12])
	sum := binary.LittleEndian.Uint64(data[12:20])
	payload = data[headerSize:]
	if uint64(len(payload)) != n || fnv1a64(payload) != sum {
		return nil, false
	}
	return payload, true
}

// Get returns the verified payload stored under key. Every failure mode —
// absent entry, unreadable file (after transient-error retries), framing
// violation — is a miss; entries that exist but fail verification are
// additionally quarantined so the next run does not re-read known-bad
// bytes.
func (s *Store) Get(key string) ([]byte, bool) {
	return s.get(context.Background(), key)
}

// GetCtx is Get gated by a context: a cancelled ctx returns not-found
// without touching the disk, so a cancelled certification never blocks on
// store I/O. The skip is not counted as a miss — no lookup happened, and
// the hit/miss counters feed warm-vs-cold reporting that must stay
// truthful across interrupted runs. A live ctx also bounds the retry
// backoff, so cancellation wins mid-retry too.
func (s *Store) GetCtx(ctx context.Context, key string) ([]byte, bool) {
	if ctx.Err() != nil {
		return nil, false
	}
	return s.get(ctx, key)
}

func (s *Store) get(ctx context.Context, key string) ([]byte, bool) {
	if !validKey(key) {
		count(s.misses, gMisses, 1)
		return nil, false
	}
	var data []byte
	err := s.do(ctx, func() error {
		var e error
		data, e = s.fs.ReadFile(s.entryPath(key))
		return e
	})
	if err != nil {
		count(s.misses, gMisses, 1)
		return nil, false
	}
	payload, ok := Unframe(data)
	if !ok {
		s.Quarantine(key)
		count(s.misses, gMisses, 1)
		return nil, false
	}
	count(s.hits, gHits, 1)
	return payload, true
}

// PutCtx is Put gated by a context: a cancelled ctx skips the write
// entirely and returns ctx's error, so an abandoned run leaves no fresh
// entries behind. Entries that do get written are complete by
// construction (temp file + atomic rename) — cancellation can only
// suppress a write, never truncate one.
func (s *Store) PutCtx(ctx context.Context, key string, payload []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.put(ctx, key, payload)
}

// Put stores payload under key, atomically: the framed entry is written to
// the store's tmp directory and renamed into place, so a concurrent Get
// (or a reader in another process) sees either the old entry, the new one,
// or a miss — never a torn write. Losing a Put/Put race is harmless:
// content addressing makes both writers' bytes identical. Transient
// failures are retried from scratch (a fresh temp file each attempt);
// failed attempts' temp files are removed best-effort, with failures of
// that removal counted in cleanup_errors.
func (s *Store) Put(key string, payload []byte) error {
	return s.put(context.Background(), key, payload)
}

func (s *Store) put(ctx context.Context, key string, payload []byte) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	framed := Frame(payload)
	if err := s.do(ctx, func() error { return s.putOnce(key, framed) }); err != nil {
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	count(s.puts, gPuts, 1)
	gEntryBytes.Observe(0, int64(len(payload)))
	return nil
}

// putOnce is one attempt of the temp-write-rename sequence.
func (s *Store) putOnce(key string, framed []byte) error {
	if err := s.fs.MkdirAll(filepath.Join(s.dir, key[:2]), 0o755); err != nil {
		return err
	}
	tmp, err := s.fs.CreateTemp(filepath.Join(s.dir, tmpDirName), key+".*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(framed)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = s.fs.Rename(tmpName, s.entryPath(key))
	}
	if werr != nil {
		if s.fs.Remove(tmpName) != nil {
			count(s.cleanupErrors, gCleanupErrors, 1)
		}
		return werr
	}
	return nil
}

// Reject reclassifies an entry Get just served: the caller's decoder
// refused a payload that passed framing (e.g. a record from an
// incompatible codec version). The hit becomes a miss — the entry was not
// usable, and warm-vs-cold reporting must say so — and the entry is
// quarantined.
func (s *Store) Reject(key string) {
	count(s.hits, gHits, -1)
	count(s.misses, gMisses, 1)
	s.Quarantine(key)
}

// Quarantine moves the entry stored under key into the quarantine
// directory. Get calls it for framing failures; decode-level failures go
// through Reject, which also fixes up the hit/miss accounting. Failures
// of the move-aside itself (the entry could be neither renamed nor
// removed) are counted in cleanup_errors: the store could not stop a
// known-bad file from being re-read.
func (s *Store) Quarantine(key string) {
	if !validKey(key) {
		return
	}
	src := s.entryPath(key)
	dst := filepath.Join(s.dir, quarDirName, key+suffix)
	// A previous quarantine of the same key gives way; only unexpected
	// failures to clear it count as cleanup errors.
	if rerr := s.fs.Remove(dst); rerr != nil && !os.IsNotExist(rerr) {
		count(s.cleanupErrors, gCleanupErrors, 1)
	}
	if err := s.fs.Rename(src, dst); err != nil {
		// Rename can fail when another process already moved or removed
		// the entry; removing covers the remaining local failure modes.
		if rmErr := s.fs.Remove(src); rmErr != nil {
			if !os.IsNotExist(rmErr) {
				count(s.cleanupErrors, gCleanupErrors, 1)
			}
			return
		}
	}
	count(s.quarantined, gQuarantined, 1)
}

// List enumerates the stored entries (quarantined and in-flight files
// excluded), sorted by key.
func (s *Store) List() ([]Entry, error) {
	shards, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: list: %w", err)
	}
	var out []Entry
	for _, sh := range shards {
		if !sh.IsDir() || sh.Name() == tmpDirName || sh.Name() == quarDirName {
			continue
		}
		files, err := s.fs.ReadDir(filepath.Join(s.dir, sh.Name()))
		if err != nil {
			continue // shard vanished under a concurrent GC
		}
		for _, f := range files {
			key, isEntry := strings.CutSuffix(f.Name(), suffix)
			if f.IsDir() || !isEntry || !validKey(key) {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			out = append(out, Entry{Key: key, Size: info.Size(), ModTime: info.ModTime()})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Verify integrity-checks every stored entry, quarantining the ones whose
// framing no longer verifies, and returns the surviving count plus the
// keys of the quarantined entries.
func (s *Store) Verify() (ok int, bad []string, err error) {
	entries, err := s.List()
	if err != nil {
		return 0, nil, err
	}
	for _, en := range entries {
		data, rerr := s.fs.ReadFile(s.entryPath(en.Key))
		if rerr != nil {
			continue // removed concurrently: neither good nor bad
		}
		if _, valid := Unframe(data); !valid {
			s.Quarantine(en.Key)
			bad = append(bad, en.Key)
			continue
		}
		ok++
	}
	sort.Strings(bad)
	return ok, bad, nil
}

// staleTmpAge is how old an in-flight temp file must be before GC treats
// it as the orphan of a crashed writer rather than a live Put.
const staleTmpAge = time.Hour

// GC bounds the store to maxBytes of entry data by evicting entries
// oldest-first (by modification time) until the total fits. It also
// reclaims the space no other path ever frees: quarantined entries (their
// post-mortem window ends at the next GC) and temp files orphaned by
// crashed writers (older than an hour, so a live Put is never raced). It
// returns the live-entry eviction count and the total bytes freed.
func (s *Store) GC(maxBytes int64) (evicted int, freed int64, err error) {
	if maxBytes < 0 {
		return 0, 0, fmt.Errorf("store: gc: negative size bound %d", maxBytes)
	}
	freed += s.purgeDir(filepath.Join(s.dir, quarDirName), 0)
	freed += s.purgeDir(filepath.Join(s.dir, tmpDirName), staleTmpAge)
	victims, err := s.evictionPlan(maxBytes)
	if err != nil {
		return 0, freed, err
	}
	for _, en := range victims {
		if rerr := s.fs.Remove(s.entryPath(en.Key)); rerr != nil && !os.IsNotExist(rerr) {
			return evicted, freed, fmt.Errorf("store: gc: %w", rerr)
		}
		freed += en.Size
		evicted++
		count(s.evicted, gEvicted, 1)
	}
	return evicted, freed, nil
}

// GCPlan is the dry-run half of GC: it returns the live entries an
// oldest-first GC bounded to maxBytes would evict, in eviction order,
// without removing anything (quarantine and stale-temp reclamation are
// unconditional in GC and not listed here — only live-entry evictions are
// a judgment call worth previewing).
func (s *Store) GCPlan(maxBytes int64) ([]Entry, error) {
	if maxBytes < 0 {
		return nil, fmt.Errorf("store: gc: negative size bound %d", maxBytes)
	}
	return s.evictionPlan(maxBytes)
}

// evictionPlan selects the oldest live entries whose removal brings the
// store's total entry bytes within maxBytes.
func (s *Store) evictionPlan(maxBytes int64) ([]Entry, error) {
	entries, err := s.List()
	if err != nil {
		return nil, err
	}
	var total int64
	for _, en := range entries {
		total += en.Size
	}
	if total <= maxBytes {
		return nil, nil
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ModTime.Before(entries[j].ModTime) })
	var victims []Entry
	for _, en := range entries {
		if total <= maxBytes {
			break
		}
		total -= en.Size
		victims = append(victims, en)
	}
	return victims, nil
}

// purgeDir removes the plain files of dir older than minAge (zero: all of
// them) and returns the bytes reclaimed.
func (s *Store) purgeDir(dir string, minAge time.Duration) (freed int64) {
	files, err := s.fs.ReadDir(dir)
	if err != nil {
		return 0
	}
	cutoff := time.Now().Add(-minAge)
	for _, f := range files {
		if f.IsDir() {
			continue
		}
		info, err := f.Info()
		if err != nil || info.ModTime().After(cutoff) {
			continue
		}
		if s.fs.Remove(filepath.Join(dir, f.Name())) == nil {
			freed += info.Size()
		}
	}
	return freed
}

// Quarantined enumerates the quarantined entries — corrupt or undecodable
// files set aside for post-mortem (reclaimed by the next GC).
func (s *Store) Quarantined() ([]Entry, error) {
	files, err := s.fs.ReadDir(filepath.Join(s.dir, quarDirName))
	if err != nil {
		return nil, fmt.Errorf("store: quarantined: %w", err)
	}
	var out []Entry
	for _, f := range files {
		if f.IsDir() {
			continue
		}
		info, err := f.Info()
		if err != nil {
			continue
		}
		out = append(out, Entry{
			Key:     strings.TrimSuffix(f.Name(), suffix),
			Size:    info.Size(),
			ModTime: info.ModTime(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}
