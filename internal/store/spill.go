package store

// The spill area: scratch disk space for the model checker's sealed
// seen-set runs (internal/mc). Unlike the content-addressed store, spill
// files are per-exploration scratch — they carry no identity, live only
// for the run that wrote them, and are reclaimed wholesale.
//
// Layout under a root directory:
//
//	<root>/sess-*/run-NNNNNN.run   one sealed run per file, Frame()-framed
//	<root>/quarantine/             runs that failed integrity on open
//
// Each exploration owns one session directory (NewSpillSession) and
// removes it when done; sessions orphaned by crashed processes age out
// through SpillGC, which the fencecache CLI drives. Every run file uses
// the store's magic+length+checksum framing, so a truncated or bit-flipped
// run degrades to an all-miss cold tier — never to a false "seen" — and
// the offending file moves to quarantine/ for post-mortem.
//
// Like the store, a session routes all I/O through an fsx.FS and retries
// transient failures under the bounded policy; a write that fails every
// attempt surfaces to the engine, which keeps the run in RAM (the
// seal-in-RAM degradation rung) rather than lose it.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"fenceplace/internal/fsx"
)

const (
	runSuffix     = ".run"
	sessPrefix    = "sess-"
	spillReadPerm = 0o755
)

// Spill is one exploration's spill session: a private directory under the
// spill root where sealed runs are written. Write and OpenRun are safe for
// concurrent use by the engine's spiller goroutines.
type Spill struct {
	root   string
	dir    string
	fs     fsx.FS
	policy fsx.RetryPolicy
	seq    atomic.Uint64
}

// NewSpillSession creates a fresh session directory under root (creating
// root and its quarantine subdirectory as needed) and returns the handle
// runs are written through, using the real OS and default retries.
func NewSpillSession(root string) (*Spill, error) {
	return NewSpillSessionConfig(root, Config{})
}

// NewSpillSessionConfig is NewSpillSession with disk-access
// configuration: the fault-injection seam of the chaos suite, and the
// retry bound shared with the baseline store.
func NewSpillSessionConfig(root string, cfg Config) (*Spill, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, fmt.Errorf("store: spill: resolve %q: %w", root, err)
	}
	sp := &Spill{
		root:   abs,
		fs:     fsx.Or(cfg.FS),
		policy: fsx.RetryPolicy{Retries: cfg.Retries},
	}
	err = sp.do(func() error {
		return sp.fs.MkdirAll(filepath.Join(abs, quarDirName), spillReadPerm)
	})
	if err != nil {
		return nil, fmt.Errorf("store: spill: init %q: %w", abs, err)
	}
	err = sp.do(func() (e error) {
		sp.dir, e = sp.fs.MkdirTemp(abs, sessPrefix)
		return e
	})
	if err != nil {
		return nil, fmt.Errorf("store: spill: session under %q: %w", abs, err)
	}
	return sp, nil
}

// do runs op under the session's retry policy, metering retries and
// give-ups into the process-wide io counters. Spiller goroutines carry no
// context — the loop is bounded by attempts, not cancellation.
func (sp *Spill) do(op func() error) error {
	retries, err := sp.policy.Do(context.Background(), op)
	if retries > 0 {
		gIORetries.Add(0, int64(retries))
	}
	if err != nil && fsx.Transient(err) {
		gIOGiveups.Add(0, 1)
	}
	return err
}

// Dir returns the session directory runs are written into.
func (sp *Spill) Dir() string { return sp.dir }

// Write frames payload and writes it to a fresh run file in the session
// directory, returning the file's path. Spill files are single-writer
// scratch, so no temp-and-rename dance is needed; a torn write from a
// crash (or an injected short write) is caught by OpenRun's verification
// like any other corruption. Transient failures are retried; a path that
// fails every attempt is removed best-effort so a torn prefix cannot
// linger.
func (sp *Spill) Write(payload []byte) (string, error) {
	path := filepath.Join(sp.dir, fmt.Sprintf("run-%06d%s", sp.seq.Add(1), runSuffix))
	framed := Frame(payload)
	if err := sp.do(func() error { return sp.fs.WriteFile(path, framed, 0o644) }); err != nil {
		if sp.fs.Remove(path) != nil {
			gCleanupErrors.Add(0, 1)
		}
		return "", fmt.Errorf("store: spill: write %s: %w", path, err)
	}
	return path, nil
}

// OpenRun verifies a spilled run's framing end to end (one sequential
// read) and returns the file opened for random access plus the payload
// length; the payload begins at offset HeaderSize. Any integrity failure
// — unreadable file, bad magic, length or checksum mismatch — quarantines
// the file and returns an error, so the caller treats the run as all-miss
// and can never read torn bytes as fingerprints.
func (sp *Spill) OpenRun(path string) (fsx.File, int64, error) {
	payload, err := sp.ReadRunPayload(path)
	if err != nil {
		return nil, 0, err
	}
	var f fsx.File
	err = sp.do(func() (e error) {
		f, e = sp.fs.Open(path)
		return e
	})
	if err != nil {
		return nil, 0, fmt.Errorf("store: spill: reopen %s: %w", path, err)
	}
	return f, int64(len(payload)), nil
}

// ReadRunPayload reads and verifies a spilled run in one shot, returning
// its payload (without opening it for random access). Integrity failures
// quarantine the file, exactly as in OpenRun; the model checker's filter
// rebuild uses this to stream whole runs.
func (sp *Spill) ReadRunPayload(path string) ([]byte, error) {
	var data []byte
	err := sp.do(func() (e error) {
		data, e = sp.fs.ReadFile(path)
		return e
	})
	if err != nil {
		sp.Quarantine(path)
		return nil, fmt.Errorf("store: spill: open %s: %w", path, err)
	}
	payload, ok := Unframe(data)
	if !ok {
		sp.Quarantine(path)
		return nil, fmt.Errorf("store: spill: %s failed integrity verification (quarantined)", path)
	}
	return payload, nil
}

// Quarantine moves a run file into the spill root's quarantine directory
// (or removes it when the move fails), so a corrupt run is preserved for
// post-mortem but never re-read as data. A run that can be neither moved
// nor removed counts as a cleanup error.
func (sp *Spill) Quarantine(path string) {
	dst := filepath.Join(sp.root, quarDirName, filepath.Base(sp.dir)+"-"+filepath.Base(path))
	if rerr := sp.fs.Remove(dst); rerr != nil && !os.IsNotExist(rerr) {
		gCleanupErrors.Add(0, 1)
	}
	if err := sp.fs.Rename(path, dst); err != nil {
		if rmErr := sp.fs.Remove(path); rmErr != nil && !os.IsNotExist(rmErr) {
			gCleanupErrors.Add(0, 1)
		}
	}
}

// Remove deletes the whole session directory — the normal end of an
// exploration. Quarantined runs survive in <root>/quarantine until the
// next SpillGC.
func (sp *Spill) Remove() error {
	return sp.fs.RemoveAll(sp.dir)
}

// SpillEntry is one reclaimable item under a spill root: a stale session
// directory or a quarantined run file.
type SpillEntry struct {
	Path    string
	Size    int64 // total bytes (recursive for session directories)
	ModTime time.Time
}

// PlanSpillGC lists what SpillGC would reclaim under root: session
// directories untouched for longer than maxAge (the orphans of crashed
// explorations — live sessions keep their directory mtime fresh by
// writing runs) and every quarantined run file. It is the dry-run half of
// SpillGC, shared with the fencecache CLI's gc -n.
func PlanSpillGC(root string, maxAge time.Duration) ([]SpillEntry, error) {
	dirents, err := fsx.OS.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: spill: plan gc %q: %w", root, err)
	}
	cutoff := time.Now().Add(-maxAge)
	var out []SpillEntry
	for _, de := range dirents {
		path := filepath.Join(root, de.Name())
		switch {
		case de.IsDir() && strings.HasPrefix(de.Name(), sessPrefix):
			info, err := de.Info()
			if err != nil || info.ModTime().After(cutoff) {
				continue
			}
			out = append(out, SpillEntry{Path: path, Size: dirSize(path), ModTime: info.ModTime()})
		case de.IsDir() && de.Name() == quarDirName:
			files, err := fsx.OS.ReadDir(path)
			if err != nil {
				continue
			}
			for _, f := range files {
				info, err := f.Info()
				if err != nil || f.IsDir() {
					continue
				}
				out = append(out, SpillEntry{Path: filepath.Join(path, f.Name()), Size: info.Size(), ModTime: info.ModTime()})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ModTime.Before(out[j].ModTime) })
	return out, nil
}

// SpillGC reclaims everything PlanSpillGC lists: stale session
// directories (older than maxAge) and quarantined runs. It returns the
// number of items removed and the bytes freed.
func SpillGC(root string, maxAge time.Duration) (removed int, freed int64, err error) {
	plan, err := PlanSpillGC(root, maxAge)
	if err != nil {
		return 0, 0, err
	}
	for _, en := range plan {
		if rerr := fsx.OS.RemoveAll(en.Path); rerr != nil {
			return removed, freed, fmt.Errorf("store: spill: gc: %w", rerr)
		}
		removed++
		freed += en.Size
	}
	return removed, freed, nil
}

// dirSize sums the plain-file bytes under dir (best effort: unreadable
// entries count zero).
func dirSize(dir string) int64 {
	var total int64
	filepath.WalkDir(dir, func(_ string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if info, ierr := d.Info(); ierr == nil {
			total += info.Size()
		}
		return nil
	})
	return total
}
