package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"fenceplace/internal/fsx"
)

// key returns a distinct valid 32-hex-digit key per index.
func key(i int) string { return fmt.Sprintf("%032x", i+1) }

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	payload := []byte("certification baseline bytes")
	if err := s.Put(key(0), payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key(0))
	if !ok || string(got) != string(payload) {
		t.Fatalf("Get = %q, %v; want the stored payload", got, ok)
	}
	if _, ok := s.Get(key(1)); ok {
		t.Error("Get of an absent key reported a hit")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 put", st)
	}
	// An empty payload is a legal artifact.
	if err := s.Put(key(2), nil); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(key(2)); !ok || len(got) != 0 {
		t.Errorf("empty payload round trip = %q, %v", got, ok)
	}
}

func TestOpenSharesOneStorePerDir(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir)
	b := mustOpen(t, dir)
	if a != b {
		t.Error("two opens of one directory returned distinct stores")
	}
	if c := mustOpen(t, t.TempDir()); c == a {
		t.Error("distinct directories share a store")
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	for _, bad := range []string{"", "ab", "../../../../etc/passwd", "ABCDEF1234", "xyzw", "abc/def0"} {
		if err := s.Put(bad, []byte("x")); err == nil {
			t.Errorf("Put accepted invalid key %q", bad)
		}
		if _, ok := s.Get(bad); ok {
			t.Errorf("Get accepted invalid key %q", bad)
		}
	}
}

// corrupt locates the entry file for key and rewrites it via mutate.
func corrupt(t *testing.T, s *Store, k string, mutate func([]byte) []byte) {
	t.Helper()
	path := filepath.Join(s.Dir(), k[:2], k+".art")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptEntryIsMissAndQuarantined(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	if err := s.Put(key(0), []byte("good bytes")); err != nil {
		t.Fatal(err)
	}
	// Bit-flip the last payload byte: checksum must reject it.
	corrupt(t, s, key(0), func(b []byte) []byte {
		b[len(b)-1] ^= 0x40
		return b
	})
	if _, ok := s.Get(key(0)); ok {
		t.Fatal("bit-flipped entry served as a hit")
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), "quarantine", key(0)+".art")); err != nil {
		t.Errorf("corrupt entry not quarantined: %v", err)
	}
	if _, ok := s.Get(key(0)); ok {
		t.Error("quarantined entry still served")
	}
	if st := s.Stats(); st.Quarantined != 1 || st.Hits != 0 {
		t.Errorf("stats = %+v, want 1 quarantined, 0 hits", st)
	}

	// A truncated entry (torn write survived a crash) is likewise a miss.
	if err := s.Put(key(1), []byte("will be truncated")); err != nil {
		t.Fatal(err)
	}
	corrupt(t, s, key(1), func(b []byte) []byte { return b[:len(b)/2] })
	if _, ok := s.Get(key(1)); ok {
		t.Fatal("truncated entry served as a hit")
	}
	// And so is garbage that never came from the store.
	corruptPath := filepath.Join(s.Dir(), key(2)[:2], key(2)+".art")
	os.MkdirAll(filepath.Dir(corruptPath), 0o755)
	os.WriteFile(corruptPath, []byte("not an entry"), 0o644)
	if _, ok := s.Get(key(2)); ok {
		t.Fatal("foreign file served as a hit")
	}
	// Put over a quarantined key works and serves again.
	if err := s.Put(key(0), []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(key(0)); !ok || string(got) != "fresh" {
		t.Errorf("re-put after quarantine = %q, %v", got, ok)
	}
}

func TestRejectReclassifiesHitAsMiss(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	if err := s.Put(key(0), []byte("framing ok, decoder says no")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key(0)); !ok {
		t.Fatal("entry not served")
	}
	s.Reject(key(0))
	st := s.Stats()
	if st.Hits != 0 || st.Misses != 1 || st.Quarantined != 1 {
		t.Errorf("stats after Reject = %+v, want 0 hits / 1 miss / 1 quarantined", st)
	}
	if _, ok := s.Get(key(0)); ok {
		t.Error("rejected entry still served")
	}
	if quar, err := s.Quarantined(); err != nil || len(quar) != 1 || quar[0].Key != key(0) {
		t.Errorf("Quarantined() = %v, %v; want the rejected key", quar, err)
	}
}

func TestGCReclaimsQuarantineAndStaleTmp(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	if err := s.Put(key(0), []byte("will be rejected")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(1), []byte("stays")); err != nil {
		t.Fatal(err)
	}
	s.Get(key(0))
	s.Reject(key(0))
	// An orphaned temp file from a crashed writer, plus a fresh one that a
	// live Put could still own.
	old := filepath.Join(s.Dir(), "tmp", "orphan.tmp")
	os.WriteFile(old, []byte("orphan"), 0o644)
	stale := time.Now().Add(-2 * time.Hour)
	os.Chtimes(old, stale, stale)
	fresh := filepath.Join(s.Dir(), "tmp", "inflight.tmp")
	os.WriteFile(fresh, []byte("inflight"), 0o644)

	evicted, freed, err := s.GC(1 << 20) // bound far above the live entry
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 0 {
		t.Errorf("GC evicted %d live entries under a generous bound", evicted)
	}
	if freed == 0 {
		t.Error("GC freed nothing despite quarantine and an orphaned temp file")
	}
	if quar, _ := s.Quarantined(); len(quar) != 0 {
		t.Errorf("quarantine not purged: %v", quar)
	}
	if _, err := os.Stat(old); !os.IsNotExist(err) {
		t.Error("stale temp file survived GC")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("fresh temp file (a possibly live Put) was removed")
	}
	if _, ok := s.Get(key(1)); !ok {
		t.Error("live entry lost")
	}
}

func TestVerifyQuarantinesBadEntries(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	for i := 0; i < 3; i++ {
		if err := s.Put(key(i), []byte(strings.Repeat("x", i+1))); err != nil {
			t.Fatal(err)
		}
	}
	corrupt(t, s, key(1), func(b []byte) []byte {
		b[0] ^= 0xff // clobber the magic
		return b
	})
	ok, bad, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if ok != 2 || len(bad) != 1 || bad[0] != key(1) {
		t.Errorf("Verify = %d ok, bad %v; want 2 ok, [%s]", ok, bad, key(1))
	}
	entries, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Errorf("after Verify, List holds %d entries, want 2", len(entries))
	}
}

func TestGCEvictsOldestFirst(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	payload := []byte(strings.Repeat("p", 100))
	for i := 0; i < 4; i++ {
		if err := s.Put(key(i), payload); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so eviction order is well defined.
		old := time.Now().Add(time.Duration(i-10) * time.Hour)
		if err := os.Chtimes(filepath.Join(s.Dir(), key(i)[:2], key(i)+".art"), old, old); err != nil {
			t.Fatal(err)
		}
	}
	entries, _ := s.List()
	var perEntry int64 = entries[0].Size
	// Budget for two entries: the two oldest (keys 0 and 1) must go.
	evicted, freed, err := s.GC(2 * perEntry)
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 2 || freed != 2*perEntry {
		t.Fatalf("GC evicted %d entries / %d bytes, want 2 / %d", evicted, freed, 2*perEntry)
	}
	for i, wantAlive := range []bool{false, false, true, true} {
		_, ok := s.Get(key(i))
		if ok != wantAlive {
			t.Errorf("after GC, key(%d) alive = %v, want %v", i, ok, wantAlive)
		}
	}
	if st := s.Stats(); st.Evicted != 2 {
		t.Errorf("stats.Evicted = %d, want 2", st.Evicted)
	}
	// A second GC under the same bound is a no-op.
	if evicted, _, _ := s.GC(2 * perEntry); evicted != 0 {
		t.Errorf("idempotent GC evicted %d entries", evicted)
	}
	if _, _, err := s.GC(-1); err == nil {
		t.Error("GC accepted a negative bound")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := key(i % 8)
			payload := []byte(strings.Repeat("v", 64))
			if err := s.Put(k, payload); err != nil {
				t.Errorf("put %s: %v", k, err)
				return
			}
			if got, ok := s.Get(k); ok && string(got) != string(payload) {
				t.Errorf("get %s returned torn data", k)
			}
		}(i)
	}
	wg.Wait()
	entries, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 8 {
		t.Errorf("%d entries after concurrent puts, want 8", len(entries))
	}
	// No stray temp files once all writes have landed.
	tmps, _ := os.ReadDir(filepath.Join(s.Dir(), "tmp"))
	if len(tmps) != 0 {
		t.Errorf("%d leftover temp files", len(tmps))
	}
}

// TestTwoProcessesSharingOneCacheDir simulates two independent processes
// on one cache directory (separate handles via a non-nil Config.FS, which
// bypasses the per-directory memoization): concurrent Puts of the same
// key, plus GC racing readers and re-putters, must never surface a torn
// or corrupt read — every successful Get returns exactly some payload a
// writer stored under that key.
func TestTwoProcessesSharingOneCacheDir(t *testing.T) {
	dir := t.TempDir()
	open := func() *Store {
		t.Helper()
		s, err := OpenConfig(dir, Config{FS: fsx.OS})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := open(), open()
	if a == b {
		t.Fatal("non-nil Config.FS must yield private handles")
	}

	// The set of byte payloads any writer may legitimately store under the
	// shared key. A Get that succeeds must return one of them, whole.
	valid := make(map[string]bool)
	for v := 0; v < 4; v++ {
		valid[strings.Repeat(fmt.Sprintf("payload-%d|", v), 32)] = true
	}
	k := key(0)

	var rw sync.WaitGroup // writers + readers (bounded iteration counts)
	// Writers on both handles hammer the same key with distinct payloads.
	for v := 0; v < 4; v++ {
		rw.Add(1)
		go func(v int, s *Store) {
			defer rw.Done()
			payload := []byte(strings.Repeat(fmt.Sprintf("payload-%d|", v), 32))
			for i := 0; i < 200; i++ {
				if err := s.Put(k, payload); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(v, []*Store{a, b}[v%2])
	}
	// Readers on both handles: any ok Get must be an exact stored payload.
	// An eviction or a concurrent replace may turn the read into a miss —
	// never into torn bytes.
	for r := 0; r < 4; r++ {
		rw.Add(1)
		go func(s *Store) {
			defer rw.Done()
			for i := 0; i < 400; i++ {
				if got, ok := s.Get(k); ok && !valid[string(got)] {
					t.Errorf("corrupt read: %d bytes, prefix %.40q", len(got), got)
					return
				}
			}
		}([]*Store{a, b}[r%2])
	}
	// GC(0) on the second handle runs for the whole racing phase, evicting
	// whatever has landed while the other process is mid-Put and mid-Get.
	stopc := make(chan struct{})
	gcDone := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stopc:
				gcDone <- nil
				return
			default:
			}
			if _, _, err := b.GC(0); err != nil {
				gcDone <- err
				return
			}
		}
	}()
	rw.Wait()
	close(stopc)
	if err := <-gcDone; err != nil {
		t.Fatalf("gc racing the shared dir: %v", err)
	}

	// The shared directory must still verify clean: no torn entries, no
	// quarantine fallout from the races.
	if _, bad, err := a.Verify(); err != nil || len(bad) != 0 {
		t.Fatalf("Verify after shared-dir races: bad=%v err=%v", bad, err)
	}
}
