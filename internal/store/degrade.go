package store

// The graceful-degradation ladder. Every persistence failure the pipeline
// survives lands on a rung, and the rung is the contract: an exact result
// computed with less help from the disk, or an explicitly truncated
// verdict — never a silently wrong outcome set.
//
//	DegradeNone       everything worked
//	DegradeUncached   the baseline cache was unusable (unwritable dir,
//	                  failed write-back): certification re-explores from
//	                  scratch — exact, just slower
//	DegradeSealInRAM  the spill area failed mid-run: sealed seen-set runs
//	                  stay in RAM — exact, but the memory cap now bites
//	                  sooner
//	DegradeTruncated  the exploration budget was truly exhausted: the
//	                  verdict is explicitly three-valued (ErrTruncated)
//
// The process-wide degraded_mode gauge records the highest rung reached
// (monotonic max), so one end-of-run snapshot answers "did anything
// degrade, and how badly". Per-rung counters record how often each
// fallback engaged.

import (
	"sync"

	"fenceplace/internal/telemetry"
)

// Degradation rungs, in order of increasing severity.
const (
	DegradeNone      = 0
	DegradeUncached  = 1
	DegradeSealInRAM = 2
	DegradeTruncated = 3
)

var (
	gDegradedMode = telemetry.NewGauge("degraded_mode")
	gDegUncached  = telemetry.NewCounter("store.degraded_uncached")
	gDegSealInRAM = telemetry.NewCounter("store.degraded_seal_in_ram")
)

var (
	degMu   sync.Mutex
	degRung int
)

// NoteDegraded records that the pipeline fell to the given rung. The
// degraded_mode gauge keeps the maximum rung seen so far; lower or equal
// rungs are no-ops.
func NoteDegraded(rung int) {
	degMu.Lock()
	defer degMu.Unlock()
	if rung > degRung {
		degRung = rung
		gDegradedMode.Set(0, int64(rung))
	}
}

// NoteUncached records one fall to the certify-uncached rung: the
// baseline cache could not be opened, read back, or written.
func NoteUncached() {
	gDegUncached.Inc(0)
	NoteDegraded(DegradeUncached)
}

// NoteSealInRAM records one fall to the seal-in-RAM rung: the spill area
// failed (at session setup or mid-run) and a sealed run stayed in memory.
func NoteSealInRAM() {
	gDegSealInRAM.Inc(0)
	NoteDegraded(DegradeSealInRAM)
}

// DegradedMode returns the highest rung recorded since process start (or
// the last ResetDegraded).
func DegradedMode() int {
	degMu.Lock()
	defer degMu.Unlock()
	return degRung
}

// ResetDegraded clears the recorded rung — a test seam, so each chaos
// schedule observes its own ladder.
func ResetDegraded() {
	degMu.Lock()
	defer degMu.Unlock()
	degRung = 0
	gDegradedMode.Set(0, 0)
}
