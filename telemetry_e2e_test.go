package fenceplace_test

// End-to-end observability tests through the public API: progress
// streaming from CertifyCtx, corpus-row events from the Runner, and trace
// emission on the certification path. TestMain additionally gives the
// benchmark runs a metrics egress: with FENCEPLACE_BENCH_METRICS set, the
// final telemetry snapshot is written there after the run, where CI's
// benchjson -metrics folds it into the benchmark record.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"fenceplace"
	"fenceplace/corpus"
	"fenceplace/internal/progs"
	"fenceplace/internal/telemetry"
)

func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("FENCEPLACE_BENCH_METRICS"); path != "" {
		data, err := json.MarshalIndent(telemetry.Default().Snapshot(), "", "  ")
		if err == nil {
			err = os.WriteFile(path, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench metrics:", err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}

// analyzedControl builds a reduced corpus kernel and analyzes its Control
// placement, the cheapest certifiable fixture.
func analyzedControl(t testing.TB, name string, threads int, size int64) *fenceplace.Result {
	t.Helper()
	m := progs.ByName(name)
	if m == nil {
		t.Fatalf("unknown program %q", name)
	}
	pp := m.Defaults
	pp.Threads = threads
	pp.Size = size
	return fenceplace.Analyze(m.Build(pp), fenceplace.Control)
}

// TestProgressStreamsCertification drives WithProgress end to end: one
// certification must produce heartbeat streams for both explorations, each
// closed by a Final event whose exact total matches the report, and the
// global registry's states_visited must advance by exactly the report's
// combined total (the acceptance-criterion invariant, measured through the
// public API).
func TestProgressStreamsCertification(t *testing.T) {
	res := analyzedControl(t, "dekker", 2, 1)
	before := telemetry.NewCounter("mc.states_visited").Value()

	var (
		mu     sync.Mutex
		events []fenceplace.ProgressEvent
	)
	rep, err := fenceplace.CertifyCtx(context.Background(), res, nil,
		fenceplace.WithCacheDir(""), // no store: both explorations must run
		fenceplace.WithProgress(func(e fenceplace.ProgressEvent) {
			mu.Lock()
			events = append(events, e)
			mu.Unlock()
		}),
		fenceplace.WithProgressInterval(time.Microsecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equivalent {
		t.Fatalf("dekker/Control not SC-equivalent: %s", rep)
	}

	finals := map[string]int64{}
	for _, e := range events {
		if e.Kind != fenceplace.ProgressExplore {
			t.Fatalf("unexpected event kind %v from a certification", e.Kind)
		}
		if e.Final {
			if _, dup := finals[e.Mode]; dup {
				t.Fatalf("two Final events for mode %s", e.Mode)
			}
			finals[e.Mode] = e.States
		}
	}
	if finals["SC"] != rep.VisitedSC {
		t.Errorf("SC final event: %d states, report says %d", finals["SC"], rep.VisitedSC)
	}
	if finals["TSO"] != rep.VisitedTSO {
		t.Errorf("TSO final event: %d states, report says %d", finals["TSO"], rep.VisitedTSO)
	}
	delta := telemetry.NewCounter("mc.states_visited").Value() - before
	if want := rep.VisitedSC + rep.VisitedTSO; delta != want {
		t.Errorf("mc.states_visited advanced by %d, want %d (VisitedSC+VisitedTSO)", delta, want)
	}
}

// testSource is a two-kernel corpus for row-event testing.
type testSource struct{ names []string }

func (s *testSource) Label() string     { return "telemetry-test" }
func (s *testSource) Len() int          { return len(s.names) }
func (s *testSource) Name(i int) string { return s.names[i] }
func (s *testSource) Build(i int) *fenceplace.Program {
	m := progs.ByName(s.names[i])
	pp := m.Defaults
	pp.Threads = 2
	pp.Size = 1
	return m.Build(pp)
}
func (s *testSource) BuildManual(int) *fenceplace.Program { return nil }

// TestCorpusRowProgress checks the Runner's per-row completion events:
// exactly one per member, serialized, with RowsDone counting up to the
// source's length.
func TestCorpusRowProgress(t *testing.T) {
	src := &testSource{names: []string{"dekker", "peterson"}}
	var (
		mu   sync.Mutex
		rows []fenceplace.ProgressEvent
	)
	r := corpus.Runner{
		Workers: 2,
		Options: []fenceplace.Option{
			fenceplace.WithProgress(func(e fenceplace.ProgressEvent) {
				if e.Kind != fenceplace.ProgressRow {
					return
				}
				mu.Lock()
				rows = append(rows, e)
				mu.Unlock()
			}),
		},
	}
	rep, err := r.Run(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != src.Len() {
		t.Fatalf("%d report rows, want %d", len(rep.Rows), src.Len())
	}
	if len(rows) != src.Len() {
		t.Fatalf("%d row events, want %d", len(rows), src.Len())
	}
	seen := map[int]bool{}
	for _, e := range rows {
		if e.RowsTotal != src.Len() {
			t.Errorf("RowsTotal = %d, want %d", e.RowsTotal, src.Len())
		}
		if e.RowsDone < 1 || e.RowsDone > src.Len() || seen[e.RowsDone] {
			t.Errorf("RowsDone sequence broken: %v", rows)
		}
		seen[e.RowsDone] = true
		if e.Program != "dekker" && e.Program != "peterson" {
			t.Errorf("row event for unknown program %q", e.Program)
		}
	}
}

// TestTraceThroughCertification installs a trace sink, certifies, and
// checks the produced file is a valid Chrome trace-event array carrying
// the exploration spans.
func TestTraceThroughCertification(t *testing.T) {
	res := analyzedControl(t, "dekker", 2, 1)

	var buf bytes.Buffer
	tw := telemetry.NewTraceWriter(&buf)
	prev := telemetry.SetTrace(tw)
	defer telemetry.SetTrace(prev)

	rep, err := fenceplace.CertifyCtx(context.Background(), res, nil, fenceplace.WithCacheDir(""))
	telemetry.SetTrace(prev)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equivalent {
		t.Fatalf("dekker/Control not SC-equivalent: %s", rep)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	var evs []struct {
		Name string           `json:"name"`
		Cat  string           `json:"cat"`
		Ph   string           `json:"ph"`
		Args map[string]int64 `json:"args"`
	}
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	modes := map[string]int64{}
	for _, ev := range evs {
		if ev.Ph != "X" {
			t.Errorf("unexpected phase %q", ev.Ph)
		}
		if ev.Cat == "mc" {
			modes[ev.Name] = ev.Args["visited"]
		}
	}
	sc, tso := modes["explore dekker/SC"], modes["explore dekker/TSO"]
	if sc != rep.VisitedSC || tso != rep.VisitedTSO {
		t.Errorf("explore spans report visited SC=%d TSO=%d, report says %d/%d (spans: %v)",
			sc, tso, rep.VisitedSC, rep.VisitedTSO, modes)
	}
}
