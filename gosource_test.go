package fenceplace_test

import (
	"context"
	"path/filepath"
	"sort"
	"testing"

	"fenceplace"
	"fenceplace/internal/progs"
)

// twinPairs maps each testdata/gosource twin onto the hand-built
// original it mirrors and the parameters the original is built at. The
// twins hardcode these sizes (const size), so the pair explores the same
// state space.
var twinPairs = []struct {
	name   string
	file   string
	params progs.Params
}{
	{"dekker", "dekker.go", progs.Params{Threads: 2, Size: 2}},
	{"peterson", "peterson.go", progs.Params{Threads: 2, Size: 2}},
	{"treiber", "treiber.go", progs.Params{Threads: 2, Size: 1}},
	{"spinlock", "spinlock.go", progs.Params{Threads: 2, Size: 2}},
}

func lookupProg(t *testing.T, name string) *progs.Meta {
	t.Helper()
	for _, m := range progs.All() {
		if m.Name == name {
			return m
		}
	}
	t.Fatalf("program %q not in the registry", name)
	return nil
}

// certProfile is everything the differential compares: the SC outcome
// set of the uninstrumented program and, per strategy, the certification
// verdict with its outcome counts.
type certProfile struct {
	scKeys   []string
	verdicts map[fenceplace.Strategy][3]int64 // equivalent(0/1), #SC, #TSO
}

func profile(t *testing.T, prog *fenceplace.Program) certProfile {
	t.Helper()
	ctx := context.Background()
	az := fenceplace.NewAnalyzer(prog)

	base, err := az.BaselineCtx(ctx, nil)
	if err != nil {
		t.Fatalf("%s: SC baseline: %v", prog.Name, err)
	}
	p := certProfile{verdicts: make(map[fenceplace.Strategy][3]int64)}
	for k := range base.SC.Outcomes {
		p.scKeys = append(p.scKeys, k)
	}
	sort.Strings(p.scKeys)

	strategies := []fenceplace.Strategy{
		fenceplace.PensieveOnly, fenceplace.Control, fenceplace.AddressControl,
	}
	results, err := az.AnalyzeAllCtx(ctx, strategies...)
	if err != nil {
		t.Fatalf("%s: analyze: %v", prog.Name, err)
	}
	for _, res := range results {
		rep, err := az.CertifyProgramCtx(ctx, res.Instrumented, nil)
		if err != nil {
			t.Fatalf("%s/%s: certify: %v", prog.Name, res.Strategy, err)
		}
		eq := int64(0)
		if rep.Equivalent {
			eq = 1
		}
		p.verdicts[res.Strategy] = [3]int64{eq, int64(rep.SCOutcomes), int64(rep.TSOOutcomes)}
	}
	return p
}

// TestGoTwinsMatchHandBuilt is the frontend's differential pin: each
// real-Go twin in testdata/gosource must lower to IR whose SC outcome
// set and per-strategy certification verdicts are identical to the
// hand-built original in internal/progs. A lowering change that alters
// any observable shared-memory behavior fails here.
func TestGoTwinsMatchHandBuilt(t *testing.T) {
	if testing.Short() {
		t.Skip("differential certification is not a -short test")
	}
	for _, pair := range twinPairs {
		t.Run(pair.name, func(t *testing.T) {
			t.Parallel()
			orig := lookupProg(t, pair.name).Build(pair.params)
			twin, err := fenceplace.ParseGoFile(filepath.Join("testdata", "gosource", pair.file))
			if err != nil {
				t.Fatalf("ParseGoFile: %v", err)
			}

			want := profile(t, orig)
			got := profile(t, twin)

			if len(want.scKeys) != len(got.scKeys) {
				t.Fatalf("SC outcome sets differ: hand-built %d, twin %d\nhand-built: %v\ntwin: %v",
					len(want.scKeys), len(got.scKeys), want.scKeys, got.scKeys)
			}
			for i := range want.scKeys {
				if want.scKeys[i] != got.scKeys[i] {
					t.Fatalf("SC outcome %d differs: hand-built %q, twin %q", i, want.scKeys[i], got.scKeys[i])
				}
			}
			for s, w := range want.verdicts {
				g := got.verdicts[s]
				if w != g {
					t.Errorf("%s: verdict differs: hand-built (eq=%d sc=%d tso=%d), twin (eq=%d sc=%d tso=%d)",
						s, w[0], w[1], w[2], g[0], g[1], g[2])
				}
			}
		})
	}
}

// TestAnalyzeSourceCtx pins the one-call source entry point: Go source
// in, fence-placement result out.
func TestAnalyzeSourceCtx(t *testing.T) {
	src := `package sb

import "sync"

var (
	x int64
	y int64
	r0 int64
	r1 int64
)

var wg sync.WaitGroup

func t0() {
	defer wg.Done()
	x = 1
	r0 = y
}

func t1() {
	defer wg.Done()
	y = 1
	r1 = x
}

func main() {
	wg.Add(2)
	go t0()
	go t1()
	wg.Wait()
}
`
	res, err := fenceplace.AnalyzeSourceCtx(context.Background(), "sb.go", []byte(src), fenceplace.PensieveOnly)
	if err != nil {
		t.Fatalf("AnalyzeSourceCtx: %v", err)
	}
	if res.FullFences == 0 {
		t.Fatal("store-buffering source got no full fences; the w->r orderings were lost in lowering")
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("plan verification: %v", err)
	}
}

// TestAnalyzeSourceCtxDiagnostics pins the error path: subset violations
// surface as a position-sorted diagnostic list, not a lowered program.
func TestAnalyzeSourceCtxDiagnostics(t *testing.T) {
	src := "package p\n\nvar ch chan int64\n\nfunc main() {\n\tch <- 1\n}\n"
	_, err := fenceplace.AnalyzeSourceCtx(context.Background(), "p.go", []byte(src), fenceplace.PensieveOnly)
	if err == nil {
		t.Fatal("AnalyzeSourceCtx accepted a channel program")
	}
	diags, ok := err.(fenceplace.SourceDiagList)
	if !ok {
		t.Fatalf("error is %T, want SourceDiagList: %v", err, err)
	}
	if len(diags) == 0 {
		t.Fatal("empty diagnostic list")
	}
}
