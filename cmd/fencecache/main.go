// Command fencecache inspects and maintains the persistent
// certification-baseline store that fencecheck and paperbench warm-start
// from (see internal/store):
//
//	fencecache -dir /var/cache/fenceplace stats            # entry count, bytes, quarantine
//	fencecache -dir /var/cache/fenceplace stats -json      # machine-readable, telemetry counters included
//	fencecache -dir /var/cache/fenceplace ls               # one line per entry
//	fencecache -dir /var/cache/fenceplace verify           # integrity-check everything
//	fencecache -dir /var/cache/fenceplace gc -max-bytes 1048576
//	fencecache -dir /var/cache/fenceplace gc -n -max-bytes 1048576   # dry run
//	fencecache -dir /var/cache/fenceplace gc -max-bytes 1048576 -spill /tmp/fp-spill
//
// -dir defaults to $FENCEPLACE_CACHE_DIR and must name an existing store.
// verify quarantines corrupt entries (they become cache misses, never
// wrong data) and exits 1 when it found any; gc evicts live entries
// oldest-first until the store fits the bound, and reclaims quarantined
// entries and stale temp files while it is at it. gc -n previews the
// eviction list without removing anything; gc -spill DIR additionally
// sweeps a seen-set spill area (see WithSpillDir): sessions orphaned by
// crashed explorations and quarantined runs.
//
// Exit status: 0 ok, 1 verification failures, 2 usage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"fenceplace/internal/cli"
	"fenceplace/internal/store"
)

func usage() {
	fmt.Fprintf(os.Stderr, "usage: fencecache [-dir DIR] stats|ls|verify|gc [-n] [-max-bytes N] [-spill DIR]\n")
	flag.PrintDefaults()
}

func main() {
	dir := flag.String("dir", "", "baseline store directory (default $FENCEPLACE_CACHE_DIR)")
	version := flag.Bool("version", false, "print the build identity and exit")
	flag.Usage = usage
	flag.Parse()
	if *version {
		cli.Version()
		return
	}

	d := *dir
	if d == "" {
		d = os.Getenv("FENCEPLACE_CACHE_DIR")
	}
	if d == "" || flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	// Inspection must not conjure a store skeleton at a mistyped path and
	// then report it empty-and-healthy; only certification runs create
	// stores.
	if info, err := os.Stat(d); err != nil || !info.IsDir() {
		fmt.Fprintf(os.Stderr, "fencecache: %s is not an existing store directory\n", d)
		os.Exit(2)
	}
	st, err := store.Open(d)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	switch cmd := flag.Arg(0); cmd {
	case "stats":
		fs := flag.NewFlagSet("stats", flag.ExitOnError)
		jsonOut := fs.Bool("json", false, "emit the stats as JSON, telemetry counters included")
		fs.Parse(flag.Args()[1:])
		entries := mustList(st)
		var bytes int64
		for _, en := range entries {
			bytes += en.Size
		}
		quar, _ := st.Quarantined()
		if *jsonOut {
			// The counters come from the store's telemetry registry — the
			// same "store.*" names the unified snapshot reports — scoped to
			// this store handle's operations.
			out := struct {
				Dir         string           `json:"dir"`
				Entries     int              `json:"entries"`
				Bytes       int64            `json:"bytes"`
				Quarantined int              `json:"quarantined"`
				Counters    map[string]int64 `json:"counters"`
			}{st.Dir(), len(entries), bytes, len(quar), st.Snapshot().Counters}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(out); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			break
		}
		fmt.Printf("store %s: %d entries, %d bytes\n", st.Dir(), len(entries), bytes)
		if len(quar) > 0 {
			fmt.Printf("quarantined: %d files (reclaimed by the next gc)\n", len(quar))
		}
	case "ls":
		for _, en := range mustList(st) {
			fmt.Printf("%s  %8d B  %s\n", en.Key, en.Size, en.ModTime.UTC().Format(time.RFC3339))
		}
	case "verify":
		ok, bad, err := st.Verify()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("verified %d entries, %d corrupt\n", ok, len(bad))
		for _, key := range bad {
			fmt.Printf("quarantined %s\n", key)
		}
		if len(bad) > 0 {
			os.Exit(1)
		}
	case "gc":
		fs := flag.NewFlagSet("gc", flag.ExitOnError)
		maxBytes := fs.Int64("max-bytes", 0, "evict oldest entries until the store is at most this many bytes")
		dryRun := fs.Bool("n", false, "dry run: print what would be evicted, remove nothing")
		spill := fs.String("spill", "", "also sweep this seen-set spill area (crashed sessions, quarantined runs)")
		spillAge := fs.Duration("spill-max-age", 24*time.Hour, "spill sessions untouched this long are treated as crash orphans")
		fs.Parse(flag.Args()[1:])
		if *maxBytes <= 0 && *spill == "" {
			fmt.Fprintln(os.Stderr, "gc requires -max-bytes > 0 (and/or -spill DIR)")
			os.Exit(2)
		}
		if *dryRun {
			if *maxBytes > 0 {
				plan, err := st.GCPlan(*maxBytes)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(2)
				}
				var freed int64
				for _, en := range plan {
					fmt.Printf("would evict %s  %8d B  %s\n", en.Key, en.Size, en.ModTime.UTC().Format(time.RFC3339))
					freed += en.Size
				}
				fmt.Printf("would evict %d entries, free %d bytes\n", len(plan), freed)
			}
			if *spill != "" {
				plan, err := store.PlanSpillGC(*spill, *spillAge)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(2)
				}
				var freed int64
				for _, en := range plan {
					fmt.Printf("would remove %s  %8d B  %s\n", en.Path, en.Size, en.ModTime.UTC().Format(time.RFC3339))
					freed += en.Size
				}
				fmt.Printf("would remove %d spill items, free %d bytes\n", len(plan), freed)
			}
			break
		}
		if *maxBytes > 0 {
			evicted, freed, err := st.GC(*maxBytes)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			fmt.Printf("evicted %d entries, freed %d bytes\n", evicted, freed)
		}
		if *spill != "" {
			removed, freed, err := store.SpillGC(*spill, *spillAge)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			fmt.Printf("removed %d spill items, freed %d bytes\n", removed, freed)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q (valid choices: stats, ls, verify, gc)\n", cmd)
		usage()
		os.Exit(2)
	}
}

func mustList(st *store.Store) []store.Entry {
	entries, err := st.List()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	return entries
}
