// Command litmus explores the classic memory-model litmus tests on the
// built-in SC and TSO machines and reports which outcomes are reachable.
package main

import (
	"flag"
	"fmt"
	"os"

	"fenceplace/internal/cli"
	"fenceplace/internal/litmus"
	"fenceplace/internal/stats"
	"fenceplace/internal/tso"
)

func main() {
	version := flag.Bool("version", false, "print the build identity and exit")
	flag.Parse()
	if *version {
		cli.Version()
		return
	}

	t := stats.NewTable("test", "outcome", "SC", "TSO", "verdict")
	bad := false
	for _, lt := range litmus.All() {
		sc, err := lt.Observed(tso.SC)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ts, err := lt.Observed(tso.TSO)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		verdict := "ok"
		if sc != lt.AllowedSC || ts != lt.AllowedTSO {
			verdict = "UNEXPECTED"
			bad = true
		}
		t.Add(lt.Name, lt.Desc, obs(sc), obs(ts), verdict)
	}
	fmt.Print(t.String())
	if bad {
		os.Exit(1)
	}
}

func obs(b bool) string {
	if b {
		return "observed"
	}
	return "forbidden"
}
