// Command fenced is the long-running certification service: an HTTP/JSON
// daemon that accepts program submissions (inline IR text, restricted
// real-Go source, or named corpus programs), runs analyze/certify jobs
// through the fenceplace pipeline over one warm baseline store, and
// answers with corpus Report rows.
//
//	fenced -listen :8080 -cache-dir /var/cache/fenceplace
//	fenced -listen :8080 -admin :6060 -workers 4 -queue 128
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST 'localhost:8080/v1/jobs?wait=1' \
//	    -d '{"corpus":"dekker","strategy":"control"}'
//	curl -sN -X POST 'localhost:8080/v1/jobs?stream=1' \
//	    -d '{"corpus":"szymanski","budget":{"max_states":2000000}}'
//
// Identical concurrent submissions are single-flighted: they share one
// exploration and all receive the same rows (see internal/service). The
// bounded admission queue answers 429 + Retry-After under overload;
// per-job state, memory and deadline budgets are clamped to the -max-*
// server ceilings. -admin serves net/http/pprof and expvar; /statusz (on
// the main port) reports build identity, job stats, the store snapshot
// and the degradation gauge.
//
// On SIGTERM (or SIGINT) the daemon drains: it stops accepting — /healthz
// flips to 503 so load balancers fail over — lets in-flight jobs finish
// within -drain-timeout, cancels the stragglers, and exits 0 on a clean
// drain, 1 otherwise.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"fenceplace"
	"fenceplace/internal/buildinfo"
	"fenceplace/internal/cli"
	"fenceplace/internal/service"
	"fenceplace/internal/telemetry"
)

func main() {
	var (
		listen       = flag.String("listen", ":8080", "API listen address")
		admin        = flag.String("admin", "", "admin listen address serving net/http/pprof and expvar (empty = off)")
		workers      = flag.Int("workers", 0, "job worker pool size (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "admission queue capacity; beyond it submissions get 429")
		jobWorkers   = flag.Int("job-workers", 0, "exploration workers per job (0 = GOMAXPROCS)")
		maxStates    = flag.Int64("max-states", 1<<21, "ceiling for per-job state budgets")
		memCapCeil   = flag.Int("max-memcap", 1<<22, "ceiling for per-job memory budgets (arena words)")
		maxDeadline  = flag.Duration("max-deadline", 2*time.Minute, "ceiling for per-job deadlines")
		defDeadline  = flag.Duration("default-deadline", 30*time.Second, "deadline applied when a job names none")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "how long SIGTERM lets in-flight jobs finish before cancelling them")
		cacheDir     = flag.String("cache-dir", "", "persistent certification-baseline store (default $FENCEPLACE_CACHE_DIR; empty = no persistence)")
		spillDir     = flag.String("spill-dir", "", "scratch area for seen-set spill (default $FENCEPLACE_SPILL_DIR; empty = keep sealed runs in RAM)")
		version      = flag.Bool("version", false, "print the build identity and exit")
	)
	flag.Parse()
	if *version {
		cli.Version()
		return
	}

	ctx, stop := cli.SignalContext()
	defer stop()

	var opts []fenceplace.Option
	if *cacheDir != "" {
		opts = append(opts, fenceplace.WithCacheDir(*cacheDir))
	}
	if *spillDir != "" {
		opts = append(opts, fenceplace.WithSpillDir(*spillDir))
	}
	// Pin environment-derived defaults once, before any job runs.
	opts = fenceplace.Resolved(opts...)

	mgr := service.NewManager(service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		JobWorkers:      *jobWorkers,
		MaxStatesCap:    *maxStates,
		MemoryCapCeil:   *memCapCeil,
		MaxDeadline:     *maxDeadline,
		DefaultDeadline: *defDeadline,
		Options:         opts,
	})
	srv := service.NewServer(mgr)
	// /statusz reports the store the jobs actually use: the flag, else the
	// environment (resolved the same way the options were).
	dir := *cacheDir
	if dir == "" {
		dir = os.Getenv("FENCEPLACE_CACHE_DIR")
	}
	srv.CacheDir = dir

	if *admin != "" {
		addr, err := telemetry.Serve(*admin)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "fenced: admin on http://%s/debug/pprof (metrics at /debug/vars)\n", addr)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "fenced: %s\nfenced: serving on http://%s (cache-dir %q)\n",
		buildinfo.String(), ln.Addr(), dir)

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting (healthz flips to 503 via the
	// manager's draining flag), let in-flight jobs finish within the drain
	// budget, cancel the rest, then close the listener once the last
	// response has been written.
	fmt.Fprintln(os.Stderr, "fenced: draining (SIGTERM)")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := mgr.Drain(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && drainErr == nil {
		drainErr = err
	}
	if drainErr != nil && !errors.Is(drainErr, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "fenced: drain incomplete: %v\n", drainErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "fenced: drained cleanly")
}
