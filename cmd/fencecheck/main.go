// Command fencecheck certifies a fence placement: it runs the static
// pipeline on a program, then model-checks that the instrumented build
// under x86-TSO reaches exactly the final states of the original build
// under sequential consistency, printing the verdict and a counterexample
// schedule when certification fails.
//
//	fencecheck -prog dekker                     # certify Control fences on a corpus program
//	fencecheck -prog peterson -strategy pensieve
//	fencecheck -prog dekker -strategy all       # all three placements, one shared SC baseline
//	fencecheck -prog dekker -unfenced           # show why the legacy build needs fences
//	fencecheck -file prog.ir -entry t0,t1       # litmus-style: explicit flat threads
//	fencecheck -prog lamport -threads 2 -budget 4194304
//
// With -strategy all the three placements are certified against a single
// SC exploration of the original program (the analyzer session's memoized
// baseline), so the run costs 1 SC + 3 TSO explorations instead of 3+3.
// With -cache-dir (or $FENCEPLACE_CACHE_DIR) the baseline additionally
// persists in a content-addressed store, so repeated invocations skip the
// SC exploration entirely (inspect the store with cmd/fencecache).
//
// Exit status: 0 certified, 1 not SC-equivalent (or inconclusive), 2 usage.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"fenceplace"
	"fenceplace/internal/progs"
)

func main() {
	var (
		progName = flag.String("prog", "", "corpus program to certify")
		file     = flag.String("file", "", "textual IR file to certify")
		strategy = flag.String("strategy", "control", "pensieve | control | addresscontrol | all")
		entry    = flag.String("entry", "", "comma-separated flat thread functions (litmus mode; default: explore from main)")
		threads  = flag.Int("threads", 2, "worker threads for corpus instantiation")
		size     = flag.Int64("size", 0, "problem size for corpus instantiation (0 = reduced default)")
		budget   = flag.Int64("budget", 0, "model-checker state budget per exploration (0 = default 2M)")
		workers  = flag.Int("workers", 0, "exploration workers (0 = GOMAXPROCS)")
		exact    = flag.Bool("exact", false, "exact string-keyed seen sets instead of fingerprints (slow oracle mode)")
		unfenced = flag.Bool("unfenced", false, "certify the unfenced legacy build instead of the instrumented one")
		cacheDir = flag.String("cache-dir", "", "persistent certification-baseline store (default $FENCEPLACE_CACHE_DIR; empty = no persistence)")
	)
	flag.Parse()

	prog, err := loadProgram(*progName, *file, *threads, *size)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var strategies []fenceplace.Strategy
	switch strings.ToLower(*strategy) {
	case "pensieve":
		strategies = []fenceplace.Strategy{fenceplace.PensieveOnly}
	case "control":
		strategies = []fenceplace.Strategy{fenceplace.Control}
	case "addresscontrol", "address+control", "ac":
		strategies = []fenceplace.Strategy{fenceplace.AddressControl}
	case "all":
		strategies = []fenceplace.Strategy{
			fenceplace.PensieveOnly, fenceplace.AddressControl, fenceplace.Control,
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q (valid choices: pensieve, control, addresscontrol, all)\n", *strategy)
		os.Exit(2)
	}

	var entries []string
	if *entry != "" {
		entries = strings.Split(*entry, ",")
	}
	opt := fenceplace.CertOptions{
		MaxStates: *budget,
		Workers:   *workers,
		ExactSeen: *exact,
		CacheDir:  *cacheDir,
	}

	// One analyzer session for every strategy: the static passes run once,
	// and so does the certification baseline's SC exploration.
	az := fenceplace.NewAnalyzer(prog)
	results := az.AnalyzeAll(strategies...)
	if *unfenced {
		// Certify the legacy build against itself: this demonstrates what
		// the fences buy by exposing the program's raw TSO behaviors. The
		// verdict is strategy-independent, so one certification suffices
		// even under -strategy all.
		res := results[0]
		res.Instrumented = res.Prog
		results = results[:1]
	}
	failed := false
	for _, res := range results {
		fmt.Println(res.Summary())
		rep, err := fenceplace.CertifyOpt(res, entries, opt)
		if err != nil {
			if errors.Is(err, fenceplace.ErrTruncated) {
				fmt.Fprintf(os.Stderr, "inconclusive: %v\n", err)
				fmt.Fprintln(os.Stderr, "raise -budget or shrink -threads/-size to close the state space")
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(rep)
		if !rep.Equivalent {
			if ce := rep.Counterexample(); ce != "" {
				fmt.Print(ce)
			}
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func loadProgram(progName, file string, threads int, size int64) (*fenceplace.Program, error) {
	switch {
	case progName != "":
		m := progs.ByName(progName)
		if m == nil {
			return nil, fmt.Errorf("unknown program %q (see fenceplace -list)", progName)
		}
		pp := m.Defaults
		pp.Threads = threads
		if size > 0 {
			pp.Size = size
		} else if pp.Size > 2 {
			pp.Size = 2 // exhaustive exploration needs small instantiations
		}
		return m.Build(pp), nil
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return fenceplace.Parse(string(src))
	}
	flag.Usage()
	return nil, fmt.Errorf("one of -prog or -file is required")
}
