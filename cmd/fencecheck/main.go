// Command fencecheck certifies a fence placement: it runs the static
// pipeline on a program, then model-checks that the instrumented build
// under x86-TSO reaches exactly the final states of the original build
// under sequential consistency, printing the verdict and a counterexample
// schedule when certification fails.
//
//	fencecheck -prog dekker                     # certify Control fences on a corpus program
//	fencecheck -prog peterson -strategy pensieve
//	fencecheck -prog dekker -strategy all       # all three placements, one shared SC baseline
//	fencecheck -prog dekker -unfenced           # show why the legacy build needs fences
//	fencecheck -file prog.ir -entry t0,t1       # litmus-style: explicit flat threads
//	fencecheck -file treiber.go -strategy all   # restricted real-Go source, lowered by the frontend
//	fencecheck -prog lamport -threads 2 -budget 4194304
//	fencecheck -prog dekker -strategy all -json # machine-readable corpus Report row
//
// With -strategy all the three placements are certified against a single
// SC exploration of the original program (the analyzer session's memoized
// baseline), so the run costs 1 SC + 3 TSO explorations instead of 3+3.
// With -cache-dir (or $FENCEPLACE_CACHE_DIR) the baseline additionally
// persists in a content-addressed store, so repeated invocations skip the
// SC exploration entirely (inspect the store with cmd/fencecache).
//
// -json emits the certification as a fenceplace/corpus Report (one Row,
// cert verdicts per strategy) on stdout instead of prose; such reports
// merge with other corpus reports and feed the same table renderers.
//
// Exit status is three-valued so scripts can tell verdicts from
// breakage: 0 every certified placement is SC-equivalent; 1 some
// placement is provably not SC-equivalent; 2 the verdict is unknown —
// usage error, exploration failure, or a state budget exhausted
// (inconclusive is not a verdict).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"fenceplace"
	"fenceplace/corpus"
	"fenceplace/internal/cli"
	"fenceplace/internal/progs"
	"fenceplace/internal/telemetry"
)

const (
	exitEquivalent    = 0 // every certified placement is SC-equivalent
	exitNotEquivalent = 1 // a placement is provably not SC-equivalent
	exitError         = 2 // usage, exploration error, or truncated/inconclusive
)

func main() {
	var (
		progName = flag.String("prog", "", "corpus program to certify")
		file     = flag.String("file", "", "textual IR file to certify")
		strategy = flag.String("strategy", "control", "pensieve | control | addresscontrol | all")
		entry    = flag.String("entry", "", "comma-separated flat thread functions (litmus mode; default: explore from main)")
		threads  = flag.Int("threads", 2, "worker threads for corpus instantiation")
		size     = flag.Int64("size", 0, "problem size for corpus instantiation (0 = reduced default)")
		budget   = flag.Int64("budget", 0, "model-checker state budget per exploration (0 = default 2M)")
		workers  = flag.Int("workers", 0, "exploration workers (0 = GOMAXPROCS)")
		exact    = flag.Bool("exact", false, "exact string-keyed seen sets instead of fingerprints (slow oracle mode)")
		unfenced = flag.Bool("unfenced", false, "certify the unfenced legacy build instead of the instrumented one")
		cacheDir = flag.String("cache-dir", "", "persistent certification-baseline store (default $FENCEPLACE_CACHE_DIR; empty = no persistence)")
		spillDir = flag.String("spill-dir", "", "scratch area for seen-set spill under -memcap (default $FENCEPLACE_SPILL_DIR; empty = keep sealed runs in RAM)")
		memCap   = flag.Int("memcap", 0, "memory budget in arena words; the seen set spills past it (0 = default 1<<22, negative = uncapped)")
		deadline = flag.Duration("deadline", 0, "wall-clock budget for the whole run; exceeding it aborts with the inconclusive exit code 2 (0 = none)")
		jsonOut  = flag.Bool("json", false, "emit the certification as a corpus Report row (JSON) instead of prose")
		traceOut = flag.String("trace", "", "write a Chrome trace-event file (Perfetto-openable) of the run")
		metrics  = flag.Bool("metrics", false, "dump the final telemetry snapshot (JSON) to stderr on exit")
		pprof    = flag.String("pprof", "", "serve net/http/pprof and expvar on this address for the run's duration")
		version  = flag.Bool("version", false, "print the build identity and exit")
	)
	flag.Parse()
	if *version {
		cli.Version()
		return
	}

	ctx, stop := cli.SignalContext()
	defer stop()
	if *deadline > 0 {
		// The deadline bounds wall-clock, not states: a stuck disk or an
		// oversized exploration ends in the inconclusive exit code instead
		// of a hang. Cancellation wins against I/O retries within ~100ms.
		var cancelDeadline context.CancelFunc
		ctx, cancelDeadline = context.WithTimeout(ctx, *deadline)
		defer cancelDeadline()
	}

	// Telemetry cleanup must precede every os.Exit (which skips defers):
	// the trace file is only valid JSON once finalized, and the -metrics
	// snapshot is written at cleanup time. exit routes all terminations
	// through it.
	var metricsW io.Writer
	if *metrics {
		metricsW = os.Stderr
	}
	cleanup, err := telemetry.Mount(telemetry.MountConfig{
		TracePath: *traceOut, PprofAddr: *pprof, Metrics: metricsW,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitError)
	}
	exit := func(code int) {
		if err := cleanup(); err != nil {
			fmt.Fprintln(os.Stderr, "telemetry:", err)
		}
		os.Exit(code)
	}

	name, prog, err := loadProgram(*progName, *file, *threads, *size)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(exitError)
	}

	var strategies []fenceplace.Strategy
	switch strings.ToLower(*strategy) {
	case "pensieve":
		strategies = []fenceplace.Strategy{fenceplace.PensieveOnly}
	case "control":
		strategies = []fenceplace.Strategy{fenceplace.Control}
	case "addresscontrol", "address+control", "ac":
		strategies = []fenceplace.Strategy{fenceplace.AddressControl}
	case "all":
		strategies = []fenceplace.Strategy{
			fenceplace.PensieveOnly, fenceplace.AddressControl, fenceplace.Control,
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q (valid choices: pensieve, control, addresscontrol, all)\n", *strategy)
		exit(exitError)
	}

	var entries []string
	if *entry != "" {
		entries = strings.Split(*entry, ",")
	}
	opts := []fenceplace.Option{
		fenceplace.WithMaxStates(*budget),
		fenceplace.WithWorkers(*workers),
	}
	if *exact {
		opts = append(opts, fenceplace.WithExactSeen())
	}
	if *cacheDir != "" {
		opts = append(opts, fenceplace.WithCacheDir(*cacheDir))
	}
	if *spillDir != "" {
		opts = append(opts, fenceplace.WithSpillDir(*spillDir))
	}
	if *memCap != 0 {
		opts = append(opts, fenceplace.WithMemoryCap(*memCap))
	}
	// Pin the configuration (environment defaults included) once for the
	// whole invocation.
	opts = fenceplace.Resolved(opts...)

	if *jsonOut {
		if *unfenced {
			fmt.Fprintln(os.Stderr, "-json does not support -unfenced (the unfenced build is no placement variant)")
			exit(exitError)
		}
		exit(runJSON(ctx, name, prog, strategies, entries, opts))
	}
	exit(runText(ctx, prog, strategies, entries, opts, *unfenced))
}

// runJSON certifies through the corpus runner and emits the Report row.
func runJSON(ctx context.Context, name string, prog *fenceplace.Program, strategies []fenceplace.Strategy, entries []string, opts []fenceplace.Option) int {
	runner := corpus.Runner{
		Strategies: strategies,
		Certify:    true,
		Threads:    entries,
		Workers:    1,
		Options:    opts,
	}
	rep, err := runner.Run(ctx, corpus.SingleSource(name, prog, nil))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return exitError
	}
	if err := rep.EncodeJSON(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return exitError
	}
	code := exitEquivalent
	for _, row := range rep.Rows {
		for _, v := range row.Variants {
			if v.Cert == nil {
				continue
			}
			switch v.Cert.Status {
			case corpus.CertViolation:
				if code == exitEquivalent {
					code = exitNotEquivalent
				}
			case corpus.CertBudget, corpus.CertError:
				code = exitError
			}
		}
	}
	return code
}

// runText is the prose mode: per-strategy summary, verdict and
// counterexample schedule.
func runText(ctx context.Context, prog *fenceplace.Program, strategies []fenceplace.Strategy, entries []string, opts []fenceplace.Option, unfenced bool) int {
	// One analyzer session for every strategy: the static passes run once,
	// and so does the certification baseline's SC exploration.
	az := fenceplace.NewAnalyzer(prog)
	results, err := az.AnalyzeAllCtx(ctx, strategies...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return exitError
	}
	if unfenced {
		// Certify the legacy build against itself: this demonstrates what
		// the fences buy by exposing the program's raw TSO behaviors. The
		// verdict is strategy-independent, so one certification suffices
		// even under -strategy all.
		res := results[0]
		res.Instrumented = res.Prog
		results = results[:1]
	}
	failed := false
	for _, res := range results {
		fmt.Println(res.Summary())
		rep, err := fenceplace.CertifyCtx(ctx, res, entries, opts...)
		if err != nil {
			if errors.Is(err, fenceplace.ErrTruncated) {
				fmt.Fprintf(os.Stderr, "inconclusive: %v\n", err)
				fmt.Fprintln(os.Stderr, "raise -budget or shrink -threads/-size to close the state space")
				return exitError
			}
			if errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintln(os.Stderr, "inconclusive: -deadline exceeded before certification finished")
				return exitError
			}
			fmt.Fprintln(os.Stderr, err)
			return exitError
		}
		fmt.Println(rep)
		if !rep.Equivalent {
			if ce := rep.Counterexample(); ce != "" {
				fmt.Print(ce)
			}
			failed = true
		}
	}
	if failed {
		return exitNotEquivalent
	}
	return exitEquivalent
}

func loadProgram(progName, file string, threads int, size int64) (string, *fenceplace.Program, error) {
	switch {
	case progName != "":
		m := progs.ByName(progName)
		if m == nil {
			return "", nil, fmt.Errorf("unknown program %q (see fenceplace -list)", progName)
		}
		pp := m.Defaults
		pp.Threads = threads
		if size > 0 {
			pp.Size = size
		} else if pp.Size > 2 {
			pp.Size = 2 // exhaustive exploration needs small instantiations
		}
		return progName, m.Build(pp), nil
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return "", nil, fmt.Errorf("cannot read %s: %w\nvalid inputs: a textual IR file (.ir) or a restricted-Go source file (.go)", file, err)
		}
		format := "textual IR"
		if filepath.Ext(file) == ".go" {
			format = "Go source"
		}
		if len(strings.TrimSpace(string(src))) == 0 {
			return "", nil, fmt.Errorf("%s is empty (detected format: %s by extension)\nvalid inputs: a textual IR file (.ir) or a restricted-Go source file (.go)", file, format)
		}
		var p *fenceplace.Program
		if format == "Go source" {
			p, err = fenceplace.ParseGo(file, src)
		} else {
			p, err = fenceplace.Parse(string(src))
		}
		if err != nil {
			return "", nil, fmt.Errorf("%s (detected format: %s):\n%w", file, format, err)
		}
		name := strings.TrimSuffix(filepath.Base(file), filepath.Ext(file))
		return name, p, nil
	}
	flag.Usage()
	return "", nil, fmt.Errorf("one of -prog or -file is required")
}
