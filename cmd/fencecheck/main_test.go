package main

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"fenceplace"
)

const goSB = `package sb

import "sync"

var (
	x  int64
	y  int64
	r0 int64
	r1 int64
)

var wg sync.WaitGroup

func t0() {
	defer wg.Done()
	x = 1
	r0 = y
}

func t1() {
	defer wg.Done()
	y = 1
	r1 = x
}

func main() {
	wg.Add(2)
	go t0()
	go t1()
	wg.Wait()
}
`

// TestLoadProgramInputErrors pins the bad-input contract: the error
// names the offending path, the detected format, and the valid input
// kinds (main maps any loadProgram error to exit code 2).
func TestLoadProgramInputErrors(t *testing.T) {
	empty := filepath.Join(t.TempDir(), "empty.go")
	if err := os.WriteFile(empty, []byte("  \n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		file  string
		wants []string
	}{
		{"unreadable", "/nonexistent/prog.ir", []string{"/nonexistent/prog.ir", "valid inputs"}},
		{"empty go file", empty, []string{empty, "Go source", "valid inputs"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := loadProgram("", tc.file, 2, 0)
			if err == nil {
				t.Fatalf("loadProgram accepted %s", tc.file)
			}
			for _, want := range tc.wants {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error does not mention %q:\n%v", want, err)
				}
			}
		})
	}
}

// TestLoadProgramDispatch pins extension dispatch: .go lowers through
// the frontend, anything else parses as textual IR — including IR that
// was itself produced from lowered Go source.
func TestLoadProgramDispatch(t *testing.T) {
	dir := t.TempDir()
	goFile := filepath.Join(dir, "sb.go")
	if err := os.WriteFile(goFile, []byte(goSB), 0o644); err != nil {
		t.Fatal(err)
	}
	name, prog, err := loadProgram("", goFile, 2, 0)
	if err != nil {
		t.Fatalf("loadProgram(.go): %v", err)
	}
	if name != "sb" || prog == nil || prog.Main != "main" {
		t.Fatalf("loadProgram(.go) = (%q, %v), want sb with main entry", name, prog)
	}

	irFile := filepath.Join(dir, "sb.ir")
	if err := os.WriteFile(irFile, []byte(fenceplace.Format(prog)), 0o644); err != nil {
		t.Fatal(err)
	}
	name, prog2, err := loadProgram("", irFile, 2, 0)
	if err != nil {
		t.Fatalf("loadProgram(.ir): %v", err)
	}
	if name != "sb" || fenceplace.Format(prog2) != fenceplace.Format(prog) {
		t.Fatalf("IR round trip through loadProgram drifted")
	}

	badGo := filepath.Join(dir, "bad.go")
	if err := os.WriteFile(badGo, []byte("package p\n\nfunc main() {\n\tch := make(chan int64)\n\tch <- 1\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = loadProgram("", badGo, 2, 0)
	if err == nil {
		t.Fatal("loadProgram accepted out-of-subset Go")
	}
	if !strings.Contains(err.Error(), "Go source") || !strings.Contains(err.Error(), badGo) {
		t.Errorf("subset error does not name file and format:\n%v", err)
	}
}

// TestBadInputExitCode runs the real binary path: bad -file input must
// terminate with the inconclusive exit code 2, never 0 or 1.
func TestBadInputExitCode(t *testing.T) {
	if os.Getenv("FENCECHECK_BADINPUT") == "1" {
		os.Args = []string{"fencecheck", "-file", os.Getenv("FENCECHECK_FILE")}
		main()
		return
	}
	empty := filepath.Join(t.TempDir(), "empty.ir")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	for name, file := range map[string]string{
		"unreadable": "/nonexistent/prog.ir",
		"empty":      empty,
	} {
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command(os.Args[0], "-test.run=TestBadInputExitCode$")
			cmd.Env = append(os.Environ(), "FENCECHECK_BADINPUT=1", "FENCECHECK_FILE="+file)
			out, err := cmd.CombinedOutput()
			var ee *exec.ExitError
			if !errors.As(err, &ee) {
				t.Fatalf("want exit error, got %v\n%s", err, out)
			}
			if ee.ExitCode() != 2 {
				t.Fatalf("exit code = %d, want 2\n%s", ee.ExitCode(), out)
			}
			if !strings.Contains(string(out), file) || !strings.Contains(string(out), "valid inputs") {
				t.Errorf("stderr does not name the path and valid input kinds:\n%s", out)
			}
		})
	}
}
