// Command benchjson converts `go test -bench` output into a JSON record,
// so CI can persist benchmark results (states/s, allocs/op, wall time) as
// an artifact and the performance trajectory of the model checker is
// machine-readable across commits:
//
//	go test -run '^$' -bench 'Certify' -benchtime=1x -benchmem . | benchjson -out BENCH_mc.json
//
// Without -out the JSON goes to stdout. The non-benchmark lines of the
// input (goos/goarch/pkg/cpu headers) are captured into the envelope;
// everything else is passed through untouched to stderr so test failures
// stay visible in CI logs.
//
// -metrics FILE folds a telemetry snapshot (the JSON the bench run dumps
// via FENCEPLACE_BENCH_METRICS, or a CLI's -metrics output) into the
// envelope verbatim, so the benchmark record carries the run's counters
// (states visited, seen-table probes, store hits) next to its timings.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"fenceplace/internal/cli"
)

// Result is one benchmark line: its name, iteration count, and every
// reported metric keyed by unit (ns/op, states/s, B/op, allocs/op, ...).
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the JSON envelope: the run's environment headers, the commit
// and UTC timestamp the record belongs to (so the perf trajectory is
// attributable across commits), plus every parsed benchmark line, in input
// order.
type Report struct {
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Commit     string   `json:"commit,omitempty"`
	Time       string   `json:"time,omitempty"` // RFC 3339, UTC
	Benchmarks []Result `json:"benchmarks"`

	// Metrics is the run's telemetry snapshot (-metrics FILE), embedded
	// verbatim: the file is already JSON, so it is carried as-is rather
	// than re-marshalled through an intermediate struct.
	Metrics json.RawMessage `json:"metrics,omitempty"`
}

// resolveCommit picks the commit stamped into the envelope: an explicit
// -commit value, then the CI environment (GITHUB_SHA, GIT_COMMIT), then
// the working tree's HEAD; empty when none is available (the field is then
// omitted rather than guessed).
func resolveCommit(explicit string, getenv func(string) string, gitHead func() (string, error)) string {
	if explicit != "" {
		return explicit
	}
	for _, key := range []string{"GITHUB_SHA", "GIT_COMMIT"} {
		if v := getenv(key); v != "" {
			return v
		}
	}
	head, err := gitHead()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(head)
}

func gitHead() (string, error) {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	return string(out), err
}

// parseLine parses one `go test -bench` output line, reporting ok=false
// for lines that are not benchmark results.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	// Name, iterations, then (value, unit) pairs: at least 4 fields.
	if len(fields) < 4 || len(fields)%2 != 0 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

// parse consumes bench output, splitting benchmark lines into the report
// and echoing every other line to passthrough.
func parse(in io.Reader, passthrough io.Writer) (*Report, error) {
	rep := &Report{Benchmarks: []Result{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	headers := map[string]*string{
		"goos": &rep.GoOS, "goarch": &rep.GoArch, "pkg": &rep.Pkg, "cpu": &rep.CPU,
	}
	for sc.Scan() {
		line := sc.Text()
		if r, ok := parseLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, r)
			continue
		}
		consumed := false
		for prefix, dst := range headers {
			if v, ok := strings.CutPrefix(line, prefix+": "); ok && *dst == "" {
				*dst = strings.TrimSpace(v)
				consumed = true
				break
			}
		}
		if !consumed {
			fmt.Fprintln(passthrough, line)
		}
	}
	return rep, sc.Err()
}

// loadMetrics reads and validates a telemetry snapshot file for embedding.
func loadMetrics(path string) (json.RawMessage, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	raw = []byte(strings.TrimSpace(string(raw)))
	if !json.Valid(raw) {
		return nil, fmt.Errorf("%s: not valid JSON", path)
	}
	return raw, nil
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	commit := flag.String("commit", "", "commit to stamp the record with (default $GITHUB_SHA, $GIT_COMMIT, then git rev-parse HEAD)")
	metrics := flag.String("metrics", "", "telemetry snapshot JSON file to embed in the record")
	version := flag.Bool("version", false, "print the build identity and exit")
	flag.Parse()
	if *version {
		cli.Version()
		return
	}

	rep, err := parse(os.Stdin, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *metrics != "" {
		if rep.Metrics, err = loadMetrics(*metrics); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	rep.Commit = resolveCommit(*commit, os.Getenv, gitHead)
	rep.Time = time.Now().UTC().Format(time.RFC3339)
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
