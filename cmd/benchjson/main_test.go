package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: fenceplace
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCertify/small-dekker/workers=1         	       2	   4626045 ns/op	    513432 states/s	 2668368 B/op	   31462 allocs/op
BenchmarkCertifyCorpus 	       1	 120000000 ns/op	  800000.50 states/s
PASS
ok  	fenceplace	5.401s
`

func TestParse(t *testing.T) {
	var passthrough strings.Builder
	rep, err := parse(strings.NewReader(sample), &passthrough)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" || rep.Pkg != "fenceplace" {
		t.Errorf("headers: %+v", rep)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("cpu header: %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkCertify/small-dekker/workers=1" || b.Iterations != 2 {
		t.Errorf("first bench: %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 4626045, "states/s": 513432, "B/op": 2668368, "allocs/op": 31462,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Errorf("%s = %v, want %v", unit, got, want)
		}
	}
	if got := rep.Benchmarks[1].Metrics["states/s"]; got != 800000.50 {
		t.Errorf("fractional metric = %v", got)
	}
	// PASS / ok lines fall through to the passthrough stream.
	if s := passthrough.String(); !strings.Contains(s, "PASS") || !strings.Contains(s, "ok ") {
		t.Errorf("passthrough lost status lines: %q", s)
	}
}

func TestResolveCommit(t *testing.T) {
	env := func(m map[string]string) func(string) string {
		return func(k string) string { return m[k] }
	}
	head := func() (string, error) { return "headsha\n", nil }
	noHead := func() (string, error) { return "", fmt.Errorf("not a repository") }

	if got := resolveCommit("explicit", env(map[string]string{"GITHUB_SHA": "ci"}), head); got != "explicit" {
		t.Errorf("-commit override lost: %q", got)
	}
	if got := resolveCommit("", env(map[string]string{"GITHUB_SHA": "ci"}), noHead); got != "ci" {
		t.Errorf("GITHUB_SHA not used: %q", got)
	}
	if got := resolveCommit("", env(map[string]string{"GIT_COMMIT": "jenkins"}), noHead); got != "jenkins" {
		t.Errorf("GIT_COMMIT not used: %q", got)
	}
	if got := resolveCommit("", env(nil), head); got != "headsha" {
		t.Errorf("git HEAD fallback not trimmed/used: %q", got)
	}
	if got := resolveCommit("", env(nil), noHead); got != "" {
		t.Errorf("expected empty commit outside a repo, got %q", got)
	}
}

func TestLoadMetrics(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "metrics.json")
	snapshot := "{\n  \"counters\": {\"mc.states_visited\": 2469}\n}\n"
	if err := os.WriteFile(good, []byte(snapshot), 0o644); err != nil {
		t.Fatal(err)
	}
	raw, err := loadMetrics(good)
	if err != nil {
		t.Fatal(err)
	}

	// The snapshot embeds verbatim into the envelope and survives a
	// round-trip as the same JSON value.
	rep := &Report{Benchmarks: []Result{}, Metrics: raw}
	enc, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}
	var counters struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(back.Metrics, &counters); err != nil {
		t.Fatal(err)
	}
	if got := counters.Counters["mc.states_visited"]; got != 2469 {
		t.Errorf("embedded counter = %d, want 2469", got)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadMetrics(bad); err == nil {
		t.Error("loadMetrics accepted invalid JSON")
	}
	if _, err := loadMetrics(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("loadMetrics accepted a missing file")
	}
}

func TestReportOmitsEmptyMetrics(t *testing.T) {
	enc, err := json.Marshal(&Report{Benchmarks: []Result{}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(enc), "metrics") {
		t.Errorf("empty metrics not omitted: %s", enc)
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	fenceplace	5.401s",
		"--- FAIL: TestSomething",
		"Benchmark only-a-name",
		"BenchmarkBad notanumber 12 ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}
