// Command fenceplace runs the fence-placement pipeline on a corpus program
// or on a textual IR file:
//
//	fenceplace -list                          # show the corpus
//	fenceplace -prog msqueue                  # analyze under all strategies
//	fenceplace -prog dekker -strategy control -dump   # print instrumented IR
//	fenceplace -prog msqueue -annotate        # emit minimal DRF annotations
//	fenceplace -file prog.ir -run             # analyze a file, then run it
//	fenceplace -prog msqueue -timing          # report per-pass wall times
//
// All strategies share one analysis session, so -strategy all runs the
// alias/escape/ordering passes once; -j bounds the per-function workers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fenceplace"
	"fenceplace/internal/annotate"
	"fenceplace/internal/cli"
	"fenceplace/internal/progs"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list corpus programs")
		progName = flag.String("prog", "", "corpus program to analyze")
		file     = flag.String("file", "", "textual IR file to analyze")
		strategy = flag.String("strategy", "all", "pensieve | control | addresscontrol | all")
		dump     = flag.Bool("dump", false, "print the instrumented program")
		run      = flag.Bool("run", false, "execute the instrumented program on the TSO simulator")
		seed     = flag.Int64("seed", 0, "simulator seed for -run")
		annot    = flag.Bool("annotate", false, "emit minimal DRF annotations instead of fences (paper §1.3)")
		timing   = flag.Bool("timing", false, "report per-pass wall times in each summary")
		jobs     = flag.Int("j", 0, "per-function analysis workers (0 = GOMAXPROCS)")
		version  = flag.Bool("version", false, "print the build identity and exit")
	)
	flag.Parse()

	if *version {
		cli.Version()
		return
	}

	if *list {
		for _, m := range progs.All() {
			fmt.Printf("%-14s %-9s %s\n", m.Name, m.Kind, m.Desc)
		}
		return
	}

	var prog *fenceplace.Program
	switch {
	case *progName != "":
		m := progs.ByName(*progName)
		if m == nil {
			fmt.Fprintf(os.Stderr, "unknown program %q (try -list)\n", *progName)
			os.Exit(1)
		}
		prog = m.Default()
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		p, err := fenceplace.Parse(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		prog = p
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *annot {
		fmt.Print(annotate.Generate(prog).Report())
		return
	}

	var strategies []fenceplace.Strategy
	switch strings.ToLower(*strategy) {
	case "pensieve":
		strategies = []fenceplace.Strategy{fenceplace.PensieveOnly}
	case "control":
		strategies = []fenceplace.Strategy{fenceplace.Control}
	case "addresscontrol", "address+control", "ac":
		strategies = []fenceplace.Strategy{fenceplace.AddressControl}
	case "all":
		strategies = []fenceplace.Strategy{
			fenceplace.PensieveOnly, fenceplace.AddressControl, fenceplace.Control,
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	// One analyzer for all strategies: the shared session computes the
	// strategy-independent passes once.
	var opts []fenceplace.Option
	if *timing {
		opts = append(opts, fenceplace.WithTiming())
	}
	if *jobs > 0 {
		opts = append(opts, fenceplace.WithWorkers(*jobs))
	}
	az := fenceplace.NewAnalyzer(prog, opts...)
	for _, s := range strategies {
		res := az.Analyze(s)
		fmt.Println(res.Summary())
		if err := res.Verify(); err != nil {
			fmt.Fprintf(os.Stderr, "verification failed: %v\n", err)
			os.Exit(1)
		}
		if *dump {
			fmt.Println(fenceplace.Format(res.Instrumented))
		}
		if *run {
			out := fenceplace.RunTSO(res.Instrumented, *seed)
			if out.Failed() {
				fmt.Printf("  TSO run FAILED: %v %v\n", out.Failures, out.Err)
				os.Exit(1)
			}
			fmt.Printf("  TSO run ok: %d steps, %d cycles, %d full fences executed\n",
				out.Steps, out.MaxCycles, out.FullFences)
		}
	}
}
