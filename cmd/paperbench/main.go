// Command paperbench regenerates every table and figure of the paper's
// evaluation over the corpus:
//
//	paperbench              # everything
//	paperbench -table2      # Table II only
//	paperbench -fig7 -fig9  # selected figures
//	paperbench -seeds 3     # average Figure 10 over 3 simulator seeds
//	paperbench -j 4         # analyze the corpus with 4 parallel workers
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"fenceplace"
	"fenceplace/internal/exp"
	"fenceplace/internal/par"
	"fenceplace/internal/progs"
)

func main() {
	var (
		table2 = flag.Bool("table2", false, "Table II: acquire signatures in sync kernels")
		fig2   = flag.Bool("fig2", false, "worked example (§2.4): delay set and fence counts")
		fig7   = flag.Bool("fig7", false, "Figure 7: acquires as % of escaping reads")
		fig8   = flag.Bool("fig8", false, "Figure 8: ordering counts by type")
		fig9   = flag.Bool("fig9", false, "Figure 9: full fences remaining on x86-TSO")
		fig10  = flag.Bool("fig10", false, "Figure 10: simulated execution time vs manual")
		manual = flag.Bool("manual", false, "manual fence counts (§5.3)")
		seeds  = flag.Int("seeds", 1, "simulator seeds averaged in Figure 10")
		cert     = flag.Bool("cert", false, "certification column: model-check SC-equivalence of every placement")
		budget   = flag.Int64("certbudget", 1<<21, "model-checker state budget per exploration")
		jobs     = flag.Int("j", 0, "corpus analysis workers (0 = GOMAXPROCS)")
		cacheDir = flag.String("cache-dir", "", "persistent certification-baseline store (default $FENCEPLACE_CACHE_DIR; empty = no persistence)")
	)
	flag.Parse()

	all := !*table2 && !*fig2 && !*fig7 && !*fig8 && !*fig9 && !*fig10 && !*manual && !*cert

	if all || *table2 {
		fmt.Println(exp.Table2())
	}
	if all || *cert {
		// Exhaustive certification runs the sync kernels at a reduced
		// instantiation (2 threads) so the whole state space fits. Rows are
		// analyzed in parallel; per row, one SC exploration serves as the
		// baseline all four variants certify against — served from the
		// persistent store without exploring when -cache-dir is warm.
		set := exp.CertSet()
		rows := make([]*exp.Row, len(set))
		w := *jobs
		if w < 1 {
			w = runtime.GOMAXPROCS(0)
		}
		par.ForEach(len(set), w, func(i int) {
			pp := set[i].Defaults
			pp.Threads = 2
			if pp.Size > 2 {
				pp.Size = 2
			}
			rows[i] = exp.Analyze(set[i], pp)
		})
		fmt.Println(exp.CertTable(rows, fenceplace.CertOptions{
			MaxStates: *budget,
			CacheDir:  *cacheDir,
		}))
	}
	if all || *fig2 {
		fmt.Println(exp.Fig2())
	}
	needRows := all || *fig7 || *fig8 || *fig9 || *fig10 || *manual
	if !needRows {
		return
	}
	rows := exp.AnalyzeAllN(progs.Params{}, *jobs)
	for _, r := range rows {
		if err := r.VerifyPlans(); err != nil {
			fmt.Fprintf(os.Stderr, "fence plan verification failed: %v\n", err)
			os.Exit(1)
		}
	}
	if all || *fig7 {
		fmt.Println(exp.Fig7(rows))
	}
	if all || *fig8 {
		fmt.Println(exp.Fig8(rows))
	}
	if all || *fig9 {
		fmt.Println(exp.Fig9(rows))
	}
	if all || *manual {
		fmt.Println(exp.ManualTable(rows))
	}
	if all || *fig10 {
		report, err := exp.Fig10(rows, *seeds)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure 10 failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(report)
	}
}
