// Command paperbench regenerates every table and figure of the paper's
// evaluation over the corpus:
//
//	paperbench              # everything
//	paperbench -table2      # Table II only
//	paperbench -fig7 -fig9  # selected figures
//	paperbench -seeds 3     # average Figure 10 over 3 simulator seeds
//	paperbench -j 4         # analyze the corpus with 4 parallel workers
//
// The evaluation is driven through the public fenceplace/corpus package,
// which makes runs shardable across processes and machines:
//
//	paperbench -shard 1/2 -json s1.json     # analyze half the corpus
//	paperbench -shard 2/2 -json s2.json     # ...the other half elsewhere
//	paperbench -merge s1.json,s2.json       # render tables from the merged
//	                                        # reports — byte-identical to an
//	                                        # unsharded run
//
// -json writes the run's corpus Report (the evaluation report when
// figures ran, else the certification report); -merge skips analysis and
// renders the requested tables from previously written reports. Shards of
// a -cert run merge the same way.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"fenceplace"
	"fenceplace/corpus"
	"fenceplace/internal/cli"
	"fenceplace/internal/exp"
	"fenceplace/internal/mc"
	"fenceplace/internal/store"
	"fenceplace/internal/telemetry"
)

func main() {
	var (
		table2   = flag.Bool("table2", false, "Table II: acquire signatures in sync kernels")
		fig2     = flag.Bool("fig2", false, "worked example (§2.4): delay set and fence counts")
		fig7     = flag.Bool("fig7", false, "Figure 7: acquires as % of escaping reads")
		fig8     = flag.Bool("fig8", false, "Figure 8: ordering counts by type")
		fig9     = flag.Bool("fig9", false, "Figure 9: full fences remaining on x86-TSO")
		fig10    = flag.Bool("fig10", false, "Figure 10: simulated execution time vs manual")
		manual   = flag.Bool("manual", false, "manual fence counts (§5.3)")
		seeds    = flag.Int("seeds", 1, "simulator seeds averaged in Figure 10")
		cert     = flag.Bool("cert", false, "certification column: model-check SC-equivalence of every placement")
		budget   = flag.Int64("certbudget", 1<<21, "model-checker state budget per exploration")
		deadline = flag.Duration("deadline", 0, "wall-clock budget for the whole run; exceeding it aborts with the inconclusive exit code 2 (0 = none)")
		jobs     = flag.Int("j", 0, "corpus analysis workers (0 = GOMAXPROCS)")
		cacheDir = flag.String("cache-dir", "", "persistent certification-baseline store (default $FENCEPLACE_CACHE_DIR; empty = no persistence)")
		spillDir = flag.String("spill-dir", "", "scratch area for seen-set spill (default $FENCEPLACE_SPILL_DIR; empty = keep sealed runs in RAM)")
		shard    = flag.String("shard", "", "run only shard i/n of the corpus (e.g. 2/4); rows keep their unsharded index")
		jsonOut  = flag.String("json", "", "write the run's corpus Report JSON to this file")
		mergeIn  = flag.String("merge", "", "comma-separated report JSON files: skip analysis, merge them and render the requested tables")
		traceOut = flag.String("trace", "", "write a Chrome trace-event file (Perfetto-openable) of the run")
		metrics  = flag.Bool("metrics", false, "dump the final telemetry snapshot (JSON) to stderr on exit")
		pprof    = flag.String("pprof", "", "serve net/http/pprof and expvar on this address for the run's duration")
		version  = flag.Bool("version", false, "print the build identity and exit")
	)
	flag.Parse()
	if *version {
		cli.Version()
		return
	}

	ctx, stop := cli.SignalContext()
	defer stop()
	if *deadline > 0 {
		// The deadline bounds wall-clock, not states: a stuck disk or an
		// oversized corpus run ends in the inconclusive exit code instead
		// of a hang. Cancellation wins against I/O retries within ~100ms.
		var cancelDeadline context.CancelFunc
		ctx, cancelDeadline = context.WithTimeout(ctx, *deadline)
		defer cancelDeadline()
	}

	// Observability surfaces. exit (below) runs the cleanup — trace-file
	// finalization, metrics dump — before os.Exit, which would skip defers;
	// the deferred call covers the fall-through return.
	var metricsW io.Writer
	if *metrics {
		metricsW = os.Stderr
	}
	cleanup, err := telemetry.Mount(telemetry.MountConfig{
		TracePath: *traceOut, PprofAddr: *pprof, Metrics: metricsW,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var cleanupOnce sync.Once
	finish := func() {
		cleanupOnce.Do(func() {
			if err := cleanup(); err != nil {
				fmt.Fprintln(os.Stderr, "telemetry:", err)
			}
		})
	}
	defer finish()
	exit := func(code int) {
		finish()
		os.Exit(code)
	}

	all := !*table2 && !*fig2 && !*fig7 && !*fig8 && !*fig9 && !*fig10 && !*manual && !*cert

	if *mergeIn != "" {
		if err := renderMerged(*mergeIn, all, *fig7, *fig8, *fig9, *fig10, *manual, *cert); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		return
	}

	shardI, shardN, err := parseShard(*shard)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(2)
	}

	if all || *table2 {
		fmt.Println(exp.Table2())
	}

	// Resolve the baseline store directory exactly once, up front: the
	// flag, else the environment. Every consumer below (runner options and
	// the footer's store handle) sees this one value.
	dir := *cacheDir
	if dir == "" {
		dir = os.Getenv("FENCEPLACE_CACHE_DIR")
	}
	opts := []fenceplace.Option{fenceplace.WithMaxStates(*budget), fenceplace.WithCacheDir(dir)}
	if *spillDir != "" {
		opts = append(opts, fenceplace.WithSpillDir(*spillDir))
	}

	var out *corpus.Report
	var certRan bool
	if all || *cert {
		// Exhaustive certification runs the sync kernels at a reduced
		// instantiation (2 threads) so the whole state space fits. Rows are
		// analyzed in parallel; per row, one SC exploration serves as the
		// baseline all four variants certify against — served from the
		// persistent store without exploring when -cache-dir is warm.
		rep, err := runCert(ctx, shardI, shardN, *jobs, opts, dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(failCode(err))
		}
		out = rep
		certRan = true
	}
	if all || *fig2 {
		fmt.Println(exp.Fig2())
	}
	if all || *fig7 || *fig8 || *fig9 || *fig10 || *manual {
		src := corpus.EvalSource()
		if shardN > 0 {
			if src, err = corpus.Shard(src, shardI, shardN); err != nil {
				fmt.Fprintln(os.Stderr, err)
				exit(2)
			}
		}
		runner := corpus.Runner{Seeds: *seeds, Workers: *jobs, Options: opts}
		rep, err := runner.Run(ctx, src)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(failCode(err))
		}
		out = rep
		renderFigures(rep, all, *fig7, *fig8, *fig9, *fig10, *manual)
		if certRan && *jsonOut != "" {
			// The cert and eval reports come from different sources and
			// cannot merge into one file; the eval report wins, loudly.
			fmt.Fprintln(os.Stderr, "-json: writing the evaluation report; the certification report is separate — rerun with -cert alone to export it")
		}
	}

	if *jsonOut != "" && out != nil {
		f, err := os.Create(*jsonOut)
		if err == nil {
			err = out.EncodeJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing report: %v\n", err)
			exit(1)
		}
	}
}

// failCode maps a run-ending error to an exit status: a blown -deadline
// is the inconclusive/truncated code 2 (no verdict, like an exhausted
// state budget), anything else is the plain failure code 1.
func failCode(err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "inconclusive: -deadline exceeded before the run finished")
		return 2
	}
	return 1
}

// parseShard parses "i/n" (empty: unsharded, n = 0).
func parseShard(s string) (i, n int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	if _, err := fmt.Sscanf(s, "%d/%d", &i, &n); err != nil || i < 1 || n < 1 || i > n {
		return 0, 0, fmt.Errorf("invalid -shard %q (want i/n with 1 <= i <= n)", s)
	}
	return i, n, nil
}

// runCert certifies the kernel corpus and prints the certification table
// with its warm-vs-cold footer (SC explorations performed; store deltas
// when a baseline cache is in play).
func runCert(ctx context.Context, shardI, shardN, jobs int, opts []fenceplace.Option, dir string) (*corpus.Report, error) {
	src := corpus.CertSource()
	if shardN > 0 {
		var err error
		if src, err = corpus.Shard(src, shardI, shardN); err != nil {
			return nil, err
		}
	}

	scBefore := mc.SCExploreRuns()
	var st *store.Store
	var stBefore store.Stats
	if dir != "" {
		if st, _ = store.Open(dir); st != nil {
			stBefore = st.Stats()
		}
	}

	runner := corpus.Runner{Certify: true, Workers: jobs, Options: opts}
	rep, err := runner.Run(ctx, src)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	sb.WriteString(corpus.CertTable(rep))
	fmt.Fprintf(&sb, "\nSC explorations: %d\n", mc.SCExploreRuns()-scBefore)
	if st != nil {
		d := st.Stats().Sub(stBefore)
		fmt.Fprintf(&sb, "baseline cache (%s): %d warm hits, %d cold misses, %d written, %d quarantined\n",
			st.Dir(), d.Hits, d.Misses, d.Puts, d.Quarantined)
	}
	fmt.Println(sb.String())
	return rep, nil
}

// renderFigures prints the selected report-backed tables.
func renderFigures(rep *corpus.Report, all, fig7, fig8, fig9, fig10, manual bool) {
	if all || fig7 {
		fmt.Println(corpus.Fig7(rep))
	}
	if all || fig8 {
		fmt.Println(corpus.Fig8(rep))
	}
	if all || fig9 {
		fmt.Println(corpus.Fig9(rep))
	}
	if all || manual {
		fmt.Println(corpus.ManualTable(rep))
	}
	if all || fig10 {
		s, err := corpus.Fig10(rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure 10 failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(s)
	}
}

// renderMerged loads shard reports, merges them and renders the requested
// tables from the combined data — the cross-process half of the sharded
// evaluation.
func renderMerged(files string, all, fig7, fig8, fig9, fig10, manual, cert bool) error {
	var merged *corpus.Report
	for _, name := range strings.Split(files, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		rep, err := corpus.DecodeJSON(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if merged == nil {
			merged = rep
			continue
		}
		if err := merged.Merge(rep); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	if merged == nil {
		return fmt.Errorf("-merge: no report files given")
	}
	if cert {
		fmt.Println(corpus.CertTable(merged))
	}
	renderFigures(merged, all, fig7, fig8, fig9, fig10, manual)
	return nil
}
