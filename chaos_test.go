package fenceplace_test

// Chaos suite: seeded fault schedules replayed through full corpus
// certification. The invariant under every schedule is exactness or
// explicit degradation — a flaky cache or spill disk may cost
// re-exploration or a rung on the degradation ladder, but the verdict
// and outcome counts must match the fault-free run bit for bit, and no
// failure may pass silently. The base seed comes from
// FENCEPLACE_CHAOS_SEED so CI pins one schedule while local runs can
// sweep others.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"fenceplace"
	"fenceplace/corpus"

	"fenceplace/internal/fsx"
	"fenceplace/internal/ir"
	"fenceplace/internal/passes"
	"fenceplace/internal/progs"
	"fenceplace/internal/store"
)

// mustProg builds the named corpus program at the chaos suite's reduced
// instantiation (2 threads, size 1 — exhaustively explorable).
func mustProg(t *testing.T, name string) *fenceplace.Program {
	t.Helper()
	m := progs.ByName(name)
	if m == nil {
		t.Fatalf("unknown corpus program %q", name)
	}
	pp := m.Defaults
	pp.Threads = 2
	pp.Size = 1
	return m.Build(pp)
}

// chaosSeed resolves the base fault-schedule seed: FENCEPLACE_CHAOS_SEED
// when set, else a fixed default so a bare `go test` is deterministic.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	if s := os.Getenv("FENCEPLACE_CHAOS_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("FENCEPLACE_CHAOS_SEED=%q: %v", s, err)
		}
		return n
	}
	return 20260808
}

// TestChaosCertificationExactUnderFaults replays seeded fault schedules
// through the whole pipeline — baseline cache reads and writes, seen-set
// spill, quarantine cleanup — and requires the certification verdict to
// match the fault-free run exactly on every schedule.
func TestChaosCertificationExactUnderFaults(t *testing.T) {
	t.Setenv("FENCEPLACE_CACHE_DIR", "")
	t.Setenv("FENCEPLACE_SPILL_DIR", "")
	clean, err := fenceplace.CertifyCtx(context.Background(), freshControlResult(), nil)
	if err != nil {
		t.Fatal(err)
	}

	base := chaosSeed(t)
	for i := int64(0); i < 3; i++ {
		seed := base + i
		store.ResetDegraded()
		ff := fsx.NewFaultFS(nil, fsx.FaultConfig{
			Seed: seed, EIO: 0.15, ENOSPC: 0.05, ShortWrite: 0.05, RenameFail: 0.1,
		})
		rep, err := fenceplace.CertifyCtx(context.Background(), freshControlResult(), nil,
			fenceplace.WithFaultFS(ff),
			fenceplace.WithIORetries(2),
			fenceplace.WithCacheDir(t.TempDir()),
			fenceplace.WithSpillDir(t.TempDir()),
			fenceplace.WithMemoryCap(1<<12), // small seen budget: force spill traffic
		)
		if err != nil {
			t.Fatalf("seed %d: certification failed under store faults: %v", seed, err)
		}
		if rep.Equivalent != clean.Equivalent ||
			rep.SCOutcomes != clean.SCOutcomes || rep.TSOOutcomes != clean.TSOOutcomes {
			t.Fatalf("seed %d: verdict drifted under faults:\nfaulty: %s\nclean:  %s", seed, rep, clean)
		}
	}
	store.ResetDegraded()
}

// TestChaosCorpusRunUnderFaults drives the corpus runner — the CLI's
// engine — through a faulty filesystem and requires every row to carry
// an explicit status: certified rows match the clean run, and nothing
// errors silently.
func TestChaosCorpusRunUnderFaults(t *testing.T) {
	t.Setenv("FENCEPLACE_CACHE_DIR", "")
	t.Setenv("FENCEPLACE_SPILL_DIR", "")
	m := mustProg(t, "dekker")
	runner := corpus.Runner{Certify: true, Workers: 1}
	cleanRep, err := runner.Run(context.Background(), corpus.SingleSource("dekker", m, nil))
	if err != nil {
		t.Fatal(err)
	}

	ff := fsx.NewFaultFS(nil, fsx.FaultConfig{
		Seed: chaosSeed(t), EIO: 0.2, ShortWrite: 0.05, RenameFail: 0.1,
	})
	runner.Options = []fenceplace.Option{
		fenceplace.WithFaultFS(ff),
		fenceplace.WithIORetries(2),
		fenceplace.WithCacheDir(t.TempDir()),
		fenceplace.WithSpillDir(t.TempDir()),
		fenceplace.WithMemoryCap(1 << 12),
	}
	faultRep, err := runner.Run(context.Background(), corpus.SingleSource("dekker", mustProg(t, "dekker"), nil))
	if err != nil {
		t.Fatalf("corpus run failed under faults: %v", err)
	}
	if len(faultRep.Rows) != len(cleanRep.Rows) {
		t.Fatalf("row count %d vs clean %d", len(faultRep.Rows), len(cleanRep.Rows))
	}
	for i, row := range faultRep.Rows {
		for j, v := range row.Variants {
			cv := cleanRep.Rows[i].Variants[j]
			if v.Cert == nil || cv.Cert == nil {
				if (v.Cert == nil) != (cv.Cert == nil) {
					t.Fatalf("row %s variant %s: cert presence differs", row.Program, v.Name)
				}
				continue
			}
			if v.Cert.Status != cv.Cert.Status || v.Cert.SCOutcomes != cv.Cert.SCOutcomes {
				t.Fatalf("row %s variant %s: %s/%d outcomes under faults, clean %s/%d",
					row.Program, v.Name, v.Cert.Status, v.Cert.SCOutcomes, cv.Cert.Status, cv.Cert.SCOutcomes)
			}
		}
	}
}

// TestChaosUnwritableCacheDegradesToUncached pins the ladder's first
// rung: a cache directory that cannot be created (the path is a regular
// file) degrades certification to uncached — correct verdict, explicit
// gauge — instead of failing or silently caching nothing forever.
func TestChaosUnwritableCacheDegradesToUncached(t *testing.T) {
	t.Setenv("FENCEPLACE_CACHE_DIR", "")
	store.ResetDegraded()
	defer store.ResetDegraded()
	blocked := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := fenceplace.CertifyCtx(context.Background(), freshControlResult(), nil,
		fenceplace.WithCacheDir(blocked))
	if err != nil {
		t.Fatalf("certification failed on an unwritable cache dir: %v", err)
	}
	if !rep.Equivalent {
		t.Fatalf("verdict wrong under the uncached rung: %s", rep)
	}
	if rung := store.DegradedMode(); rung < store.DegradeUncached {
		t.Fatalf("degraded rung = %d, want at least DegradeUncached", rung)
	}
}

// TestChaosPassFanoutPanicIsIsolated pins panic isolation at the facade:
// a panic injected into the per-function pass fan-out surfaces from
// AnalyzeCtx as a structured *InternalError — the process survives, and
// the very next analysis of the same program succeeds.
func TestChaosPassFanoutPanicIsIsolated(t *testing.T) {
	passes.TestHookForEachFn = func(i int, f *ir.Fn) {
		panic("injected pass fault")
	}
	defer func() { passes.TestHookForEachFn = nil }()
	az := fenceplace.NewAnalyzer(mustProg(t, "dekker"))
	_, err := az.AnalyzeCtx(context.Background(), fenceplace.Control)
	var ie *fenceplace.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want *InternalError", err)
	}
	if ie.Panic != "injected pass fault" {
		t.Fatalf("InternalError.Panic = %v", ie.Panic)
	}
	passes.TestHookForEachFn = nil

	res, err := fenceplace.NewAnalyzer(mustProg(t, "dekker")).AnalyzeCtx(context.Background(), fenceplace.Control)
	if err != nil || res == nil {
		t.Fatalf("clean analysis after a recovered panic: res=%v err=%v", res, err)
	}
}
