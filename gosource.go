package fenceplace

import (
	"context"

	"fenceplace/internal/frontend"
)

// SourceDiag is one frontend diagnostic: an exact file:line:col position,
// a stable code naming the rejected construct, and a message.
type SourceDiag = frontend.Diag

// SourceDiagList is the error returned when Go source falls outside the
// certifiable subset: every problem in the file, position-sorted, never
// just the first.
type SourceDiagList = frontend.DiagList

// ParseGo lowers one file of restricted real-Go source onto the IR: int64
// globals and fixed-size arrays, word-typed locals and functions, if/for/
// goto control flow, `go f(...)` spawn with wg.Wait join detection, and
// sync/atomic Load/Store/CompareAndSwap/Add as the IR's atomic
// operations. Constructs outside the subset (channels, maps, interfaces,
// slices, closures, ...) are rejected with a SourceDiagList collecting
// every offending position. filename is used in diagnostics only.
func ParseGo(filename string, src []byte) (*Program, error) {
	return frontend.Lower(filename, src)
}

// ParseGoFile is ParseGo over a file on disk.
func ParseGoFile(path string) (*Program, error) {
	return frontend.LowerFile(path)
}

// AnalyzeSourceCtx lowers restricted Go source and runs one strategy's
// fence placement over it: the real-code entry to the same pipeline
// AnalyzeCtx exposes for hand-built IR.
func AnalyzeSourceCtx(ctx context.Context, filename string, src []byte, s Strategy, opts ...Option) (*Result, error) {
	prog, err := ParseGo(filename, src)
	if err != nil {
		return nil, err
	}
	return AnalyzeCtx(ctx, prog, s, opts...)
}
