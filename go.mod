module fenceplace

go 1.24
