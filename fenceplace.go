// Package fenceplace is the public API of this module: automatic fence
// placement for legacy data-race-free programs via synchronization-read
// detection, after McPherson, Nagarajan, Sarkar and Cintra (PPoPP'15).
//
// The pipeline takes a program in the module's compiler IR (built with the
// ir builder or parsed from the textual form), runs alias and thread-escape
// analysis, detects acquire reads with one of the paper's two signatures
// algorithms, generates Pensieve-style orderings, prunes them with the DRF
// rules, and places a minimal set of x86-TSO fences:
//
//	prog := fenceplace.MustParse(src)         // or build with ir.NewProgram
//	res := fenceplace.Analyze(prog, fenceplace.Control)
//	fmt.Println(res.Summary())
//	out := fenceplace.RunTSO(res.Instrumented, 0)
//
// Strategies: PensieveOnly reproduces the baseline (no acquire knowledge),
// Control is the paper's fast variant (Listing 1), AddressControl the
// conservative one (Listing 3).
package fenceplace

import (
	"fmt"

	"fenceplace/internal/acquire"
	"fenceplace/internal/alias"
	"fenceplace/internal/escape"
	"fenceplace/internal/fence"
	"fenceplace/internal/ir"
	"fenceplace/internal/mc"
	"fenceplace/internal/orders"
	"fenceplace/internal/tso"
)

// Program is the analyzed unit: globals plus functions in the module's IR.
type Program = ir.Program

// Instr is a single IR instruction; analyses report results per Instr.
type Instr = ir.Instr

// Parse reads a program in the textual IR syntax (see internal/ir.Parse).
func Parse(src string) (*Program, error) { return ir.Parse(src) }

// MustParse is Parse that panics on error, for embedded sources.
func MustParse(src string) *Program { return ir.MustParse(src) }

// Format renders a program back to its textual syntax.
func Format(p *Program) string { return ir.Format(p) }

// Strategy selects the fence-placement variant.
type Strategy int

const (
	// PensieveOnly places fences for every generated ordering (the
	// baseline the paper compares against).
	PensieveOnly Strategy = iota
	// Control prunes orderings using control acquires only (Listing 1).
	Control
	// AddressControl prunes using control and address acquires
	// (Listing 3) — the conservative variant.
	AddressControl
)

func (s Strategy) String() string {
	switch s {
	case PensieveOnly:
		return "Pensieve"
	case Control:
		return "Control"
	case AddressControl:
		return "Address+Control"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Result carries everything the pipeline produced for one program.
type Result struct {
	Strategy Strategy
	Prog     *Program // the analyzed (uninstrumented) program

	EscapingReads int      // candidate acquires (Figure 7 denominator)
	Acquires      []*Instr // detected synchronization reads (program order)

	OrderingsGenerated int // Pensieve ordering count before pruning
	OrderingsKept      int // after DRF pruning (equal for PensieveOnly)

	FullFences       int // full fences placed, including entry fences
	CompilerBarriers int

	// Instrumented is a clone of Prog with the fences inserted; the
	// original is never mutated.
	Instrumented *Program

	plan *fence.Plan
	kept *orders.Set
}

// Analyze runs the complete static pipeline under the given strategy.
func Analyze(p *Program, s Strategy) *Result {
	p.Finalize()
	al := alias.Analyze(p)
	esc := escape.Analyze(p, al)
	full := orders.Generate(p, esc)

	res := &Result{
		Strategy:           s,
		Prog:               p,
		EscapingReads:      esc.CountReads(),
		OrderingsGenerated: full.Total(),
	}
	kept := full
	entry := func(fn *ir.Fn) bool { return len(esc.EscapingReads(fn)) > 0 }
	if s != PensieveOnly {
		variant := acquire.Control
		if s == AddressControl {
			variant = acquire.AddressControl
		}
		acq := acquire.Detect(p, al, esc, variant)
		for _, f := range p.Funcs {
			res.Acquires = append(res.Acquires, acq.SyncReads(f)...)
		}
		kept = full.Prune(acq)
		entry = acq.FnHasSync
	}
	res.OrderingsKept = kept.Total()
	res.kept = kept
	res.plan = fence.Minimize(kept, fence.Options{EntryFence: entry})
	res.FullFences = res.plan.FullFences()
	res.CompilerBarriers = res.plan.CompilerBarriers()
	res.Instrumented, _ = res.plan.Apply()
	return res
}

// Verify re-checks that the placed fences cover every kept ordering along
// all control-flow paths. Analyze always produces covering plans; Verify
// exists for audit trails and tests.
func (r *Result) Verify() error {
	inst, imap := r.plan.Apply()
	return fence.Verify(r.kept, fence.Options{}, inst, imap)
}

// Summary renders a one-paragraph report of the analysis.
func (r *Result) Summary() string {
	pruned := r.OrderingsGenerated - r.OrderingsKept
	return fmt.Sprintf(
		"%s: %d escaping reads, %d acquires detected; %d orderings generated, %d pruned, %d enforced; %d full fences + %d compiler barriers placed",
		r.Strategy, r.EscapingReads, len(r.Acquires),
		r.OrderingsGenerated, pruned, r.OrderingsKept,
		r.FullFences, r.CompilerBarriers)
}

// RunOutcome is the result of executing a program on the built-in machine.
type RunOutcome = tso.Outcome

// RunTSO executes the program on the x86-TSO simulator (random scheduling
// seeded by seed, eventual store drain). Assertion failures, deadlock and
// runtime errors are reported in the outcome.
func RunTSO(p *Program, seed int64) *RunOutcome {
	return tso.Run(p, tso.Config{
		Mode: tso.TSO, Sched: tso.Random, Policy: tso.DrainRandom, Seed: seed,
	})
}

// RunSC executes the program under sequential consistency — the reference
// semantics the paper's guarantee is stated against.
func RunSC(p *Program, seed int64) *RunOutcome {
	return tso.Run(p, tso.Config{Mode: tso.SC, Sched: tso.Random, Seed: seed})
}

// CertReport is the verdict of a certification run: whether the
// instrumented program under x86-TSO reaches exactly the final states the
// original reaches under SC, with counterexample schedules when it does
// not (see internal/mc).
type CertReport = mc.Report

// CertOptions tunes a certification run. The zero value uses the model
// checker's defaults (GOMAXPROCS workers, 2M-state budget, partial-order
// reduction on).
type CertOptions struct {
	MaxStates int64 // state budget per exploration; exceeded => error
	Workers   int   // parallel exploration workers
	BufferCap int   // TSO store-buffer capacity modeled (default 4)
}

// ErrTruncated reports a certification whose state budget ran out; the
// verdict is then unknown, never "equivalent".
var ErrTruncated = mc.ErrTruncated

// Certify model-checks an analysis result: it explores every interleaving
// (and store-buffer drain schedule) of the instrumented program under
// x86-TSO and of the original program under SC, and reports whether the
// reachable final-state sets coincide — the paper's guarantee, decided
// exhaustively. The program is explored from its main function; use
// CertifyThreads for litmus-style programs without one.
func Certify(res *Result) (*CertReport, error) {
	return CertifyThreads(res, nil)
}

// CertifyThreads is Certify with an explicit set of flat thread functions
// run concurrently from the initial state (the litmus configuration).
func CertifyThreads(res *Result, threads []string) (*CertReport, error) {
	return CertifyOpt(res, threads, CertOptions{})
}

// CertifyOpt is CertifyThreads with explicit exploration options.
func CertifyOpt(res *Result, threads []string, opt CertOptions) (*CertReport, error) {
	return mc.Certify(res.Prog, res.Instrumented, threads, mc.Config{
		MaxStates: opt.MaxStates,
		Workers:   opt.Workers,
		BufferCap: opt.BufferCap,
	})
}
